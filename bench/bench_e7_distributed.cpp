/// Experiment E7 — the distributed deployment: message complexity and
/// simulated convergence time of height-based FR/PR over the asynchronous
/// network, swept over size, delay spread, and link churn; plus the
/// TORA-style routing service under scripted churn.
///
/// Expected shape: PR sends fewer messages than FR on structured
/// instances; convergence time grows with delay spread; churn adds
/// maintenance reversals but never breaks delivery in connected periods.
///
/// E7.6 is the execution-path A/B mode (docs/PERFORMANCE.md): the tora /
/// dist-fr / dist-pr kernels replayed on `path = legacy` (per-run instance
/// regeneration and per-run CSR freezing) versus `path = csr` (the sweep
/// cache's frozen Instance + CsrGraph snapshots).  Record tables must be
/// byte-identical — verified through FNV-1a table checksums — before the
/// per-run timings are trusted; the harness exits non-zero otherwise.
/// `--smoke` shrinks every series to seconds and skips the
/// google-benchmark micro-timings; CI runs it to keep this harness (and
/// the A/B equivalence) from bit-rotting.
///
/// E7.7 is the event-core A/B: dist-fr / dist-pr convergence replayed on
/// the binary-heap and timing-wheel scheduler backends and on the sharded
/// per-node event lanes (sim/sharded_loop.hpp) at 2 and 4 workers.  Every
/// configuration must reproduce the serial heap run's FNV fingerprint
/// (counters, quiescence time, final heights) exactly before the
/// delivered-messages/sec figures are trusted.
///
/// E7.8 is the process-shard A/B: the same sweep executed by the
/// in-process ScenarioRunner and by the multi-process ProcessShardRunner
/// at 2 and 4 worker processes (runner/process_runner.hpp).  The full
/// record + aggregate CSV of every deployment must hash to the
/// single-process fingerprint — the merge contract is byte-identity, not
/// statistical agreement — before the sweep-runs/sec scaling figures are
/// trusted.  This harness is its own sweep worker (main() forwards a
/// `sweep-worker` argv to sweep_worker_main), so the A/B runs even in
/// builds without lr_cli.
///
/// E7.9 is the multi-host A/B: the same sweep served by loopback-TCP
/// `shard-server` endpoints (runner/shard_server.hpp, embedded in this
/// process so the harness stays self-contained) through the
/// MultiHostShardRunner at 2 hosts x 1 and 2 hosts x 2 workers.  Table
/// fingerprints must match the in-process baseline exactly; the
/// sweeps/sec column is the loopback-TCP counterpart of E7.8's fork/exec
/// figures (docs/PERFORMANCE.md compares the two dataplane overheads).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "routing/tora.hpp"
#include "runner/process_runner.hpp"
#include "runner/runner.hpp"
#include "runner/shard_coordinator.hpp"
#include "runner/shard_server.hpp"
#include "runner/thread_pool.hpp"
#include "sim/dist_lr.hpp"
#include "sim/dist_router.hpp"
#include "sim/time_index.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

struct DistOutcome {
  std::uint64_t messages = 0;
  std::uint64_t steps = 0;
  SimTime finish_time = 0;
  bool converged = false;
};

DistOutcome run_dist(const Instance& inst, ReversalRule rule, SimTime max_delay,
                     std::uint64_t seed) {
  Network net(inst.graph, {.min_delay = 1, .max_delay = max_delay, .seed = seed});
  DistLinkReversal proto(inst, rule, net);
  proto.start();
  net.run_until_idle();
  return {net.messages_sent(), proto.total_steps(), net.now(), proto.converged()};
}

void print_size_sweep(bool smoke) {
  bench::print_header("E7.1: distributed FR vs PR, size sweep (delay 1..10)",
                      "both converge; PR does fewer steps/messages on structured DAGs");
  bench::print_row({"instance", "rule", "steps", "messages", "sim_time", "converged"}, 20);
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64, 128};
  for (const std::size_t n : sizes) {
    const Instance chain = make_worst_case_chain(n);
    std::mt19937_64 rng(n);
    const Instance random = make_random_instance(n, n, rng);
    for (const Instance* inst : {&chain, &random}) {
      for (const ReversalRule rule : {ReversalRule::kFull, ReversalRule::kPartial}) {
        const DistOutcome out = run_dist(*inst, rule, 10, n + 1);
        bench::print_row({inst->name, rule == ReversalRule::kFull ? "FR" : "PR",
                          bench::fmt_u(out.steps), bench::fmt_u(out.messages),
                          bench::fmt_u(out.finish_time), out.converged ? "yes" : "NO"},
                         20);
      }
    }
  }
}

void print_delay_sweep() {
  bench::print_header("E7.2: delay-spread sweep (random n=64, PR rule)",
                      "convergence time grows with delay spread; steps stay stable");
  bench::print_row({"max_delay", "steps", "messages", "sim_time", "converged"});
  std::mt19937_64 rng(64);
  const Instance inst = make_random_instance(64, 64, rng);
  for (const SimTime max_delay : {2u, 10u, 50u, 200u}) {
    const DistOutcome out = run_dist(inst, ReversalRule::kPartial, max_delay, 5);
    bench::print_row({bench::fmt_u(max_delay), bench::fmt_u(out.steps),
                      bench::fmt_u(out.messages), bench::fmt_u(out.finish_time),
                      out.converged ? "yes" : "NO"});
  }
}

void print_churn_sweep(bool smoke) {
  bench::print_header("E7.3: TORA-style routing under link churn",
                      "delivery stays high; maintenance reversals grow with churn");
  bench::print_row({"n", "events", "delivered", "sent", "reversals", "mean_hops"});
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 32, 64};
  const std::vector<std::size_t> event_counts =
      smoke ? std::vector<std::size_t>{20} : std::vector<std::size_t>{20, 80};
  for (const std::size_t n : sizes) {
    for (const std::size_t events : event_counts) {
      std::mt19937_64 rng(n * 7 + events);
      const Graph g = make_random_connected_graph(n, 2 * n, rng);
      const ToraStats stats = run_churn_scenario(g, 0, events, 10, n + events);
      const double mean_hops =
          stats.packets_delivered == 0
              ? 0.0
              : static_cast<double>(stats.total_hops) /
                    static_cast<double>(stats.packets_delivered);
      bench::print_row({std::to_string(n), std::to_string(events),
                        bench::fmt_u(stats.packets_delivered), bench::fmt_u(stats.packets_sent),
                        bench::fmt_u(stats.reversals), bench::fmt(mean_hops)});
    }
  }
}

void print_data_plane_sweep(bool smoke) {
  bench::print_header("E7.4: data-plane delivery during DAG repair (DistRouter)",
                      "packets injected mid-repair are delivered or accounted, never looped");
  bench::print_row({"instance", "injected", "delivered", "no_route", "ttl_drop", "mean_hops"},
                   22);
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64};
  for (const std::size_t n : sizes) {
    std::mt19937_64 rng(n * 3 + 1);
    for (const Instance& inst :
         {make_worst_case_chain(n), make_unit_disk_instance(n, 0.35, rng)}) {
      Network net(inst.graph, {.min_delay = 1, .max_delay = 8, .seed = n});
      DistLinkReversal proto(inst, ReversalRule::kPartial, net);
      DistRouter router(proto, net);
      proto.start();
      // Inject one packet per node while the control plane is still busy.
      for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) router.inject(u);
      net.run_until_idle();
      // And another wave after convergence.
      for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) router.inject(u);
      net.run_until_idle();
      const PacketStats& s = router.stats();
      bench::print_row({inst.name, bench::fmt_u(s.injected), bench::fmt_u(s.delivered),
                        bench::fmt_u(s.dropped_no_route), bench::fmt_u(s.dropped_ttl),
                        bench::fmt(router.mean_hops())},
                       22);
    }
  }
}

void print_loss_recovery_sweep() {
  bench::print_header("E7.5: convergence under message loss with resync rounds",
                      "resync repairs stale views; rounds grow with loss rate");
  bench::print_row({"loss", "resync_rounds", "steps", "messages", "converged"});
  std::mt19937_64 rng(77);
  const Instance inst = make_random_instance(32, 32, rng);
  for (const double loss : {0.0, 0.2, 0.4, 0.6}) {
    Network net(inst.graph,
                {.min_delay = 1, .max_delay = 5, .seed = 3, .drop_probability = loss});
    DistLinkReversal proto(inst, ReversalRule::kPartial, net);
    const auto rounds = proto.run_with_resync(500);
    bench::print_row({bench::fmt(loss), rounds ? bench::fmt_u(*rounds) : "none",
                      bench::fmt_u(proto.total_steps()), bench::fmt_u(net.messages_sent()),
                      proto.converged() ? "yes" : "NO"});
  }
}

// ---------------------------------------------------------------------------
// E7.6: the legacy-vs-CSR A/B comparison of the tora / dist-* kernels
// ---------------------------------------------------------------------------

/// The stock E7 scenario set the A/B equality check replays on both paths.
std::vector<RunSpec> stock_specs(bool smoke) {
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{12} : std::vector<std::size_t>{16, 32, 64};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2};
  std::vector<RunSpec> specs;
  for (const TopologyKind topology : {TopologyKind::kChain, TopologyKind::kRandom}) {
    for (const std::size_t size : sizes) {
      for (const AlgorithmKind algorithm :
           {AlgorithmKind::kTora, AlgorithmKind::kDistFR, AlgorithmKind::kDistPR}) {
        for (const std::uint64_t seed : seeds) {
          RunSpec spec;
          spec.topology = topology;
          spec.size = size;
          spec.algorithm = algorithm;
          spec.seed = seed;
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

/// E7.6 driver; returns false (failing the harness) if any path pair
/// diverged in tables or checksums.  The equality check, the warm-cache
/// timing protocol, and the checksum columns are the shared kit in
/// bench_util.hpp.
bool print_ab_series(bool smoke) {
  bench::print_header("E7.6: execution-path A/B, per-run regeneration vs cached CSR snapshots",
                      "identical tables and table checksums; csr amortizes instance "
                      "generation + snapshot freezing across a sweep (docs/PERFORMANCE.md)");
  const bool tables_ok = bench::ab_tables_identical(stock_specs(smoke));

  const std::size_t n = smoke ? 12 : 64;
  const std::string label = "random-" + std::to_string(n);
  std::vector<bench::AbSample> samples;
  for (const AlgorithmKind algorithm :
       {AlgorithmKind::kTora, AlgorithmKind::kDistFR, AlgorithmKind::kDistPR}) {
    RunSpec spec;
    spec.topology = TopologyKind::kRandom;
    spec.size = n;
    spec.algorithm = algorithm;
    spec.seed = 1;
    samples.push_back(bench::measure_cached_ab(label, spec, smoke ? 20.0 : 300.0));
  }
  bench::emit_csv(bench::ab_table(samples));

  bool checksums_ok = true;
  for (const bench::AbSample& sample : samples) checksums_ok &= sample.identical();
  std::printf("table checksums: %s\n", checksums_ok ? "all identical" : "MISMATCH");
  return tables_ok && checksums_ok;
}

// ---------------------------------------------------------------------------
// E7.7: the event-core A/B — heap vs wheel vs sharded event lanes
// ---------------------------------------------------------------------------

/// Runs one dist-LR convergence and folds every observable counter plus
/// the final per-node heights into an FNV fingerprint.  Every event-core
/// configuration (scheduler backend x worker count) must reproduce this
/// fingerprint exactly — the knobs are perf switches, not semantics.
std::uint64_t dist_fingerprint(const Instance& inst, ReversalRule rule, NetworkConfig config) {
  Network net(inst.graph, config);
  DistLinkReversal proto(inst, rule, net);
  proto.start();
  net.run_until_idle();
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  mix(net.messages_sent());
  mix(net.messages_delivered());
  mix(net.messages_dropped());
  mix(net.now());
  mix(proto.total_steps());
  mix(proto.converged() ? 1 : 0);
  for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    const auto [a, b, id] = proto.height(u);
    mix(static_cast<std::uint64_t>(a));
    mix(static_cast<std::uint64_t>(b));
    mix(id);
  }
  return hash;
}

/// E7.7 driver; returns false if any configuration's fingerprint diverges
/// from the serial heap baseline.  Throughput is delivered messages per
/// wall-clock second of the whole convergence run (the sweep-relevant
/// figure for docs/PERFORMANCE.md); sharded rows borrow a pre-built pool
/// so pool construction is not billed to the event core.
bool print_event_core_series(bool smoke) {
  bench::print_header("E7.7: event-core A/B, heap vs wheel vs sharded event lanes",
                      "identical run fingerprints at every scheduler x worker count; "
                      "delivered messages/sec per configuration (docs/PERFORMANCE.md)");
  const std::size_t n = smoke ? 24 : 96;
  std::mt19937_64 rng(n);
  const Instance inst = make_random_instance(n, n, rng);
  const NetworkConfig base{.min_delay = 1, .max_delay = 12, .seed = 7};
  ThreadPool pool2(2);
  ThreadPool pool4(4);

  struct CoreConfig {
    const char* label;
    EventSchedulerKind scheduler;
    ThreadPool* pool;  // nullptr: serial EventQueue
  };
  const CoreConfig configs[] = {
      {"heap t=1", EventSchedulerKind::kHeap, nullptr},
      {"wheel t=1", EventSchedulerKind::kWheel, nullptr},
      {"wheel t=2", EventSchedulerKind::kWheel, &pool2},
      {"wheel t=4", EventSchedulerKind::kWheel, &pool4},
  };

  Table table;
  table.columns = {"rule", "config", "delivered", "msgs_per_sec", "fingerprint", "identical"};
  bool identical = true;
  for (const ReversalRule rule : {ReversalRule::kFull, ReversalRule::kPartial}) {
    std::uint64_t reference = 0;
    for (const CoreConfig& core : configs) {
      NetworkConfig config = base;
      config.scheduler = core.scheduler;
      config.sim_threads = core.pool == nullptr ? 1 : core.pool->size();
      config.sim_pool = core.pool;
      const std::uint64_t fingerprint = dist_fingerprint(inst, rule, config);
      if (core.pool == nullptr && core.scheduler == EventSchedulerKind::kHeap)
        reference = fingerprint;
      identical &= fingerprint == reference;

      std::uint64_t delivered = 0;
      const double ns_per_run = bench::measure_ns_per_iter(
          [&] {
            Network net(inst.graph, config);
            DistLinkReversal proto(inst, rule, net);
            proto.start();
            net.run_until_idle();
            delivered = net.messages_delivered();
          },
          smoke ? 1 : 5, smoke ? 0.0 : 200.0);
      const double msgs_per_sec = static_cast<double>(delivered) * 1e9 / ns_per_run;
      table.add_row({rule == ReversalRule::kFull ? "dist-fr" : "dist-pr", core.label,
                     bench::fmt_u(delivered), bench::fmt(msgs_per_sec),
                     bench::fmt_hex(fingerprint), fingerprint == reference ? "yes" : "NO"});
    }
  }
  bench::emit_csv(table);
  std::printf("run fingerprints: %s\n", identical ? "all identical" : "MISMATCH");
  return identical;
}

// ---------------------------------------------------------------------------
// E7.8: the process-shard A/B — in-process sweep vs multi-process shards
// ---------------------------------------------------------------------------

/// E7.8 driver; returns false if any multi-process deployment's table
/// fingerprint diverges from the single-process baseline.  Throughput is
/// whole sweeps per second (spawn + spec shipping + execution + merge),
/// so the figure honestly charges the fork/exec and framing overhead the
/// dataplane adds (docs/PERFORMANCE.md).
bool print_process_shard_series(bool smoke) {
  bench::print_header("E7.8: process-shard A/B, in-process sweep vs worker processes",
                      "identical table fingerprints at every worker count; "
                      "sweeps/sec per deployment (docs/PERFORMANCE.md)");
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = smoke ? std::vector<std::size_t>{12} : std::vector<std::size_t>{16, 32};
  sweep.algorithms = {AlgorithmKind::kDistFR, AlgorithmKind::kDistPR, AlgorithmKind::kTora};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = smoke ? std::vector<std::uint64_t>{1, 2} : std::vector<std::uint64_t>{1, 2, 3, 4};
  sweep.max_steps = 500'000;

  const auto fingerprint_of = [](const SweepReport& report) {
    return bench::fnv1a(bench::sweep_report_csv(report));
  };

  Table table;
  table.columns = {"deployment", "runs", "sweeps_per_sec", "fingerprint", "identical"};
  bool identical = true;
  std::uint64_t reference = 0;

  const auto add_row = [&](const char* label, std::uint64_t fingerprint, double ns_per_sweep,
                           std::size_t runs) {
    if (reference == 0) reference = fingerprint;
    identical &= fingerprint == reference;
    table.add_row({label, bench::fmt_u(runs), bench::fmt(1e9 / ns_per_sweep),
                   bench::fmt_hex(fingerprint), fingerprint == reference ? "yes" : "NO"});
  };

  const std::size_t runs = sweep.run_count();
  {
    const ScenarioRunner runner({.threads = 1});
    std::uint64_t fingerprint = 0;
    const double ns = bench::measure_ns_per_iter(
        [&] { fingerprint = fingerprint_of(runner.run(sweep)); }, smoke ? 1 : 3,
        smoke ? 0.0 : 200.0);
    add_row("in-process t=1", fingerprint, ns, runs);
  }
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    ProcessShardRunner runner({.threads = 1, .process_workers = workers});
    std::uint64_t fingerprint = 0;
    const double ns = bench::measure_ns_per_iter(
        [&] { fingerprint = fingerprint_of(runner.run(sweep)); }, smoke ? 1 : 3,
        smoke ? 0.0 : 200.0);
    const std::string label = "processes n=" + std::to_string(workers);
    add_row(label.c_str(), fingerprint, ns, runs);
  }
  bench::emit_csv(table);
  std::printf("table fingerprints: %s\n", identical ? "all identical" : "MISMATCH");
  return identical;
}

// ---------------------------------------------------------------------------
// E7.9: the multi-host A/B — in-process sweep vs loopback-TCP shard servers
// ---------------------------------------------------------------------------

/// E7.9 driver; returns false if any multi-host deployment's table
/// fingerprint diverges from the single-process baseline.  The shard
/// servers are embedded (real TCP over loopback, no daemons), so the
/// figure charges connect + framing + heartbeat overhead but not
/// process spawning — the complement of E7.8.
bool print_multi_host_series(bool smoke) {
  bench::print_header("E7.9: multi-host A/B, in-process sweep vs loopback-TCP shard servers",
                      "identical table fingerprints at every host x worker count; "
                      "sweeps/sec per deployment (docs/PERFORMANCE.md)");
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = smoke ? std::vector<std::size_t>{12} : std::vector<std::size_t>{16, 32};
  sweep.algorithms = {AlgorithmKind::kDistFR, AlgorithmKind::kDistPR, AlgorithmKind::kTora};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = smoke ? std::vector<std::uint64_t>{1, 2} : std::vector<std::uint64_t>{1, 2, 3, 4};
  sweep.max_steps = 500'000;

  const auto fingerprint_of = [](const SweepReport& report) {
    return bench::fnv1a(bench::sweep_report_csv(report));
  };

  Table table;
  table.columns = {"deployment", "runs", "sweeps_per_sec", "fingerprint", "identical"};
  bool identical = true;
  std::uint64_t reference = 0;

  const auto add_row = [&](const std::string& label, std::uint64_t fingerprint,
                           double ns_per_sweep, std::size_t runs) {
    if (reference == 0) reference = fingerprint;
    identical &= fingerprint == reference;
    table.add_row({label, bench::fmt_u(runs), bench::fmt(1e9 / ns_per_sweep),
                   bench::fmt_hex(fingerprint), fingerprint == reference ? "yes" : "NO"});
  };

  const std::size_t runs = sweep.run_count();
  {
    const ScenarioRunner runner({.threads = 1});
    std::uint64_t fingerprint = 0;
    const double ns = bench::measure_ns_per_iter(
        [&] { fingerprint = fingerprint_of(runner.run(sweep)); }, smoke ? 1 : 3,
        smoke ? 0.0 : 200.0);
    add_row("in-process t=1", fingerprint, ns, runs);
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    ShardServer server_a;
    ShardServer server_b;
    server_a.start();
    server_b.start();
    const std::vector<HostSpec> hosts = {{"127.0.0.1", server_a.port(), workers},
                                         {"127.0.0.1", server_b.port(), workers}};
    std::uint64_t fingerprint = 0;
    const double ns = bench::measure_ns_per_iter(
        [&] {
          MultiHostShardRunner runner({.threads = 1}, hosts);
          fingerprint = fingerprint_of(runner.run(sweep));
        },
        smoke ? 1 : 3, smoke ? 0.0 : 200.0);
    add_row("hosts 2x" + std::to_string(workers), fingerprint, ns, runs);
  }
  bench::emit_csv(table);
  std::printf("table fingerprints: %s\n", identical ? "all identical" : "MISMATCH");
  return identical;
}

void BM_DistributedPRConvergence(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(21);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_dist(inst, ReversalRule::kPartial, 10, 3).messages);
  }
}
BENCHMARK(BM_DistributedPRConvergence)->Arg(32)->Arg(128);

void BM_ChurnScenario(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(22);
  const Graph g = make_random_connected_graph(n, 2 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_churn_scenario(g, 0, 20, 5, 9).packets_delivered);
  }
}
BENCHMARK(BM_ChurnScenario)->Arg(32)->Arg(128);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  // Self-hosting sweep worker for the E7.8 process-shard A/B: the
  // ProcessShardRunner fork/execs this very binary (/proc/self/exe).
  if (argc > 1 && std::string(argv[1]) == "sweep-worker") {
    return lr::sweep_worker_main(argc, argv);
  }
  const bool smoke = lr::bench::consume_smoke_flag(argc, argv);
  lr::print_size_sweep(smoke);
  if (!smoke) lr::print_delay_sweep();
  lr::print_churn_sweep(smoke);
  lr::print_data_plane_sweep(smoke);
  if (!smoke) lr::print_loss_recovery_sweep();
  if (!lr::print_ab_series(smoke)) {
    std::fprintf(stderr, "E7.6 A/B verification FAILED\n");
    return 1;
  }
  if (!lr::print_event_core_series(smoke)) {
    std::fprintf(stderr, "E7.7 event-core A/B verification FAILED\n");
    return 1;
  }
  if (!lr::print_process_shard_series(smoke)) {
    std::fprintf(stderr, "E7.8 process-shard A/B verification FAILED\n");
    return 1;
  }
  if (!lr::print_multi_host_series(smoke)) {
    std::fprintf(stderr, "E7.9 multi-host A/B verification FAILED\n");
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

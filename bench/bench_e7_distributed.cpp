/// Experiment E7 — the distributed deployment: message complexity and
/// simulated convergence time of height-based FR/PR over the asynchronous
/// network, swept over size, delay spread, and link churn; plus the
/// TORA-style routing service under scripted churn.
///
/// Expected shape: PR sends fewer messages than FR on structured
/// instances; convergence time grows with delay spread; churn adds
/// maintenance reversals but never breaks delivery in connected periods.

#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "routing/tora.hpp"
#include "sim/dist_lr.hpp"
#include "sim/dist_router.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

struct DistOutcome {
  std::uint64_t messages = 0;
  std::uint64_t steps = 0;
  SimTime finish_time = 0;
  bool converged = false;
};

DistOutcome run_dist(const Instance& inst, ReversalRule rule, SimTime max_delay,
                     std::uint64_t seed) {
  Network net(inst.graph, {.min_delay = 1, .max_delay = max_delay, .seed = seed});
  DistLinkReversal proto(inst, rule, net);
  proto.start();
  net.run_until_idle();
  return {net.messages_sent(), proto.total_steps(), net.now(), proto.converged()};
}

void print_size_sweep() {
  bench::print_header("E7.1: distributed FR vs PR, size sweep (delay 1..10)",
                      "both converge; PR does fewer steps/messages on structured DAGs");
  bench::print_row({"instance", "rule", "steps", "messages", "sim_time", "converged"}, 20);
  for (const std::size_t n : {16u, 64u, 128u}) {
    const Instance chain = make_worst_case_chain(n);
    std::mt19937_64 rng(n);
    const Instance random = make_random_instance(n, n, rng);
    for (const Instance* inst : {&chain, &random}) {
      for (const ReversalRule rule : {ReversalRule::kFull, ReversalRule::kPartial}) {
        const DistOutcome out = run_dist(*inst, rule, 10, n + 1);
        bench::print_row({inst->name, rule == ReversalRule::kFull ? "FR" : "PR",
                          bench::fmt_u(out.steps), bench::fmt_u(out.messages),
                          bench::fmt_u(out.finish_time), out.converged ? "yes" : "NO"},
                         20);
      }
    }
  }
}

void print_delay_sweep() {
  bench::print_header("E7.2: delay-spread sweep (random n=64, PR rule)",
                      "convergence time grows with delay spread; steps stay stable");
  bench::print_row({"max_delay", "steps", "messages", "sim_time", "converged"});
  std::mt19937_64 rng(64);
  const Instance inst = make_random_instance(64, 64, rng);
  for (const SimTime max_delay : {2u, 10u, 50u, 200u}) {
    const DistOutcome out = run_dist(inst, ReversalRule::kPartial, max_delay, 5);
    bench::print_row({bench::fmt_u(max_delay), bench::fmt_u(out.steps),
                      bench::fmt_u(out.messages), bench::fmt_u(out.finish_time),
                      out.converged ? "yes" : "NO"});
  }
}

void print_churn_sweep() {
  bench::print_header("E7.3: TORA-style routing under link churn",
                      "delivery stays high; maintenance reversals grow with churn");
  bench::print_row({"n", "events", "delivered", "sent", "reversals", "mean_hops"});
  for (const std::size_t n : {16u, 32u, 64u}) {
    for (const std::size_t events : {20u, 80u}) {
      std::mt19937_64 rng(n * 7 + events);
      const Graph g = make_random_connected_graph(n, 2 * n, rng);
      const ToraStats stats = run_churn_scenario(g, 0, events, 10, n + events);
      const double mean_hops =
          stats.packets_delivered == 0
              ? 0.0
              : static_cast<double>(stats.total_hops) /
                    static_cast<double>(stats.packets_delivered);
      bench::print_row({std::to_string(n), std::to_string(events),
                        bench::fmt_u(stats.packets_delivered), bench::fmt_u(stats.packets_sent),
                        bench::fmt_u(stats.reversals), bench::fmt(mean_hops)});
    }
  }
}

void print_data_plane_sweep() {
  bench::print_header("E7.4: data-plane delivery during DAG repair (DistRouter)",
                      "packets injected mid-repair are delivered or accounted, never looped");
  bench::print_row({"instance", "injected", "delivered", "no_route", "ttl_drop", "mean_hops"},
                   22);
  for (const std::size_t n : {16u, 64u}) {
    std::mt19937_64 rng(n * 3 + 1);
    for (const Instance& inst :
         {make_worst_case_chain(n), make_unit_disk_instance(n, 0.35, rng)}) {
      Network net(inst.graph, {.min_delay = 1, .max_delay = 8, .seed = n});
      DistLinkReversal proto(inst, ReversalRule::kPartial, net);
      DistRouter router(proto, net);
      proto.start();
      // Inject one packet per node while the control plane is still busy.
      for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) router.inject(u);
      net.run_until_idle();
      // And another wave after convergence.
      for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) router.inject(u);
      net.run_until_idle();
      const PacketStats& s = router.stats();
      bench::print_row({inst.name, bench::fmt_u(s.injected), bench::fmt_u(s.delivered),
                        bench::fmt_u(s.dropped_no_route), bench::fmt_u(s.dropped_ttl),
                        bench::fmt(router.mean_hops())},
                       22);
    }
  }
}

void print_loss_recovery_sweep() {
  bench::print_header("E7.5: convergence under message loss with resync rounds",
                      "resync repairs stale views; rounds grow with loss rate");
  bench::print_row({"loss", "resync_rounds", "steps", "messages", "converged"});
  std::mt19937_64 rng(77);
  const Instance inst = make_random_instance(32, 32, rng);
  for (const double loss : {0.0, 0.2, 0.4, 0.6}) {
    Network net(inst.graph,
                {.min_delay = 1, .max_delay = 5, .seed = 3, .drop_probability = loss});
    DistLinkReversal proto(inst, ReversalRule::kPartial, net);
    const auto rounds = proto.run_with_resync(500);
    bench::print_row({bench::fmt(loss), rounds ? bench::fmt_u(*rounds) : "none",
                      bench::fmt_u(proto.total_steps()), bench::fmt_u(net.messages_sent()),
                      proto.converged() ? "yes" : "NO"});
  }
}

void BM_DistributedPRConvergence(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(21);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_dist(inst, ReversalRule::kPartial, 10, 3).messages);
  }
}
BENCHMARK(BM_DistributedPRConvergence)->Arg(32)->Arg(128);

void BM_ChurnScenario(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(22);
  const Graph g = make_random_connected_graph(n, 2 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_churn_scenario(g, 0, 20, 5, 9).packets_delivered);
  }
}
BENCHMARK(BM_ChurnScenario)->Arg(32)->Arg(128);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_size_sweep();
  lr::print_delay_sweep();
  lr::print_churn_sweep();
  lr::print_data_plane_sweep();
  lr::print_loss_recovery_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Experiment E5 — the Section 5 simulation relations, measured: every PR
/// step maps to |S| OneStepPR steps (Lemma 5.1) and every OneStepPR step to
/// 1..2 NewPR steps (Lemma 5.3); the relations hold at every matched point;
/// the reverse direction (the conclusion's proposed extension) holds with
/// dummy steps mapping to empty sequences.
///
/// The measurement loop runs the sim-rprime / sim-r / sim-rrev kernels of
/// the scenario runner (src/runner), i.e. the same relation-check code
/// `lr_cli sweep` executes, fanned out over the thread pool.

#include <benchmark/benchmark.h>

#include "automata/scheduler.hpp"
#include "automata/simulation.hpp"
#include "core/relations.hpp"
#include "graph/generators.hpp"
#include "runner/runner.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

const char* relation_label(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSimRPrime:
      return "R'(PR->1Step)";
    case AlgorithmKind::kSimR:
      return "R(1Step->New)";
    case AlgorithmKind::kSimRRev:
      return "Rrev(New->1Step)";
    default:
      return "?";
  }
}

void print_expansion_table() {
  bench::print_header("E5: simulation-relation checks & step expansion factors",
                      "R'/R hold everywhere; expansion in [1,2] for R, = |S| for R'");
  bench::print_row({"n", "relation", "concrete", "abstract", "expansion", "ok"});
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = {16, 64, 256};
  sweep.algorithms = {AlgorithmKind::kSimRPrime, AlgorithmKind::kSimR, AlgorithmKind::kSimRRev};
  sweep.schedulers = {SchedulerKind::kRandom};
  sweep.seeds = {1};
  const SweepReport report = ScenarioRunner().run(sweep);
  for (const RunRecord& record : report.records) {
    const double expansion = record.work == 0 ? 0.0
                                              : static_cast<double>(record.abstract_steps) /
                                                    static_cast<double>(record.work);
    bench::print_row({bench::fmt_u(record.spec.size), relation_label(record.spec.algorithm),
                      bench::fmt_u(record.work), bench::fmt_u(record.abstract_steps),
                      bench::fmt(expansion),
                      record.relation == RelationVerdict::kHolds ? "yes" : "NO"});
  }
}

void BM_SimulationCheckRPrime(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    PRAutomaton concrete(inst);
    OneStepPRAutomaton abstract(inst);
    RandomSetScheduler scheduler(1);
    const auto r = check_forward_simulation(
        concrete, abstract, scheduler,
        [](const PRAutomaton& s, const OneStepPRAutomaton& t) { return relation_R_prime(s, t); },
        correspondence_R_prime);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_SimulationCheckRPrime)->Arg(32)->Arg(128);

void BM_RelationRPredicate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(10);
  const Instance inst = make_random_instance(n, n, rng);
  OneStepPRAutomaton s(inst);
  NewPRAutomaton t(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(relation_R(s, t));
  }
}
BENCHMARK(BM_RelationRPredicate)->Arg(64)->Arg(512);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_expansion_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Experiment E5 — the Section 5 simulation relations, measured: every PR
/// step maps to |S| OneStepPR steps (Lemma 5.1) and every OneStepPR step to
/// 1..2 NewPR steps (Lemma 5.3); the relations hold at every matched point;
/// the reverse direction (the conclusion's proposed extension) holds with
/// dummy steps mapping to empty sequences.

#include <benchmark/benchmark.h>

#include "automata/scheduler.hpp"
#include "automata/simulation.hpp"
#include "core/relations.hpp"
#include "graph/generators.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

void print_expansion_table() {
  bench::print_header("E5: simulation-relation checks & step expansion factors",
                      "R'/R hold everywhere; expansion in [1,2] for R, = |S| for R'");
  bench::print_row({"n", "relation", "concrete", "abstract", "expansion", "ok"});
  for (const std::size_t n : {16u, 64u, 256u}) {
    std::mt19937_64 rng(n * 13 + 1);
    const Instance inst = make_random_instance(n, n, rng);

    {
      PRAutomaton concrete(inst);
      OneStepPRAutomaton abstract(inst);
      RandomSetScheduler scheduler(n);
      const auto r = check_forward_simulation(
          concrete, abstract, scheduler,
          [](const PRAutomaton& s, const OneStepPRAutomaton& t) {
            return relation_R_prime(s, t);
          },
          correspondence_R_prime);
      bench::print_row({std::to_string(n), "R'(PR->1Step)", bench::fmt_u(r.concrete_steps),
                        bench::fmt_u(r.abstract_steps),
                        bench::fmt(r.concrete_steps == 0
                                       ? 0.0
                                       : static_cast<double>(r.abstract_steps) /
                                             static_cast<double>(r.concrete_steps)),
                        r.ok ? "yes" : "NO"});
    }
    {
      OneStepPRAutomaton concrete(inst);
      NewPRAutomaton abstract(inst);
      RandomScheduler scheduler(n + 1);
      const auto r = check_forward_simulation(
          concrete, abstract, scheduler,
          [](const OneStepPRAutomaton& s, const NewPRAutomaton& t) { return relation_R(s, t); },
          correspondence_R);
      bench::print_row({std::to_string(n), "R(1Step->New)", bench::fmt_u(r.concrete_steps),
                        bench::fmt_u(r.abstract_steps),
                        bench::fmt(r.concrete_steps == 0
                                       ? 0.0
                                       : static_cast<double>(r.abstract_steps) /
                                             static_cast<double>(r.concrete_steps)),
                        r.ok ? "yes" : "NO"});
    }
    {
      NewPRAutomaton concrete(inst);
      OneStepPRAutomaton abstract(inst);
      RandomScheduler scheduler(n + 2);
      const auto r = check_forward_simulation(
          concrete, abstract, scheduler,
          [](const NewPRAutomaton& t, const OneStepPRAutomaton& s) {
            return reverse_relation_R(t, s);
          },
          correspondence_R_reverse);
      bench::print_row({std::to_string(n), "Rrev(New->1Step)", bench::fmt_u(r.concrete_steps),
                        bench::fmt_u(r.abstract_steps),
                        bench::fmt(r.concrete_steps == 0
                                       ? 0.0
                                       : static_cast<double>(r.abstract_steps) /
                                             static_cast<double>(r.concrete_steps)),
                        r.ok ? "yes" : "NO"});
    }
  }
}

void BM_SimulationCheckRPrime(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    PRAutomaton concrete(inst);
    OneStepPRAutomaton abstract(inst);
    RandomSetScheduler scheduler(1);
    const auto r = check_forward_simulation(
        concrete, abstract, scheduler,
        [](const PRAutomaton& s, const OneStepPRAutomaton& t) { return relation_R_prime(s, t); },
        correspondence_R_prime);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_SimulationCheckRPrime)->Arg(32)->Arg(128);

void BM_RelationRPredicate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(10);
  const Instance inst = make_random_instance(n, n, rng);
  OneStepPRAutomaton s(inst);
  NewPRAutomaton t(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(relation_R(s, t));
  }
}
BENCHMARK(BM_RelationRPredicate)->Arg(64)->Arg(512);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_expansion_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

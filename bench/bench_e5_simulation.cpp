/// Experiment E5 — the Section 5 simulation relations, measured: every PR
/// step maps to |S| OneStepPR steps (Lemma 5.1) and every OneStepPR step to
/// 1..2 NewPR steps (Lemma 5.3); the relations hold at every matched point;
/// the reverse direction (the conclusion's proposed extension) holds with
/// dummy steps mapping to empty sequences.
///
/// The measurement loop runs the sim-rprime / sim-r / sim-rrev kernels of
/// the scenario runner (src/runner), i.e. the same relation-check code
/// `lr_cli sweep` executes, fanned out over the thread pool.
///
/// E5.2 is the execution-path A/B mode (docs/PERFORMANCE.md): the sim-*
/// kernels replayed on `path = legacy` (per-run instance regeneration)
/// versus `path = csr` (the sweep cache's frozen instances).  The relation
/// checkers themselves are inherently legacy-shaped — they drive the
/// paper's automata step by step — so this A/B isolates exactly the sweep
/// cache's instance-amortization win.  Record tables must be
/// byte-identical (FNV-1a table checksums) before the timings are trusted;
/// the harness exits non-zero otherwise.  `--smoke` shrinks the series,
/// skips the micro-timings, and also fails on any relation violation.
///
/// E5.3 is the event-core scheduler A/B: a self-replenishing event storm
/// replayed on the binary-heap and timing-wheel time-index backends
/// (sim/time_index.hpp), with an execution-order FNV fingerprint that both
/// must reproduce exactly before the events/sec figures are trusted.

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "automata/scheduler.hpp"
#include "automata/simulation.hpp"
#include "core/relations.hpp"
#include "graph/generators.hpp"
#include "runner/runner.hpp"
#include "sim/event_queue.hpp"
#include "sim/time_index.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

const char* relation_label(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSimRPrime:
      return "R'(PR->1Step)";
    case AlgorithmKind::kSimR:
      return "R(1Step->New)";
    case AlgorithmKind::kSimRRev:
      return "Rrev(New->1Step)";
    default:
      return "?";
  }
}

/// E5.1 driver; returns false if any relation check failed (the smoke
/// mode's correctness gate).
bool print_expansion_table(bool smoke) {
  bench::print_header("E5.1: simulation-relation checks & step expansion factors",
                      "R'/R hold everywhere; expansion in [1,2] for R, = |S| for R'");
  bench::print_row({"n", "relation", "concrete", "abstract", "expansion", "ok"});
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64, 256};
  sweep.algorithms = {AlgorithmKind::kSimRPrime, AlgorithmKind::kSimR, AlgorithmKind::kSimRRev};
  sweep.schedulers = {SchedulerKind::kRandom};
  sweep.seeds = {1};
  const SweepReport report = ScenarioRunner().run(sweep);
  bool all_hold = true;
  for (const RunRecord& record : report.records) {
    const double expansion = record.work == 0 ? 0.0
                                              : static_cast<double>(record.abstract_steps) /
                                                    static_cast<double>(record.work);
    const bool holds = record.relation == RelationVerdict::kHolds;
    all_hold &= holds;
    bench::print_row({bench::fmt_u(record.spec.size), relation_label(record.spec.algorithm),
                      bench::fmt_u(record.work), bench::fmt_u(record.abstract_steps),
                      bench::fmt(expansion), holds ? "yes" : "NO"});
  }
  return all_hold;
}

// ---------------------------------------------------------------------------
// E5.2: the legacy-vs-CSR A/B comparison of the sim-* kernels
// ---------------------------------------------------------------------------

/// The stock E5 scenario set the A/B equality check replays on both paths.
std::vector<RunSpec> stock_specs(bool smoke) {
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{12} : std::vector<std::size_t>{16, 48};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2, 3};
  std::vector<RunSpec> specs;
  for (const std::size_t size : sizes) {
    for (const AlgorithmKind algorithm :
         {AlgorithmKind::kSimRPrime, AlgorithmKind::kSimR, AlgorithmKind::kSimRRev}) {
      for (const std::uint64_t seed : seeds) {
        RunSpec spec;
        spec.topology = TopologyKind::kRandom;
        spec.size = size;
        spec.algorithm = algorithm;
        spec.scheduler = SchedulerKind::kRandom;
        spec.seed = seed;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

/// E5.2 driver; returns false (failing the harness) if any path pair
/// diverged in tables or checksums.  The equality check, the warm-cache
/// timing protocol, and the checksum columns are the shared kit in
/// bench_util.hpp.
bool print_ab_series(bool smoke) {
  bench::print_header("E5.2: execution-path A/B, per-run regeneration vs cached instances",
                      "identical tables and table checksums; csr amortizes instance "
                      "generation across a sweep (docs/PERFORMANCE.md)");
  const bool tables_ok = bench::ab_tables_identical(stock_specs(smoke));

  const std::size_t n = smoke ? 12 : 48;
  const std::string label = "random-" + std::to_string(n);
  std::vector<bench::AbSample> samples;
  for (const AlgorithmKind algorithm :
       {AlgorithmKind::kSimRPrime, AlgorithmKind::kSimR, AlgorithmKind::kSimRRev}) {
    RunSpec spec;
    spec.topology = TopologyKind::kRandom;
    spec.size = n;
    spec.algorithm = algorithm;
    spec.scheduler = SchedulerKind::kRandom;
    spec.seed = 1;
    samples.push_back(bench::measure_cached_ab(label, spec, smoke ? 20.0 : 300.0));
  }
  bench::emit_csv(bench::ab_table(samples));

  bool checksums_ok = true;
  for (const bench::AbSample& sample : samples) checksums_ok &= sample.identical();
  std::printf("table checksums: %s\n", checksums_ok ? "all identical" : "MISMATCH");
  return tables_ok && checksums_ok;
}

// ---------------------------------------------------------------------------
// E5.3: the event-core scheduler A/B (binary heap vs hierarchical wheel)
// ---------------------------------------------------------------------------

/// One self-replenishing event storm on a fresh EventQueue: each fired
/// event draws from the RNG *in execution order* and reschedules followers
/// with a bimodal (mostly-near, occasionally-far) delay profile.  Heap and
/// wheel therefore produce the same order fingerprint only if they agree
/// on the exact execution order — any divergence forks the RNG stream and
/// snowballs into a different checksum.
struct StormResult {
  std::uint64_t checksum = 0;
  std::uint64_t executed = 0;
};

StormResult run_event_storm(EventSchedulerKind backend, std::uint64_t events,
                            std::uint64_t seed) {
  EventQueue queue(backend);
  std::mt19937_64 rng(seed);
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  std::uint64_t remaining = events;
  std::function<void()> fire;
  fire = [&] {
    mix(queue.now());
    const std::uint64_t fan = 1 + rng() % 2;
    for (std::uint64_t i = 0; i < fan && remaining > 0; ++i) {
      --remaining;
      const SimTime delay = rng() % 16 == 0 ? 1 + static_cast<SimTime>(rng() % 4096)
                                            : 1 + static_cast<SimTime>(rng() % 12);
      queue.schedule_in(delay, fire);
    }
  };
  for (int i = 0; i < 32 && remaining > 0; ++i) {
    --remaining;
    queue.schedule_at(rng() % 8, fire);
  }
  StormResult result;
  result.executed = queue.run_until_idle();
  result.checksum = hash;
  return result;
}

/// E5.3 driver; returns false if the two backends disagree on the order
/// fingerprint (a correctness failure of the wheel, not a perf matter).
bool print_event_core_series(bool smoke) {
  bench::print_header("E5.3: event-core scheduler A/B, binary heap vs timing wheel",
                      "identical execution-order fingerprints; events/sec per backend "
                      "(docs/PERFORMANCE.md)");
  const std::uint64_t events = smoke ? 20'000 : 400'000;
  Table table;
  table.columns = {"backend", "events", "ns_per_event", "events_per_sec", "order_checksum",
                   "identical"};
  StormResult reference;
  bool identical = true;
  for (const EventSchedulerKind backend :
       {EventSchedulerKind::kHeap, EventSchedulerKind::kWheel}) {
    StormResult result;
    const double ns_per_storm = bench::measure_ns_per_iter(
        [&] { result = run_event_storm(backend, events, 41); }, smoke ? 1 : 5,
        smoke ? 0.0 : 200.0);
    if (backend == EventSchedulerKind::kHeap) reference = result;
    identical &= result.checksum == reference.checksum && result.executed == reference.executed;
    const double ns_per_event = ns_per_storm / static_cast<double>(result.executed);
    table.add_row({event_scheduler_token(backend), bench::fmt_u(result.executed),
                   bench::fmt(ns_per_event), bench::fmt(1e9 / ns_per_event),
                   bench::fmt_hex(result.checksum),
                   result.checksum == reference.checksum ? "yes" : "NO"});
  }
  bench::emit_csv(table);
  std::printf("order checksums: %s\n", identical ? "identical" : "MISMATCH");
  return identical;
}

void BM_SimulationCheckRPrime(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    PRAutomaton concrete(inst);
    OneStepPRAutomaton abstract(inst);
    RandomSetScheduler scheduler(1);
    const auto r = check_forward_simulation(
        concrete, abstract, scheduler,
        [](const PRAutomaton& s, const OneStepPRAutomaton& t) { return relation_R_prime(s, t); },
        correspondence_R_prime);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_SimulationCheckRPrime)->Arg(32)->Arg(128);

void BM_RelationRPredicate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(10);
  const Instance inst = make_random_instance(n, n, rng);
  OneStepPRAutomaton s(inst);
  NewPRAutomaton t(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(relation_R(s, t));
  }
}
BENCHMARK(BM_RelationRPredicate)->Arg(64)->Arg(512);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  const bool smoke = lr::bench::consume_smoke_flag(argc, argv);
  const bool relations_ok = lr::print_expansion_table(smoke);
  if (smoke && !relations_ok) {
    std::fprintf(stderr, "E5.1 relation check FAILED\n");
    return 1;
  }
  if (!lr::print_ab_series(smoke)) {
    std::fprintf(stderr, "E5.2 A/B verification FAILED\n");
    return 1;
  }
  if (!lr::print_event_core_series(smoke)) {
    std::fprintf(stderr, "E5.3 event-core A/B verification FAILED\n");
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Experiment E4 — NewPR's dummy-step overhead (Section 4.1's discussion:
/// "This extra step in NewPR causes it to incur a greater cost in certain
/// situations, compared to PR").
///
/// Dummy steps are taken only by nodes that start as sinks or sources, so
/// the overhead is governed by how many such nodes the initial DAG has.
/// The star family maximizes it; random DAGs sit in between; the
/// away-chain (no interior initial sinks/sources) shows near-zero overhead.

#include <benchmark/benchmark.h>

#include "analysis/game.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/newpr.hpp"
#include "graph/generators.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

std::size_t initial_degenerate_nodes(const Instance& inst) {
  const Orientation o = inst.make_orientation();
  std::size_t count = 0;
  for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    if (u == inst.destination) continue;
    if (o.is_sink(u) || o.is_source(u)) ++count;
  }
  return count;
}

void print_overhead_table() {
  bench::print_header("E4: NewPR dummy-step overhead vs OneStepPR",
                      "overhead grows with initial sinks+sources; 0 when none");
  bench::print_row({"instance", "init_degen", "PR_steps", "NewPR_steps", "dummies",
                    "overhead%"},
                   20);
  std::mt19937_64 rng(13);
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(65));
  instances.push_back(make_sink_source_instance(17));
  instances.push_back(make_sink_source_instance(65));
  instances.push_back(make_sink_source_instance(257));
  instances.push_back(make_grid_instance(8, 8, rng));
  instances.push_back(make_random_instance(64, 32, rng));
  instances.push_back(make_random_instance(64, 256, rng));
  for (const Instance& inst : instances) {
    const auto pr = measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1);
    const auto np = measure_cost(inst, Strategy::kNewPR, SchedulerKind::kLowestId, 1);
    const double overhead =
        pr.social_cost == 0 ? 0.0
                            : 100.0 * static_cast<double>(np.dummy_steps) /
                                  static_cast<double>(pr.social_cost);
    bench::print_row({inst.name, std::to_string(initial_degenerate_nodes(inst)),
                      bench::fmt_u(pr.social_cost), bench::fmt_u(np.social_cost),
                      bench::fmt_u(np.dummy_steps), bench::fmt(overhead)},
                     20);
  }
}

void print_scaling_table() {
  bench::print_header("E4.2: dummy overhead scaling on the star family",
                      "dummies scale linearly with the number of initial sources");
  bench::print_row({"leaves", "dummies", "NewPR_steps", "dummy_fraction"});
  for (const std::size_t n : {9u, 17u, 33u, 65u, 129u, 257u}) {
    const Instance inst = make_sink_source_instance(n);
    const auto np = measure_cost(inst, Strategy::kNewPR, SchedulerKind::kLowestId, 1);
    bench::print_row({std::to_string(n - 1), bench::fmt_u(np.dummy_steps),
                      bench::fmt_u(np.social_cost),
                      bench::fmt(static_cast<double>(np.dummy_steps) /
                                 static_cast<double>(np.social_cost))});
  }
}

void BM_NewPROnStar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_sink_source_instance(n | 1);
  for (auto _ : state) {
    NewPRAutomaton automaton(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(automaton, scheduler).steps);
  }
}
BENCHMARK(BM_NewPROnStar)->Arg(33)->Arg(129)->Arg(513);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_overhead_table();
  lr::print_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

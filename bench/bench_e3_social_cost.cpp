/// Experiment E3 — the Charron-Bost et al. strategy comparison the paper
/// cites: FR vs PR vs NewPR social cost across instance families and
/// schedulers.
///
/// Expected shape: PR's total cost is below FR's in aggregate and on
/// structured families (chains, layered); on individual random DAGs PR can
/// occasionally lose (reproduced and counted here); NewPR's cost is PR's
/// plus its dummy steps.

#include <benchmark/benchmark.h>

#include "analysis/game.hpp"
#include "graph/generators.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

void print_family_table() {
  bench::print_header("E3.1: social cost by family (lowest-id scheduler)",
                      "PR <= FR on structured families; NewPR = PR + dummies");
  bench::print_row({"instance", "FR", "PR", "NewPR", "dummies", "FR/PR"});
  std::mt19937_64 rng(5);
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(65));
  instances.push_back(make_layered_bad_instance(8, 8, 0.3, rng));
  instances.push_back(make_grid_instance(8, 8, rng));
  instances.push_back(make_sink_source_instance(65));
  instances.push_back(make_random_instance(64, 64, rng));
  instances.push_back(make_random_instance(256, 256, rng));
  for (const Instance& inst : instances) {
    const auto fr = measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1);
    const auto pr = measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1);
    const auto np = measure_cost(inst, Strategy::kNewPR, SchedulerKind::kLowestId, 1);
    const double ratio = pr.social_cost == 0
                             ? 0.0
                             : static_cast<double>(fr.social_cost) /
                                   static_cast<double>(pr.social_cost);
    bench::print_row({inst.name, bench::fmt_u(fr.social_cost), bench::fmt_u(pr.social_cost),
                      bench::fmt_u(np.social_cost), bench::fmt_u(np.dummy_steps),
                      bench::fmt(ratio)},
                     22);
  }
}

void print_distribution_table() {
  bench::print_header("E3.2: FR vs PR across 100 random instances per size",
                      "PR wins in aggregate; occasional per-instance losses counted");
  bench::print_row({"n", "PR_wins", "FR_wins", "ties", "sum_FR", "sum_PR"});
  for (const std::size_t n : {16u, 64u, 128u}) {
    int pr_wins = 0, fr_wins = 0, ties = 0;
    std::uint64_t fr_sum = 0, pr_sum = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      std::mt19937_64 rng(seed * 31 + n);
      const Instance inst = make_random_instance(n, n, rng);
      const auto fr = measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, seed);
      const auto pr =
          measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, seed);
      fr_sum += fr.social_cost;
      pr_sum += pr.social_cost;
      if (pr.social_cost < fr.social_cost) ++pr_wins;
      else if (fr.social_cost < pr.social_cost) ++fr_wins;
      else ++ties;
    }
    bench::print_row({std::to_string(n), std::to_string(pr_wins), std::to_string(fr_wins),
                      std::to_string(ties), bench::fmt_u(fr_sum), bench::fmt_u(pr_sum)});
  }
}

void print_scheduler_table() {
  bench::print_header("E3.3: scheduler sensitivity of the strategies",
                      "FR's cost is schedule-independent; PR's varies little");
  bench::print_row({"scheduler", "FR", "PR", "NewPR"});
  std::mt19937_64 rng(77);
  const Instance inst = make_random_instance(96, 96, rng);
  for (const SchedulerKind kind : {SchedulerKind::kLowestId, SchedulerKind::kRandom,
                                   SchedulerKind::kRoundRobin, SchedulerKind::kFarthestFirst}) {
    const auto fr = measure_cost(inst, Strategy::kFullReversal, kind, 9);
    const auto pr = measure_cost(inst, Strategy::kPartialReversal, kind, 9);
    const auto np = measure_cost(inst, Strategy::kNewPR, kind, 9);
    bench::print_row({scheduler_name(kind), bench::fmt_u(fr.social_cost),
                      bench::fmt_u(pr.social_cost), bench::fmt_u(np.social_cost)});
  }
}

void print_nash_table() {
  bench::print_header("E3.4: the strategy game (Charron-Bost et al.)",
                      "all-FR is always a Nash equilibrium; all-PR only sometimes, "
                      "but with lower social cost");
  bench::print_row({"instance", "FR_nash", "PR_nash", "social_FR", "social_PR"}, 22);
  std::mt19937_64 rng(41);
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(9));
  instances.push_back(make_grid_instance(3, 3, rng));
  for (int trial = 0; trial < 4; ++trial) {
    instances.push_back(make_random_instance(10, 8, rng));
  }
  for (const Instance& inst : instances) {
    const std::size_t n = inst.graph.num_nodes();
    const auto fr_nash = check_nash_equilibrium(inst, HybridStrategyAutomaton::all_full(n));
    const auto pr_nash = check_nash_equilibrium(inst, HybridStrategyAutomaton::all_partial(n));
    const auto total = [](const std::vector<std::uint64_t>& v) {
      std::uint64_t sum = 0;
      for (const auto x : v) sum += x;
      return sum;
    };
    bench::print_row({inst.name, fr_nash.is_equilibrium ? "yes" : "NO",
                      pr_nash.is_equilibrium ? "yes" : "no",
                      bench::fmt_u(total(measure_profile_costs(
                          inst, HybridStrategyAutomaton::all_full(n)))),
                      bench::fmt_u(total(measure_profile_costs(
                          inst, HybridStrategyAutomaton::all_partial(n))))},
                     22);
  }
}

void BM_MeasureCostPR(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(3);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1).social_cost);
  }
}
BENCHMARK(BM_MeasureCostPR)->Arg(64)->Arg(256)->Arg(1024);

void BM_MeasureCostFR(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(3);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1).social_cost);
  }
}
BENCHMARK(BM_MeasureCostFR)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_family_table();
  lr::print_distribution_table();
  lr::print_scheduler_table();
  lr::print_nash_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Experiment E3 — the Charron-Bost et al. strategy comparison the paper
/// cites: FR vs PR vs NewPR social cost across instance families and
/// schedulers.
///
/// Expected shape: PR's total cost is below FR's in aggregate and on
/// structured families (chains, layered); on individual random DAGs PR can
/// occasionally lose (reproduced and counted here); NewPR's cost is PR's
/// plus its dummy steps.
///
/// All measurement loops run through the scenario runner (src/runner) —
/// the same code path as `lr_cli sweep` — so the 600-run distribution
/// sweep of E3.2 executes on the thread pool.  E3.4 (the Nash-equilibrium
/// check) is a game-theoretic analysis, not a run measurement, and stays
/// on the analysis layer directly.
///
/// E3.5 is the execution-path A/B mode (docs/PERFORMANCE.md): the social
/// cost kernels (fr / pr / newpr) replayed on `path = legacy` (the
/// paper-shaped automata) versus `path = csr` (the batched engine over the
/// sweep cache's frozen instances).  Record tables must be byte-identical
/// (FNV-1a table checksums) before the timings are trusted; the harness
/// exits non-zero otherwise.  `--smoke` shrinks every series to seconds,
/// skips the micro-timings, and is wired into the CI bench-smoke job.

#include <benchmark/benchmark.h>

#include <map>

#include "analysis/game.hpp"
#include "graph/generators.hpp"
#include "runner/runner.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

void print_family_table() {
  bench::print_header("E3.1: social cost by family (lowest-id scheduler)",
                      "PR <= FR on structured families; NewPR = PR + dummies");
  bench::print_row({"family", "nodes", "FR", "PR", "NewPR", "dummies", "FR/PR"}, 14);
  const std::vector<std::pair<TopologyKind, std::size_t>> families = {
      {TopologyKind::kChain, 65},  {TopologyKind::kLayered, 48}, {TopologyKind::kGrid, 64},
      {TopologyKind::kStar, 65},   {TopologyKind::kRandom, 64},  {TopologyKind::kRandom, 256},
  };
  std::vector<RunSpec> specs;
  for (const auto& [topology, size] : families) {
    for (const AlgorithmKind algorithm : {AlgorithmKind::kFullReversal,
                                          AlgorithmKind::kOneStepPR, AlgorithmKind::kNewPR}) {
      RunSpec spec;
      spec.topology = topology;
      spec.size = size;
      spec.algorithm = algorithm;
      specs.push_back(spec);
    }
  }
  const std::vector<RunRecord> records = ScenarioRunner().run_all(specs);
  for (std::size_t i = 0; i < families.size(); ++i) {
    const RunRecord& fr = records[3 * i];
    const RunRecord& pr = records[3 * i + 1];
    const RunRecord& np = records[3 * i + 2];
    const double ratio = pr.work == 0
                             ? 0.0
                             : static_cast<double>(fr.work) / static_cast<double>(pr.work);
    bench::print_row({topology_token(fr.spec.topology), bench::fmt_u(fr.nodes),
                      bench::fmt_u(fr.work), bench::fmt_u(pr.work), bench::fmt_u(np.work),
                      bench::fmt_u(np.dummy_steps), bench::fmt(ratio)},
                     14);
  }
}

void print_distribution_table(bool smoke) {
  bench::print_header("E3.2: FR vs PR across 100 random instances per size",
                      "PR wins in aggregate; occasional per-instance losses counted");
  bench::print_row({"n", "PR_wins", "FR_wins", "ties", "sum_FR", "sum_PR"});
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64, 128};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR};
  sweep.schedulers = {SchedulerKind::kLowestId};
  const std::uint64_t seed_count = smoke ? 10 : 100;
  for (std::uint64_t seed = 1; seed <= seed_count; ++seed) sweep.seeds.push_back(seed);
  const SweepReport report = ScenarioRunner().run(sweep);
  // Pair FR/PR by (size, seed): instance seeds ignore the algorithm axis,
  // so both records of a pair measured the *same* instance.
  std::map<std::pair<std::size_t, std::uint64_t>, std::pair<std::uint64_t, std::uint64_t>> cost;
  for (const RunRecord& record : report.records) {
    auto& pair = cost[{record.spec.size, record.spec.seed}];
    (record.spec.algorithm == AlgorithmKind::kFullReversal ? pair.first : pair.second) =
        record.work;
  }
  for (const std::size_t n : sweep.sizes) {
    int pr_wins = 0, fr_wins = 0, ties = 0;
    std::uint64_t fr_sum = 0, pr_sum = 0;
    for (const auto& [key, pair] : cost) {
      if (key.first != n) continue;
      fr_sum += pair.first;
      pr_sum += pair.second;
      if (pair.second < pair.first) ++pr_wins;
      else if (pair.first < pair.second) ++fr_wins;
      else ++ties;
    }
    bench::print_row({std::to_string(n), std::to_string(pr_wins), std::to_string(fr_wins),
                      std::to_string(ties), bench::fmt_u(fr_sum), bench::fmt_u(pr_sum)});
  }
}

void print_scheduler_table() {
  bench::print_header("E3.3: scheduler sensitivity of the strategies",
                      "FR's cost is schedule-independent; PR's varies little");
  bench::print_row({"scheduler", "FR", "PR", "NewPR"});
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = {96};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR,
                      AlgorithmKind::kNewPR};
  sweep.schedulers = {SchedulerKind::kLowestId, SchedulerKind::kRandom,
                      SchedulerKind::kRoundRobin, SchedulerKind::kFarthestFirst};
  sweep.seeds = {9};
  const SweepReport report = ScenarioRunner().run(sweep);
  for (const SchedulerKind kind : sweep.schedulers) {
    std::uint64_t fr = 0, pr = 0, np = 0;
    for (const RunRecord& record : report.records) {
      if (record.spec.scheduler != kind) continue;
      if (record.spec.algorithm == AlgorithmKind::kFullReversal) fr = record.work;
      if (record.spec.algorithm == AlgorithmKind::kOneStepPR) pr = record.work;
      if (record.spec.algorithm == AlgorithmKind::kNewPR) np = record.work;
    }
    bench::print_row(
        {scheduler_name(kind), bench::fmt_u(fr), bench::fmt_u(pr), bench::fmt_u(np)});
  }
}

void print_nash_table() {
  bench::print_header("E3.4: the strategy game (Charron-Bost et al.)",
                      "all-FR is always a Nash equilibrium; all-PR only sometimes, "
                      "but with lower social cost");
  bench::print_row({"instance", "FR_nash", "PR_nash", "social_FR", "social_PR"}, 22);
  std::mt19937_64 rng(41);
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(9));
  instances.push_back(make_grid_instance(3, 3, rng));
  for (int trial = 0; trial < 4; ++trial) {
    instances.push_back(make_random_instance(10, 8, rng));
  }
  for (const Instance& inst : instances) {
    const std::size_t n = inst.graph.num_nodes();
    const auto fr_nash = check_nash_equilibrium(inst, HybridStrategyAutomaton::all_full(n));
    const auto pr_nash = check_nash_equilibrium(inst, HybridStrategyAutomaton::all_partial(n));
    const auto total = [](const std::vector<std::uint64_t>& v) {
      std::uint64_t sum = 0;
      for (const auto x : v) sum += x;
      return sum;
    };
    bench::print_row({inst.name, fr_nash.is_equilibrium ? "yes" : "NO",
                      pr_nash.is_equilibrium ? "yes" : "no",
                      bench::fmt_u(total(measure_profile_costs(
                          inst, HybridStrategyAutomaton::all_full(n)))),
                      bench::fmt_u(total(measure_profile_costs(
                          inst, HybridStrategyAutomaton::all_partial(n))))},
                     22);
  }
}

// ---------------------------------------------------------------------------
// E3.5: the legacy-vs-CSR A/B comparison of the social cost kernels
// ---------------------------------------------------------------------------

/// The stock A/B scenario set: every strategy kernel over the structured
/// families and a random-graph slice, across two schedulers.
std::vector<RunSpec> stock_specs(bool smoke) {
  const std::vector<std::pair<TopologyKind, std::size_t>> families =
      smoke ? std::vector<std::pair<TopologyKind, std::size_t>>{{TopologyKind::kChain, 17},
                                                                {TopologyKind::kRandom, 16}}
            : std::vector<std::pair<TopologyKind, std::size_t>>{{TopologyKind::kChain, 65},
                                                                {TopologyKind::kLayered, 48},
                                                                {TopologyKind::kGrid, 64},
                                                                {TopologyKind::kStar, 65},
                                                                {TopologyKind::kRandom, 64}};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2};
  std::vector<RunSpec> specs;
  for (const auto& [topology, size] : families) {
    for (const AlgorithmKind algorithm : {AlgorithmKind::kFullReversal,
                                          AlgorithmKind::kOneStepPR, AlgorithmKind::kNewPR}) {
      for (const SchedulerKind scheduler :
           {SchedulerKind::kLowestId, SchedulerKind::kRandom}) {
        for (const std::uint64_t seed : seeds) {
          RunSpec spec;
          spec.topology = topology;
          spec.size = size;
          spec.algorithm = algorithm;
          spec.scheduler = scheduler;
          spec.seed = seed;
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

/// E3.5 driver; returns false (failing the harness) if any path pair
/// diverged in tables or checksums.  The equality check, the warm-cache
/// timing protocol, and the checksum columns are the shared kit in
/// bench_util.hpp (the same harness as E2.5 / E5.2 / E7.6).
bool print_ab_series(bool smoke) {
  bench::print_header("E3.5: execution-path A/B, legacy automata vs batched CSR engine",
                      "identical tables and table checksums for the social cost kernels "
                      "(docs/PERFORMANCE.md records the speedups)");
  const bool tables_ok = bench::ab_tables_identical(stock_specs(smoke));

  const std::size_t n = smoke ? 16 : 128;
  const std::string label = "random-" + std::to_string(n);
  std::vector<bench::AbSample> samples;
  for (const AlgorithmKind algorithm : {AlgorithmKind::kFullReversal,
                                        AlgorithmKind::kOneStepPR, AlgorithmKind::kNewPR}) {
    RunSpec spec;
    spec.topology = TopologyKind::kRandom;
    spec.size = n;
    spec.algorithm = algorithm;
    spec.scheduler = SchedulerKind::kLowestId;
    spec.seed = 1;
    samples.push_back(bench::measure_cached_ab(label, spec, smoke ? 20.0 : 300.0));
  }
  bench::emit_csv(bench::ab_table(samples));

  bool checksums_ok = true;
  for (const bench::AbSample& sample : samples) checksums_ok &= sample.identical();
  std::printf("table checksums: %s\n", checksums_ok ? "all identical" : "MISMATCH");
  return tables_ok && checksums_ok;
}

void BM_MeasureCostPR(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(3);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1).social_cost);
  }
}
BENCHMARK(BM_MeasureCostPR)->Arg(64)->Arg(256)->Arg(1024);

void BM_MeasureCostFR(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(3);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1).social_cost);
  }
}
BENCHMARK(BM_MeasureCostFR)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  const bool smoke = lr::bench::consume_smoke_flag(argc, argv);
  lr::print_family_table();
  lr::print_distribution_table(smoke);
  if (!smoke) {
    lr::print_scheduler_table();
    lr::print_nash_table();
  }
  if (!lr::print_ab_series(smoke)) {
    std::fprintf(stderr, "E3.5 A/B verification FAILED\n");
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

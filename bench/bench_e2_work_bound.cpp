/// Experiment E2 — the Θ(n_b²) worst-case work bound (Busch et al.;
/// Welch–Walter), the quantitative backdrop of the paper's Section 1.
///
/// Series reproduced:
///  1. FR on the away-oriented chain: exactly n_b(n_b+1)/2 reversals —
///     growth exponent ≈ 2 (the tight worst case).
///  2. PR on the same chain: exactly n_b reversals — exponent ≈ 1 (the
///     chain is PR's *best* case; its Θ(n_b²) worst case needs a different
///     gadget, approximated below by an empirical adversarial search, per
///     docs/EXPERIMENTS.md).
///  3. Layered bad instances: measured work for both, still within the
///     quadratic ceiling.
///  4. Empirical PR worst case: max work/n_b over random instances and an
///     adversarial scheduler sweep.
///  5. A/B execution-path comparison (docs/PERFORMANCE.md): the batched
///     CSR engine vs the legacy automaton path on the stock E2 scenario
///     set.  Result tables must be byte-identical and final-state
///     checksums must match — the harness exits non-zero otherwise — and
///     the per-iteration nanoseconds on the largest stock topology are the
///     committed baseline numbers.
///  6. Parallel greedy rounds: the engine's sharded worklist kernels vs
///     the serial kernel across thread counts, plus the runner-level
///     engine_threads table A/B.  Results and final orientations must be
///     byte-identical at every thread count; the scaling numbers land in
///     docs/PERFORMANCE.md.
///
/// All measurement loops run through the scenario runner (src/runner), so
/// these series use exactly the code path of `lr_cli sweep` and execute
/// their runs on the thread pool.  Series tables are emitted as
/// trace-layer CSV (bench_util.hpp).  `--smoke` shrinks every series to
/// seconds and skips the google-benchmark micro-timings; CI runs it to
/// keep this harness from bit-rotting.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/rounds.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/pr.hpp"
#include "core/reversal_engine.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "runner/runner.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

RunSpec chain_spec(std::size_t n, AlgorithmKind algorithm) {
  RunSpec spec;
  spec.topology = TopologyKind::kChain;
  spec.size = n;
  spec.algorithm = algorithm;
  spec.scheduler = SchedulerKind::kLowestId;
  spec.seed = 1;
  return spec;
}

/// Largest chain of the stock series: nb = 512 (nb = 32 under --smoke).
std::size_t max_chain_nb(bool smoke) { return smoke ? 32 : 512; }

void print_chain_series(bool smoke) {
  bench::print_header("E2.1/E2.2: away-chain work, FR vs PR",
                      "FR = nb(nb+1)/2 exactly (Θ(nb²)); PR = nb exactly (Θ(nb))");
  std::vector<RunSpec> specs;
  std::vector<std::uint64_t> nbs;
  for (std::size_t nb = 4; nb <= max_chain_nb(smoke); nb *= 2) {
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kFullReversal));
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kOneStepPR));
    nbs.push_back(nb);
  }
  const std::vector<RunRecord> records = ScenarioRunner().run_all(specs);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fr_series, pr_series;
  Table table;
  table.columns = {"nb", "fr_measured", "fr_closed", "pr_measured", "pr_closed"};
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    const std::uint64_t nb = nbs[i];
    const RunRecord& fr = records[2 * i];
    const RunRecord& pr = records[2 * i + 1];
    fr_series.emplace_back(nb, fr.work);
    pr_series.emplace_back(nb, pr.work);
    table.add_row({bench::fmt_u(nb), bench::fmt_u(fr.work), bench::fmt_u(fr_chain_work(nb)),
                   bench::fmt_u(pr.work), bench::fmt_u(pr_chain_work(nb))});
  }
  bench::emit_csv(table);
  std::printf("growth exponent: FR=%.3f (expect ~2), PR=%.3f (expect ~1)\n",
              fit_growth_exponent(fr_series), fit_growth_exponent(pr_series));
}

/// The E2.3 scenario list (fr/pr pairs per (size, seed)); shared by the
/// series printer and the A/B equality set so they cannot drift apart.
std::vector<RunSpec> layered_specs(bool smoke) {
  const std::vector<std::size_t> sizes = smoke ? std::vector<std::size_t>{16}
                                               : std::vector<std::size_t>{16, 48, 112};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2};
  std::vector<RunSpec> specs;
  for (const std::size_t size : sizes) {
    for (const std::uint64_t seed : seeds) {
      for (const AlgorithmKind algorithm :
           {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR}) {
        RunSpec spec;
        spec.topology = TopologyKind::kLayered;
        spec.size = size;
        spec.algorithm = algorithm;
        spec.seed = seed;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

void print_layered_series(bool smoke) {
  bench::print_header("E2.3: layered all-bad instances",
                      "work within the 2·nb²+nb ceiling for both algorithms");
  const std::vector<RunRecord> records = ScenarioRunner().run_all(layered_specs(smoke));
  Table table;
  table.columns = {"size", "nodes", "nb", "fr_work", "pr_work", "ceiling"};
  for (std::size_t i = 0; i + 1 < records.size(); i += 2) {
    const RunRecord& fr = records[i];
    const RunRecord& pr = records[i + 1];
    table.add_row({bench::fmt_u(fr.spec.size), bench::fmt_u(fr.nodes),
                   bench::fmt_u(fr.bad_nodes), bench::fmt_u(fr.work), bench::fmt_u(pr.work),
                   bench::fmt_u(quadratic_work_ceiling(fr.bad_nodes))});
  }
  bench::emit_csv(table);
}

SweepSpec adversarial_sweep(bool smoke) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 32, 64};
  sweep.algorithms = {AlgorithmKind::kOneStepPR};
  sweep.schedulers = {SchedulerKind::kLowestId, SchedulerKind::kFarthestFirst,
                      SchedulerKind::kRandom};
  const std::uint64_t seed_count = smoke ? 8 : 40;
  for (std::uint64_t seed = 1; seed <= seed_count; ++seed) sweep.seeds.push_back(seed);
  return sweep;
}

void print_pr_adversarial_search(bool smoke) {
  bench::print_header("E2.4: empirical PR worst case (adversarial search)",
                      "max PR work / nb over random instances & schedulers; "
                      "bounded by the quadratic ceiling");
  const SweepSpec sweep = adversarial_sweep(smoke);
  const SweepReport report = ScenarioRunner().run(sweep);
  Table table;
  table.columns = {"n", "instances", "max_work_per_nb", "max_work_per_nb2", "ceiling_ok"};
  for (const std::size_t n : sweep.sizes) {
    double max_ratio_linear = 0;
    double max_ratio_quad = 0;
    bool ceiling_ok = true;
    for (const RunRecord& record : report.records) {
      if (record.spec.size != n || record.bad_nodes == 0) continue;
      const auto nb = static_cast<double>(record.bad_nodes);
      max_ratio_linear = std::max(max_ratio_linear, static_cast<double>(record.work) / nb);
      max_ratio_quad = std::max(max_ratio_quad, static_cast<double>(record.work) / (nb * nb));
      if (record.work > quadratic_work_ceiling(record.bad_nodes)) ceiling_ok = false;
    }
    table.add_row({std::to_string(n), bench::fmt_u(sweep.seeds.size()) + "x3",
                   bench::fmt(max_ratio_linear), bench::fmt(max_ratio_quad),
                   ceiling_ok ? "yes" : "NO"});
  }
  bench::emit_csv(table);
}

// ---------------------------------------------------------------------------
// E2.5: the legacy-vs-CSR A/B comparison
// ---------------------------------------------------------------------------

/// The stock E2 scenario set (series 1–3), the set the A/B equality check
/// replays on both execution paths.
std::vector<RunSpec> stock_specs(bool smoke) {
  std::vector<RunSpec> specs;
  for (std::size_t nb = 4; nb <= max_chain_nb(smoke); nb *= 2) {
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kFullReversal));
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kOneStepPR));
  }
  for (const RunSpec& spec : layered_specs(smoke)) specs.push_back(spec);
  for (const RunSpec& spec : adversarial_sweep(smoke).expand()) specs.push_back(spec);
  return specs;
}

/// Final-orientation checksum of one spec on the legacy path (automaton +
/// LowestIdScheduler, the stock chain-series configuration).
std::uint64_t legacy_checksum(const RunSpec& spec) {
  const Instance instance = make_instance(spec);
  LowestIdScheduler scheduler;
  if (spec.algorithm == AlgorithmKind::kFullReversal) {
    FullReversalAutomaton automaton(instance);
    run_to_quiescence(automaton, scheduler, RunOptions{.max_steps = spec.max_steps});
    return senses_checksum(automaton.orientation().senses());
  }
  OneStepPRAutomaton automaton(instance);
  run_to_quiescence(automaton, scheduler, RunOptions{.max_steps = spec.max_steps});
  return senses_checksum(automaton.orientation().senses());
}

/// Final-orientation checksum of one spec on the CSR path.
std::uint64_t csr_checksum(const RunSpec& spec) {
  const Instance instance = make_instance(spec);
  ReversalEngine engine(instance);
  engine.run(spec.algorithm == AlgorithmKind::kFullReversal ? EngineAlgorithm::kFullReversal
                                                            : EngineAlgorithm::kOneStepPR,
             EnginePolicy::kLowestId, {.max_steps = spec.max_steps});
  return engine.state_checksum();
}

/// Times execute_run (instance construction + kernel + greedy rounds, the
/// exact per-run work of a sweep) on both paths for one scenario.  The
/// checksum helpers above verify the lowest-id configuration, so that is
/// the only scheduler this harness accepts.
bench::AbSample measure_ab(const std::string& topology_label, RunSpec spec, bool smoke) {
  if (spec.scheduler != SchedulerKind::kLowestId) {
    throw std::invalid_argument("measure_ab: checksums are computed for lowest-id only");
  }
  const double min_ms = smoke ? 20.0 : 300.0;
  bench::AbSample sample;
  sample.topology = topology_label;
  sample.label = algorithm_token(spec.algorithm);
  spec.path = ExecutionPath::kLegacy;
  sample.legacy_ns_per_iter = bench::measure_ns_per_iter(
      [&spec] { execute_run(spec); }, 5, min_ms, &sample.legacy_iterations);
  sample.legacy_checksum = legacy_checksum(spec);
  spec.path = ExecutionPath::kCsr;
  sample.csr_ns_per_iter = bench::measure_ns_per_iter([&spec] { execute_run(spec); }, 5, min_ms,
                                                      &sample.csr_iterations);
  sample.csr_checksum = csr_checksum(spec);
  return sample;
}

/// E2.5 driver; returns false (failing the harness) if any path pair
/// diverged in tables or checksums.
bool print_ab_series(bool smoke) {
  bench::print_header("E2.5: execution-path A/B, legacy automata vs batched CSR engine",
                      "identical tables and final states; CSR >= 3x on the largest "
                      "stock topology (docs/PERFORMANCE.md)");
  const bool tables_ok = bench::ab_tables_identical(stock_specs(smoke));

  const std::size_t nb = max_chain_nb(smoke);
  std::vector<bench::AbSample> samples;
  const std::string chain_label = "chain-" + std::to_string(nb);
  samples.push_back(measure_ab(chain_label, chain_spec(nb + 1, AlgorithmKind::kFullReversal),
                               smoke));
  samples.push_back(measure_ab(chain_label, chain_spec(nb + 1, AlgorithmKind::kOneStepPR),
                               smoke));
  if (!smoke) {
    RunSpec layered;
    layered.topology = TopologyKind::kLayered;
    layered.size = 112;
    layered.seed = 1;
    layered.algorithm = AlgorithmKind::kFullReversal;
    samples.push_back(measure_ab("layered-112", layered, smoke));
    layered.algorithm = AlgorithmKind::kOneStepPR;
    samples.push_back(measure_ab("layered-112", layered, smoke));
  }
  bench::emit_csv(bench::ab_table(samples));

  bool checksums_ok = true;
  for (const bench::AbSample& sample : samples) checksums_ok &= sample.identical();
  std::printf("checksums: %s\n", checksums_ok ? "all identical" : "MISMATCH");
  if (!smoke) {
    std::printf("largest stock topology (%s) speedup: fr=%.2fx pr=%.2fx (target >= 3x)\n",
                chain_label.c_str(), samples[0].speedup(), samples[1].speedup());
  }
  return tables_ok && checksums_ok;
}

// ---------------------------------------------------------------------------
// E2.6: parallel greedy rounds — serial engine vs sharded worklist kernels
// ---------------------------------------------------------------------------

/// One rounds A/B measurement on a fixed instance: the legacy maximal-set
/// path (analysis/rounds.hpp, the ExecutionPath::kLegacy counterpart) vs
/// the batched engine serial and sharded with pools of 2 / 4 workers.
/// Every engine configuration is checksum-verified against the serial
/// result, and the legacy path against the round/step totals, before any
/// timing is trusted.
struct RoundsSample {
  std::string topology;              ///< instance label, e.g. "grid-64"
  std::string kernel;                ///< "fr" or "pr"
  std::uint64_t rounds = 0;          ///< greedy rounds to convergence
  std::uint64_t node_steps = 0;      ///< total sink fires (round widths sum)
  double legacy_ns = 0.0;            ///< legacy maximal-set path
  double serial_ns = 0.0;            ///< engine, 1 worker
  double t2_ns = 0.0;                ///< engine, 2 workers
  double t4_ns = 0.0;                ///< engine, 4 workers
  std::uint64_t serial_checksum = 0;  ///< final orientation, serial kernel
  bool identical = true;  ///< all configurations matched the serial kernel

  /// Rounds per second at the given per-execution cost.
  double throughput(double ns) const {
    return ns > 0.0 ? static_cast<double>(rounds) * 1e9 / ns : 0.0;
  }
};

RoundsSample measure_parallel_rounds(const std::string& label, const Instance& instance,
                                     EngineAlgorithm algorithm, bool smoke) {
  const double min_ms = smoke ? 10.0 : 200.0;
  const std::uint64_t budget = 10'000'000;
  RoundsSample sample;
  sample.topology = label;
  sample.kernel = algorithm == EngineAlgorithm::kFullReversal ? "fr" : "pr";

  ReversalEngine engine(instance);
  const EngineRoundsResult serial = engine.run_greedy_rounds(algorithm, budget);
  sample.rounds = serial.rounds;
  sample.node_steps = serial.node_steps;
  sample.serial_checksum = engine.state_checksum();
  sample.serial_ns =
      bench::measure_ns_per_iter([&] { engine.run_greedy_rounds(algorithm, budget); }, 3, min_ms);

  const RoundStrategy legacy_strategy = algorithm == EngineAlgorithm::kFullReversal
                                            ? RoundStrategy::kFullReversal
                                            : RoundStrategy::kPartialReversal;
  const RoundHistory history = run_greedy_rounds(instance, legacy_strategy, budget);
  sample.identical &= history.total_rounds() == serial.rounds &&
                      history.total_node_steps() == serial.node_steps &&
                      history.converged == serial.converged;
  sample.legacy_ns = bench::measure_ns_per_iter(
      [&] { run_greedy_rounds(instance, legacy_strategy, budget); }, 3, min_ms);

  for (const std::size_t workers : {2u, 4u}) {
    ThreadPool pool(workers);
    // Verification forces the sharded kernel onto *every* round
    // (min_parallel_work = 1) so the equality check genuinely exercises
    // the parallel path at smoke sizes too; the timing runs keep the
    // default threshold, the configuration users get.
    const EngineRoundsOptions verify_options{
        .max_rounds = budget, .pool = &pool, .min_parallel_work = 1};
    const EngineRoundsResult parallel = engine.run_greedy_rounds(algorithm, verify_options);
    sample.identical &= parallel.rounds == serial.rounds &&
                        parallel.node_steps == serial.node_steps &&
                        parallel.edge_reversals == serial.edge_reversals &&
                        parallel.converged == serial.converged &&
                        engine.state_checksum() == sample.serial_checksum;
    const EngineRoundsOptions timing_options{.max_rounds = budget, .pool = &pool};
    const double ns = bench::measure_ns_per_iter(
        [&] { engine.run_greedy_rounds(algorithm, timing_options); }, 3, min_ms);
    (workers == 2 ? sample.t2_ns : sample.t4_ns) = ns;
  }
  return sample;
}

/// E2.6 driver; returns false if any thread count diverged from the serial
/// kernel (results or final orientation).  Also replays a stock scenario
/// subset through the runner at engine_threads 1 vs 4 and demands
/// byte-identical record + aggregate tables — the ExecutionPath-style
/// harness for the engine_threads sweep option.
bool print_parallel_rounds_series(bool smoke) {
  bench::print_header(
      "E2.6: parallel greedy rounds, serial vs sharded worklist kernels",
      "byte-identical results and orientations at every thread count; wide "
      "rounds scale with cores (docs/PERFORMANCE.md records the table)");

  // Runner-level A/B over the chain + layered stock scenarios: the rounds
  // measure is the only engine_threads consumer, so tables must be
  // byte-identical across thread counts.  The stock sizes all sit below
  // the engine's work threshold (round width x max firing degree >=
  // min_parallel_work), so two wide specs ride along: chain-4096 (peak
  // width 2048 at degree 2 — work 4096, shards) and star-4097 (leaf
  // rounds are 2048 x degree 1 — work 2048, and the hub fires alone —
  // the negative control that must stay on the inline path even with a
  // pool in hand); without chain-4096 the A/B would compare serial
  // against serial.
  std::vector<RunSpec> specs;
  for (std::size_t nb = 4; nb <= max_chain_nb(smoke); nb *= 2) {
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kFullReversal));
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kOneStepPR));
  }
  for (const RunSpec& spec : layered_specs(smoke)) specs.push_back(spec);
  specs.push_back(chain_spec(4097, AlgorithmKind::kFullReversal));
  RunSpec wide_star;
  wide_star.topology = TopologyKind::kStar;
  wide_star.size = 4097;
  wide_star.algorithm = AlgorithmKind::kFullReversal;
  specs.push_back(wide_star);
  const auto tables_at = [&specs](std::size_t engine_threads) {
    std::vector<RunSpec> configured = specs;
    for (RunSpec& spec : configured) spec.engine_threads = engine_threads;
    return bench::sweep_report_csv(SweepReport{ScenarioRunner().run_all(configured), {}});
  };
  const bool tables_ok = tables_at(1) == tables_at(4);
  std::printf("engine_threads 1 vs 4 over %zu stock scenarios: %s\n", specs.size(),
              tables_ok ? "byte-identical tables" : "TABLE MISMATCH");

  // Engine-level scaling: narrow-round worst case (chain), mixed-width
  // (grid, random), and maximally wide rounds (star).
  std::mt19937_64 rng(23);
  const std::size_t chain_nb = smoke ? 256 : 4096;
  const std::size_t grid_side = smoke ? 16 : 64;
  const std::size_t star_n = smoke ? 257 : 4097;
  const std::size_t random_n = smoke ? 256 : 4096;
  std::vector<RoundsSample> samples;
  samples.push_back(measure_parallel_rounds("chain-" + std::to_string(chain_nb),
                                            make_worst_case_chain(chain_nb + 1),
                                            EngineAlgorithm::kFullReversal, smoke));
  const Instance grid = make_grid_instance(grid_side, grid_side, rng);
  samples.push_back(measure_parallel_rounds("grid-" + std::to_string(grid_side), grid,
                                            EngineAlgorithm::kFullReversal, smoke));
  samples.push_back(measure_parallel_rounds("grid-" + std::to_string(grid_side), grid,
                                            EngineAlgorithm::kOneStepPR, smoke));
  samples.push_back(measure_parallel_rounds("star-" + std::to_string(star_n),
                                            make_sink_source_instance(star_n),
                                            EngineAlgorithm::kFullReversal, smoke));
  samples.push_back(measure_parallel_rounds("random-" + std::to_string(random_n),
                                            make_random_instance(random_n, 2 * random_n, rng),
                                            EngineAlgorithm::kOneStepPR, smoke));

  Table table;
  table.columns = {"topology",       "kernel",        "rounds",        "node_steps",
                   "legacy_ns",      "serial_ns",     "t2_ns",         "t4_ns",
                   "rounds_per_sec_t2", "speedup_vs_legacy_t2", "speedup_vs_serial_t2",
                   "speedup_vs_serial_t4", "serial_checksum", "identical"};
  bool checksums_ok = true;
  for (const RoundsSample& sample : samples) {
    checksums_ok &= sample.identical;
    table.add_row({sample.topology, sample.kernel, bench::fmt_u(sample.rounds),
                   bench::fmt_u(sample.node_steps), bench::fmt(sample.legacy_ns),
                   bench::fmt(sample.serial_ns), bench::fmt(sample.t2_ns),
                   bench::fmt(sample.t4_ns), bench::fmt(sample.throughput(sample.t2_ns)),
                   bench::fmt(sample.t2_ns > 0 ? sample.legacy_ns / sample.t2_ns : 0.0),
                   bench::fmt(sample.t2_ns > 0 ? sample.serial_ns / sample.t2_ns : 0.0),
                   bench::fmt(sample.t4_ns > 0 ? sample.serial_ns / sample.t4_ns : 0.0),
                   bench::fmt_hex(sample.serial_checksum), sample.identical ? "yes" : "NO"});
  }
  bench::emit_csv(table);
  std::printf("parallel-vs-serial and legacy-vs-engine results: %s\n",
              checksums_ok ? "all identical" : "MISMATCH");
  return tables_ok && checksums_ok;
}

void BM_FRChain(benchmark::State& state) {
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_worst_case_chain(nb + 1);
  for (auto _ : state) {
    FullReversalAutomaton fr(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(fr, scheduler).node_steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_FRChain)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_PRChain(benchmark::State& state) {
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_worst_case_chain(nb + 1);
  for (auto _ : state) {
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(pr, scheduler).node_steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_PRChain)->RangeMultiplier(2)->Range(8, 256)->Complexity();

/// The batched engine on the same chains (contrast with BM_FRChain /
/// BM_PRChain; the engine amortizes its allocations across iterations the
/// same way a sweep does).
void BM_EngineChain(benchmark::State& state) {
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const bool full = state.range(1) != 0;
  const Instance inst = make_worst_case_chain(nb + 1);
  ReversalEngine engine(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_to_quiescence(engine,
                          full ? EngineAlgorithm::kFullReversal : EngineAlgorithm::kOneStepPR,
                          EnginePolicy::kLowestId)
            .node_steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_EngineChain)->ArgsProduct({{8, 16, 32, 64, 128, 256}, {0, 1}})->Complexity();

/// The parallel sweep engine itself, end to end (expansion + pool + tables).
void BM_ScenarioSweep(benchmark::State& state) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = {32};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR};
  sweep.schedulers = {SchedulerKind::kLowestId};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) sweep.seeds.push_back(seed);
  const ScenarioRunner runner(RunnerOptions{.threads = static_cast<std::size_t>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(sweep).records.size());
  }
}
BENCHMARK(BM_ScenarioSweep)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  const bool smoke = lr::bench::consume_smoke_flag(argc, argv);
  lr::print_chain_series(smoke);
  lr::print_layered_series(smoke);
  lr::print_pr_adversarial_search(smoke);
  if (!lr::print_ab_series(smoke)) {
    std::fprintf(stderr, "E2.5 A/B verification FAILED\n");
    return 1;
  }
  if (!lr::print_parallel_rounds_series(smoke)) {
    std::fprintf(stderr, "E2.6 parallel-rounds verification FAILED\n");
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

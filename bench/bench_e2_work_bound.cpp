/// Experiment E2 — the Θ(n_b²) worst-case work bound (Busch et al.;
/// Welch–Walter), the quantitative backdrop of the paper's Section 1.
///
/// Series reproduced:
///  1. FR on the away-oriented chain: exactly n_b(n_b+1)/2 reversals —
///     growth exponent ≈ 2 (the tight worst case).
///  2. PR on the same chain: exactly n_b reversals — exponent ≈ 1 (the
///     chain is PR's *best* case; its Θ(n_b²) worst case needs a different
///     gadget, approximated below by an empirical adversarial search, per
///     docs/EXPERIMENTS.md).
///  3. Layered bad instances: measured work for both, still within the
///     quadratic ceiling.
///  4. Empirical PR worst case: max work/n_b over random instances and an
///     adversarial scheduler sweep.
///
/// All measurement loops run through the scenario runner (src/runner), so
/// these series use exactly the code path of `lr_cli sweep` and execute
/// their runs on the thread pool.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "analysis/bounds.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"
#include "runner/runner.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

RunSpec chain_spec(std::size_t n, AlgorithmKind algorithm) {
  RunSpec spec;
  spec.topology = TopologyKind::kChain;
  spec.size = n;
  spec.algorithm = algorithm;
  spec.scheduler = SchedulerKind::kLowestId;
  spec.seed = 1;
  return spec;
}

void print_chain_series() {
  bench::print_header("E2.1/E2.2: away-chain work, FR vs PR",
                      "FR = nb(nb+1)/2 exactly (Θ(nb²)); PR = nb exactly (Θ(nb))");
  bench::print_row({"nb", "FR_measured", "FR_closed", "PR_measured", "PR_closed"});
  std::vector<RunSpec> specs;
  std::vector<std::uint64_t> nbs;
  for (std::size_t nb = 4; nb <= 512; nb *= 2) {
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kFullReversal));
    specs.push_back(chain_spec(nb + 1, AlgorithmKind::kOneStepPR));
    nbs.push_back(nb);
  }
  const std::vector<RunRecord> records = ScenarioRunner().run_all(specs);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fr_series, pr_series;
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    const std::uint64_t nb = nbs[i];
    const RunRecord& fr = records[2 * i];
    const RunRecord& pr = records[2 * i + 1];
    fr_series.emplace_back(nb, fr.work);
    pr_series.emplace_back(nb, pr.work);
    bench::print_row({bench::fmt_u(nb), bench::fmt_u(fr.work), bench::fmt_u(fr_chain_work(nb)),
                      bench::fmt_u(pr.work), bench::fmt_u(pr_chain_work(nb))});
  }
  std::printf("growth exponent: FR=%.3f (expect ~2), PR=%.3f (expect ~1)\n",
              fit_growth_exponent(fr_series), fit_growth_exponent(pr_series));
}

void print_layered_series() {
  bench::print_header("E2.3: layered all-bad instances",
                      "work within the 2·nb²+nb ceiling for both algorithms");
  bench::print_row({"size", "nodes", "nb", "FR_work", "PR_work", "ceiling"});
  std::vector<RunSpec> specs;
  for (const std::size_t size : {16u, 48u, 112u}) {
    for (const std::uint64_t seed : {1u, 2u}) {
      for (const AlgorithmKind algorithm :
           {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR}) {
        RunSpec spec;
        spec.topology = TopologyKind::kLayered;
        spec.size = size;
        spec.algorithm = algorithm;
        spec.seed = seed;
        specs.push_back(spec);
      }
    }
  }
  const std::vector<RunRecord> records = ScenarioRunner().run_all(specs);
  for (std::size_t i = 0; i + 1 < records.size(); i += 2) {
    const RunRecord& fr = records[i];
    const RunRecord& pr = records[i + 1];
    bench::print_row({bench::fmt_u(fr.spec.size), bench::fmt_u(fr.nodes),
                      bench::fmt_u(fr.bad_nodes), bench::fmt_u(fr.work), bench::fmt_u(pr.work),
                      bench::fmt_u(quadratic_work_ceiling(fr.bad_nodes))});
  }
}

void print_pr_adversarial_search() {
  bench::print_header("E2.4: empirical PR worst case (adversarial search)",
                      "max PR work / nb over random instances & schedulers; "
                      "bounded by the quadratic ceiling");
  bench::print_row({"n", "instances", "max_work/nb", "max_work/nb^2", "ceiling_ok"});
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = {16, 32, 64};
  sweep.algorithms = {AlgorithmKind::kOneStepPR};
  sweep.schedulers = {SchedulerKind::kLowestId, SchedulerKind::kFarthestFirst,
                      SchedulerKind::kRandom};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) sweep.seeds.push_back(seed);
  const SweepReport report = ScenarioRunner().run(sweep);
  for (const std::size_t n : sweep.sizes) {
    double max_ratio_linear = 0;
    double max_ratio_quad = 0;
    bool ceiling_ok = true;
    for (const RunRecord& record : report.records) {
      if (record.spec.size != n || record.bad_nodes == 0) continue;
      const auto nb = static_cast<double>(record.bad_nodes);
      max_ratio_linear = std::max(max_ratio_linear, static_cast<double>(record.work) / nb);
      max_ratio_quad = std::max(max_ratio_quad, static_cast<double>(record.work) / (nb * nb));
      if (record.work > quadratic_work_ceiling(record.bad_nodes)) ceiling_ok = false;
    }
    bench::print_row({std::to_string(n), "40x3", bench::fmt(max_ratio_linear),
                      bench::fmt(max_ratio_quad), ceiling_ok ? "yes" : "NO"});
  }
}

void BM_FRChain(benchmark::State& state) {
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_worst_case_chain(nb + 1);
  for (auto _ : state) {
    FullReversalAutomaton fr(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(fr, scheduler).node_steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_FRChain)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_PRChain(benchmark::State& state) {
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_worst_case_chain(nb + 1);
  for (auto _ : state) {
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(pr, scheduler).node_steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_PRChain)->RangeMultiplier(2)->Range(8, 256)->Complexity();

/// The parallel sweep engine itself, end to end (expansion + pool + tables).
void BM_ScenarioSweep(benchmark::State& state) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = {32};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR};
  sweep.schedulers = {SchedulerKind::kLowestId};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) sweep.seeds.push_back(seed);
  const ScenarioRunner runner(RunnerOptions{.threads = static_cast<std::size_t>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(sweep).records.size());
  }
}
BENCHMARK(BM_ScenarioSweep)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_chain_series();
  lr::print_layered_series();
  lr::print_pr_adversarial_search();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Experiment E2 — the Θ(n_b²) worst-case work bound (Busch et al.;
/// Welch–Walter), the quantitative backdrop of the paper's Section 1.
///
/// Series reproduced:
///  1. FR on the away-oriented chain: exactly n_b(n_b+1)/2 reversals —
///     growth exponent ≈ 2 (the tight worst case).
///  2. PR on the same chain: exactly n_b reversals — exponent ≈ 1 (the
///     chain is PR's *best* case; its Θ(n_b²) worst case needs a different
///     gadget, approximated below by an empirical adversarial search, per
///     DESIGN.md §3).
///  3. Layered bad instances: measured work for both, still within the
///     quadratic ceiling.
///  4. Empirical PR worst case: max work/n_b over random dense instances
///     and the farthest-first adversarial scheduler.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "analysis/bounds.hpp"
#include "analysis/game.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

void print_chain_series() {
  bench::print_header("E2.1/E2.2: away-chain work, FR vs PR",
                      "FR = nb(nb+1)/2 exactly (Θ(nb²)); PR = nb exactly (Θ(nb))");
  bench::print_row({"nb", "FR_measured", "FR_closed", "PR_measured", "PR_closed"});
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fr_series, pr_series;
  for (std::size_t nb = 4; nb <= 512; nb *= 2) {
    const Instance inst = make_worst_case_chain(nb + 1);
    const auto fr = measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1);
    const auto pr = measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1);
    fr_series.emplace_back(nb, fr.social_cost);
    pr_series.emplace_back(nb, pr.social_cost);
    bench::print_row({bench::fmt_u(nb), bench::fmt_u(fr.social_cost),
                      bench::fmt_u(fr_chain_work(nb)), bench::fmt_u(pr.social_cost),
                      bench::fmt_u(pr_chain_work(nb))});
  }
  std::printf("growth exponent: FR=%.3f (expect ~2), PR=%.3f (expect ~1)\n",
              fit_growth_exponent(fr_series), fit_growth_exponent(pr_series));
}

void print_layered_series() {
  bench::print_header("E2.3: layered all-bad instances",
                      "work within the 2·nb²+nb ceiling for both algorithms");
  bench::print_row({"layers", "width", "nb", "FR_work", "PR_work", "ceiling"});
  std::mt19937_64 rng(11);
  for (const std::size_t layers : {4u, 8u, 16u}) {
    for (const std::size_t width : {4u, 8u}) {
      const Instance inst = make_layered_bad_instance(layers, width, 0.4, rng);
      const std::uint64_t nb = count_bad_nodes(inst);
      const auto fr = measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1);
      const auto pr = measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1);
      bench::print_row({std::to_string(layers), std::to_string(width), bench::fmt_u(nb),
                        bench::fmt_u(fr.social_cost), bench::fmt_u(pr.social_cost),
                        bench::fmt_u(quadratic_work_ceiling(nb))});
    }
  }
}

void print_pr_adversarial_search() {
  bench::print_header("E2.4: empirical PR worst case (adversarial search)",
                      "max PR work / nb over random instances & schedulers; "
                      "bounded by the quadratic ceiling");
  bench::print_row({"n", "instances", "max_work/nb", "max_work/nb^2", "ceiling_ok"});
  for (const std::size_t n : {16u, 32u, 64u}) {
    double max_ratio_linear = 0;
    double max_ratio_quad = 0;
    bool ceiling_ok = true;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      std::mt19937_64 rng(seed * 7 + n);
      const Instance inst = make_random_instance(n, 2 * n, rng);
      const std::uint64_t nb = count_bad_nodes(inst);
      if (nb == 0) continue;
      for (const SchedulerKind kind :
           {SchedulerKind::kLowestId, SchedulerKind::kFarthestFirst, SchedulerKind::kRandom}) {
        const auto pr = measure_cost(inst, Strategy::kPartialReversal, kind, seed);
        max_ratio_linear = std::max(
            max_ratio_linear, static_cast<double>(pr.social_cost) / static_cast<double>(nb));
        max_ratio_quad =
            std::max(max_ratio_quad,
                     static_cast<double>(pr.social_cost) / static_cast<double>(nb * nb));
        if (pr.social_cost > quadratic_work_ceiling(nb)) ceiling_ok = false;
      }
    }
    bench::print_row({std::to_string(n), "40x3", bench::fmt(max_ratio_linear),
                      bench::fmt(max_ratio_quad), ceiling_ok ? "yes" : "NO"});
  }
}

void BM_FRChain(benchmark::State& state) {
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_worst_case_chain(nb + 1);
  for (auto _ : state) {
    FullReversalAutomaton fr(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(fr, scheduler).node_steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_FRChain)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_PRChain(benchmark::State& state) {
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_worst_case_chain(nb + 1);
  for (auto _ : state) {
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(pr, scheduler).node_steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_PRChain)->RangeMultiplier(2)->Range(8, 256)->Complexity();

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_chain_series();
  lr::print_layered_series();
  lr::print_pr_adversarial_search();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

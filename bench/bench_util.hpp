#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

/// \file bench_util.hpp
/// Small fixed-width table printer shared by the experiment harnesses.
/// Every bench binary first prints its experiment table (the series
/// EXPERIMENTS.md records), then runs its google-benchmark micro-timings.

namespace lr::bench {

inline void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, std::size_t width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", static_cast<int>(width), cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

}  // namespace lr::bench

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "runner/runner.hpp"
#include "trace/report.hpp"

/// \file bench_util.hpp
/// Shared reporting kit for the experiment harnesses.
///
/// Three layers:
///  * banners + fixed-width rows for eyeballing a run (`print_header`,
///    `print_row`), plus the shared `--smoke` flag filter
///    (`consume_smoke_flag`),
///  * machine-readable series emission through the trace layer's Table /
///    CSV writer (`emit_csv`) — experiment series should go through this,
///    not ad-hoc printf, so sweep output and bench output share one format,
///  * the self-verifying A/B measurement kit: wall-clock per-iteration
///    nanoseconds (`measure_ns_per_iter`) plus paired checksums
///    (`AbSample` / `ab_table`), with the sweep-level building blocks the
///    E2.5/E5.2/E7.6 modes share (`sweep_report_csv`,
///    `ab_tables_identical`, `measure_cached_ab`) — every legacy-vs-CSR
///    comparison proves byte-identical results before its timing is
///    trusted.

namespace lr::bench {

/// Strips `--smoke` from argv (compacting the rest for google-benchmark)
/// and returns whether it was present — the shared flag handling of every
/// harness that supports the CI smoke mode.
inline bool consume_smoke_flag(int& argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return smoke;
}

/// Prints the experiment banner (name + the paper claim it reproduces).
inline void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints one fixed-width human-readable row.
inline void print_row(const std::vector<std::string>& cells, std::size_t width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", static_cast<int>(width), cell.c_str());
  }
  std::printf("\n");
}

/// Formats a double with three decimals.
inline std::string fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

/// Formats an unsigned counter.
inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

/// Formats a checksum as fixed-width hex (stable CSV cell width).
inline std::string fmt_hex(std::uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(v));
  return buffer;
}

/// Emits a result series as trace-layer CSV on stdout — the same writer
/// (and therefore the same quoting / schema conventions) the scenario
/// runner uses for sweep records.
inline void emit_csv(const Table& table) { write_table_csv(std::cout, table); }

/// FNV-1a fingerprint of arbitrary text (e.g. a rendered CSV table).  The
/// E5/E7 A/B modes hash each path's record table with it, so "both paths
/// byte-identical" is checked through the same AbSample checksum columns
/// the E2.5 orientation checksums use.
inline std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Runs `fn` repeatedly and returns mean wall-clock nanoseconds per
/// iteration, iterating until both `min_iters` iterations and
/// `min_total_ms` of accumulated runtime have been reached (so fast
/// kernels are averaged over many runs while slow ones stay cheap).
/// Also reports the iteration count through `iters_out` when non-null.
template <typename F>
double measure_ns_per_iter(F&& fn, std::uint64_t min_iters = 5, double min_total_ms = 200.0,
                           std::uint64_t* iters_out = nullptr) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t iters = 0;
  double total_ns = 0.0;
  while (iters < min_iters || total_ns < min_total_ms * 1e6) {
    const Clock::time_point start = Clock::now();
    fn();
    total_ns += std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    ++iters;
  }
  if (iters_out != nullptr) *iters_out = iters;
  return total_ns / static_cast<double>(iters);
}

/// One legacy-vs-CSR measurement: a labelled kernel timed on both paths,
/// with the checksum of each path's final state so the comparison is
/// self-verifying (a speedup over a *different* result is meaningless).
struct AbSample {
  std::string label;                     ///< kernel identifier, e.g. "fr"
  std::string topology;                  ///< instance identifier, e.g. "chain-512"
  std::uint64_t legacy_iterations = 0;   ///< timing iterations, legacy path
  std::uint64_t csr_iterations = 0;      ///< timing iterations, CSR path
  double legacy_ns_per_iter = 0.0;       ///< legacy path, ns per run
  double csr_ns_per_iter = 0.0;          ///< CSR path, ns per run
  std::uint64_t legacy_checksum = 0;     ///< final-state checksum, legacy path
  std::uint64_t csr_checksum = 0;        ///< final-state checksum, CSR path

  /// Legacy time over CSR time (>1 means the CSR path is faster).
  double speedup() const {
    return csr_ns_per_iter > 0.0 ? legacy_ns_per_iter / csr_ns_per_iter : 0.0;
  }

  /// True iff both paths ended in the identical final state.
  bool identical() const { return legacy_checksum == csr_checksum; }
};

/// Record + aggregate tables of a sweep report as one CSV blob — the byte
/// string the A/B equality checks compare and checksum.
inline std::string sweep_report_csv(const SweepReport& report) {
  std::ostringstream oss;
  write_table_csv(oss, report.records_table());
  oss << '\n';
  write_table_csv(oss, report.aggregate_table());
  return oss.str();
}

/// Replays `specs` on both execution paths through the scenario runner and
/// demands byte-identical record + aggregate tables; prints the verdict.
inline bool ab_tables_identical(std::vector<RunSpec> specs) {
  for (RunSpec& spec : specs) spec.path = ExecutionPath::kLegacy;
  const std::string legacy = sweep_report_csv(SweepReport{ScenarioRunner().run_all(specs), {}});
  for (RunSpec& spec : specs) spec.path = ExecutionPath::kCsr;
  const std::string csr = sweep_report_csv(SweepReport{ScenarioRunner().run_all(specs), {}});
  const bool identical = legacy == csr;
  std::printf("A/B tables over %zu stock scenarios x 2 paths: %s\n", specs.size(),
              identical ? "byte-identical" : "MISMATCH");
  return identical;
}

/// Times execute_run on both paths for one scenario: legacy regenerates
/// the instance (and any CSR snapshot) per run — the per-kernel cost a
/// sweep used to pay — while csr consumes a warm SweepCache, the steady
/// per-run cost inside a sweep.  Each path's record table is
/// fingerprinted with FNV-1a into the AbSample checksum columns, so a
/// speedup over diverging results cannot slip through.
inline AbSample measure_cached_ab(const std::string& topology_label, RunSpec spec,
                                  double min_ms) {
  AbSample sample;
  sample.topology = topology_label;
  sample.label = algorithm_token(spec.algorithm);
  spec.path = ExecutionPath::kLegacy;
  sample.legacy_ns_per_iter =
      measure_ns_per_iter([&spec] { execute_run(spec); }, 5, min_ms, &sample.legacy_iterations);
  sample.legacy_checksum = fnv1a(sweep_report_csv(SweepReport{ScenarioRunner().run_all({spec}), {}}));
  spec.path = ExecutionPath::kCsr;
  SweepCache cache;
  cache.get(spec);  // warm: the sweep's first run over this workload built it
  sample.csr_ns_per_iter = measure_ns_per_iter([&spec, &cache] { execute_run(spec, &cache); }, 5,
                                               min_ms, &sample.csr_iterations);
  sample.csr_checksum = fnv1a(sweep_report_csv(SweepReport{ScenarioRunner().run_all({spec}), {}}));
  return sample;
}

/// Renders A/B samples as a Table with columns
/// topology,kernel,legacy_iterations,csr_iterations,legacy_ns_per_iter,
/// csr_ns_per_iter,speedup,legacy_checksum,csr_checksum,identical.
inline Table ab_table(const std::vector<AbSample>& samples) {
  Table table;
  table.columns = {"topology",        "kernel",          "legacy_iterations",
                   "csr_iterations",  "legacy_ns_per_iter", "csr_ns_per_iter",
                   "speedup",         "legacy_checksum", "csr_checksum",
                   "identical"};
  for (const AbSample& sample : samples) {
    table.add_row({sample.topology, sample.label, fmt_u(sample.legacy_iterations),
                   fmt_u(sample.csr_iterations), fmt(sample.legacy_ns_per_iter),
                   fmt(sample.csr_ns_per_iter), fmt(sample.speedup()),
                   fmt_hex(sample.legacy_checksum), fmt_hex(sample.csr_checksum),
                   sample.identical() ? "yes" : "NO"});
  }
  return table;
}

}  // namespace lr::bench

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "trace/report.hpp"

/// \file bench_util.hpp
/// Shared reporting kit for the experiment harnesses.
///
/// Three layers:
///  * banners + fixed-width rows for eyeballing a run (`print_header`,
///    `print_row`),
///  * machine-readable series emission through the trace layer's Table /
///    CSV writer (`emit_csv`) — experiment series should go through this,
///    not ad-hoc printf, so sweep output and bench output share one format,
///  * the self-verifying A/B measurement kit: wall-clock per-iteration
///    nanoseconds (`measure_ns_per_iter`) plus paired final-state checksums
///    (`AbSample` / `ab_table`), used by the legacy-vs-CSR comparisons to
///    prove that the fast path computes byte-identical results before its
///    timing is trusted.

namespace lr::bench {

/// Prints the experiment banner (name + the paper claim it reproduces).
inline void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints one fixed-width human-readable row.
inline void print_row(const std::vector<std::string>& cells, std::size_t width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", static_cast<int>(width), cell.c_str());
  }
  std::printf("\n");
}

/// Formats a double with three decimals.
inline std::string fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

/// Formats an unsigned counter.
inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

/// Formats a checksum as fixed-width hex (stable CSV cell width).
inline std::string fmt_hex(std::uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(v));
  return buffer;
}

/// Emits a result series as trace-layer CSV on stdout — the same writer
/// (and therefore the same quoting / schema conventions) the scenario
/// runner uses for sweep records.
inline void emit_csv(const Table& table) { write_table_csv(std::cout, table); }

/// Runs `fn` repeatedly and returns mean wall-clock nanoseconds per
/// iteration, iterating until both `min_iters` iterations and
/// `min_total_ms` of accumulated runtime have been reached (so fast
/// kernels are averaged over many runs while slow ones stay cheap).
/// Also reports the iteration count through `iters_out` when non-null.
template <typename F>
double measure_ns_per_iter(F&& fn, std::uint64_t min_iters = 5, double min_total_ms = 200.0,
                           std::uint64_t* iters_out = nullptr) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t iters = 0;
  double total_ns = 0.0;
  while (iters < min_iters || total_ns < min_total_ms * 1e6) {
    const Clock::time_point start = Clock::now();
    fn();
    total_ns += std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    ++iters;
  }
  if (iters_out != nullptr) *iters_out = iters;
  return total_ns / static_cast<double>(iters);
}

/// One legacy-vs-CSR measurement: a labelled kernel timed on both paths,
/// with the checksum of each path's final state so the comparison is
/// self-verifying (a speedup over a *different* result is meaningless).
struct AbSample {
  std::string label;                     ///< kernel identifier, e.g. "fr"
  std::string topology;                  ///< instance identifier, e.g. "chain-512"
  std::uint64_t legacy_iterations = 0;   ///< timing iterations, legacy path
  std::uint64_t csr_iterations = 0;      ///< timing iterations, CSR path
  double legacy_ns_per_iter = 0.0;       ///< legacy path, ns per run
  double csr_ns_per_iter = 0.0;          ///< CSR path, ns per run
  std::uint64_t legacy_checksum = 0;     ///< final-state checksum, legacy path
  std::uint64_t csr_checksum = 0;        ///< final-state checksum, CSR path

  /// Legacy time over CSR time (>1 means the CSR path is faster).
  double speedup() const {
    return csr_ns_per_iter > 0.0 ? legacy_ns_per_iter / csr_ns_per_iter : 0.0;
  }

  /// True iff both paths ended in the identical final state.
  bool identical() const { return legacy_checksum == csr_checksum; }
};

/// Renders A/B samples as a Table with columns
/// topology,kernel,legacy_iterations,csr_iterations,legacy_ns_per_iter,
/// csr_ns_per_iter,speedup,legacy_checksum,csr_checksum,identical.
inline Table ab_table(const std::vector<AbSample>& samples) {
  Table table;
  table.columns = {"topology",        "kernel",          "legacy_iterations",
                   "csr_iterations",  "legacy_ns_per_iter", "csr_ns_per_iter",
                   "speedup",         "legacy_checksum", "csr_checksum",
                   "identical"};
  for (const AbSample& sample : samples) {
    table.add_row({sample.topology, sample.label, fmt_u(sample.legacy_iterations),
                   fmt_u(sample.csr_iterations), fmt(sample.legacy_ns_per_iter),
                   fmt(sample.csr_ns_per_iter), fmt(sample.speedup()),
                   fmt_hex(sample.legacy_checksum), fmt_hex(sample.csr_checksum),
                   sample.identical() ? "yes" : "NO"});
  }
  return table;
}

}  // namespace lr::bench

/// \file bench_e10_scale.cpp
/// E10: the million-node CSR core — streaming construction, mmap-backed
/// snapshots, and churn at scale (docs/EXPERIMENTS.md §E10).
///
/// The paper's target regime is large mobile ad-hoc networks under
/// sustained link churn; this harness measures the three mechanisms that
/// carry the repo from 4k-node instances to 10^6+:
///
///  E10.1  Streaming CSR construction: `CsrBuilder` (two counting passes
///         over a canonical edge stream, two allocations) vs the batch
///         `Graph` -> `CsrGraph` conversion, fingerprint-verified
///         byte-identical.  The torus row also streams straight off the
///         generator with *no Graph at all* — the zero-intermediate path.
///  E10.2  mmap snapshot reload vs regeneration: `save_snapshot` once,
///         then `Snapshot::load` (+ `thaw_instance`, the SweepCache
///         production path) against regenerating the instance from
///         (topology, size, seed).  Full mode asserts the >= 10x reload
///         speedup at the largest size; every mode asserts fingerprint
///         equality.
///  E10.3  Churn at scale: the random-waypoint schedule replayed as
///         in-place CSR patches (`insert_link` / `remove_link`) at
///         10^5–10^6 nodes — rebuild-free by construction, self-verified
///         by the healing suffix restoring the initial fingerprint — plus
///         the `DynamicHeightsDag` steady state asserting
///         `snapshot_rebuilds() == 0` via the existing counters.
///  E10.4  Deployment identity: the same sweeps byte-identical in-process,
///         with a cold snapshot dir (saves), a warm one (mmap reloads,
///         i.e. borrowed CsrGraphs), and at 2 / 4 worker processes
///         sharing the snapshot dir — the merge contract of
///         runner/process_runner.hpp extended to the mmap path.
///
/// Like every harness: verification gates first (the binary exits
/// non-zero on any mismatch), timings second.  `--smoke` runs the full
/// gate battery at small sizes for CI (under an RSS ulimit, so a memory
/// regression at scale fails loudly).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "routing/dynamic_heights.hpp"
#include "runner/process_runner.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"

namespace lr {
namespace {

/// A disposable directory for snapshot files; removed (with contents)
/// on destruction so repeated bench runs never read stale snapshots.
struct TempDir {
  std::string path;

  TempDir() {
    char buffer[] = "/tmp/lr_e10_XXXXXX";
    if (::mkdtemp(buffer) == nullptr) {
      std::perror("bench_e10: mkdtemp");
      std::exit(1);
    }
    path = buffer;
  }
  ~TempDir() {
    // Best-effort cleanup: snapshots are regenerable cache artifacts.
    const std::string command = "rm -rf '" + path + "'";
    if (std::system(command.c_str()) != 0) {
      std::fprintf(stderr, "bench_e10: failed to remove %s\n", path.c_str());
    }
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

std::size_t torus_side_for(std::size_t n) {
  std::size_t side = 3;
  while ((side + 1) * (side + 1) <= n) ++side;
  return side;
}

// ---------------------------------------------------------------------------
// E10.1: streaming CsrBuilder vs batch Graph -> CsrGraph conversion
// ---------------------------------------------------------------------------

/// E10.1 driver; returns false when any streamed snapshot's fingerprint
/// diverges from the batch conversion's.
bool print_build_series(bool smoke) {
  bench::print_header(
      "E10.1: CSR construction, batch conversion vs streaming CsrBuilder",
      "byte-identical snapshots (FNV fingerprints); streaming needs no "
      "intermediate per-node state (docs/PERFORMANCE.md records the table)");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16'384}
            : std::vector<std::size_t>{100'000, 1'000'000};
  const double min_ms = smoke ? 0.0 : 200.0;
  const std::uint64_t min_iters = smoke ? 1 : 3;

  Table table;
  table.columns = {"topology",  "n",         "m",        "batch_ns",
                   "stream_ns", "stream_speedup", "medges_per_sec", "identical"};
  bool identical = true;

  const auto add_row = [&](const std::string& topology, std::size_t n, std::size_t m,
                           double batch_ns, double stream_ns, bool same) {
    identical &= same;
    const double medges = stream_ns > 0.0 ? static_cast<double>(m) * 1e3 / stream_ns : 0.0;
    table.add_row({topology, bench::fmt_u(n), bench::fmt_u(m), bench::fmt(batch_ns),
                   bench::fmt(stream_ns), bench::fmt(batch_ns / stream_ns),
                   bench::fmt(medges), same ? "yes" : "NO"});
  };

  for (const std::size_t size : sizes) {
    // Torus: the generator streams canonically sorted edges, so the
    // builder can run with no materialized Graph (and no edge vector) at
    // all — generation itself is replayed for each of the two passes,
    // which is the honest end-to-end cost of the zero-intermediate path.
    {
      const std::size_t side = torus_side_for(size);
      const Graph g = make_torus_graph(side, side);
      const CsrGraph batch(g);
      const double batch_ns = bench::measure_ns_per_iter(
          [&] { benchmark::DoNotOptimize(CsrGraph(g).num_edges()); }, min_iters, min_ms);
      CsrGraph streamed;
      const auto stream_build = [&] {
        CsrBuilder builder(g.num_nodes());
        stream_torus_edges(side, side, [&builder](NodeId u, NodeId v) {
          builder.count_edge(u, v);
        });
        builder.begin_placement();
        stream_torus_edges(side, side, [&builder](NodeId u, NodeId v) {
          builder.place_edge(u, v);
        });
        streamed = builder.finish();
      };
      const double stream_ns = bench::measure_ns_per_iter(stream_build, min_iters, min_ms);
      add_row("torus-" + std::to_string(side) + "x" + std::to_string(side), g.num_nodes(),
              g.num_edges(), batch_ns, stream_ns,
              streamed.fingerprint() == batch.fingerprint());
    }
    // Wide random graph: both paths consume the same canonical edge list
    // (generation is identical work either way and stays outside the
    // timer), so the row isolates pure conversion cost.
    {
      std::mt19937_64 rng(71);
      const Graph g = make_wide_random_graph(size, 8.0, rng);
      const CsrGraph batch(g);
      const double batch_ns = bench::measure_ns_per_iter(
          [&] { benchmark::DoNotOptimize(CsrGraph(g).num_edges()); }, min_iters, min_ms);
      CsrGraph streamed;
      const auto stream_build = [&] {
        CsrBuilder builder(g.num_nodes());
        for (const auto& [u, v] : g.edges()) builder.count_edge(u, v);
        builder.begin_placement();
        for (const auto& [u, v] : g.edges()) builder.place_edge(u, v);
        streamed = builder.finish();
      };
      const double stream_ns = bench::measure_ns_per_iter(stream_build, min_iters, min_ms);
      add_row("widerandom-" + std::to_string(size), g.num_nodes(), g.num_edges(), batch_ns,
              stream_ns, streamed.fingerprint() == batch.fingerprint());
    }
  }
  bench::emit_csv(table);
  std::printf("batch vs streamed fingerprints: %s\n", identical ? "all identical" : "MISMATCH");
  return identical;
}

// ---------------------------------------------------------------------------
// E10.2: mmap snapshot reload vs regeneration
// ---------------------------------------------------------------------------

/// E10.2 driver; returns false on fingerprint divergence, or (full mode
/// only) when the mmap reload path fails the >= 10x speedup bar at the
/// largest size.
bool print_snapshot_series(bool smoke) {
  bench::print_header(
      "E10.2: frozen-instance snapshots, mmap reload vs regeneration",
      "checksummed zero-fixup reload; >= 10x faster than regenerating at "
      "scale (full mode asserts it at the largest size)");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16'384}
            : std::vector<std::size_t>{100'000, 1'000'000};
  const double min_ms = smoke ? 0.0 : 200.0;
  const std::uint64_t min_iters = smoke ? 1 : 3;
  const TempDir dir;

  Table table;
  table.columns = {"topology", "n",       "m",          "file_mb",   "regen_ns",
                   "load_ns",  "thaw_ns", "reload_speedup", "identical"};
  bool identical = true;
  double last_speedup = 0.0;

  for (const std::size_t size : sizes) {
    for (const TopologyKind topology : {TopologyKind::kTorus, TopologyKind::kWideRandom}) {
      RunSpec spec;
      spec.topology = topology;
      spec.size = size;
      spec.seed = 7;
      // Regeneration is exactly what a SweepCache miss without a snapshot
      // dir pays: instance construction plus the CSR freeze.
      const auto regenerate = [&spec] {
        const Instance instance = make_instance(spec);
        return CsrGraph(instance.graph, instance.senses);
      };
      const Instance instance = make_instance(spec);
      const CsrGraph csr(instance.graph, instance.senses);
      const std::string path =
          dir.path + "/" + topology_token(topology) + "-" + std::to_string(size) + ".lrsnap";
      save_snapshot(path, instance, csr);

      const double regen_ns = bench::measure_ns_per_iter(
          [&] { benchmark::DoNotOptimize(regenerate().num_edges()); }, min_iters, min_ms);
      // Load = mmap + validation (checksum included: the production
      // default).  Thaw adds the one O(m) step that rebuilds the Graph
      // front-end — together they are the SweepCache reload path.
      const double load_ns = bench::measure_ns_per_iter(
          [&] { benchmark::DoNotOptimize(Snapshot::load(path).num_edges()); }, min_iters,
          min_ms);
      const double thaw_ns = bench::measure_ns_per_iter(
          [&] {
            const Snapshot snapshot = Snapshot::load(path);
            benchmark::DoNotOptimize(snapshot.thaw_instance().graph.num_edges());
          },
          min_iters, min_ms);

      const Snapshot loaded = Snapshot::load(path);
      const bool same = loaded.csr().fingerprint() == csr.fingerprint() &&
                        loaded.destination() == instance.destination &&
                        loaded.name() == instance.name;
      identical &= same;
      last_speedup = thaw_ns > 0.0 ? regen_ns / thaw_ns : 0.0;
      table.add_row({topology_token(topology), bench::fmt_u(csr.num_nodes()),
                     bench::fmt_u(csr.num_edges()),
                     bench::fmt(static_cast<double>(loaded.file_bytes()) / (1024.0 * 1024.0)),
                     bench::fmt(regen_ns), bench::fmt(load_ns), bench::fmt(thaw_ns),
                     bench::fmt(last_speedup), same ? "yes" : "NO"});
    }
  }
  bench::emit_csv(table);
  std::printf("reloaded vs regenerated fingerprints: %s\n",
              identical ? "all identical" : "MISMATCH");
  if (!smoke && last_speedup < 10.0) {
    std::printf("reload speedup %.1fx at the largest size is below the 10x bar\n", last_speedup);
    return false;
  }
  return identical;
}

// ---------------------------------------------------------------------------
// E10.3: churn at scale — CSR patch storm + rebuild-free heights
// ---------------------------------------------------------------------------

/// E10.3 driver; returns false when the healed fingerprint diverges or
/// the steady-state heights core performed any snapshot rebuild.
bool print_churn_series(bool smoke) {
  bench::print_header(
      "E10.3: random-waypoint churn, in-place CSR patches at scale",
      "steady-state patch ops/sec with zero rebuilds; the healing suffix "
      "restores the initial fingerprint exactly");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16'384}
            : std::vector<std::size_t>{100'000, 1'000'000};

  Table patch_table;
  patch_table.columns = {"n",        "m",      "events",          "patch_ns_per_event",
                         "patch_events_per_sec", "rebuild_ns", "rebuild_vs_patch", "restored"};
  bool ok = true;

  for (const std::size_t size : sizes) {
    // A patch is one linear array pass (O(m)), so the event budget shrinks
    // as m grows to keep the storm's wall clock bounded; the throughput
    // figure is per event and unaffected.
    const std::size_t min_events = smoke ? 1'000 : (size >= 1'000'000 ? 1'000 : 10'000);
    std::mt19937_64 rng(93);
    const double radius = std::sqrt(6.0 / static_cast<double>(size));
    ChurnInstance churn = make_waypoint_churn_instance(size, radius, min_events, rng);
    CsrGraph csr(churn.instance.graph, churn.instance.senses);
    const std::uint64_t initial_fingerprint = csr.fingerprint();

    // One full rebuild: what every event would cost without the patch
    // path (Graph front-end untouched; CSR freeze alone).
    const double rebuild_ns = bench::measure_ns_per_iter(
        [&] {
          benchmark::DoNotOptimize(
              CsrGraph(churn.instance.graph, churn.instance.senses).num_edges());
        },
        smoke ? 1 : 3, smoke ? 0.0 : 200.0);

    // The storm: every link event patched in place.  The waypoint
    // schedule's healing suffix returns the link set to the initial
    // topology, and patched-in links carry the canonical forward sense —
    // so the final snapshot must be byte-identical to the initial one.
    const auto start = std::chrono::steady_clock::now();
    for (const LinkEvent& event : churn.churn) {
      if (event.up) {
        csr.insert_link(event.u, event.v);
      } else {
        csr.remove_link(event.u, event.v);
      }
    }
    const double patch_ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
            .count();
    const bool restored = csr.fingerprint() == initial_fingerprint;
    ok &= restored;

    const double per_event = patch_ns / static_cast<double>(churn.churn.size());
    patch_table.add_row(
        {bench::fmt_u(size), bench::fmt_u(churn.instance.graph.num_edges()),
         bench::fmt_u(churn.churn.size()), bench::fmt(per_event),
         bench::fmt(per_event > 0.0 ? 1e9 / per_event : 0.0), bench::fmt(rebuild_ns),
         bench::fmt(per_event > 0.0 ? rebuild_ns / per_event : 0.0), restored ? "yes" : "NO"});
  }
  bench::emit_csv(patch_table);

  // Steady-state heights core: single-link churn must stay on the patch
  // path (the existing counters are the assertion hook).  Smaller sizes —
  // stabilization work, not patching, dominates here.
  const std::size_t heights_n = smoke ? 2'048 : 20'000;
  std::mt19937_64 rng(94);
  const double radius = std::sqrt(6.0 / static_cast<double>(heights_n));
  ChurnInstance churn =
      make_waypoint_churn_instance(heights_n, radius, smoke ? 1'000 : 10'000, rng);
  DynamicHeightsDag dag(churn.instance.graph, churn.instance.destination);
  dag.stabilize();
  const std::uint64_t warm_rebuilds = dag.snapshot_rebuilds();
  const std::uint64_t warm_patches = dag.snapshot_patches();
  const auto start = std::chrono::steady_clock::now();
  for (const LinkEvent& event : churn.churn) {
    if (event.up) {
      dag.add_link(event.u, event.v);
    } else {
      dag.remove_link(event.u, event.v);
    }
    dag.stabilize();
  }
  const double ns =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start).count();
  const std::uint64_t rebuilds = dag.snapshot_rebuilds() - warm_rebuilds;
  const std::uint64_t patches = dag.snapshot_patches() - warm_patches;
  const bool rebuild_free = rebuilds == 0 && patches == churn.churn.size();
  ok &= rebuild_free;
  std::printf(
      "heights steady state (n=%zu): %zu events, %.0f events/sec, %llu patches, "
      "%llu rebuilds -> %s\n",
      heights_n, churn.churn.size(),
      ns > 0.0 ? static_cast<double>(churn.churn.size()) * 1e9 / ns : 0.0,
      static_cast<unsigned long long>(patches), static_cast<unsigned long long>(rebuilds),
      rebuild_free ? "rebuild-free" : "REBUILT");
  return ok;
}

// ---------------------------------------------------------------------------
// E10.4: deployment identity — snapshot dirs and worker processes
// ---------------------------------------------------------------------------

/// E10.4 driver; returns false when any deployment's table fingerprint
/// diverges from the in-process baseline.
bool print_deployment_series(bool smoke) {
  bench::print_header(
      "E10.4: deployment identity across snapshot modes and worker counts",
      "byte-identical sweep tables in-process, via cold/warm snapshot dirs "
      "(owning vs mmap-borrowed instances), and at 2/4 worker processes");

  const auto fingerprint_of = [](const SweepReport& report) {
    return bench::fnv1a(bench::sweep_report_csv(report));
  };

  Table table;
  table.columns = {"sweep", "deployment", "runs", "snapshot_loads", "fingerprint", "identical"};
  bool identical = true;

  // Sweep A (static topologies, churn-free): exactly the workloads the
  // snapshot-dir fast path covers, so the warm rerun must hit mmap
  // reloads for every workload.  Sweep B (waypoint + churn axis): churn
  // workloads bypass snapshot files by design; what must hold is table
  // identity across process counts with the schedule re-derived per
  // worker from (topology, size, seed, churn_events).
  SweepSpec static_sweep;
  static_sweep.topologies = {TopologyKind::kTorus, TopologyKind::kWideRandom};
  static_sweep.sizes = smoke ? std::vector<std::size_t>{256}
                             : std::vector<std::size_t>{256, 1'024};
  static_sweep.algorithms = {AlgorithmKind::kOneStepPR, AlgorithmKind::kTora};
  static_sweep.schedulers = {SchedulerKind::kLowestId};
  static_sweep.seeds = {1, 2};

  SweepSpec churn_sweep = static_sweep;
  churn_sweep.topologies = {TopologyKind::kWaypoint};
  churn_sweep.algorithms = {AlgorithmKind::kTora};
  churn_sweep.churn_events = smoke ? 100 : 400;

  for (const auto& [name, sweep] :
       {std::pair<const char*, const SweepSpec&>{"static", static_sweep},
        std::pair<const char*, const SweepSpec&>{"churn", churn_sweep}}) {
    const TempDir dir;
    std::uint64_t reference = 0;
    const auto add_row = [&](const std::string& label, std::uint64_t fingerprint,
                             std::uint64_t loads) {
      if (reference == 0) reference = fingerprint;
      identical &= fingerprint == reference;
      table.add_row({name, label, bench::fmt_u(sweep.run_count()), bench::fmt_u(loads),
                     bench::fmt_hex(fingerprint), fingerprint == reference ? "yes" : "NO"});
    };

    {
      const ScenarioRunner runner({.threads = 1});
      add_row("in-process", fingerprint_of(runner.run(sweep)), 0);
    }
    {
      // Cold: misses generate and save; warm: every churn-free workload
      // must come back as an mmap reload (a borrowed CsrGraph).
      const ScenarioRunner runner({.threads = 1, .snapshot_dir = dir.path});
      const SweepReport cold = runner.run(sweep);
      add_row("snapshot-dir cold", fingerprint_of(cold), cold.cache.snapshot_loads);
      const SweepReport warm = runner.run(sweep);
      add_row("snapshot-dir warm", fingerprint_of(warm), warm.cache.snapshot_loads);
      if (std::string(name) == "static" && warm.cache.snapshot_loads != warm.cache.misses) {
        std::printf("static warm rerun expected every miss to mmap-reload (%llu loads, "
                    "%llu misses)\n",
                    static_cast<unsigned long long>(warm.cache.snapshot_loads),
                    static_cast<unsigned long long>(warm.cache.misses));
        identical = false;
      }
    }
    for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
      ProcessShardRunner runner(
          {.threads = 1, .process_workers = workers, .snapshot_dir = dir.path});
      add_row("processes n=" + std::to_string(workers), fingerprint_of(runner.run(sweep)), 0);
    }
  }
  bench::emit_csv(table);
  std::printf("deployment fingerprints: %s\n", identical ? "all identical" : "MISMATCH");
  return identical;
}

// ---------------------------------------------------------------------------
// Micro-benchmarks (full mode only, via google-benchmark)
// ---------------------------------------------------------------------------

void BM_StreamTorusBuild(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    CsrBuilder builder(side * side);
    stream_torus_edges(side, side,
                       [&builder](NodeId u, NodeId v) { builder.count_edge(u, v); });
    builder.begin_placement();
    stream_torus_edges(side, side,
                       [&builder](NodeId u, NodeId v) { builder.place_edge(u, v); });
    benchmark::DoNotOptimize(builder.finish().num_edges());
  }
}
BENCHMARK(BM_StreamTorusBuild)->Arg(64)->Arg(256);

void BM_SnapshotLoad(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(5);
  const Instance instance = make_torus_instance(side, side, rng);
  const CsrGraph csr(instance.graph, instance.senses);
  const TempDir dir;
  const std::string path = dir.path + "/bm.lrsnap";
  save_snapshot(path, instance, csr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Snapshot::load(path).num_edges());
  }
}
BENCHMARK(BM_SnapshotLoad)->Arg(64)->Arg(256);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  // Self-hosting sweep worker for the E10.4 deployment A/B: the
  // ProcessShardRunner fork/execs this very binary (/proc/self/exe).
  if (argc > 1 && std::string(argv[1]) == "sweep-worker") {
    return lr::sweep_worker_main(argc, argv);
  }
  const bool smoke = lr::bench::consume_smoke_flag(argc, argv);
  bool ok = true;
  if (!lr::print_build_series(smoke)) {
    std::fprintf(stderr, "E10.1 build verification FAILED\n");
    ok = false;
  }
  if (!lr::print_snapshot_series(smoke)) {
    std::fprintf(stderr, "E10.2 snapshot verification FAILED\n");
    ok = false;
  }
  if (!lr::print_churn_series(smoke)) {
    std::fprintf(stderr, "E10.3 churn verification FAILED\n");
    ok = false;
  }
  if (!lr::print_deployment_series(smoke)) {
    std::fprintf(stderr, "E10.4 deployment verification FAILED\n");
    ok = false;
  }
  if (!ok) return 1;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

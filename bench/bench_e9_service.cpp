/// Experiment E9 — the request-serving deployment: per-request latency
/// percentiles and sustained throughput of the three paper applications
/// (routing, mutual exclusion, leader election) served as a live mixed
/// workload under link churn (src/service/service_harness.hpp).
///
/// Expected shape: route and leader lookups are cheap (latency ~ 1 +
/// hops on a stabilized DAG); lock cycles pay the grant's reversal
/// steps on top, so their tail stretches with contention and churn; p99
/// grows with topology diameter while throughput scales with the read
/// phase's worker count.
///
/// E9.1 is the SLO table: the mixed reference workload per topology,
/// reporting p50/p99/p999, mean latency, and wall-clock req/s for each
/// request kind (docs/EXPERIMENTS.md).
///
/// E9.2 is the deployment A/B: the same workloads replayed serial vs
/// pooled (2 and 4 read workers) and heap vs timing-wheel event
/// scheduler.  Every configuration must reproduce the serial-heap
/// report fingerprint exactly — per-kind histograms, counters, churn
/// and reversal totals — before the req/s figures are trusted; the
/// harness exits non-zero otherwise.  `--smoke` shrinks the series to
/// seconds and skips the google-benchmark micro-timings; CI runs it to
/// keep the A/B equivalence from bit-rotting.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "runner/thread_pool.hpp"
#include "service/service_harness.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

/// Builds the E9 reference instance for one (topology, size) cell,
/// seeded like the sweep layer so rows are reproducible from the CLI
/// (`lr_cli serve <topology> <n> --seed 1`).
Instance e9_instance(TopologyKind topology, std::size_t size) {
  RunSpec spec;
  spec.topology = topology;
  spec.size = size;
  spec.seed = 1;
  return make_instance(spec);
}

ServiceReport run_service(const Instance& inst, ServiceOptions options) {
  options.seed = 1;
  ServiceHarness harness(inst.graph, inst.destination, options);
  return harness.run();
}

// ---------------------------------------------------------------------------
// E9.1: the per-kind SLO table on the mixed reference workload
// ---------------------------------------------------------------------------

void print_slo_series(bool smoke) {
  bench::print_header("E9.1: service latency SLOs, mixed workload under churn",
                      "route/leader lookups cost ~1+hops; lock cycles add grant "
                      "reversal steps; failures are partition-bounded, never wedged");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64, 128};
  Table table;
  table.columns = {"instance", "kind",  "issued", "completed", "failed", "p50",
                   "p99",      "p999",  "mean",   "max",       "req_s"};
  for (const TopologyKind topology : {TopologyKind::kChain, TopologyKind::kRandom}) {
    for (const std::size_t n : sizes) {
      const Instance inst = e9_instance(topology, n);
      ServiceOptions options;
      options.clients = smoke ? 8 : 16;
      options.duration = smoke ? 128 : 1024;
      options.churn_interval = 16;
      const ServiceReport report = run_service(inst, options);
      const double req_s = report.requests_per_sec();
      for (std::size_t kind = 0; kind < kRequestKinds; ++kind) {
        const ServiceKindStats& stats = report.kinds[kind];
        table.add_row({inst.name, request_kind_token(static_cast<RequestKind>(kind)),
                       bench::fmt_u(stats.issued), bench::fmt_u(stats.completed),
                       bench::fmt_u(stats.failed), bench::fmt_u(stats.histogram.quantile(0.50)),
                       bench::fmt_u(stats.histogram.quantile(0.99)),
                       bench::fmt_u(stats.histogram.quantile(0.999)),
                       bench::fmt(stats.histogram.mean()), bench::fmt_u(stats.histogram.max()),
                       bench::fmt(req_s)});
      }
    }
  }
  bench::emit_csv(table);
}

// ---------------------------------------------------------------------------
// E9.2: the deployment A/B — serial vs pooled, heap vs timing wheel
// ---------------------------------------------------------------------------

/// E9.2 driver; returns false if any deployment's report fingerprint
/// diverges from the serial-heap baseline.  Throughput is issued
/// requests per wall-clock second of the whole run loop (the figure a
/// service operator would quote; docs/PERFORMANCE.md), measured with a
/// pre-built borrowed pool so pool construction is not billed to the
/// deployment.
bool print_deployment_ab(bool smoke) {
  bench::print_header("E9.2: service deployment A/B, serial vs pooled, heap vs wheel",
                      "identical report fingerprints at every worker count x scheduler; "
                      "issued requests/sec per deployment (docs/PERFORMANCE.md)");
  const std::size_t n = smoke ? 24 : 96;
  const Instance inst = e9_instance(TopologyKind::kRandom, n);
  ThreadPool pool2(2);
  ThreadPool pool4(4);

  struct Deployment {
    const char* label;
    EventSchedulerKind scheduler;
    ThreadPool* pool;  // nullptr: serial read phase
  };
  const Deployment deployments[] = {
      {"heap t=1", EventSchedulerKind::kHeap, nullptr},
      {"wheel t=1", EventSchedulerKind::kWheel, nullptr},
      {"heap t=2", EventSchedulerKind::kHeap, &pool2},
      {"wheel t=4", EventSchedulerKind::kWheel, &pool4},
  };

  Table table;
  table.columns = {"workload", "deployment", "issued", "p99_all",
                   "req_per_sec", "fingerprint", "identical"};
  bool identical = true;
  for (const ServiceWorkload workload :
       {ServiceWorkload::kMixed, ServiceWorkload::kRoute, ServiceWorkload::kLock}) {
    std::uint64_t reference = 0;
    for (const Deployment& deployment : deployments) {
      ServiceOptions options;
      options.clients = smoke ? 8 : 16;
      options.duration = smoke ? 128 : 1024;
      options.workload = workload;
      options.scheduler = deployment.scheduler;
      options.workers = deployment.pool == nullptr ? 1 : deployment.pool->size();
      options.pool = deployment.pool;

      const ServiceReport probe = run_service(inst, options);
      const std::uint64_t fingerprint = probe.fingerprint();
      if (deployment.pool == nullptr && deployment.scheduler == EventSchedulerKind::kHeap)
        reference = fingerprint;
      identical &= fingerprint == reference;

      LatencyHistogram all;
      for (const ServiceKindStats& stats : probe.kinds) all.merge(stats.histogram);

      std::uint64_t issued = 0;
      const double ns_per_run = bench::measure_ns_per_iter(
          [&] {
            const ServiceReport report = run_service(inst, options);
            issued = report.total_issued();
          },
          smoke ? 1 : 5, smoke ? 0.0 : 200.0);
      const double req_per_sec = static_cast<double>(issued) * 1e9 / ns_per_run;
      table.add_row({service_workload_token(workload), deployment.label, bench::fmt_u(issued),
                     bench::fmt_u(all.quantile(0.99)), bench::fmt(req_per_sec),
                     bench::fmt_hex(fingerprint), fingerprint == reference ? "yes" : "NO"});
    }
  }
  bench::emit_csv(table);
  std::printf("report fingerprints: %s\n", identical ? "all identical" : "MISMATCH");
  return identical;
}

void BM_ServiceMixed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = e9_instance(TopologyKind::kRandom, n);
  ServiceOptions options;
  options.clients = 16;
  options.duration = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_service(inst, options).total_issued());
  }
}
BENCHMARK(BM_ServiceMixed)->Arg(32)->Arg(128);

void BM_ServiceLockCycle(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = e9_instance(TopologyKind::kChain, n);
  ServiceOptions options;
  options.clients = 8;
  options.duration = 256;
  options.workload = ServiceWorkload::kLock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_service(inst, options).total_completed());
  }
}
BENCHMARK(BM_ServiceLockCycle)->Arg(32)->Arg(128);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  const bool smoke = lr::bench::consume_smoke_flag(argc, argv);
  lr::print_slo_series(smoke);
  if (!lr::print_deployment_ab(smoke)) {
    std::fprintf(stderr, "E9.2 deployment A/B verification FAILED\n");
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Experiment E1 — Theorems 4.3 / 5.5: acyclicity in every reachable state.
///
/// For each algorithm (PR set-step, OneStepPR, NewPR, FR), graph family and
/// size, runs a seeded random execution checking acyclicity after *every*
/// action, and reports steps plus the violation count (always 0).  The
/// micro-benchmarks time the per-step acyclicity check itself.
///
/// The table is emitted as trace-layer CSV (bench_util.hpp) and the
/// harness exits non-zero on any violation, so the CI bench-smoke job
/// (`--smoke`: tiny sizes, micro-timings skipped) is a real correctness
/// gate, not just a build check.

#include <benchmark/benchmark.h>

#include <cstring>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

Instance family_instance(const std::string& family, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  if (family == "chain") return make_worst_case_chain(n);
  if (family == "random") return make_random_instance(n, n, rng);
  if (family == "grid") return make_grid_instance(n / 8 + 2, 8, rng);
  return make_layered_bad_instance(n / 8 + 2, 8, 0.3, rng);
}

template <typename A>
std::pair<std::uint64_t, std::uint64_t> run_checked_single(const Instance& inst,
                                                           std::uint64_t seed) {
  A automaton(inst);
  RandomScheduler scheduler(seed);
  std::uint64_t violations = 0;
  const RunResult result =
      run_to_quiescence(automaton, scheduler, [&violations](const A& a, NodeId) {
        if (!check_acyclic(a.orientation())) ++violations;
      });
  return {result.steps, violations};
}

std::pair<std::uint64_t, std::uint64_t> run_checked_set(const Instance& inst,
                                                        std::uint64_t seed) {
  PRAutomaton automaton(inst);
  RandomSetScheduler scheduler(seed);
  std::uint64_t violations = 0;
  const RunResult result = run_to_quiescence_set(
      automaton, scheduler, [&violations](const PRAutomaton& a, const std::vector<NodeId>&) {
        if (!check_acyclic(a.orientation())) ++violations;
      });
  return {result.steps, violations};
}

/// Prints the E1 series as CSV; returns the total violation count (0 on a
/// healthy build).
std::uint64_t print_table(bool smoke) {
  bench::print_header("E1: acyclicity at every reachable state (Thm 4.3 / 5.5)",
                      "0 violations for every algorithm, family, size, seed");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{8, 16} : std::vector<std::size_t>{8, 32, 128};
  Table table;
  table.columns = {"algorithm", "family", "n", "steps", "violations"};
  std::uint64_t total_violations = 0;
  for (const std::string family : {"chain", "random", "grid", "layered"}) {
    for (const std::size_t n : sizes) {
      const Instance inst = family_instance(family, n, n * 31 + 7);
      const auto [pr_steps, pr_viol] = run_checked_set(inst, 1);
      const auto [os_steps, os_viol] = run_checked_single<OneStepPRAutomaton>(inst, 2);
      const auto [np_steps, np_viol] = run_checked_single<NewPRAutomaton>(inst, 3);
      const auto [fr_steps, fr_viol] = run_checked_single<FullReversalAutomaton>(inst, 4);
      total_violations += pr_viol + os_viol + np_viol + fr_viol;
      table.add_row({"PR(set)", family, std::to_string(n), bench::fmt_u(pr_steps),
                     bench::fmt_u(pr_viol)});
      table.add_row({"OneStepPR", family, std::to_string(n), bench::fmt_u(os_steps),
                     bench::fmt_u(os_viol)});
      table.add_row({"NewPR", family, std::to_string(n), bench::fmt_u(np_steps),
                     bench::fmt_u(np_viol)});
      table.add_row({"FR", family, std::to_string(n), bench::fmt_u(fr_steps),
                     bench::fmt_u(fr_viol)});
    }
  }
  bench::emit_csv(table);
  return total_violations;
}

void BM_AcyclicityCheck(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(42);
  const Instance inst = make_random_instance(n, 2 * n, rng);
  const Orientation o = inst.make_orientation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_acyclic(o).ok);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AcyclicityCheck)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_NewPRExecutionWithPerStepCheck(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    NewPRAutomaton automaton(inst);
    RandomScheduler scheduler(5);
    const RunResult result =
        run_to_quiescence(automaton, scheduler, [](const NewPRAutomaton& a, NodeId) {
          benchmark::DoNotOptimize(check_acyclic(a.orientation()).ok);
        });
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_NewPRExecutionWithPerStepCheck)->Arg(32)->Arg(128);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (lr::print_table(smoke) != 0) {
    std::fprintf(stderr, "E1 acyclicity violations detected\n");
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Experiment E1 — Theorems 4.3 / 5.5: acyclicity in every reachable state.
///
/// For each algorithm (PR set-step, OneStepPR, NewPR, FR), graph family and
/// size, runs a seeded random execution checking acyclicity after *every*
/// action, and reports steps plus the violation count (always 0).  The
/// micro-benchmarks time the per-step acyclicity check itself.

#include <benchmark/benchmark.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

Instance family_instance(const std::string& family, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  if (family == "chain") return make_worst_case_chain(n);
  if (family == "random") return make_random_instance(n, n, rng);
  if (family == "grid") return make_grid_instance(n / 8 + 2, 8, rng);
  return make_layered_bad_instance(n / 8 + 2, 8, 0.3, rng);
}

template <typename A>
std::pair<std::uint64_t, std::uint64_t> run_checked_single(const Instance& inst,
                                                           std::uint64_t seed) {
  A automaton(inst);
  RandomScheduler scheduler(seed);
  std::uint64_t violations = 0;
  const RunResult result =
      run_to_quiescence(automaton, scheduler, [&violations](const A& a, NodeId) {
        if (!check_acyclic(a.orientation())) ++violations;
      });
  return {result.steps, violations};
}

std::pair<std::uint64_t, std::uint64_t> run_checked_set(const Instance& inst,
                                                        std::uint64_t seed) {
  PRAutomaton automaton(inst);
  RandomSetScheduler scheduler(seed);
  std::uint64_t violations = 0;
  const RunResult result = run_to_quiescence_set(
      automaton, scheduler, [&violations](const PRAutomaton& a, const std::vector<NodeId>&) {
        if (!check_acyclic(a.orientation())) ++violations;
      });
  return {result.steps, violations};
}

void print_table() {
  bench::print_header("E1: acyclicity at every reachable state (Thm 4.3 / 5.5)",
                      "0 violations for every algorithm, family, size, seed");
  bench::print_row({"algorithm", "family", "n", "steps", "violations"});
  for (const std::string family : {"chain", "random", "grid", "layered"}) {
    for (const std::size_t n : {8u, 32u, 128u}) {
      const Instance inst = family_instance(family, n, n * 31 + 7);
      const auto [pr_steps, pr_viol] = run_checked_set(inst, 1);
      const auto [os_steps, os_viol] = run_checked_single<OneStepPRAutomaton>(inst, 2);
      const auto [np_steps, np_viol] = run_checked_single<NewPRAutomaton>(inst, 3);
      const auto [fr_steps, fr_viol] = run_checked_single<FullReversalAutomaton>(inst, 4);
      bench::print_row({"PR(set)", family, std::to_string(n), bench::fmt_u(pr_steps),
                        bench::fmt_u(pr_viol)});
      bench::print_row({"OneStepPR", family, std::to_string(n), bench::fmt_u(os_steps),
                        bench::fmt_u(os_viol)});
      bench::print_row({"NewPR", family, std::to_string(n), bench::fmt_u(np_steps),
                        bench::fmt_u(np_viol)});
      bench::print_row({"FR", family, std::to_string(n), bench::fmt_u(fr_steps),
                        bench::fmt_u(fr_viol)});
    }
  }
}

void BM_AcyclicityCheck(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(42);
  const Instance inst = make_random_instance(n, 2 * n, rng);
  const Orientation o = inst.make_orientation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_acyclic(o).ok);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AcyclicityCheck)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_NewPRExecutionWithPerStepCheck(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    NewPRAutomaton automaton(inst);
    RandomScheduler scheduler(5);
    const RunResult result =
        run_to_quiescence(automaton, scheduler, [](const NewPRAutomaton& a, NodeId) {
          benchmark::DoNotOptimize(check_acyclic(a.orientation()).ok);
        });
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_NewPRExecutionWithPerStepCheck)->Arg(32)->Arg(128);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

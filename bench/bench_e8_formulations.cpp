/// Experiment E8 — formulation equivalence and the cost of label-free
/// checking:
///  1. The list-based PR automaton, the GB triple-heights automaton, and
///     BLL with the PR labeling produce byte-identical orientations under
///     identical schedules (divergences must be 0).
///  2. Micro-cost of the paper's label-free invariant checks (Inv 4.1/4.2)
///     vs the label-based consistency check (heights_consistent) — the
///     proof-engineering trade-off the paper motivates.
///  3. Ablation: incremental sink tracking (orientation.hpp) vs full scans.

#include <benchmark/benchmark.h>

#include "automata/scheduler.hpp"
#include "core/bll.hpp"
#include "core/gb_heights.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

void print_equivalence_table() {
  bench::print_header("E8.1: PR vs GB-triples vs BLL(PR labeling), identical schedules",
                      "0 divergences across all sizes and seeds");
  bench::print_row({"n", "seed", "steps", "gb_divergence", "bll_divergence"});
  for (const std::size_t n : {16u, 64u, 256u}) {
    for (const std::uint64_t seed : {1u, 2u}) {
      std::mt19937_64 rng(n * 17 + seed);
      const Instance inst = make_random_instance(n, n, rng);
      OneStepPRAutomaton pr(inst);
      GBTripleHeightsAutomaton gb(inst);
      BLLAutomaton bll = BLLAutomaton::pr_labeling(inst);
      RandomScheduler scheduler(seed);
      std::uint64_t steps = 0, gb_div = 0, bll_div = 0;
      while (true) {
        const auto choice = scheduler.choose(pr);
        if (!choice) break;
        pr.apply(*choice);
        gb.apply(*choice);
        bll.apply(*choice);
        if (!(pr.orientation() == gb.orientation())) ++gb_div;
        if (!(pr.orientation() == bll.orientation())) ++bll_div;
        ++steps;
      }
      bench::print_row({std::to_string(n), std::to_string(seed), bench::fmt_u(steps),
                        bench::fmt_u(gb_div), bench::fmt_u(bll_div)});
    }
  }
}

void BM_LabelFreeInvariants(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(4);
  const Instance inst = make_random_instance(n, 2 * n, rng);
  NewPRAutomaton newpr(inst);
  const LeftRightEmbedding emb(newpr.orientation());
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_invariant_4_1(newpr, emb).ok);
    benchmark::DoNotOptimize(check_invariant_4_2(newpr, emb).ok);
  }
}
BENCHMARK(BM_LabelFreeInvariants)->Arg(64)->Arg(512);

void BM_LabelBasedConsistency(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(4);
  const Instance inst = make_random_instance(n, 2 * n, rng);
  const GBTripleHeightsAutomaton gb(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gb.heights_consistent());
  }
}
BENCHMARK(BM_LabelBasedConsistency)->Arg(64)->Arg(512);

void BM_IncrementalSinkTracking(benchmark::State& state) {
  // Ablation: enabled_sinks() with the orientation's incremental sink set.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(5);
  const Instance inst = make_random_instance(n, 2 * n, rng);
  const OneStepPRAutomaton pr(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pr.enabled_sinks().size());
  }
}
BENCHMARK(BM_IncrementalSinkTracking)->Arg(256)->Arg(4096);

void BM_FullScanSinkTracking(benchmark::State& state) {
  // Ablation baseline: recompute sinks by scanning every node's incident
  // edges (what the incremental set avoids).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(5);
  const Instance inst = make_random_instance(n, 2 * n, rng);
  const Orientation o = inst.make_orientation();
  for (auto _ : state) {
    std::size_t sinks = 0;
    for (NodeId u = 0; u < o.graph().num_nodes(); ++u) {
      bool sink = true;
      for (const Incidence& inc : o.graph().neighbors(u)) {
        if (o.dir_from(u, inc.edge) == Dir::kOut) {
          sink = false;
          break;
        }
      }
      if (sink) ++sinks;
    }
    benchmark::DoNotOptimize(sinks);
  }
}
BENCHMARK(BM_FullScanSinkTracking)->Arg(256)->Arg(4096);

void BM_PRNodeStep(benchmark::State& state) {
  // Throughput of the hot per-node effect on a long chain (re-created per
  // batch to keep a sink available).
  const std::size_t n = 4096;
  const Instance inst = make_worst_case_chain(n);
  for (auto _ : state) {
    state.PauseTiming();
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    state.ResumeTiming();
    while (const auto choice = scheduler.choose(pr)) pr.apply(*choice);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * (n - 1)));
}
BENCHMARK(BM_PRNodeStep);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  lr::print_equivalence_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

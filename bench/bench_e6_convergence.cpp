/// Experiment E6 — convergence to a destination-oriented DAG: steps, edge
/// reversals, and greedy rounds by scheduler and family.  The safety
/// theorems hold under every scheduler; this experiment quantifies the
/// *liveness* side (how fast quiescence arrives) and verifies the
/// quiescence consistency claim (quiescent iff destination-oriented).
///
/// E6.3 is the execution-path A/B mode (docs/PERFORMANCE.md): the
/// convergence kernels (fr / pr across all four schedulers) replayed on
/// `path = legacy` versus `path = csr` through the scenario runner, with
/// byte-identical record tables demanded (FNV-1a table checksums) before
/// any timing is trusted — the same self-verifying harness as E2.5 / E3.5
/// / E5.2 / E7.6.  `--smoke` shrinks the series, skips the micro-timings,
/// and exits non-zero on any divergence; CI runs it.

#include <benchmark/benchmark.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/invariants.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"
#include "runner/runner.hpp"

#include "bench_util.hpp"

namespace lr {
namespace {

Instance family_instance(const std::string& family, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  if (family == "chain") return make_worst_case_chain(n);
  if (family == "random") return make_random_instance(n, n, rng);
  if (family == "grid") return make_grid_instance(n / 8 + 2, 8, rng);
  return make_layered_bad_instance(n / 8 + 2, 8, 0.3, rng);
}

template <typename Scheduler>
RunResult run_with(const Instance& inst, Scheduler scheduler) {
  OneStepPRAutomaton pr(inst);
  const RunResult r = run_to_quiescence(pr, scheduler);
  // Quiescence consistency (the goal-state sanity claim).
  const auto qc = check_quiescence_consistency(pr.orientation(), pr.destination());
  if (!qc.ok) std::printf("!! %s\n", qc.detail.c_str());
  return r;
}

void print_convergence_table(bool smoke) {
  bench::print_header("E6: PR steps to quiescence by scheduler and family",
                      "quiescent iff destination-oriented; steps vary mildly by scheduler");
  bench::print_row({"family", "n", "lowest-id", "random", "round-robin", "farthest", "lrf",
                    "max-degree"});
  const std::vector<unsigned> sizes = smoke ? std::vector<unsigned>{32u}
                                            : std::vector<unsigned>{32u, 128u};
  for (const std::string family : {"chain", "random", "grid", "layered"}) {
    for (const std::size_t n : sizes) {
      const Instance inst = family_instance(family, n, n * 3 + 1);
      const auto lowest = run_with(inst, LowestIdScheduler{});
      const auto random = run_with(inst, RandomScheduler{7});
      const auto rr = run_with(inst, RoundRobinScheduler{});
      const auto far = run_with(inst, FarthestFirstScheduler{});
      const auto lrf = run_with(inst, LeastRecentlyFiredScheduler{});
      const auto deg = run_with(inst, MaxDegreeScheduler{});
      bench::print_row({family, std::to_string(n), bench::fmt_u(lowest.steps),
                        bench::fmt_u(random.steps), bench::fmt_u(rr.steps),
                        bench::fmt_u(far.steps), bench::fmt_u(lrf.steps),
                        bench::fmt_u(deg.steps)});
    }
  }
}

void print_rounds_table() {
  bench::print_header("E6.2: greedy rounds (maximal set steps) to quiescence",
                      "rounds << one-step actions on graphs with many parallel sinks");
  bench::print_row({"instance", "rounds", "node_steps", "parallelism"});
  std::mt19937_64 rng(3);
  std::vector<Instance> instances;
  instances.push_back(make_sink_source_instance(129));
  instances.push_back(make_layered_bad_instance(8, 16, 0.3, rng));
  instances.push_back(make_random_instance(128, 128, rng));
  for (const Instance& inst : instances) {
    PRAutomaton pr(inst);
    MaximalSetScheduler scheduler;
    const RunResult r = run_to_quiescence_set(pr, scheduler);
    bench::print_row({inst.name, bench::fmt_u(r.steps), bench::fmt_u(r.node_steps),
                      bench::fmt(r.steps == 0 ? 0.0
                                              : static_cast<double>(r.node_steps) /
                                                    static_cast<double>(r.steps))},
                     24);
  }
}

// ---------------------------------------------------------------------------
// E6.3: the legacy-vs-CSR A/B comparison of the convergence kernels
// ---------------------------------------------------------------------------

/// The stock A/B scenario set: fr and pr to quiescence under all four
/// schedulers over the convergence families (the E6.1 grid, swept).
std::vector<RunSpec> stock_specs(bool smoke) {
  const std::vector<std::pair<TopologyKind, std::size_t>> families =
      smoke ? std::vector<std::pair<TopologyKind, std::size_t>>{{TopologyKind::kChain, 17},
                                                                {TopologyKind::kGrid, 16}}
            : std::vector<std::pair<TopologyKind, std::size_t>>{{TopologyKind::kChain, 33},
                                                                {TopologyKind::kRandom, 32},
                                                                {TopologyKind::kGrid, 32},
                                                                {TopologyKind::kLayered, 32},
                                                                {TopologyKind::kRandom, 128}};
  std::vector<RunSpec> specs;
  for (const auto& [topology, size] : families) {
    for (const AlgorithmKind algorithm :
         {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR}) {
      for (const SchedulerKind scheduler :
           {SchedulerKind::kLowestId, SchedulerKind::kRandom, SchedulerKind::kRoundRobin,
            SchedulerKind::kFarthestFirst}) {
        RunSpec spec;
        spec.topology = topology;
        spec.size = size;
        spec.algorithm = algorithm;
        spec.scheduler = scheduler;
        spec.seed = 5;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

/// E6.3 driver; returns false (failing the harness) if any path pair
/// diverged in tables or checksums.
bool print_ab_series(bool smoke) {
  bench::print_header("E6.3: execution-path A/B, legacy automata vs batched CSR engine",
                      "identical tables and table checksums for the convergence kernels "
                      "across every scheduler (docs/PERFORMANCE.md records the speedups)");
  const bool tables_ok = bench::ab_tables_identical(stock_specs(smoke));

  const std::size_t n = smoke ? 16 : 128;
  const std::string label = "random-" + std::to_string(n);
  std::vector<bench::AbSample> samples;
  for (const SchedulerKind scheduler :
       {SchedulerKind::kLowestId, SchedulerKind::kFarthestFirst}) {
    RunSpec spec;
    spec.topology = TopologyKind::kRandom;
    spec.size = n;
    spec.algorithm = AlgorithmKind::kOneStepPR;
    spec.scheduler = scheduler;
    spec.seed = 5;
    bench::AbSample sample = bench::measure_cached_ab(label, spec, smoke ? 20.0 : 300.0);
    sample.label = std::string("pr/") + scheduler_token(scheduler);
    samples.push_back(sample);
  }
  bench::emit_csv(bench::ab_table(samples));

  bool checksums_ok = true;
  for (const bench::AbSample& sample : samples) checksums_ok &= sample.identical();
  std::printf("table checksums: %s\n", checksums_ok ? "all identical" : "MISMATCH");
  return tables_ok && checksums_ok;
}

void BM_PRConvergenceRandomGraph(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(17);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence(pr, scheduler).steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PRConvergenceRandomGraph)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_GreedyRounds(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(18);
  const Instance inst = make_random_instance(n, n, rng);
  for (auto _ : state) {
    PRAutomaton pr(inst);
    MaximalSetScheduler scheduler;
    benchmark::DoNotOptimize(run_to_quiescence_set(pr, scheduler).steps);
  }
}
BENCHMARK(BM_GreedyRounds)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  const bool smoke = lr::bench::consume_smoke_flag(argc, argv);
  lr::print_convergence_table(smoke);
  lr::print_rounds_table();
  if (!lr::print_ab_series(smoke)) {
    std::fprintf(stderr, "E6.3 A/B verification FAILED\n");
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// Ad-hoc routing scenario: the application that motivated link reversal
/// (Gafni–Bertsekas 1981; TORA).
///
/// A 4x4 mesh network routes packets to a gateway while links fail and
/// recover.  Route maintenance is partial reversal: failures strand nodes
/// as sinks, and the DAG re-orients itself with local reversals instead of
/// global recomputation.
///
///   $ ./adhoc_routing

#include <cstdio>

#include "graph/generators.hpp"
#include "routing/tora.hpp"

namespace {

void show_route(lr::ToraRouter& router, lr::NodeId source) {
  const lr::DeliveryResult r = router.send_packet(source);
  if (!r.delivered) {
    std::printf("  packet from %2u: UNDELIVERABLE (partitioned)\n", source);
    return;
  }
  std::printf("  packet from %2u: ", source);
  for (std::size_t i = 0; i < r.path.size(); ++i) {
    std::printf(i + 1 == r.path.size() ? "%u" : "%u -> ", r.path[i]);
  }
  std::printf("   (%zu hops)\n", r.path.size() - 1);
}

}  // namespace

int main() {
  using namespace lr;

  // A 4x4 mesh; node 0 (top-left corner) is the gateway.
  const Graph mesh = make_grid_graph(4, 4);
  ToraRouter router(mesh, /*destination=*/0);
  std::printf("mesh 4x4, gateway at node 0\n\n");

  std::printf("initial routes:\n");
  for (const NodeId source : {15u, 10u, 5u}) show_route(router, source);

  std::printf("\n-- link (0,1) fails --\n");
  router.link_down(0, 1);
  for (const NodeId source : {15u, 5u, 1u}) show_route(router, source);

  std::printf("\n-- link (0,4) fails too: gateway cut off --\n");
  router.link_down(0, 4);
  for (const NodeId source : {15u, 1u}) show_route(router, source);

  std::printf("\n-- link (0,1) recovers --\n");
  router.link_up(0, 1);
  for (const NodeId source : {15u, 10u, 5u}) show_route(router, source);

  const ToraStats& stats = router.stats();
  std::printf("\nstats: sent=%llu delivered=%llu maintenance reversals=%llu\n",
              static_cast<unsigned long long>(stats.packets_sent),
              static_cast<unsigned long long>(stats.packets_delivered),
              static_cast<unsigned long long>(stats.reversals));
  return 0;
}

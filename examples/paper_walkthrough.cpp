/// Paper walkthrough: the exact objects from Radeva & Lynch 2011, narrated.
///
/// Follows the paper section by section on a small instance you can trace
/// by hand: the three automata (PR / OneStepPR / NewPR), the invariants of
/// Sections 3 and 4, the left-right embedding, the dummy step, and the
/// Section 5 simulation relations with their step correspondences.
///
///   $ ./paper_walkthrough

#include <cstdio>

#include "core/invariants.hpp"
#include "core/relations.hpp"
#include "graph/generators.hpp"

namespace {

using namespace lr;

void print_orientation(const char* tag, const Orientation& o) {
  std::printf("  %-28s", tag);
  for (EdgeId e = 0; e < o.graph().num_edges(); ++e) {
    std::printf("  %u->%u", o.tail(e), o.head(e));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lr;

  // ---------------------------------------------------------------------
  // Section 2, System Model: G = star with hub 0 and leaves 1..4;
  // G'_init: even leaves receive from the hub, odd leaves point at it.
  // Destination D = leaf 1.  (This is make_sink_source_instance(5).)
  // ---------------------------------------------------------------------
  const Instance instance = make_sink_source_instance(5);
  std::printf("== Section 2: the model ==\n");
  std::printf("G = %s, destination D = %u\n", instance.graph.describe().c_str(),
              instance.destination);
  {
    const Orientation o = instance.make_orientation();
    print_orientation("G'_init:", o);
    std::printf("  initial sinks (even leaves): ");
    for (const NodeId s : sinks_excluding(o, instance.destination)) std::printf("%u ", s);
    std::printf("\n  initial sources (odd leaves are sources; 3 is one)\n\n");
  }

  // ---------------------------------------------------------------------
  // Section 3: the original PR automaton and Invariant 3.2's dichotomy.
  // ---------------------------------------------------------------------
  std::printf("== Section 3: PR (Algorithm 1) ==\n");
  PRAutomaton pr(instance);
  pr.apply({2, 4});  // reverse(S): both initial sinks fire together
  print_orientation("after reverse({2,4}):", pr.orientation());
  std::printf("  list[0] (hub heard from): ");
  for (const NodeId v : pr.list(0)) std::printf("%u ", v);
  std::printf("  -- Corollary 3.3: a subset of out-nbrs(0)\n");
  std::printf("  Invariant 3.2 holds: %s\n\n", check_invariant_3_2(pr) ? "yes" : "NO");

  // ---------------------------------------------------------------------
  // Section 4: NewPR, the embedding, parity, and the dummy step.
  // ---------------------------------------------------------------------
  std::printf("== Section 4: NewPR (Algorithm 2) ==\n");
  NewPRAutomaton newpr(instance);
  const LeftRightEmbedding emb(newpr.orientation());
  std::printf("  left-right embedding positions:");
  for (NodeId u = 0; u < 5; ++u) std::printf("  %u@%u", u, emb.position(u));
  std::printf("  (all initial edges go left to right)\n");

  for (const NodeId u : {2u, 4u, 0u}) {
    newpr.apply(u);
    std::printf("  reverse(%u): count=%llu parity=%s | Inv 4.1 %s, Inv 4.2 %s, acyclic %s\n", u,
                static_cast<unsigned long long>(newpr.count(u)),
                newpr.parity(u) == Parity::kEven ? "even" : "odd",
                check_invariant_4_1(newpr, emb) ? "ok" : "VIOLATED",
                check_invariant_4_2(newpr, emb) ? "ok" : "VIOLATED",
                check_acyclic(newpr.orientation()) ? "ok" : "VIOLATED");
  }
  std::printf("  node 3 is now a sink with even parity but in-nbrs(3) = {}:\n");
  std::printf("  would_be_dummy_step(3) = %s  -- the Section 4 dummy step\n",
              newpr.would_be_dummy_step(3) ? "true" : "false");
  newpr.apply(3);
  std::printf("  after the dummy: count(3)=%llu (parity odd), still a sink\n",
              static_cast<unsigned long long>(newpr.count(3)));
  newpr.apply(3);
  std::printf("  after the real step: quiescent=%s, destination-oriented=%s\n\n",
              newpr.quiescent() ? "yes" : "no",
              is_destination_oriented(newpr.orientation(), 1) ? "yes" : "no");

  // ---------------------------------------------------------------------
  // Section 5: the simulation relations, replayed mechanically.
  // ---------------------------------------------------------------------
  std::printf("== Section 5: simulation relations ==\n");
  PRAutomaton concrete(instance);
  OneStepPRAutomaton middle(instance);
  NewPRAutomaton abstract(instance);

  const std::vector<NodeId> set_step{2, 4};
  concrete.apply(set_step);
  // Lemma 5.1: one OneStepPR step per node of S.
  for (const NodeId u : correspondence_R_prime(concrete, set_step, middle)) {
    // Lemma 5.3: 1 or 2 NewPR steps per OneStepPR step.
    const auto newpr_steps = correspondence_R(middle, u, abstract);
    middle.apply(u);
    for (const NodeId w : newpr_steps) abstract.apply(w);
  }
  std::printf("  after reverse({2,4}) mapped through R' and R:\n");
  std::printf("  R'(PR, OneStepPR) holds: %s\n",
              relation_R_prime(concrete, middle) ? "yes" : "NO");
  std::printf("  R(OneStepPR, NewPR) holds: %s\n", relation_R(middle, abstract) ? "yes" : "NO");
  std::printf("  all three orientations equal: %s\n",
              (concrete.orientation() == middle.orientation() &&
               middle.orientation() == abstract.orientation())
                  ? "yes"
                  : "NO");
  std::printf("\nTheorem 5.5: PR's graph equals NewPR's, NewPR's is acyclic (Thm 4.3),\n");
  std::printf("hence PR maintains acyclicity -- verified on this execution: %s\n",
              check_acyclic(concrete.orientation()) ? "yes" : "NO");
  return 0;
}

/// Trace tooling: record an execution, export it as CSV, read it back, and
/// replay it deterministically — the reproducibility workflow used by the
/// test suite for failing property tests.
///
///   $ ./trace_tools [n] [seed]              (defaults: n=12, seed=7)

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace lr;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  std::mt19937_64 rng(seed);
  const Instance instance = make_random_instance(n, n, rng);
  std::printf("instance: %s, seed %llu\n\n", instance.name.c_str(),
              static_cast<unsigned long long>(seed));

  // 1. Record a random execution.
  OneStepPRAutomaton original(instance);
  TraceRecorder recorder;
  RandomScheduler scheduler(seed);
  const RunResult run = run_to_quiescence(
      original, scheduler,
      [&recorder](const OneStepPRAutomaton& a, NodeId u) { recorder.on_step(a, u); });
  std::printf("recorded %zu events (%llu edge reversals)\n", recorder.events().size(),
              static_cast<unsigned long long>(run.edge_reversals));

  // 2. Export as CSV.
  std::stringstream csv;
  recorder.write_csv(csv);
  std::printf("\n--- trace.csv (first lines) ---\n");
  std::string line;
  for (int i = 0; i < 6 && std::getline(csv, line); ++i) std::printf("%s\n", line.c_str());
  std::printf("...\n");

  // 3. Parse it back and replay.
  csv.clear();
  csv.seekg(0);
  const auto events = read_trace_csv(csv);
  std::vector<NodeId> script;
  for (const TraceEvent& event : events) {
    script.insert(script.end(), event.nodes.begin(), event.nodes.end());
  }
  OneStepPRAutomaton replayed(instance);
  ReplayScheduler replay(std::move(script));
  run_to_quiescence(replayed, replay);

  std::printf("\nreplay reproduces the final orientation exactly: %s\n",
              original.orientation() == replayed.orientation() ? "yes" : "NO");
  return original.orientation() == replayed.orientation() ? 0 : 1;
}

/// Mutual exclusion via link reversal (application #3 from the paper's
/// abstract).
///
/// The token holder is the DAG's destination; requests travel along the
/// destination-oriented DAG; granting the token re-targets the DAG with
/// partial reversal.  Acyclicity keeps every request route loop-free.
///
///   $ ./mutual_exclusion

#include <cstdio>

#include "graph/generators.hpp"
#include "routing/mutex.hpp"

int main() {
  using namespace lr;

  const Graph grid = make_grid_graph(3, 3);
  LinkReversalMutex mutex(grid, /*initial_holder=*/4);  // center of the grid
  std::printf("3x3 grid, token starts at node %u\n\n", mutex.holder());

  // Three nodes request the critical section.
  for (const NodeId u : {0u, 8u, 2u}) {
    const std::size_t hops = mutex.request(u);
    std::printf("node %u requests the CS (request traveled %zu hops)\n", u, hops);
  }

  // Serve the queue FIFO.
  while (!mutex.queue().empty()) {
    const NodeId granted = mutex.release();
    std::printf("token granted to %u; may_enter(%u)=%s, everyone else blocked\n", granted,
                granted, mutex.may_enter(granted) ? "yes" : "no");
    // ... critical section work would happen here ...
  }

  const MutexStats& stats = mutex.stats();
  std::printf("\nstats: requests=%llu grants=%llu request_hops=%llu reversals=%llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.grants),
              static_cast<unsigned long long>(stats.total_request_hops),
              static_cast<unsigned long long>(stats.total_reversals));
  return 0;
}

/// Leader election via link reversal (application #2 from the paper's
/// abstract).
///
/// The elected leader plays the destination's role: the DAG is oriented
/// towards it by partial reversal, making the leader the unique sink — a
/// locally checkable leadership certificate.  Two scenarios:
///
///  1. A ring: the initial election costs reversals, but PR's height
///     gradient leaves the ring pre-oriented towards the *next* highest id,
///     so successive re-elections are free — an emergent perk of the
///     triple-height update worth seeing once.
///  2. A random mesh: re-elections genuinely reverse links each round.
///
///   $ ./leader_election

#include <cstdio>
#include <random>

#include "graph/generators.hpp"
#include "routing/leader_election.hpp"

namespace {

void run_scenario(const char* name, const lr::Graph& topology, std::size_t failures) {
  using namespace lr;
  LeaderElectionService service(topology);
  std::printf("-- %s (%zu nodes) --\n", name, topology.num_nodes());
  std::printf("initial leader %u elected for %llu reversals, reachable from all: %s\n",
              *service.leader(), static_cast<unsigned long long>(service.total_reversals()),
              service.leader_reachable_from_all() ? "yes" : "no");
  for (std::size_t i = 0; i < failures && service.alive_count() > 1; ++i) {
    const NodeId failed = *service.leader();
    const std::uint64_t cost = service.fail_node(failed);
    std::printf("leader %u failed -> leader %u (cost: %llu reversals, reachable: %s)\n",
                failed, *service.leader(), static_cast<unsigned long long>(cost),
                service.leader_reachable_from_all() ? "yes" : "no");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lr;

  run_scenario("ring", make_ring_graph(8), 4);

  std::mt19937_64 rng(7);
  run_scenario("random mesh", make_random_connected_graph(12, 10, rng), 5);

  run_scenario("grid", make_grid_graph(3, 4), 4);
  return 0;
}

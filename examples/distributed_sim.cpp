/// Distributed link reversal over the asynchronous network simulator.
///
/// Runs the height-based (TORA-style) distributed protocol for both Full
/// and Partial Reversal on the same instance and compares steps, messages,
/// and simulated convergence time — the setting the algorithms were
/// invented for.
///
///   $ ./distributed_sim [n] [seed]          (defaults: n=32, seed=1)

#include <cstdio>
#include <cstdlib>

#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"
#include "sim/dist_lr.hpp"

int main(int argc, char** argv) {
  using namespace lr;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  std::mt19937_64 rng(seed);
  const Instance instance = make_random_instance(n, n, rng);
  std::printf("instance: %s (message delays 1..10 ticks)\n\n", instance.name.c_str());

  for (const ReversalRule rule : {ReversalRule::kFull, ReversalRule::kPartial}) {
    Network network(instance.graph, {.min_delay = 1, .max_delay = 10, .seed = seed});
    DistLinkReversal protocol(instance, rule, network);
    protocol.start();
    network.run_until_idle();

    std::printf("%s:\n", rule == ReversalRule::kFull ? "Full Reversal" : "Partial Reversal");
    std::printf("  node steps       : %llu\n",
                static_cast<unsigned long long>(protocol.total_steps()));
    std::printf("  messages sent    : %llu\n",
                static_cast<unsigned long long>(network.messages_sent()));
    std::printf("  sim time (ticks) : %llu\n",
                static_cast<unsigned long long>(network.now()));
    std::printf("  converged        : %s\n", protocol.converged() ? "yes" : "NO");
    std::printf("  acyclic          : %s\n\n",
                is_acyclic(protocol.derived_orientation()) ? "yes" : "NO");
  }
  return 0;
}

/// Quickstart: the 60-second tour of the library.
///
/// Builds a small DAG whose nodes have no route to the destination, runs
/// the paper's Partial Reversal until every node is destination-oriented,
/// and checks the acyclicity theorem along the way.
///
///   $ ./quickstart

#include <cstdio>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/invariants.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lr;

  // A 6-node chain with the destination at node 0 and every edge pointing
  // *away* from it: all five other nodes start with no route.
  const Instance instance = make_worst_case_chain(6);
  std::printf("instance : %s\n", instance.name.c_str());

  OneStepPRAutomaton pr(instance);
  std::printf("bad nodes before: %zu\n",
              bad_nodes(pr.orientation(), pr.destination()).size());

  // Fire sinks one at a time (any scheduler works; safety holds under all).
  LowestIdScheduler scheduler;
  const RunResult result = run_to_quiescence(
      pr, scheduler, [](const OneStepPRAutomaton& a, NodeId fired) {
        // Theorem 5.5: the graph is acyclic in every reachable state.
        const auto check = check_acyclic(a.orientation());
        std::printf("  reverse(%u)  -> acyclic=%s, sinks left=%zu\n", fired,
                    check.ok ? "yes" : "NO", a.enabled_sinks().size());
      });

  std::printf("steps            : %llu\n",
              static_cast<unsigned long long>(result.steps));
  std::printf("edge reversals   : %llu\n",
              static_cast<unsigned long long>(result.edge_reversals));
  std::printf("destination-oriented: %s\n", result.destination_oriented ? "yes" : "no");
  std::printf("bad nodes after  : %zu\n",
              bad_nodes(pr.orientation(), pr.destination()).size());

  // Every node now routes to the destination:
  for (NodeId u = 1; u < instance.graph.num_nodes(); ++u) {
    const auto hops = directed_distance(pr.orientation(), u, pr.destination());
    std::printf("  node %u -> destination in %zu hops\n", u, *hops);
  }
  return result.destination_oriented ? 0 : 1;
}

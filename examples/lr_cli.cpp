/// lr_cli — command-line front end to the whole library.
///
///   lr_cli gen <family> <n> <seed> <out.lri>
///       Families: chain | random | grid | layered | star.
///       Writes a workload instance file (text format, see serialize.hpp).
///
///   lr_cli info <in.lri>
///       Prints topology, initial bad nodes, sinks, acyclicity.
///
///   lr_cli run <in.lri> <pr|newpr|fr> <lowest|random|rr|farthest> [seed]
///       Runs the algorithm to quiescence, prints work stats, and emits
///       the final DAG as DOT on stdout (pipe into `dot -Tpng`).
///
///   lr_cli modelcheck <in.lri> <pr|newpr|fr>
///       Exhaustively explores ALL schedules and checks acyclicity in
///       every reachable state (small instances only).
///
///   lr_cli sweep <spec.sweep> [--threads N] [--cache-cap N] [--records out.csv]
///              [--json out.json] [--processes N] [--retries N]
///              [--snapshot-dir DIR] [--hosts host:port[*W],...]
///              [--shard-log PATH|-]
///       Expands the declarative sweep spec (topology x size x algorithm x
///       scheduler x seed; see docs/EXPERIMENTS.md) and executes every run
///       on a fixed-size thread pool.  Prints the aggregate table as CSV on
///       stdout — byte-identical for every --threads and --cache-cap value
///       (the cap LRU-bounds the sweep's frozen-instance cache; 0 =
///       unbounded, the default).  --processes N shards the sweep across N
///       shared-nothing `sweep-worker` child processes with crash-isolated
///       retries (--retries, default 2); tables stay byte-identical to the
///       in-process run at every worker count.  With --processes, --threads
///       sets each worker's internal thread count (default 1).
///       --snapshot-dir DIR persists each generated workload as an
///       mmap-reloadable snapshot file in DIR (created if absent) and
///       reloads it on later sweeps — and, with --processes, in every
///       worker, which then share one physical copy of the pages.  Purely
///       a performance switch: tables are byte-identical with and without
///       it.
///       --hosts shards the sweep across remote `lr_cli shard-server`
///       daemons over TCP instead of local child processes (entries are
///       host:port with an optional *W concurrent-connection count, W
///       default 1).  Heartbeats in both directions bound every partial
///       failure; dead hosts have their unfinished shards reassigned to
///       the survivors, and --processes N arms a local N-worker fallback
///       engaged only if every host dies.  Tables stay byte-identical to
///       the in-process run at every host and worker count.  --hosts
///       composes with --retries/--threads/--cache-cap but not with
///       --snapshot-dir (remote hosts do not share this filesystem).
///       --shard-log PATH writes a per-attempt CSV log (shard, attempt,
///       endpoint, outcome, elapsed_ms, backoff_ms) after a sharded
///       sweep; `-` logs to stderr.  Requires --processes or --hosts.
///
///   lr_cli shard-server --listen <port> [--bind <address>]
///       The worker daemon of `sweep --hosts`: serves shard-protocol v3
///       connections (one shard per connection) until SIGINT/SIGTERM.
///       Prints "shard-server listening on <address>:<port>" when ready.
///
///   lr_cli snapshot save <topology> <size> <seed> <out.lrsnap>
///   lr_cli snapshot info <in.lrsnap>
///       Builds the named sweep workload (same recipes as the sweep
///       topology axis) and persists it as an mmap snapshot file; `info`
///       validates an existing file (magic, extents, checksum) and prints
///       its shape and CSR fingerprint.
///
///   lr_cli serve <topology> <size> [--workload route|lock|leader|mixed]
///              [--clients N] [--duration T] [--seed S] [--threads N]
///              [--scheduler heap|wheel] [--churn T] [--json out.json]
///       Runs the request-serving harness (service/service_harness.hpp)
///       over the named sweep topology under random link churn and prints
///       the latency report (p50/p99/p999, per request kind) as CSV on
///       stdout.  stdout is byte-identical at every --threads value and
///       under both --scheduler backends (the determinism contract);
///       wall-clock throughput goes to stderr.
///
///   lr_cli sweep-worker ... (internal)
///       Child-process entry point spawned by `sweep --processes N`; reads
///       the spec on stdin and emits binary shard frames on stdout.  Not
///       for direct invocation.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "automata/executor.hpp"
#include "automata/model_check.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/serialize.hpp"
#include "graph/snapshot.hpp"
#include "runner/process_runner.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/shard_coordinator.hpp"
#include "runner/shard_server.hpp"
#include "runner/shard_transport.hpp"
#include "service/service_harness.hpp"
#include "trace/report.hpp"

namespace {

using namespace lr;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lr_cli gen <chain|random|grid|layered|star> <n> <seed> <out.lri>\n"
               "  lr_cli info <in.lri>\n"
               "  lr_cli run <in.lri> <pr|newpr|fr> <lowest|random|rr|farthest> [seed]\n"
               "  lr_cli modelcheck <in.lri> <pr|newpr|fr>\n"
               "  lr_cli sweep <spec.sweep> [--threads N] [--cache-cap N]"
               " [--records out.csv] [--json out.json]\n"
               "               [--processes N] [--retries N] [--snapshot-dir DIR]\n"
               "               [--hosts host:port[*W],...] [--shard-log PATH|-]\n"
               "      --processes shards the sweep across N worker processes (>= 1);\n"
               "      tables are byte-identical to the in-process run at every N\n"
               "      --snapshot-dir persists workloads as mmap snapshot files and\n"
               "      reloads them on later sweeps and in every worker process\n"
               "      --hosts shards across remote `lr_cli shard-server` daemons over\n"
               "      TCP (dead hosts are reassigned; with --processes N a local\n"
               "      N-worker fallback engages if every host dies); not combinable\n"
               "      with --snapshot-dir\n"
               "      --shard-log writes a per-attempt CSV log (requires --processes\n"
               "      or --hosts); `-` logs to stderr\n"
               "  lr_cli shard-server --listen <port> [--bind <address>]\n"
               "      serves sweep shards to a remote `sweep --hosts` coordinator\n"
               "  lr_cli snapshot save <topology> <size> <seed> <out.lrsnap>\n"
               "  lr_cli snapshot info <in.lrsnap>\n"
               "  lr_cli serve <chain|random|grid|layered|star|unitdisk|torus|"
               "widerandom|waypoint> <n>"
               " [--workload route|lock|leader|mixed]\n"
               "               [--clients N] [--duration T] [--seed S] [--threads N]\n"
               "               [--scheduler heap|wheel] [--churn T] [--json out.json]\n"
               "      latency CSV on stdout is byte-identical at every --threads value\n"
               "      and under both --scheduler backends; throughput goes to stderr\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 6) return usage();
  const std::string family = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const std::uint64_t seed = std::strtoull(argv[4], nullptr, 10);
  std::mt19937_64 rng(seed);
  Instance inst;
  if (family == "chain") {
    inst = make_worst_case_chain(n);
  } else if (family == "random") {
    inst = make_random_instance(n, n, rng);
  } else if (family == "grid") {
    inst = make_grid_instance(n / 8 + 2, 8, rng);
  } else if (family == "layered") {
    inst = make_layered_bad_instance(n / 8 + 2, 8, 0.3, rng);
  } else if (family == "star") {
    inst = make_sink_source_instance(n | 1);
  } else {
    return usage();
  }
  save_instance(argv[5], inst);
  std::printf("wrote %s: %s, destination %u\n", argv[5], inst.graph.describe().c_str(),
              inst.destination);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  const Instance inst = load_instance(argv[2]);
  const Orientation o = inst.make_orientation();
  std::printf("name        : %s\n", inst.name.c_str());
  std::printf("topology    : %s\n", inst.graph.describe().c_str());
  std::printf("destination : %u\n", inst.destination);
  std::printf("acyclic     : %s\n", is_acyclic(o) ? "yes" : "NO");
  std::printf("bad nodes   : %zu\n", bad_nodes(o, inst.destination).size());
  std::printf("sinks       : %zu\n", sinks_excluding(o, inst.destination).size());
  return 0;
}

template <typename A>
int run_algorithm(const Instance& inst, const std::string& scheduler_name, std::uint64_t seed) {
  A automaton(inst);
  RunResult result;
  if (scheduler_name == "lowest") {
    LowestIdScheduler s;
    result = run_to_quiescence(automaton, s);
  } else if (scheduler_name == "random") {
    RandomScheduler s(seed);
    result = run_to_quiescence(automaton, s);
  } else if (scheduler_name == "rr") {
    RoundRobinScheduler s;
    result = run_to_quiescence(automaton, s);
  } else if (scheduler_name == "farthest") {
    FarthestFirstScheduler s;
    result = run_to_quiescence(automaton, s);
  } else {
    return usage();
  }
  std::fprintf(stderr, "steps=%llu edge_reversals=%llu quiescent=%s destination_oriented=%s\n",
               static_cast<unsigned long long>(result.steps),
               static_cast<unsigned long long>(result.edge_reversals),
               result.quiescent ? "yes" : "no", result.destination_oriented ? "yes" : "no");
  write_dot(std::cout, automaton.orientation(), {.destination = automaton.destination()});
  return result.destination_oriented ? 0 : 1;
}

int cmd_run(int argc, char** argv) {
  if (argc != 5 && argc != 6) return usage();
  const Instance inst = load_instance(argv[2]);
  const std::string algo = argv[3];
  const std::string sched = argv[4];
  const std::uint64_t seed = argc == 6 ? std::strtoull(argv[5], nullptr, 10) : 1;
  if (algo == "pr") return run_algorithm<OneStepPRAutomaton>(inst, sched, seed);
  if (algo == "newpr") return run_algorithm<NewPRAutomaton>(inst, sched, seed);
  if (algo == "fr") return run_algorithm<FullReversalAutomaton>(inst, sched, seed);
  return usage();
}

template <typename A>
int model_check_algorithm(const Instance& inst) {
  A initial(inst);
  const auto result = model_check(initial, [](const A& a) -> std::string {
    const auto check = check_acyclic(a.orientation());
    return check.ok ? std::string{} : check.detail;
  });
  std::printf("states explored      : %zu\n", result.states_explored);
  std::printf("transitions explored : %zu\n", result.transitions_explored);
  std::printf("acyclic everywhere   : %s\n", result.ok ? "yes" : "NO");
  if (!result.ok) {
    std::printf("violation            : %s\n", result.failure.c_str());
    std::printf("counterexample       :");
    for (const NodeId u : result.counterexample) std::printf(" %u", u);
    std::printf("\n");
  }
  return result.ok ? 0 : 1;
}

int cmd_modelcheck(int argc, char** argv) {
  if (argc != 4) return usage();
  const Instance inst = load_instance(argv[2]);
  const std::string algo = argv[3];
  if (algo == "pr") return model_check_algorithm<OneStepPRAutomaton>(inst);
  if (algo == "newpr") return model_check_algorithm<NewPRAutomaton>(inst);
  if (algo == "fr") return model_check_algorithm<FullReversalAutomaton>(inst);
  return usage();
}

/// Writes the per-attempt shard log (`sweep --shard-log`) as CSV: one
/// row per dispatched attempt, outcomes quoted.  `-` logs to stderr so
/// stdout stays byte-identical to an unlogged sweep.
int write_shard_log(const std::string& path, const std::vector<ShardDiagnostics>& diagnostics) {
  std::ofstream file;
  std::ostream* os = &std::cerr;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "error: cannot write shard log '%s'\n", path.c_str());
      return 1;
    }
    os = &file;
  }
  *os << "shard,attempt,endpoint,outcome,elapsed_ms,backoff_ms,shard_completed\n";
  for (const ShardDiagnostics& diag : diagnostics) {
    for (const ShardAttemptLog& entry : diag.attempt_log) {
      std::string outcome;
      outcome.reserve(entry.outcome.size() + 2);
      for (const char c : entry.outcome) {  // CSV quoting: double the quotes
        outcome += c;
        if (c == '"') outcome += '"';
      }
      *os << diag.shard << ',' << entry.attempt << ',' << entry.endpoint << ",\"" << outcome
          << "\"," << entry.elapsed_ms << ',' << entry.backoff_ms << ','
          << (diag.completed ? "yes" : "no") << '\n';
    }
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string spec_path = argv[2];
  RunnerOptions options;
  std::string records_path;
  std::string json_path;
  std::string shard_log_path;
  std::vector<HostSpec> hosts;
  bool threads_given = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return usage();  // every sweep flag takes a value
    const std::string value = argv[++i];
    if (flag == "--hosts") {
      try {
        hosts = parse_host_list(value);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return usage();
      }
    } else if (flag == "--shard-log") {
      if (value.empty()) return usage();
      shard_log_path = value;
    } else if (flag == "--threads" || flag == "--cache-cap" || flag == "--processes" ||
        flag == "--retries") {
      char* end = nullptr;
      const std::size_t parsed = std::strtoull(value.c_str(), &end, 10);
      // Reject non-numeric or negative input instead of silently wrapping
      // ("-1" would otherwise become a 2^64-sized thread pool).
      if (value.empty() || *end != '\0' || value[0] == '-') return usage();
      if (flag == "--threads") {
        options.threads = parsed;
        threads_given = true;
      } else if (flag == "--cache-cap") {
        options.cache_max_entries = parsed;
      } else if (flag == "--processes") {
        // 0 is rejected: "no worker processes" is spelled by omitting the
        // flag, and silently falling back in-process would misreport the
        // deployment the user asked to measure.
        if (parsed == 0) return usage();
        options.process_workers = parsed;
      } else {
        options.worker_retries = parsed;
      }
    } else if (flag == "--records") {
      records_path = value;
    } else if (flag == "--json") {
      json_path = value;
    } else if (flag == "--snapshot-dir") {
      options.snapshot_dir = value;
    } else {
      return usage();
    }
  }

  if (!hosts.empty() && !options.snapshot_dir.empty()) {
    // Remote shard-servers have no shared filesystem with the
    // coordinator; silently writing snapshots host-locally would not be
    // the deployment the user asked for.
    std::fprintf(stderr, "error: --hosts cannot be combined with --snapshot-dir\n");
    return usage();
  }
  if (!shard_log_path.empty() && hosts.empty() && options.process_workers == 0) {
    std::fprintf(stderr,
                 "error: --shard-log requires a sharded backend (--processes or --hosts)\n");
    return usage();
  }

  std::ifstream spec_file(spec_path);
  if (!spec_file) {
    std::fprintf(stderr, "error: cannot open sweep spec '%s'\n", spec_path.c_str());
    return 1;
  }
  const SweepSpec spec = SweepSpec::parse(spec_file);

  SweepReport report;
  std::string deployment;
  std::vector<ShardDiagnostics> shard_diagnostics;
  const auto started = std::chrono::steady_clock::now();
  if (!hosts.empty()) {
    // Multi-host backend: shards go to remote `lr_cli shard-server`
    // daemons over TCP.  --threads is per remote worker lane and
    // defaults to 1, same reasoning as --processes.  --processes N here
    // means "N-local-worker fallback if every host dies".
    if (!threads_given) options.threads = 1;
    MultiHostShardRunner runner(options, hosts);
    if (runner.total_workers() > spec.run_count()) {
      std::fprintf(stderr, "note: %zu remote worker(s) clamped to %zu (one shard per run)\n",
                   runner.total_workers(), spec.run_count());
    }
    report = runner.run(spec);
    shard_diagnostics = runner.shard_diagnostics();
    std::size_t retries = 0;
    for (const ShardDiagnostics& diag : shard_diagnostics) {
      retries += diag.failures.size();
      for (const std::string& failure : diag.failures) {
        std::fprintf(stderr, "shard %zu retry: %s\n", diag.shard, failure.c_str());
      }
    }
    deployment = std::to_string(hosts.size()) + " host(s) x " +
                 std::to_string(runner.total_workers()) + " worker(s) x " +
                 std::to_string(options.threads) + " thread(s), " + std::to_string(retries) +
                 " shard retry(ies)";
    if (runner.fallback_engaged()) deployment += ", local fallback engaged";
  } else if (options.process_workers > 0) {
    // Multi-process backend: each worker is shared-nothing, so --threads
    // is per worker and defaults to 1 (not hardware concurrency, which
    // would oversubscribe the host N-fold).
    if (!threads_given) options.threads = 1;
    ProcessShardRunner runner(options);
    const std::size_t workers = runner.resolved_workers(spec.run_count());
    if (workers < options.process_workers) {
      std::fprintf(stderr, "note: --processes %zu clamped to %zu (one shard per run)\n",
                   options.process_workers, workers);
    }
    report = runner.run(spec);
    shard_diagnostics = runner.shard_diagnostics();
    std::size_t retries = 0;
    for (const ShardDiagnostics& diag : shard_diagnostics) {
      retries += diag.failures.size();
      for (const std::string& failure : diag.failures) {
        std::fprintf(stderr, "shard %zu retry: %s\n", diag.shard, failure.c_str());
      }
    }
    deployment = std::to_string(workers) + " process(es) x " + std::to_string(options.threads) +
                 " thread(s), " + std::to_string(retries) + " worker retry(ies)";
  } else {
    const ScenarioRunner runner(options);
    report = runner.run(spec);
    deployment = std::to_string(runner.threads()) + " thread(s)";
  }
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - started)
                              .count();

  std::uint64_t errors = 0;
  for (const RunRecord& record : report.records) {
    if (!record.error.empty()) ++errors;
  }
  // Wall-clock and cache stats only on stderr: stdout must be identical
  // across thread counts, process counts, and cache bounds.
  std::fprintf(stderr, "sweep: %zu runs on %s in %lld ms, %llu error(s)\n",
               report.records.size(), deployment.c_str(), static_cast<long long>(elapsed_ms),
               static_cast<unsigned long long>(errors));
  std::fprintf(stderr,
               "cache: %zu workload(s) resident, %llu hit(s), %llu miss(es), %llu eviction(s)\n",
               report.cache.entries, static_cast<unsigned long long>(report.cache.hits),
               static_cast<unsigned long long>(report.cache.misses),
               static_cast<unsigned long long>(report.cache.evictions));
  if (!options.snapshot_dir.empty() && options.process_workers == 0) {
    // Worker processes keep their own counters (the shard protocol carries
    // only the four cache counters), so this line is in-process only.
    std::fprintf(stderr, "snapshots: %llu mmap reload(s), %llu save(s) in %s\n",
                 static_cast<unsigned long long>(report.cache.snapshot_loads),
                 static_cast<unsigned long long>(report.cache.snapshot_saves),
                 options.snapshot_dir.c_str());
  }

  if (!shard_log_path.empty()) {
    const int log_status = write_shard_log(shard_log_path, shard_diagnostics);
    if (log_status != 0) return log_status;
  }

  write_table_csv(std::cout, report.aggregate_table());
  if (!records_path.empty()) {
    std::ofstream os(records_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write '%s'\n", records_path.c_str());
      return 1;
    }
    write_table_csv(os, report.records_table());
  }
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    write_table_json(os, report.records_table());
  }
  return errors == 0 ? 0 : 1;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string verb = argv[2];
  if (verb == "save") {
    if (argc != 7) return usage();
    RunSpec spec;
    try {
      spec.topology = parse_topology(argv[3]);
    } catch (const std::invalid_argument&) {
      return usage();
    }
    for (const int arg : {4, 5}) {
      char* end = nullptr;
      const std::string value = argv[arg];
      const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || value[0] == '-') return usage();
      if (arg == 4) {
        if (parsed == 0) return usage();
        spec.size = static_cast<std::size_t>(parsed);
      } else {
        spec.seed = parsed;
      }
    }
    // Same workload the sweep axis would build, frozen and persisted: a
    // later `sweep --snapshot-dir` (or `snapshot info`) mmap-reloads it.
    const Instance instance = make_instance(spec);
    const CsrGraph csr(instance.graph, instance.senses);
    save_snapshot(argv[6], instance, csr);
    std::printf("wrote %s: %s, destination %u, fingerprint %016llx\n", argv[6],
                instance.graph.describe().c_str(), instance.destination,
                static_cast<unsigned long long>(csr.fingerprint()));
    return 0;
  }
  if (verb == "info") {
    if (argc != 4) return usage();
    const Snapshot snap = Snapshot::load(argv[3]);  // validates magic + extents + checksum
    std::printf("name        : %s\n", snap.name().c_str());
    std::printf("nodes       : %zu\n", snap.num_nodes());
    std::printf("edges       : %zu\n", snap.num_edges());
    std::printf("destination : %u\n", snap.destination());
    std::printf("file bytes  : %zu\n", snap.file_bytes());
    std::printf("fingerprint : %016llx\n",
                static_cast<unsigned long long>(snap.csr().fingerprint()));
    std::printf("checksum    : ok\n");
    return 0;
  }
  return usage();
}

int cmd_serve(int argc, char** argv) {
  if (argc < 4) return usage();
  TopologyKind topology;
  try {
    topology = parse_topology(argv[2]);
  } catch (const std::invalid_argument&) {
    return usage();
  }
  ServiceOptions options;
  RunSpec instance_spec;
  instance_spec.topology = topology;
  std::string json_path;
  std::uint64_t seed = 1;
  {
    char* end = nullptr;
    const std::string value = argv[3];
    instance_spec.size = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || value[0] == '-' || instance_spec.size == 0) {
      return usage();
    }
  }
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return usage();  // every serve flag takes a value
    const std::string value = argv[++i];
    if (flag == "--workload") {
      try {
        options.workload = parse_service_workload(value);
      } catch (const std::invalid_argument&) {
        return usage();
      }
    } else if (flag == "--scheduler") {
      try {
        options.scheduler = parse_event_scheduler(value);
      } catch (const std::invalid_argument&) {
        return usage();
      }
    } else if (flag == "--json") {
      json_path = value;
    } else if (flag == "--clients" || flag == "--duration" || flag == "--seed" ||
               flag == "--threads" || flag == "--churn") {
      char* end = nullptr;
      const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
      // Same rejection rule as sweep: non-numeric or negative input fails
      // loudly instead of wrapping.
      if (value.empty() || *end != '\0' || value[0] == '-') return usage();
      if (flag == "--clients") {
        if (parsed == 0) return usage();
        options.clients = static_cast<std::size_t>(parsed);
      } else if (flag == "--duration") {
        options.duration = parsed;
      } else if (flag == "--seed") {
        seed = parsed;
      } else if (flag == "--threads") {
        options.workers = static_cast<std::size_t>(parsed);
      } else {
        options.churn_interval = parsed;
      }
    } else {
      return usage();
    }
  }

  // Derive the workload and harness seeds exactly like the sweep layer's
  // service kernel, so `serve chain 32 --seed 3` reproduces the sweep row
  // (topology=chain, size=32, seed=3, algorithm=service).
  instance_spec.seed = seed;
  options.seed = instance_spec.network_seed();
  const Instance instance = make_instance(instance_spec);

  ServiceHarness harness(instance.graph, instance.destination, options);
  const ServiceReport report = harness.run();
  const Table table = report.latency_table();

  // Deterministic report on stdout; wall-clock throughput and churn
  // accounting only on stderr (outside the determinism contract).
  std::fprintf(stderr,
               "serve: %llu request(s) in %.3f s (%.0f req/s), %llu churn event(s), "
               "%llu reversal step(s)\n",
               static_cast<unsigned long long>(report.total_issued()), report.wall_seconds,
               report.requests_per_sec(), static_cast<unsigned long long>(report.churn_events),
               static_cast<unsigned long long>(report.reversal_steps));
  write_table_csv(std::cout, table);
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    write_table_json(os, table);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // The internal worker entry point dispatches before anything touches
  // stdout: its stdout is a binary frame pipe, not a terminal surface.
  // (sweep_worker_main itself rejects invocations that did not come from
  // a ProcessShardRunner parent, with a readable explanation.)
  if (command == "sweep-worker") return lr::sweep_worker_main(argc, argv);
  // The shard-server daemon owns its own argv/signal handling and ready
  // line; it dispatches outside the generic catch so its exit codes (2 on
  // usage errors, per its own convention) stay under its control.
  if (command == "shard-server") return lr::shard_server_main(argc, argv);
  try {
    if (command == "gen") return cmd_gen(argc, argv);
    if (command == "info") return cmd_info(argc, argv);
    if (command == "run") return cmd_run(argc, argv);
    if (command == "modelcheck") return cmd_modelcheck(argc, argv);
    if (command == "sweep") return cmd_sweep(argc, argv);
    if (command == "snapshot") return cmd_snapshot(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}

/// lr_cli — command-line front end to the whole library.
///
///   lr_cli gen <family> <n> <seed> <out.lri>
///       Families: chain | random | grid | layered | star.
///       Writes a workload instance file (text format, see serialize.hpp).
///
///   lr_cli info <in.lri>
///       Prints topology, initial bad nodes, sinks, acyclicity.
///
///   lr_cli run <in.lri> <pr|newpr|fr> <lowest|random|rr|farthest> [seed]
///       Runs the algorithm to quiescence, prints work stats, and emits
///       the final DAG as DOT on stdout (pipe into `dot -Tpng`).
///
///   lr_cli modelcheck <in.lri> <pr|newpr|fr>
///       Exhaustively explores ALL schedules and checks acyclicity in
///       every reachable state (small instances only).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "automata/executor.hpp"
#include "automata/model_check.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/serialize.hpp"

namespace {

using namespace lr;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lr_cli gen <chain|random|grid|layered|star> <n> <seed> <out.lri>\n"
               "  lr_cli info <in.lri>\n"
               "  lr_cli run <in.lri> <pr|newpr|fr> <lowest|random|rr|farthest> [seed]\n"
               "  lr_cli modelcheck <in.lri> <pr|newpr|fr>\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 6) return usage();
  const std::string family = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const std::uint64_t seed = std::strtoull(argv[4], nullptr, 10);
  std::mt19937_64 rng(seed);
  Instance inst;
  if (family == "chain") {
    inst = make_worst_case_chain(n);
  } else if (family == "random") {
    inst = make_random_instance(n, n, rng);
  } else if (family == "grid") {
    inst = make_grid_instance(n / 8 + 2, 8, rng);
  } else if (family == "layered") {
    inst = make_layered_bad_instance(n / 8 + 2, 8, 0.3, rng);
  } else if (family == "star") {
    inst = make_sink_source_instance(n | 1);
  } else {
    return usage();
  }
  save_instance(argv[5], inst);
  std::printf("wrote %s: %s, destination %u\n", argv[5], inst.graph.describe().c_str(),
              inst.destination);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  const Instance inst = load_instance(argv[2]);
  const Orientation o = inst.make_orientation();
  std::printf("name        : %s\n", inst.name.c_str());
  std::printf("topology    : %s\n", inst.graph.describe().c_str());
  std::printf("destination : %u\n", inst.destination);
  std::printf("acyclic     : %s\n", is_acyclic(o) ? "yes" : "NO");
  std::printf("bad nodes   : %zu\n", bad_nodes(o, inst.destination).size());
  std::printf("sinks       : %zu\n", sinks_excluding(o, inst.destination).size());
  return 0;
}

template <typename A>
int run_algorithm(const Instance& inst, const std::string& scheduler_name, std::uint64_t seed) {
  A automaton(inst);
  RunResult result;
  if (scheduler_name == "lowest") {
    LowestIdScheduler s;
    result = run_to_quiescence(automaton, s);
  } else if (scheduler_name == "random") {
    RandomScheduler s(seed);
    result = run_to_quiescence(automaton, s);
  } else if (scheduler_name == "rr") {
    RoundRobinScheduler s;
    result = run_to_quiescence(automaton, s);
  } else if (scheduler_name == "farthest") {
    FarthestFirstScheduler s;
    result = run_to_quiescence(automaton, s);
  } else {
    return usage();
  }
  std::fprintf(stderr, "steps=%llu edge_reversals=%llu quiescent=%s destination_oriented=%s\n",
               static_cast<unsigned long long>(result.steps),
               static_cast<unsigned long long>(result.edge_reversals),
               result.quiescent ? "yes" : "no", result.destination_oriented ? "yes" : "no");
  write_dot(std::cout, automaton.orientation(), {.destination = automaton.destination()});
  return result.destination_oriented ? 0 : 1;
}

int cmd_run(int argc, char** argv) {
  if (argc != 5 && argc != 6) return usage();
  const Instance inst = load_instance(argv[2]);
  const std::string algo = argv[3];
  const std::string sched = argv[4];
  const std::uint64_t seed = argc == 6 ? std::strtoull(argv[5], nullptr, 10) : 1;
  if (algo == "pr") return run_algorithm<OneStepPRAutomaton>(inst, sched, seed);
  if (algo == "newpr") return run_algorithm<NewPRAutomaton>(inst, sched, seed);
  if (algo == "fr") return run_algorithm<FullReversalAutomaton>(inst, sched, seed);
  return usage();
}

template <typename A>
int model_check_algorithm(const Instance& inst) {
  A initial(inst);
  const auto result = model_check(initial, [](const A& a) -> std::string {
    const auto check = check_acyclic(a.orientation());
    return check.ok ? std::string{} : check.detail;
  });
  std::printf("states explored      : %zu\n", result.states_explored);
  std::printf("transitions explored : %zu\n", result.transitions_explored);
  std::printf("acyclic everywhere   : %s\n", result.ok ? "yes" : "NO");
  if (!result.ok) {
    std::printf("violation            : %s\n", result.failure.c_str());
    std::printf("counterexample       :");
    for (const NodeId u : result.counterexample) std::printf(" %u", u);
    std::printf("\n");
  }
  return result.ok ? 0 : 1;
}

int cmd_modelcheck(int argc, char** argv) {
  if (argc != 4) return usage();
  const Instance inst = load_instance(argv[2]);
  const std::string algo = argv[3];
  if (algo == "pr") return model_check_algorithm<OneStepPRAutomaton>(inst);
  if (algo == "newpr") return model_check_algorithm<NewPRAutomaton>(inst);
  if (algo == "fr") return model_check_algorithm<FullReversalAutomaton>(inst);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen") return cmd_gen(argc, argv);
    if (command == "info") return cmd_info(argc, argv);
    if (command == "run") return cmd_run(argc, argv);
    if (command == "modelcheck") return cmd_modelcheck(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}

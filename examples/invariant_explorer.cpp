/// Invariant explorer: watch the paper's invariants hold step by step.
///
/// Runs all four automata (PR set-step, OneStepPR, NewPR, FR) on a chosen
/// instance and prints, after every action, the status of each invariant
/// from Sections 3 and 4.  Useful for building intuition about *why* the
/// label-free proof works: you can watch counts, parities and the
/// left-right embedding interact.
///
///   $ ./invariant_explorer [n] [seed]       (defaults: n=10, seed=1)

#include <cstdio>
#include <cstdlib>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace lr;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  std::mt19937_64 rng(seed);
  const Instance instance = make_random_instance(n, n, rng);
  std::printf("instance: %s, destination %u, seed %llu\n", instance.name.c_str(),
              instance.destination, static_cast<unsigned long long>(seed));

  // --- OneStepPR with the Section 3 invariants -----------------------------
  std::printf("\n=== OneStepPR: Invariants 3.1/3.2, Corollaries 3.3/3.4 ===\n");
  {
    OneStepPRAutomaton pr(instance);
    RandomScheduler scheduler(seed);
    run_to_quiescence(pr, scheduler, [](const OneStepPRAutomaton& a, NodeId fired) {
      std::printf("reverse(%2u): 3.1=%s 3.2=%s 3.3=%s 3.4=%s acyclic=%s |list[%u]|=%zu\n",
                  fired, check_invariant_3_1(a.orientation()).ok ? "ok" : "VIOLATED",
                  check_invariant_3_2(a).ok ? "ok" : "VIOLATED",
                  check_corollary_3_3(a).ok ? "ok" : "VIOLATED",
                  check_corollary_3_4(a).ok ? "ok" : "VIOLATED",
                  check_acyclic(a.orientation()).ok ? "ok" : "VIOLATED", fired,
                  a.list(fired).size());
    });
  }

  // --- NewPR with the Section 4 invariants ---------------------------------
  std::printf("\n=== NewPR: Invariants 4.1/4.2 (label-free proof machinery) ===\n");
  {
    NewPRAutomaton newpr(instance);
    const LeftRightEmbedding emb(newpr.orientation());
    RandomScheduler scheduler(seed + 1);
    run_to_quiescence(newpr, scheduler, [&emb](const NewPRAutomaton& a, NodeId fired) {
      std::printf("reverse(%2u): count=%llu parity=%s 4.1=%s 4.2=%s acyclic=%s%s\n", fired,
                  static_cast<unsigned long long>(a.count(fired)),
                  a.parity(fired) == Parity::kEven ? "even" : "odd ",
                  check_invariant_4_1(a, emb).ok ? "ok" : "VIOLATED",
                  check_invariant_4_2(a, emb).ok ? "ok" : "VIOLATED",
                  check_acyclic(a.orientation()).ok ? "ok" : "VIOLATED",
                  a.count(fired) > 0 && a.dummy_steps() > 0 ? "  (has dummies)" : "");
    });
    std::printf("NewPR finished: %llu steps, %llu dummy\n",
                static_cast<unsigned long long>(newpr.total_steps()),
                static_cast<unsigned long long>(newpr.dummy_steps()));
  }
  return 0;
}

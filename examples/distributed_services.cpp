/// Distributed services demo: leader election and token mutual exclusion
/// running as message-passing protocols over the asynchronous network
/// simulator — the full distributed version of the paper's three headline
/// applications (routing is shown by distributed_sim / adhoc_routing).
///
///   $ ./distributed_services [n] [seed]     (defaults: n=12, seed=1)

#include <cstdio>
#include <cstdlib>
#include <random>

#include "graph/generators.hpp"
#include "sim/dist_leader.hpp"
#include "sim/dist_mutex.hpp"

int main(int argc, char** argv) {
  using namespace lr;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  std::mt19937_64 rng(seed);
  const Graph topology = make_unit_disk_graph(n, 0.4, rng);
  std::printf("unit-disk MANET: %s\n\n", topology.describe().c_str());

  // --- Leader election ------------------------------------------------------
  {
    Network net(topology, {.min_delay = 1, .max_delay = 8, .seed = seed});
    DistLeaderElection election(topology, net);
    election.start();
    net.run_until_idle();
    const auto leader = election.agreed_leader();
    std::printf("leader election:\n");
    std::printf("  agreed leader      : %s\n",
                leader ? std::to_string(*leader).c_str() : "none");
    std::printf("  sink certificate   : %s\n",
                election.leader_is_unique_sink() ? "leader is the unique sink" : "VIOLATED");
    std::printf("  candidate adoptions: %llu, height steps: %llu, messages: %llu\n\n",
                static_cast<unsigned long long>(election.candidate_adoptions()),
                static_cast<unsigned long long>(election.height_steps()),
                static_cast<unsigned long long>(net.messages_sent()));
  }

  // --- Mutual exclusion -----------------------------------------------------
  {
    Network net(topology, {.min_delay = 1, .max_delay = 6, .seed = seed + 1});
    DistMutex mutex(topology, 0, net);
    std::printf("mutual exclusion (token starts at node 0):\n");
    std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
    for (int burst = 0; burst < 3; ++burst) {
      for (int i = 0; i < 3; ++i) mutex.request(pick(rng));
      net.run_until_idle();
      while (mutex.queued_requests() > 0) {
        mutex.release();
        net.run_until_idle();
        std::printf("  token -> node %s (grants so far: %llu)\n",
                    mutex.holder() ? std::to_string(*mutex.holder()).c_str() : "?",
                    static_cast<unsigned long long>(mutex.grants()));
      }
    }
    std::printf("  total grants: %llu, request-driven reversals: %llu, messages: %llu\n",
                static_cast<unsigned long long>(mutex.grants()),
                static_cast<unsigned long long>(mutex.reversal_steps()),
                static_cast<unsigned long long>(net.messages_sent()));
  }
  return 0;
}

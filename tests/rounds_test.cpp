#include "analysis/rounds.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/game.hpp"
#include "automata/scheduler.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"

namespace lr {
namespace {

TEST(RoundsTest, ChainPRConvergesInOneWave) {
  const Instance inst = make_worst_case_chain(10);
  const RoundHistory history = run_greedy_rounds(inst, RoundStrategy::kPartialReversal);
  EXPECT_TRUE(history.converged);
  // One sink at a time on the chain: n_b rounds, each firing exactly 1.
  EXPECT_EQ(history.total_rounds(), 9u);
  EXPECT_EQ(history.peak_parallelism(), 1u);
  EXPECT_EQ(history.total_node_steps(), 9u);
}

TEST(RoundsTest, ChainFRQuadraticWork) {
  const Instance inst = make_worst_case_chain(10);
  const RoundHistory history = run_greedy_rounds(inst, RoundStrategy::kFullReversal);
  EXPECT_TRUE(history.converged);
  EXPECT_EQ(history.total_node_steps(), 45u);  // nb(nb+1)/2 = 9*10/2
  // FR's greedy execution fires multiple sinks per round mid-run.
  EXPECT_GE(history.peak_parallelism(), 2u);
  EXPECT_LT(history.total_rounds(), 45u);
}

TEST(RoundsTest, BadNodesMonotoneToZeroOnChain) {
  const Instance inst = make_worst_case_chain(12);
  const RoundHistory history = run_greedy_rounds(inst, RoundStrategy::kPartialReversal);
  ASSERT_FALSE(history.rounds.empty());
  // On the chain, each PR wave step fixes nodes; the count must reach 0 at
  // the end and the last round's count must be 0 iff converged.
  EXPECT_EQ(history.rounds.back().bad_nodes_after, 0u);
  EXPECT_EQ(history.rounds_to_routes(), history.total_rounds());
}

TEST(RoundsTest, StarFiresManySinksInRoundOne) {
  const Instance inst = make_sink_source_instance(17);
  const RoundHistory history = run_greedy_rounds(inst, RoundStrategy::kPartialReversal);
  ASSERT_FALSE(history.rounds.empty());
  EXPECT_EQ(history.rounds.front().sinks_fired, 8u) << "all even leaves fire together";
  EXPECT_TRUE(history.converged);
}

TEST(RoundsTest, WorkAgreesWithSingleStepMeasurement) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst = make_random_instance(24, 20, rng);
    const RoundHistory pr_rounds = run_greedy_rounds(inst, RoundStrategy::kPartialReversal);
    EXPECT_TRUE(pr_rounds.converged);
    // FR's total work is schedule independent; PR's can vary, so only FR is
    // compared against the one-step execution.
    const RoundHistory fr_rounds = run_greedy_rounds(inst, RoundStrategy::kFullReversal);
    const CostProfile fr_single =
        measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1);
    EXPECT_EQ(fr_rounds.total_node_steps(), fr_single.social_cost) << inst.name;
  }
}

TEST(RoundsTest, EdgesReversedSumMatchesOrientationCounter) {
  std::mt19937_64 rng(32);
  const Instance inst = make_random_instance(20, 15, rng);
  const RoundHistory history = run_greedy_rounds(inst, RoundStrategy::kPartialReversal);
  std::uint64_t total_edges = 0;
  for (const RoundRecord& r : history.rounds) total_edges += r.edges_reversed;
  EXPECT_GT(total_edges, 0u);
  // Re-run through an automaton to compare the edge counter.
  PRAutomaton pr(inst);
  MaximalSetScheduler scheduler;
  while (const auto action = scheduler.choose(pr)) pr.apply(*action);
  EXPECT_EQ(total_edges, pr.orientation().reversal_count());
}

TEST(RoundsTest, MaxRoundsBudgetStopsEarly) {
  const Instance inst = make_worst_case_chain(64);
  const RoundHistory history = run_greedy_rounds(inst, RoundStrategy::kPartialReversal, 5);
  EXPECT_FALSE(history.converged);
  EXPECT_EQ(history.total_rounds(), 5u);
}

TEST(RoundsTest, CsvOutputWellFormed) {
  const Instance inst = make_worst_case_chain(5);
  const RoundHistory history = run_greedy_rounds(inst, RoundStrategy::kPartialReversal);
  std::ostringstream oss;
  write_round_history_csv(oss, history);
  const std::string csv = oss.str();
  EXPECT_NE(csv.find("round,sinks_fired,edges_reversed,bad_nodes_after\n"), std::string::npos);
  EXPECT_NE(csv.find("1,1,"), std::string::npos);
}

TEST(RoundsTest, UnitDiskAndBarbellFamiliesConverge) {
  std::mt19937_64 rng(33);
  const Instance disk = make_unit_disk_instance(30, 0.3, rng);
  const RoundHistory disk_history = run_greedy_rounds(disk, RoundStrategy::kPartialReversal);
  EXPECT_TRUE(disk_history.converged);

  Instance barbell;
  barbell.graph = make_barbell_graph(5, 3);
  barbell.senses =
      Orientation::from_ranking(barbell.graph, identity_ranking(barbell.graph.num_nodes()))
          .senses();
  barbell.destination = 0;
  barbell.name = "barbell(5,3)";
  const RoundHistory barbell_history =
      run_greedy_rounds(barbell, RoundStrategy::kFullReversal);
  EXPECT_TRUE(barbell_history.converged);
}

}  // namespace
}  // namespace lr

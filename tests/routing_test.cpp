#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "routing/dynamic_heights.hpp"
#include "routing/leader_election.hpp"
#include "routing/mutex.hpp"
#include "routing/tora.hpp"

namespace lr {
namespace {

// ---------------------------------------------------------------------------
// DynamicHeightsDag
// ---------------------------------------------------------------------------

TEST(DynamicHeightsTest, AddRemoveLinksIdempotent) {
  DynamicHeightsDag dag(4, 0);
  dag.add_link(0, 1);
  dag.add_link(0, 1);
  EXPECT_TRUE(dag.has_link(0, 1));
  EXPECT_TRUE(dag.has_link(1, 0));
  dag.remove_link(1, 0);
  dag.remove_link(1, 0);
  EXPECT_FALSE(dag.has_link(0, 1));
}

TEST(DynamicHeightsTest, StabilizeOrientsChainTowardsDestination) {
  DynamicHeightsDag dag(5, 0);
  for (NodeId u = 0; u + 1 < 5; ++u) dag.add_link(u, u + 1);
  dag.stabilize();
  for (NodeId u = 1; u < 5; ++u) {
    const auto path = dag.route(u);
    ASSERT_TRUE(path.has_value()) << "node " << u;
    EXPECT_EQ(path->back(), 0u);
  }
}

TEST(DynamicHeightsTest, HeightsStrictlyDecreaseAlongRoutes) {
  std::mt19937_64 rng(41);
  Graph g = make_random_connected_graph(20, 15, rng);
  DynamicHeightsDag dag(20, 3);
  for (EdgeId e = 0; e < g.num_edges(); ++e) dag.add_link(g.edge_u(e), g.edge_v(e));
  dag.stabilize();
  for (NodeId u = 0; u < 20; ++u) {
    const auto path = dag.route(u);
    ASSERT_TRUE(path.has_value());
    for (std::size_t i = 0; i + 1 < path->size(); ++i) {
      EXPECT_GT(dag.height((*path)[i]), dag.height((*path)[i + 1]));
    }
  }
}

TEST(DynamicHeightsTest, DisconnectedComponentReportedUnroutable) {
  DynamicHeightsDag dag(4, 0);
  dag.add_link(0, 1);
  dag.add_link(2, 3);  // separate component
  dag.stabilize();
  EXPECT_TRUE(dag.routable(1));
  EXPECT_FALSE(dag.routable(2));
  EXPECT_FALSE(dag.route(2).has_value());
}

TEST(DynamicHeightsTest, RemovalThenStabilizeRestoresRoutes) {
  // Ring: two disjoint routes; removing one link must not break routing.
  DynamicHeightsDag dag(6, 0);
  for (NodeId u = 0; u < 6; ++u) dag.add_link(u, (u + 1) % 6);
  dag.stabilize();
  dag.remove_link(0, 1);  // 1 must now route the long way
  dag.stabilize();
  const auto path = dag.route(1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->back(), 0u);
  EXPECT_GE(path->size(), 3u);
}

TEST(DynamicHeightsTest, SinkDetection) {
  DynamicHeightsDag dag(3, 0);
  dag.add_link(0, 1);
  dag.add_link(1, 2);
  dag.stabilize();
  EXPECT_FALSE(dag.is_sink(1));
  EXPECT_FALSE(dag.is_sink(2));
  // Destination is the global sink.
  EXPECT_TRUE(dag.is_sink(0));
}

TEST(DynamicHeightsTest, RejectsBadArguments) {
  DynamicHeightsDag dag(3, 0);
  EXPECT_THROW(dag.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(dag.add_link(0, 9), std::invalid_argument);
  EXPECT_THROW(dag.set_destination(9), std::invalid_argument);
  EXPECT_THROW(DynamicHeightsDag(3, 7), std::invalid_argument);
  EXPECT_THROW(DynamicHeightsDag(make_chain_graph(3), 7), std::invalid_argument);
}

TEST(DynamicHeightsTest, BatchConstructorMatchesIncrementalConstruction) {
  std::mt19937_64 rng(47);
  const Graph g = make_random_connected_graph(24, 20, rng);

  DynamicHeightsDag batch(g, 5);
  DynamicHeightsDag incremental(g.num_nodes(), 5);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    incremental.add_link(g.edge_u(e), g.edge_v(e));
  }
  EXPECT_EQ(batch.stabilize(), incremental.stabilize());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(batch.height(u), incremental.height(u)) << "node " << u;
    EXPECT_EQ(batch.is_sink(u), incremental.is_sink(u)) << "node " << u;
    EXPECT_EQ(batch.route(u), incremental.route(u)) << "node " << u;
  }
}

TEST(DynamicHeightsTest, NeighborsSliceTracksChurnAndStaysAscending) {
  DynamicHeightsDag dag(5, 0);
  dag.add_link(2, 4);
  dag.add_link(2, 0);
  dag.add_link(2, 3);
  const auto slice = dag.neighbors(2);
  EXPECT_EQ(std::vector<NodeId>(slice.begin(), slice.end()),
            (std::vector<NodeId>{0, 3, 4}));
  dag.remove_link(2, 3);
  const auto after = dag.neighbors(2);
  EXPECT_EQ(std::vector<NodeId>(after.begin(), after.end()), (std::vector<NodeId>{0, 4}));
  EXPECT_TRUE(dag.neighbors(1).empty());
}

TEST(DynamicHeightsTest, QueriesBetweenChurnEventsShareOneSnapshot) {
  // Regression guard for the lazy CSR rebuild: interleaved queries after a
  // single churn event must agree with a freshly built DAG over the same
  // link set.
  DynamicHeightsDag dag(6, 0);
  for (NodeId u = 0; u + 1 < 6; ++u) dag.add_link(u, u + 1);
  dag.stabilize();
  dag.remove_link(2, 3);
  EXPECT_FALSE(dag.has_link(2, 3));  // pre-snapshot query (sorted link set)
  dag.stabilize();
  EXPECT_TRUE(dag.routable(2));
  EXPECT_FALSE(dag.routable(3));
  EXPECT_FALSE(dag.route(3).has_value());
  const auto path = dag.route(2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->back(), 0u);
}

TEST(DynamicHeightsTest, SingleLinkChurnPatchesInsteadOfRebuilding) {
  std::mt19937_64 rng(53);
  const Graph g = make_random_connected_graph(24, 28, rng);
  DynamicHeightsDag dag(g, 0);
  EXPECT_EQ(dag.snapshot_rebuilds(), 1u);  // the constructor's initial build
  dag.stabilize();

  // 40 single-link events with stabilize/route traffic in between: the
  // incremental-repair acceptance criterion — zero further rebuilds.
  std::uint64_t events = 0;
  for (int i = 0; i < 40; ++i) {
    const NodeId u = static_cast<NodeId>(rng() % 24);
    NodeId v = static_cast<NodeId>(rng() % 24);
    if (u == v) v = (v + 1) % 24;
    if (dag.has_link(u, v)) {
      dag.remove_link(u, v);
    } else {
      dag.add_link(u, v);
    }
    ++events;
    dag.stabilize();
    dag.route(u);
  }
  EXPECT_EQ(dag.snapshot_rebuilds(), 1u);
  EXPECT_EQ(dag.snapshot_patches(), events);
}

TEST(DynamicHeightsTest, PatchedAndRebuiltSnapshotsBehaveIdentically) {
  // Two DAGs, identical event streams; `control` has its snapshot
  // invalidated before every query round, forcing the historical
  // full-rebuild path.  Heights, stabilization work, and routes must agree
  // after every event — the behavioral half of the patched == rebuilt
  // contract (tests/csr_test.cpp pins the byte-level half).
  std::mt19937_64 rng(59);
  const Graph g = make_random_connected_graph(20, 24, rng);
  DynamicHeightsDag patched(g, 2);
  DynamicHeightsDag control(g, 2);
  patched.stabilize();
  control.stabilize();
  for (int i = 0; i < 30; ++i) {
    const NodeId u = static_cast<NodeId>(rng() % 20);
    NodeId v = static_cast<NodeId>(rng() % 20);
    if (u == v) v = (v + 1) % 20;
    if (patched.has_link(u, v)) {
      patched.remove_link(u, v);
      control.remove_link(u, v);
    } else {
      patched.add_link(u, v);
      control.add_link(u, v);
    }
    control.invalidate_snapshot();
    ASSERT_EQ(patched.stabilize(), control.stabilize()) << "event " << i;
    for (NodeId w = 0; w < 20; ++w) {
      ASSERT_EQ(patched.height(w), control.height(w)) << "event " << i << " node " << w;
      ASSERT_EQ(patched.is_sink(w), control.is_sink(w)) << "event " << i << " node " << w;
      ASSERT_EQ(patched.route(w), control.route(w)) << "event " << i << " node " << w;
    }
  }
  EXPECT_EQ(patched.snapshot_rebuilds(), 1u);
  EXPECT_GT(control.snapshot_rebuilds(), 1u);
}

TEST(DynamicHeightsTest, BatchChurnFallsBackToOneRebuild) {
  DynamicHeightsDag dag(make_chain_graph(8), 0);
  dag.stabilize();
  EXPECT_EQ(dag.snapshot_rebuilds(), 1u);

  // A small batch stays on the patch path...
  const LinkEvent small_batch[] = {{0, 2, true}, {0, 3, true}};
  dag.apply_events(small_batch);
  EXPECT_EQ(dag.snapshot_rebuilds(), 1u);
  EXPECT_EQ(dag.snapshot_patches(), 2u);
  dag.stabilize();

  // ...a large one invalidates once and rebuilds once, patching nothing.
  const LinkEvent large_batch[] = {{0, 4, true}, {0, 5, true}, {1, 3, true},
                                   {1, 4, true}, {2, 4, true}, {0, 2, false}};
  dag.apply_events(large_batch);
  EXPECT_EQ(dag.snapshot_patches(), 2u);
  dag.stabilize();
  EXPECT_EQ(dag.snapshot_rebuilds(), 2u);
  EXPECT_TRUE(dag.has_link(2, 4));
  EXPECT_FALSE(dag.has_link(0, 2));
  for (NodeId u = 1; u < 8; ++u) {
    ASSERT_TRUE(dag.route(u).has_value()) << u;
  }
}

// ---------------------------------------------------------------------------
// ToraRouter
// ---------------------------------------------------------------------------

TEST(ToraTest, DeliversFromEveryNodeInitially) {
  std::mt19937_64 rng(50);
  Graph g = make_random_connected_graph(25, 20, rng);
  ToraRouter router(g, 0);
  for (NodeId u = 1; u < 25; ++u) {
    const DeliveryResult r = router.send_packet(u);
    EXPECT_TRUE(r.delivered) << "node " << u;
    EXPECT_EQ(r.path.front(), u);
    EXPECT_EQ(r.path.back(), 0u);
  }
  EXPECT_EQ(router.stats().packets_delivered, 24u);
}

TEST(ToraTest, ReroutesAfterLinkFailure) {
  // Ring: cut one link adjacent to the destination; everything still routes.
  Graph g = make_ring_graph(8);
  ToraRouter router(g, 0);
  router.link_down(0, 1);
  for (NodeId u = 1; u < 8; ++u) {
    EXPECT_TRUE(router.send_packet(u).delivered) << "node " << u;
  }
  EXPECT_GT(router.stats().reversals, 0u) << "maintenance must have reversed links";
}

TEST(ToraTest, ReportsUndeliverableWhenPartitioned) {
  Graph g = make_chain_graph(6);
  ToraRouter router(g, 0);
  router.link_down(2, 3);  // 3,4,5 cut off
  EXPECT_TRUE(router.send_packet(1).delivered);
  EXPECT_FALSE(router.send_packet(4).delivered);
  EXPECT_FALSE(router.has_route(4));
  // Heal the partition.
  router.link_up(2, 3);
  EXPECT_TRUE(router.send_packet(4).delivered);
}

TEST(ToraTest, PacketPathsAreLoopFree) {
  std::mt19937_64 rng(51);
  Graph g = make_random_connected_graph(30, 25, rng);
  ToraRouter router(g, 5);
  for (NodeId u = 0; u < 30; ++u) {
    const DeliveryResult r = router.send_packet(u);
    ASSERT_TRUE(r.delivered);
    std::set<NodeId> seen(r.path.begin(), r.path.end());
    EXPECT_EQ(seen.size(), r.path.size()) << "loop in path from " << u;
  }
}

TEST(ToraTest, BuffersPacketsDuringPartitionAndFlushesOnHeal) {
  Graph g = make_chain_graph(6);
  ToraRouter router(g, 0);
  router.link_down(2, 3);  // 3, 4, 5 partitioned
  EXPECT_FALSE(router.send_packet(4).delivered);
  EXPECT_FALSE(router.send_packet(5).delivered);
  EXPECT_EQ(router.buffered_packets(), 2u);
  EXPECT_EQ(router.stats().packets_buffered, 2u);
  EXPECT_EQ(router.stats().packets_delivered, 0u);

  router.link_up(2, 3);  // heal: buffered packets flush automatically
  EXPECT_EQ(router.buffered_packets(), 0u);
  EXPECT_EQ(router.stats().packets_flushed, 2u);
  EXPECT_EQ(router.stats().packets_delivered, 2u);
}

TEST(ToraTest, BufferedPacketsStayParkedWhileStillPartitioned) {
  Graph g = make_chain_graph(6);
  ToraRouter router(g, 0);
  router.link_down(2, 3);
  router.send_packet(5);
  EXPECT_EQ(router.buffered_packets(), 1u);
  // An unrelated topology event on the connected side must not flush.
  router.link_down(0, 1);
  router.link_up(0, 1);
  EXPECT_EQ(router.buffered_packets(), 1u);
  router.link_up(2, 3);
  EXPECT_EQ(router.buffered_packets(), 0u);
}

TEST(ToraTest, ChurnMaintenanceIsRebuildFree) {
  // The service's maintenance loop is all single-link events, so a whole
  // churn-heavy run must ride the incremental snapshot-repair path: one
  // build at construction, a patch per event, zero rebuilds.
  std::mt19937_64 rng(61);
  const Graph g = make_random_connected_graph(32, 40, rng);
  ToraRouter router(g, 0);
  std::uniform_int_distribution<EdgeId> pick_edge(0, static_cast<EdgeId>(g.num_edges() - 1));
  for (int i = 0; i < 50; ++i) {
    const EdgeId e = pick_edge(rng);
    const NodeId u = g.edge_u(e);
    const NodeId v = g.edge_v(e);
    if (router.dag().has_link(u, v)) {
      router.link_down(u, v);
    } else {
      router.link_up(u, v);
    }
    router.send_packet(static_cast<NodeId>(rng() % 32));
  }
  EXPECT_EQ(router.dag().snapshot_rebuilds(), 1u);
  EXPECT_EQ(router.dag().snapshot_patches(), 50u);
}

TEST(ToraTest, PacketAccountingConsistentUnderChurn) {
  std::mt19937_64 rng(53);
  Graph g = make_random_connected_graph(16, 10, rng);
  ToraRouter router(g, 0);
  std::uniform_int_distribution<EdgeId> pick_edge(0, static_cast<EdgeId>(g.num_edges() - 1));
  std::uniform_int_distribution<NodeId> pick_node(0, 15);
  for (int event = 0; event < 60; ++event) {
    const EdgeId e = pick_edge(rng);
    if (router.dag().has_link(g.edge_u(e), g.edge_v(e))) {
      router.link_down(g.edge_u(e), g.edge_v(e));
    } else {
      router.link_up(g.edge_u(e), g.edge_v(e));
    }
    for (int p = 0; p < 4; ++p) router.send_packet(pick_node(rng));
    const ToraStats& s = router.stats();
    ASSERT_LE(s.packets_delivered, s.packets_sent);
    // Every sent packet is delivered or still parked.
    ASSERT_EQ(s.packets_delivered + router.buffered_packets(), s.packets_sent);
    ASSERT_LE(s.packets_flushed, s.packets_buffered);
  }
}

TEST(ToraTest, ChurnScenarioKeepsDeliveringWhenConnected) {
  std::mt19937_64 rng(52);
  Graph g = make_random_connected_graph(20, 30, rng);
  const ToraStats stats = run_churn_scenario(g, 0, 40, 5, 99);
  EXPECT_EQ(stats.packets_sent, 40u * 5u);
  // Dense graph: the vast majority of sends should survive churn.
  EXPECT_GT(stats.packets_delivered, stats.packets_sent * 8 / 10);
  EXPECT_EQ(stats.link_events, 40u);
}

// ---------------------------------------------------------------------------
// LeaderElectionService
// ---------------------------------------------------------------------------

TEST(LeaderElectionTest, InitialLeaderIsHighestId) {
  Graph g = make_ring_graph(7);
  LeaderElectionService service(g);
  ASSERT_TRUE(service.leader().has_value());
  EXPECT_EQ(*service.leader(), 6u);
  EXPECT_TRUE(service.leader_reachable_from_all());
}

TEST(LeaderElectionTest, ReelectsAfterLeaderFailure) {
  Graph g = make_ring_graph(7);
  LeaderElectionService service(g);
  service.fail_node(6);
  ASSERT_TRUE(service.leader().has_value());
  EXPECT_EQ(*service.leader(), 5u);
  EXPECT_TRUE(service.leader_reachable_from_all());
  EXPECT_FALSE(service.alive(6));
  EXPECT_EQ(service.alive_count(), 6u);
}

TEST(LeaderElectionTest, NonLeaderFailureKeepsLeader) {
  Graph g = make_complete_graph(6);
  LeaderElectionService service(g);
  service.fail_node(2);
  EXPECT_EQ(*service.leader(), 5u);
  EXPECT_TRUE(service.leader_reachable_from_all());
}

TEST(LeaderElectionTest, CascadingFailuresDownToOneNode) {
  Graph g = make_complete_graph(5);
  LeaderElectionService service(g);
  for (NodeId u = 4; u > 0; --u) {
    service.fail_node(u);
    ASSERT_TRUE(service.leader().has_value());
    EXPECT_EQ(*service.leader(), u - 1);
    EXPECT_TRUE(service.leader_reachable_from_all());
  }
  EXPECT_EQ(service.alive_count(), 1u);
  service.fail_node(0);
  EXPECT_FALSE(service.leader().has_value());
}

TEST(LeaderElectionTest, FailingDeadNodeIsNoOp) {
  Graph g = make_ring_graph(5);
  LeaderElectionService service(g);
  service.fail_node(3);
  const auto reversals = service.total_reversals();
  EXPECT_EQ(service.fail_node(3), 0u);
  EXPECT_EQ(service.total_reversals(), reversals);
}

// ---------------------------------------------------------------------------
// LinkReversalMutex
// ---------------------------------------------------------------------------

TEST(MutexTest, TokenStartsAtInitialHolder) {
  Graph g = make_ring_graph(6);
  LinkReversalMutex mutex(g, 2);
  EXPECT_EQ(mutex.holder(), 2u);
  EXPECT_TRUE(mutex.may_enter(2));
  EXPECT_FALSE(mutex.may_enter(3));
}

TEST(MutexTest, FifoGrantOrder) {
  Graph g = make_ring_graph(6);
  LinkReversalMutex mutex(g, 0);
  mutex.request(3);
  mutex.request(1);
  mutex.request(5);
  EXPECT_EQ(mutex.release(), 3u);
  EXPECT_EQ(mutex.release(), 1u);
  EXPECT_EQ(mutex.release(), 5u);
  EXPECT_TRUE(mutex.queue().empty());
}

TEST(MutexTest, ExactlyOneHolderAlways) {
  std::mt19937_64 rng(60);
  Graph g = make_random_connected_graph(15, 12, rng);
  LinkReversalMutex mutex(g, 0);
  std::uniform_int_distribution<NodeId> pick(0, 14);
  for (int i = 0; i < 50; ++i) {
    mutex.request(pick(rng));
    const NodeId holder = mutex.release();
    std::size_t holders = 0;
    for (NodeId u = 0; u < 15; ++u) {
      if (mutex.may_enter(u)) ++holders;
    }
    EXPECT_EQ(holders, 1u);
    EXPECT_TRUE(mutex.may_enter(holder));
  }
}

TEST(MutexTest, RequestsRouteAlongDagToHolder) {
  Graph g = make_chain_graph(7);
  LinkReversalMutex mutex(g, 0);
  const std::size_t hops = mutex.request(6);
  EXPECT_EQ(hops, 6u) << "chain request must travel the full path";
}

TEST(MutexTest, ReleaseWithoutRequestsKeepsToken) {
  Graph g = make_ring_graph(5);
  LinkReversalMutex mutex(g, 1);
  EXPECT_EQ(mutex.release(), 1u);
  EXPECT_EQ(mutex.holder(), 1u);
}

TEST(MutexTest, DuplicateRequestIgnored) {
  Graph g = make_ring_graph(5);
  LinkReversalMutex mutex(g, 0);
  EXPECT_GT(mutex.request(2), 0u);
  EXPECT_EQ(mutex.request(2), 0u);
  EXPECT_EQ(mutex.queue().size(), 1u);
}

TEST(MutexTest, EveryoneCanStillRequestAfterManyHandoffs) {
  Graph g = make_grid_graph(3, 3);
  LinkReversalMutex mutex(g, 0);
  for (NodeId round = 0; round < 3; ++round) {
    for (NodeId u = 0; u < 9; ++u) {
      if (u != mutex.holder()) mutex.request(u);
    }
    while (!mutex.queue().empty()) mutex.release();
  }
  EXPECT_EQ(mutex.stats().grants, mutex.stats().requests);
  EXPECT_GT(mutex.stats().total_reversals, 0u);
}

TEST(MutexTest, LinkChurnPartitionsAndHealsTheTokenRoute) {
  // Chain 0-1-2-3-4-5, token at 0.  Cutting (2,3) strands 3..5; the
  // service-layer contract is that callers see the partition through
  // dag().route() and never call request() blind.
  Graph g = make_chain_graph(6);
  LinkReversalMutex mutex(g, 0);
  mutex.link_down(2, 3);
  EXPECT_FALSE(mutex.dag().route(4).has_value());
  EXPECT_THROW(mutex.request(4), std::logic_error);
  // The connected side still works.
  EXPECT_TRUE(mutex.dag().route(1).has_value());
  EXPECT_GT(mutex.request(1), 0u);
  EXPECT_EQ(mutex.release(), 1u);
  // Healing restores service to the stranded side.
  mutex.link_up(2, 3);
  ASSERT_TRUE(mutex.dag().route(4).has_value());
  EXPECT_GT(mutex.request(4), 0u);
  EXPECT_EQ(mutex.release(), 4u);
  EXPECT_TRUE(mutex.may_enter(4));
}

TEST(MutexTest, LinkChurnIsIdempotent) {
  Graph g = make_ring_graph(5);
  LinkReversalMutex mutex(g, 0);
  mutex.link_down(1, 2);
  mutex.link_down(1, 2);  // repeat: no-op
  mutex.link_up(1, 2);
  mutex.link_up(1, 2);  // repeat: no-op
  for (NodeId u = 1; u < 5; ++u) {
    ASSERT_TRUE(mutex.dag().route(u).has_value()) << "node " << u;
  }
}

TEST(LeaderElectionTest, LinkChurnReroutesToTheLeader) {
  // Ring of 7, leader 6.  One cut keeps the ring connected (reroute the
  // long way); a second cut strands a segment from the leader.
  Graph g = make_ring_graph(7);
  LeaderElectionService service(g);
  service.link_down(5, 6);
  ASSERT_TRUE(service.leader().has_value());
  EXPECT_EQ(*service.leader(), 6u);
  EXPECT_TRUE(service.leader_reachable_from_all());
  service.link_down(2, 3);
  EXPECT_FALSE(service.dag().route(3).has_value());
  EXPECT_TRUE(service.dag().route(1).has_value());
  // Healing either cut reconnects everyone.
  service.link_up(5, 6);
  EXPECT_TRUE(service.leader_reachable_from_all());
}

TEST(LeaderElectionTest, LinkChurnToDeadNodesIsIgnored) {
  Graph g = make_complete_graph(5);
  LeaderElectionService service(g);
  service.fail_node(2);
  ASSERT_TRUE(service.leader().has_value());
  const NodeId leader = *service.leader();
  // Links touching a dead node never come (back) up.
  service.link_up(2, 3);
  service.link_up(2, leader);
  EXPECT_FALSE(service.alive(2));
  EXPECT_EQ(*service.leader(), leader);
  EXPECT_TRUE(service.leader_reachable_from_all());
}

}  // namespace
}  // namespace lr

// Tests for the batched CSR execution engine (core/reversal_engine.hpp):
// step-for-step equivalence with the legacy automaton + scheduler path
// across all three algorithms and all four scheduling policies, greedy-
// rounds equivalence, worklist sink detection on disconnected/degenerate
// graphs, and record-level A/B equality through the scenario runner.

#include "core/reversal_engine.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "analysis/game.hpp"
#include "analysis/rounds.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "runner/runner.hpp"
#include "trace/report.hpp"

namespace lr {
namespace {

struct NamedPolicy {
  SchedulerKind scheduler;
  EnginePolicy policy;
};

const NamedPolicy kPolicies[] = {
    {SchedulerKind::kLowestId, EnginePolicy::kLowestId},
    {SchedulerKind::kRandom, EnginePolicy::kRandom},
    {SchedulerKind::kRoundRobin, EnginePolicy::kRoundRobin},
    {SchedulerKind::kFarthestFirst, EnginePolicy::kFarthestFirst},
};

const Strategy kStrategies[] = {Strategy::kFullReversal, Strategy::kPartialReversal,
                                Strategy::kNewPR};

EngineAlgorithm engine_algorithm(Strategy strategy) {
  switch (strategy) {
    case Strategy::kFullReversal:
      return EngineAlgorithm::kFullReversal;
    case Strategy::kPartialReversal:
      return EngineAlgorithm::kOneStepPR;
    case Strategy::kNewPR:
      return EngineAlgorithm::kNewPR;
  }
  ADD_FAILURE() << "unknown strategy";
  return EngineAlgorithm::kFullReversal;
}

std::vector<Instance> equivalence_instances() {
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(17));
  std::mt19937_64 rng(99);
  for (const std::uint64_t trial : {1u, 2u, 3u}) {
    (void)trial;
    instances.push_back(make_random_instance(20, 25, rng));
  }
  instances.push_back(make_grid_instance(4, 5, rng));
  instances.push_back(make_layered_bad_instance(4, 4, 0.4, rng));
  instances.push_back(make_sink_source_instance(11));
  instances.push_back(make_unit_disk_instance(18, 0.35, rng));
  return instances;
}

/// Runs the legacy automaton for `strategy` under the scheduler `kind` and
/// returns its final edge senses (the engine must reproduce them exactly).
template <typename A>
std::vector<EdgeSense> legacy_final_senses(const Instance& instance, SchedulerKind kind,
                                           std::uint64_t seed) {
  A automaton(instance);
  switch (kind) {
    case SchedulerKind::kLowestId: {
      LowestIdScheduler s;
      run_to_quiescence(automaton, s);
      break;
    }
    case SchedulerKind::kRandom: {
      RandomScheduler s(seed);
      run_to_quiescence(automaton, s);
      break;
    }
    case SchedulerKind::kRoundRobin: {
      RoundRobinScheduler s;
      run_to_quiescence(automaton, s);
      break;
    }
    case SchedulerKind::kFarthestFirst: {
      FarthestFirstScheduler s;
      run_to_quiescence(automaton, s);
      break;
    }
  }
  return automaton.orientation().senses();
}

std::vector<EdgeSense> legacy_final_senses(const Instance& instance, Strategy strategy,
                                           SchedulerKind kind, std::uint64_t seed) {
  switch (strategy) {
    case Strategy::kFullReversal:
      return legacy_final_senses<FullReversalAutomaton>(instance, kind, seed);
    case Strategy::kPartialReversal:
      return legacy_final_senses<OneStepPRAutomaton>(instance, kind, seed);
    case Strategy::kNewPR:
      return legacy_final_senses<NewPRAutomaton>(instance, kind, seed);
  }
  return {};
}

TEST(ReversalEngineTest, MatchesLegacyPathAcrossAlgorithmsAndPolicies) {
  const std::uint64_t seed = 12345;
  for (const Instance& instance : equivalence_instances()) {
    ReversalEngine engine(instance);
    for (const Strategy strategy : kStrategies) {
      for (const NamedPolicy& pair : kPolicies) {
        const CostProfile profile = measure_cost(instance, strategy, pair.scheduler, seed);
        const EngineResult result =
            engine.run(engine_algorithm(strategy), pair.policy,
                       {.scheduler_seed = seed, .record_node_costs = true});
        const std::string context = std::string(instance.name) + " " + strategy_name(strategy) +
                                    " " + scheduler_name(pair.scheduler);
        EXPECT_EQ(result.steps, profile.social_cost) << context;
        EXPECT_EQ(result.edge_reversals, profile.edge_reversals) << context;
        EXPECT_EQ(result.dummy_steps, profile.dummy_steps) << context;
        EXPECT_EQ(result.quiescent && result.destination_oriented, profile.converged) << context;
        EXPECT_EQ(result.node_cost, profile.node_cost) << context;

        const std::vector<EdgeSense> expected =
            legacy_final_senses(instance, strategy, pair.scheduler, seed);
        EXPECT_TRUE(std::equal(engine.senses().begin(), engine.senses().end(),
                               expected.begin(), expected.end()))
            << context << ": final orientations differ";
        EXPECT_EQ(engine.state_checksum(), senses_checksum(expected)) << context;
      }
    }
  }
}

TEST(ReversalEngineTest, GreedyRoundsMatchLegacyRounds) {
  for (const Instance& instance : equivalence_instances()) {
    ReversalEngine engine(instance);
    for (const RoundStrategy strategy :
         {RoundStrategy::kFullReversal, RoundStrategy::kPartialReversal}) {
      const RoundHistory history = run_greedy_rounds(instance, strategy);
      const EngineRoundsResult result = engine.run_greedy_rounds(
          strategy == RoundStrategy::kFullReversal ? EngineAlgorithm::kFullReversal
                                                   : EngineAlgorithm::kOneStepPR,
          1'000'000);
      EXPECT_EQ(result.rounds, history.total_rounds()) << instance.name;
      EXPECT_EQ(result.node_steps, history.total_node_steps()) << instance.name;
      EXPECT_EQ(result.converged, history.converged) << instance.name;
    }
  }
}

TEST(ReversalEngineTest, RunToQuiescenceBridgeMatchesAutomatonRun) {
  const Instance instance = make_worst_case_chain(9);
  FullReversalAutomaton automaton(instance);
  LowestIdScheduler scheduler;
  const RunResult expected = run_to_quiescence(automaton, scheduler);

  ReversalEngine engine(instance);
  const RunResult actual = run_to_quiescence(engine, EngineAlgorithm::kFullReversal,
                                             EnginePolicy::kLowestId);
  EXPECT_EQ(actual.steps, expected.steps);
  EXPECT_EQ(actual.node_steps, expected.node_steps);
  EXPECT_EQ(actual.edge_reversals, expected.edge_reversals);
  EXPECT_EQ(actual.quiescent, expected.quiescent);
  EXPECT_EQ(actual.destination_oriented, expected.destination_oriented);
}

// ---------------------------------------------------------------------------
// Worklist sink detection on disconnected / degenerate graphs
// ---------------------------------------------------------------------------

Instance disconnected_instance(NodeId destination) {
  Instance instance;
  instance.graph = Graph(5, {{0, 1}, {3, 4}});
  instance.senses = {EdgeSense::kForward, EdgeSense::kForward};  // 0->1, 3->4
  instance.destination = destination;
  instance.name = "disconnected-5";
  return instance;
}

TEST(ReversalEngineTest, DisconnectedGraphMatchesLegacyBudgetExhaustion) {
  // Node 2 is isolated: a vacuous sink forever, so neither path can reach
  // quiescence — both must burn the identical budget and report the same
  // non-converged outcome.  This pins the engine's worklist re-push
  // semantics for degree-0 nodes to the legacy scheduler semantics.
  const Instance instance = disconnected_instance(0);
  const std::uint64_t budget = 64;
  for (const Strategy strategy : kStrategies) {
    for (const NamedPolicy& pair : kPolicies) {
      const CostProfile profile =
          measure_cost(instance, strategy, pair.scheduler, 7, {.max_steps = budget});
      ReversalEngine engine(instance);
      const EngineResult result =
          engine.run(engine_algorithm(strategy), pair.policy,
                     {.max_steps = budget, .scheduler_seed = 7, .record_node_costs = true});
      const std::string context =
          std::string(strategy_name(strategy)) + " " + scheduler_name(pair.scheduler);
      EXPECT_EQ(result.steps, profile.social_cost) << context;
      EXPECT_EQ(result.node_cost, profile.node_cost) << context;
      EXPECT_FALSE(result.quiescent) << context;
      EXPECT_FALSE(result.destination_oriented) << context;
      EXPECT_FALSE(profile.converged) << context;
    }
  }
}

TEST(ReversalEngineTest, DisconnectedGraphGreedyRoundsExhaustBudgetIdentically) {
  const Instance instance = disconnected_instance(0);
  const std::uint64_t budget = 32;
  ReversalEngine engine(instance);
  for (const RoundStrategy strategy :
       {RoundStrategy::kFullReversal, RoundStrategy::kPartialReversal}) {
    const RoundHistory history = run_greedy_rounds(instance, strategy, budget);
    const EngineRoundsResult result = engine.run_greedy_rounds(
        strategy == RoundStrategy::kFullReversal ? EngineAlgorithm::kFullReversal
                                                 : EngineAlgorithm::kOneStepPR,
        budget);
    EXPECT_EQ(result.rounds, history.total_rounds());
    EXPECT_EQ(result.node_steps, history.total_node_steps());
    EXPECT_FALSE(result.converged);
    EXPECT_FALSE(history.converged);
  }
}

TEST(ReversalEngineTest, SingleNodeGraphIsImmediatelyQuiescent) {
  Instance instance;
  instance.graph = Graph(1, {});
  instance.destination = 0;
  instance.name = "single";
  ReversalEngine engine(instance);
  const EngineResult result = engine.run(EngineAlgorithm::kOneStepPR, EnginePolicy::kLowestId);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
}

TEST(ReversalEngineTest, InitialSourceAndSinkInstanceCountsDummiesLikeLegacy) {
  const Instance instance = make_sink_source_instance(9);
  const CostProfile profile =
      measure_cost(instance, Strategy::kNewPR, SchedulerKind::kLowestId, 1);
  ReversalEngine engine(instance);
  const EngineResult result = engine.run(EngineAlgorithm::kNewPR, EnginePolicy::kLowestId);
  EXPECT_GT(result.dummy_steps, 0u);  // the instance exists to force dummies
  EXPECT_EQ(result.dummy_steps, profile.dummy_steps);
  EXPECT_EQ(result.steps, profile.social_cost);
}

TEST(ReversalEngineTest, ConstructorValidatesDestination) {
  const Instance instance = make_worst_case_chain(4);
  const CsrGraph csr(instance.graph, instance.senses);
  EXPECT_THROW(ReversalEngine(csr, 99), std::invalid_argument);
}

TEST(ReversalEngineTest, GreedyRoundsRejectNewPR) {
  ReversalEngine engine(make_worst_case_chain(4));
  EXPECT_THROW(engine.run_greedy_rounds(EngineAlgorithm::kNewPR, 10), std::invalid_argument);
}

TEST(ReversalEngineTest, ChecksumDistinguishesOrientations) {
  std::vector<EdgeSense> senses(8, EdgeSense::kForward);
  const std::uint64_t base = senses_checksum(senses);
  senses[3] = EdgeSense::kBackward;
  EXPECT_NE(base, senses_checksum(senses));
  EXPECT_EQ(senses_checksum(senses), senses_checksum(senses));
}

// ---------------------------------------------------------------------------
// Record-level A/B equality through the scenario runner
// ---------------------------------------------------------------------------

void expect_records_equal(const RunRecord& csr, const RunRecord& legacy,
                          const std::string& context) {
  EXPECT_EQ(csr.run_seed, legacy.run_seed) << context;
  EXPECT_EQ(csr.nodes, legacy.nodes) << context;
  EXPECT_EQ(csr.bad_nodes, legacy.bad_nodes) << context;
  EXPECT_EQ(csr.work, legacy.work) << context;
  EXPECT_EQ(csr.edge_reversals, legacy.edge_reversals) << context;
  EXPECT_EQ(csr.rounds, legacy.rounds) << context;
  EXPECT_EQ(csr.dummy_steps, legacy.dummy_steps) << context;
  EXPECT_EQ(csr.converged, legacy.converged) << context;
  EXPECT_EQ(csr.error, legacy.error) << context;
}

TEST(ReversalEngineTest, ExecuteRunIsPathInvariant) {
  for (const TopologyKind topology : {TopologyKind::kChain, TopologyKind::kRandom,
                                      TopologyKind::kLayered, TopologyKind::kStar}) {
    for (const AlgorithmKind algorithm :
         {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR, AlgorithmKind::kNewPR}) {
      for (const NamedPolicy& pair : kPolicies) {
        RunSpec spec;
        spec.topology = topology;
        spec.size = 16;
        spec.algorithm = algorithm;
        spec.scheduler = pair.scheduler;
        spec.seed = 3;
        spec.path = ExecutionPath::kCsr;
        const RunRecord csr = execute_run(spec);
        spec.path = ExecutionPath::kLegacy;
        const RunRecord legacy = execute_run(spec);
        const std::string context = std::string(topology_token(topology)) + "/" +
                                    algorithm_token(algorithm) + "/" +
                                    scheduler_token(pair.scheduler);
        expect_records_equal(csr, legacy, context);
      }
    }
  }
}

TEST(ReversalEngineTest, SweepTablesAreBytewisePathInvariant) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = {8, 16};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR,
                      AlgorithmKind::kNewPR};
  sweep.schedulers = {SchedulerKind::kLowestId, SchedulerKind::kRandom};
  sweep.seeds = {1, 2};

  const auto csv_of = [](const SweepSpec& spec) {
    const SweepReport report = ScenarioRunner(RunnerOptions{.threads = 1}).run(spec);
    std::ostringstream oss;
    write_table_csv(oss, report.records_table());
    write_table_csv(oss, report.aggregate_table());
    return oss.str();
  };
  sweep.path = ExecutionPath::kCsr;
  const std::string csr_csv = csv_of(sweep);
  sweep.path = ExecutionPath::kLegacy;
  const std::string legacy_csv = csv_of(sweep);
  EXPECT_EQ(csr_csv, legacy_csv);
}

// ---------------------------------------------------------------------------
// Parallel greedy rounds: byte-identical to the serial kernel everywhere
// ---------------------------------------------------------------------------

TEST(ReversalEngineTest, ParallelGreedyRoundsMatchSerialAtEveryPoolSize) {
  for (const Instance& instance : equivalence_instances()) {
    ReversalEngine engine(instance);
    for (const EngineAlgorithm algorithm :
         {EngineAlgorithm::kFullReversal, EngineAlgorithm::kOneStepPR}) {
      const EngineRoundsResult serial = engine.run_greedy_rounds(algorithm, 1'000'000);
      const std::uint64_t serial_checksum = engine.state_checksum();
      for (const std::size_t workers : {2u, 4u, 8u}) {
        ThreadPool pool(workers);
        // min_parallel_work = 1 forces the sharded kernel onto every
        // round, however narrow — the worst case for determinism.
        const EngineRoundsResult parallel = engine.run_greedy_rounds(
            algorithm, {.max_rounds = 1'000'000, .pool = &pool, .min_parallel_work = 1});
        const std::string context = std::string(instance.name) + " workers=" +
                                    std::to_string(workers) +
                                    (algorithm == EngineAlgorithm::kFullReversal ? " fr" : " pr");
        EXPECT_EQ(parallel.rounds, serial.rounds) << context;
        EXPECT_EQ(parallel.node_steps, serial.node_steps) << context;
        EXPECT_EQ(parallel.edge_reversals, serial.edge_reversals) << context;
        EXPECT_EQ(parallel.converged, serial.converged) << context;
        EXPECT_EQ(engine.state_checksum(), serial_checksum) << context;
      }
    }
  }
}

TEST(ReversalEngineTest, ParallelGreedyRoundsExhaustBudgetIdentically) {
  const Instance instance = disconnected_instance(0);
  ReversalEngine engine(instance);
  const EngineRoundsResult serial =
      engine.run_greedy_rounds(EngineAlgorithm::kFullReversal, 32);
  ThreadPool pool(4);
  const EngineRoundsResult parallel = engine.run_greedy_rounds(
      EngineAlgorithm::kFullReversal, {.max_rounds = 32, .pool = &pool, .min_parallel_work = 1});
  EXPECT_EQ(parallel.rounds, serial.rounds);
  EXPECT_EQ(parallel.node_steps, serial.node_steps);
  EXPECT_FALSE(parallel.converged);
  EXPECT_FALSE(serial.converged);
}

TEST(ReversalEngineTest, ParallelGreedyRoundsRejectNewPR) {
  ReversalEngine engine(make_worst_case_chain(4));
  ThreadPool pool(2);
  EXPECT_THROW(engine.run_greedy_rounds(EngineAlgorithm::kNewPR,
                                        {.max_rounds = 10, .pool = &pool}),
               std::invalid_argument);
}

TEST(ReversalEngineTest, ExecuteRunIsEngineThreadInvariant) {
  // The satellite determinism contract: records byte-identical across
  // 1/2/4/8 engine threads for every algorithm x scheduler pair (the
  // engine_threads knob only touches the fr/pr rounds kernel, but the
  // sweep-format contract is that *no* record ever depends on it).
  for (const AlgorithmKind algorithm :
       {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR, AlgorithmKind::kNewPR}) {
    for (const NamedPolicy& pair : kPolicies) {
      RunSpec spec;
      spec.topology = TopologyKind::kRandom;
      spec.size = 24;
      spec.algorithm = algorithm;
      spec.scheduler = pair.scheduler;
      spec.seed = 11;
      spec.engine_threads = 1;
      const RunRecord baseline = execute_run(spec);
      for (const std::size_t threads : {2u, 4u, 8u}) {
        spec.engine_threads = threads;
        const RunRecord record = execute_run(spec);
        const std::string context = std::string(algorithm_token(algorithm)) + "/" +
                                    scheduler_token(pair.scheduler) + " engine_threads=" +
                                    std::to_string(threads);
        expect_records_equal(record, baseline, context);
      }
    }
  }
}

TEST(ReversalEngineTest, ExecuteRunShardsWideTopologiesIdentically) {
  // The cases above stay below the runner's num_nodes >= 1024 pool gate,
  // so they pin record invariance but compare serial against serial.
  // star-2049 (spec size 2048 -> n = 2049, round width 1024) both spawns
  // the per-run pool and clears the sharding threshold, so this is the
  // one ctest case where execute_run's engine_threads plumbing drives the
  // sharded kernel end to end.
  for (const AlgorithmKind algorithm :
       {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR}) {
    RunSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.size = 2048;
    spec.algorithm = algorithm;
    spec.seed = 1;
    spec.engine_threads = 1;
    const RunRecord baseline = execute_run(spec);
    ASSERT_GE(baseline.nodes, 1024u);
    ASSERT_GT(baseline.rounds, 0u);
    for (const std::size_t threads : {2u, 4u}) {
      spec.engine_threads = threads;
      const RunRecord record = execute_run(spec);
      expect_records_equal(record, baseline,
                           std::string(algorithm_token(algorithm)) + " wide engine_threads=" +
                               std::to_string(threads));
    }
  }
}

TEST(ReversalEngineTest, SweepTablesAreEngineThreadInvariant) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kLayered};
  sweep.sizes = {16, 32};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR};
  sweep.schedulers = {SchedulerKind::kLowestId, SchedulerKind::kRandom};
  sweep.seeds = {1, 2};

  const auto csv_of = [&sweep](std::size_t engine_threads) {
    SweepSpec configured = sweep;
    configured.engine_threads = engine_threads;
    const SweepReport report = ScenarioRunner(RunnerOptions{.threads = 2}).run(configured);
    std::ostringstream oss;
    write_table_csv(oss, report.records_table());
    write_table_csv(oss, report.aggregate_table());
    return oss.str();
  };
  const std::string serial_csv = csv_of(1);
  EXPECT_EQ(serial_csv, csv_of(2));
  EXPECT_EQ(serial_csv, csv_of(4));
}

TEST(ReversalEngineTest, SweepSpecParsesEngineThreadsOption) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain\nsize = 8\nalgorithm = pr\nengine_threads = 4\n");
  EXPECT_EQ(spec.engine_threads, 4u);
  ASSERT_EQ(spec.expand().size(), 1u);
  EXPECT_EQ(spec.expand()[0].engine_threads, 4u);
  EXPECT_EQ(SweepSpec::parse_string("topology = chain\nsize = 8\nalgorithm = pr\n")
                .engine_threads,
            1u);
  EXPECT_THROW(SweepSpec::parse_string(
                   "topology = chain\nsize = 8\nalgorithm = pr\nengine_threads = 2, 4\n"),
               std::invalid_argument);
}

TEST(ReversalEngineTest, SweepSpecParsesPathOption) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain\nsize = 8\nalgorithm = pr\npath = legacy\n");
  EXPECT_EQ(spec.path, ExecutionPath::kLegacy);
  ASSERT_EQ(spec.expand().size(), 1u);
  EXPECT_EQ(spec.expand()[0].path, ExecutionPath::kLegacy);
  EXPECT_EQ(SweepSpec::parse_string("topology = chain\nsize = 8\nalgorithm = pr\n").path,
            ExecutionPath::kCsr);
  EXPECT_THROW(
      SweepSpec::parse_string("topology = chain\nsize = 8\nalgorithm = pr\npath = turbo\n"),
      std::invalid_argument);
}

}  // namespace
}  // namespace lr

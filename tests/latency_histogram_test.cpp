/// Pins the LatencyHistogram contract the service layer's determinism
/// promise rests on (src/service/latency_histogram.hpp): the bucket map
/// is a monotone total cover of uint64, merge is exactly split- and
/// order-independent (byte-identical to serial recording, not just
/// approximately equal), and quantile() lands within one bucket of the
/// exact sorted-sample quantile.

#include "service/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace lr {
namespace {

TEST(LatencyHistogramBuckets, LinearPrefixIsExact) {
  for (std::uint64_t value = 0; value < LatencyHistogram::kLinearLimit; ++value) {
    EXPECT_EQ(LatencyHistogram::bucket_index(value), value);
    EXPECT_EQ(LatencyHistogram::bucket_lower_bound(value), value);
  }
}

TEST(LatencyHistogramBuckets, IndexIsMonotoneAcrossOctaveBoundaries) {
  // Walk every octave boundary and its neighbours: the index must never
  // decrease as the value grows, and the lower bound must round-trip.
  std::vector<std::uint64_t> probes = {0, 1, 15, 16, 17};
  for (unsigned shift = 4; shift < 64; ++shift) {
    const std::uint64_t base = 1ull << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + (base >> 1));
  }
  probes.push_back(std::numeric_limits<std::uint64_t>::max());
  std::sort(probes.begin(), probes.end());
  std::size_t previous = 0;
  for (const std::uint64_t value : probes) {
    const std::size_t index = LatencyHistogram::bucket_index(value);
    ASSERT_LT(index, LatencyHistogram::kBuckets) << "value " << value;
    EXPECT_GE(index, previous) << "value " << value;
    // The bucket's lower bound maps back to the same bucket and never
    // exceeds the value it represents.
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_lower_bound(index)), index);
    EXPECT_LE(LatencyHistogram::bucket_lower_bound(index), value);
    previous = index;
  }
}

TEST(LatencyHistogramBuckets, RelativeErrorBoundedBySubBucketWidth) {
  // Above the linear prefix, the bucket lower bound is within one
  // sub-bucket (1/16 relative) of the value — the ~6% width the header
  // advertises.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 10'000; ++trial) {
    const std::uint64_t value = rng() >> (rng() % 48);
    if (value < LatencyHistogram::kLinearLimit) continue;
    const std::uint64_t lower =
        LatencyHistogram::bucket_lower_bound(LatencyHistogram::bucket_index(value));
    ASSERT_LE(lower, value);
    EXPECT_LT(static_cast<double>(value - lower),
              static_cast<double>(value) / 16.0 + 1.0)
        << "value " << value << " lower " << lower;
  }
}

TEST(LatencyHistogramAggregates, EmptyHistogramIsZeroed) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
  // Merging an empty histogram is the identity.
  LatencyHistogram other;
  other.record(42);
  LatencyHistogram merged = other;
  merged.merge(h);
  EXPECT_EQ(merged, other);
  EXPECT_EQ(merged.fingerprint(), other.fingerprint());
}

TEST(LatencyHistogramAggregates, CountSumMinMaxMeanTrackSamples) {
  LatencyHistogram h;
  const std::uint64_t samples[] = {3, 1000, 17, 3, 999'999};
  std::uint64_t sum = 0;
  for (const std::uint64_t s : samples) {
    h.record(s);
    sum += s;
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 999'999u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 5.0);
}

/// The tentpole property: split a sample stream into random shards,
/// merge the shard histograms back in a random order, and the result
/// must equal the serially recorded histogram exactly — same buckets,
/// same aggregates, same fingerprint.
TEST(LatencyHistogramMerge, RandomSplitAndOrderIsByteIdenticalToSerial) {
  std::mt19937_64 rng(12345);
  for (int trial = 0; trial < 20; ++trial) {
    // A spread of magnitudes: linear-prefix values, mid-range, and
    // near-overflow samples all in one stream.
    std::vector<std::uint64_t> samples;
    const std::size_t n = 200 + static_cast<std::size_t>(rng() % 800);
    for (std::size_t i = 0; i < n; ++i) samples.push_back(rng() >> (rng() % 60));

    LatencyHistogram serial;
    for (const std::uint64_t s : samples) serial.record(s);

    const std::size_t shards = 1 + static_cast<std::size_t>(rng() % 8);
    std::vector<LatencyHistogram> parts(shards);
    for (const std::uint64_t s : samples) parts[rng() % shards].record(s);

    std::vector<std::size_t> order(shards);
    for (std::size_t i = 0; i < shards; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);

    LatencyHistogram merged;
    for (const std::size_t part : order) merged.merge(parts[part]);

    ASSERT_EQ(merged, serial) << "trial " << trial << " shards " << shards;
    ASSERT_EQ(merged.fingerprint(), serial.fingerprint());
    ASSERT_EQ(merged.count(), samples.size());
  }
}

TEST(LatencyHistogramMerge, MergeIsCommutative) {
  LatencyHistogram a;
  LatencyHistogram b;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 500; ++i) a.record(rng() >> (rng() % 56));
  for (int i = 0; i < 300; ++i) b.record(rng() >> (rng() % 56));
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());
}

/// quantile() must land in the same bucket as the exact sorted-sample
/// quantile — "within one bucket" as advertised, pinned bucket-exactly.
TEST(LatencyHistogramQuantile, WithinOneBucketOfExactSortedQuantile) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint64_t> samples;
    const std::size_t n = 100 + static_cast<std::size_t>(rng() % 2000);
    for (std::size_t i = 0; i < n; ++i) samples.push_back(rng() >> (rng() % 52));
    LatencyHistogram h;
    for (const std::uint64_t s : samples) h.record(s);
    std::sort(samples.begin(), samples.end());
    for (const double q : {0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
      const std::size_t rank = std::min<std::size_t>(
          samples.size(),
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       std::ceil(q * static_cast<double>(samples.size())))));
      const std::uint64_t exact = samples[rank - 1];
      const std::uint64_t estimate = h.quantile(q);
      EXPECT_EQ(LatencyHistogram::bucket_index(estimate), LatencyHistogram::bucket_index(exact))
          << "trial " << trial << " q " << q << " exact " << exact << " estimate " << estimate;
      // And the estimate is a bucket lower bound, so it never exceeds
      // the exact sample it approximates.
      EXPECT_LE(estimate, exact);
    }
  }
}

TEST(LatencyHistogramQuantile, DegenerateStreamsAreExact) {
  // All-identical samples: every quantile is that value's bucket floor.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(7);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(h.quantile(q), 7u);
  // Single sample.
  LatencyHistogram single;
  single.record(1'000'000);
  const std::uint64_t floor =
      LatencyHistogram::bucket_lower_bound(LatencyHistogram::bucket_index(1'000'000));
  EXPECT_EQ(single.quantile(0.5), floor);
  EXPECT_EQ(single.quantile(1.0), floor);
}

TEST(LatencyHistogramFingerprint, DistinguishesDifferentStreams) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(5);
  b.record(6);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // Same bucket, different counts.
  LatencyHistogram c = a;
  c.record(5);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  // Empty fingerprint is stable and distinct from a recorded one.
  EXPECT_EQ(LatencyHistogram().fingerprint(), LatencyHistogram().fingerprint());
  EXPECT_NE(LatencyHistogram().fingerprint(), a.fingerprint());
}

}  // namespace
}  // namespace lr

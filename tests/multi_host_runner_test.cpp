#include "runner/shard_coordinator.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runner/process_runner.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/shard_protocol.hpp"
#include "runner/shard_server.hpp"
#include "runner/shard_transport.hpp"
#include "trace/report.hpp"

/// Acceptance battery of the multi-host sweep dataplane
/// (runner/shard_coordinator.hpp + runner/shard_server.hpp): real TCP
/// sessions against in-process ShardServers must merge byte-identically
/// to the in-process ScenarioRunner at every host/worker count, recover
/// from every injected network fault class within the retry budget,
/// reassign a dead host's shards to survivors, fall back to local
/// worker processes when every host dies, and reject protocol version
/// skew loudly in both directions — and no configuration may hang.
///
/// The test binary is its own `sweep-worker` (main() below forwards the
/// subcommand), because the local-fallback battery fork/execs it.

namespace lr {
namespace {

/// RAII setenv/unsetenv so a failing test cannot leak fault knobs into
/// its neighbours.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

/// The byte string the determinism contract is stated over: records CSV,
/// aggregate CSV, and records JSON concatenated.
std::string tables_of(const SweepReport& report) {
  std::ostringstream os;
  write_table_csv(os, report.records_table());
  write_table_csv(os, report.aggregate_table());
  write_table_json(os, report.records_table());
  return os.str();
}

/// A small but heterogeneous sweep: 24 runs over two topologies and
/// three kernels, enough to spread non-trivially over several shards.
SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = {8, 12};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR,
                      AlgorithmKind::kTora};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2};
  sweep.max_steps = 200'000;
  return sweep;
}

/// A somewhat longer sweep through the distributed kernels, used by the
/// mid-run host-death test so there is a run window to kill a host in.
SweepSpec longer_sweep() {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain};
  sweep.sizes = {48, 64};
  sweep.algorithms = {AlgorithmKind::kDistFR, AlgorithmKind::kDistPR};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2, 3};
  sweep.max_steps = 200'000;
  return sweep;
}

std::string in_process_tables(const SweepSpec& sweep) {
  const ScenarioRunner runner({.threads = 1});
  return tables_of(runner.run(sweep));
}

/// Starts `count` loopback shard servers and returns them; hosts() maps
/// them to a --hosts style endpoint list with `workers` lanes each.
std::vector<std::unique_ptr<ShardServer>> start_servers(std::size_t count) {
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (std::size_t i = 0; i < count; ++i) {
    servers.push_back(std::make_unique<ShardServer>());
    servers.back()->start();
  }
  return servers;
}

std::vector<HostSpec> hosts_of(const std::vector<std::unique_ptr<ShardServer>>& servers,
                               std::size_t workers) {
  std::vector<HostSpec> hosts;
  for (const auto& server : servers) {
    hosts.push_back({"127.0.0.1", server->port(), workers});
  }
  return hosts;
}

/// A loopback port with nothing listening on it: bound, inspected, and
/// closed, so connects are refused (the "host that is already dead"
/// staging used by the reassignment and fallback batteries).
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)), 0);
  socklen_t length = sizeof(address);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length), 0);
  const std::uint16_t port = ntohs(address.sin_port);
  ::close(fd);
  return port;
}

// ---------------------------------------------------------------------------
// Byte identity
// ---------------------------------------------------------------------------

TEST(MultiHostRunner, ByteIdenticalAcrossHostAndWorkerCounts) {
  const SweepSpec sweep = small_sweep();
  const std::string expected = in_process_tables(sweep);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto servers = start_servers(2);
    MultiHostShardRunner runner({.threads = 1}, hosts_of(servers, workers));
    EXPECT_EQ(runner.total_workers(), 2 * workers);
    const SweepReport report = runner.run(sweep);
    EXPECT_EQ(tables_of(report), expected) << workers << " worker(s) per host";
    EXPECT_FALSE(runner.fallback_engaged());
    for (const ShardDiagnostics& diag : runner.shard_diagnostics()) {
      EXPECT_TRUE(diag.completed) << "shard " << diag.shard;
      EXPECT_EQ(diag.attempts, 1u) << "shard " << diag.shard;
      EXPECT_TRUE(diag.failures.empty()) << "shard " << diag.shard;
      ASSERT_EQ(diag.attempt_log.size(), 1u);
      EXPECT_EQ(diag.attempt_log[0].outcome, "ok");
      EXPECT_NE(diag.attempt_log[0].endpoint.find("127.0.0.1:"), std::string::npos);
    }
  }
}

TEST(MultiHostRunner, WorkerThreadsInsideHostsKeepTablesIdentical) {
  const SweepSpec sweep = small_sweep();
  const std::string expected = in_process_tables(sweep);
  const auto servers = start_servers(2);
  MultiHostShardRunner runner({.threads = 2}, hosts_of(servers, 2));
  EXPECT_EQ(tables_of(runner.run(sweep)), expected);
}

// ---------------------------------------------------------------------------
// Network fault battery: every class recovers with identical tables
// ---------------------------------------------------------------------------

struct FaultCase {
  const char* knob;          ///< LR_TEST_TRANSPORT_FAULT value
  const char* expect_in_failure;  ///< substring of the logged failure
  bool recovers_via_retry;   ///< true = one failed attempt then success
};

class MultiHostFaultBattery : public ::testing::TestWithParam<FaultCase> {};

TEST_P(MultiHostFaultBattery, RecoversWithinBudgetAndStaysByteIdentical) {
  const FaultCase fault = GetParam();
  const SweepSpec sweep = small_sweep();
  const std::string expected = in_process_tables(sweep);
  const ScopedEnv knob("LR_TEST_TRANSPORT_FAULT", fault.knob);
  // Short watchdog so the heartbeat-stall case fires in test time.
  const ScopedEnv watchdog("LR_TEST_WORKER_TIMEOUT_MS", "400");
  const auto servers = start_servers(2);
  MultiHostShardRunner runner({.threads = 1}, hosts_of(servers, 2));
  const SweepReport report = runner.run(sweep);
  EXPECT_EQ(tables_of(report), expected) << fault.knob;
  const auto& diagnostics = runner.shard_diagnostics();
  ASSERT_GT(diagnostics.size(), 1u);
  const ShardDiagnostics& hit = diagnostics[1];  // faults target shard 1
  EXPECT_TRUE(hit.completed);
  if (fault.recovers_via_retry) {
    EXPECT_EQ(hit.attempts, 2u) << fault.knob;
    ASSERT_EQ(hit.failures.size(), 1u) << fault.knob;
    // `expect_in_failure` lists acceptable classifications, '|'-separated
    // (a stalled channel may surface as the inactivity watchdog or as a
    // coordinator heartbeat failing on the dead-looking socket — both
    // are loud and both recover; which fires first is a timing race).
    {
      std::istringstream alternatives(fault.expect_in_failure);
      std::string token;
      bool matched = false;
      while (std::getline(alternatives, token, '|')) {
        matched = matched || hit.failures[0].find(token) != std::string::npos;
      }
      EXPECT_TRUE(matched) << fault.knob << " logged: " << hit.failures[0];
    }
    ASSERT_EQ(hit.attempt_log.size(), 2u);
    EXPECT_NE(hit.attempt_log[0].outcome, "ok");
    EXPECT_EQ(hit.attempt_log[1].outcome, "ok");
  } else {
    EXPECT_EQ(hit.attempts, 1u) << fault.knob;
    EXPECT_TRUE(hit.failures.empty()) << fault.knob;
  }
  for (const ShardDiagnostics& diag : diagnostics) {
    EXPECT_TRUE(diag.completed) << "shard " << diag.shard;
  }
}

INSTANTIATE_TEST_SUITE_P(
    NetworkFaults, MultiHostFaultBattery,
    ::testing::Values(FaultCase{"drop:1", "truncated mid-frame|exited before completing", true},
                      FaultCase{"corrupt:1", "shard frame", true},
                      FaultCase{"hbstall:1", "stalled|heartbeat failed", true},
                      FaultCase{"connect:1", "connect", true},
                      FaultCase{"delay:1", "", false}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      std::string name = info.param.knob;
      name.resize(name.find(':'));
      return name;
    });

TEST(MultiHostRunner, UnrecoverableFaultExhaustsBudgetLoudly) {
  const SweepSpec sweep = small_sweep();
  // The fault outlives the budget: 2 total attempts, 20 armed failures.
  const ScopedEnv knob("LR_TEST_TRANSPORT_FAULT", "drop:0:20");
  const auto servers = start_servers(2);
  RunnerOptions options{.threads = 1};
  options.worker_retries = 1;
  MultiHostShardRunner runner(options, hosts_of(servers, 2));
  try {
    runner.run(sweep);
    FAIL() << "budget exhaustion must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("multi-host sweep failed: retry budget exhausted"), std::string::npos)
        << what;
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
  }
  const auto& diagnostics = runner.shard_diagnostics();
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_FALSE(diagnostics[0].completed);
  EXPECT_EQ(diagnostics[0].attempts, 2u);
  EXPECT_EQ(diagnostics[0].failures.size(), 2u);
}

// ---------------------------------------------------------------------------
// Host death: reassignment, fallback, loud all-dead failure
// ---------------------------------------------------------------------------

TEST(MultiHostRunner, DeadHostShardsReassignToSurvivor) {
  const SweepSpec sweep = small_sweep();
  const std::string expected = in_process_tables(sweep);
  const auto servers = start_servers(1);
  std::vector<HostSpec> hosts = hosts_of(servers, 2);
  hosts.push_back({"127.0.0.1", dead_port(), 2});
  MultiHostShardRunner runner({.threads = 1}, hosts);
  const SweepReport report = runner.run(sweep);
  EXPECT_EQ(tables_of(report), expected);
  EXPECT_FALSE(runner.fallback_engaged());
  bool any_refused = false;
  for (const ShardDiagnostics& diag : runner.shard_diagnostics()) {
    EXPECT_TRUE(diag.completed) << "shard " << diag.shard;
    for (const std::string& failure : diag.failures) {
      any_refused = any_refused || failure.find("connect") != std::string::npos;
    }
    ASSERT_FALSE(diag.attempt_log.empty());
    // Whoever failed, the attempt that completed ran on the live server.
    EXPECT_EQ(diag.attempt_log.back().endpoint,
              "127.0.0.1:" + std::to_string(servers[0]->port()));
  }
  EXPECT_TRUE(any_refused);  // the dead host was actually tried
}

TEST(MultiHostRunner, HostStoppedMidRunIsRecoveredFrom) {
  const SweepSpec sweep = longer_sweep();
  const std::string expected = in_process_tables(sweep);
  auto servers = start_servers(2);
  std::thread killer([&servers] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    servers[1]->stop();  // coordinators observe dropped connections
  });
  MultiHostShardRunner runner({.threads = 1}, hosts_of(servers, 2));
  const SweepReport report = runner.run(sweep);
  killer.join();
  EXPECT_EQ(tables_of(report), expected);
  for (const ShardDiagnostics& diag : runner.shard_diagnostics()) {
    EXPECT_TRUE(diag.completed) << "shard " << diag.shard;
  }
}

TEST(MultiHostRunner, AllHostsDeadEngagesLocalProcessFallback) {
  const SweepSpec sweep = small_sweep();
  const std::string expected = in_process_tables(sweep);
  std::vector<HostSpec> hosts = {{"127.0.0.1", dead_port(), 2},
                                 {"127.0.0.1", dead_port(), 2}};
  RunnerOptions options{.threads = 1};
  options.process_workers = 2;  // arms the local fork/exec fallback
  MultiHostShardRunner runner(options, hosts);
  const SweepReport report = runner.run(sweep);
  EXPECT_EQ(tables_of(report), expected);
  EXPECT_TRUE(runner.fallback_engaged());
  for (const ShardDiagnostics& diag : runner.shard_diagnostics()) {
    EXPECT_TRUE(diag.completed) << "shard " << diag.shard;
    ASSERT_FALSE(diag.attempt_log.empty());
    EXPECT_EQ(diag.attempt_log.back().endpoint, "process");
  }
}

TEST(MultiHostRunner, AllHostsDeadWithoutFallbackFailsLoudly) {
  const SweepSpec sweep = small_sweep();
  std::vector<HostSpec> hosts = {{"127.0.0.1", dead_port(), 2}};
  MultiHostShardRunner runner({.threads = 1}, hosts);
  try {
    runner.run(sweep);
    FAIL() << "an all-dead deployment with no fallback must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("multi-host sweep failed"), std::string::npos) << what;
    EXPECT_NE(what.find("every endpoint is dead"), std::string::npos) << what;
  }
}

TEST(MultiHostRunner, EmptyHostListRejected) {
  EXPECT_THROW(MultiHostShardRunner({.threads = 1}, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Version skew: rejected loudly in both directions, never a hang
// ---------------------------------------------------------------------------

TEST(MultiHostRunner, ServerRejectsSkewedRequestVersionLoudly) {
  const auto servers = start_servers(1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(servers[0]->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)), 0);
  timeval timeout{};
  timeout.tv_sec = 5;  // reads are bounded: a hang fails the test, loudly
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  ShardRequestFrame request;
  request.version = 2;  // one protocol generation behind
  request.begin = 0;
  request.end = 4;
  request.total = 4;
  request.spec_text = "topology = chain\nsize = 8\nseed = 1\nalgorithm = fr\n";
  const std::vector<std::uint8_t> bytes = encode_frame(request);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));

  FrameParser parser;
  bool got_error = false;
  bool got_eof = false;
  std::uint8_t buffer[4096];
  while (!got_eof) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    ASSERT_GE(n, 0) << "server went silent instead of refusing";
    if (n == 0) {
      got_eof = true;
      break;
    }
    parser.feed(buffer, static_cast<std::size_t>(n));
    while (auto frame = parser.next()) {
      ASSERT_EQ(frame->type, FrameType::kShardError);
      EXPECT_NE(frame->error.message.find("protocol version mismatch"), std::string::npos)
          << frame->error.message;
      got_error = true;
    }
  }
  EXPECT_TRUE(got_error);
  EXPECT_TRUE(got_eof);  // refusal then close, not a wedged session
  ::close(fd);
}

TEST(MultiHostRunner, CoordinatorRejectsSkewedHelloLoudly) {
  // A fake "old worker": accepts the connection and answers with a
  // version-2 hello.  The coordinator must classify the skew by name.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)), 0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);
  socklen_t length = sizeof(address);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&address), &length), 0);
  const std::uint16_t port = ntohs(address.sin_port);

  std::atomic<bool> stop{false};
  std::vector<int> accepted;
  std::thread fake_worker([listen_fd, &stop, &accepted] {
    while (!stop.load()) {
      pollfd poll_item{listen_fd, POLLIN, 0};
      if (::poll(&poll_item, 1, 50) <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      accepted.push_back(fd);
      HelloFrame hello;
      hello.version = 2;
      hello.begin = 0;
      hello.end = 24;
      const std::vector<std::uint8_t> bytes = encode_frame(hello);
      (void)!::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      // Keep the fd open: the rejection must come from the version
      // check, not from a dropped connection.
    }
  });

  const SweepSpec sweep = small_sweep();
  RunnerOptions options{.threads = 1};
  options.worker_retries = 0;  // one attempt: the skew itself must surface
  MultiHostShardRunner runner(options, {{"127.0.0.1", port, 1}});
  try {
    runner.run(sweep);
    stop.store(true);
    fake_worker.join();
    ::close(listen_fd);
    FAIL() << "version skew must fail the sweep";
  } catch (const std::runtime_error& error) {
    stop.store(true);
    fake_worker.join();
    for (const int fd : accepted) ::close(fd);
    ::close(listen_fd);
    const std::string what = error.what();
    EXPECT_NE(what.find("protocol version mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("worker 2"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Server refusals carry their cause to the coordinator's diagnostics
// ---------------------------------------------------------------------------

TEST(MultiHostRunner, ServerRefusalNamesTheCauseInDiagnostics) {
  // A coordinator whose spec disagrees with its own advertised total:
  // stage it by driving the raw protocol (the runner itself can never
  // produce this, which is exactly why the server must refuse it).
  const auto servers = start_servers(1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(servers[0]->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)), 0);
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  ShardRequestFrame request;  // current version, wrong run-count claim
  request.begin = 0;
  request.end = 4;
  request.total = 999;
  request.spec_text = "topology = chain\nsize = 8\nseed = 1\nalgorithm = fr\n";
  const std::vector<std::uint8_t> bytes = encode_frame(request);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));

  FrameParser parser;
  std::string refusal;
  std::uint8_t buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    parser.feed(buffer, static_cast<std::size_t>(n));
    while (auto frame = parser.next()) {
      ASSERT_EQ(frame->type, FrameType::kShardError);
      refusal = frame->error.message;
    }
  }
  ::close(fd);
  EXPECT_NE(refusal.find("expands to"), std::string::npos) << refusal;
  EXPECT_NE(refusal.find("999"), std::string::npos) << refusal;
}

}  // namespace
}  // namespace lr

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "sweep-worker") {
    return lr::sweep_worker_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

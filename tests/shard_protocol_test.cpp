#include "runner/shard_protocol.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

/// Unit tests of the multi-process sweep wire protocol
/// (runner/shard_protocol.hpp): frame round-trips for every frame type,
/// rejection of truncated / oversized / corrupted / garbage input, and a
/// randomized fuzz loop over frame boundaries — the parser must decode
/// the identical frame sequence no matter how the pipe chunks the bytes.

namespace lr {
namespace {

RunRecord sample_record() {
  RunRecord record;
  record.spec.topology = TopologyKind::kUnitDisk;
  record.spec.size = 4097;
  record.spec.algorithm = AlgorithmKind::kDistPR;
  record.spec.scheduler = SchedulerKind::kRandom;
  record.spec.seed = 0xfeedfacecafebeefULL;
  record.spec.max_steps = 123456789;
  record.spec.path = ExecutionPath::kLegacy;
  record.spec.engine_threads = 4;
  record.spec.sim_scheduler = EventSchedulerKind::kWheel;
  record.spec.sim_threads = 8;
  record.run_seed = 0x1234567890abcdefULL;
  record.nodes = 4097;
  record.bad_nodes = 17;
  record.work = 99999;
  record.edge_reversals = 88888;
  record.rounds = 7;
  record.dummy_steps = 3;
  record.abstract_steps = 11;
  record.messages = 1'000'000'007;
  record.converged = true;
  record.relation = RelationVerdict::kViolated;
  record.error = "worlds, \"quoted\",\nand newlines";
  return record;
}

void expect_records_equal(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.spec.topology, b.spec.topology);
  EXPECT_EQ(a.spec.size, b.spec.size);
  EXPECT_EQ(a.spec.algorithm, b.spec.algorithm);
  EXPECT_EQ(a.spec.scheduler, b.spec.scheduler);
  EXPECT_EQ(a.spec.seed, b.spec.seed);
  EXPECT_EQ(a.spec.max_steps, b.spec.max_steps);
  EXPECT_EQ(a.spec.path, b.spec.path);
  EXPECT_EQ(a.spec.engine_threads, b.spec.engine_threads);
  EXPECT_EQ(a.spec.sim_scheduler, b.spec.sim_scheduler);
  EXPECT_EQ(a.spec.sim_threads, b.spec.sim_threads);
  EXPECT_EQ(a.run_seed, b.run_seed);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.bad_nodes, b.bad_nodes);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.edge_reversals, b.edge_reversals);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.dummy_steps, b.dummy_steps);
  EXPECT_EQ(a.abstract_steps, b.abstract_steps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.relation, b.relation);
  EXPECT_EQ(a.error, b.error);
}

/// Feeds a byte stream in one gulp and pops one frame.
Frame decode_single(const std::vector<std::uint8_t>& bytes) {
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  const auto frame = parser.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_FALSE(parser.mid_frame());
  return *frame;
}

TEST(ShardProtocol, HelloRoundTrip) {
  HelloFrame hello;
  hello.shard = 3;
  hello.begin = 120;
  hello.end = 160;
  hello.attempt = 2;
  const Frame frame = decode_single(encode_frame(hello));
  ASSERT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.hello.version, kShardProtocolVersion);
  EXPECT_EQ(frame.hello.shard, 3u);
  EXPECT_EQ(frame.hello.begin, 120u);
  EXPECT_EQ(frame.hello.end, 160u);
  EXPECT_EQ(frame.hello.attempt, 2u);
}

TEST(ShardProtocol, RecordRoundTripPreservesEveryField) {
  RecordFrame record;
  record.global_index = 0xdeadbeefULL;
  record.record = sample_record();
  const Frame frame = decode_single(encode_frame(record));
  ASSERT_EQ(frame.type, FrameType::kRecord);
  EXPECT_EQ(frame.record.global_index, 0xdeadbeefULL);
  expect_records_equal(frame.record.record, record.record);
}

TEST(ShardProtocol, ShardDoneRoundTrip) {
  ShardDoneFrame done;
  done.records_emitted = 40;
  done.cache = {5, 100, 6, 1};
  const Frame frame = decode_single(encode_frame(done));
  ASSERT_EQ(frame.type, FrameType::kShardDone);
  EXPECT_EQ(frame.done.records_emitted, 40u);
  EXPECT_EQ(frame.done.cache.entries, 5u);
  EXPECT_EQ(frame.done.cache.hits, 100u);
  EXPECT_EQ(frame.done.cache.misses, 6u);
  EXPECT_EQ(frame.done.cache.evictions, 1u);
}

TEST(ShardProtocol, HeartbeatRoundTripBothDirections) {
  for (const std::uint8_t from_coordinator : {0, 1}) {
    HeartbeatFrame beacon;
    beacon.from_coordinator = from_coordinator;
    beacon.sequence = 0x0123456789abcdefULL;
    const Frame frame = decode_single(encode_frame(beacon));
    ASSERT_EQ(frame.type, FrameType::kHeartbeat);
    EXPECT_EQ(frame.heartbeat.from_coordinator, from_coordinator);
    EXPECT_EQ(frame.heartbeat.sequence, 0x0123456789abcdefULL);
  }
}

TEST(ShardProtocol, ShardRequestRoundTripPreservesEveryField) {
  ShardRequestFrame request;
  request.shard = 7;
  request.begin = 1000;
  request.end = 1250;
  request.total = 4000;
  request.attempt = 3;
  request.threads = 16;
  request.cache_cap = 512;
  request.heartbeat_ms = 750;
  request.liveness_timeout_ms = 30000;
  request.spec_text = "topology = chain\nsize = 8, 16\nseed = 1\nalgorithm = fr\n";
  const Frame frame = decode_single(encode_frame(request));
  ASSERT_EQ(frame.type, FrameType::kShardRequest);
  EXPECT_EQ(frame.request.version, kShardProtocolVersion);
  EXPECT_EQ(frame.request.shard, 7u);
  EXPECT_EQ(frame.request.begin, 1000u);
  EXPECT_EQ(frame.request.end, 1250u);
  EXPECT_EQ(frame.request.total, 4000u);
  EXPECT_EQ(frame.request.attempt, 3u);
  EXPECT_EQ(frame.request.threads, 16u);
  EXPECT_EQ(frame.request.cache_cap, 512u);
  EXPECT_EQ(frame.request.heartbeat_ms, 750u);
  EXPECT_EQ(frame.request.liveness_timeout_ms, 30000u);
  EXPECT_EQ(frame.request.spec_text, request.spec_text);
}

TEST(ShardProtocol, ShardErrorRoundTripIncludingAwkwardMessages) {
  for (const std::string& message :
       {std::string{}, std::string{"spec expands to 4 runs but coordinator expected 8"},
        std::string{"quotes \" and\nnewlines \x01 survive"}}) {
    ShardErrorFrame error;
    error.message = message;
    const Frame frame = decode_single(encode_frame(error));
    ASSERT_EQ(frame.type, FrameType::kShardError);
    EXPECT_EQ(frame.error.message, message);
  }
}

TEST(ShardProtocol, SkewedVersionsDecodeFaithfullyForLoudRejection) {
  // The parser itself decodes old-version handshakes; rejecting them is
  // the receiver's job (coordinator for hellos, shard-server for
  // requests) so the failure names the skew instead of a bare parse
  // error.  The version field must therefore survive the round trip.
  HelloFrame hello;
  hello.version = 2;
  EXPECT_EQ(decode_single(encode_frame(hello)).hello.version, 2u);
  ShardRequestFrame request;
  request.version = 2;
  request.spec_text = "topology = chain\n";
  EXPECT_EQ(decode_single(encode_frame(request)).request.version, 2u);
}

TEST(ShardProtocol, TruncatedFrameIsIncompleteNotAFrame) {
  const std::vector<std::uint8_t> bytes = encode_frame(HelloFrame{});
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                                 bytes.size() - 9, bytes.size() - 1}) {
    FrameParser parser;
    parser.feed(bytes.data(), keep);
    EXPECT_FALSE(parser.next().has_value()) << "prefix of " << keep << " bytes";
    EXPECT_EQ(parser.mid_frame(), keep > 0);
  }
}

TEST(ShardProtocol, GarbageMagicRejected) {
  std::vector<std::uint8_t> bytes = encode_frame(HelloFrame{});
  bytes[0] ^= 0x5a;
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_THROW(parser.next(), ShardProtocolError);
}

TEST(ShardProtocol, UnknownFrameTypeRejected) {
  std::vector<std::uint8_t> bytes = encode_frame(HelloFrame{});
  bytes[4] = 200;  // type byte
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_THROW(parser.next(), ShardProtocolError);
}

TEST(ShardProtocol, OversizedPayloadRejectedWithoutBuffering) {
  std::vector<std::uint8_t> bytes = encode_frame(HelloFrame{});
  // Claim a payload over the limit; only the header is present, but the
  // parser must reject on the length field alone instead of waiting for
  // 2^31 bytes that will never come.
  const std::uint32_t huge = kMaxFramePayload + 1;
  for (int byte = 0; byte < 4; ++byte) bytes[5 + byte] = (huge >> (8 * byte)) & 0xffu;
  FrameParser parser;
  parser.feed(bytes.data(), 9);
  EXPECT_THROW(parser.next(), ShardProtocolError);
}

TEST(ShardProtocol, ChecksumMismatchRejected) {
  RecordFrame record;
  record.record = sample_record();
  std::vector<std::uint8_t> bytes = encode_frame(record);
  bytes[bytes.size() / 2] ^= 1;  // flip one payload bit
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_THROW(parser.next(), ShardProtocolError);
}

TEST(ShardProtocol, BadEnumInsideRecordRejected) {
  // A record whose topology byte is out of range, with the checksum
  // recomputed to match: the payload decoder itself must reject it (the
  // checksum only guards transport corruption, not a buggy sender).
  RecordFrame record;
  record.record = sample_record();
  std::vector<std::uint8_t> bytes = encode_frame(record);
  // Payload starts at offset 9; global_index is 8 bytes; topology next.
  bytes[9 + 8] = 250;
  // Recompute the trailing checksum over (type || payload).
  const std::size_t payload_len = bytes.size() - 9 - 8;
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  };
  mix(bytes[4]);
  for (std::size_t i = 0; i < payload_len; ++i) mix(bytes[9 + i]);
  for (int byte = 0; byte < 8; ++byte) {
    bytes[9 + payload_len + byte] = (hash >> (8 * byte)) & 0xffu;
  }
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_THROW(parser.next(), ShardProtocolError);
}

TEST(ShardProtocol, TrailingPayloadBytesRejected) {
  // Lengthen a hello payload by one byte (checksum recomputed): decoders
  // must consume their payload exactly.
  const HelloFrame hello;
  std::vector<std::uint8_t> body;
  {
    const std::vector<std::uint8_t> encoded = encode_frame(hello);
    body.assign(encoded.begin() + 9, encoded.end() - 8);
  }
  body.push_back(0x77);
  std::vector<std::uint8_t> bytes;
  for (int byte = 0; byte < 4; ++byte) bytes.push_back((kFrameMagic >> (8 * byte)) & 0xffu);
  bytes.push_back(static_cast<std::uint8_t>(FrameType::kHello));
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int byte = 0; byte < 4; ++byte) bytes.push_back((len >> (8 * byte)) & 0xffu);
  bytes.insert(bytes.end(), body.begin(), body.end());
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  };
  mix(static_cast<std::uint8_t>(FrameType::kHello));
  for (const std::uint8_t byte : body) mix(byte);
  for (int byte = 0; byte < 8; ++byte) bytes.push_back((hash >> (8 * byte)) & 0xffu);
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_THROW(parser.next(), ShardProtocolError);
}

/// The boundary fuzz: a realistic multi-frame stream — now with the v3
/// frames (shard-request, heartbeats either direction, shard-error)
/// interleaved — fed at every chunking a pipe or TCP socket might
/// produce must decode identically.
TEST(ShardProtocol, FuzzRandomChunkBoundaries) {
  std::mt19937_64 rng(20260808);
  std::vector<std::uint8_t> stream;
  std::vector<FrameType> expected_types;
  std::vector<std::uint64_t> indexes;
  const auto append = [&stream, &expected_types](const std::vector<std::uint8_t>& bytes,
                                                 FrameType type) {
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    expected_types.push_back(type);
  };
  {
    ShardRequestFrame request;
    request.shard = 1;
    request.begin = 100;
    request.end = 140;
    request.total = 400;
    request.spec_text = "topology = chain\nsize = 8\nseed = 1\nalgorithm = fr\n";
    append(encode_frame(request), FrameType::kShardRequest);
  }
  {
    HelloFrame hello;
    hello.shard = 1;
    hello.begin = 100;
    hello.end = 140;
    append(encode_frame(hello), FrameType::kHello);
  }
  for (std::uint64_t i = 0; i < 40; ++i) {
    if (i % 8 == 0) {
      HeartbeatFrame beacon;
      beacon.from_coordinator = i % 16 == 0 ? 1 : 0;
      beacon.sequence = i / 8;
      append(encode_frame(beacon), FrameType::kHeartbeat);
    }
    RecordFrame record;
    record.global_index = 100 + i;
    record.record = sample_record();
    record.record.work = i * 17;
    record.record.error = (i % 3 == 0) ? "" : std::string(i, 'x');
    indexes.push_back(record.global_index);
    append(encode_frame(record), FrameType::kRecord);
  }
  {
    ShardErrorFrame error;
    error.message = "not actually an error, just exercising the framing";
    append(encode_frame(error), FrameType::kShardError);
  }
  {
    ShardDoneFrame done;
    done.records_emitted = 40;
    append(encode_frame(done), FrameType::kShardDone);
  }

  for (int round = 0; round < 50; ++round) {
    FrameParser parser;
    std::size_t fed = 0;
    std::vector<Frame> frames;
    std::uniform_int_distribution<std::size_t> chunk(1, round % 2 == 0 ? 7 : 1000);
    while (fed < stream.size()) {
      const std::size_t n = std::min(chunk(rng), stream.size() - fed);
      parser.feed(stream.data() + fed, n);
      fed += n;
      while (auto frame = parser.next()) frames.push_back(*frame);
    }
    ASSERT_EQ(frames.size(), expected_types.size()) << "round " << round;
    std::size_t record_index = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      ASSERT_EQ(frames[i].type, expected_types[i]) << "round " << round << " frame " << i;
      if (frames[i].type == FrameType::kRecord) {
        EXPECT_EQ(frames[i].record.global_index, indexes[record_index]);
        EXPECT_EQ(frames[i].record.record.work, record_index * 17);
        ++record_index;
      }
    }
    EXPECT_EQ(record_index, 40u);
    EXPECT_FALSE(parser.mid_frame());
  }
}

/// Single-byte corruption anywhere in the stream must never yield the
/// original frame sequence silently: the parser either throws, stalls
/// mid-frame (truncation detected at EOF), or produces a diverging
/// decode — it must not crash.
TEST(ShardProtocol, FuzzSingleByteCorruptionNeverSilentlyAccepted) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 5; ++i) {
    RecordFrame record;
    record.global_index = i;
    record.record = sample_record();
    const auto bytes = encode_frame(record);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::size_t> position(0, stream.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> mutated = stream;
    mutated[position(rng)] ^= static_cast<std::uint8_t>(1u << bit(rng));
    FrameParser parser;
    parser.feed(mutated.data(), mutated.size());
    std::size_t decoded = 0;
    bool rejected = false;
    try {
      while (auto frame = parser.next()) {
        if (frame->type != FrameType::kRecord || frame->record.global_index != decoded) {
          rejected = true;  // diverging decode is a visible failure too
          break;
        }
        ++decoded;
      }
    } catch (const ShardProtocolError&) {
      rejected = true;
    }
    // Either some frame was rejected/diverged, or the stream no longer
    // parses to completion (mid-frame at EOF = truncation, also loud).
    EXPECT_TRUE(rejected || decoded < 5 || parser.mid_frame()) << "round " << round;
  }
}

/// Same single-byte-corruption guarantee over a stream of the v3 frame
/// types (shard-request with an embedded spec, heartbeats both ways,
/// shard-error): corruption is always loud, never a silent identical
/// decode and never a crash or hang.
TEST(ShardProtocol, FuzzSingleByteCorruptionV3FramesNeverSilentlyAccepted) {
  std::vector<std::uint8_t> stream;
  std::vector<FrameType> expected_types;
  const auto append = [&stream, &expected_types](const std::vector<std::uint8_t>& bytes,
                                                 FrameType type) {
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    expected_types.push_back(type);
  };
  {
    ShardRequestFrame request;
    request.shard = 2;
    request.begin = 10;
    request.end = 20;
    request.total = 40;
    request.heartbeat_ms = 500;
    request.liveness_timeout_ms = 10000;
    request.spec_text = "topology = chain, random\nsize = 8\nseed = 1, 2\nalgorithm = fr\n";
    append(encode_frame(request), FrameType::kShardRequest);
  }
  for (const std::uint8_t direction : {1, 0}) {
    HeartbeatFrame beacon;
    beacon.from_coordinator = direction;
    beacon.sequence = direction + 5u;
    append(encode_frame(beacon), FrameType::kHeartbeat);
  }
  {
    ShardErrorFrame error;
    error.message = "protocol version mismatch (coordinator 2, worker 3)";
    append(encode_frame(error), FrameType::kShardError);
  }

  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::size_t> position(0, stream.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> mutated = stream;
    const std::size_t at = position(rng);
    mutated[at] ^= static_cast<std::uint8_t>(1u << bit(rng));
    FrameParser parser;
    parser.feed(mutated.data(), mutated.size());
    std::size_t decoded = 0;
    bool rejected = false;
    try {
      while (auto frame = parser.next()) {
        if (decoded >= expected_types.size() || frame->type != expected_types[decoded]) {
          rejected = true;
          break;
        }
        ++decoded;
      }
    } catch (const ShardProtocolError&) {
      rejected = true;
    }
    EXPECT_TRUE(rejected || decoded < expected_types.size() || parser.mid_frame())
        << "round " << round << " corrupting byte " << at;
  }
}

}  // namespace
}  // namespace lr

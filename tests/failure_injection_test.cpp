#include <gtest/gtest.h>

#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"
#include "sim/dist_lr.hpp"
#include "sim/network.hpp"

/// Failure injection: message loss and duplication in the simulated
/// network, and the protocol-level mechanisms (monotone-height filtering,
/// anti-entropy resync rounds) that keep distributed link reversal correct
/// under them.

namespace lr {
namespace {

TEST(FailureInjectionTest, DropProbabilityDropsRoughlyThatFraction) {
  Graph g(2, {{0, 1}});
  Network net(g, {.min_delay = 1, .max_delay = 1, .seed = 3, .drop_probability = 0.5});
  net.set_handler(1, [](const NetMessage&) {});
  for (int i = 0; i < 1000; ++i) net.send(0, 1, {i});
  net.run_until_idle();
  EXPECT_GT(net.messages_dropped(), 350u);
  EXPECT_LT(net.messages_dropped(), 650u);
  EXPECT_EQ(net.messages_delivered() + net.messages_dropped(), 1000u);
}

TEST(FailureInjectionTest, DuplicationDeliversExtraCopies) {
  Graph g(2, {{0, 1}});
  Network net(g, {.min_delay = 1, .max_delay = 1, .seed = 4, .duplicate_probability = 0.5});
  int received = 0;
  net.set_handler(1, [&received](const NetMessage&) { ++received; });
  for (int i = 0; i < 1000; ++i) net.send(0, 1, {i});
  net.run_until_idle();
  EXPECT_GT(received, 1350);
  EXPECT_LT(received, 1650);
}

TEST(FailureInjectionTest, ProtocolToleratesDuplicatesWithoutExtraSteps) {
  // Duplicates are filtered by the monotone-height guard: the outcome must
  // be byte-identical to the duplicate-free run, with identical step count.
  std::mt19937_64 rng(5);
  const Instance inst = make_random_instance(24, 20, rng);

  Network clean_net(inst.graph, {.min_delay = 1, .max_delay = 5, .seed = 9});
  DistLinkReversal clean(inst, ReversalRule::kPartial, clean_net);
  clean.start();
  clean_net.run_until_idle();
  ASSERT_TRUE(clean.converged());

  Network dup_net(inst.graph,
                  {.min_delay = 1, .max_delay = 5, .seed = 9, .duplicate_probability = 0.4});
  DistLinkReversal duplicated(inst, ReversalRule::kPartial, dup_net);
  duplicated.start();
  dup_net.run_until_idle();
  EXPECT_TRUE(duplicated.converged());
  EXPECT_TRUE(is_acyclic(duplicated.derived_orientation()));
}

TEST(FailureInjectionTest, LossCanStallWithoutResync) {
  // With heavy loss the one-shot protocol can stall (views stay stale and a
  // true sink never learns it is one).  We don't assert it *must* stall —
  // loss is random — but we do assert safety: whatever state it stalls in
  // is acyclic.
  const Instance inst = make_worst_case_chain(16);
  Network net(inst.graph,
              {.min_delay = 1, .max_delay = 4, .seed = 11, .drop_probability = 0.6});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  EXPECT_TRUE(is_acyclic(proto.derived_orientation()));
}

TEST(FailureInjectionTest, ResyncRoundsRecoverFromLoss) {
  for (const double loss : {0.2, 0.5}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      std::mt19937_64 rng(seed * 17 + 1);
      const Instance inst = make_random_instance(20, 16, rng);
      Network net(inst.graph,
                  {.min_delay = 1, .max_delay = 6, .seed = seed, .drop_probability = loss});
      DistLinkReversal proto(inst, ReversalRule::kPartial, net);
      const auto rounds = proto.run_with_resync(200);
      ASSERT_TRUE(rounds.has_value()) << "loss=" << loss << " seed=" << seed;
      EXPECT_TRUE(proto.converged());
      EXPECT_TRUE(is_destination_oriented(proto.derived_orientation(), inst.destination));
    }
  }
}

TEST(FailureInjectionTest, ResyncIsNoOpWhenAlreadyConverged) {
  const Instance inst = make_worst_case_chain(8);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 3, .seed = 2});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  const auto rounds = proto.run_with_resync();
  ASSERT_TRUE(rounds.has_value());
  EXPECT_EQ(*rounds, 0u) << "lossless run converges before any resync round";

  // An explicit resync after convergence must not trigger new steps.
  const std::uint64_t steps_before = proto.total_steps();
  proto.resync_round();
  net.run_until_idle();
  EXPECT_EQ(proto.total_steps(), steps_before);
  EXPECT_TRUE(proto.converged());
}

TEST(FailureInjectionTest, TotalLossNeverConverges) {
  const Instance inst = make_worst_case_chain(6);
  Network net(inst.graph,
              {.min_delay = 1, .max_delay = 2, .seed = 8, .drop_probability = 1.0});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  const auto rounds = proto.run_with_resync(5);
  EXPECT_FALSE(rounds.has_value());
  // Safety still holds.
  EXPECT_TRUE(is_acyclic(proto.derived_orientation()));
}

TEST(FailureInjectionTest, FullReversalRuleAlsoRecoversWithResync) {
  std::mt19937_64 rng(21);
  const Instance inst = make_random_instance(16, 12, rng);
  Network net(inst.graph,
              {.min_delay = 1, .max_delay = 5, .seed = 13, .drop_probability = 0.4});
  DistLinkReversal proto(inst, ReversalRule::kFull, net);
  const auto rounds = proto.run_with_resync(200);
  ASSERT_TRUE(rounds.has_value());
  EXPECT_TRUE(proto.converged());
}

}  // namespace
}  // namespace lr

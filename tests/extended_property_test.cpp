#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/bll.hpp"
#include "core/full_reversal.hpp"
#include "core/gb_heights.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

/// Extended property sweeps: the cartesian closure of
///   {all algorithms} x {all schedulers} x {all graph families}
/// asserting, for every cell, the end-to-end contract — termination,
/// destination orientation, acyclicity at quiescence, and the
/// work/quiescence consistency conditions.  The per-step invariant checks
/// live in invariants_property_test.cpp; this file is about breadth.

namespace lr {
namespace {

enum class Algo { kOneStepPR, kNewPR, kFR, kGBPair, kGBTriple, kBLL };
enum class Sched { kLowest, kRandom, kRoundRobin, kFarthest, kLeastRecent, kMaxDegree };
enum class Fam { kChain, kRandom, kDense, kGrid, kLayered, kStar, kUnitDisk, kRing, kTree };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kOneStepPR: return "OneStepPR";
    case Algo::kNewPR: return "NewPR";
    case Algo::kFR: return "FR";
    case Algo::kGBPair: return "GBPair";
    case Algo::kGBTriple: return "GBTriple";
    case Algo::kBLL: return "BLL";
  }
  return "?";
}

const char* sched_name(Sched s) {
  switch (s) {
    case Sched::kLowest: return "Lowest";
    case Sched::kRandom: return "Random";
    case Sched::kRoundRobin: return "RoundRobin";
    case Sched::kFarthest: return "Farthest";
    case Sched::kLeastRecent: return "LeastRecent";
    case Sched::kMaxDegree: return "MaxDegree";
  }
  return "?";
}

const char* fam_name(Fam f) {
  switch (f) {
    case Fam::kChain: return "Chain";
    case Fam::kRandom: return "Random";
    case Fam::kDense: return "Dense";
    case Fam::kGrid: return "Grid";
    case Fam::kLayered: return "Layered";
    case Fam::kStar: return "Star";
    case Fam::kUnitDisk: return "UnitDisk";
    case Fam::kRing: return "Ring";
    case Fam::kTree: return "Tree";
  }
  return "?";
}

struct CellParam {
  Algo algo;
  Sched sched;
  Fam fam;

  friend std::ostream& operator<<(std::ostream& os, const CellParam& p) {
    return os << algo_name(p.algo) << '_' << sched_name(p.sched) << '_' << fam_name(p.fam);
  }
};

Instance make_family_instance(Fam fam, std::uint64_t seed) {
  std::mt19937_64 rng(seed * 40503 + 11);
  switch (fam) {
    case Fam::kChain:
      return make_worst_case_chain(24);
    case Fam::kRandom:
      return make_random_instance(24, 12, rng);
    case Fam::kDense:
      return make_random_instance(24, 96, rng);
    case Fam::kGrid:
      return make_grid_instance(5, 5, rng);
    case Fam::kLayered:
      return make_layered_bad_instance(5, 5, 0.35, rng);
    case Fam::kStar:
      return make_sink_source_instance(25);
    case Fam::kUnitDisk:
      return make_unit_disk_instance(24, 0.35, rng);
    case Fam::kRing: {
      Instance inst;
      inst.graph = make_ring_graph(24);
      inst.senses = Orientation::from_ranking(inst.graph, identity_ranking(24)).senses();
      inst.destination = 0;
      inst.name = "ring(24)";
      return inst;
    }
    case Fam::kTree: {
      Instance inst;
      inst.graph = make_binary_tree_graph(31);
      inst.senses =
          Orientation::from_ranking(inst.graph, random_ranking(31, rng)).senses();
      inst.destination = 0;
      inst.name = "binary_tree(31)";
      return inst;
    }
  }
  return make_worst_case_chain(8);
}

template <typename A, typename S>
void run_cell_impl(const Instance& inst, S scheduler) {
  A automaton(inst);
  const RunResult result = run_to_quiescence(automaton, scheduler);
  ASSERT_TRUE(result.quiescent) << inst.name << ": did not quiesce";
  EXPECT_TRUE(result.destination_oriented) << inst.name;
  EXPECT_TRUE(check_acyclic(automaton.orientation()))
      << inst.name << ": " << check_acyclic(automaton.orientation()).detail;
  EXPECT_TRUE(check_invariant_3_1(automaton.orientation()))
      << check_invariant_3_1(automaton.orientation()).detail;
  EXPECT_TRUE(check_quiescence_consistency(automaton.orientation(), automaton.destination()))
      << check_quiescence_consistency(automaton.orientation(), automaton.destination()).detail;
  // Work stays within the Θ(n_b²) ceiling.
  const Orientation initial = inst.make_orientation();
  const std::uint64_t nb = bad_nodes(initial, inst.destination).size();
  EXPECT_LE(result.steps, 2 * nb * nb + nb + inst.graph.num_nodes())
      << inst.name << ": work above the quadratic ceiling";
}

template <typename A>
void run_with_scheduler(const Instance& inst, Sched sched, std::uint64_t seed) {
  switch (sched) {
    case Sched::kLowest:
      return run_cell_impl<A>(inst, LowestIdScheduler{});
    case Sched::kRandom:
      return run_cell_impl<A>(inst, RandomScheduler{seed});
    case Sched::kRoundRobin:
      return run_cell_impl<A>(inst, RoundRobinScheduler{});
    case Sched::kFarthest:
      return run_cell_impl<A>(inst, FarthestFirstScheduler{});
    case Sched::kLeastRecent:
      return run_cell_impl<A>(inst, LeastRecentlyFiredScheduler{});
    case Sched::kMaxDegree:
      return run_cell_impl<A>(inst, MaxDegreeScheduler{});
  }
}

class ExtendedSweep : public ::testing::TestWithParam<CellParam> {};

TEST_P(ExtendedSweep, ConvergesCorrectly) {
  const CellParam p = GetParam();
  const std::uint64_t seed = static_cast<std::uint64_t>(p.fam) * 97 + 5;
  const Instance inst = make_family_instance(p.fam, seed);
  switch (p.algo) {
    case Algo::kOneStepPR:
      return run_with_scheduler<OneStepPRAutomaton>(inst, p.sched, seed);
    case Algo::kNewPR:
      return run_with_scheduler<NewPRAutomaton>(inst, p.sched, seed);
    case Algo::kFR:
      return run_with_scheduler<FullReversalAutomaton>(inst, p.sched, seed);
    case Algo::kGBPair:
      return run_with_scheduler<GBPairHeightsAutomaton>(inst, p.sched, seed);
    case Algo::kGBTriple:
      return run_with_scheduler<GBTripleHeightsAutomaton>(inst, p.sched, seed);
    case Algo::kBLL: {
      // BLL's factory shape differs; inline the cell body.
      BLLAutomaton automaton = BLLAutomaton::pr_labeling(inst);
      RandomScheduler scheduler(seed);
      const RunResult result = run_to_quiescence(automaton, scheduler);
      ASSERT_TRUE(result.quiescent);
      EXPECT_TRUE(result.destination_oriented) << inst.name;
      EXPECT_TRUE(check_acyclic(automaton.orientation()))
          << check_acyclic(automaton.orientation()).detail;
      return;
    }
  }
}

std::vector<CellParam> all_cells() {
  std::vector<CellParam> cells;
  for (const Algo algo : {Algo::kOneStepPR, Algo::kNewPR, Algo::kFR, Algo::kGBPair,
                          Algo::kGBTriple, Algo::kBLL}) {
    for (const Sched sched : {Sched::kLowest, Sched::kRandom, Sched::kRoundRobin,
                              Sched::kFarthest, Sched::kLeastRecent, Sched::kMaxDegree}) {
      for (const Fam fam : {Fam::kChain, Fam::kRandom, Fam::kDense, Fam::kGrid, Fam::kLayered,
                            Fam::kStar, Fam::kUnitDisk, Fam::kRing, Fam::kTree}) {
        // BLL is exercised with the random scheduler only (factory shape).
        if (algo == Algo::kBLL && sched != Sched::kRandom) continue;
        cells.push_back({algo, sched, fam});
      }
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(AllCells, ExtendedSweep, ::testing::ValuesIn(all_cells()),
                         [](const ::testing::TestParamInfo<CellParam>& info) {
                           std::ostringstream oss;
                           oss << info.param;
                           return oss.str();
                         });

// ---------------------------------------------------------------------------
// Schedule-independence of FR's work (the potential-game property E3.3
// relies on): the per-node work vector is identical under every scheduler.
// ---------------------------------------------------------------------------

TEST(ScheduleIndependenceTest, FRWorkVectorIdenticalAcrossSchedulers) {
  std::mt19937_64 rng(55);
  for (int trial = 0; trial < 6; ++trial) {
    const Instance inst = make_random_instance(20, 18, rng);
    std::vector<std::vector<std::uint64_t>> vectors;
    for (const Sched sched :
         {Sched::kLowest, Sched::kRandom, Sched::kRoundRobin, Sched::kFarthest}) {
      FullReversalAutomaton fr(inst);
      std::vector<std::uint64_t> work(inst.graph.num_nodes(), 0);
      const auto observer = [&work](const FullReversalAutomaton&, NodeId u) { ++work[u]; };
      switch (sched) {
        case Sched::kLowest: {
          LowestIdScheduler s;
          run_to_quiescence(fr, s, observer);
          break;
        }
        case Sched::kRandom: {
          RandomScheduler s(trial + 1);
          run_to_quiescence(fr, s, observer);
          break;
        }
        case Sched::kRoundRobin: {
          RoundRobinScheduler s;
          run_to_quiescence(fr, s, observer);
          break;
        }
        default: {
          FarthestFirstScheduler s;
          run_to_quiescence(fr, s, observer);
          break;
        }
      }
      vectors.push_back(std::move(work));
    }
    for (std::size_t i = 1; i < vectors.size(); ++i) {
      EXPECT_EQ(vectors[i], vectors[0]) << "FR work vector differs, trial " << trial;
    }
  }
}

TEST(ScheduleIndependenceTest, PRWorkVectorAlsoScheduleIndependent) {
  // Busch–Tirthapura: PR executions are also "uniform" — per-node work is
  // schedule-independent (both algorithms are decisive).  Verify.
  std::mt19937_64 rng(56);
  for (int trial = 0; trial < 6; ++trial) {
    const Instance inst = make_random_instance(20, 18, rng);
    std::vector<std::uint64_t> reference;
    for (int variant = 0; variant < 4; ++variant) {
      OneStepPRAutomaton pr(inst);
      std::vector<std::uint64_t> work(inst.graph.num_nodes(), 0);
      const auto observer = [&work](const OneStepPRAutomaton&, NodeId u) { ++work[u]; };
      if (variant == 0) {
        LowestIdScheduler s;
        run_to_quiescence(pr, s, observer);
        reference = work;
        continue;
      }
      RandomScheduler s(trial * 11 + variant);
      run_to_quiescence(pr, s, observer);
      EXPECT_EQ(work, reference) << "PR work vector differs, trial " << trial << " variant "
                                 << variant;
    }
  }
}

}  // namespace
}  // namespace lr

#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/digraph_algos.hpp"

namespace lr {
namespace {

TEST(GeneratorsTest, ChainGraph) {
  Graph g = make_chain_graph(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(GeneratorsTest, RingGraph) {
  Graph g = make_ring_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_THROW(make_ring_graph(2), std::invalid_argument);
}

TEST(GeneratorsTest, GridGraph) {
  Graph g = make_grid_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // horizontal + vertical
  EXPECT_TRUE(g.is_connected());
}

TEST(GeneratorsTest, CompleteGraph) {
  Graph g = make_complete_graph(5);
  EXPECT_EQ(g.num_edges(), 10u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(GeneratorsTest, StarGraph) {
  Graph g = make_star_graph(6);
  EXPECT_EQ(g.degree(0), 5u);
  for (NodeId u = 1; u < 6; ++u) EXPECT_EQ(g.degree(u), 1u);
}

TEST(GeneratorsTest, BinaryTreeGraph) {
  Graph g = make_binary_tree_graph(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2u);  // root has children 1, 2
}

TEST(GeneratorsTest, RandomTreeIsConnectedTree) {
  std::mt19937_64 rng(42);
  for (const std::size_t n : {2u, 5u, 17u, 64u}) {
    Graph g = make_random_tree_graph(n, rng);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(g.is_connected());
  }
}

TEST(GeneratorsTest, RandomConnectedGraphHasRequestedEdges) {
  std::mt19937_64 rng(7);
  Graph g = make_random_connected_graph(20, 15, rng);
  EXPECT_EQ(g.num_edges(), 19u + 15u);
  EXPECT_TRUE(g.is_connected());
}

TEST(GeneratorsTest, RandomConnectedGraphClampsToComplete) {
  std::mt19937_64 rng(7);
  Graph g = make_random_connected_graph(4, 100, rng);
  EXPECT_EQ(g.num_edges(), 6u);  // complete graph on 4 nodes
}

TEST(GeneratorsTest, LayeredGraphConnected) {
  std::mt19937_64 rng(3);
  Graph g = make_layered_graph(4, 5, 0.3, rng);
  EXPECT_EQ(g.num_nodes(), 1u + 3u * 5u);
  EXPECT_TRUE(g.is_connected());
}

TEST(GeneratorsTest, RandomRankingIsPermutation) {
  std::mt19937_64 rng(1);
  auto rank = random_ranking(10, rng);
  std::sort(rank.begin(), rank.end());
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(rank[i], i);
}

TEST(GeneratorsTest, DestinationOrientedRankingYieldsOrientedDag) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_random_connected_graph(30, 20, rng);
    const auto rank = destination_oriented_ranking(g, 0, rng);
    // Edges point low -> high rank; routing must go *down* rank towards the
    // destination, so orient with the *reversed* ranking for this check:
    // instead verify: from_ranking then destination 0 has every node
    // reaching it via in-edges... The ranking construction guarantees every
    // non-destination node has a neighbor with smaller rank, i.e. an
    // incoming edge from the routing perspective.  Concretely:
    Orientation o = Orientation::from_ranking(g, rank);
    // Every non-destination node must have at least one *out*-edge towards
    // lower rank?  No: edges point low->high.  Destination has rank 0, so
    // all its edges point away from it; reversing the interpretation, the
    // DAG oriented *towards* the destination is the one with flipped
    // senses.  We simply check the flipped orientation is
    // destination-oriented.
    std::vector<EdgeSense> flipped(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      flipped[e] = o.sense(e) == EdgeSense::kForward ? EdgeSense::kBackward : EdgeSense::kForward;
    }
    Orientation toward(g, flipped);
    EXPECT_TRUE(is_destination_oriented(toward, 0));
  }
}

TEST(GeneratorsTest, WorstCaseChainAllNodesBad) {
  Instance inst = make_worst_case_chain(8);
  Orientation o = inst.make_orientation();
  EXPECT_EQ(bad_nodes(o, inst.destination).size(), 7u);
  EXPECT_TRUE(is_acyclic(o));
}

TEST(GeneratorsTest, RandomInstanceIsAcyclicDag) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Instance inst = make_random_instance(25, 15, rng);
    Orientation o = inst.make_orientation();
    EXPECT_TRUE(is_acyclic(o)) << inst.name;
    EXPECT_TRUE(inst.graph.is_connected());
  }
}

TEST(GeneratorsTest, LayeredBadInstanceMostNodesBad) {
  std::mt19937_64 rng(9);
  Instance inst = make_layered_bad_instance(4, 3, 0.5, rng);
  Orientation o = inst.make_orientation();
  EXPECT_EQ(bad_nodes(o, inst.destination).size(), inst.graph.num_nodes() - 1);
}

TEST(GeneratorsTest, SinkSourceInstanceHasInitialSinksAndSources) {
  Instance inst = make_sink_source_instance(9);
  Orientation o = inst.make_orientation();
  bool has_sink = false;
  bool has_source = false;
  for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    if (u == inst.destination) continue;
    if (o.is_sink(u)) has_sink = true;
    if (o.is_source(u)) has_source = true;
  }
  EXPECT_TRUE(has_sink);
  EXPECT_TRUE(has_source);
  EXPECT_TRUE(is_acyclic(o));
}

TEST(GeneratorsTest, UnitDiskGraphConnectedAndValid) {
  std::mt19937_64 rng(23);
  for (const std::size_t n : {5u, 20u, 50u}) {
    Graph g = make_unit_disk_graph(n, 0.3, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_TRUE(g.is_connected());
  }
  EXPECT_THROW(make_unit_disk_graph(0, 0.3, rng), std::invalid_argument);
  EXPECT_THROW(make_unit_disk_graph(5, 0.0, rng), std::invalid_argument);
}

TEST(GeneratorsTest, UnitDiskTinyRadiusStillConnectsByGrowing) {
  // A hopeless radius must be grown internally rather than looping forever.
  std::mt19937_64 rng(24);
  Graph g = make_unit_disk_graph(12, 0.01, rng);
  EXPECT_TRUE(g.is_connected());
}

TEST(GeneratorsTest, UnitDiskInstanceAcyclic) {
  std::mt19937_64 rng(25);
  Instance inst = make_unit_disk_instance(20, 0.35, rng);
  EXPECT_TRUE(is_acyclic(inst.make_orientation()));
  EXPECT_EQ(inst.destination, 0u);
}

TEST(GeneratorsTest, BarbellGraphShape) {
  Graph g = make_barbell_graph(4, 2);
  EXPECT_EQ(g.num_nodes(), 10u);
  // Two K4s (6 edges each) + bridge path of 3 edges.
  EXPECT_EQ(g.num_edges(), 6u + 6u + 3u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_barbell_graph(1, 2), std::invalid_argument);
}

TEST(GeneratorsTest, BarbellZeroBridgeJoinsCliquesDirectly) {
  Graph g = make_barbell_graph(3, 0);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_TRUE(g.adjacent(2, 3));
  EXPECT_TRUE(g.is_connected());
}

TEST(GeneratorsTest, InstanceOrientationIsFreshEachTime) {
  Instance inst = make_worst_case_chain(4);
  Orientation a = inst.make_orientation();
  a.reverse_edge(0);
  Orientation b = inst.make_orientation();
  EXPECT_EQ(b.reversal_count(), 0u);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace lr

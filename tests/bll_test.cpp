#include "core/bll.hpp"

#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(BLLTest, PRLabelingMatchesListBasedPRStepByStep) {
  std::mt19937_64 rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = make_random_instance(16, 10, rng);
    BLLAutomaton bll = BLLAutomaton::pr_labeling(inst);
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    std::size_t steps = 0;
    while (true) {
      const auto choice = scheduler.choose(pr);
      if (!choice) break;
      ASSERT_TRUE(bll.enabled(*choice));
      pr.apply(*choice);
      bll.apply(*choice);
      ASSERT_TRUE(pr.orientation() == bll.orientation()) << "divergence at step " << steps;
      // The marked set plays the role of list[u].
      for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
        ASSERT_EQ(bll.marked_neighbors(u), pr.list(u)) << "marks != list at node " << u;
      }
      ++steps;
    }
    EXPECT_TRUE(bll.quiescent());
    EXPECT_TRUE(is_destination_oriented(bll.orientation(), inst.destination));
  }
}

TEST(BLLTest, AllMarkedFirstStepReversesEverything) {
  Instance inst = make_worst_case_chain(3);  // 0 -> 1 -> 2
  BLLAutomaton bll =
      BLLAutomaton::all_marked_labeling(inst.graph, inst.make_orientation(), inst.destination);
  bll.apply(2);  // all marked: reverse all incident edges
  EXPECT_EQ(bll.orientation().dir(2, 1), Dir::kOut);
  EXPECT_EQ(bll.marked_count(2), 0u) << "own marks cleared after the step";
}

TEST(BLLTest, MarkedNeighborsTracksReversals) {
  Instance inst = make_worst_case_chain(3);
  BLLAutomaton bll = BLLAutomaton::pr_labeling(inst);
  bll.apply(2);
  EXPECT_EQ(bll.marked_neighbors(1), (std::vector<NodeId>{2}));
  EXPECT_TRUE(bll.marked_neighbors(2).empty());
}

TEST(BLLTest, PRLabelingPreservesAcyclicityExhaustively) {
  // Model-check the full reachable state space on small graphs.
  const Instance chain = make_worst_case_chain(4);
  EXPECT_TRUE(initial_labeling_preserves_acyclicity(
      chain.graph, chain.senses, chain.destination,
      std::vector<std::uint8_t>(2 * chain.graph.num_edges(), 0)));

  std::mt19937_64 rng(12);
  const Instance small = make_random_instance(5, 3, rng);
  EXPECT_TRUE(initial_labeling_preserves_acyclicity(
      small.graph, small.senses, small.destination,
      std::vector<std::uint8_t>(2 * small.graph.num_edges(), 0)));
}

TEST(BLLTest, SomeLabelingsBreakAcyclicityOnDiamond) {
  // Welch-Walter's acyclicity condition is non-trivial: there exist initial
  // labelings under which BLL creates a cycle.  Search the diamond graph
  // (4-cycle with a chord) exhaustively for one.
  Graph g(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const auto rank = identity_ranking(4);
  Orientation o = Orientation::from_ranking(g, rank);
  const std::vector<EdgeSense> senses = o.senses();

  std::size_t violating = 0;
  const std::size_t slots = 2 * g.num_edges();
  for (std::size_t bits = 0; bits < (std::size_t{1} << slots); ++bits) {
    std::vector<std::uint8_t> marks(slots);
    for (std::size_t i = 0; i < slots; ++i) marks[i] = (bits >> i) & 1;
    if (!initial_labeling_preserves_acyclicity(g, senses, 0, marks)) ++violating;
  }
  RecordProperty("violating_labelings", static_cast<int>(violating));
  EXPECT_GT(violating, 0u) << "expected some initial labelings to break acyclicity";
  // The PR labeling (all zeros) must not be among the violators — covered
  // by the bits == 0 iteration returning true, re-checked explicitly:
  EXPECT_TRUE(initial_labeling_preserves_acyclicity(
      g, senses, 0, std::vector<std::uint8_t>(slots, 0)));
}

TEST(BLLTest, RejectsWrongMarkVectorSize) {
  Instance inst = make_worst_case_chain(3);
  EXPECT_THROW(BLLAutomaton(inst.graph, inst.make_orientation(), inst.destination,
                            std::vector<std::uint8_t>(3, 0)),
               std::invalid_argument);
}

TEST(BLLTest, ApplyThrowsWhenNotSink) {
  Instance inst = make_worst_case_chain(3);
  BLLAutomaton bll = BLLAutomaton::pr_labeling(inst);
  EXPECT_THROW(bll.apply(0), std::logic_error);
}

TEST(BLLTest, ConvergesUnderRandomSchedulers) {
  std::mt19937_64 rng(14);
  Instance inst = make_random_instance(14, 8, rng);
  BLLAutomaton bll = BLLAutomaton::pr_labeling(inst);
  RandomScheduler scheduler(3);
  const RunResult result = run_to_quiescence(bll, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
}

}  // namespace
}  // namespace lr

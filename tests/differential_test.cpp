#include <gtest/gtest.h>

#include <set>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/bll.hpp"
#include "core/full_reversal.hpp"
#include "core/gb_heights.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "core/relations.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

/// Differential fuzzing: five formulations of partial reversal — the
/// list-based OneStepPR, the set-based PR (via singleton steps), NewPR
/// (through the Lemma 5.3 correspondence), the GB triple-heights
/// automaton, and BLL with the PR labeling — are driven with one shared
/// random schedule per trial and must agree on the orientation after every
/// step, with the full invariant suite holding throughout.  Full Reversal
/// and GB pair heights form a second equivalence class.

namespace lr {
namespace {

struct FuzzParam {
  std::size_t n;
  std::size_t extra_edges;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const FuzzParam& p) {
    return os << "n" << p.n << "_e" << p.extra_edges << "_s" << p.seed;
  }
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(DifferentialFuzz, AllPartialReversalFormulationsAgree) {
  const FuzzParam param = GetParam();
  std::mt19937_64 rng(param.seed * 7919 + param.n);
  const Instance inst = make_random_instance(param.n, param.extra_edges, rng);

  OneStepPRAutomaton reference(inst);
  PRAutomaton set_pr(inst);
  NewPRAutomaton newpr(inst);
  GBTripleHeightsAutomaton gb(inst);
  BLLAutomaton bll = BLLAutomaton::pr_labeling(inst);
  const LeftRightEmbedding emb(reference.orientation());

  RandomScheduler scheduler(param.seed);
  std::size_t steps = 0;
  while (true) {
    const auto choice = scheduler.choose(reference);
    if (!choice) break;
    const NodeId u = *choice;

    // NewPR may need the dummy step first (Lemma 5.3's correspondence).
    const auto newpr_actions = correspondence_R(reference, u, newpr);

    reference.apply(u);
    set_pr.apply(std::vector<NodeId>{u});
    for (const NodeId w : newpr_actions) newpr.apply(w);
    gb.apply(u);
    bll.apply(u);
    ++steps;

    ASSERT_TRUE(reference.orientation() == set_pr.orientation()) << "set PR diverged @" << steps;
    ASSERT_TRUE(reference.orientation() == newpr.orientation()) << "NewPR diverged @" << steps;
    ASSERT_TRUE(reference.orientation() == gb.orientation()) << "GB diverged @" << steps;
    ASSERT_TRUE(reference.orientation() == bll.orientation()) << "BLL diverged @" << steps;

    // Full invariant suite on the reference state.
    ASSERT_TRUE(check_invariant_3_1(reference.orientation()))
        << check_invariant_3_1(reference.orientation()).detail;
    ASSERT_TRUE(check_invariant_3_2(reference)) << check_invariant_3_2(reference).detail;
    ASSERT_TRUE(check_invariant_4_1(newpr, emb)) << check_invariant_4_1(newpr, emb).detail;
    ASSERT_TRUE(check_invariant_4_2(newpr, emb)) << check_invariant_4_2(newpr, emb).detail;
    ASSERT_TRUE(check_acyclic(reference.orientation()))
        << check_acyclic(reference.orientation()).detail;
    ASSERT_TRUE(gb.heights_consistent());
    // BLL's marks must equal PR's lists node-by-node.
    for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
      ASSERT_EQ(bll.marked_neighbors(v), reference.list(v)) << "marks/list mismatch at " << v;
    }
  }
  EXPECT_TRUE(reference.quiescent());
  EXPECT_TRUE(is_destination_oriented(reference.orientation(), inst.destination));
  // Work is bounded by the quadratic ceiling in n_b (Welch–Walter bound).
  const Orientation initial = inst.make_orientation();
  const std::uint64_t nb = bad_nodes(initial, inst.destination).size();
  EXPECT_LE(steps, 2 * nb * nb + nb + 1);
}

TEST_P(DifferentialFuzz, FullReversalFormulationsAgree) {
  const FuzzParam param = GetParam();
  std::mt19937_64 rng(param.seed * 6871 + param.n);
  const Instance inst = make_random_instance(param.n, param.extra_edges, rng);

  FullReversalAutomaton fr(inst);
  GBPairHeightsAutomaton gb(inst);
  RandomScheduler scheduler(param.seed + 99);
  std::size_t steps = 0;
  while (true) {
    const auto choice = scheduler.choose(fr);
    if (!choice) break;
    fr.apply(*choice);
    gb.apply(*choice);
    ++steps;
    ASSERT_TRUE(fr.orientation() == gb.orientation()) << "GB pair diverged @" << steps;
    ASSERT_TRUE(gb.heights_consistent());
    ASSERT_TRUE(check_acyclic(fr.orientation())) << check_acyclic(fr.orientation()).detail;
  }
  EXPECT_TRUE(is_destination_oriented(fr.orientation(), inst.destination));
}

std::vector<FuzzParam> fuzz_params() {
  std::vector<FuzzParam> params;
  for (const std::size_t n : {6u, 10u, 18u, 30u}) {
    for (const std::size_t extra : {std::size_t{2}, n, 3 * n}) {
      for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        params.push_back({n, extra, seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DifferentialFuzz, ::testing::ValuesIn(fuzz_params()),
                         [](const ::testing::TestParamInfo<FuzzParam>& info) {
                           std::ostringstream oss;
                           oss << info.param;
                           return oss.str();
                         });

// ---------------------------------------------------------------------------
// New schedulers behave correctly with all algorithms.
// ---------------------------------------------------------------------------

TEST(NewSchedulersTest, LeastRecentlyFiredDrivesToQuiescence) {
  std::mt19937_64 rng(71);
  for (int trial = 0; trial < 5; ++trial) {
    const Instance inst = make_random_instance(20, 15, rng);
    OneStepPRAutomaton pr(inst);
    LeastRecentlyFiredScheduler scheduler;
    const RunResult result = run_to_quiescence(pr, scheduler);
    EXPECT_TRUE(result.quiescent);
    EXPECT_TRUE(result.destination_oriented);
  }
}

TEST(NewSchedulersTest, LeastRecentlyFiredPrefersNeverFiredNodes) {
  Instance inst = make_sink_source_instance(9);  // sinks: 2, 4, 6, 8
  OneStepPRAutomaton pr(inst);
  LeastRecentlyFiredScheduler scheduler;
  // First four picks must all be distinct (none has fired yet).
  std::set<NodeId> fired;
  for (int i = 0; i < 4; ++i) {
    const auto choice = scheduler.choose(pr);
    ASSERT_TRUE(choice.has_value());
    EXPECT_TRUE(fired.insert(*choice).second);
    pr.apply(*choice);
  }
}

TEST(NewSchedulersTest, MaxDegreePicksHighestDegreeSink) {
  // Y-graph from the scheduler test: sinks 0 (degree 1) and 4 (degree 1)…
  // use the star where the hub eventually becomes a sink with max degree.
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  // All edges towards the hub 0: hub is the unique sink; then after the hub
  // fires, leaves become sinks of degree 1.
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kBackward, EdgeSense::kBackward});
  OneStepPRAutomaton pr(g, std::move(o), 1);
  MaxDegreeScheduler scheduler;
  const auto choice = scheduler.choose(pr);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, 0u);
}

TEST(NewSchedulersTest, MaxDegreeDrivesToQuiescence) {
  std::mt19937_64 rng(72);
  const Instance inst = make_random_instance(25, 20, rng);
  FullReversalAutomaton fr(inst);
  MaxDegreeScheduler scheduler;
  const RunResult result = run_to_quiescence(fr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
}

}  // namespace
}  // namespace lr

#include "graph/digraph_algos.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lr {
namespace {

TEST(DigraphAlgosTest, ChainAcyclic) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward, EdgeSense::kForward});
  EXPECT_TRUE(is_acyclic(o));
  EXPECT_FALSE(find_cycle(o).has_value());
}

TEST(DigraphAlgosTest, TriangleCycleDetected) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  // 0 -> 1 -> 2 -> 0 : a directed 3-cycle.
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward, EdgeSense::kBackward});
  EXPECT_FALSE(is_acyclic(o));
  const auto cycle = find_cycle(o);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 3u);
  // Verify it really is a directed cycle.
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    const NodeId from = (*cycle)[i];
    const NodeId to = (*cycle)[(i + 1) % cycle->size()];
    EXPECT_EQ(o.dir(from, to), Dir::kOut) << "edge " << from << "->" << to;
  }
}

TEST(DigraphAlgosTest, TopologicalOrderRespectsEdges) {
  Graph g(5, {{0, 1}, {1, 2}, {0, 3}, {3, 4}, {2, 4}});
  Orientation o = Orientation::from_ranking(g, std::vector<std::uint32_t>{0, 1, 2, 3, 4});
  const auto order = topological_order(o);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(g.num_nodes());
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(pos[o.tail(e)], pos[o.head(e)]);
  }
}

TEST(DigraphAlgosTest, TopologicalOrderNulloptOnCycle) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward, EdgeSense::kBackward});
  EXPECT_FALSE(topological_order(o).has_value());
}

TEST(DigraphAlgosTest, ReachesDestinationChain) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  // All edges point towards node 0: 1->0, 2->1, 3->2.
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kBackward, EdgeSense::kBackward});
  const auto reaches = reaches_destination(o, 0);
  EXPECT_TRUE(std::all_of(reaches.begin(), reaches.end(), [](bool b) { return b; }));
  EXPECT_TRUE(is_destination_oriented(o, 0));
  EXPECT_TRUE(bad_nodes(o, 0).empty());
}

TEST(DigraphAlgosTest, BadNodesWhenEdgesPointAway) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  // All edges point away from node 0: every other node is bad.
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward, EdgeSense::kForward});
  EXPECT_FALSE(is_destination_oriented(o, 0));
  EXPECT_EQ(bad_nodes(o, 0), (std::vector<NodeId>{1, 2, 3}));
}

TEST(DigraphAlgosTest, PartialReachability) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  // 1 -> 0, 1 <- 2 ... wait: senses: e0 backward (1->0), e1 forward (1->2), e2 forward (2->3).
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kForward, EdgeSense::kForward});
  const auto reaches = reaches_destination(o, 0);
  EXPECT_TRUE(reaches[0]);
  EXPECT_TRUE(reaches[1]);
  EXPECT_FALSE(reaches[2]);
  EXPECT_FALSE(reaches[3]);
  EXPECT_EQ(bad_nodes(o, 0), (std::vector<NodeId>{2, 3}));
}

TEST(DigraphAlgosTest, SinksExcludingDestination) {
  Graph g(3, {{0, 1}, {1, 2}});
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kForward});  // 1->0, 1->2
  // Sinks: 0 and 2.
  EXPECT_EQ(sinks_excluding(o, 0), (std::vector<NodeId>{2}));
  EXPECT_EQ(sinks_excluding(o, 2), (std::vector<NodeId>{0}));
  EXPECT_EQ(sinks_excluding(o, 1), (std::vector<NodeId>{0, 2}));
}

TEST(DigraphAlgosTest, DirectedDistance) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward, EdgeSense::kForward});
  EXPECT_EQ(directed_distance(o, 0, 3), std::optional<std::size_t>{3});
  EXPECT_EQ(directed_distance(o, 0, 0), std::optional<std::size_t>{0});
  EXPECT_FALSE(directed_distance(o, 3, 0).has_value());
}

}  // namespace
}  // namespace lr

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

/// End-to-end integration tests for the lr_cli binary: generate an
/// instance file, inspect it, run algorithms over it, and model-check it —
/// all through the real command-line interface.  The binary path is
/// injected by CMake as LR_CLI_PATH.

#ifndef LR_CLI_PATH
#error "LR_CLI_PATH must be defined by the build system ($<TARGET_FILE:lr_cli>)"
#endif

namespace {

// A missing binary must FAIL each test, not skip it: a fatal failure in a
// global Environment::SetUp makes gtest emit "[  SKIPPED ]", which matches
// the SKIP_REGULAR_EXPRESSION that gtest_discover_tests registers, so CTest
// would report the suite green. A fixture SetUp failure marks tests failed.
class CliIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(std::filesystem::exists(LR_CLI_PATH))
        << "lr_cli binary not found at LR_CLI_PATH=" << LR_CLI_PATH
        << "; build the lr_cli target first";
  }
};

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_command(const std::string& args) {
  const std::string command = std::string(LR_CLI_PATH) + " " + args + " 2>&1";
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), std::move(output)};
}

std::string temp_file(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST_F(CliIntegrationTest, GenInfoRoundTrip) {
  const std::string path = temp_file("cli_it_gen.lri");
  const auto gen = run_command("gen chain 8 1 " + path);
  EXPECT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("Graph(n=8, m=7)"), std::string::npos) << gen.output;

  const auto info = run_command("info " + path);
  EXPECT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("bad nodes   : 7"), std::string::npos) << info.output;
  EXPECT_NE(info.output.find("acyclic     : yes"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(CliIntegrationTest, RunProducesDotAndConverges) {
  const std::string path = temp_file("cli_it_run.lri");
  ASSERT_EQ(run_command("gen random 12 3 " + path).exit_code, 0);
  for (const std::string algo : {"pr", "newpr", "fr"}) {
    const auto run = run_command("run " + path + " " + algo + " lowest");
    EXPECT_EQ(run.exit_code, 0) << algo << ": " << run.output;
    EXPECT_NE(run.output.find("destination_oriented=yes"), std::string::npos) << run.output;
    EXPECT_NE(run.output.find("digraph G {"), std::string::npos) << run.output;
  }
  std::filesystem::remove(path);
}

TEST_F(CliIntegrationTest, ModelCheckReportsAcyclicEverywhere) {
  const std::string path = temp_file("cli_it_mc.lri");
  ASSERT_EQ(run_command("gen star 7 1 " + path).exit_code, 0);
  const auto mc = run_command("modelcheck " + path + " pr");
  EXPECT_EQ(mc.exit_code, 0) << mc.output;
  EXPECT_NE(mc.output.find("acyclic everywhere   : yes"), std::string::npos) << mc.output;
  std::filesystem::remove(path);
}

TEST_F(CliIntegrationTest, SweepIsDeterministicAcrossThreadCounts) {
  const std::string spec_path = temp_file("cli_it_sweep.sweep");
  {
    // 2 x 2 x 3 x 2 x 3 = 72 runs >= the 50-run acceptance floor.
    std::ofstream spec(spec_path);
    spec << "topology  = chain, random\n"
            "size      = 8, 16\n"
            "algorithm = fr, pr, newpr\n"
            "scheduler = lowest, random\n"
            "seed      = 1..3\n";
  }
  const std::string records1 = temp_file("cli_it_sweep1.csv");
  const std::string records4 = temp_file("cli_it_sweep4.csv");
  const auto serial = run_command("sweep " + spec_path + " --threads 1 --records " + records1);
  EXPECT_EQ(serial.exit_code, 0) << serial.output;
  const auto parallel = run_command("sweep " + spec_path + " --threads 4 --records " + records4);
  EXPECT_EQ(parallel.exit_code, 0) << parallel.output;

  // Identical aggregate CSV modulo the stderr progress lines, which are
  // excluded from the contract: "sweep:" reports thread count and wall
  // time, and "cache:" reports hit/miss counters that legitimately vary
  // with thread count (concurrent misses on one key race to build it).
  const auto strip_progress = [](const std::string& output) {
    std::string kept;
    std::istringstream iss(output);
    std::string line;
    while (std::getline(iss, line)) {
      if (line.rfind("sweep:", 0) != 0 && line.rfind("cache:", 0) != 0) kept += line + "\n";
    }
    return kept;
  };
  EXPECT_EQ(strip_progress(serial.output), strip_progress(parallel.output));
  EXPECT_NE(serial.output.find("72 runs"), std::string::npos) << serial.output;
  EXPECT_NE(serial.output.find("topology,size,algorithm,scheduler,runs"), std::string::npos);

  std::ifstream r1(records1), r4(records4);
  std::stringstream s1, s4;
  s1 << r1.rdbuf();
  s4 << r4.rdbuf();
  const std::string csv1 = s1.str();
  const std::string csv4 = s4.str();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  // 72 record rows + header.
  EXPECT_EQ(std::count(csv1.begin(), csv1.end(), '\n'), 73);

  std::filesystem::remove(spec_path);
  std::filesystem::remove(records1);
  std::filesystem::remove(records4);
}

TEST_F(CliIntegrationTest, SweepWritesJsonAndRejectsBadSpec) {
  const std::string spec_path = temp_file("cli_it_sweep_bad.sweep");
  {
    std::ofstream spec(spec_path);
    spec << "topology = moebius\nsize = 8\nalgorithm = pr\n";
  }
  const auto bad = run_command("sweep " + spec_path);
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.output.find("error:"), std::string::npos) << bad.output;
  {
    std::ofstream spec(spec_path);
    spec << "topology = chain\nsize = 8\nalgorithm = pr\n";
  }
  const std::string json_path = temp_file("cli_it_sweep.json");
  const auto good = run_command("sweep " + spec_path + " --json " + json_path);
  EXPECT_EQ(good.exit_code, 0) << good.output;
  std::ifstream json(json_path);
  std::stringstream contents;
  contents << json.rdbuf();
  EXPECT_NE(contents.str().find("\"algorithm\": \"pr\""), std::string::npos) << contents.str();
  EXPECT_EQ(run_command("sweep /definitely/not/here.sweep").exit_code, 1);
  EXPECT_EQ(run_command("sweep " + spec_path + " --bogus 1").exit_code, 2);
  std::filesystem::remove(spec_path);
  std::filesystem::remove(json_path);
}

TEST_F(CliIntegrationTest, UsageOnBadArguments) {
  EXPECT_EQ(run_command("").exit_code, 2);
  EXPECT_EQ(run_command("frobnicate").exit_code, 2);
  EXPECT_EQ(run_command("gen bogus-family 8 1 /tmp/x.lri").exit_code, 2);
}

TEST_F(CliIntegrationTest, GracefulErrorOnMissingFile) {
  const auto result = run_command("info /definitely/not/here.lri");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("error:"), std::string::npos);
}

// Lines outside the sweep determinism contract: "sweep:"/"cache:" vary
// with deployment and timing, "note:" reports worker clamping, and
// "shard N retry:" reports absorbed worker crashes.
std::string strip_sweep_progress(const std::string& output) {
  std::string kept;
  std::istringstream iss(output);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.rfind("sweep:", 0) == 0 || line.rfind("cache:", 0) == 0 ||
        line.rfind("note:", 0) == 0 || line.rfind("shard ", 0) == 0) {
      continue;
    }
    kept += line + "\n";
  }
  return kept;
}

std::string write_small_sweep_spec(const char* name) {
  const std::string spec_path = temp_file(name);
  std::ofstream spec(spec_path);
  // 2 x 1 x 2 x 1 x 3 = 12 runs: small enough to stay fast, large
  // enough to spread across 4 worker processes.
  spec << "topology  = chain, random\n"
          "size      = 8\n"
          "algorithm = fr, pr\n"
          "seed      = 1..3\n";
  return spec_path;
}

TEST_F(CliIntegrationTest, SweepWorkerRejectsDirectInvocation) {
  // The sweep-worker subcommand is an internal argv contract between a
  // ProcessShardRunner parent and its children; invoked by a human (no
  // LR_SWEEP_WORKER handshake in the environment) it must refuse with a
  // clear pointer at the public flag instead of emitting binary frames.
  const auto result = run_command("sweep-worker --shard 0 --range 0:1 --total 1 --attempt 1");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("internal"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("--processes"), std::string::npos) << result.output;
  // Bare invocation too, not just one with plausible-looking flags.
  EXPECT_EQ(run_command("sweep-worker").exit_code, 2);
}

TEST_F(CliIntegrationTest, SweepProcessesFlagValidation) {
  const std::string spec_path = write_small_sweep_spec("cli_it_procs_val.sweep");
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes 0").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes -1").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes two").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --retries -1").exit_code, 2);
  std::filesystem::remove(spec_path);
}

TEST_F(CliIntegrationTest, SweepMultiProcessMatchesSingleProcessByteForByte) {
  const std::string spec_path = write_small_sweep_spec("cli_it_procs.sweep");
  const std::string records1 = temp_file("cli_it_procs1.csv");
  const std::string records4 = temp_file("cli_it_procs4.csv");

  const auto single = run_command("sweep " + spec_path + " --threads 1 --records " + records1);
  EXPECT_EQ(single.exit_code, 0) << single.output;
  const auto sharded = run_command("sweep " + spec_path + " --processes 4 --records " + records4);
  EXPECT_EQ(sharded.exit_code, 0) << sharded.output;
  EXPECT_NE(sharded.output.find("4 process(es)"), std::string::npos) << sharded.output;

  EXPECT_EQ(strip_sweep_progress(single.output), strip_sweep_progress(sharded.output));

  std::ifstream r1(records1), r4(records4);
  std::stringstream s1, s4;
  s1 << r1.rdbuf();
  s4 << r4.rdbuf();
  EXPECT_FALSE(s1.str().empty());
  EXPECT_EQ(s1.str(), s4.str());

  std::filesystem::remove(spec_path);
  std::filesystem::remove(records1);
  std::filesystem::remove(records4);
}

TEST_F(CliIntegrationTest, SweepProcessesAboveRunCountClampsAndMatches) {
  const std::string spec_path = write_small_sweep_spec("cli_it_procs_clamp.sweep");
  const auto single = run_command("sweep " + spec_path + " --threads 1");
  ASSERT_EQ(single.exit_code, 0) << single.output;
  // 12 runs, 64 requested workers: the CLI must clamp (with a note),
  // run one worker per run, and still produce identical tables.
  const auto clamped = run_command("sweep " + spec_path + " --processes 64");
  EXPECT_EQ(clamped.exit_code, 0) << clamped.output;
  EXPECT_NE(clamped.output.find("note: --processes 64 clamped to 12"), std::string::npos)
      << clamped.output;
  EXPECT_EQ(strip_sweep_progress(single.output), strip_sweep_progress(clamped.output));
  std::filesystem::remove(spec_path);
}

TEST_F(CliIntegrationTest, RunRejectsUnknownScheduler) {
  const std::string path = temp_file("cli_it_sched.lri");
  ASSERT_EQ(run_command("gen chain 5 1 " + path).exit_code, 0);
  EXPECT_EQ(run_command("run " + path + " pr teleport").exit_code, 2);
  std::filesystem::remove(path);
}

// Lines outside the serve determinism contract: the "serve:" stderr
// line carries wall-clock throughput (run_command merges stderr into
// stdout, so strip it before comparing reports).
std::string strip_serve_progress(const std::string& output) {
  std::string kept;
  std::istringstream iss(output);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.rfind("serve:", 0) != 0) kept += line + "\n";
  }
  return kept;
}

TEST_F(CliIntegrationTest, ServeFlagValidation) {
  EXPECT_EQ(run_command("serve").exit_code, 2);
  EXPECT_EQ(run_command("serve chain").exit_code, 2);
  EXPECT_EQ(run_command("serve moebius 8").exit_code, 2);    // unknown topology
  EXPECT_EQ(run_command("serve chain 0").exit_code, 2);      // empty service
  EXPECT_EQ(run_command("serve chain eight").exit_code, 2);  // non-numeric size
  EXPECT_EQ(run_command("serve chain 8 --workload batch").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --scheduler calendar").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --clients 0").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --clients two").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --duration -5").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --clients").exit_code, 2);  // missing value
  EXPECT_EQ(run_command("serve chain 8 --bogus 1").exit_code, 2);
}

TEST_F(CliIntegrationTest, ServeReportsTheLatencySchema) {
  const auto result = run_command("serve random 16 --clients 4 --duration 64 --seed 2");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  const std::string report = strip_serve_progress(result.output);
  // Header row, then one row per kind plus the merged "all" row.
  EXPECT_EQ(report.rfind("kind,issued,completed,failed,p50,p99,p999,mean,max,hops,fingerprint",
                         0),
            0u)
      << report;
  EXPECT_NE(report.find("\nroute,"), std::string::npos) << report;
  EXPECT_NE(report.find("\nlock,"), std::string::npos) << report;
  EXPECT_NE(report.find("\nleader,"), std::string::npos) << report;
  EXPECT_NE(report.find("\nall,"), std::string::npos) << report;
  // The stderr line reports wall-clock throughput and churn accounting.
  EXPECT_NE(result.output.find("serve:"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("req/s"), std::string::npos) << result.output;
}

TEST_F(CliIntegrationTest, ServeReportIsDeploymentInvariant) {
  const std::string args = "serve random 24 --clients 6 --duration 96 --seed 5 --churn 8";
  const auto reference = run_command(args);
  ASSERT_EQ(reference.exit_code, 0) << reference.output;
  const std::string expected = strip_serve_progress(reference.output);
  for (const std::string& variant :
       {args + " --threads 4", args + " --scheduler wheel", args + " --threads 2 --scheduler wheel"}) {
    const auto result = run_command(variant);
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_EQ(strip_serve_progress(result.output), expected) << variant;
  }
}

TEST_F(CliIntegrationTest, ServeWritesJsonReport) {
  const std::string json_path = temp_file("cli_it_serve.json");
  const auto result =
      run_command("serve chain 12 --clients 4 --duration 64 --json " + json_path);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  std::ifstream json(json_path);
  std::stringstream contents;
  contents << json.rdbuf();
  EXPECT_NE(contents.str().find("\"kind\": \"route\""), std::string::npos) << contents.str();
  EXPECT_NE(contents.str().find("\"kind\": \"all\""), std::string::npos) << contents.str();
  EXPECT_NE(contents.str().find("\"p99\""), std::string::npos) << contents.str();
  std::filesystem::remove(json_path);
}

TEST_F(CliIntegrationTest, ServiceSweepShardsMatchSingleProcessByteForByte) {
  const std::string spec_path = temp_file("cli_it_service.sweep");
  {
    std::ofstream spec(spec_path);
    spec << "topology  = chain, random\n"
            "size      = 12\n"
            "algorithm = service\n"
            "seed      = 1..3\n"
            "sim_threads = 2\n"
            "service_clients = 4\n"
            "service_duration = 64\n";
  }
  const std::string records1 = temp_file("cli_it_service1.csv");
  const std::string records2 = temp_file("cli_it_service2.csv");
  const auto single = run_command("sweep " + spec_path + " --threads 1 --records " + records1);
  EXPECT_EQ(single.exit_code, 0) << single.output;
  const auto sharded = run_command("sweep " + spec_path + " --processes 2 --records " + records2);
  EXPECT_EQ(sharded.exit_code, 0) << sharded.output;

  EXPECT_EQ(strip_sweep_progress(single.output), strip_sweep_progress(sharded.output));

  std::ifstream r1(records1), r2(records2);
  std::stringstream s1, s2;
  s1 << r1.rdbuf();
  s2 << r2.rdbuf();
  EXPECT_FALSE(s1.str().empty());
  EXPECT_EQ(s1.str(), s2.str());
  // The record CSV must carry the service fingerprint (dummy_steps
  // column) so shard-merge identity pins the full histograms.
  EXPECT_NE(s1.str().find("service"), std::string::npos);

  std::filesystem::remove(spec_path);
  std::filesystem::remove(records1);
  std::filesystem::remove(records2);
}

}  // namespace

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

/// End-to-end integration tests for the lr_cli binary: generate an
/// instance file, inspect it, run algorithms over it, and model-check it —
/// all through the real command-line interface.  The binary path is
/// injected by CMake as LR_CLI_PATH.

#ifndef LR_CLI_PATH
#error "LR_CLI_PATH must be defined by the build system ($<TARGET_FILE:lr_cli>)"
#endif

namespace {

// A missing binary must FAIL each test, not skip it: a fatal failure in a
// global Environment::SetUp makes gtest emit "[  SKIPPED ]", which matches
// the SKIP_REGULAR_EXPRESSION that gtest_discover_tests registers, so CTest
// would report the suite green. A fixture SetUp failure marks tests failed.
class CliIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(std::filesystem::exists(LR_CLI_PATH))
        << "lr_cli binary not found at LR_CLI_PATH=" << LR_CLI_PATH
        << "; build the lr_cli target first";
  }
};

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_command(const std::string& args) {
  const std::string command = std::string(LR_CLI_PATH) + " " + args + " 2>&1";
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), std::move(output)};
}

std::string temp_file(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST_F(CliIntegrationTest, GenInfoRoundTrip) {
  const std::string path = temp_file("cli_it_gen.lri");
  const auto gen = run_command("gen chain 8 1 " + path);
  EXPECT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("Graph(n=8, m=7)"), std::string::npos) << gen.output;

  const auto info = run_command("info " + path);
  EXPECT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("bad nodes   : 7"), std::string::npos) << info.output;
  EXPECT_NE(info.output.find("acyclic     : yes"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(CliIntegrationTest, RunProducesDotAndConverges) {
  const std::string path = temp_file("cli_it_run.lri");
  ASSERT_EQ(run_command("gen random 12 3 " + path).exit_code, 0);
  for (const std::string algo : {"pr", "newpr", "fr"}) {
    const auto run = run_command("run " + path + " " + algo + " lowest");
    EXPECT_EQ(run.exit_code, 0) << algo << ": " << run.output;
    EXPECT_NE(run.output.find("destination_oriented=yes"), std::string::npos) << run.output;
    EXPECT_NE(run.output.find("digraph G {"), std::string::npos) << run.output;
  }
  std::filesystem::remove(path);
}

TEST_F(CliIntegrationTest, ModelCheckReportsAcyclicEverywhere) {
  const std::string path = temp_file("cli_it_mc.lri");
  ASSERT_EQ(run_command("gen star 7 1 " + path).exit_code, 0);
  const auto mc = run_command("modelcheck " + path + " pr");
  EXPECT_EQ(mc.exit_code, 0) << mc.output;
  EXPECT_NE(mc.output.find("acyclic everywhere   : yes"), std::string::npos) << mc.output;
  std::filesystem::remove(path);
}

TEST_F(CliIntegrationTest, SweepIsDeterministicAcrossThreadCounts) {
  const std::string spec_path = temp_file("cli_it_sweep.sweep");
  {
    // 2 x 2 x 3 x 2 x 3 = 72 runs >= the 50-run acceptance floor.
    std::ofstream spec(spec_path);
    spec << "topology  = chain, random\n"
            "size      = 8, 16\n"
            "algorithm = fr, pr, newpr\n"
            "scheduler = lowest, random\n"
            "seed      = 1..3\n";
  }
  const std::string records1 = temp_file("cli_it_sweep1.csv");
  const std::string records4 = temp_file("cli_it_sweep4.csv");
  const auto serial = run_command("sweep " + spec_path + " --threads 1 --records " + records1);
  EXPECT_EQ(serial.exit_code, 0) << serial.output;
  const auto parallel = run_command("sweep " + spec_path + " --threads 4 --records " + records4);
  EXPECT_EQ(parallel.exit_code, 0) << parallel.output;

  // Identical aggregate CSV modulo the stderr progress lines, which are
  // excluded from the contract: "sweep:" reports thread count and wall
  // time, and "cache:" reports hit/miss counters that legitimately vary
  // with thread count (concurrent misses on one key race to build it).
  const auto strip_progress = [](const std::string& output) {
    std::string kept;
    std::istringstream iss(output);
    std::string line;
    while (std::getline(iss, line)) {
      if (line.rfind("sweep:", 0) != 0 && line.rfind("cache:", 0) != 0) kept += line + "\n";
    }
    return kept;
  };
  EXPECT_EQ(strip_progress(serial.output), strip_progress(parallel.output));
  EXPECT_NE(serial.output.find("72 runs"), std::string::npos) << serial.output;
  EXPECT_NE(serial.output.find("topology,size,algorithm,scheduler,runs"), std::string::npos);

  std::ifstream r1(records1), r4(records4);
  std::stringstream s1, s4;
  s1 << r1.rdbuf();
  s4 << r4.rdbuf();
  const std::string csv1 = s1.str();
  const std::string csv4 = s4.str();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  // 72 record rows + header.
  EXPECT_EQ(std::count(csv1.begin(), csv1.end(), '\n'), 73);

  std::filesystem::remove(spec_path);
  std::filesystem::remove(records1);
  std::filesystem::remove(records4);
}

TEST_F(CliIntegrationTest, SweepWritesJsonAndRejectsBadSpec) {
  const std::string spec_path = temp_file("cli_it_sweep_bad.sweep");
  {
    std::ofstream spec(spec_path);
    spec << "topology = moebius\nsize = 8\nalgorithm = pr\n";
  }
  const auto bad = run_command("sweep " + spec_path);
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.output.find("error:"), std::string::npos) << bad.output;
  {
    std::ofstream spec(spec_path);
    spec << "topology = chain\nsize = 8\nalgorithm = pr\n";
  }
  const std::string json_path = temp_file("cli_it_sweep.json");
  const auto good = run_command("sweep " + spec_path + " --json " + json_path);
  EXPECT_EQ(good.exit_code, 0) << good.output;
  std::ifstream json(json_path);
  std::stringstream contents;
  contents << json.rdbuf();
  EXPECT_NE(contents.str().find("\"algorithm\": \"pr\""), std::string::npos) << contents.str();
  EXPECT_EQ(run_command("sweep /definitely/not/here.sweep").exit_code, 1);
  EXPECT_EQ(run_command("sweep " + spec_path + " --bogus 1").exit_code, 2);
  std::filesystem::remove(spec_path);
  std::filesystem::remove(json_path);
}

TEST_F(CliIntegrationTest, UsageOnBadArguments) {
  EXPECT_EQ(run_command("").exit_code, 2);
  EXPECT_EQ(run_command("frobnicate").exit_code, 2);
  EXPECT_EQ(run_command("gen bogus-family 8 1 /tmp/x.lri").exit_code, 2);
}

TEST_F(CliIntegrationTest, GracefulErrorOnMissingFile) {
  const auto result = run_command("info /definitely/not/here.lri");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("error:"), std::string::npos);
}

// Lines outside the sweep determinism contract: "sweep:"/"cache:" vary
// with deployment and timing, "note:" reports worker clamping, and
// "shard N retry:" reports absorbed worker crashes.
std::string strip_sweep_progress(const std::string& output) {
  std::string kept;
  std::istringstream iss(output);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.rfind("sweep:", 0) == 0 || line.rfind("cache:", 0) == 0 ||
        line.rfind("note:", 0) == 0 || line.rfind("shard ", 0) == 0) {
      continue;
    }
    kept += line + "\n";
  }
  return kept;
}

std::string write_small_sweep_spec(const char* name) {
  const std::string spec_path = temp_file(name);
  std::ofstream spec(spec_path);
  // 2 x 1 x 2 x 1 x 3 = 12 runs: small enough to stay fast, large
  // enough to spread across 4 worker processes.
  spec << "topology  = chain, random\n"
          "size      = 8\n"
          "algorithm = fr, pr\n"
          "seed      = 1..3\n";
  return spec_path;
}

TEST_F(CliIntegrationTest, SweepWorkerRejectsDirectInvocation) {
  // The sweep-worker subcommand is an internal argv contract between a
  // ProcessShardRunner parent and its children; invoked by a human (no
  // LR_SWEEP_WORKER handshake in the environment) it must refuse with a
  // clear pointer at the public flag instead of emitting binary frames.
  const auto result = run_command("sweep-worker --shard 0 --range 0:1 --total 1 --attempt 1");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("internal"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("--processes"), std::string::npos) << result.output;
  // Bare invocation too, not just one with plausible-looking flags.
  EXPECT_EQ(run_command("sweep-worker").exit_code, 2);
}

TEST_F(CliIntegrationTest, SweepProcessesFlagValidation) {
  const std::string spec_path = write_small_sweep_spec("cli_it_procs_val.sweep");
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes 0").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes -1").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes two").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --processes").exit_code, 2);
  EXPECT_EQ(run_command("sweep " + spec_path + " --retries -1").exit_code, 2);
  std::filesystem::remove(spec_path);
}

TEST_F(CliIntegrationTest, SweepMultiProcessMatchesSingleProcessByteForByte) {
  const std::string spec_path = write_small_sweep_spec("cli_it_procs.sweep");
  const std::string records1 = temp_file("cli_it_procs1.csv");
  const std::string records4 = temp_file("cli_it_procs4.csv");

  const auto single = run_command("sweep " + spec_path + " --threads 1 --records " + records1);
  EXPECT_EQ(single.exit_code, 0) << single.output;
  const auto sharded = run_command("sweep " + spec_path + " --processes 4 --records " + records4);
  EXPECT_EQ(sharded.exit_code, 0) << sharded.output;
  EXPECT_NE(sharded.output.find("4 process(es)"), std::string::npos) << sharded.output;

  EXPECT_EQ(strip_sweep_progress(single.output), strip_sweep_progress(sharded.output));

  std::ifstream r1(records1), r4(records4);
  std::stringstream s1, s4;
  s1 << r1.rdbuf();
  s4 << r4.rdbuf();
  EXPECT_FALSE(s1.str().empty());
  EXPECT_EQ(s1.str(), s4.str());

  std::filesystem::remove(spec_path);
  std::filesystem::remove(records1);
  std::filesystem::remove(records4);
}

TEST_F(CliIntegrationTest, SweepProcessesAboveRunCountClampsAndMatches) {
  const std::string spec_path = write_small_sweep_spec("cli_it_procs_clamp.sweep");
  const auto single = run_command("sweep " + spec_path + " --threads 1");
  ASSERT_EQ(single.exit_code, 0) << single.output;
  // 12 runs, 64 requested workers: the CLI must clamp (with a note),
  // run one worker per run, and still produce identical tables.
  const auto clamped = run_command("sweep " + spec_path + " --processes 64");
  EXPECT_EQ(clamped.exit_code, 0) << clamped.output;
  EXPECT_NE(clamped.output.find("note: --processes 64 clamped to 12"), std::string::npos)
      << clamped.output;
  EXPECT_EQ(strip_sweep_progress(single.output), strip_sweep_progress(clamped.output));
  std::filesystem::remove(spec_path);
}

TEST_F(CliIntegrationTest, RunRejectsUnknownScheduler) {
  const std::string path = temp_file("cli_it_sched.lri");
  ASSERT_EQ(run_command("gen chain 5 1 " + path).exit_code, 0);
  EXPECT_EQ(run_command("run " + path + " pr teleport").exit_code, 2);
  std::filesystem::remove(path);
}

// Lines outside the serve determinism contract: the "serve:" stderr
// line carries wall-clock throughput (run_command merges stderr into
// stdout, so strip it before comparing reports).
std::string strip_serve_progress(const std::string& output) {
  std::string kept;
  std::istringstream iss(output);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.rfind("serve:", 0) != 0) kept += line + "\n";
  }
  return kept;
}

TEST_F(CliIntegrationTest, ServeFlagValidation) {
  EXPECT_EQ(run_command("serve").exit_code, 2);
  EXPECT_EQ(run_command("serve chain").exit_code, 2);
  EXPECT_EQ(run_command("serve moebius 8").exit_code, 2);    // unknown topology
  EXPECT_EQ(run_command("serve chain 0").exit_code, 2);      // empty service
  EXPECT_EQ(run_command("serve chain eight").exit_code, 2);  // non-numeric size
  EXPECT_EQ(run_command("serve chain 8 --workload batch").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --scheduler calendar").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --clients 0").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --clients two").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --duration -5").exit_code, 2);
  EXPECT_EQ(run_command("serve chain 8 --clients").exit_code, 2);  // missing value
  EXPECT_EQ(run_command("serve chain 8 --bogus 1").exit_code, 2);
}

TEST_F(CliIntegrationTest, ServeReportsTheLatencySchema) {
  const auto result = run_command("serve random 16 --clients 4 --duration 64 --seed 2");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  const std::string report = strip_serve_progress(result.output);
  // Header row, then one row per kind plus the merged "all" row.
  EXPECT_EQ(report.rfind("kind,issued,completed,failed,p50,p99,p999,mean,max,hops,fingerprint",
                         0),
            0u)
      << report;
  EXPECT_NE(report.find("\nroute,"), std::string::npos) << report;
  EXPECT_NE(report.find("\nlock,"), std::string::npos) << report;
  EXPECT_NE(report.find("\nleader,"), std::string::npos) << report;
  EXPECT_NE(report.find("\nall,"), std::string::npos) << report;
  // The stderr line reports wall-clock throughput and churn accounting.
  EXPECT_NE(result.output.find("serve:"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("req/s"), std::string::npos) << result.output;
}

TEST_F(CliIntegrationTest, ServeReportIsDeploymentInvariant) {
  const std::string args = "serve random 24 --clients 6 --duration 96 --seed 5 --churn 8";
  const auto reference = run_command(args);
  ASSERT_EQ(reference.exit_code, 0) << reference.output;
  const std::string expected = strip_serve_progress(reference.output);
  for (const std::string& variant :
       {args + " --threads 4", args + " --scheduler wheel", args + " --threads 2 --scheduler wheel"}) {
    const auto result = run_command(variant);
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_EQ(strip_serve_progress(result.output), expected) << variant;
  }
}

TEST_F(CliIntegrationTest, ServeWritesJsonReport) {
  const std::string json_path = temp_file("cli_it_serve.json");
  const auto result =
      run_command("serve chain 12 --clients 4 --duration 64 --json " + json_path);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  std::ifstream json(json_path);
  std::stringstream contents;
  contents << json.rdbuf();
  EXPECT_NE(contents.str().find("\"kind\": \"route\""), std::string::npos) << contents.str();
  EXPECT_NE(contents.str().find("\"kind\": \"all\""), std::string::npos) << contents.str();
  EXPECT_NE(contents.str().find("\"p99\""), std::string::npos) << contents.str();
  std::filesystem::remove(json_path);
}

TEST_F(CliIntegrationTest, ServiceSweepShardsMatchSingleProcessByteForByte) {
  const std::string spec_path = temp_file("cli_it_service.sweep");
  {
    std::ofstream spec(spec_path);
    spec << "topology  = chain, random\n"
            "size      = 12\n"
            "algorithm = service\n"
            "seed      = 1..3\n"
            "sim_threads = 2\n"
            "service_clients = 4\n"
            "service_duration = 64\n";
  }
  const std::string records1 = temp_file("cli_it_service1.csv");
  const std::string records2 = temp_file("cli_it_service2.csv");
  const auto single = run_command("sweep " + spec_path + " --threads 1 --records " + records1);
  EXPECT_EQ(single.exit_code, 0) << single.output;
  const auto sharded = run_command("sweep " + spec_path + " --processes 2 --records " + records2);
  EXPECT_EQ(sharded.exit_code, 0) << sharded.output;

  EXPECT_EQ(strip_sweep_progress(single.output), strip_sweep_progress(sharded.output));

  std::ifstream r1(records1), r2(records2);
  std::stringstream s1, s2;
  s1 << r1.rdbuf();
  s2 << r2.rdbuf();
  EXPECT_FALSE(s1.str().empty());
  EXPECT_EQ(s1.str(), s2.str());
  // The record CSV must carry the service fingerprint (dummy_steps
  // column) so shard-merge identity pins the full histograms.
  EXPECT_NE(s1.str().find("service"), std::string::npos);

  std::filesystem::remove(spec_path);
  std::filesystem::remove(records1);
  std::filesystem::remove(records2);
}

// ---------------------------------------------------------------------------
// Multi-host sweep: --hosts / --shard-log / shard-server
// ---------------------------------------------------------------------------

TEST_F(CliIntegrationTest, SweepHostsFlagValidation) {
  const std::string spec_path = write_small_sweep_spec("cli_it_hosts_val.sweep");
  // Malformed endpoint lists: exit 2 and name the offending entry.
  const auto missing_port = run_command("sweep " + spec_path + " --hosts hostonly");
  EXPECT_EQ(missing_port.exit_code, 2);
  EXPECT_NE(missing_port.output.find("hostonly"), std::string::npos) << missing_port.output;
  for (const std::string hosts :
       {"a:0", "a:65536", "a:port", ":9000", "a:9000*0", "a:9000*1025", "a:9000,,b:9001", ""}) {
    const auto result = run_command("sweep " + spec_path + " --hosts '" + hosts + "'");
    EXPECT_EQ(result.exit_code, 2) << "--hosts '" << hosts << "' accepted: " << result.output;
  }
  // Remote workers have no shared filesystem: snapshots cannot compose.
  const auto with_snapshots =
      run_command("sweep " + spec_path + " --hosts 127.0.0.1:9000 --snapshot-dir /tmp/x");
  EXPECT_EQ(with_snapshots.exit_code, 2);
  EXPECT_NE(with_snapshots.output.find("--snapshot-dir"), std::string::npos)
      << with_snapshots.output;
  std::filesystem::remove(spec_path);
}

TEST_F(CliIntegrationTest, SweepShardLogRequiresShardedBackend) {
  const std::string spec_path = write_small_sweep_spec("cli_it_shardlog_val.sweep");
  const auto in_process = run_command("sweep " + spec_path + " --shard-log -");
  EXPECT_EQ(in_process.exit_code, 2);
  EXPECT_NE(in_process.output.find("--shard-log"), std::string::npos) << in_process.output;
  // With a sharded backend the same flag is accepted and produces the
  // per-attempt CSV (on stderr for `-`).
  const auto sharded = run_command("sweep " + spec_path + " --processes 2 --shard-log -");
  EXPECT_EQ(sharded.exit_code, 0) << sharded.output;
  EXPECT_NE(sharded.output.find("shard,attempt,endpoint,outcome"), std::string::npos)
      << sharded.output;
  std::filesystem::remove(spec_path);
}

TEST_F(CliIntegrationTest, ShardServerArgvValidation) {
  EXPECT_EQ(run_command("shard-server").exit_code, 2);
  EXPECT_EQ(run_command("shard-server --listen 0").exit_code, 2);
  EXPECT_EQ(run_command("shard-server --listen 70000").exit_code, 2);
  EXPECT_EQ(run_command("shard-server --listen a_port").exit_code, 2);
  EXPECT_EQ(run_command("shard-server --listen").exit_code, 2);
  EXPECT_EQ(run_command("shard-server --listen 9000 --unknown x").exit_code, 2);
}

/// Fork/execs a real `lr_cli shard-server --listen <port>` daemon and
/// waits until it accepts connections.  Returns the child pid, or -1.
pid_t spawn_shard_server(std::uint16_t port) {
  const pid_t pid = fork();
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::dup2(null_fd, STDERR_FILENO);
      ::close(null_fd);
    }
    ::execl(LR_CLI_PATH, LR_CLI_PATH, "shard-server", "--listen",
            std::to_string(port).c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  if (pid < 0) return -1;
  // Readiness probe: connect until accepted (bounded, never a hang).
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    const bool up = ::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) == 0;
    ::close(fd);
    if (up) return pid;
    usleep(50'000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

void stop_shard_server(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGTERM);
  ::waitpid(pid, nullptr, 0);
}

TEST_F(CliIntegrationTest, SweepHostsMatchesProcessesByteForByte) {
  const std::string spec_path = write_small_sweep_spec("cli_it_hosts_e2e.sweep");
  const std::string records_local = temp_file("cli_it_hosts_local.csv");
  const std::string records_tcp = temp_file("cli_it_hosts_tcp.csv");
  const std::string shard_log = temp_file("cli_it_hosts_shards.csv");

  // Ports in the dynamic range, offset by pid so parallel CI jobs on one
  // host do not collide.
  const std::uint16_t base = static_cast<std::uint16_t>(40000 + (getpid() % 10000));
  const pid_t server1 = spawn_shard_server(base);
  const pid_t server2 = spawn_shard_server(static_cast<std::uint16_t>(base + 1));
  ASSERT_GT(server1, 0) << "shard-server on port " << base << " did not come up";
  ASSERT_GT(server2, 0) << "shard-server on port " << base + 1 << " did not come up";

  const auto local =
      run_command("sweep " + spec_path + " --processes 1 --records " + records_local);
  EXPECT_EQ(local.exit_code, 0) << local.output;
  const auto remote = run_command(
      "sweep " + spec_path + " --hosts 127.0.0.1:" + std::to_string(base) + "*2,127.0.0.1:" +
      std::to_string(base + 1) + "*2 --records " + records_tcp + " --shard-log " + shard_log);
  stop_shard_server(server1);
  stop_shard_server(server2);
  EXPECT_EQ(remote.exit_code, 0) << remote.output;
  EXPECT_NE(remote.output.find("2 host(s) x 4 worker(s)"), std::string::npos) << remote.output;

  EXPECT_EQ(strip_sweep_progress(local.output), strip_sweep_progress(remote.output));
  std::ifstream r_local(records_local), r_tcp(records_tcp);
  std::stringstream s_local, s_tcp;
  s_local << r_local.rdbuf();
  s_tcp << r_tcp.rdbuf();
  EXPECT_FALSE(s_local.str().empty());
  EXPECT_EQ(s_local.str(), s_tcp.str());

  std::ifstream log(shard_log);
  std::stringstream log_contents;
  log_contents << log.rdbuf();
  EXPECT_NE(log_contents.str().find("shard,attempt,endpoint,outcome"), std::string::npos)
      << log_contents.str();
  EXPECT_NE(log_contents.str().find("127.0.0.1:" + std::to_string(base)), std::string::npos)
      << log_contents.str();
  EXPECT_NE(log_contents.str().find(",\"ok\","), std::string::npos) << log_contents.str();

  std::filesystem::remove(spec_path);
  std::filesystem::remove(records_local);
  std::filesystem::remove(records_tcp);
  std::filesystem::remove(shard_log);
}

TEST_F(CliIntegrationTest, SweepHostsAllDeadFailsLoudlyWithoutFallback) {
  const std::string spec_path = write_small_sweep_spec("cli_it_hosts_dead.sweep");
  // Port 1 on loopback: connects are refused, the sweep must fail with
  // a readable diagnosis, and must not hang (the 60 s timeout of this
  // test binary is the backstop).
  const auto result = run_command("sweep " + spec_path + " --hosts 127.0.0.1:1");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("multi-host sweep failed"), std::string::npos) << result.output;
  std::filesystem::remove(spec_path);
}

}  // namespace

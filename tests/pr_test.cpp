#include "core/pr.hpp"

#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/invariants.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

/// 0 -> 1 -> 2 with destination 0: nodes 1, 2 are bad, node 2 is the sink.
Instance chain3_away() { return make_worst_case_chain(3); }

TEST(PRTest, InitialListsEmpty) {
  Instance inst = chain3_away();
  OneStepPRAutomaton pr(inst);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_TRUE(pr.list(u).empty());
    EXPECT_EQ(pr.list_size(u), 0u);
  }
}

TEST(PRTest, InitialNeighborSetsMatchInitialOrientation) {
  Instance inst = chain3_away();
  OneStepPRAutomaton pr(inst);
  EXPECT_EQ(pr.initial_in_neighbors(1), (std::vector<NodeId>{0}));
  EXPECT_EQ(pr.initial_out_neighbors(1), (std::vector<NodeId>{2}));
  EXPECT_EQ(pr.initial_in_neighbors(2), (std::vector<NodeId>{1}));
  EXPECT_TRUE(pr.initial_out_neighbors(2).empty());
}

TEST(PRTest, FirstStepReversesAllSinceListEmpty) {
  Instance inst = chain3_away();
  OneStepPRAutomaton pr(inst);
  ASSERT_TRUE(pr.enabled(2));
  pr.apply(2);
  // Edge {1,2} now points 2 -> 1; node 1 learned that 2 reversed.
  EXPECT_EQ(pr.orientation().dir(2, 1), Dir::kOut);
  EXPECT_EQ(pr.list(1), (std::vector<NodeId>{2}));
  EXPECT_TRUE(pr.list(2).empty()) << "list[u] is emptied after u's own step";
}

TEST(PRTest, SecondStepSkipsListedNeighbors) {
  Instance inst = chain3_away();
  OneStepPRAutomaton pr(inst);
  pr.apply(2);
  ASSERT_TRUE(pr.enabled(1));
  pr.apply(1);
  // list[1] was {2}; 1 reverses only the edge to 0.
  EXPECT_EQ(pr.orientation().dir(1, 0), Dir::kOut);
  EXPECT_EQ(pr.orientation().dir(1, 2), Dir::kIn) << "edge to listed neighbor 2 not reversed";
  EXPECT_TRUE(pr.quiescent());
  EXPECT_TRUE(is_destination_oriented(pr.orientation(), 0));
}

TEST(PRTest, ListFullReversesEverything) {
  // Star with hub 1: 0 - 1 - 2 plus destination elsewhere.  Build a path
  // 0 <- 1 <- 2 ... simpler: two-node neighbors both reverse towards u.
  Graph g(3, {{0, 1}, {1, 2}});
  // 1 -> 0 and 1 -> 2: node 1 is a source, 0 and 2 are sinks.  Destination 0.
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kForward});
  OneStepPRAutomaton pr(g, std::move(o), 0);
  ASSERT_TRUE(pr.enabled(2));
  pr.apply(2);  // 2 reverses its only edge; list[1] = {2}
  EXPECT_EQ(pr.list(1), (std::vector<NodeId>{2}));
  // Now 1 is a sink (0 <- 1 is out... edge {0,1} points 1->0, so 1 has an
  // out-edge and is not a sink).  Force the scenario where list[u] = nbrs_u
  // with a dedicated graph instead:
  Graph g2(2, {{0, 1}});
  Orientation o2(g2, {EdgeSense::kForward});  // 0 -> 1, destination 0
  OneStepPRAutomaton pr2(g2, std::move(o2), 0);
  pr2.apply(1);  // list empty != nbrs: reverse all anyway (nbrs \ {} = {0})
  EXPECT_EQ(pr2.orientation().dir(1, 0), Dir::kOut);
  EXPECT_TRUE(pr2.quiescent());
}

TEST(PRTest, ApplyThrowsWhenNotSink) {
  Instance inst = chain3_away();
  OneStepPRAutomaton pr(inst);
  EXPECT_FALSE(pr.enabled(1));
  EXPECT_THROW(pr.apply(1), std::logic_error);
  EXPECT_FALSE(pr.enabled(0)) << "destination never enabled";
  EXPECT_THROW(pr.apply(0), std::logic_error);
}

TEST(PRTest, EnabledSinksExcludesDestination) {
  Graph g(3, {{0, 1}, {1, 2}});
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kForward});  // 1->0, 1->2
  OneStepPRAutomaton pr(g, std::move(o), 0);
  EXPECT_EQ(pr.enabled_sinks(), (std::vector<NodeId>{2}));
}

TEST(PRTest, RunToQuiescenceOnWorstCaseChain) {
  Instance inst = make_worst_case_chain(10);
  OneStepPRAutomaton pr(inst);
  LowestIdScheduler scheduler;
  const RunResult result = run_to_quiescence(pr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
  EXPECT_TRUE(is_acyclic(pr.orientation()));
}

TEST(PRTest, SetAutomatonMaximalStepsMatchPaperSignature) {
  // The sink/source star starts with several simultaneous sinks, so the
  // maximal set scheduler fires true multi-node reverse(S) actions.
  Instance inst = make_sink_source_instance(9);
  PRAutomaton pr(inst);
  MaximalSetScheduler scheduler;
  const RunResult result = run_to_quiescence_set(pr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
  EXPECT_GT(result.node_steps, result.steps) << "some set step fired several sinks";
}

TEST(PRTest, SetActionRejectsDestinationAndNonSinks) {
  Instance inst = chain3_away();
  PRAutomaton pr(inst);
  EXPECT_FALSE(pr.enabled({}));
  EXPECT_FALSE(pr.enabled({0}));  // destination
  EXPECT_FALSE(pr.enabled({1}));  // not a sink
  EXPECT_TRUE(pr.enabled({2}));
}

TEST(PRTest, WorkOnAwayChainIsExactlyLinear) {
  // On the away-oriented chain PR fires every bad node exactly once (a
  // single reversal wave), i.e. n_b steps total — the dramatic win over
  // FR's n_b(n_b+1)/2 on the same instance that motivated the
  // Charron-Bost et al. comparison.  (PR's own Θ(n_b²) worst case needs a
  // different gadget; see bench_e2_work_bound.)
  const auto work = [](std::size_t n) {
    Instance inst = make_worst_case_chain(n);
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    run_to_quiescence(pr, scheduler);
    return pr.total_node_steps();
  };
  EXPECT_EQ(work(8), 7u);
  EXPECT_EQ(work(16), 15u);
  EXPECT_EQ(work(33), 32u);
}

TEST(PRTest, QuiescentStateStableAcrossSchedulers) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = make_random_instance(20, 10, rng);
    OneStepPRAutomaton a(inst);
    OneStepPRAutomaton b(inst);
    LowestIdScheduler s1;
    RandomScheduler s2(trial);
    const RunResult ra = run_to_quiescence(a, s1);
    const RunResult rb = run_to_quiescence(b, s2);
    EXPECT_TRUE(ra.destination_oriented);
    EXPECT_TRUE(rb.destination_oriented);
  }
}

TEST(PRTest, ListContainsAndSizeAgree) {
  Instance inst = make_worst_case_chain(5);
  OneStepPRAutomaton pr(inst);
  LowestIdScheduler scheduler;
  run_to_quiescence(pr, scheduler, [](const OneStepPRAutomaton& a, NodeId) {
    for (NodeId u = 0; u < a.graph().num_nodes(); ++u) {
      const auto list = a.list(u);
      EXPECT_EQ(list.size(), a.list_size(u));
      for (const NodeId v : list) {
        EXPECT_TRUE(a.list_contains(u, v));
      }
    }
  });
}

}  // namespace
}  // namespace lr

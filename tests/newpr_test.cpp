#include "core/newpr.hpp"

#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/invariants.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(NewPRTest, InitialCountsZeroAndParityEven) {
  Instance inst = make_worst_case_chain(4);
  NewPRAutomaton newpr(inst);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(newpr.count(u), 0u);
    EXPECT_EQ(newpr.parity(u), Parity::kEven);
  }
}

TEST(NewPRTest, EvenParityReversesInitialInNeighbors) {
  Instance inst = make_worst_case_chain(3);  // 0 -> 1 -> 2, D = 0
  NewPRAutomaton newpr(inst);
  ASSERT_TRUE(newpr.enabled(2));
  // in-nbrs_2 = {1}: the first (even) step reverses that edge.
  newpr.apply(2);
  EXPECT_EQ(newpr.orientation().dir(2, 1), Dir::kOut);
  EXPECT_EQ(newpr.count(2), 1u);
  EXPECT_EQ(newpr.parity(2), Parity::kOdd);
}

TEST(NewPRTest, DummyStepThenRealReversalOnInitialSource) {
  // Star: hub 0, leaves 1..4; even leaves start as sinks (hub -> leaf),
  // odd leaves as sources (leaf -> hub); destination is leaf 1.
  Instance inst = make_sink_source_instance(5);
  NewPRAutomaton newpr(inst);

  newpr.apply(2);  // even: reverse in-nbrs_2 = {0}
  newpr.apply(4);  // even: reverse in-nbrs_4 = {0}
  // Hub 0 now has all edges incoming: it fires and reverses its *initial*
  // in-neighbors, the odd leaves {1, 3}.
  ASSERT_TRUE(newpr.enabled(0));
  newpr.apply(0);
  EXPECT_EQ(newpr.orientation().dir(0, 1), Dir::kOut);
  EXPECT_EQ(newpr.orientation().dir(0, 3), Dir::kOut);
  EXPECT_EQ(newpr.orientation().dir(0, 2), Dir::kIn);

  // Leaf 3 (initial source, in-nbrs = {}) is now a sink with even parity:
  // its step is a dummy.
  ASSERT_TRUE(newpr.enabled(3));
  EXPECT_TRUE(newpr.would_be_dummy_step(3));
  newpr.apply(3);
  EXPECT_EQ(newpr.dummy_steps(), 1u);
  EXPECT_EQ(newpr.count(3), 1u);
  // Still a sink; parity now odd: the real reversal of out-nbrs_3 = {0}.
  ASSERT_TRUE(newpr.enabled(3));
  EXPECT_FALSE(newpr.would_be_dummy_step(3));
  newpr.apply(3);
  EXPECT_EQ(newpr.orientation().dir(3, 0), Dir::kOut);
  EXPECT_TRUE(newpr.quiescent());
  EXPECT_TRUE(is_destination_oriented(newpr.orientation(), inst.destination));
}

TEST(NewPRTest, DummyStepsOnInitialSourcesAndSinks) {
  Instance inst = make_sink_source_instance(9);
  NewPRAutomaton newpr(inst);
  RandomScheduler scheduler(123);
  const RunResult result = run_to_quiescence(newpr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
  EXPECT_GT(newpr.dummy_steps(), 0u) << "initial sinks/sources must take dummy steps";
}

TEST(NewPRTest, NoDummyStepsWhenNoInitialSinksOrSources) {
  // The away-oriented chain's interior nodes have both in- and out-nbrs;
  // only node n-1 (initial sink) and the destination are degenerate.  Use a
  // ring-like structure where every non-destination node has both:
  // chain oriented away has node n-1 as initial sink, so dummy steps do
  // occur there.  Check that interior nodes never take dummy steps.
  Instance inst = make_worst_case_chain(6);
  NewPRAutomaton newpr(inst);
  LowestIdScheduler scheduler;
  std::uint64_t dummy_before = 0;
  run_to_quiescence(newpr, scheduler, [&dummy_before](const NewPRAutomaton& a, NodeId fired) {
    if (fired != 5) {
      // Interior chain nodes have non-empty in- and out-sets: never dummy.
      EXPECT_EQ(a.dummy_steps(), dummy_before) << "node " << fired << " took a dummy step";
    }
    dummy_before = a.dummy_steps();
  });
}

TEST(NewPRTest, CountsMonotoneAndBoundedByNeighborPlusOne) {
  std::mt19937_64 rng(4);
  Instance inst = make_random_instance(15, 10, rng);
  NewPRAutomaton newpr(inst);
  RandomScheduler scheduler(5);
  run_to_quiescence(newpr, scheduler, [](const NewPRAutomaton& a, NodeId) {
    const Graph& g = a.graph();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto cu = a.count(g.edge_u(e));
      const auto cv = a.count(g.edge_v(e));
      EXPECT_LE(cu > cv ? cu - cv : cv - cu, 1u) << "Invariant 4.2(a)";
    }
  });
}

TEST(NewPRTest, AcyclicAtEveryStep) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst = make_random_instance(20, 12, rng);
    NewPRAutomaton newpr(inst);
    RandomScheduler scheduler(trial * 31 + 1);
    run_to_quiescence(newpr, scheduler, [](const NewPRAutomaton& a, NodeId) {
      ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
    });
  }
}

TEST(NewPRTest, TotalStepsCountsDummyAndReal) {
  Instance inst = make_sink_source_instance(7);
  NewPRAutomaton newpr(inst);
  RandomScheduler scheduler(9);
  const RunResult result = run_to_quiescence(newpr, scheduler);
  EXPECT_EQ(newpr.total_steps(), result.steps);
  EXPECT_LE(newpr.dummy_steps(), newpr.total_steps());
}

TEST(NewPRTest, ApplyThrowsWhenNotSink) {
  Instance inst = make_worst_case_chain(3);
  NewPRAutomaton newpr(inst);
  EXPECT_THROW(newpr.apply(1), std::logic_error);
  EXPECT_THROW(newpr.apply(0), std::logic_error);
}

TEST(NewPRTest, ConvergesOnGrids) {
  std::mt19937_64 rng(21);
  Instance inst = make_grid_instance(4, 5, rng);
  NewPRAutomaton newpr(inst);
  RoundRobinScheduler scheduler;
  const RunResult result = run_to_quiescence(newpr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
}

}  // namespace
}  // namespace lr

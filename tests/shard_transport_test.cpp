#include "runner/shard_transport.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/retry_policy.hpp"

/// Unit tests of the transport-layer plumbing that the multi-host sweep
/// dataplane rides on: the shared RetryPolicy backoff schedule
/// (runner/retry_policy.hpp), the `--hosts` endpoint-list parser, and
/// the LR_TEST_TRANSPORT_FAULT knob parser (runner/shard_transport.hpp).
/// The transports themselves are exercised end-to-end in
/// multi_host_runner_test.cpp and process_runner_test.cpp.

namespace lr {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicy, FirstAttemptNeverWaits) {
  const RetryPolicy policy;
  for (std::size_t shard = 0; shard < 8; ++shard) {
    EXPECT_EQ(policy.delay(shard, 0).count(), 0);
  }
}

TEST(RetryPolicy, DeterministicPureFunctionOfShardAndAttempt) {
  const RetryPolicy a;
  const RetryPolicy b;  // identical defaults => identical schedule
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (std::size_t attempt = 0; attempt < 6; ++attempt) {
      EXPECT_EQ(a.delay(shard, attempt), b.delay(shard, attempt))
          << "shard " << shard << " attempt " << attempt;
    }
  }
}

TEST(RetryPolicy, DelaysStayInsideTheJitterBand) {
  RetryPolicy policy;
  policy.initial_ms = 100;
  policy.cap_ms = 1'000;
  policy.jitter = 0.5;
  for (std::size_t shard = 0; shard < 16; ++shard) {
    for (std::size_t attempt = 1; attempt < 8; ++attempt) {
      const std::uint64_t base =
          std::min<std::uint64_t>(std::uint64_t{policy.initial_ms} << (attempt - 1),
                                  policy.cap_ms);
      const auto delay = policy.delay(shard, attempt).count();
      EXPECT_GE(delay, static_cast<long long>(base / 2) - 1)
          << "shard " << shard << " attempt " << attempt;
      EXPECT_LE(delay, static_cast<long long>(base)) << "shard " << shard << " attempt "
                                                     << attempt;
    }
  }
}

TEST(RetryPolicy, ZeroJitterIsExactExponentialBackoffWithCap) {
  RetryPolicy policy;
  policy.initial_ms = 25;
  policy.cap_ms = 200;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.delay(3, 1).count(), 25);
  EXPECT_EQ(policy.delay(3, 2).count(), 50);
  EXPECT_EQ(policy.delay(3, 3).count(), 100);
  EXPECT_EQ(policy.delay(3, 4).count(), 200);
  EXPECT_EQ(policy.delay(3, 5).count(), 200);  // capped from here on
  EXPECT_EQ(policy.delay(3, 20).count(), 200);
}

TEST(RetryPolicy, ZeroInitialDisablesBackoffEntirely) {
  RetryPolicy policy;
  policy.initial_ms = 0;
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(policy.delay(0, attempt).count(), 0);
  }
}

TEST(RetryPolicy, JitterDesynchronizesShards) {
  // The whole point of per-shard jitter: a fleet of shards failing
  // together must not retry in lockstep.
  RetryPolicy policy;
  policy.initial_ms = 1'000;
  policy.cap_ms = 10'000;
  policy.jitter = 0.5;
  bool any_difference = false;
  const auto reference = policy.delay(0, 1);
  for (std::size_t shard = 1; shard < 16 && !any_difference; ++shard) {
    any_difference = policy.delay(shard, 1) != reference;
  }
  EXPECT_TRUE(any_difference);
}

// ---------------------------------------------------------------------------
// shard_ranges (moved here from process_runner.hpp; contract unchanged)
// ---------------------------------------------------------------------------

TEST(ShardRanges, ContiguousCoverBalancedLargerFirst) {
  const std::vector<ShardRange> ranges = shard_ranges(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  std::size_t expected_begin = 0;
  for (const ShardRange& range : ranges) {
    EXPECT_EQ(range.begin, expected_begin);
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, 10u);
  EXPECT_EQ(ranges[0].size(), 3u);
  EXPECT_EQ(ranges[1].size(), 3u);
  EXPECT_EQ(ranges[2].size(), 2u);
  EXPECT_EQ(ranges[3].size(), 2u);
}

TEST(ShardRanges, ClampsShardCountToRuns) {
  EXPECT_EQ(shard_ranges(3, 16).size(), 3u);
  EXPECT_TRUE(shard_ranges(0, 4).empty());
}

// ---------------------------------------------------------------------------
// parse_host_list
// ---------------------------------------------------------------------------

TEST(ParseHostList, SingleHostDefaultsToOneWorker) {
  const std::vector<HostSpec> hosts = parse_host_list("node-a:9000");
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0].host, "node-a");
  EXPECT_EQ(hosts[0].port, 9000);
  EXPECT_EQ(hosts[0].workers, 1u);
}

TEST(ParseHostList, MultipleHostsWithWorkerCounts) {
  const std::vector<HostSpec> hosts =
      parse_host_list("10.0.0.1:9000*4,10.0.0.2:9001,localhost:65535*1024");
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[0].host, "10.0.0.1");
  EXPECT_EQ(hosts[0].port, 9000);
  EXPECT_EQ(hosts[0].workers, 4u);
  EXPECT_EQ(hosts[1].host, "10.0.0.2");
  EXPECT_EQ(hosts[1].port, 9001);
  EXPECT_EQ(hosts[1].workers, 1u);
  EXPECT_EQ(hosts[2].host, "localhost");
  EXPECT_EQ(hosts[2].port, 65535);
  EXPECT_EQ(hosts[2].workers, 1024u);
}

TEST(ParseHostList, RejectionBatteryNamesTheOffendingEntry) {
  const auto expect_rejected = [](const std::string& text, const std::string& fragment) {
    try {
      parse_host_list(text);
      FAIL() << "'" << text << "' was accepted";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
          << "'" << text << "' rejected as: " << error.what();
    }
  };
  expect_rejected("", "empty entry");
  expect_rejected("a:1,,b:2", "empty entry");
  expect_rejected("a:1,", "empty entry");            // trailing comma
  expect_rejected("hostonly", "missing ':port'");
  expect_rejected(":9000", "empty host");
  expect_rejected("a:0", "port");                    // port below range
  expect_rejected("a:65536", "port");                // port above range
  expect_rejected("a:port", "port");                 // non-numeric port
  expect_rejected("a:", "port");                     // missing port digits
  expect_rejected("a:9000*0", "worker count");       // zero workers
  expect_rejected("a:9000*1025", "worker count");    // above bound
  expect_rejected("a:9000*many", "worker count");    // non-numeric
  // The message must carry the literal entry so a long list is debuggable.
  expect_rejected("good:1,bad:0*2,fine:3", "bad:0*2");
}

// ---------------------------------------------------------------------------
// parse_transport_fault
// ---------------------------------------------------------------------------

TEST(ParseTransportFault, EveryKindWithDefaults) {
  const struct {
    const char* text;
    TransportFault::Kind kind;
  } cases[] = {
      {"connect:0", TransportFault::Kind::kConnectRefuse},
      {"drop:1", TransportFault::Kind::kDrop},
      {"corrupt:2", TransportFault::Kind::kCorrupt},
      {"hbstall:3", TransportFault::Kind::kHeartbeatStall},
      {"delay:4", TransportFault::Kind::kDelay},
  };
  for (const auto& test_case : cases) {
    const TransportFault fault = parse_transport_fault(test_case.text);
    EXPECT_EQ(fault.kind, test_case.kind) << test_case.text;
    EXPECT_EQ(fault.shard,
              static_cast<std::size_t>(test_case.text[std::strlen(test_case.text) - 1] - '0'))
        << test_case.text;
    EXPECT_EQ(fault.attempts, 1u) << test_case.text;  // defaults to first attempt only
  }
}

TEST(ParseTransportFault, ExplicitAttemptCount) {
  const TransportFault fault = parse_transport_fault("drop:3:5");
  EXPECT_EQ(fault.kind, TransportFault::Kind::kDrop);
  EXPECT_EQ(fault.shard, 3u);
  EXPECT_EQ(fault.attempts, 5u);
}

TEST(ParseTransportFault, RejectionBattery) {
  for (const std::string text : {"", "drop", "explode:1", "drop:x", "drop:1:0", "drop:1:x"}) {
    EXPECT_THROW(parse_transport_fault(text), std::invalid_argument) << "'" << text << "'";
  }
}

}  // namespace
}  // namespace lr

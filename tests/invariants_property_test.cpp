#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "graph/generators.hpp"

/// Property sweeps: every formal claim of the paper, checked after every
/// step of randomized executions across graph families, sizes, seeds, and
/// schedulers.  These parameterized tests are the executable version of the
/// paper's proofs.

namespace lr {
namespace {

enum class Family { kWorstChain, kRandomSparse, kRandomDense, kGrid, kLayeredBad, kSinkSource };

struct SweepParam {
  Family family;
  std::size_t size;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    const char* names[] = {"WorstChain", "RandomSparse", "RandomDense",
                           "Grid",       "LayeredBad",   "SinkSource"};
    return os << names[static_cast<int>(p.family)] << "_n" << p.size << "_s" << p.seed;
  }
};

Instance make_instance(const SweepParam& p) {
  std::mt19937_64 rng(p.seed * 7919 + 13);
  switch (p.family) {
    case Family::kWorstChain:
      return make_worst_case_chain(p.size);
    case Family::kRandomSparse:
      return make_random_instance(p.size, p.size / 4, rng);
    case Family::kRandomDense:
      return make_random_instance(p.size, p.size * 2, rng);
    case Family::kGrid:
      return make_grid_instance(p.size / 4 + 2, 4, rng);
    case Family::kLayeredBad:
      return make_layered_bad_instance(p.size / 4 + 2, 4, 0.4, rng);
    case Family::kSinkSource:
      return make_sink_source_instance(p.size | 1);
  }
  return make_worst_case_chain(p.size);
}

class InvariantSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(InvariantSweep, PRInvariantsHoldAtEveryStep) {
  const Instance inst = make_instance(GetParam());
  OneStepPRAutomaton pr(inst);
  RandomScheduler scheduler(GetParam().seed);

  const auto check_all = [](const OneStepPRAutomaton& a) {
    ASSERT_TRUE(check_invariant_3_1(a.orientation())) << check_invariant_3_1(a.orientation()).detail;
    ASSERT_TRUE(check_invariant_3_2(a)) << check_invariant_3_2(a).detail;
    ASSERT_TRUE(check_corollary_3_3(a)) << check_corollary_3_3(a).detail;
    ASSERT_TRUE(check_corollary_3_4(a)) << check_corollary_3_4(a).detail;
    ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
  };
  check_all(pr);  // initial state
  const RunResult result = run_to_quiescence(
      pr, scheduler, [&check_all](const OneStepPRAutomaton& a, NodeId) { check_all(a); });
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented) << inst.name;
  EXPECT_TRUE(check_quiescence_consistency(pr.orientation(), pr.destination()))
      << check_quiescence_consistency(pr.orientation(), pr.destination()).detail;
}

TEST_P(InvariantSweep, NewPRInvariantsHoldAtEveryStep) {
  const Instance inst = make_instance(GetParam());
  NewPRAutomaton newpr(inst);
  const LeftRightEmbedding emb(newpr.orientation());
  RandomScheduler scheduler(GetParam().seed + 1);

  const auto check_all = [&emb](const NewPRAutomaton& a) {
    ASSERT_TRUE(check_invariant_3_1(a.orientation())) << check_invariant_3_1(a.orientation()).detail;
    ASSERT_TRUE(check_invariant_4_1(a, emb)) << check_invariant_4_1(a, emb).detail;
    ASSERT_TRUE(check_invariant_4_2(a, emb)) << check_invariant_4_2(a, emb).detail;
    ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
  };
  check_all(newpr);
  const RunResult result = run_to_quiescence(
      newpr, scheduler, [&check_all](const NewPRAutomaton& a, NodeId) { check_all(a); });
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented) << inst.name;
}

TEST_P(InvariantSweep, PRSetAutomatonInvariantsHoldAtEveryStep) {
  const Instance inst = make_instance(GetParam());
  PRAutomaton pr(inst);
  RandomSetScheduler scheduler(GetParam().seed + 2);

  const RunResult result = run_to_quiescence_set(
      pr, scheduler, [](const PRAutomaton& a, const std::vector<NodeId>&) {
        ASSERT_TRUE(check_invariant_3_2(a)) << check_invariant_3_2(a).detail;
        ASSERT_TRUE(check_corollary_3_3(a)) << check_corollary_3_3(a).detail;
        ASSERT_TRUE(check_corollary_3_4(a)) << check_corollary_3_4(a).detail;
        ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
      });
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented) << inst.name;
}

TEST_P(InvariantSweep, FullReversalAcyclicAtEveryStep) {
  const Instance inst = make_instance(GetParam());
  FullReversalAutomaton fr(inst);
  RandomScheduler scheduler(GetParam().seed + 3);
  const RunResult result =
      run_to_quiescence(fr, scheduler, [](const FullReversalAutomaton& a, NodeId) {
        ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
      });
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented) << inst.name;
}

TEST_P(InvariantSweep, AdversarialSchedulerPreservesAllPRInvariants) {
  const Instance inst = make_instance(GetParam());
  OneStepPRAutomaton pr(inst);
  FarthestFirstScheduler scheduler;
  const RunResult result = run_to_quiescence(pr, scheduler, [](const OneStepPRAutomaton& a,
                                                               NodeId) {
    ASSERT_TRUE(check_invariant_3_2(a)) << check_invariant_3_2(a).detail;
    ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
  });
  EXPECT_TRUE(result.destination_oriented) << inst.name;
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (const Family family :
       {Family::kWorstChain, Family::kRandomSparse, Family::kRandomDense, Family::kGrid,
        Family::kLayeredBad, Family::kSinkSource}) {
    for (const std::size_t size : {8u, 16u, 32u}) {
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        params.push_back({family, size, seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, InvariantSweep, ::testing::ValuesIn(sweep_params()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           std::ostringstream oss;
                           oss << info.param;
                           return oss.str();
                         });

}  // namespace
}  // namespace lr

#include "graph/embedding.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(EmbeddingTest, AllInitialEdgesGoLeftToRight) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    Instance inst = make_random_instance(20, 12, rng);
    Orientation o = inst.make_orientation();
    LeftRightEmbedding emb(o);
    for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
      EXPECT_TRUE(emb.directed_left_to_right(o, e))
          << "initial edge " << e << " must go left to right";
    }
  }
}

TEST(EmbeddingTest, PositionsAreAPermutation) {
  Instance inst = make_worst_case_chain(6);
  Orientation o = inst.make_orientation();
  LeftRightEmbedding emb(o);
  std::vector<bool> seen(6, false);
  for (NodeId u = 0; u < 6; ++u) {
    ASSERT_LT(emb.position(u), 6u);
    EXPECT_FALSE(seen[emb.position(u)]);
    seen[emb.position(u)] = true;
  }
}

TEST(EmbeddingTest, ChainPositionsMonotone) {
  Instance inst = make_worst_case_chain(5);
  Orientation o = inst.make_orientation();
  LeftRightEmbedding emb(o);
  for (NodeId u = 0; u + 1 < 5; ++u) {
    EXPECT_TRUE(emb.left_of(u, u + 1));
    EXPECT_FALSE(emb.left_of(u + 1, u));
  }
}

TEST(EmbeddingTest, RejectsCyclicInitialOrientation) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Orientation cyclic(g, {EdgeSense::kForward, EdgeSense::kForward, EdgeSense::kBackward});
  EXPECT_THROW(LeftRightEmbedding{cyclic}, std::invalid_argument);
}

TEST(EmbeddingTest, DirectionFlipsAfterReversal) {
  Graph g(2, {{0, 1}});
  Orientation o(g, {EdgeSense::kForward});
  LeftRightEmbedding emb(o);
  EXPECT_TRUE(emb.directed_left_to_right(o, 0));
  o.reverse_edge(0);
  EXPECT_FALSE(emb.directed_left_to_right(o, 0));
}

TEST(EmbeddingTest, ExplicitPositionsConstructor) {
  LeftRightEmbedding emb(std::vector<std::uint32_t>{2, 0, 1});
  EXPECT_TRUE(emb.left_of(1, 2));
  EXPECT_TRUE(emb.left_of(2, 0));
  EXPECT_EQ(emb.num_nodes(), 3u);
}

}  // namespace
}  // namespace lr

#include "automata/model_check.hpp"

#include <gtest/gtest.h>

#include "automata/scheduler.hpp"
#include "core/bll.hpp"
#include "core/full_reversal.hpp"
#include "core/invariants.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

/// Exhaustive verification: the schedulers sample single executions, but
/// the paper's theorems quantify over ALL executions.  These tests explore
/// the entire reachable state space of each automaton on small graphs and
/// check every invariant in every state — the strongest form of empirical
/// evidence the implementation matches the proofs.

namespace lr {
namespace {

std::vector<Instance> small_instances() {
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(4));
  instances.push_back(make_worst_case_chain(6));
  instances.push_back(make_sink_source_instance(5));
  // Diamond with a chord.
  {
    Graph g(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
    Instance inst;
    inst.senses = Orientation::from_ranking(g, identity_ranking(4)).senses();
    inst.graph = std::move(g);
    inst.destination = 0;
    inst.name = "diamond";
    instances.push_back(std::move(inst));
  }
  // Small random DAGs.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    std::mt19937_64 rng(seed);
    instances.push_back(make_random_instance(6, 4, rng));
  }
  return instances;
}

std::string acyclic_property_message(const Orientation& o) {
  const auto check = check_acyclic(o);
  return check.ok ? std::string{} : check.detail;
}

TEST(ModelCheckTest, OneStepPRAllInvariantsInAllReachableStates) {
  for (const Instance& inst : small_instances()) {
    OneStepPRAutomaton initial(inst);
    const auto result = model_check(initial, [](const OneStepPRAutomaton& a) -> std::string {
      if (const auto c = check_acyclic(a.orientation()); !c.ok) return c.detail;
      if (const auto c = check_invariant_3_1(a.orientation()); !c.ok) return c.detail;
      if (const auto c = check_invariant_3_2(a); !c.ok) return c.detail;
      if (const auto c = check_corollary_3_3(a); !c.ok) return c.detail;
      if (const auto c = check_corollary_3_4(a); !c.ok) return c.detail;
      return {};
    });
    EXPECT_TRUE(result.ok) << inst.name << ": " << result.failure;
    EXPECT_GT(result.states_explored, 1u) << inst.name;
  }
}

TEST(ModelCheckTest, NewPRAllInvariantsInAllReachableStates) {
  for (const Instance& inst : small_instances()) {
    NewPRAutomaton initial(inst);
    const LeftRightEmbedding emb(initial.orientation());
    const auto result =
        model_check(initial, [&emb](const NewPRAutomaton& a) -> std::string {
          if (const auto c = check_acyclic(a.orientation()); !c.ok) return c.detail;
          if (const auto c = check_invariant_4_1(a, emb); !c.ok) return c.detail;
          if (const auto c = check_invariant_4_2(a, emb); !c.ok) return c.detail;
          return {};
        });
    EXPECT_TRUE(result.ok) << inst.name << ": " << result.failure;
  }
}

TEST(ModelCheckTest, FullReversalAcyclicInAllReachableStates) {
  for (const Instance& inst : small_instances()) {
    FullReversalAutomaton initial(inst);
    const auto result = model_check(initial, [](const FullReversalAutomaton& a) {
      return acyclic_property_message(a.orientation());
    });
    EXPECT_TRUE(result.ok) << inst.name << ": " << result.failure;
  }
}

TEST(ModelCheckTest, BLLWithPRLabelingAcyclicEverywhere) {
  for (const Instance& inst : small_instances()) {
    BLLAutomaton initial = BLLAutomaton::pr_labeling(inst);
    const auto result = model_check(initial, [](const BLLAutomaton& a) {
      return acyclic_property_message(a.orientation());
    });
    EXPECT_TRUE(result.ok) << inst.name << ": " << result.failure;
  }
}

TEST(ModelCheckTest, EveryQuiescentStateIsDestinationOriented) {
  for (const Instance& inst : small_instances()) {
    OneStepPRAutomaton initial(inst);
    const auto result = model_check(initial, [](const OneStepPRAutomaton& a) -> std::string {
      if (!a.quiescent()) return {};
      return is_destination_oriented(a.orientation(), a.destination())
                 ? std::string{}
                 : "quiescent but not destination-oriented";
    });
    EXPECT_TRUE(result.ok) << inst.name << ": " << result.failure;
  }
}

// ---------------------------------------------------------------------------
// The checker must be able to FIND violations: a deliberately broken
// reversal rule ("reverse exactly one incoming edge") creates cycles.
// ---------------------------------------------------------------------------

class BrokenSingleEdgeReversal : public LinkReversalBase {
 public:
  using Action = NodeId;
  using LinkReversalBase::LinkReversalBase;

  bool enabled(NodeId u) const { return sink_enabled(u); }

  void apply(NodeId u) {
    // Broken on purpose: reverse only the first incident edge.
    const auto nbrs = graph().neighbors(u);
    orientation_.reverse_edge(nbrs.front().edge);
  }

  std::vector<std::uint8_t> state_fingerprint() const {
    std::vector<std::uint8_t> fp;
    append_orientation_fingerprint(fp);
    return fp;
  }
};

TEST(ModelCheckTest, FindsCycleInDeliberatelyBrokenAlgorithm) {
  // Triangle DAG 0 -> 1 -> 2, 0 -> 2 with destination 0.
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Orientation o = Orientation::from_ranking(g, identity_ranking(3));
  BrokenSingleEdgeReversal broken(g, std::move(o), 0);
  const auto result = model_check(broken, [](const BrokenSingleEdgeReversal& a) {
    return acyclic_property_message(a.orientation());
  });
  ASSERT_FALSE(result.ok) << "the broken rule must create a cycle somewhere";
  EXPECT_FALSE(result.counterexample.empty());
  EXPECT_NE(result.failure.find("cycle"), std::string::npos);

  // The counterexample schedule must actually replay to a cyclic state.
  BrokenSingleEdgeReversal replay(g, Orientation::from_ranking(g, identity_ranking(3)), 0);
  for (const NodeId u : result.counterexample) {
    ASSERT_TRUE(replay.enabled(u));
    replay.apply(u);
  }
  EXPECT_FALSE(is_acyclic(replay.orientation()));
}

TEST(ModelCheckTest, StateBudgetEnforced) {
  Instance inst = make_worst_case_chain(12);
  OneStepPRAutomaton initial(inst);
  EXPECT_THROW(model_check(
                   initial, [](const OneStepPRAutomaton&) { return std::string{}; }, 3),
               std::runtime_error);
}

TEST(ModelCheckTest, AllPropertiesCombinator) {
  Instance inst = make_worst_case_chain(4);
  OneStepPRAutomaton initial(inst);
  const auto combined = all_properties(
      [](const OneStepPRAutomaton& a) { return acyclic_property_message(a.orientation()); },
      [](const OneStepPRAutomaton& a) {
        const auto c = check_corollary_3_3(a);
        return c.ok ? std::string{} : c.detail;
      });
  const auto result = model_check(initial, combined);
  EXPECT_TRUE(result.ok) << result.failure;
}

TEST(ModelCheckTest, TransitionCountsAtLeastStatesMinusOne) {
  Instance inst = make_worst_case_chain(5);
  OneStepPRAutomaton initial(inst);
  const auto result =
      model_check(initial, [](const OneStepPRAutomaton&) { return std::string{}; });
  EXPECT_GE(result.transitions_explored + 1, result.states_explored);
}

}  // namespace
}  // namespace lr

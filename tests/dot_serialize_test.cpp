#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "graph/digraph_algos.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/serialize.hpp"

namespace lr {
namespace {

// ---------------------------------------------------------------------------
// DOT export
// ---------------------------------------------------------------------------

TEST(DotTest, ContainsAllNodesAndDirectedEdges) {
  Instance inst = make_worst_case_chain(4);
  Orientation o = inst.make_orientation();
  const std::string dot = to_dot(o, {.destination = inst.destination});
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_NE(dot.find("n" + std::to_string(u) + " ["), std::string::npos) << dot;
  }
  // 0 -> 1 -> 2 -> 3 away-chain.
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2;"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3;"), std::string::npos);
}

TEST(DotTest, DestinationRenderedAsDoubleCircle) {
  Instance inst = make_worst_case_chain(3);
  Orientation o = inst.make_orientation();
  const std::string dot = to_dot(o, {.destination = 0});
  EXPECT_NE(dot.find("n0 [label=\"0\", shape=doublecircle]"), std::string::npos) << dot;
}

TEST(DotTest, SinksHighlighted) {
  Instance inst = make_worst_case_chain(3);  // node 2 is the sink
  Orientation o = inst.make_orientation();
  const std::string dot = to_dot(o, {.destination = 0});
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
  // Turn highlighting off.
  const std::string plain = to_dot(o, {.destination = 0, .highlight_sinks = false});
  EXPECT_EQ(plain.find("fillcolor"), std::string::npos);
}

TEST(DotTest, EmbeddingAddsPositions) {
  Instance inst = make_worst_case_chain(3);
  Orientation o = inst.make_orientation();
  const LeftRightEmbedding emb(o);
  const std::string dot = to_dot(o, {.embedding = &emb});
  EXPECT_NE(dot.find("pos=\""), std::string::npos);
}

TEST(DotTest, EdgeDirectionTracksReversals) {
  Graph g(2, {{0, 1}});
  Orientation o(g, {EdgeSense::kForward});
  EXPECT_NE(to_dot(o).find("n0 -> n1;"), std::string::npos);
  o.reverse_edge(0);
  EXPECT_NE(to_dot(o).find("n1 -> n0;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Instance serialization
// ---------------------------------------------------------------------------

TEST(SerializeTest, RoundTripPreservesEverything) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance original = make_random_instance(12, 8, rng);
    std::stringstream buffer;
    write_instance(buffer, original);
    const Instance loaded = read_instance(buffer);
    EXPECT_EQ(loaded.graph, original.graph);
    EXPECT_EQ(loaded.senses, original.senses);
    EXPECT_EQ(loaded.destination, original.destination);
    EXPECT_EQ(loaded.name, original.name);
    // Orientations (and hence executions) coincide.
    EXPECT_TRUE(loaded.make_orientation() == original.make_orientation());
  }
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer(R"(# reproducer
lr-instance 1

name demo
# topology
nodes 3
destination 0
edge 0 1 fwd
edge 1 2 bwd
end
)");
  const Instance inst = read_instance(buffer);
  EXPECT_EQ(inst.graph.num_nodes(), 3u);
  EXPECT_EQ(inst.senses[1], EdgeSense::kBackward);
  EXPECT_EQ(inst.name, "demo");
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream buffer("not-an-instance\n");
  EXPECT_THROW(read_instance(buffer), std::invalid_argument);
}

TEST(SerializeTest, RejectsMissingEnd) {
  std::stringstream buffer("lr-instance 1\nnodes 2\ndestination 0\nedge 0 1 fwd\n");
  EXPECT_THROW(read_instance(buffer), std::invalid_argument);
}

TEST(SerializeTest, RejectsBadSense) {
  std::stringstream buffer("lr-instance 1\nnodes 2\ndestination 0\nedge 0 1 sideways\nend\n");
  EXPECT_THROW(read_instance(buffer), std::invalid_argument);
}

TEST(SerializeTest, RejectsNonCanonicalEdge) {
  std::stringstream buffer("lr-instance 1\nnodes 2\ndestination 0\nedge 1 0 fwd\nend\n");
  EXPECT_THROW(read_instance(buffer), std::invalid_argument);
}

TEST(SerializeTest, RejectsOutOfRangeDestination) {
  std::stringstream buffer("lr-instance 1\nnodes 2\ndestination 5\nedge 0 1 fwd\nend\n");
  EXPECT_THROW(read_instance(buffer), std::invalid_argument);
}

TEST(SerializeTest, RejectsUnknownKeyword) {
  std::stringstream buffer("lr-instance 1\nnodes 2\nwormhole 1\nend\n");
  EXPECT_THROW(read_instance(buffer), std::invalid_argument);
}

TEST(SerializeTest, FileSaveAndLoad) {
  const auto path = std::filesystem::temp_directory_path() / "lr_instance_test.txt";
  const Instance original = make_worst_case_chain(5);
  save_instance(path.string(), original);
  const Instance loaded = load_instance(path.string());
  EXPECT_EQ(loaded.graph, original.graph);
  EXPECT_EQ(loaded.senses, original.senses);
  std::filesystem::remove(path);
}

TEST(SerializeTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/definitely/missing.txt"), std::runtime_error);
}

}  // namespace
}  // namespace lr

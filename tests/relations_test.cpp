#include "core/relations.hpp"

#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "automata/simulation.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

/// Mechanical re-play of Section 5: the relations R' and R are checked
/// along randomized executions using the step correspondences from the
/// proofs of Lemmas 5.1 and 5.3, plus the reverse-direction relation the
/// conclusion proposes as future work.

namespace lr {
namespace {

struct RelParam {
  std::size_t size;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const RelParam& p) {
    return os << "n" << p.size << "_s" << p.seed;
  }
};

class RelationSweep : public ::testing::TestWithParam<RelParam> {
 protected:
  Instance make_inst() const {
    std::mt19937_64 rng(GetParam().seed * 101 + 7);
    return make_random_instance(GetParam().size, GetParam().size / 2, rng);
  }
};

TEST_P(RelationSweep, RPrimeForwardSimulationPRToOneStepPR) {
  const Instance inst = make_inst();
  PRAutomaton concrete(inst);
  OneStepPRAutomaton abstract(inst);
  RandomSetScheduler scheduler(GetParam().seed);

  const auto result = check_forward_simulation(
      concrete, abstract, scheduler,
      [](const PRAutomaton& s, const OneStepPRAutomaton& t) { return relation_R_prime(s, t); },
      correspondence_R_prime);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(result.abstract_steps, concrete.total_node_steps())
      << "every node of every set step maps to exactly one OneStepPR step";
  EXPECT_TRUE(is_destination_oriented(abstract.orientation(), inst.destination));
}

TEST_P(RelationSweep, RForwardSimulationOneStepPRToNewPR) {
  const Instance inst = make_inst();
  OneStepPRAutomaton concrete(inst);
  NewPRAutomaton abstract(inst);
  RandomScheduler scheduler(GetParam().seed + 1);

  const auto result = check_forward_simulation(
      concrete, abstract, scheduler,
      [](const OneStepPRAutomaton& s, const NewPRAutomaton& t) { return relation_R(s, t); },
      correspondence_R);
  EXPECT_TRUE(result.ok) << result.failure;
  // Lemma 5.3: 1 or 2 NewPR steps per OneStepPR step.
  EXPECT_GE(result.abstract_steps, result.concrete_steps);
  EXPECT_LE(result.abstract_steps, 2 * result.concrete_steps);
  // The extra abstract steps are exactly NewPR's dummy steps.
  EXPECT_EQ(result.abstract_steps - result.concrete_steps, abstract.dummy_steps());
}

TEST_P(RelationSweep, ReverseSimulationNewPRToOneStepPR) {
  const Instance inst = make_inst();
  NewPRAutomaton concrete(inst);
  OneStepPRAutomaton abstract(inst);
  RandomScheduler scheduler(GetParam().seed + 2);

  const auto result = check_forward_simulation(
      concrete, abstract, scheduler,
      [](const NewPRAutomaton& t, const OneStepPRAutomaton& s) {
        return reverse_relation_R(t, s);
      },
      correspondence_R_reverse);
  EXPECT_TRUE(result.ok) << result.failure;
  // Dummy steps map to the empty sequence.
  EXPECT_EQ(result.concrete_steps - result.abstract_steps, concrete.dummy_steps());
}

TEST_P(RelationSweep, OneStepPRToSetPRTrivialDirection) {
  const Instance inst = make_inst();
  OneStepPRAutomaton concrete(inst);
  PRAutomaton abstract(inst);
  RandomScheduler scheduler(GetParam().seed + 3);

  const auto result = check_forward_simulation(
      concrete, abstract, scheduler,
      [](const OneStepPRAutomaton& s, const PRAutomaton& t) { return relation_R_prime(s, t); },
      correspondence_one_step_to_set);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(result.abstract_steps, result.concrete_steps);
}

TEST_P(RelationSweep, ComposedRelationPreservesOrientationEndToEnd) {
  // Theorem 5.5's composition: drive PR (set steps); map through R' to
  // OneStepPR and through R to NewPR; all three orientations must coincide
  // whenever the relations hold, hence acyclicity transfers from NewPR to PR.
  const Instance inst = make_inst();
  PRAutomaton pr(inst);
  OneStepPRAutomaton onestep(inst);
  NewPRAutomaton newpr(inst);
  RandomSetScheduler scheduler(GetParam().seed + 4);

  while (true) {
    const auto action = scheduler.choose(pr);
    if (!action) break;
    pr.apply(*action);
    for (const NodeId u : *action) {
      // R' mapping: one OneStepPR step per node of S.
      const auto newpr_actions = correspondence_R(onestep, u, newpr);
      onestep.apply(u);
      for (const NodeId w : newpr_actions) newpr.apply(w);
    }
    ASSERT_TRUE(pr.orientation() == onestep.orientation());
    ASSERT_TRUE(onestep.orientation() == newpr.orientation());
    ASSERT_TRUE(check_invariant_3_2(pr)) << check_invariant_3_2(pr).detail;
  }
  EXPECT_TRUE(is_destination_oriented(pr.orientation(), inst.destination));
  EXPECT_TRUE(is_destination_oriented(newpr.orientation(), inst.destination));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, RelationSweep,
                         ::testing::Values(RelParam{8, 1}, RelParam{8, 2}, RelParam{12, 3},
                                           RelParam{16, 4}, RelParam{16, 5}, RelParam{24, 6},
                                           RelParam{32, 7}, RelParam{32, 8}),
                         [](const ::testing::TestParamInfo<RelParam>& info) {
                           std::ostringstream oss;
                           oss << info.param;
                           return oss.str();
                         });

TEST(RelationsTest, RPrimeHoldsInitially) {
  Instance inst = make_worst_case_chain(5);
  PRAutomaton s(inst);
  OneStepPRAutomaton t(inst);
  EXPECT_TRUE(relation_R_prime(s, t));
}

TEST(RelationsTest, RPrimeFailsAfterDivergence) {
  Instance inst = make_worst_case_chain(5);
  PRAutomaton s(inst);
  OneStepPRAutomaton t(inst);
  t.apply(4);
  EXPECT_FALSE(relation_R_prime(s, t));
}

TEST(RelationsTest, RHoldsInitially) {
  Instance inst = make_worst_case_chain(5);
  OneStepPRAutomaton s(inst);
  NewPRAutomaton t(inst);
  EXPECT_TRUE(relation_R(s, t));
}

TEST(RelationsTest, CorrespondenceRDoublesOnlyWhenListFull) {
  // Star: hub 0, leaves 1..4; destination leaf 1 (see
  // make_sink_source_instance).  After leaves 2, 4 and the hub fire, leaf 3
  // is a sink with list[3] = {0} = nbrs_3 — the list-full case where one
  // OneStepPR step maps to two NewPR steps (dummy + real).
  Instance inst = make_sink_source_instance(5);
  OneStepPRAutomaton s(inst);
  NewPRAutomaton t(inst);
  for (const NodeId u : {2u, 4u, 0u}) {
    EXPECT_EQ(correspondence_R(s, u, t).size(), 1u) << "node " << u;
    s.apply(u);
    t.apply(u);
  }
  ASSERT_TRUE(s.enabled(3));
  ASSERT_TRUE(s.list_full(3));
  EXPECT_EQ(correspondence_R(s, 3, t).size(), 2u);
}

TEST(RelationsTest, ReverseRelationAcceptsPostDummyStates) {
  Instance inst = make_sink_source_instance(5);
  NewPRAutomaton t(inst);
  OneStepPRAutomaton s(inst);
  for (const NodeId u : {2u, 4u, 0u}) {
    t.apply(u);
    s.apply(u);
  }
  ASSERT_TRUE(t.would_be_dummy_step(3));
  t.apply(3);  // dummy: abstract OneStepPR does nothing
  EXPECT_TRUE(reverse_relation_R(t, s)) << "post-dummy state must be in R_rev";
  EXPECT_FALSE(relation_R(s, t)) << "the forward relation R does not cover post-dummy states";
}

}  // namespace
}  // namespace lr

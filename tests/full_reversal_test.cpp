#include "core/full_reversal.hpp"

#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/invariants.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(FullReversalTest, SinkReversesAllIncidentEdges) {
  Instance inst = make_worst_case_chain(3);  // 0 -> 1 -> 2, D = 0
  FullReversalAutomaton fr(inst);
  ASSERT_TRUE(fr.enabled(2));
  fr.apply(2);
  EXPECT_EQ(fr.orientation().dir(2, 1), Dir::kOut);
  ASSERT_TRUE(fr.enabled(1));
  fr.apply(1);
  // FR reverses *both* of node 1's edges, including the one to 2.
  EXPECT_EQ(fr.orientation().dir(1, 0), Dir::kOut);
  EXPECT_EQ(fr.orientation().dir(1, 2), Dir::kOut);
  EXPECT_EQ(fr.count(1), 1u);
}

TEST(FullReversalTest, ChainWorkExactHandComputedValue) {
  // 0 -> 1 -> 2 with D = 0 takes exactly 3 FR steps (2, 1, 2) but only 2 PR
  // steps (2, 1) — the introduction's motivating difference.
  Instance inst = make_worst_case_chain(3);
  FullReversalAutomaton fr(inst);
  LowestIdScheduler s;
  const RunResult fr_result = run_to_quiescence(fr, s);
  EXPECT_TRUE(fr_result.destination_oriented);
  EXPECT_EQ(fr_result.steps, 3u);

  OneStepPRAutomaton pr(inst);
  LowestIdScheduler s2;
  const RunResult pr_result = run_to_quiescence(pr, s2);
  EXPECT_TRUE(pr_result.destination_oriented);
  EXPECT_EQ(pr_result.steps, 2u);
}

TEST(FullReversalTest, AcyclicAtEveryStep) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst = make_random_instance(18, 12, rng);
    FullReversalAutomaton fr(inst);
    RandomScheduler scheduler(trial);
    run_to_quiescence(fr, scheduler, [](const FullReversalAutomaton& a, NodeId) {
      ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
    });
  }
}

TEST(FullReversalTest, ConvergesToDestinationOrientedOnAllFamilies) {
  std::mt19937_64 rng(5);
  const std::vector<Instance> instances = {
      make_worst_case_chain(12),
      make_random_instance(25, 20, rng),
      make_grid_instance(4, 4, rng),
      make_layered_bad_instance(4, 3, 0.4, rng),
      make_sink_source_instance(9),
  };
  for (const Instance& inst : instances) {
    FullReversalAutomaton fr(inst);
    RandomScheduler scheduler(42);
    const RunResult result = run_to_quiescence(fr, scheduler);
    EXPECT_TRUE(result.quiescent) << inst.name;
    EXPECT_TRUE(result.destination_oriented) << inst.name;
  }
}

TEST(FullReversalTest, SetAutomatonMatchesOneStepOutcome) {
  Instance inst = make_worst_case_chain(9);
  FullReversalSetAutomaton fr_set(inst);
  MaximalSetScheduler set_sched;
  const RunResult set_result = run_to_quiescence_set(fr_set, set_sched);
  EXPECT_TRUE(set_result.destination_oriented);

  FullReversalAutomaton fr(inst);
  LowestIdScheduler sched;
  const RunResult one_result = run_to_quiescence(fr, sched);
  EXPECT_TRUE(one_result.destination_oriented);
  // FR's total work is schedule-independent (it is a Nash equilibrium /
  // potential-game property): node-step counts agree.
  EXPECT_EQ(set_result.node_steps, one_result.node_steps);
}

TEST(FullReversalTest, WorkOnChainScalesQuadratically) {
  const auto work = [](std::size_t n) {
    Instance inst = make_worst_case_chain(n);
    FullReversalAutomaton fr(inst);
    LowestIdScheduler scheduler;
    return run_to_quiescence(fr, scheduler).node_steps;
  };
  const auto w8 = work(8);
  const auto w16 = work(16);
  EXPECT_GE(w16, 3 * w8);
  EXPECT_LE(w16, 5 * w8);
}

TEST(FullReversalTest, ApplyThrowsWhenNotSink) {
  Instance inst = make_worst_case_chain(3);
  FullReversalAutomaton fr(inst);
  EXPECT_THROW(fr.apply(0), std::logic_error);
  EXPECT_THROW(fr.apply(1), std::logic_error);
  FullReversalSetAutomaton fr_set(inst);
  EXPECT_THROW(fr_set.apply({1}), std::logic_error);
}

TEST(FullReversalTest, LastStepperHasAllOutgoingEdges) {
  // The introduction's easy acyclicity argument: right after u fires, all
  // of u's edges are outgoing.
  std::mt19937_64 rng(8);
  Instance inst = make_random_instance(15, 10, rng);
  FullReversalAutomaton fr(inst);
  RandomScheduler scheduler(3);
  run_to_quiescence(fr, scheduler, [](const FullReversalAutomaton& a, NodeId fired) {
    EXPECT_EQ(a.orientation().out_degree(fired), a.graph().degree(fired));
  });
}

}  // namespace
}  // namespace lr

#include "graph/orientation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace lr {
namespace {

Graph chain3() { return Graph(3, {{0, 1}, {1, 2}}); }

TEST(OrientationTest, SenseDeterminesHeadAndTail) {
  Graph g = chain3();
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kBackward});
  EXPECT_EQ(o.tail(0), 0u);
  EXPECT_EQ(o.head(0), 1u);
  EXPECT_EQ(o.tail(1), 2u);
  EXPECT_EQ(o.head(1), 1u);
}

TEST(OrientationTest, DirMatchesPaperConvention) {
  Graph g = chain3();
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kBackward});
  // Edge 0 points 0 -> 1: out of 0, into 1.
  EXPECT_EQ(o.dir(0, 1), Dir::kOut);
  EXPECT_EQ(o.dir(1, 0), Dir::kIn);
  // Edge 1 points 2 -> 1: out of 2, into 1.
  EXPECT_EQ(o.dir(2, 1), Dir::kOut);
  EXPECT_EQ(o.dir(1, 2), Dir::kIn);
}

TEST(OrientationTest, TwoSidedConsistencyInvariant31) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  Orientation o = Orientation::from_ranking(g, std::vector<std::uint32_t>{0, 1, 2, 3});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = g.edge_u(e);
    const NodeId v = g.edge_v(e);
    EXPECT_EQ(o.dir(u, v), opposite(o.dir(v, u)));
  }
}

TEST(OrientationTest, DegreesAndSinks) {
  Graph g = chain3();
  // 0 -> 1 <- 2 : node 1 is the unique sink.
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kBackward});
  EXPECT_EQ(o.out_degree(0), 1u);
  EXPECT_EQ(o.out_degree(1), 0u);
  EXPECT_EQ(o.out_degree(2), 1u);
  EXPECT_EQ(o.in_degree(1), 2u);
  EXPECT_TRUE(o.is_sink(1));
  EXPECT_FALSE(o.is_sink(0));
  ASSERT_EQ(o.sinks().size(), 1u);
  EXPECT_EQ(o.sinks()[0], 1u);
}

TEST(OrientationTest, SourceDetection) {
  Graph g = chain3();
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward});  // 0 -> 1 -> 2
  EXPECT_TRUE(o.is_source(0));
  EXPECT_FALSE(o.is_source(1));
  EXPECT_FALSE(o.is_source(2));
  EXPECT_TRUE(o.is_sink(2));
}

TEST(OrientationTest, ReverseEdgeUpdatesEverything) {
  Graph g = chain3();
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward});  // 0 -> 1 -> 2
  EXPECT_TRUE(o.is_sink(2));
  o.reverse_edge(1);  // now 0 -> 1 <- 2
  EXPECT_EQ(o.head(1), 1u);
  EXPECT_TRUE(o.is_sink(1));
  EXPECT_FALSE(o.is_sink(2));
  EXPECT_EQ(o.reversal_count(), 1u);
}

TEST(OrientationTest, SinkSetMaintainedAcrossManyReversals) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  Orientation o = Orientation::from_ranking(g, std::vector<std::uint32_t>{0, 1, 2, 3});
  // Reverse a few edges and verify the sink set always matches a fresh scan.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    o.reverse_edge(e);
    std::vector<NodeId> expected;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (o.out_degree(u) == 0) expected.push_back(u);
    }
    auto actual = std::vector<NodeId>(o.sinks().begin(), o.sinks().end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "after reversing edge " << e;
  }
}

TEST(OrientationTest, PointAwayFromIsIdempotent) {
  Graph g = chain3();
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kForward});
  o.point_away_from(0, 0);  // already points away from 0
  EXPECT_EQ(o.reversal_count(), 0u);
  o.point_away_from(1, 0);  // flips
  EXPECT_EQ(o.reversal_count(), 1u);
  EXPECT_EQ(o.tail(0), 1u);
}

TEST(OrientationTest, OutAndInNeighbors) {
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  Orientation o(g, {EdgeSense::kForward, EdgeSense::kBackward, EdgeSense::kForward});
  EXPECT_EQ(o.out_neighbors(0), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(o.in_neighbors(0), (std::vector<NodeId>{2}));
}

TEST(OrientationTest, FromRankingMakesEdgesPointLowToHigh) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Orientation o = Orientation::from_ranking(g, std::vector<std::uint32_t>{2, 0, 1});
  // rank(1)=0 < rank(2)=1 < rank(0)=2: edges point 1->2, 1->0, 2->0.
  EXPECT_EQ(o.dir(1, 2), Dir::kOut);
  EXPECT_EQ(o.dir(1, 0), Dir::kOut);
  EXPECT_EQ(o.dir(2, 0), Dir::kOut);
}

TEST(OrientationTest, FromRankingRejectsWrongSize) {
  Graph g = chain3();
  EXPECT_THROW(Orientation::from_ranking(g, std::vector<std::uint32_t>{0, 1}),
               std::invalid_argument);
}

TEST(OrientationTest, ConstructorRejectsWrongSenseCount) {
  Graph g = chain3();
  EXPECT_THROW(Orientation(g, {EdgeSense::kForward}), std::invalid_argument);
}

TEST(OrientationTest, EqualityComparesSenses) {
  Graph g = chain3();
  Orientation a(g, {EdgeSense::kForward, EdgeSense::kForward});
  Orientation b(g, {EdgeSense::kForward, EdgeSense::kForward});
  EXPECT_TRUE(a == b);
  b.reverse_edge(0);
  EXPECT_FALSE(a == b);
}

TEST(OrientationTest, IsolatedNodeIsSinkNotSource) {
  Graph g(2, {});
  Orientation o(g, {});
  EXPECT_TRUE(o.is_sink(0));
  EXPECT_FALSE(o.is_source(0));
}

}  // namespace
}  // namespace lr

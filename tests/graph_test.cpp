#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lr {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(GraphTest, SingleNode) {
  Graph g(1, {});
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(GraphTest, TriangleBasics) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.is_connected());
}

TEST(GraphTest, EndpointsAreCanonical) {
  Graph g(3, {{2, 0}, {1, 0}});
  // Edges are stored with the smaller endpoint first regardless of input order.
  EXPECT_EQ(g.edge_u(0), 0u);
  EXPECT_EQ(g.edge_v(0), 2u);
  EXPECT_EQ(g.edge_u(1), 0u);
  EXPECT_EQ(g.edge_v(1), 1u);
}

TEST(GraphTest, OtherEndpoint) {
  Graph g(2, {{0, 1}});
  EXPECT_EQ(g.other_endpoint(0, 0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 1), 0u);
}

TEST(GraphTest, IsEndpoint) {
  Graph g(3, {{0, 1}});
  EXPECT_TRUE(g.is_endpoint(0, 0));
  EXPECT_TRUE(g.is_endpoint(0, 1));
  EXPECT_FALSE(g.is_endpoint(0, 2));
}

TEST(GraphTest, NeighborsSortedAscending) {
  Graph g(5, {{4, 2}, {2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0].neighbor, 0u);
  EXPECT_EQ(nbrs[1].neighbor, 1u);
  EXPECT_EQ(nbrs[2].neighbor, 3u);
  EXPECT_EQ(nbrs[3].neighbor, 4u);
}

TEST(GraphTest, NeighborIncidenceEdgeIdsConsistent) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  for (NodeId u = 0; u < 4; ++u) {
    for (const Incidence& inc : g.neighbors(u)) {
      EXPECT_TRUE(g.is_endpoint(inc.edge, u));
      EXPECT_EQ(g.other_endpoint(inc.edge, u), inc.neighbor);
    }
  }
}

TEST(GraphTest, EdgeBetween) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_NE(g.edge_between(0, 1), kNoEdge);
  EXPECT_EQ(g.edge_between(0, 1), g.edge_between(1, 0));
  EXPECT_EQ(g.edge_between(0, 2), kNoEdge);
  EXPECT_EQ(g.edge_between(0, 3), kNoEdge);
  EXPECT_TRUE(g.adjacent(2, 3));
  EXPECT_FALSE(g.adjacent(0, 3));
}

TEST(GraphTest, RejectsSelfLoop) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(GraphTest, RejectsParallelEdges) {
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph(2, {{0, 2}}), std::invalid_argument);
}

TEST(GraphTest, DisconnectedDetected) {
  Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.is_connected());
}

TEST(GraphTest, Describe) {
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.describe(), "Graph(n=3, m=2)");
}

TEST(GraphTest, Equality) {
  Graph a(3, {{0, 1}, {1, 2}});
  Graph b(3, {{0, 1}, {1, 2}});
  Graph c(3, {{0, 1}, {0, 2}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace lr

#include "sim/dist_router.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(DistRouterTest, DeliversAfterConvergence) {
  std::mt19937_64 rng(3);
  const Instance inst = make_random_instance(20, 16, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 5, .seed = 7});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  ASSERT_TRUE(proto.converged());

  DistRouter router(proto, net);
  for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    router.inject(u);
  }
  net.run_until_idle();
  EXPECT_EQ(router.stats().delivered, inst.graph.num_nodes());
  EXPECT_EQ(router.stats().dropped_no_route, 0u);
  EXPECT_EQ(router.stats().dropped_ttl, 0u);
}

TEST(DistRouterTest, DestinationInjectionIsZeroHopDelivery) {
  const Instance inst = make_worst_case_chain(5);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 2, .seed = 1});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();

  DistRouter router(proto, net);
  router.inject(proto.destination());
  net.run_until_idle();
  EXPECT_EQ(router.stats().delivered, 1u);
  EXPECT_EQ(router.stats().total_hops, 0u);
}

TEST(DistRouterTest, PacketsInjectedBeforeConvergenceStillAccounted) {
  // Inject packets while the DAG is still repairing: each is delivered or
  // counted as dropped (no silent losses), and delivered ones took at most
  // TTL hops.
  const Instance inst = make_worst_case_chain(12);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 6, .seed = 4});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  DistRouter router(proto, net);

  proto.start();
  for (NodeId u = 1; u < 12; ++u) router.inject(u);  // mid-flight injection
  net.run_until_idle();

  const PacketStats& stats = router.stats();
  EXPECT_EQ(stats.injected, 11u);
  EXPECT_EQ(stats.delivered + stats.dropped_no_route + stats.dropped_ttl, stats.injected);
}

TEST(DistRouterTest, MeanHopsMatchesChainDistance) {
  // On the converged chain the unique route from node k has k hops.
  const Instance inst = make_worst_case_chain(8);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 3, .seed = 5});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  ASSERT_TRUE(proto.converged());

  DistRouter router(proto, net);
  router.inject(7);
  net.run_until_idle();
  ASSERT_EQ(router.stats().delivered, 1u);
  EXPECT_EQ(router.stats().total_hops, 7u);
}

TEST(DistRouterTest, DeliversUnderChurnWithResync) {
  const Instance inst = make_worst_case_chain(10);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 4, .seed = 6});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  ASSERT_TRUE(proto.converged());

  // Cut a link mid-chain, restore it, resync, then route.
  const EdgeId cut = 4;
  net.set_link_up(cut, false);
  net.set_link_up(cut, true);
  proto.notify_link_restored(cut);
  net.run_until_idle();

  DistRouter router(proto, net);
  for (NodeId u = 1; u < 10; ++u) router.inject(u);
  net.run_until_idle();
  EXPECT_EQ(router.stats().delivered, 9u);
}

TEST(DistRouterTest, TtlBoundsHopCount) {
  const Instance inst = make_worst_case_chain(10);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 3, .seed = 8});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();

  DistRouter tight(proto, net, /*ttl=*/3);
  tight.inject(9);  // needs 9 hops, TTL is 3
  net.run_until_idle();
  EXPECT_EQ(tight.stats().dropped_ttl, 1u);
  EXPECT_EQ(tight.stats().delivered, 0u);
}

TEST(DistRouterTest, FullReversalControlPlaneWorksToo) {
  std::mt19937_64 rng(11);
  const Instance inst = make_random_instance(16, 12, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 5, .seed = 9});
  DistLinkReversal proto(inst, ReversalRule::kFull, net);
  proto.start();
  net.run_until_idle();
  ASSERT_TRUE(proto.converged());

  DistRouter router(proto, net);
  for (NodeId u = 0; u < 16; ++u) router.inject(u);
  net.run_until_idle();
  EXPECT_EQ(router.stats().delivered, 16u);
}

}  // namespace
}  // namespace lr

#include "sim/dist_leader.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lr {
namespace {

struct LeaderParam {
  std::size_t n;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const LeaderParam& p) {
    return os << "n" << p.n << "_s" << p.seed;
  }
};

class DistLeaderSweep : public ::testing::TestWithParam<LeaderParam> {};

TEST_P(DistLeaderSweep, ElectsMaxIdWithSinkCertificate) {
  std::mt19937_64 rng(GetParam().seed * 131 + 7);
  const Graph g = make_random_connected_graph(GetParam().n, GetParam().n, rng);
  Network net(g, {.min_delay = 1, .max_delay = 8, .seed = GetParam().seed});
  DistLeaderElection election(g, net);
  election.start();
  net.run_until_idle();

  const auto leader = election.agreed_leader();
  ASSERT_TRUE(leader.has_value()) << "candidates did not converge";
  EXPECT_EQ(*leader, GetParam().n - 1) << "max id must win";
  EXPECT_TRUE(election.leader_is_unique_sink())
      << "the elected leader must be the unique sink (local certificate)";
}

TEST(DistLeaderTest, ShardedLanesMatchSerialElection) {
  // The election on the sharded per-node event lanes must reproduce the
  // serial run exactly — counters, quiescence time, and outcome — at
  // every worker count and with either time-index backend.
  std::mt19937_64 rng(99);
  const Graph g = make_random_connected_graph(40, 36, rng);
  const NetworkConfig base{.min_delay = 1, .max_delay = 8, .seed = 13};

  Network serial_net(g, base);
  DistLeaderElection serial(g, serial_net);
  serial.start();
  serial_net.run_until_idle();
  const auto serial_leader = serial.agreed_leader();
  ASSERT_TRUE(serial_leader.has_value());

  for (const std::size_t workers : {2u, 4u}) {
    for (const EventSchedulerKind scheduler :
         {EventSchedulerKind::kHeap, EventSchedulerKind::kWheel}) {
      NetworkConfig config = base;
      config.scheduler = scheduler;
      config.sim_threads = workers;
      Network net(g, config);
      DistLeaderElection election(g, net);
      election.start();
      net.run_until_idle();
      EXPECT_EQ(election.agreed_leader(), serial_leader);
      EXPECT_TRUE(election.leader_is_unique_sink());
      EXPECT_EQ(net.now(), serial_net.now());
      EXPECT_EQ(net.messages_sent(), serial_net.messages_sent());
      EXPECT_EQ(net.messages_delivered(), serial_net.messages_delivered());
      EXPECT_EQ(election.candidate_adoptions(), serial.candidate_adoptions());
      EXPECT_EQ(election.height_steps(), serial.height_steps());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistLeaderSweep,
                         ::testing::Values(LeaderParam{4, 1}, LeaderParam{8, 2},
                                           LeaderParam{8, 3}, LeaderParam{16, 4},
                                           LeaderParam{16, 5}, LeaderParam{32, 6},
                                           LeaderParam{64, 7}),
                         [](const ::testing::TestParamInfo<LeaderParam>& info) {
                           std::ostringstream oss;
                           oss << info.param;
                           return oss.str();
                         });

TEST(DistLeaderTest, RingElection) {
  const Graph ring = make_ring_graph(10);
  Network net(ring, {.min_delay = 1, .max_delay = 5, .seed = 3});
  DistLeaderElection election(ring, net);
  election.start();
  net.run_until_idle();
  EXPECT_EQ(election.agreed_leader(), std::optional<NodeId>{9});
  EXPECT_TRUE(election.leader_is_unique_sink());
  EXPECT_GT(election.candidate_adoptions(), 0u);
}

TEST(DistLeaderTest, MaxIdNodeNeverAdopts) {
  const Graph g = make_complete_graph(6);
  Network net(g, {.min_delay = 1, .max_delay = 3, .seed = 4});
  DistLeaderElection election(g, net);
  election.start();
  net.run_until_idle();
  EXPECT_EQ(election.candidate(5), 5u);
  EXPECT_EQ(election.agreed_leader(), std::optional<NodeId>{5});
}

TEST(DistLeaderTest, StarTopologyWithLeafLeader) {
  // Leaves only talk through the hub: adoption must still propagate the
  // max leaf id everywhere.
  const Graph star = make_star_graph(9);  // hub 0, leaves 1..8
  Network net(star, {.min_delay = 1, .max_delay = 4, .seed = 5});
  DistLeaderElection election(star, net);
  election.start();
  net.run_until_idle();
  EXPECT_EQ(election.agreed_leader(), std::optional<NodeId>{8});
  EXPECT_TRUE(election.leader_is_unique_sink());
}

TEST(DistLeaderTest, UnitDiskManetTopology) {
  std::mt19937_64 rng(9);
  const Graph g = make_unit_disk_graph(24, 0.35, rng);
  Network net(g, {.min_delay = 1, .max_delay = 10, .seed = 6});
  DistLeaderElection election(g, net);
  election.start();
  net.run_until_idle();
  EXPECT_EQ(election.agreed_leader(), std::optional<NodeId>{23});
  EXPECT_TRUE(election.leader_is_unique_sink());
}

TEST(DistLeaderTest, DuplicatedMessagesDoNotBreakElection) {
  std::mt19937_64 rng(10);
  const Graph g = make_random_connected_graph(16, 12, rng);
  Network net(g, {.min_delay = 1, .max_delay = 6, .seed = 7, .duplicate_probability = 0.4});
  DistLeaderElection election(g, net);
  election.start();
  net.run_until_idle();
  EXPECT_EQ(election.agreed_leader(), std::optional<NodeId>{15});
  EXPECT_TRUE(election.leader_is_unique_sink());
}

TEST(DistLeaderTest, TwoNodeEdgeCase) {
  const Graph g(2, {{0, 1}});
  Network net(g, {.min_delay = 1, .max_delay = 2, .seed = 8});
  DistLeaderElection election(g, net);
  election.start();
  net.run_until_idle();
  EXPECT_EQ(election.agreed_leader(), std::optional<NodeId>{1});
  EXPECT_TRUE(election.leader_is_unique_sink());
}

}  // namespace
}  // namespace lr

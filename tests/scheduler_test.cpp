#include "automata/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "automata/executor.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(SchedulerTest, LowestIdPicksSmallestSink) {
  Graph g(3, {{0, 1}, {1, 2}});
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kForward});  // 1->0, 1->2
  OneStepPRAutomaton pr(g, std::move(o), 1);                      // destination: the source
  LowestIdScheduler scheduler;
  const auto choice = scheduler.choose(pr);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, 0u);
}

TEST(SchedulerTest, AllSchedulersReturnNulloptAtQuiescence) {
  // Chain oriented towards destination 0: already quiescent.
  Graph g(3, {{0, 1}, {1, 2}});
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kBackward});
  OneStepPRAutomaton pr(g, std::move(o), 0);
  ASSERT_TRUE(pr.quiescent());

  LowestIdScheduler lowest;
  RandomScheduler random(1);
  RoundRobinScheduler rr;
  FarthestFirstScheduler farthest;
  EXPECT_FALSE(lowest.choose(pr).has_value());
  EXPECT_FALSE(random.choose(pr).has_value());
  EXPECT_FALSE(rr.choose(pr).has_value());
  EXPECT_FALSE(farthest.choose(pr).has_value());
}

TEST(SchedulerTest, RandomSchedulerIsDeterministicGivenSeed) {
  std::mt19937_64 rng(20);
  Instance inst = make_random_instance(20, 12, rng);
  const auto run_with_seed = [&inst](std::uint64_t seed) {
    OneStepPRAutomaton pr(inst);
    RandomScheduler scheduler(seed);
    std::vector<NodeId> fired;
    run_to_quiescence(pr, scheduler,
                      [&fired](const OneStepPRAutomaton&, NodeId u) { fired.push_back(u); });
    return fired;
  };
  EXPECT_EQ(run_with_seed(7), run_with_seed(7));
  // Different seeds overwhelmingly give different schedules on this size.
  EXPECT_NE(run_with_seed(7), run_with_seed(8));
}

TEST(SchedulerTest, ReplayReproducesExecution) {
  std::mt19937_64 rng(21);
  Instance inst = make_random_instance(15, 10, rng);
  OneStepPRAutomaton original(inst);
  RandomScheduler random(99);
  std::vector<NodeId> script;
  run_to_quiescence(original, random,
                    [&script](const OneStepPRAutomaton&, NodeId u) { script.push_back(u); });

  OneStepPRAutomaton replayed(inst);
  ReplayScheduler replay(script);
  const RunResult result = run_to_quiescence(replayed, replay);
  EXPECT_EQ(result.steps, script.size());
  EXPECT_EQ(replay.consumed(), script.size());
  EXPECT_TRUE(original.orientation() == replayed.orientation());
}

TEST(SchedulerTest, ReplayStopsOnNonEnabledNode) {
  Instance inst = make_worst_case_chain(3);
  OneStepPRAutomaton pr(inst);
  ReplayScheduler replay({1});  // node 1 is not a sink initially
  EXPECT_FALSE(replay.choose(pr).has_value());
  EXPECT_EQ(replay.consumed(), 0u);
}

TEST(SchedulerTest, RoundRobinVisitsAllSinksFairly) {
  // On the sink/source star, several leaves are sinks at once; round-robin
  // must cycle through them rather than starving any.
  Instance inst = make_sink_source_instance(11);
  OneStepPRAutomaton pr(inst);
  RoundRobinScheduler scheduler;
  std::set<NodeId> fired_first_round;
  for (int i = 0; i < 4; ++i) {
    const auto choice = scheduler.choose(pr);
    ASSERT_TRUE(choice.has_value());
    EXPECT_TRUE(fired_first_round.insert(*choice).second)
        << "round robin repeated " << *choice << " while other sinks waited";
    pr.apply(*choice);
  }
}

TEST(SchedulerTest, FarthestFirstPicksMostDistantSink) {
  // Star, destination = leaf 1; the initial sinks are the even leaves, all
  // at distance 2 from the destination.  On the away-chain the unique sink
  // is trivially farthest; build a Y-shape instead:
  //   0 - 1 - 2 - 3 and 1 - 4; destination 3; orient everything away from 3.
  Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {1, 4}});
  // Distances from 3: node 2: 1, node 1: 2, nodes 0, 4: 3.
  // Orientation: edges point towards 0/4 so that 0 and 4 are sinks:
  // 1->0, 2->1, 3->2, 1->4.
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kBackward, EdgeSense::kBackward,
                    EdgeSense::kForward});
  OneStepPRAutomaton pr(g, std::move(o), 3);
  FarthestFirstScheduler scheduler;
  const auto choice = scheduler.choose(pr);
  ASSERT_TRUE(choice.has_value());
  // Both 0 and 4 are at distance 3; ties break towards the larger id.
  EXPECT_EQ(*choice, 4u);
}

TEST(SchedulerTest, MaximalSetSchedulerFiresAllSinks) {
  Instance inst = make_sink_source_instance(9);
  PRAutomaton pr(inst);
  MaximalSetScheduler scheduler;
  const auto choice = scheduler.choose(pr);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, pr.enabled_sinks());
  EXPECT_GT(choice->size(), 1u);
}

TEST(SchedulerTest, RandomSetSchedulerReturnsNonEmptySinkSubsets) {
  Instance inst = make_sink_source_instance(9);
  PRAutomaton pr(inst);
  RandomSetScheduler scheduler(33);
  for (int i = 0; i < 10; ++i) {
    const auto choice = scheduler.choose(pr);
    ASSERT_TRUE(choice.has_value());
    ASSERT_FALSE(choice->empty());
    EXPECT_TRUE(pr.enabled(*choice));
  }
}

TEST(SchedulerTest, SingletonSetSchedulerDrivesToQuiescence) {
  Instance inst = make_worst_case_chain(7);
  PRAutomaton pr(inst);
  SingletonSetScheduler scheduler(4);
  const RunResult result = run_to_quiescence_set(pr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
  EXPECT_EQ(result.steps, result.node_steps);
}

TEST(SchedulerTest, MaxStepsBudgetRespected) {
  Instance inst = make_worst_case_chain(64);
  OneStepPRAutomaton pr(inst);
  LowestIdScheduler scheduler;
  RunOptions options;
  options.max_steps = 5;
  const RunResult result = run_to_quiescence(pr, scheduler, options);
  EXPECT_EQ(result.steps, 5u);
  EXPECT_FALSE(result.quiescent);
}

}  // namespace
}  // namespace lr

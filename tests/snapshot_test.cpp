// Tests for the mmap-backed instance snapshots (graph/snapshot.hpp):
// save -> load round-trip byte-identity of every CSR array, instance
// thawing, borrowed-snapshot lifetime rules, and loud rejection of
// corrupted files (bad magic, bad version, truncation, extent
// disagreement, payload bit flips) in the style of shard_protocol_test.

#include "graph/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

/// Self-cleaning scratch directory for snapshot files.
struct TempDir {
  std::string path;

  TempDir() {
    char name[] = "/tmp/lr_snapshot_test_XXXXXX";
    if (::mkdtemp(name) == nullptr) throw std::runtime_error("mkdtemp failed");
    path = name;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

Instance sample_instance() {
  std::mt19937_64 rng(7);
  Instance instance = make_random_instance(60, 80, rng);
  instance.name = "snapshot-test-workload";
  instance.destination = 3;
  return instance;
}

template <typename T>
bool spans_equal(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

TEST(Snapshot, RoundTripIsByteIdenticalPerArray) {
  const TempDir dir;
  const Instance instance = sample_instance();
  const CsrGraph csr(instance.graph, instance.senses);
  const std::string path = dir.file("roundtrip.lrsnap");
  save_snapshot(path, instance, csr);

  const Snapshot loaded = Snapshot::load(path);
  EXPECT_TRUE(loaded.csr().is_borrowed());
  EXPECT_EQ(loaded.num_nodes(), csr.num_nodes());
  EXPECT_EQ(loaded.num_edges(), csr.num_edges());
  EXPECT_EQ(loaded.destination(), instance.destination);
  EXPECT_EQ(loaded.name(), instance.name);
  EXPECT_GT(loaded.file_bytes(), std::size_t{64});

  // The fingerprint covers everything, but the satellite contract is
  // per-array byte identity — assert each flat window explicitly.
  const CsrGraph& reloaded = loaded.csr();
  EXPECT_TRUE(spans_equal(reloaded.raw_offsets(), csr.raw_offsets()));
  EXPECT_TRUE(spans_equal(reloaded.raw_neighbors(), csr.raw_neighbors()));
  EXPECT_TRUE(spans_equal(reloaded.raw_edges(), csr.raw_edges()));
  EXPECT_TRUE(spans_equal(reloaded.raw_mirrors(), csr.raw_mirrors()));
  EXPECT_TRUE(spans_equal(reloaded.raw_partition_neighbors(), csr.raw_partition_neighbors()));
  EXPECT_TRUE(spans_equal(reloaded.raw_partition_positions(), csr.raw_partition_positions()));
  EXPECT_TRUE(spans_equal(reloaded.raw_splits(), csr.raw_splits()));
  EXPECT_TRUE(spans_equal(reloaded.initial_senses(), csr.initial_senses()));
  EXPECT_EQ(reloaded.fingerprint(), csr.fingerprint());
}

TEST(Snapshot, ThawReconstructsTheInstance) {
  const TempDir dir;
  const Instance instance = sample_instance();
  const CsrGraph csr(instance.graph, instance.senses);
  const std::string path = dir.file("thaw.lrsnap");
  save_snapshot(path, instance, csr);

  const Snapshot loaded = Snapshot::load(path);
  const Instance thawed = loaded.thaw_instance();
  EXPECT_EQ(thawed.graph, instance.graph);
  EXPECT_EQ(thawed.senses, instance.senses);
  EXPECT_EQ(thawed.destination, instance.destination);
  EXPECT_EQ(thawed.name, instance.name);
}

TEST(Snapshot, MaterializedCopyOutlivesTheMapping) {
  const TempDir dir;
  const Instance instance = sample_instance();
  const CsrGraph csr(instance.graph, instance.senses);
  const std::string path = dir.file("materialize.lrsnap");
  save_snapshot(path, instance, csr);

  CsrGraph copy;
  {
    const Snapshot loaded = Snapshot::load(path);
    copy = loaded.csr();  // copies the borrowed views: still aliases the mapping
    EXPECT_TRUE(copy.is_borrowed());
    copy.materialize();  // now owns its bytes
    EXPECT_FALSE(copy.is_borrowed());
  }  // mapping unmapped here
  EXPECT_EQ(copy.fingerprint(), csr.fingerprint());
}

TEST(Snapshot, PatchingABorrowedSnapshotMaterializesFirst) {
  const TempDir dir;
  const Instance instance = sample_instance();
  const CsrGraph csr(instance.graph, instance.senses);
  const std::string path = dir.file("patch.lrsnap");
  save_snapshot(path, instance, csr);

  const Snapshot loaded = Snapshot::load(path);
  CsrGraph patched = loaded.csr();
  const std::uint64_t initial = patched.fingerprint();
  const auto [u, v] = instance.graph.edges().front();
  const EdgeSense sense = instance.senses.front();
  patched.remove_link(u, v);
  EXPECT_FALSE(patched.is_borrowed()) << "patching must not write through the mmap";
  EXPECT_NE(patched.fingerprint(), initial);
  patched.insert_link(u, v, sense);
  EXPECT_EQ(patched.fingerprint(), initial);
  // The mapping itself stayed pristine.
  EXPECT_EQ(loaded.csr().fingerprint(), initial);
}

TEST(Snapshot, SaveIsAtomicAndIdempotent) {
  const TempDir dir;
  const Instance instance = sample_instance();
  const CsrGraph csr(instance.graph, instance.senses);
  const std::string path = dir.file("atomic.lrsnap");
  save_snapshot(path, instance, csr);
  save_snapshot(path, instance, csr);  // overwrite in place via tmp+rename

  const Snapshot loaded = Snapshot::load(path);
  EXPECT_EQ(loaded.csr().fingerprint(), csr.fingerprint());

  // No temp files may survive a completed save.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
}

// ---------------------------------------------------------------------------
// Corruption battery — every tampered file must be rejected loudly.
// Header layout (snapshot.cpp): magic[8], version u32, reserved u32, then
// u64 num_nodes / num_edges / destination / name_bytes / payload_bytes /
// checksum; payload starts at byte 64.
// ---------------------------------------------------------------------------

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = sample_instance();
    csr_ = CsrGraph(instance_.graph, instance_.senses);
    path_ = dir_.file("victim.lrsnap");
    save_snapshot(path_, instance_, csr_);
    bytes_ = read_file(path_);
    ASSERT_GT(bytes_.size(), std::size_t{64});
  }

  /// Writes a tampered copy and expects load() to reject it.
  void expect_rejected(const std::vector<std::uint8_t>& bytes, const char* what) {
    const std::string tampered = dir_.file("tampered.lrsnap");
    write_file(tampered, bytes);
    EXPECT_THROW(Snapshot::load(tampered), std::runtime_error) << what;
  }

  TempDir dir_;
  Instance instance_;
  CsrGraph csr_;
  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(SnapshotCorruption, PristineFileLoads) {
  EXPECT_EQ(Snapshot::load(path_).csr().fingerprint(), csr_.fingerprint());
}

TEST_F(SnapshotCorruption, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = bytes_;
  bytes[0] ^= 0x5a;
  expect_rejected(bytes, "magic");
}

TEST_F(SnapshotCorruption, WrongVersionRejected) {
  std::vector<std::uint8_t> bytes = bytes_;
  bytes[8] ^= 0xff;  // version u32, little end
  expect_rejected(bytes, "version");
}

TEST_F(SnapshotCorruption, TruncationRejected) {
  // Below the header, at the header boundary, and mid-payload.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{17}, std::size_t{64}, bytes_.size() - 1}) {
    std::vector<std::uint8_t> bytes(bytes_.begin(),
                                    bytes_.begin() + static_cast<std::ptrdiff_t>(keep));
    expect_rejected(bytes, "truncation");
  }
}

TEST_F(SnapshotCorruption, ExtentDisagreementRejected) {
  // Bump num_edges: the declared extents no longer match payload_bytes /
  // the file size, independent of the checksum.
  std::vector<std::uint8_t> bytes = bytes_;
  bytes[24] += 1;  // num_edges u64, little end
  expect_rejected(bytes, "extents");
}

TEST_F(SnapshotCorruption, PayloadBitFlipRejectedByChecksum) {
  std::vector<std::uint8_t> bytes = bytes_;
  bytes[64 + (bytes.size() - 64) / 2] ^= 0x01;
  expect_rejected(bytes, "checksum");

  // The bench knob skips exactly the checksum, nothing else: the same
  // flipped file maps fine with verification off (contents are garbage,
  // but the structural extents still agree).
  const std::string tampered = dir_.file("tampered.lrsnap");
  EXPECT_NO_THROW({
    const Snapshot unchecked = Snapshot::load(tampered, /*verify_checksum=*/false);
    EXPECT_EQ(unchecked.num_edges(), csr_.num_edges());
  });
}

TEST_F(SnapshotCorruption, ChecksumFieldTamperRejected) {
  std::vector<std::uint8_t> bytes = bytes_;
  bytes[56] ^= 0x01;  // stored checksum itself
  expect_rejected(bytes, "stored checksum");
}

TEST_F(SnapshotCorruption, TrailingGarbageRejected) {
  std::vector<std::uint8_t> bytes = bytes_;
  bytes.push_back(0x77);
  expect_rejected(bytes, "file longer than declared extents");
}

TEST_F(SnapshotCorruption, MissingFileRejected) {
  EXPECT_THROW(Snapshot::load(dir_.file("does-not-exist.lrsnap")), std::runtime_error);
}

}  // namespace
}  // namespace lr

#include "core/gb_heights.hpp"

#include <gtest/gtest.h>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/invariants.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

/// Drives two single-step automata with the same schedule (always the
/// lowest-id enabled sink of automaton A) and asserts their orientations
/// stay identical after every step.  Returns the number of steps.
template <typename A, typename B>
std::size_t run_lockstep_and_compare(A& a, B& b, std::size_t max_steps = 100000) {
  std::size_t steps = 0;
  LowestIdScheduler scheduler;
  while (steps < max_steps) {
    const auto choice = scheduler.choose(a);
    if (!choice) break;
    EXPECT_TRUE(b.enabled(*choice)) << "divergent enabled sets at step " << steps;
    a.apply(*choice);
    b.apply(*choice);
    EXPECT_TRUE(a.orientation() == b.orientation()) << "divergence after step " << steps
                                                    << " (node " << *choice << ")";
    ++steps;
  }
  return steps;
}

TEST(GBHeightsTest, InitialHeightsConsistentWithInitialDag) {
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = make_random_instance(20, 15, rng);
    GBPairHeightsAutomaton pair(inst);
    GBTripleHeightsAutomaton triple(inst);
    EXPECT_TRUE(pair.heights_consistent());
    EXPECT_TRUE(triple.heights_consistent());
  }
}

TEST(GBHeightsTest, PairHeightsImplementFullReversal) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = make_random_instance(18, 12, rng);
    GBPairHeightsAutomaton gb(inst);
    FullReversalAutomaton fr(inst);
    run_lockstep_and_compare(gb, fr);
    EXPECT_TRUE(gb.quiescent());
    EXPECT_TRUE(fr.quiescent());
    EXPECT_TRUE(is_destination_oriented(gb.orientation(), inst.destination));
  }
}

TEST(GBHeightsTest, TripleHeightsImplementPartialReversal) {
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = make_random_instance(18, 12, rng);
    GBTripleHeightsAutomaton gb(inst);
    OneStepPRAutomaton pr(inst);
    run_lockstep_and_compare(gb, pr);
    EXPECT_TRUE(gb.quiescent());
    EXPECT_TRUE(pr.quiescent());
    EXPECT_TRUE(is_destination_oriented(gb.orientation(), inst.destination));
  }
}

TEST(GBHeightsTest, TripleMatchesPROnWorstCaseChain) {
  Instance inst = make_worst_case_chain(12);
  GBTripleHeightsAutomaton gb(inst);
  OneStepPRAutomaton pr(inst);
  run_lockstep_and_compare(gb, pr);
  EXPECT_TRUE(is_destination_oriented(gb.orientation(), inst.destination));
}

TEST(GBHeightsTest, TripleMatchesPROnSinkSourceInstance) {
  Instance inst = make_sink_source_instance(11);
  GBTripleHeightsAutomaton gb(inst);
  OneStepPRAutomaton pr(inst);
  run_lockstep_and_compare(gb, pr);
  EXPECT_TRUE(is_destination_oriented(gb.orientation(), inst.destination));
}

TEST(GBHeightsTest, HeightsStayConsistentThroughExecution) {
  std::mt19937_64 rng(6);
  Instance inst = make_random_instance(15, 10, rng);
  GBPairHeightsAutomaton pair(inst);
  RandomScheduler s1(1);
  run_to_quiescence(pair, s1, [](const GBPairHeightsAutomaton& a, NodeId) {
    ASSERT_TRUE(a.heights_consistent());
  });

  GBTripleHeightsAutomaton triple(inst);
  RandomScheduler s2(2);
  run_to_quiescence(triple, s2, [](const GBTripleHeightsAutomaton& a, NodeId) {
    ASSERT_TRUE(a.heights_consistent());
  });
}

TEST(GBHeightsTest, TotalOrderImpliesAcyclicAlways) {
  // The GB argument: heights form a total order, so G' is trivially acyclic
  // — verified via the generic checker at every step.
  std::mt19937_64 rng(7);
  Instance inst = make_random_instance(15, 12, rng);
  GBTripleHeightsAutomaton gb(inst);
  RandomScheduler scheduler(5);
  run_to_quiescence(gb, scheduler, [](const GBTripleHeightsAutomaton& a, NodeId) {
    ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
  });
}

TEST(GBHeightsTest, PairStepRaisesAboveAllNeighbors) {
  Instance inst = make_worst_case_chain(4);
  GBPairHeightsAutomaton gb(inst);
  LowestIdScheduler scheduler;
  run_to_quiescence(gb, scheduler, [](const GBPairHeightsAutomaton& a, NodeId fired) {
    for (const Incidence& inc : a.graph().neighbors(fired)) {
      EXPECT_GT(a.height(fired), a.height(inc.neighbor));
    }
  });
}

TEST(GBHeightsTest, ApplyThrowsWhenNotSink) {
  Instance inst = make_worst_case_chain(3);
  GBPairHeightsAutomaton pair(inst);
  EXPECT_THROW(pair.apply(0), std::logic_error);
  GBTripleHeightsAutomaton triple(inst);
  EXPECT_THROW(triple.apply(1), std::logic_error);
}

}  // namespace
}  // namespace lr

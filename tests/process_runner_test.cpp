#include "runner/process_runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "trace/report.hpp"

/// Acceptance battery of the multi-process sweep backend
/// (runner/process_runner.hpp): shard partitioning, spec round-trip,
/// byte-identical merges at every worker count (including sweeps that
/// exercise the engine / sim parallelism knobs), and the fault-injection
/// battery — each of exit / segv / truncate / stall must recover via a
/// retry with identical tables, and an unrecoverable fault must fail
/// loudly with per-shard diagnostics, never hang or drop runs.
///
/// The test binary is its own sweep worker: main() below forwards a
/// `sweep-worker` argv[1] straight to sweep_worker_main(), which is the
/// same self-hosting arrangement lr_cli and bench_e7 use.

namespace lr {
namespace {

/// RAII setenv/unsetenv so a failing test cannot leak fault knobs into
/// its neighbours.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

/// The byte string the determinism contract is stated over: records CSV,
/// aggregate CSV, and records JSON concatenated.
std::string tables_of(const SweepReport& report) {
  std::ostringstream os;
  write_table_csv(os, report.records_table());
  write_table_csv(os, report.aggregate_table());
  write_table_json(os, report.records_table());
  return os.str();
}

/// A small but heterogeneous sweep: 24 runs over two topologies and
/// three kernels, enough to spread non-trivially over up to 8 shards.
SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = {8, 12};
  sweep.algorithms = {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR,
                      AlgorithmKind::kTora};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2};
  sweep.max_steps = 200'000;
  return sweep;
}

/// A sweep through the distributed kernels with every parallelism knob
/// turned: wheel scheduler, sharded sim loop, parallel engine rounds.
/// Multi-process merges must stay byte-identical to the in-process run
/// even when the workers themselves are internally parallel.
SweepSpec parallel_knobs_sweep() {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain};
  sweep.sizes = {8, 10};
  sweep.algorithms = {AlgorithmKind::kDistFR, AlgorithmKind::kDistPR,
                      AlgorithmKind::kNewPR};
  sweep.schedulers = {SchedulerKind::kLowestId, SchedulerKind::kRandom};
  sweep.seeds = {3};
  sweep.max_steps = 200'000;
  sweep.sim_scheduler = EventSchedulerKind::kWheel;
  sweep.sim_threads = 2;
  sweep.engine_threads = 2;
  return sweep;
}

std::string in_process_tables(const SweepSpec& sweep) {
  const ScenarioRunner runner({.threads = 1});
  return tables_of(runner.run(sweep));
}

TEST(ShardRanges, PartitionIsContiguousBalancedAndComplete) {
  for (const std::size_t runs : {0u, 1u, 7u, 24u, 100u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u, 150u}) {
      const auto ranges = shard_ranges(runs, shards);
      if (runs == 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      // Clamped: never more shards than runs, never an empty shard.
      EXPECT_EQ(ranges.size(), std::min(runs, shards));
      std::size_t cursor = 0;
      std::size_t smallest = runs, largest = 0;
      for (const ShardRange& range : ranges) {
        EXPECT_EQ(range.begin, cursor);  // contiguous, in order
        EXPECT_GT(range.size(), 0u);
        smallest = std::min(smallest, range.size());
        largest = std::max(largest, range.size());
        cursor = range.end;
      }
      EXPECT_EQ(cursor, runs);             // complete coverage
      EXPECT_LE(largest - smallest, 1u);   // maximally balanced
      // Deterministic: same inputs, same partition.
      EXPECT_EQ(shard_ranges(runs, shards), ranges);
    }
  }
}

TEST(ShardRanges, LargerShardsComeFirst) {
  const auto ranges = shard_ranges(10, 4);  // 3,3,2,2
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].size(), 3u);
  EXPECT_EQ(ranges[1].size(), 3u);
  EXPECT_EQ(ranges[2].size(), 2u);
  EXPECT_EQ(ranges[3].size(), 2u);
}

TEST(FormatSweepSpec, RoundTripsThroughTheParser) {
  for (const SweepSpec& sweep : {small_sweep(), parallel_knobs_sweep()}) {
    const std::string text = format_sweep_spec(sweep);
    const SweepSpec reparsed = SweepSpec::parse_string(text);
    // The round-trip contract is stated over the expansion.
    const auto original = sweep.expand();
    const auto recovered = reparsed.expand();
    ASSERT_EQ(recovered.size(), original.size());
    // A second format pass must be a fixed point.
    EXPECT_EQ(format_sweep_spec(reparsed), text);
    // Spot-check the scalars survived.
    EXPECT_EQ(reparsed.sim_scheduler, sweep.sim_scheduler);
    EXPECT_EQ(reparsed.sim_threads, sweep.sim_threads);
    EXPECT_EQ(reparsed.engine_threads, sweep.engine_threads);
    EXPECT_EQ(reparsed.path, sweep.path);
    EXPECT_EQ(reparsed.max_steps, sweep.max_steps);
  }
}

TEST(ProcessShardRunner, RejectsZeroWorkers) {
  EXPECT_THROW(ProcessShardRunner({.process_workers = 0}), std::invalid_argument);
}

TEST(ProcessShardRunner, ClampsWorkersToRunCount) {
  const ProcessShardRunner runner({.process_workers = 64});
  EXPECT_EQ(runner.resolved_workers(3), 3u);
  EXPECT_EQ(runner.resolved_workers(100), 64u);
  EXPECT_EQ(runner.resolved_workers(0), 0u);
}

TEST(ProcessShardRunner, TablesAreByteIdenticalAtEveryWorkerCount) {
  const SweepSpec sweep = small_sweep();
  const std::string baseline = in_process_tables(sweep);
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ProcessShardRunner runner({.threads = 1, .process_workers = workers});
    const SweepReport report = runner.run(sweep);
    EXPECT_EQ(tables_of(report), baseline) << workers << " workers";
    // Every shard completed on its first attempt.
    for (const ShardDiagnostics& diag : runner.shard_diagnostics()) {
      EXPECT_TRUE(diag.completed);
      EXPECT_EQ(diag.attempts, 1u);
      EXPECT_TRUE(diag.failures.empty());
    }
  }
}

TEST(ProcessShardRunner, ParallelismKnobsDoNotPerturbTheMerge) {
  const SweepSpec sweep = parallel_knobs_sweep();
  const std::string baseline = in_process_tables(sweep);
  for (const std::size_t workers : {2u, 4u}) {
    ProcessShardRunner runner({.threads = 2, .process_workers = workers});
    EXPECT_EQ(tables_of(runner.run(sweep)), baseline) << workers << " workers";
  }
}

TEST(ProcessShardRunner, EmptySweepYieldsEmptyReport) {
  SweepSpec sweep = small_sweep();
  sweep.seeds.clear();  // run_count() == 0
  ProcessShardRunner runner({.process_workers = 4});
  const SweepReport report = runner.run(sweep);
  EXPECT_TRUE(report.records.empty());
  EXPECT_TRUE(runner.shard_diagnostics().empty());
}

TEST(ProcessShardRunner, MergedCacheStatsCoverEveryRun) {
  const SweepSpec sweep = small_sweep();
  ProcessShardRunner runner({.threads = 1, .process_workers = 3});
  const SweepReport report = runner.run(sweep);
  // Every CSR-path run consults its worker's cache exactly once, and the
  // parent sums the per-worker counters.
  EXPECT_EQ(report.cache.hits + report.cache.misses, sweep.run_count());
  EXPECT_GT(report.cache.misses, 0u);
}

// ---------------------------------------------------------------------------
// Fault-injection battery
// ---------------------------------------------------------------------------

/// Each fault kind: the sweep must recover on the retry, the merged
/// tables must match the in-process baseline byte for byte, and the
/// diagnostics must record exactly one failed attempt on the faulted
/// shard.
class WorkerFaultRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkerFaultRecovery, RetriesOnceAndMergesIdentically) {
  const std::string kind = GetParam();
  const SweepSpec sweep = small_sweep();
  const std::string baseline = in_process_tables(sweep);

  // Arm the fault on shard 2, first attempt only.
  const ScopedEnv fault("LR_TEST_WORKER_FAULT", kind + ":2");
  // The stall fault only resolves via the inactivity watchdog; keep the
  // test fast with a short deadline (generous enough for a real frame).
  const ScopedEnv timeout("LR_TEST_WORKER_TIMEOUT_MS", "1500");

  ProcessShardRunner runner({.threads = 1, .process_workers = 4, .worker_retries = 2});
  const SweepReport report = runner.run(sweep);
  EXPECT_EQ(tables_of(report), baseline) << "fault kind " << kind;

  const auto& diagnostics = runner.shard_diagnostics();
  ASSERT_EQ(diagnostics.size(), 4u);
  for (const ShardDiagnostics& diag : diagnostics) {
    EXPECT_TRUE(diag.completed) << "shard " << diag.shard;
    if (diag.shard == 2) {
      EXPECT_EQ(diag.attempts, 2u);
      ASSERT_EQ(diag.failures.size(), 1u);
    } else {
      EXPECT_EQ(diag.attempts, 1u);
      EXPECT_TRUE(diag.failures.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaultKinds, WorkerFaultRecovery,
                         ::testing::Values("exit", "segv", "truncate", "stall"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(WorkerFaultExhaustion, BoundedRetriesThenLoudFailure) {
  const SweepSpec sweep = small_sweep();
  // Fault every attempt (99 >> retry budget) on shard 1.
  const ScopedEnv fault("LR_TEST_WORKER_FAULT", "exit:1:99");

  ProcessShardRunner runner({.threads = 1, .process_workers = 4, .worker_retries = 1});
  try {
    runner.run(sweep);
    FAIL() << "a shard faulting on every attempt must fail the sweep";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    // The message must name the dead shard and read as diagnostics, not
    // as a generic failure.
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("attempt"), std::string::npos) << what;
  }

  const auto& diagnostics = runner.shard_diagnostics();
  ASSERT_EQ(diagnostics.size(), 4u);
  for (const ShardDiagnostics& diag : diagnostics) {
    if (diag.shard == 1) {
      EXPECT_FALSE(diag.completed);
      EXPECT_EQ(diag.attempts, 2u);  // 1 + worker_retries
      EXPECT_EQ(diag.failures.size(), 2u);
    }
  }
}

TEST(WorkerFaultExhaustion, StallFaultNeverHangsTheSweep) {
  const SweepSpec sweep = small_sweep();
  const ScopedEnv fault("LR_TEST_WORKER_FAULT", "stall:0:99");
  const ScopedEnv timeout("LR_TEST_WORKER_TIMEOUT_MS", "400");
  ProcessShardRunner runner({.threads = 1, .process_workers = 2, .worker_retries = 1});
  // Two stalled attempts at ~400 ms each: the sweep must fail within the
  // watchdog budget rather than waiting on the wedged workers forever.
  EXPECT_THROW(runner.run(sweep), std::runtime_error);
  ASSERT_FALSE(runner.shard_diagnostics().empty());
  const ShardDiagnostics& diag = runner.shard_diagnostics()[0];
  EXPECT_FALSE(diag.completed);
  ASSERT_EQ(diag.failures.size(), 2u);
  EXPECT_NE(diag.failures[0].find("stalled"), std::string::npos) << diag.failures[0];
}

TEST(WorkerFaultRecoveryUnderLoad, MidSweepCrashStillMergesByteIdentically) {
  // The determinism-under-crashes acceptance test: a worker dying mid
  // sweep with internally parallel workers must not perturb a single
  // byte of the merged tables.
  const SweepSpec sweep = parallel_knobs_sweep();
  const std::string baseline = in_process_tables(sweep);
  const ScopedEnv fault("LR_TEST_WORKER_FAULT", "segv:0");
  ProcessShardRunner runner({.threads = 2, .process_workers = 2, .worker_retries = 2});
  EXPECT_EQ(tables_of(runner.run(sweep)), baseline);
}

}  // namespace
}  // namespace lr

/// Self-hosting worker dispatch: ProcessShardRunner fork/execs this very
/// binary as `<test> sweep-worker ...` (worker_command defaults to
/// /proc/self/exe), so forward that argv before gtest sees it.
int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "sweep-worker") {
    return lr::sweep_worker_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/bounds.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "trace/report.hpp"

/// Tests for the scenario-sweep engine: spec parsing and expansion order,
/// per-run seed derivation, thread-count-invariant determinism, degenerate
/// sweeps, and the CSV/JSON golden-file round-trip through trace/report.

namespace lr {
namespace {

// ---------------------------------------------------------------------------
// Sweep spec parsing
// ---------------------------------------------------------------------------

TEST(SweepSpecTest, ParsesFullSpecWithRangesAndComments) {
  const SweepSpec spec = SweepSpec::parse_string(
      "# a comment line\n"
      "topology  = chain, random   # trailing comment\n"
      "size      = 8, 16\n"
      "algorithm = fr, pr, newpr\n"
      "scheduler = lowest, random\n"
      "seed      = 1..3, 10\n"
      "max_steps = 5000\n");
  EXPECT_EQ(spec.topologies, (std::vector<TopologyKind>{TopologyKind::kChain,
                                                        TopologyKind::kRandom}));
  EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{8, 16}));
  EXPECT_EQ(spec.algorithms.size(), 3u);
  EXPECT_EQ(spec.schedulers.size(), 2u);
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2, 3, 10}));
  EXPECT_EQ(spec.max_steps, 5000u);
  EXPECT_EQ(spec.run_count(), 2u * 2 * 3 * 2 * 4);
}

TEST(SweepSpecTest, DefaultsSchedulerAndSeed) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain\n"
      "size = 8\n"
      "algorithm = pr\n");
  ASSERT_EQ(spec.schedulers, (std::vector<SchedulerKind>{SchedulerKind::kLowestId}));
  ASSERT_EQ(spec.seeds, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(spec.run_count(), 1u);
}

TEST(SweepSpecTest, RejectsMalformedInput) {
  EXPECT_THROW(SweepSpec::parse_string("topology = moebius\nsize=8\nalgorithm=pr\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse_string("size = 8\nalgorithm = pr\n"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse_string("topology = chain\ntopology = chain\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse_string("topology chain\n"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse_string("topology = chain\nsize = 9..5\nalgorithm = pr\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse_string("topology = chain\nsize = 8\nalgorithm = pr\n"
                                       "seed = 1..99999999\n"),
               std::invalid_argument);
}

TEST(SweepSpecTest, ParsesEventCoreOptionsAndStampsEveryRun) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain\n"
      "size = 8\n"
      "algorithm = dist-fr, dist-pr\n"
      "seed = 1, 2\n"
      "sim_scheduler = wheel\n"
      "sim_threads = 4\n");
  EXPECT_EQ(spec.sim_scheduler, EventSchedulerKind::kWheel);
  EXPECT_EQ(spec.sim_threads, 4u);
  for (const RunSpec& run : spec.expand()) {
    EXPECT_EQ(run.sim_scheduler, EventSchedulerKind::kWheel);
    EXPECT_EQ(run.sim_threads, 4u);
  }
}

TEST(SweepSpecTest, EventCoreOptionsDefaultToSerialHeap) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain\n"
      "size = 8\n"
      "algorithm = pr\n");
  EXPECT_EQ(spec.sim_scheduler, EventSchedulerKind::kHeap);
  EXPECT_EQ(spec.sim_threads, 1u);
}

TEST(SweepSpecTest, RejectsBadEventCoreOptions) {
  const std::string base =
      "topology = chain\n"
      "size = 8\n"
      "algorithm = pr\n";
  // Unknown backend token.
  EXPECT_THROW(SweepSpec::parse_string(base + "sim_scheduler = calendar\n"),
               std::invalid_argument);
  // Both are perf switches, not sweep axes: lists are rejected.
  EXPECT_THROW(SweepSpec::parse_string(base + "sim_scheduler = heap, wheel\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse_string(base + "sim_threads = 1, 2\n"),
               std::invalid_argument);
}

TEST(SweepSpecTest, ParsesServiceScalarsAndStampsEveryRun) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = random\n"
      "size = 16\n"
      "algorithm = service\n"
      "seed = 1, 2\n"
      "service_workload = lock\n"
      "service_clients = 12\n"
      "service_duration = 512\n");
  EXPECT_EQ(spec.service_workload, ServiceWorkload::kLock);
  EXPECT_EQ(spec.service_clients, 12u);
  EXPECT_EQ(spec.service_duration, 512u);
  for (const RunSpec& run : spec.expand()) {
    EXPECT_EQ(run.algorithm, AlgorithmKind::kService);
    EXPECT_EQ(run.service_workload, ServiceWorkload::kLock);
    EXPECT_EQ(run.service_clients, 12u);
    EXPECT_EQ(run.service_duration, 512u);
  }
}

TEST(SweepSpecTest, ServiceScalarsDefaultToMixedReferenceLoad) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain\n"
      "size = 8\n"
      "algorithm = service\n");
  EXPECT_EQ(spec.service_workload, ServiceWorkload::kMixed);
  EXPECT_EQ(spec.service_clients, 8u);
  EXPECT_EQ(spec.service_duration, 256u);
}

TEST(SweepSpecTest, RejectsBadServiceScalars) {
  const std::string base =
      "topology = chain\n"
      "size = 8\n"
      "algorithm = service\n";
  // Unknown workload token.
  EXPECT_THROW(SweepSpec::parse_string(base + "service_workload = batch\n"),
               std::invalid_argument);
  // Scalars, not sweep axes: lists are rejected.
  EXPECT_THROW(SweepSpec::parse_string(base + "service_workload = route, lock\n"),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse_string(base + "service_clients = 4, 8\n"),
               std::invalid_argument);
  // A service with zero clients is meaningless.
  EXPECT_THROW(SweepSpec::parse_string(base + "service_clients = 0\n"),
               std::invalid_argument);
}

TEST(SweepSpecTest, ServiceScalarsRoundTripThroughFormat) {
  SweepSpec spec;
  spec.topologies = {TopologyKind::kRandom};
  spec.sizes = {16};
  spec.algorithms = {AlgorithmKind::kService};
  spec.schedulers = {SchedulerKind::kLowestId};
  spec.seeds = {1, 2};
  spec.service_workload = ServiceWorkload::kLeader;
  spec.service_clients = 5;
  spec.service_duration = 128;
  const std::string text = format_sweep_spec(spec);
  const SweepSpec reparsed = SweepSpec::parse_string(text);
  EXPECT_EQ(reparsed.service_workload, ServiceWorkload::kLeader);
  EXPECT_EQ(reparsed.service_clients, 5u);
  EXPECT_EQ(reparsed.service_duration, 128u);
  EXPECT_EQ(format_sweep_spec(reparsed), text);
}

TEST(SweepSpecTest, ExpansionOrderIsSeedInnermost) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain, star\n"
      "size = 8\n"
      "algorithm = fr, pr\n"
      "seed = 1, 2\n");
  const std::vector<RunSpec> runs = spec.expand();
  ASSERT_EQ(runs.size(), 8u);
  EXPECT_EQ(runs[0].topology, TopologyKind::kChain);
  EXPECT_EQ(runs[0].algorithm, AlgorithmKind::kFullReversal);
  EXPECT_EQ(runs[0].seed, 1u);
  EXPECT_EQ(runs[1].seed, 2u);  // seed is the innermost axis
  EXPECT_EQ(runs[2].algorithm, AlgorithmKind::kOneStepPR);
  EXPECT_EQ(runs[4].topology, TopologyKind::kStar);
}

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

TEST(RunSpecTest, InstanceSeedIgnoresAlgorithmAndScheduler) {
  RunSpec a;
  a.topology = TopologyKind::kRandom;
  a.size = 32;
  a.seed = 7;
  a.algorithm = AlgorithmKind::kFullReversal;
  a.scheduler = SchedulerKind::kLowestId;
  RunSpec b = a;
  b.algorithm = AlgorithmKind::kOneStepPR;
  b.scheduler = SchedulerKind::kRandom;
  EXPECT_EQ(a.instance_seed(), b.instance_seed());

  RunSpec c = a;
  c.seed = 8;
  EXPECT_NE(a.instance_seed(), c.instance_seed());
  RunSpec d = a;
  d.size = 33;
  EXPECT_NE(a.instance_seed(), d.instance_seed());
}

TEST(RunSpecTest, DerivedStreamsAreDistinct) {
  const RunSpec spec;
  EXPECT_NE(spec.instance_seed(), spec.scheduler_seed());
  EXPECT_NE(spec.instance_seed(), spec.network_seed());
  EXPECT_NE(spec.scheduler_seed(), spec.network_seed());
}

TEST(RunSpecTest, SameSpecSameInstance) {
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 24;
  spec.seed = 5;
  const Instance first = make_instance(spec);
  const Instance second = make_instance(spec);
  EXPECT_EQ(first.graph.num_nodes(), second.graph.num_nodes());
  EXPECT_EQ(first.graph.num_edges(), second.graph.num_edges());
  EXPECT_EQ(first.senses, second.senses);
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

TEST(ExecuteRunTest, EveryAlgorithmKernelExecutesCleanly) {
  for (const AlgorithmKind algorithm :
       {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR, AlgorithmKind::kNewPR,
        AlgorithmKind::kHybrid, AlgorithmKind::kTora, AlgorithmKind::kDistFR,
        AlgorithmKind::kDistPR, AlgorithmKind::kSimRPrime, AlgorithmKind::kSimR,
        AlgorithmKind::kSimRRev, AlgorithmKind::kService}) {
    RunSpec spec;
    spec.topology = TopologyKind::kRandom;
    spec.size = 16;
    spec.algorithm = algorithm;
    spec.scheduler = SchedulerKind::kRandom;
    spec.seed = 3;
    const RunRecord record = execute_run(spec);
    EXPECT_TRUE(record.error.empty()) << algorithm_token(algorithm) << ": " << record.error;
    EXPECT_TRUE(record.converged) << algorithm_token(algorithm);
    EXPECT_EQ(record.nodes, 16u) << algorithm_token(algorithm);
  }
}

TEST(ExecuteRunTest, ChainWorkMatchesClosedForms) {
  RunSpec spec;
  spec.topology = TopologyKind::kChain;
  spec.size = 9;  // n_b = 8
  spec.algorithm = AlgorithmKind::kFullReversal;
  const RunRecord fr = execute_run(spec);
  EXPECT_EQ(fr.bad_nodes, 8u);
  EXPECT_EQ(fr.work, fr_chain_work(8));
  spec.algorithm = AlgorithmKind::kOneStepPR;
  const RunRecord pr = execute_run(spec);
  EXPECT_EQ(pr.work, pr_chain_work(8));
  EXPECT_GT(fr.rounds, 0u);
  EXPECT_GT(pr.rounds, 0u);
}

TEST(ExecuteRunTest, SimulationKernelsReportVerdicts) {
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 20;
  spec.seed = 11;
  spec.scheduler = SchedulerKind::kRandom;

  spec.algorithm = AlgorithmKind::kSimRPrime;
  const RunRecord rprime = execute_run(spec);
  EXPECT_EQ(rprime.relation, RelationVerdict::kHolds) << rprime.error;
  EXPECT_GE(rprime.abstract_steps, rprime.work);  // |S| one-step actions per set step

  spec.algorithm = AlgorithmKind::kSimR;
  const RunRecord r = execute_run(spec);
  EXPECT_EQ(r.relation, RelationVerdict::kHolds) << r.error;
  EXPECT_GE(r.abstract_steps, r.work);       // 1..2 NewPR steps per OneStepPR step
  EXPECT_LE(r.abstract_steps, 2 * r.work);

  spec.algorithm = AlgorithmKind::kSimRRev;
  const RunRecord rrev = execute_run(spec);
  EXPECT_EQ(rrev.relation, RelationVerdict::kHolds) << rrev.error;
  EXPECT_LE(rrev.abstract_steps, rrev.work);  // dummy steps map to empty sequences
}

TEST(ExecuteRunTest, UnsupportedSchedulerBecomesErrorRecordNotCrash) {
  RunSpec spec;
  spec.algorithm = AlgorithmKind::kSimRPrime;
  spec.scheduler = SchedulerKind::kRoundRobin;
  const RunRecord record = execute_run(spec);
  EXPECT_FALSE(record.error.empty());
  EXPECT_FALSE(record.converged);
}

// ---------------------------------------------------------------------------
// Parallel determinism (the sweep engine's core contract)
// ---------------------------------------------------------------------------

SweepSpec determinism_sweep() {
  // 2 topologies x 1 size x 3 algorithms x 2 schedulers x 5 seeds = 60 runs,
  // mixing deterministic and seeded-random kernels and schedulers.
  return SweepSpec::parse_string(
      "topology = chain, random\n"
      "size = 16\n"
      "algorithm = fr, pr, sim-r\n"
      "scheduler = lowest, random\n"
      "seed = 1..5\n");
}

TEST(ScenarioRunnerTest, AggregatesIdenticalAcrossThreadCounts) {
  const SweepSpec spec = determinism_sweep();
  ASSERT_GE(spec.run_count(), 50u);
  const SweepReport serial = ScenarioRunner({.threads = 1}).run(spec);
  const SweepReport parallel4 = ScenarioRunner({.threads = 4}).run(spec);
  const SweepReport parallel7 = ScenarioRunner({.threads = 7}).run(spec);

  std::ostringstream s1, s4, s7;
  write_table_csv(s1, serial.records_table());
  write_table_csv(s4, parallel4.records_table());
  write_table_csv(s7, parallel7.records_table());
  EXPECT_EQ(s1.str(), s4.str());
  EXPECT_EQ(s1.str(), s7.str());

  std::ostringstream a1, a4;
  write_table_csv(a1, serial.aggregate_table());
  write_table_csv(a4, parallel4.aggregate_table());
  EXPECT_EQ(a1.str(), a4.str());
}

// ---------------------------------------------------------------------------
// Sweep cache and execution-path invariance for the tora / dist-* kernels
// ---------------------------------------------------------------------------

TEST(SweepCacheTest, GeneratesOncePerTopologySizeSeed) {
  SweepCache cache;
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 12;
  spec.seed = 5;
  const auto first = cache.get(spec);
  spec.algorithm = AlgorithmKind::kDistPR;  // algorithm must not affect the key
  spec.scheduler = SchedulerKind::kRandom;  // neither must the scheduler
  const auto second = cache.get(spec);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  spec.seed = 6;
  const auto third = cache.get(spec);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(SweepCacheTest, LruBoundEvictsLeastRecentlyUsed) {
  SweepCache cache(2);
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 12;

  spec.seed = 1;
  cache.get(spec);  // cache: {1}
  spec.seed = 2;
  cache.get(spec);  // cache: {2, 1}
  spec.seed = 1;
  cache.get(spec);  // touch 1 -> cache: {1, 2}
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  spec.seed = 3;
  cache.get(spec);  // evicts 2 (least recently used), not 1
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);

  const std::uint64_t misses_before = cache.misses();
  spec.seed = 1;
  cache.get(spec);  // still resident: a hit
  EXPECT_EQ(cache.misses(), misses_before);
  spec.seed = 2;
  cache.get(spec);  // evicted earlier: regenerated
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_EQ(cache.evictions(), 2u);  // seed 3 was the LRU this time
}

TEST(SweepCacheTest, UnboundedCacheNeverEvicts) {
  SweepCache cache;
  EXPECT_EQ(cache.max_entries(), 0u);
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 12;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    spec.seed = seed;
    cache.get(spec);
  }
  EXPECT_EQ(cache.entries(), 16u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(SweepCacheTest, EvictedWorkloadsRegenerateIdentically) {
  SweepCache bounded(1);
  SweepCache unbounded;
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 12;
  spec.algorithm = AlgorithmKind::kDistPR;
  for (const std::uint64_t seed : {1u, 2u, 1u, 2u}) {  // every get after the
    spec.seed = seed;                                  // first two is a miss
    const RunRecord squeezed = execute_run(spec, &bounded);
    const RunRecord roomy = execute_run(spec, &unbounded);
    EXPECT_EQ(squeezed.work, roomy.work) << seed;
    EXPECT_EQ(squeezed.messages, roomy.messages) << seed;
    EXPECT_EQ(squeezed.converged, roomy.converged) << seed;
  }
  EXPECT_GE(bounded.evictions(), 3u);
  EXPECT_EQ(unbounded.evictions(), 0u);
}

TEST(ScenarioRunnerTest, CacheBoundDoesNotChangeSweepTables) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = {8, 12};
  sweep.algorithms = {AlgorithmKind::kTora, AlgorithmKind::kDistFR};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2, 3};

  const auto csv_of = [&sweep](std::size_t cache_cap) {
    const SweepReport report =
        ScenarioRunner(RunnerOptions{.threads = 2, .cache_max_entries = cache_cap}).run(sweep);
    std::ostringstream oss;
    write_table_csv(oss, report.records_table());
    write_table_csv(oss, report.aggregate_table());
    return oss.str();
  };
  EXPECT_EQ(csv_of(0), csv_of(1));
}

TEST(ScenarioRunnerTest, SweepReportSurfacesCacheCounters) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kRandom};
  sweep.sizes = {12};
  sweep.algorithms = {AlgorithmKind::kTora, AlgorithmKind::kDistFR};  // share workloads
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2};
  const SweepReport report = ScenarioRunner(RunnerOptions{.threads = 1}).run(sweep);
  EXPECT_EQ(report.cache.entries, 2u);
  EXPECT_EQ(report.cache.misses, 2u);
  EXPECT_EQ(report.cache.hits, 2u);  // the second kernel hits both workloads
  EXPECT_EQ(report.cache.evictions, 0u);
}

TEST(SweepCacheTest, FrozenInstanceMatchesFreshGeneration) {
  SweepCache cache;
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 16;
  spec.seed = 9;
  const auto frozen = cache.get(spec);
  const Instance fresh = make_instance(spec);
  EXPECT_EQ(frozen->instance.graph, fresh.graph);
  EXPECT_EQ(frozen->instance.senses, fresh.senses);
  EXPECT_EQ(frozen->instance.destination, fresh.destination);
  EXPECT_EQ(frozen->csr.num_nodes(), fresh.graph.num_nodes());
  EXPECT_EQ(frozen->csr.num_edges(), fresh.graph.num_edges());
}

TEST(SweepCacheTest, CachedAndUncachedRecordsAgreeForEveryKernel) {
  for (const AlgorithmKind algorithm :
       {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR, AlgorithmKind::kNewPR,
        AlgorithmKind::kHybrid, AlgorithmKind::kTora, AlgorithmKind::kDistFR,
        AlgorithmKind::kDistPR, AlgorithmKind::kSimR}) {
    SweepCache cache;
    RunSpec spec;
    spec.topology = TopologyKind::kRandom;
    spec.size = 12;
    spec.seed = 2;
    spec.algorithm = algorithm;
    const RunRecord cached = execute_run(spec, &cache);
    const RunRecord uncached = execute_run(spec);
    const std::string context = algorithm_token(algorithm);
    EXPECT_EQ(cached.work, uncached.work) << context;
    EXPECT_EQ(cached.edge_reversals, uncached.edge_reversals) << context;
    EXPECT_EQ(cached.rounds, uncached.rounds) << context;
    EXPECT_EQ(cached.messages, uncached.messages) << context;
    EXPECT_EQ(cached.converged, uncached.converged) << context;
    EXPECT_EQ(cached.error, uncached.error) << context;
  }
}

TEST(ScenarioRunnerTest, ToraAndDistTablesAreBytewisePathInvariant) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = {8, 12};
  sweep.algorithms = {AlgorithmKind::kTora, AlgorithmKind::kDistFR, AlgorithmKind::kDistPR};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2};

  const auto csv_of = [](const SweepSpec& spec) {
    const SweepReport report = ScenarioRunner(RunnerOptions{.threads = 2}).run(spec);
    std::ostringstream oss;
    write_table_csv(oss, report.records_table());
    write_table_csv(oss, report.aggregate_table());
    return oss.str();
  };
  SweepSpec csr = sweep;
  csr.path = ExecutionPath::kCsr;
  SweepSpec legacy = sweep;
  legacy.path = ExecutionPath::kLegacy;
  EXPECT_EQ(csv_of(csr), csv_of(legacy));
}

TEST(ScenarioRunnerTest, DistTablesAreBytewiseEventCoreInvariant) {
  // The event-core switches (scheduler backend, event-lane worker count)
  // are pure perf knobs: every combination must reproduce the serial-heap
  // tables byte for byte, including through the runner's worker pool cache.
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain, TopologyKind::kRandom};
  sweep.sizes = {8, 12};
  sweep.algorithms = {AlgorithmKind::kDistFR, AlgorithmKind::kDistPR};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2};

  const auto csv_of = [&sweep](EventSchedulerKind scheduler, std::size_t threads) {
    SweepSpec spec = sweep;
    spec.sim_scheduler = scheduler;
    spec.sim_threads = threads;
    const SweepReport report = ScenarioRunner(RunnerOptions{.threads = 2}).run(spec);
    std::ostringstream oss;
    write_table_csv(oss, report.records_table());
    write_table_csv(oss, report.aggregate_table());
    return oss.str();
  };
  const std::string baseline = csv_of(EventSchedulerKind::kHeap, 1);
  EXPECT_EQ(baseline, csv_of(EventSchedulerKind::kWheel, 1));
  EXPECT_EQ(baseline, csv_of(EventSchedulerKind::kHeap, 2));
  EXPECT_EQ(baseline, csv_of(EventSchedulerKind::kWheel, 4));
}

TEST(ScenarioRunnerTest, ThreadCountZeroResolvesToHardware) {
  EXPECT_GE(ScenarioRunner(RunnerOptions{}).threads(), 1u);
  EXPECT_EQ(ScenarioRunner({.threads = 3}).threads(), 3u);
}

TEST(ScenarioRunnerTest, EmptySweepYieldsHeaderOnlyTables) {
  const SweepReport report = ScenarioRunner({.threads = 2}).run(SweepSpec{});
  EXPECT_TRUE(report.records.empty());
  EXPECT_TRUE(report.records_table().rows.empty());
  EXPECT_TRUE(report.aggregate_table().rows.empty());
  EXPECT_FALSE(report.records_table().columns.empty());
}

TEST(ScenarioRunnerTest, DegenerateSingleNodeInstanceRuns) {
  RunSpec spec;
  spec.topology = TopologyKind::kChain;
  spec.size = 1;  // destination only: no edges, no bad nodes, nothing to do
  spec.algorithm = AlgorithmKind::kOneStepPR;
  const RunRecord record = execute_run(spec);
  EXPECT_TRUE(record.error.empty()) << record.error;
  EXPECT_EQ(record.work, 0u);
  EXPECT_EQ(record.bad_nodes, 0u);
  EXPECT_TRUE(record.converged);
}

TEST(ScenarioRunnerTest, AggregateCountsRelationVerdictsAndConvergence) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = random\n"
      "size = 12\n"
      "algorithm = pr, sim-rprime\n"
      "scheduler = random\n"
      "seed = 1..4\n");
  const SweepReport report = ScenarioRunner({.threads = 2}).run(spec);
  const Table aggregate = report.aggregate_table();
  ASSERT_EQ(aggregate.rows.size(), 2u);  // one group per algorithm
  const auto cell = [&](std::size_t row, const std::string& column) {
    for (std::size_t c = 0; c < aggregate.columns.size(); ++c) {
      if (aggregate.columns[c] == column) return aggregate.rows[row][c];
    }
    ADD_FAILURE() << "no column " << column;
    return std::string{};
  };
  EXPECT_EQ(cell(0, "algorithm"), "pr");
  EXPECT_EQ(cell(0, "runs"), "4");
  EXPECT_EQ(cell(0, "converged"), "4");
  EXPECT_EQ(cell(0, "relation_checked"), "0");
  EXPECT_EQ(cell(1, "algorithm"), "sim-rprime");
  EXPECT_EQ(cell(1, "relation_checked"), "4");
  EXPECT_EQ(cell(1, "relation_ok"), "4");
}

// ---------------------------------------------------------------------------
// Report tables: golden strings and round-trip
// ---------------------------------------------------------------------------

TEST(ReportTableTest, CsvGoldenWithQuoting) {
  Table table;
  table.columns = {"name", "value", "note"};
  table.add_row({"plain", "42", "no quoting"});
  table.add_row({"comma,case", "3.5", "quote \"this\""});
  std::ostringstream os;
  write_table_csv(os, table);
  EXPECT_EQ(os.str(),
            "name,value,note\n"
            "plain,42,no quoting\n"
            "\"comma,case\",3.5,\"quote \"\"this\"\"\"\n");
}

TEST(ReportTableTest, JsonGoldenTypesNumbersAndEscapes) {
  Table table;
  table.columns = {"name", "value"};
  table.add_row({"answer", "42"});
  table.add_row({"ratio", "-1.5"});
  table.add_row({"text \"q\"", "007"});  // leading zero stays a string
  table.add_row({"seed", "5294858384698045469"});  // > 2^53 stays a string
  std::ostringstream os;
  write_table_json(os, table);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"name\": \"answer\", \"value\": 42},\n"
            "  {\"name\": \"ratio\", \"value\": -1.5},\n"
            "  {\"name\": \"text \\\"q\\\"\", \"value\": \"007\"},\n"
            "  {\"name\": \"seed\", \"value\": \"5294858384698045469\"}\n"
            "]\n");
}

TEST(ReportTableTest, CsvRoundTripsExactly) {
  Table table;
  table.columns = {"a", "b"};
  table.add_row({"x,y", "line\nbreak"});
  table.add_row({"\"quoted\"", ""});
  std::ostringstream os;
  write_table_csv(os, table);
  std::istringstream is(os.str());
  EXPECT_EQ(read_table_csv(is), table);
}

TEST(ReportTableTest, RejectsRaggedRowsAndBadCsv) {
  Table table;
  table.columns = {"a", "b"};
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  std::istringstream ragged("a,b\n1\n");
  EXPECT_THROW(read_table_csv(ragged), std::invalid_argument);
  std::istringstream unterminated("a\n\"open\n");
  EXPECT_THROW(read_table_csv(unterminated), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW(read_table_csv(empty), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scale topologies, churn schedules, and snapshot-dir persistence
// ---------------------------------------------------------------------------

/// Self-cleaning scratch directory for snapshot-dir sweeps.
struct ScratchDir {
  std::string path;
  ScratchDir() {
    char name[] = "/tmp/lr_runner_test_XXXXXX";
    if (::mkdtemp(name) == nullptr) throw std::runtime_error("mkdtemp failed");
    path = name;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(RunSpecTest, ScaleTopologyTokensRoundTrip) {
  for (const TopologyKind kind :
       {TopologyKind::kTorus, TopologyKind::kWideRandom, TopologyKind::kWaypoint}) {
    EXPECT_EQ(parse_topology(topology_token(kind)), kind);
  }
}

TEST(SweepSpecTest, ChurnEventsRoundTripsThroughFormatAndStampsRuns) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = waypoint\n"
      "size = 32\n"
      "algorithm = tora\n"
      "churn_events = 24\n"
      "seed = 1, 2\n");
  EXPECT_EQ(spec.churn_events, 24u);
  for (const RunSpec& run : spec.expand()) EXPECT_EQ(run.churn_events, 24u);
  const std::string text = format_sweep_spec(spec);
  EXPECT_EQ(SweepSpec::parse_string(text).churn_events, 24u);
  EXPECT_THROW(SweepSpec::parse_string("topology = waypoint\nsize = 8\nalgorithm = tora\n"
                                       "churn_events = 1, 2\n"),
               std::invalid_argument);
}

TEST(RunSpecTest, WaypointChurnScheduleSharesTheStaticInstance) {
  RunSpec spec;
  spec.topology = TopologyKind::kWaypoint;
  spec.size = 64;
  spec.seed = 5;
  spec.churn_events = 40;
  const ChurnInstance churned = make_churn_instance(spec);
  EXPECT_GE(churned.churn.size(), 40u);

  // The schedule draws come strictly after instance construction, so the
  // static part is identical to make_instance at every churn length.
  const Instance static_part = make_instance(spec);
  EXPECT_EQ(churned.instance.graph, static_part.graph);
  EXPECT_EQ(churned.instance.senses, static_part.senses);
  RunSpec longer = spec;
  longer.churn_events = 80;
  const ChurnInstance more = make_churn_instance(longer);
  EXPECT_EQ(more.instance.graph, static_part.graph);
  EXPECT_GE(more.churn.size(), 80u);

  // churn_events = 0 and non-waypoint topologies get empty schedules.
  RunSpec quiet = spec;
  quiet.churn_events = 0;
  EXPECT_TRUE(make_churn_instance(quiet).churn.empty());
  RunSpec torus = spec;
  torus.topology = TopologyKind::kTorus;
  EXPECT_TRUE(make_churn_instance(torus).churn.empty());
}

TEST(SweepCacheTest, ChurnLengthIsPartOfTheKey) {
  SweepCache cache;
  RunSpec spec;
  spec.topology = TopologyKind::kWaypoint;
  spec.size = 32;
  spec.seed = 3;
  spec.churn_events = 16;
  const auto short_schedule = cache.get(spec);
  EXPECT_GE(short_schedule->churn.size(), 16u);
  spec.churn_events = 32;
  const auto long_schedule = cache.get(spec);
  EXPECT_NE(short_schedule.get(), long_schedule.get());
  EXPECT_GE(long_schedule->churn.size(), 32u);
  EXPECT_EQ(cache.entries(), 2u);
  // Same static workload underneath, regardless of schedule length.
  EXPECT_EQ(short_schedule->csr.fingerprint(), long_schedule->csr.fingerprint());
}

TEST(SweepCacheTest, SnapshotDirReloadIsByteIdentical) {
  const ScratchDir dir;
  RunSpec spec;
  spec.topology = TopologyKind::kTorus;
  spec.size = 48;
  spec.seed = 9;

  SweepCache writer(0, dir.path);
  const auto generated = writer.get(spec);
  EXPECT_EQ(writer.snapshot_saves(), 1u);
  EXPECT_EQ(writer.snapshot_loads(), 0u);

  SweepCache reader(0, dir.path);
  const auto reloaded = reader.get(spec);
  EXPECT_EQ(reader.snapshot_loads(), 1u);
  EXPECT_NE(reloaded->backing, nullptr);
  EXPECT_TRUE(reloaded->csr.is_borrowed());
  EXPECT_EQ(reloaded->csr.fingerprint(), generated->csr.fingerprint());
  EXPECT_EQ(reloaded->instance.graph, generated->instance.graph);
  EXPECT_EQ(reloaded->instance.senses, generated->instance.senses);

  // Churn workloads bypass the files entirely (schedules are not
  // persisted) — no saves, no loads.
  RunSpec churny;
  churny.topology = TopologyKind::kWaypoint;
  churny.size = 32;
  churny.seed = 9;
  churny.churn_events = 8;
  SweepCache churn_cache(0, dir.path);
  const auto churned = churn_cache.get(churny);
  EXPECT_GE(churned->churn.size(), 8u);
  EXPECT_EQ(churn_cache.snapshot_saves(), 0u);
  EXPECT_EQ(churn_cache.snapshot_loads(), 0u);
}

TEST(ScenarioRunnerTest, SnapshotDirSweepTablesAreByteIdentical) {
  const ScratchDir dir;
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = torus, widerandom\n"
      "size = 48\n"
      "algorithm = fr, pr\n"
      "seed = 1, 2\n");

  const SweepReport plain = ScenarioRunner({.threads = 1}).run(spec);
  const SweepReport cold = ScenarioRunner({.threads = 1, .snapshot_dir = dir.path}).run(spec);
  const SweepReport warm = ScenarioRunner({.threads = 1, .snapshot_dir = dir.path}).run(spec);

  std::ostringstream p, c, w;
  write_table_csv(p, plain.records_table());
  write_table_csv(c, cold.records_table());
  write_table_csv(w, warm.records_table());
  EXPECT_EQ(p.str(), c.str());
  EXPECT_EQ(p.str(), w.str());

  // The cold pass generated and persisted every workload; the warm pass
  // served every miss from the files.
  EXPECT_EQ(cold.cache.snapshot_loads, 0u);
  EXPECT_GT(cold.cache.snapshot_saves, 0u);
  EXPECT_EQ(warm.cache.snapshot_loads, warm.cache.misses);
  EXPECT_GT(warm.cache.snapshot_loads, 0u);
}

TEST(ReportTableTest, SweepRecordsRoundTripThroughCsv) {
  const SweepSpec spec = SweepSpec::parse_string(
      "topology = chain\n"
      "size = 8\n"
      "algorithm = fr, pr, newpr\n"
      "seed = 1, 2\n");
  const SweepReport report = ScenarioRunner({.threads = 2}).run(spec);
  const Table records = report.records_table();
  ASSERT_EQ(records.rows.size(), 6u);
  std::ostringstream os;
  write_table_csv(os, records);
  std::istringstream is(os.str());
  EXPECT_EQ(read_table_csv(is), records);
}

}  // namespace
}  // namespace lr

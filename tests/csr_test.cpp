// Tests for the immutable CSR execution core (graph/csr.hpp): conversion
// round-trips against the Graph front-end, mirror-position consistency,
// and the initial in/out partition against the automata's reference
// definition of the paper's constant sets.

#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/lr_base.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

std::vector<Instance> test_instances() {
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(9));
  std::mt19937_64 rng(7);
  instances.push_back(make_random_instance(24, 24, rng));
  instances.push_back(make_grid_instance(4, 5, rng));
  instances.push_back(make_sink_source_instance(9));
  instances.push_back(make_layered_bad_instance(4, 4, 0.4, rng));
  instances.push_back(make_unit_disk_instance(20, 0.35, rng));
  return instances;
}

std::vector<NodeId> graph_neighbor_ids(const Graph& g, NodeId u) {
  std::vector<NodeId> ids;
  for (const Incidence& inc : g.neighbors(u)) ids.push_back(inc.neighbor);
  return ids;
}

TEST(CsrGraphTest, RoundTripNeighborSetsEqualGraph) {
  for (const Instance& instance : test_instances()) {
    const Graph& g = instance.graph;
    const CsrGraph csr(g, instance.senses);
    ASSERT_EQ(csr.num_nodes(), g.num_nodes());
    ASSERT_EQ(csr.num_edges(), g.num_edges());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(csr.degree(u), g.degree(u));
      const auto nbrs = csr.neighbors(u);
      const std::vector<NodeId> expected = graph_neighbor_ids(g, u);
      ASSERT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()), expected) << "node " << u;
      const auto edges = csr.incident_edges(u);
      ASSERT_EQ(edges.size(), nbrs.size());
      for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_EQ(g.edge_between(u, nbrs[i]), edges[i]);
      }
    }
  }
}

TEST(CsrGraphTest, GraphOnlyConversionUsesAllForwardSenses) {
  const Graph g = make_chain_graph(6);
  const CsrGraph csr(g);
  for (const EdgeSense sense : csr.initial_senses()) {
    EXPECT_EQ(sense, EdgeSense::kForward);
  }
  // Forward = smaller -> larger id, so in-neighbors are exactly the
  // smaller-id neighbors.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : csr.initial_in_neighbors(u)) EXPECT_LT(v, u);
    for (const NodeId v : csr.initial_out_neighbors(u)) EXPECT_GT(v, u);
  }
}

TEST(CsrGraphTest, MirrorPositionsLinkTheTwoEndpoints) {
  for (const Instance& instance : test_instances()) {
    const CsrGraph csr(instance.graph, instance.senses);
    for (NodeId u = 0; u < csr.num_nodes(); ++u) {
      for (CsrPos p = csr.adjacency_begin(u); p < csr.adjacency_end(u); ++p) {
        const CsrPos mp = csr.mirror(p);
        ASSERT_NE(mp, p);
        EXPECT_EQ(csr.mirror(mp), p);
        EXPECT_EQ(csr.edge_at(mp), csr.edge_at(p));
        // The mirror lives in the neighbor's block and points back at u.
        const NodeId v = csr.neighbor_at(p);
        EXPECT_EQ(csr.neighbor_at(mp), u);
        EXPECT_GE(mp, csr.adjacency_begin(v));
        EXPECT_LT(mp, csr.adjacency_end(v));
      }
    }
  }
}

TEST(CsrGraphTest, InitialPartitionMatchesAutomatonReferenceSets) {
  for (const Instance& instance : test_instances()) {
    const CsrGraph csr(instance.graph, instance.senses);
    const LinkReversalBase reference(instance.graph, instance.make_orientation(),
                                     instance.destination);
    for (NodeId u = 0; u < csr.num_nodes(); ++u) {
      const auto in = csr.initial_in_neighbors(u);
      const auto out = csr.initial_out_neighbors(u);
      EXPECT_EQ(std::vector<NodeId>(in.begin(), in.end()), reference.initial_in_neighbors(u));
      EXPECT_EQ(std::vector<NodeId>(out.begin(), out.end()), reference.initial_out_neighbors(u));
      EXPECT_EQ(csr.initial_in_degree(u) + csr.initial_out_degree(u), csr.degree(u));
      // Position slices are aligned with the id slices.
      const auto in_pos = csr.initial_in_positions(u);
      ASSERT_EQ(in_pos.size(), in.size());
      for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(csr.neighbor_at(in_pos[i]), in[i]);
        EXPECT_FALSE(csr.points_out_of(in_pos[i], u, csr.initial_senses()));
      }
      const auto out_pos = csr.initial_out_positions(u);
      ASSERT_EQ(out_pos.size(), out.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(csr.neighbor_at(out_pos[i]), out[i]);
        EXPECT_TRUE(csr.points_out_of(out_pos[i], u, csr.initial_senses()));
      }
    }
  }
}

TEST(CsrGraphTest, PointsOutOfMatchesOrientationDir) {
  for (const Instance& instance : test_instances()) {
    const CsrGraph csr(instance.graph, instance.senses);
    const Orientation o = instance.make_orientation();
    for (NodeId u = 0; u < csr.num_nodes(); ++u) {
      for (CsrPos p = csr.adjacency_begin(u); p < csr.adjacency_end(u); ++p) {
        EXPECT_EQ(csr.points_out_of(p, u, o.senses()),
                  o.dir_from(u, csr.edge_at(p)) == Dir::kOut);
      }
    }
  }
}

TEST(CsrGraphTest, DegenerateGraphs) {
  const CsrGraph empty;
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);

  const CsrGraph empty_converted((Graph()));
  EXPECT_EQ(empty_converted.num_nodes(), 0u);

  const Graph single(1, {});
  const CsrGraph single_csr(single);
  EXPECT_EQ(single_csr.num_nodes(), 1u);
  EXPECT_TRUE(single_csr.neighbors(0).empty());
  EXPECT_TRUE(single_csr.initial_in_neighbors(0).empty());
  EXPECT_TRUE(single_csr.initial_out_neighbors(0).empty());

  // Disconnected graph with an isolated middle node.
  const Graph disconnected(5, {{0, 1}, {3, 4}});
  const CsrGraph disconnected_csr(disconnected);
  EXPECT_TRUE(disconnected_csr.neighbors(2).empty());
  EXPECT_EQ(disconnected_csr.degree(0), 1u);
  EXPECT_EQ(disconnected_csr.neighbors(3).front(), 4u);
}

TEST(CsrGraphTest, RejectsSenseVectorOfWrongSize) {
  const Graph g = make_chain_graph(4);
  const std::vector<EdgeSense> too_short(g.num_edges() - 1, EdgeSense::kForward);
  EXPECT_THROW(CsrGraph(g, too_short), std::invalid_argument);
}

}  // namespace
}  // namespace lr

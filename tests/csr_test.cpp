// Tests for the immutable CSR execution core (graph/csr.hpp): conversion
// round-trips against the Graph front-end, mirror-position consistency,
// and the initial in/out partition against the automata's reference
// definition of the paper's constant sets.

#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/lr_base.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

std::vector<Instance> test_instances() {
  std::vector<Instance> instances;
  instances.push_back(make_worst_case_chain(9));
  std::mt19937_64 rng(7);
  instances.push_back(make_random_instance(24, 24, rng));
  instances.push_back(make_grid_instance(4, 5, rng));
  instances.push_back(make_sink_source_instance(9));
  instances.push_back(make_layered_bad_instance(4, 4, 0.4, rng));
  instances.push_back(make_unit_disk_instance(20, 0.35, rng));
  return instances;
}

std::vector<NodeId> graph_neighbor_ids(const Graph& g, NodeId u) {
  std::vector<NodeId> ids;
  for (const Incidence& inc : g.neighbors(u)) ids.push_back(inc.neighbor);
  return ids;
}

TEST(CsrGraphTest, RoundTripNeighborSetsEqualGraph) {
  for (const Instance& instance : test_instances()) {
    const Graph& g = instance.graph;
    const CsrGraph csr(g, instance.senses);
    ASSERT_EQ(csr.num_nodes(), g.num_nodes());
    ASSERT_EQ(csr.num_edges(), g.num_edges());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(csr.degree(u), g.degree(u));
      const auto nbrs = csr.neighbors(u);
      const std::vector<NodeId> expected = graph_neighbor_ids(g, u);
      ASSERT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()), expected) << "node " << u;
      const auto edges = csr.incident_edges(u);
      ASSERT_EQ(edges.size(), nbrs.size());
      for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_EQ(g.edge_between(u, nbrs[i]), edges[i]);
      }
    }
  }
}

TEST(CsrGraphTest, GraphOnlyConversionUsesAllForwardSenses) {
  const Graph g = make_chain_graph(6);
  const CsrGraph csr(g);
  for (const EdgeSense sense : csr.initial_senses()) {
    EXPECT_EQ(sense, EdgeSense::kForward);
  }
  // Forward = smaller -> larger id, so in-neighbors are exactly the
  // smaller-id neighbors.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : csr.initial_in_neighbors(u)) EXPECT_LT(v, u);
    for (const NodeId v : csr.initial_out_neighbors(u)) EXPECT_GT(v, u);
  }
}

TEST(CsrGraphTest, MirrorPositionsLinkTheTwoEndpoints) {
  for (const Instance& instance : test_instances()) {
    const CsrGraph csr(instance.graph, instance.senses);
    for (NodeId u = 0; u < csr.num_nodes(); ++u) {
      for (CsrPos p = csr.adjacency_begin(u); p < csr.adjacency_end(u); ++p) {
        const CsrPos mp = csr.mirror(p);
        ASSERT_NE(mp, p);
        EXPECT_EQ(csr.mirror(mp), p);
        EXPECT_EQ(csr.edge_at(mp), csr.edge_at(p));
        // The mirror lives in the neighbor's block and points back at u.
        const NodeId v = csr.neighbor_at(p);
        EXPECT_EQ(csr.neighbor_at(mp), u);
        EXPECT_GE(mp, csr.adjacency_begin(v));
        EXPECT_LT(mp, csr.adjacency_end(v));
      }
    }
  }
}

TEST(CsrGraphTest, InitialPartitionMatchesAutomatonReferenceSets) {
  for (const Instance& instance : test_instances()) {
    const CsrGraph csr(instance.graph, instance.senses);
    const LinkReversalBase reference(instance.graph, instance.make_orientation(),
                                     instance.destination);
    for (NodeId u = 0; u < csr.num_nodes(); ++u) {
      const auto in = csr.initial_in_neighbors(u);
      const auto out = csr.initial_out_neighbors(u);
      EXPECT_EQ(std::vector<NodeId>(in.begin(), in.end()), reference.initial_in_neighbors(u));
      EXPECT_EQ(std::vector<NodeId>(out.begin(), out.end()), reference.initial_out_neighbors(u));
      EXPECT_EQ(csr.initial_in_degree(u) + csr.initial_out_degree(u), csr.degree(u));
      // Position slices are aligned with the id slices.
      const auto in_pos = csr.initial_in_positions(u);
      ASSERT_EQ(in_pos.size(), in.size());
      for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(csr.neighbor_at(in_pos[i]), in[i]);
        EXPECT_FALSE(csr.points_out_of(in_pos[i], u, csr.initial_senses()));
      }
      const auto out_pos = csr.initial_out_positions(u);
      ASSERT_EQ(out_pos.size(), out.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(csr.neighbor_at(out_pos[i]), out[i]);
        EXPECT_TRUE(csr.points_out_of(out_pos[i], u, csr.initial_senses()));
      }
    }
  }
}

TEST(CsrGraphTest, PointsOutOfMatchesOrientationDir) {
  for (const Instance& instance : test_instances()) {
    const CsrGraph csr(instance.graph, instance.senses);
    const Orientation o = instance.make_orientation();
    for (NodeId u = 0; u < csr.num_nodes(); ++u) {
      for (CsrPos p = csr.adjacency_begin(u); p < csr.adjacency_end(u); ++p) {
        EXPECT_EQ(csr.points_out_of(p, u, o.senses()),
                  o.dir_from(u, csr.edge_at(p)) == Dir::kOut);
      }
    }
  }
}

TEST(CsrGraphTest, DegenerateGraphs) {
  const CsrGraph empty;
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);

  const CsrGraph empty_converted((Graph()));
  EXPECT_EQ(empty_converted.num_nodes(), 0u);

  const Graph single(1, {});
  const CsrGraph single_csr(single);
  EXPECT_EQ(single_csr.num_nodes(), 1u);
  EXPECT_TRUE(single_csr.neighbors(0).empty());
  EXPECT_TRUE(single_csr.initial_in_neighbors(0).empty());
  EXPECT_TRUE(single_csr.initial_out_neighbors(0).empty());

  // Disconnected graph with an isolated middle node.
  const Graph disconnected(5, {{0, 1}, {3, 4}});
  const CsrGraph disconnected_csr(disconnected);
  EXPECT_TRUE(disconnected_csr.neighbors(2).empty());
  EXPECT_EQ(disconnected_csr.degree(0), 1u);
  EXPECT_EQ(disconnected_csr.neighbors(3).front(), 4u);
}

TEST(CsrGraphTest, RejectsSenseVectorOfWrongSize) {
  const Graph g = make_chain_graph(4);
  const std::vector<EdgeSense> too_short(g.num_edges() - 1, EdgeSense::kForward);
  EXPECT_THROW(CsrGraph(g, too_short), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// In-place single-link patching (the incremental snapshot-repair path)
// ---------------------------------------------------------------------------

using LinkList = std::vector<std::pair<NodeId, NodeId>>;

/// Asserts every public view of `patched` equals `rebuilt`, element for
/// element — the "patched snapshot is byte-identical to a fresh rebuild"
/// contract of insert_link/remove_link.
void expect_csr_identical(const CsrGraph& patched, const CsrGraph& rebuilt,
                          const std::string& context) {
  ASSERT_EQ(patched.num_nodes(), rebuilt.num_nodes()) << context;
  ASSERT_EQ(patched.num_edges(), rebuilt.num_edges()) << context;
  const auto senses = patched.initial_senses();
  const auto expected_senses = rebuilt.initial_senses();
  ASSERT_TRUE(std::equal(senses.begin(), senses.end(), expected_senses.begin(),
                         expected_senses.end()))
      << context << ": initial senses differ";
  for (NodeId u = 0; u < patched.num_nodes(); ++u) {
    ASSERT_EQ(patched.adjacency_begin(u), rebuilt.adjacency_begin(u)) << context << " node " << u;
    ASSERT_EQ(patched.adjacency_end(u), rebuilt.adjacency_end(u)) << context << " node " << u;
    ASSERT_EQ(patched.initial_in_degree(u), rebuilt.initial_in_degree(u))
        << context << " node " << u;
    for (CsrPos p = patched.adjacency_begin(u); p < patched.adjacency_end(u); ++p) {
      ASSERT_EQ(patched.neighbor_at(p), rebuilt.neighbor_at(p)) << context << " pos " << p;
      ASSERT_EQ(patched.edge_at(p), rebuilt.edge_at(p)) << context << " pos " << p;
      ASSERT_EQ(patched.mirror(p), rebuilt.mirror(p)) << context << " pos " << p;
    }
    const auto in_pos = patched.initial_in_positions(u);
    const auto expected_in = rebuilt.initial_in_positions(u);
    ASSERT_TRUE(std::equal(in_pos.begin(), in_pos.end(), expected_in.begin(), expected_in.end()))
        << context << " node " << u << ": in-partition positions differ";
    const auto out_pos = patched.initial_out_positions(u);
    const auto expected_out = rebuilt.initial_out_positions(u);
    ASSERT_TRUE(
        std::equal(out_pos.begin(), out_pos.end(), expected_out.begin(), expected_out.end()))
        << context << " node " << u << ": out-partition positions differ";
  }
}

/// Fresh rebuild over the canonically sorted link list — the control the
/// patched snapshot must match byte for byte.
CsrGraph rebuild(std::size_t n, const LinkList& sorted_links,
                 const std::vector<EdgeSense>& senses) {
  return CsrGraph(Graph(n, sorted_links), senses);
}

TEST(CsrGraphPatchTest, InsertLinkMatchesFreshRebuild) {
  const std::size_t n = 8;
  LinkList links = {{0, 1}, {1, 2}, {2, 5}, {4, 6}};  // sorted canonical
  std::vector<EdgeSense> senses(links.size(), EdgeSense::kForward);
  CsrGraph patched = rebuild(n, links, senses);
  // A mix of first-link, middle-of-block, end-of-block, and adjacent-block
  // inserts, including an isolated node gaining its first edge.
  const LinkList inserts = {{0, 7}, {3, 4}, {1, 6}, {0, 2}, {6, 7}, {2, 3}};
  for (const auto& [u, v] : inserts) {
    patched.insert_link(u, v);
    const auto rank = std::lower_bound(links.begin(), links.end(), std::pair{u, v});
    senses.insert(senses.begin() + (rank - links.begin()), EdgeSense::kForward);
    links.insert(rank, {u, v});
    expect_csr_identical(patched, rebuild(n, links, senses),
                         "after insert {" + std::to_string(u) + "," + std::to_string(v) + "}");
  }
}

TEST(CsrGraphPatchTest, RemoveLinkMatchesFreshRebuild) {
  const std::size_t n = 6;
  LinkList links = {{0, 1}, {0, 2}, {1, 2}, {1, 4}, {2, 3}, {3, 4}, {4, 5}};
  std::vector<EdgeSense> senses(links.size(), EdgeSense::kForward);
  senses[2] = EdgeSense::kBackward;  // one non-canonical sense in the mix
  CsrGraph patched = rebuild(n, links, senses);
  const LinkList removals = {{1, 2}, {4, 5}, {0, 1}, {2, 3}};
  for (const auto& [u, v] : removals) {
    patched.remove_link(v, u);  // endpoint order must not matter
    const auto rank = std::lower_bound(links.begin(), links.end(), std::pair{u, v});
    senses.erase(senses.begin() + (rank - links.begin()));
    links.erase(rank);
    expect_csr_identical(patched, rebuild(n, links, senses),
                         "after remove {" + std::to_string(u) + "," + std::to_string(v) + "}");
  }
}

TEST(CsrGraphPatchTest, RandomizedChurnStaysIdenticalToRebuilds) {
  const std::size_t n = 16;
  std::mt19937_64 rng(2024);
  LinkList links;
  std::vector<EdgeSense> senses;
  // Seed with a random link set (sorted canonical, random senses).
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng() % 3 == 0) {
        links.push_back({u, v});
        senses.push_back(rng() % 2 == 0 ? EdgeSense::kForward : EdgeSense::kBackward);
      }
    }
  }
  CsrGraph patched = rebuild(n, links, senses);
  for (int op = 0; op < 200; ++op) {
    const NodeId u = static_cast<NodeId>(rng() % n);
    NodeId v = static_cast<NodeId>(rng() % n);
    if (u == v) v = (v + 1) % n;
    const auto link = u < v ? std::pair{u, v} : std::pair{v, u};
    const auto rank = std::lower_bound(links.begin(), links.end(), link);
    if (rank != links.end() && *rank == link) {
      patched.remove_link(u, v);
      senses.erase(senses.begin() + (rank - links.begin()));
      links.erase(rank);
    } else {
      const EdgeSense sense = rng() % 2 == 0 ? EdgeSense::kForward : EdgeSense::kBackward;
      patched.insert_link(u, v, sense);
      senses.insert(senses.begin() + (rank - links.begin()), sense);
      links.insert(rank, link);
    }
    expect_csr_identical(patched, rebuild(n, links, senses), "op " + std::to_string(op));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CsrGraphPatchTest, RejectsBadPatchArguments) {
  CsrGraph csr(Graph(4, {{0, 1}, {1, 2}}));
  EXPECT_THROW(csr.insert_link(0, 0), std::invalid_argument);   // self loop
  EXPECT_THROW(csr.insert_link(0, 9), std::invalid_argument);   // out of range
  EXPECT_THROW(csr.insert_link(0, 1), std::invalid_argument);   // already present
  EXPECT_THROW(csr.remove_link(0, 2), std::invalid_argument);   // absent
  EXPECT_THROW(csr.remove_link(0, 9), std::invalid_argument);   // out of range
  EXPECT_THROW(csr.remove_link(2, 2), std::invalid_argument);   // self loop
}

TEST(CsrGraphPatchTest, PatchedSnapshotDrivesTheEngineLikeARebuiltOne) {
  // End-to-end sanity: the patched snapshot must be a fully valid
  // execution substrate, not just structurally equal (mirrors, partitions,
  // and degrees all feed the engine's kernels via attach/reset).
  const std::size_t n = 10;
  LinkList links = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {8, 9}};
  std::vector<EdgeSense> senses(links.size(), EdgeSense::kForward);
  CsrGraph patched = rebuild(n, links, senses);
  patched.insert_link(7, 8);
  patched.remove_link(8, 9);
  const LinkList expected_links = {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                   {4, 5}, {5, 6}, {6, 7}, {7, 8}};
  const CsrGraph control =
      rebuild(n, expected_links, std::vector<EdgeSense>(8, EdgeSense::kForward));
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(patched.initial_out_degree(u), control.initial_out_degree(u)) << u;
  }
}

}  // namespace
}  // namespace lr

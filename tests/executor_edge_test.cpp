#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"

/// Edge cases of the execution and measurement plumbing.

namespace lr {
namespace {

TEST(ExecutorEdgeTest, AlreadyQuiescentRunsZeroSteps) {
  Graph g(3, {{0, 1}, {1, 2}});
  Orientation o(g, {EdgeSense::kBackward, EdgeSense::kBackward});  // oriented to 0
  OneStepPRAutomaton pr(g, std::move(o), 0);
  LowestIdScheduler scheduler;
  const RunResult result = run_to_quiescence(pr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.edge_reversals, 0u);
  EXPECT_TRUE(result.destination_oriented);
}

TEST(ExecutorEdgeTest, SetExecutorRespectsMaxSteps) {
  Instance inst = make_worst_case_chain(32);
  PRAutomaton pr(inst);
  MaximalSetScheduler scheduler;
  RunOptions options;
  options.max_steps = 3;
  const RunResult result = run_to_quiescence_set(pr, scheduler, options);
  EXPECT_EQ(result.steps, 3u);
  EXPECT_FALSE(result.quiescent);
}

TEST(ExecutorEdgeTest, EdgeReversalCountDeltaNotCumulative) {
  // Two consecutive runs on the same automaton: the second run's
  // edge_reversals must count only its own work.
  Instance inst = make_worst_case_chain(8);
  OneStepPRAutomaton pr(inst);
  LowestIdScheduler scheduler;
  RunOptions options;
  options.max_steps = 3;
  const RunResult first = run_to_quiescence(pr, scheduler, options);
  const RunResult second = run_to_quiescence(pr, scheduler);
  EXPECT_GT(first.edge_reversals, 0u);
  EXPECT_GT(second.edge_reversals, 0u);
  EXPECT_EQ(first.edge_reversals + second.edge_reversals, pr.orientation().reversal_count());
}

TEST(ExecutorEdgeTest, WorkRecorderSetStepObserver) {
  Instance inst = make_sink_source_instance(9);
  PRAutomaton pr(inst);
  WorkRecorder recorder(inst.graph.num_nodes());
  MaximalSetScheduler scheduler;
  const RunResult result = run_to_quiescence_set(
      pr, scheduler, [&recorder](const PRAutomaton& a, const std::vector<NodeId>& s) {
        recorder.on_set_step(a, s);
      });
  EXPECT_EQ(recorder.stats().total_steps, result.node_steps);
  EXPECT_EQ(recorder.stats().rounds, result.steps);
}

TEST(ExecutorEdgeTest, MessageToNodeWithoutHandlerIsCountedNotCrashing) {
  Graph g(2, {{0, 1}});
  Network net(g, {.min_delay = 1, .max_delay = 1, .seed = 1});
  // No handler installed on node 1.
  net.send(0, 1, {42});
  net.run_until_idle();
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(ExecutorEdgeTest, SingleNodeGraphIsTriviallyOriented) {
  Graph g(1, {});
  OneStepPRAutomaton pr(g, Orientation(g, {}), 0);
  LowestIdScheduler scheduler;
  const RunResult result = run_to_quiescence(pr, scheduler);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.destination_oriented);
}

}  // namespace
}  // namespace lr

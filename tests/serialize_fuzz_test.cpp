#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "graph/serialize.hpp"

/// Robustness fuzzing for the instance parser: arbitrary byte soup and
/// structured mutations of valid files must produce clean
/// std::invalid_argument failures (or a valid instance), never crashes or
/// silent misparses.

namespace lr {
namespace {

TEST(SerializeFuzzTest, RandomByteSoupNeverCrashes) {
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> length(0, 400);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    const std::size_t len = length(rng);
    soup.reserve(len);
    for (std::size_t i = 0; i < len; ++i) soup.push_back(static_cast<char>(byte(rng)));
    std::stringstream buffer(soup);
    try {
      const Instance inst = read_instance(buffer);
      // Extremely unlikely, but if it parses it must be self-consistent.
      EXPECT_LE(inst.destination, inst.graph.num_nodes());
    } catch (const std::invalid_argument&) {
      // expected for garbage
    } catch (const std::out_of_range&) {
      // stoull overflow on huge numerals: acceptable rejection
    }
  }
}

TEST(SerializeFuzzTest, MutatedValidFilesRejectedOrRoundTrip) {
  std::mt19937_64 rng(7);
  const Instance base = make_random_instance(10, 8, rng);
  std::stringstream canonical;
  write_instance(canonical, base);
  const std::string text = canonical.str();

  std::uniform_int_distribution<std::size_t> pos(0, text.size() - 1);
  std::uniform_int_distribution<int> printable(32, 126);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = text;
    // Flip 1-3 characters.
    std::uniform_int_distribution<int> flips(1, 3);
    for (int f = flips(rng); f > 0; --f) {
      mutated[pos(rng)] = static_cast<char>(printable(rng));
    }
    std::stringstream buffer(mutated);
    try {
      const Instance inst = read_instance(buffer);
      // A surviving parse must still describe a sane graph.
      EXPECT_LT(inst.destination, std::max<std::size_t>(inst.graph.num_nodes(), 1));
      for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
        EXPECT_LT(inst.graph.edge_u(e), inst.graph.edge_v(e));
      }
      EXPECT_EQ(inst.senses.size(), inst.graph.num_edges());
    } catch (const std::invalid_argument&) {
      // clean rejection
    } catch (const std::out_of_range&) {
      // numeric overflow rejection
    }
  }
}

TEST(SerializeFuzzTest, TruncatedFilesRejected) {
  std::mt19937_64 rng(9);
  const Instance base = make_random_instance(8, 6, rng);
  std::stringstream canonical;
  write_instance(canonical, base);
  const std::string text = canonical.str();
  // Every strict prefix that cuts the 'end' line must be rejected.
  for (std::size_t cut = 0; cut + 4 < text.size(); cut += 7) {
    std::stringstream buffer(text.substr(0, cut));
    EXPECT_THROW(read_instance(buffer), std::invalid_argument) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace lr

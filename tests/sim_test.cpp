#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>

#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"
#include "sim/dist_lr.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/sharded_loop.hpp"
#include "sim/time_index.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every replaceable operator new form bumps it,
// so a test can assert that a code region performed zero heap allocations
// (the event-pool acceptance criterion; see SteadyStateAllocationTest).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_heap_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  ++g_heap_allocations;
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace lr {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&order] { order.push_back(5); });
  q.schedule_at(1, [&order] { order.push_back(1); });
  q.schedule_at(3, [&order] { order.push_back(3); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2, [&order] { order.push_back(1); });
  q.schedule_at(2, [&order] { order.push_back(2); });
  q.schedule_at(2, [&order] { order.push_back(3); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_in(4, [&] { ++fired; });
  });
  q.run_until_idle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueueTest, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_one();
  EXPECT_THROW(q.schedule_at(3, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, MaxEventsBudget) {
  EventQueue q;
  // A self-perpetuating event chain.
  std::function<void()> tick = [&] { q.schedule_in(1, tick); };
  q.schedule_at(0, tick);
  const auto ran = q.run_until_idle(100);
  EXPECT_EQ(ran, 100u);
  EXPECT_FALSE(q.empty());
}

// ---------------------------------------------------------------------------
// Event pool (slab/freelist) behavior
// ---------------------------------------------------------------------------

TEST(EventQueueTest, PoolReusesSlotsAtSteadyState) {
  EventQueue q;
  const auto churn = [&q] {
    for (int i = 0; i < 64; ++i) q.schedule_in(static_cast<SimTime>(i % 5), [] {});
    q.run_until_idle();
  };
  churn();  // warm-up: grows the pool to the cycle's high-water mark
  const std::size_t slots = q.pool_slots();
  ASSERT_GT(slots, 0u);
  for (int round = 0; round < 10; ++round) churn();
  EXPECT_EQ(q.pool_slots(), slots);  // steady state: no further growth
  EXPECT_EQ(q.free_slots(), slots);  // idle queue: every slot recycled
}

TEST(EventQueueTest, PoolGrowsOnExhaustionThenStabilizes) {
  EventQueue q;
  for (int i = 0; i < 8; ++i) q.schedule_in(1, [] {});
  q.run_until_idle();
  EXPECT_EQ(q.pool_slots(), 8u);

  // A burst beyond the freelist exhausts it: the pool must grow and every
  // event must still run exactly once.
  int fired = 0;
  for (int i = 0; i < 20; ++i) q.schedule_in(1, [&fired] { ++fired; });
  q.run_until_idle();
  EXPECT_EQ(fired, 20);
  EXPECT_EQ(q.pool_slots(), 20u);

  // The grown pool absorbs an identical burst without growing again.
  for (int i = 0; i < 20; ++i) q.schedule_in(1, [&fired] { ++fired; });
  q.run_until_idle();
  EXPECT_EQ(fired, 40);
  EXPECT_EQ(q.pool_slots(), 20u);
  EXPECT_EQ(q.free_slots(), 20u);
}

TEST(EventQueueTest, InterleavedScheduleAndRunRecyclesAggressively) {
  // One event in flight at a time: a self-rescheduling chain must reuse a
  // single slot no matter how long it runs.
  EventQueue q;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) q.schedule_in(1, hop);
  };
  q.schedule_at(0, hop);
  q.run_until_idle();
  EXPECT_EQ(hops, 100);
  // The chain holds at most one pending event plus the one being run.
  EXPECT_LE(q.pool_slots(), 2u);
}

TEST(EventQueueTest, ThrowingCallbackStillReleasesItsSlot) {
  EventQueue q;
  const auto tracker = std::make_shared<int>(1);
  q.schedule_at(1, [tracker] { throw std::runtime_error("boom"); });
  EXPECT_THROW(q.run_one(), std::runtime_error);
  // The callable was destroyed during unwinding and its slot went back to
  // the freelist, so the next schedule reuses it instead of growing.
  EXPECT_EQ(tracker.use_count(), 1);
  EXPECT_EQ(q.free_slots(), q.pool_slots());
  int fired = 0;
  q.schedule_in(1, [&fired] { ++fired; });
  EXPECT_EQ(q.pool_slots(), 1u);
  q.run_until_idle();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DestroysPendingCallbacksOnDestruction) {
  const auto tracker = std::make_shared<int>(7);
  {
    EventQueue q;
    q.schedule_at(5, [tracker] {});
    q.schedule_at(9, [tracker] {});
    EXPECT_EQ(tracker.use_count(), 3);
    // q destroyed with both events still pending.
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(EventQueueTest, SchedulingAllocatesNothingOnceWarm) {
  EventQueue q;
  const auto churn = [&q] {
    for (int i = 0; i < 32; ++i) q.schedule_in(static_cast<SimTime>(i % 3), [] {});
    q.run_until_idle();
  };
  churn();
  churn();
  const std::uint64_t before = g_heap_allocations.load();
  churn();
  EXPECT_EQ(g_heap_allocations.load() - before, 0u);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(NetworkTest, DeliversToHandlerWithinDelayBounds) {
  Graph g(2, {{0, 1}});
  Network net(g, {.min_delay = 2, .max_delay = 5, .seed = 1});
  SimTime delivered_at = 0;
  net.set_handler(1, [&](const NetMessage& m) {
    EXPECT_EQ(m.from, 0u);
    EXPECT_EQ(m.payload, (std::vector<std::int64_t>{42}));
    delivered_at = net.now();
  });
  net.send(0, 1, {42});
  net.run_until_idle();
  EXPECT_GE(delivered_at, 2u);
  EXPECT_LE(delivered_at, 5u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkTest, RejectsNonAdjacentSend) {
  Graph g(3, {{0, 1}});
  Network net(g, {});
  EXPECT_THROW(net.send(0, 2, {1}), std::invalid_argument);
}

TEST(NetworkTest, DownLinkDropsMessages) {
  Graph g(2, {{0, 1}});
  Network net(g, {});
  int received = 0;
  net.set_handler(1, [&](const NetMessage&) { ++received; });
  net.set_link_up(0, false);
  net.send(0, 1, {1});
  net.run_until_idle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.set_link_up(0, true);
  net.send(0, 1, {2});
  net.run_until_idle();
  EXPECT_EQ(received, 1);
}

TEST(NetworkTest, RejectsBadDelayConfig) {
  Graph g(2, {{0, 1}});
  EXPECT_THROW(Network(g, {.min_delay = 0, .max_delay = 5, .seed = 1}), std::invalid_argument);
  EXPECT_THROW(Network(g, {.min_delay = 6, .max_delay = 5, .seed = 1}), std::invalid_argument);
}

TEST(NetworkTest, BorrowedFrozenSnapshotMatchesOwnedBehavior) {
  Graph g(3, {{0, 1}, {1, 2}});
  const CsrGraph frozen(g);
  Network owned(g, {.min_delay = 1, .max_delay = 1, .seed = 4});
  Network borrowed(g, {.min_delay = 1, .max_delay = 1, .seed = 4}, frozen);
  for (Network* net : {&owned, &borrowed}) {
    int received = 0;
    net->set_handler(2, [&received](const NetMessage&) { ++received; });
    net->send(1, 2, {5});
    EXPECT_THROW(net->send(0, 2, {5}), std::invalid_argument);
    net->run_until_idle();
    EXPECT_EQ(received, 1);
  }
  Graph other(4, {{0, 1}});
  EXPECT_THROW(Network(other, {}, frozen), std::invalid_argument);
}

TEST(NetworkTest, MessagePoolIsReusedAcrossSendCycles) {
  Graph g(2, {{0, 1}});
  Network net(g, {.min_delay = 1, .max_delay = 3, .seed = 2});
  net.set_handler(1, [](const NetMessage&) {});
  const auto cycle = [&net] {
    for (int i = 0; i < 16; ++i) net.send(0, 1, {i, i + 1});
    net.run_until_idle();
  };
  cycle();
  const std::size_t slots = net.message_pool_slots();
  ASSERT_GT(slots, 0u);
  for (int round = 0; round < 8; ++round) cycle();
  EXPECT_EQ(net.message_pool_slots(), slots);
}

// ---------------------------------------------------------------------------
// Distributed link reversal
// ---------------------------------------------------------------------------

struct DistParam {
  std::size_t size;
  std::uint64_t seed;
  ReversalRule rule;

  friend std::ostream& operator<<(std::ostream& os, const DistParam& p) {
    return os << (p.rule == ReversalRule::kFull ? "FR" : "PR") << "_n" << p.size << "_s" << p.seed;
  }
};

class DistLRSweep : public ::testing::TestWithParam<DistParam> {};

TEST_P(DistLRSweep, ConvergesToDestinationOrientedDag) {
  std::mt19937_64 rng(GetParam().seed * 997 + 3);
  const Instance inst = make_random_instance(GetParam().size, GetParam().size, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 7, .seed = GetParam().seed});
  DistLinkReversal proto(inst, GetParam().rule, net);
  proto.start();
  net.run_until_idle();
  EXPECT_TRUE(proto.converged()) << inst.name;
  EXPECT_TRUE(is_acyclic(proto.derived_orientation()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistLRSweep,
    ::testing::Values(DistParam{8, 1, ReversalRule::kFull}, DistParam{8, 1, ReversalRule::kPartial},
                      DistParam{16, 2, ReversalRule::kFull},
                      DistParam{16, 2, ReversalRule::kPartial},
                      DistParam{32, 3, ReversalRule::kFull},
                      DistParam{32, 3, ReversalRule::kPartial},
                      DistParam{64, 4, ReversalRule::kPartial}),
    [](const ::testing::TestParamInfo<DistParam>& info) {
      std::ostringstream oss;
      oss << info.param;
      return oss.str();
    });

TEST(DistLRTest, AlreadyOrientedInstanceNeedsNoSteps) {
  std::mt19937_64 rng(9);
  Graph g = make_random_connected_graph(12, 8, rng);
  const auto rank = destination_oriented_ranking(g, 0, rng);
  // Edges point low -> high rank; flip so everything routes to node 0.
  Orientation o = Orientation::from_ranking(g, rank);
  std::vector<EdgeSense> flipped(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    flipped[e] = o.sense(e) == EdgeSense::kForward ? EdgeSense::kBackward : EdgeSense::kForward;
  }
  Instance inst{std::move(g), std::move(flipped), 0, "pre-oriented"};

  Network net(inst.graph, {.min_delay = 1, .max_delay = 3, .seed = 2});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  EXPECT_TRUE(proto.converged());
  EXPECT_EQ(proto.total_steps(), 0u);
  EXPECT_EQ(net.messages_sent(), 0u);
}

TEST(DistLRTest, DerivedOrientationAlwaysAcyclicMidFlight) {
  // Acyclicity-by-total-order holds at *every* instant, not just at
  // convergence: sample mid-execution.
  std::mt19937_64 rng(10);
  const Instance inst = make_random_instance(20, 15, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 9, .seed = 5});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  std::uint64_t guard = 0;
  while (net.queue().run_one() && guard++ < 100000) {
    if (guard % 7 == 0) {
      ASSERT_TRUE(is_acyclic(proto.derived_orientation()));
    }
  }
  EXPECT_TRUE(proto.converged());
}

TEST(DistLRTest, LinkChurnRecoversAfterRestore) {
  const Instance inst = make_worst_case_chain(8);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 4, .seed = 6});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);

  // Take a mid-chain link down before starting: updates over it are lost.
  const EdgeId cut = 3;
  net.set_link_up(cut, false);
  proto.start();
  net.run_until_idle();

  // Restore and resynchronize.
  net.set_link_up(cut, true);
  proto.notify_link_restored(cut);
  net.run_until_idle();
  EXPECT_TRUE(proto.converged());
}

TEST(DistLRTest, FrozenSnapshotConstructorMatchesOwnedSnapshot) {
  std::mt19937_64 rng(13);
  const Instance inst = make_random_instance(20, 16, rng);
  const CsrGraph frozen(inst.graph, inst.senses);

  Network owned_net(inst.graph, {.min_delay = 1, .max_delay = 6, .seed = 3});
  DistLinkReversal owned(inst, ReversalRule::kPartial, owned_net);
  owned.start();
  owned_net.run_until_idle();

  Network frozen_net(inst.graph, {.min_delay = 1, .max_delay = 6, .seed = 3}, frozen);
  DistLinkReversal borrowed(inst, ReversalRule::kPartial, frozen_net, frozen);
  borrowed.start();
  frozen_net.run_until_idle();

  EXPECT_EQ(owned.total_steps(), borrowed.total_steps());
  EXPECT_EQ(owned_net.messages_sent(), frozen_net.messages_sent());
  for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    EXPECT_EQ(owned.height(u), borrowed.height(u));
  }
  EXPECT_TRUE(borrowed.converged());

  // A mismatched snapshot is rejected.
  const Instance other = make_worst_case_chain(5);
  const CsrGraph wrong(other.graph, other.senses);
  Network net3(inst.graph, {.min_delay = 1, .max_delay = 6, .seed = 3});
  EXPECT_THROW(DistLinkReversal(inst, ReversalRule::kPartial, net3, wrong),
               std::invalid_argument);
}

TEST(SteadyStateAllocationTest, WarmedDistProtocolRunsAllocationFree) {
  // The acceptance criterion of the pooled event core: once the event and
  // message pools, the heap index, and the payload buffers have reached
  // their high-water marks, an entire resync storm (every node broadcasts,
  // every message is delivered and filtered) performs zero heap
  // allocations.
  std::mt19937_64 rng(21);
  const Instance inst = make_random_instance(24, 24, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 6, .seed = 11});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  // Two identical warm-up storms grow every pool to its high-water mark.
  proto.resync_round();
  net.run_until_idle();
  proto.resync_round();
  net.run_until_idle();

  const std::uint64_t before = g_heap_allocations.load();
  proto.resync_round();
  net.run_until_idle();
  const std::uint64_t after = g_heap_allocations.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_TRUE(proto.converged());
}

// ---------------------------------------------------------------------------
// TimeIndex: the timing wheel is byte-identical to the heap
// ---------------------------------------------------------------------------

TEST(TimeIndexTest, WheelMatchesHeapPopOrderUnderRandomizedChurn) {
  // Drive both backends with one randomized (push-batch | pop-batch)
  // stream — deltas span all four wheel levels plus the overflow ring —
  // and demand identical (time, seq, slot) pops throughout.
  std::mt19937_64 rng(0x7ee1);
  for (int trial = 0; trial < 4; ++trial) {
    TimeIndex heap(EventSchedulerKind::kHeap);
    TimeIndex wheel(EventSchedulerKind::kWheel);
    SimTime clock = 0;  // last popped time: the "never push the past" floor
    std::uint64_t seq = 0;
    for (int op = 0; op < 250; ++op) {
      if (rng() % 3 != 0 || heap.empty()) {
        const int batch = 1 + static_cast<int>(rng() % 8);
        for (int i = 0; i < batch; ++i) {
          SimTime delta = rng() % 64;  // level 0 by default
          const std::uint64_t stretch = rng() % 8;
          if (stretch == 0) {
            delta = rng() % (SimTime{1} << 26);  // often beyond the horizon
          } else if (stretch == 1) {
            delta = rng() % (SimTime{1} << 14);  // upper wheel levels
          }
          const std::uint32_t slot = static_cast<std::uint32_t>(rng());
          heap.push(clock + delta, seq, slot);
          wheel.push(clock + delta, seq, slot);
          ++seq;
        }
      } else {
        const std::size_t batch = 1 + rng() % heap.size();
        for (std::size_t i = 0; i < batch; ++i) {
          TimeIndexEntry he{}, we{};
          ASSERT_TRUE(heap.pop_min(he));
          ASSERT_TRUE(wheel.pop_min(we));
          ASSERT_EQ(he.time, we.time);
          ASSERT_EQ(he.seq, we.seq);
          ASSERT_EQ(he.slot, we.slot);
          clock = he.time;
        }
      }
      SimTime heap_min = 0, wheel_min = 0;
      const bool heap_any = heap.peek_min_time(heap_min);
      ASSERT_EQ(heap_any, wheel.peek_min_time(wheel_min));
      if (heap_any) {
        ASSERT_EQ(heap_min, wheel_min);
      }
      ASSERT_EQ(heap.size(), wheel.size());
    }
    TimeIndexEntry he{}, we{};
    while (heap.pop_min(he)) {
      ASSERT_TRUE(wheel.pop_min(we));
      ASSERT_EQ(he.time, we.time);
      ASSERT_EQ(he.seq, we.seq);
      ASSERT_EQ(he.slot, we.slot);
    }
    EXPECT_FALSE(wheel.pop_min(we));
  }
}

TEST(EventQueueTest, WheelBackendRunsInOrderWithFifoTies) {
  EventQueue q(EventSchedulerKind::kWheel);
  std::vector<int> order;
  q.schedule_at(5, [&order] { order.push_back(5); });
  q.schedule_at(2, [&order] { order.push_back(2); });
  q.schedule_at(2, [&order] { order.push_back(20); });  // FIFO within a tick
  q.schedule_at((SimTime{1} << 25) + 3, [&order] { order.push_back(99); });  // overflow
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{2, 20, 5, 99}));
  EXPECT_EQ(q.now(), (SimTime{1} << 25) + 3);
}

TEST(EventQueueTest, WheelMatchesHeapUnderRandomizedScheduleRunMix) {
  // The satellite property test: >= 200 mixed schedule_at / schedule_in /
  // run_until_idle operations replayed against both backends must execute
  // the same callbacks at the same times in the same order.
  std::mt19937_64 rng(0x5eed);
  EventQueue heap(EventSchedulerKind::kHeap);
  EventQueue wheel(EventSchedulerKind::kWheel);
  std::vector<std::pair<SimTime, int>> heap_log, wheel_log;
  int next_id = 0;
  const auto random_delta = [&rng]() -> SimTime {
    switch (rng() % 8) {
      case 0:
        return rng() % (SimTime{1} << 26);  // overflow territory
      case 1:
        return rng() % (SimTime{1} << 14);  // upper wheel levels
      default:
        return rng() % 64;  // level 0
    }
  };
  for (int op = 0; op < 240; ++op) {
    ASSERT_EQ(heap.now(), wheel.now());
    switch (rng() % 4) {
      case 0:
      case 1: {  // schedule_at an absolute time at or after now
        const SimTime at = heap.now() + random_delta();
        const int id = next_id++;
        heap.schedule_at(at, [&heap_log, &heap, id] { heap_log.emplace_back(heap.now(), id); });
        wheel.schedule_at(at,
                          [&wheel_log, &wheel, id] { wheel_log.emplace_back(wheel.now(), id); });
        break;
      }
      case 2: {  // schedule_in a relative delay
        const SimTime delay = random_delta();
        const int id = next_id++;
        heap.schedule_in(delay, [&heap_log, &heap, id] { heap_log.emplace_back(heap.now(), id); });
        wheel.schedule_in(delay,
                          [&wheel_log, &wheel, id] { wheel_log.emplace_back(wheel.now(), id); });
        break;
      }
      default: {  // run a bounded burst
        const std::uint64_t budget = rng() % 16;
        ASSERT_EQ(heap.run_until_idle(budget), wheel.run_until_idle(budget));
        break;
      }
    }
    ASSERT_EQ(heap.pending(), wheel.pending());
    ASSERT_EQ(heap_log, wheel_log);
  }
  EXPECT_EQ(heap.run_until_idle(), wheel.run_until_idle());
  EXPECT_EQ(heap_log, wheel_log);
  EXPECT_EQ(heap.now(), wheel.now());
  EXPECT_GE(next_id, 100);  // the mix really did schedule plenty of work
}

// ---------------------------------------------------------------------------
// Sharded event loop: byte-identical to the serial queue at every size
// ---------------------------------------------------------------------------

TEST(ShardedNetworkTest, DistLRMatchesSerialAtEveryWorkerCount) {
  std::mt19937_64 rng(31);
  const Instance inst = make_random_instance(48, 40, rng);
  const NetworkConfig base{.min_delay = 1, .max_delay = 7, .seed = 9};

  Network serial_net(inst.graph, base);
  DistLinkReversal serial(inst, ReversalRule::kPartial, serial_net);
  serial.start();
  serial_net.run_until_idle();
  ASSERT_TRUE(serial.converged());

  for (const std::size_t workers : {2u, 4u, 8u}) {
    for (const EventSchedulerKind kind :
         {EventSchedulerKind::kHeap, EventSchedulerKind::kWheel}) {
      NetworkConfig config = base;
      config.sim_threads = workers;
      config.scheduler = kind;
      Network net(inst.graph, config);
      ASSERT_NE(net.sharded_loop(), nullptr);
      DistLinkReversal proto(inst, ReversalRule::kPartial, net);
      proto.start();
      net.run_until_idle();
      const std::string context =
          "workers=" + std::to_string(workers) + " " + event_scheduler_token(kind);
      EXPECT_TRUE(proto.converged()) << context;
      EXPECT_EQ(net.now(), serial_net.now()) << context;
      EXPECT_EQ(net.messages_sent(), serial_net.messages_sent()) << context;
      EXPECT_EQ(net.messages_delivered(), serial_net.messages_delivered()) << context;
      EXPECT_EQ(net.messages_dropped(), serial_net.messages_dropped()) << context;
      EXPECT_EQ(proto.total_steps(), serial.total_steps()) << context;
      for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
        ASSERT_EQ(proto.height(u), serial.height(u)) << context << " node " << u;
      }
    }
  }
}

TEST(ShardedNetworkTest, LossyResyncRunsMatchSerialRngStream) {
  // Drops and duplicates draw from the same RNG stream as delays, so this
  // pins the sharded merge's serial-order RNG replay, not just delivery
  // order.  Resync rounds drive repeated quiescence cycles through one
  // network.
  std::mt19937_64 rng(47);
  const Instance inst = make_random_instance(32, 28, rng);
  NetworkConfig base{.min_delay = 1, .max_delay = 5, .seed = 13};
  base.drop_probability = 0.15;
  base.duplicate_probability = 0.1;

  Network serial_net(inst.graph, base);
  DistLinkReversal serial(inst, ReversalRule::kPartial, serial_net);
  const auto serial_rounds = serial.run_with_resync(64);
  ASSERT_TRUE(serial_rounds.has_value());

  for (const std::size_t workers : {2u, 4u}) {
    NetworkConfig config = base;
    config.sim_threads = workers;
    config.scheduler = EventSchedulerKind::kWheel;
    Network net(inst.graph, config);
    DistLinkReversal proto(inst, ReversalRule::kPartial, net);
    const auto rounds = proto.run_with_resync(64);
    const std::string context = "workers=" + std::to_string(workers);
    ASSERT_TRUE(rounds.has_value()) << context;
    EXPECT_EQ(*rounds, *serial_rounds) << context;
    EXPECT_EQ(net.now(), serial_net.now()) << context;
    EXPECT_EQ(net.messages_sent(), serial_net.messages_sent()) << context;
    EXPECT_EQ(net.messages_delivered(), serial_net.messages_delivered()) << context;
    EXPECT_EQ(net.messages_dropped(), serial_net.messages_dropped()) << context;
    for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
      ASSERT_EQ(proto.height(u), serial.height(u)) << context << " node " << u;
    }
  }
}

TEST(ShardedNetworkTest, RejectsAppEventsCoScheduledThroughQueue) {
  Graph g(2, {{0, 1}});
  NetworkConfig config;
  config.sim_threads = 2;
  Network net(g, config);
  net.set_handler(1, [](const NetMessage&) {});
  net.queue().schedule_at(1, [] {});
  EXPECT_THROW(net.run_until_idle(), std::logic_error);
}

TEST(DistLRTest, MessageComplexityIsStepsTimesDegree) {
  std::mt19937_64 rng(11);
  const Instance inst = make_random_instance(16, 10, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 5, .seed = 7});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  // Every step broadcasts to the stepping node's neighbors; verify the
  // global bound sent <= sum over steps of degree.
  std::uint64_t bound = 0;
  for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    bound += proto.steps(u) * inst.graph.degree(u);
  }
  EXPECT_EQ(net.messages_sent(), bound);
}

}  // namespace
}  // namespace lr

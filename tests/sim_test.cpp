#include <gtest/gtest.h>

#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"
#include "sim/dist_lr.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"

namespace lr {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&order] { order.push_back(5); });
  q.schedule_at(1, [&order] { order.push_back(1); });
  q.schedule_at(3, [&order] { order.push_back(3); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2, [&order] { order.push_back(1); });
  q.schedule_at(2, [&order] { order.push_back(2); });
  q.schedule_at(2, [&order] { order.push_back(3); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_in(4, [&] { ++fired; });
  });
  q.run_until_idle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueueTest, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_one();
  EXPECT_THROW(q.schedule_at(3, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, MaxEventsBudget) {
  EventQueue q;
  // A self-perpetuating event chain.
  std::function<void()> tick = [&] { q.schedule_in(1, tick); };
  q.schedule_at(0, tick);
  const auto ran = q.run_until_idle(100);
  EXPECT_EQ(ran, 100u);
  EXPECT_FALSE(q.empty());
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(NetworkTest, DeliversToHandlerWithinDelayBounds) {
  Graph g(2, {{0, 1}});
  Network net(g, {.min_delay = 2, .max_delay = 5, .seed = 1});
  SimTime delivered_at = 0;
  net.set_handler(1, [&](const NetMessage& m) {
    EXPECT_EQ(m.from, 0u);
    EXPECT_EQ(m.payload, (std::vector<std::int64_t>{42}));
    delivered_at = net.now();
  });
  net.send(0, 1, {42});
  net.run_until_idle();
  EXPECT_GE(delivered_at, 2u);
  EXPECT_LE(delivered_at, 5u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkTest, RejectsNonAdjacentSend) {
  Graph g(3, {{0, 1}});
  Network net(g, {});
  EXPECT_THROW(net.send(0, 2, {1}), std::invalid_argument);
}

TEST(NetworkTest, DownLinkDropsMessages) {
  Graph g(2, {{0, 1}});
  Network net(g, {});
  int received = 0;
  net.set_handler(1, [&](const NetMessage&) { ++received; });
  net.set_link_up(0, false);
  net.send(0, 1, {1});
  net.run_until_idle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.set_link_up(0, true);
  net.send(0, 1, {2});
  net.run_until_idle();
  EXPECT_EQ(received, 1);
}

TEST(NetworkTest, RejectsBadDelayConfig) {
  Graph g(2, {{0, 1}});
  EXPECT_THROW(Network(g, {.min_delay = 0, .max_delay = 5, .seed = 1}), std::invalid_argument);
  EXPECT_THROW(Network(g, {.min_delay = 6, .max_delay = 5, .seed = 1}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Distributed link reversal
// ---------------------------------------------------------------------------

struct DistParam {
  std::size_t size;
  std::uint64_t seed;
  ReversalRule rule;

  friend std::ostream& operator<<(std::ostream& os, const DistParam& p) {
    return os << (p.rule == ReversalRule::kFull ? "FR" : "PR") << "_n" << p.size << "_s" << p.seed;
  }
};

class DistLRSweep : public ::testing::TestWithParam<DistParam> {};

TEST_P(DistLRSweep, ConvergesToDestinationOrientedDag) {
  std::mt19937_64 rng(GetParam().seed * 997 + 3);
  const Instance inst = make_random_instance(GetParam().size, GetParam().size, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 7, .seed = GetParam().seed});
  DistLinkReversal proto(inst, GetParam().rule, net);
  proto.start();
  net.run_until_idle();
  EXPECT_TRUE(proto.converged()) << inst.name;
  EXPECT_TRUE(is_acyclic(proto.derived_orientation()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistLRSweep,
    ::testing::Values(DistParam{8, 1, ReversalRule::kFull}, DistParam{8, 1, ReversalRule::kPartial},
                      DistParam{16, 2, ReversalRule::kFull},
                      DistParam{16, 2, ReversalRule::kPartial},
                      DistParam{32, 3, ReversalRule::kFull},
                      DistParam{32, 3, ReversalRule::kPartial},
                      DistParam{64, 4, ReversalRule::kPartial}),
    [](const ::testing::TestParamInfo<DistParam>& info) {
      std::ostringstream oss;
      oss << info.param;
      return oss.str();
    });

TEST(DistLRTest, AlreadyOrientedInstanceNeedsNoSteps) {
  std::mt19937_64 rng(9);
  Graph g = make_random_connected_graph(12, 8, rng);
  const auto rank = destination_oriented_ranking(g, 0, rng);
  // Edges point low -> high rank; flip so everything routes to node 0.
  Orientation o = Orientation::from_ranking(g, rank);
  std::vector<EdgeSense> flipped(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    flipped[e] = o.sense(e) == EdgeSense::kForward ? EdgeSense::kBackward : EdgeSense::kForward;
  }
  Instance inst{std::move(g), std::move(flipped), 0, "pre-oriented"};

  Network net(inst.graph, {.min_delay = 1, .max_delay = 3, .seed = 2});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  EXPECT_TRUE(proto.converged());
  EXPECT_EQ(proto.total_steps(), 0u);
  EXPECT_EQ(net.messages_sent(), 0u);
}

TEST(DistLRTest, DerivedOrientationAlwaysAcyclicMidFlight) {
  // Acyclicity-by-total-order holds at *every* instant, not just at
  // convergence: sample mid-execution.
  std::mt19937_64 rng(10);
  const Instance inst = make_random_instance(20, 15, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 9, .seed = 5});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  std::uint64_t guard = 0;
  while (net.queue().run_one() && guard++ < 100000) {
    if (guard % 7 == 0) {
      ASSERT_TRUE(is_acyclic(proto.derived_orientation()));
    }
  }
  EXPECT_TRUE(proto.converged());
}

TEST(DistLRTest, LinkChurnRecoversAfterRestore) {
  const Instance inst = make_worst_case_chain(8);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 4, .seed = 6});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);

  // Take a mid-chain link down before starting: updates over it are lost.
  const EdgeId cut = 3;
  net.set_link_up(cut, false);
  proto.start();
  net.run_until_idle();

  // Restore and resynchronize.
  net.set_link_up(cut, true);
  proto.notify_link_restored(cut);
  net.run_until_idle();
  EXPECT_TRUE(proto.converged());
}

TEST(DistLRTest, MessageComplexityIsStepsTimesDegree) {
  std::mt19937_64 rng(11);
  const Instance inst = make_random_instance(16, 10, rng);
  Network net(inst.graph, {.min_delay = 1, .max_delay = 5, .seed = 7});
  DistLinkReversal proto(inst, ReversalRule::kPartial, net);
  proto.start();
  net.run_until_idle();
  // Every step broadcasts to the stepping node's neighbors; verify the
  // global bound sent <= sum over steps of degree.
  std::uint64_t bound = 0;
  for (NodeId u = 0; u < inst.graph.num_nodes(); ++u) {
    bound += proto.steps(u) * inst.graph.degree(u);
  }
  EXPECT_EQ(net.messages_sent(), bound);
}

}  // namespace
}  // namespace lr

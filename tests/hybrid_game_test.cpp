#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "analysis/game.hpp"
#include "automata/executor.hpp"
#include "automata/model_check.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/invariants.hpp"
#include "graph/digraph_algos.hpp"

/// The Charron-Bost–Welch–Widder reversal game, verified: uniform profiles
/// reduce to FR / PR exactly; mixed profiles stay safe; all-FR is a Nash
/// equilibrium on every tested instance; all-PR achieves a social cost no
/// worse than all-FR on structured families.

namespace lr {
namespace {

TEST(HybridGameTest, AllPartialProfileEqualsPRStepByStep) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst = make_random_instance(16, 12, rng);
    HybridStrategyAutomaton hybrid(inst,
                                   HybridStrategyAutomaton::all_partial(inst.graph.num_nodes()));
    OneStepPRAutomaton pr(inst);
    LowestIdScheduler scheduler;
    while (const auto choice = scheduler.choose(pr)) {
      pr.apply(*choice);
      hybrid.apply(*choice);
      ASSERT_TRUE(pr.orientation() == hybrid.orientation());
      ASSERT_TRUE(pr.lists_equal(hybrid));
    }
    EXPECT_TRUE(hybrid.quiescent());
  }
}

TEST(HybridGameTest, AllFullProfileEqualsFRStepByStep) {
  std::mt19937_64 rng(8);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst = make_random_instance(16, 12, rng);
    HybridStrategyAutomaton hybrid(inst,
                                   HybridStrategyAutomaton::all_full(inst.graph.num_nodes()));
    FullReversalAutomaton fr(inst);
    LowestIdScheduler scheduler;
    while (const auto choice = scheduler.choose(fr)) {
      fr.apply(*choice);
      hybrid.apply(*choice);
      ASSERT_TRUE(fr.orientation() == hybrid.orientation());
    }
    EXPECT_TRUE(hybrid.quiescent());
  }
}

TEST(HybridGameTest, MixedProfilesStaySafeAndConverge) {
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = make_random_instance(18, 14, rng);
    std::vector<NodeStrategy> profile(inst.graph.num_nodes());
    std::bernoulli_distribution coin(0.5);
    for (auto& s : profile) {
      s = coin(rng) ? NodeStrategy::kFullReversal : NodeStrategy::kPartialReversal;
    }
    HybridStrategyAutomaton hybrid(inst, profile);
    RandomScheduler scheduler(trial);
    // Note: Corollary 3.3 (list ⊆ in-nbrs or out-nbrs) is a *pure-PR*
    // property and genuinely fails in mixed profiles — FR nodes reverse
    // listed edges too and insert themselves into neighbors' lists out of
    // phase.  Acyclicity, however, must survive (each step still reverses
    // a subset of a sink's edges; see MixedProfilesAcyclicExhaustively).
    const RunResult result = run_to_quiescence(
        hybrid, scheduler, [](const HybridStrategyAutomaton& a, NodeId) {
          ASSERT_TRUE(check_acyclic(a.orientation())) << check_acyclic(a.orientation()).detail;
        });
    EXPECT_TRUE(result.quiescent);
    EXPECT_TRUE(result.destination_oriented) << inst.name;
  }
}

TEST(HybridGameTest, MixedProfilesAcyclicExhaustively) {
  // Every one of the 2^5 strategy profiles on a diamond-with-tail graph,
  // model-checked over ALL schedules and reachable states: acyclicity
  // holds throughout (mixed FR/PR profiles are valid link-reversal
  // algorithms in the Charron-Bost game framework).
  Graph g(5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {2, 4}});
  const auto senses = Orientation::from_ranking(g, identity_ranking(5)).senses();
  for (unsigned mask = 0; mask < 32; ++mask) {
    std::vector<NodeStrategy> profile(5);
    for (int i = 0; i < 5; ++i) {
      profile[i] = (mask >> i) & 1 ? NodeStrategy::kFullReversal
                                   : NodeStrategy::kPartialReversal;
    }
    HybridStrategyAutomaton initial(g, Orientation(g, senses), 0, std::move(profile));
    const auto result = model_check(
        initial,
        [](const HybridStrategyAutomaton& a) -> std::string {
          const auto check = check_acyclic(a.orientation());
          return check.ok ? std::string{} : check.detail;
        },
        500000);
    EXPECT_TRUE(result.ok) << "profile mask " << mask << ": " << result.failure;
  }
}

TEST(HybridGameTest, HybridWorkIsScheduleIndependentToo) {
  std::mt19937_64 rng(10);
  const Instance inst = make_random_instance(16, 12, rng);
  std::vector<NodeStrategy> profile(inst.graph.num_nodes(), NodeStrategy::kPartialReversal);
  for (NodeId u = 0; u < profile.size(); u += 2) profile[u] = NodeStrategy::kFullReversal;

  std::vector<std::uint64_t> reference;
  for (int variant = 0; variant < 4; ++variant) {
    HybridStrategyAutomaton hybrid(inst, profile);
    std::vector<std::uint64_t> work(inst.graph.num_nodes(), 0);
    const auto observer = [&work](const HybridStrategyAutomaton&, NodeId u) { ++work[u]; };
    if (variant == 0) {
      LowestIdScheduler s;
      run_to_quiescence(hybrid, s, observer);
      reference = work;
      continue;
    }
    RandomScheduler s(variant * 17);
    run_to_quiescence(hybrid, s, observer);
    EXPECT_EQ(work, reference) << "variant " << variant;
  }
}

TEST(HybridGameTest, AllFRIsANashEquilibriumOnTestedInstances) {
  // Charron-Bost et al.: the all-FR profile is always a Nash equilibrium.
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = make_random_instance(12, 10, rng);
    const auto result =
        check_nash_equilibrium(inst, HybridStrategyAutomaton::all_full(inst.graph.num_nodes()));
    EXPECT_TRUE(result.is_equilibrium)
        << inst.name << ": node " << result.improving_node << " improves "
        << result.cost_before << " -> " << result.cost_after;
  }
  // And on the chain, where FR's cost is maximal.
  const auto chain_result = check_nash_equilibrium(
      make_worst_case_chain(10), HybridStrategyAutomaton::all_full(10));
  EXPECT_TRUE(chain_result.is_equilibrium);
}

TEST(HybridGameTest, AllPRSocialCostNeverWorseThanAllFROnChains) {
  for (const std::size_t n : {5u, 9u, 17u}) {
    const Instance inst = make_worst_case_chain(n);
    const auto pr_costs =
        measure_profile_costs(inst, HybridStrategyAutomaton::all_partial(n));
    const auto fr_costs = measure_profile_costs(inst, HybridStrategyAutomaton::all_full(n));
    const auto total = [](const std::vector<std::uint64_t>& v) {
      return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
    };
    EXPECT_LT(total(pr_costs), total(fr_costs)) << inst.name;
  }
}

TEST(HybridGameTest, ProfileCostsMatchUniformMeasurements) {
  std::mt19937_64 rng(12);
  const Instance inst = make_random_instance(14, 10, rng);
  const auto hybrid_pr =
      measure_profile_costs(inst, HybridStrategyAutomaton::all_partial(14));
  const auto pure_pr =
      measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1);
  EXPECT_EQ(hybrid_pr, pure_pr.node_cost);

  const auto hybrid_fr = measure_profile_costs(inst, HybridStrategyAutomaton::all_full(14));
  const auto pure_fr =
      measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1);
  EXPECT_EQ(hybrid_fr, pure_fr.node_cost);
}

TEST(HybridGameTest, RejectsWrongProfileSize) {
  const Instance inst = make_worst_case_chain(4);
  EXPECT_THROW(HybridStrategyAutomaton(inst, HybridStrategyAutomaton::all_full(3)),
               std::invalid_argument);
}

TEST(HybridGameTest, IsAllPRAnEquilibriumVariesByInstance) {
  // Charron-Bost: all-PR is *not necessarily* an equilibrium.  Record how
  // often it is across random instances (informational; both outcomes are
  // legitimate).
  std::mt19937_64 rng(13);
  int equilibrium = 0;
  int checked = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = make_random_instance(10, 8, rng);
    const auto result = check_nash_equilibrium(
        inst, HybridStrategyAutomaton::all_partial(inst.graph.num_nodes()));
    ++checked;
    if (result.is_equilibrium) ++equilibrium;
  }
  RecordProperty("all_pr_equilibrium_count", equilibrium);
  EXPECT_EQ(checked, 10);
}

}  // namespace
}  // namespace lr

#include <gtest/gtest.h>

#include "automata/scheduler.hpp"
#include "automata/simulation.hpp"
#include "core/invariants.hpp"
#include "core/relations.hpp"
#include "graph/generators.hpp"

/// Negative tests: every checker must *fail* on states that violate its
/// property.  A checker that can never fire is worthless as evidence, so
/// each one is pointed at a hand-crafted violating state here.

namespace lr {
namespace {

TEST(CheckerNegativeTest, AcyclicityCheckerFlagsCycle) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Orientation cyclic(g, {EdgeSense::kForward, EdgeSense::kForward, EdgeSense::kBackward});
  const auto result = check_acyclic(cyclic);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("cycle"), std::string::npos);
}

TEST(CheckerNegativeTest, Invariant32ViolationsUnrepresentableViaPublicApi) {
  // Deliberate design property: an automaton constructed from any
  // orientation treats it as G'_init (in-/out-nbrs re-derive from it), so
  // "orientation changed behind the lists' back" states cannot be built
  // through the public API — tampering with the orientation before
  // construction yields a *different*, self-consistent initial state.
  Instance inst = make_worst_case_chain(4);
  Orientation tampered = inst.make_orientation();
  tampered.reverse_edge(2);  // flip edge {2,3} before construction
  OneStepPRAutomaton fresh(inst.graph, std::move(tampered), inst.destination);
  EXPECT_TRUE(check_invariant_3_2(fresh))
      << "pre-construction tampering just defines a new consistent G'_init";
}

TEST(CheckerNegativeTest, Invariant32FlagsDegenerateIsolatedNode) {
  // The checker's "exactly one case" clause fires when *both* cases hold,
  // which happens for a degree-0 node (both vacuously true).  The paper's
  // model excludes such nodes (connected G); the checker flags them rather
  // than silently accepting — exercising its failure path.
  Graph g(2, {});
  OneStepPRAutomaton pr(g, Orientation(g, {}), 0);
  const auto result = check_invariant_3_2(pr);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("both"), std::string::npos);
}

TEST(CheckerNegativeTest, Invariant41FlagsWrongParityDirection) {
  // Two neighbors, both even parity (counts 0), edge directed right-to-left.
  Graph g(2, {{0, 1}});
  Orientation initial(g, {EdgeSense::kForward});
  const LeftRightEmbedding emb(initial);
  Orientation flipped(g, {EdgeSense::kBackward});
  NewPRAutomaton newpr(g, std::move(flipped), 0);
  // Both counts are 0 (even) but the edge goes right-to-left w.r.t. the
  // embedding of the *forward* initial orientation.
  const auto result = check_invariant_4_1(newpr, emb);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("4.1"), std::string::npos);
}

TEST(CheckerNegativeTest, Invariant42FlagsDirectionAgainstCounts) {
  // Legal counts (node 2 has fired once, others zero) paired with an
  // orientation where the edge {1,2} still points 1 -> 2 contradict part
  // (d): count[2] > count[1] requires the edge to point 2 -> 1.  Build the
  // contradiction with a checker-level embedding mismatch: run the legal
  // step, then check against an automaton whose orientation was never
  // updated.  Since counts are not settable from outside (by design), the
  // *embedding* is the tamper point instead: swap left/right.
  Instance inst = make_worst_case_chain(3);
  NewPRAutomaton newpr(inst);
  const LeftRightEmbedding emb(newpr.orientation());
  newpr.apply(2);
  ASSERT_TRUE(check_invariant_4_2(newpr, emb));

  // Reversed embedding: node 2 claims to be leftmost.  Part (c) now reads
  // "count[1]=0 even and 2 left of 1 => counts equal", which fails because
  // count[2]=1.
  const LeftRightEmbedding reversed(std::vector<std::uint32_t>{2, 1, 0});
  const auto result = check_invariant_4_2(newpr, reversed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("4.2"), std::string::npos);
}

TEST(CheckerNegativeTest, QuiescenceConsistencyFlagsOrientedWithSink) {
  // A disconnected-looking contradiction: build a graph where node 2 is a
  // sink but everything "reaches" the destination is false -> quiescent
  // check must flag the mismatch.
  Graph g(3, {{0, 1}, {1, 2}});
  // 1 -> 0 and 2 -> 1: destination-oriented towards 0, no sinks besides 0.
  Orientation oriented(g, {EdgeSense::kBackward, EdgeSense::kBackward});
  EXPECT_TRUE(check_quiescence_consistency(oriented, 0));
  // 0 -> 1 and 2 -> 1: node 1 is a non-destination sink and 2 cannot reach 0.
  Orientation stuck(g, {EdgeSense::kForward, EdgeSense::kBackward});
  const auto result = check_quiescence_consistency(stuck, 0);
  EXPECT_TRUE(result.ok) << "non-quiescent and non-oriented is consistent";
  // Destination 1: the graph IS oriented towards 1 and 1 is the only sink.
  EXPECT_TRUE(check_quiescence_consistency(stuck, 1));
}

TEST(CheckerNegativeTest, SimulationCheckerFlagsWrongCorrespondence) {
  // Map every OneStepPR step to the *empty* NewPR sequence: the relation R
  // must break as soon as the orientations diverge.
  std::mt19937_64 rng(3);
  const Instance inst = make_random_instance(10, 8, rng);
  OneStepPRAutomaton concrete(inst);
  NewPRAutomaton abstract(inst);
  RandomScheduler scheduler(1);
  const auto result = check_forward_simulation(
      concrete, abstract, scheduler,
      [](const OneStepPRAutomaton& s, const NewPRAutomaton& t) { return relation_R(s, t); },
      [](const OneStepPRAutomaton&, NodeId, const NewPRAutomaton&) {
        return std::vector<NodeId>{};  // deliberately wrong
      });
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("relation violated"), std::string::npos);
}

TEST(CheckerNegativeTest, SimulationCheckerFlagsDisabledAbstractAction) {
  // Map each step to a node that is not a sink in the abstract automaton.
  std::mt19937_64 rng(4);
  const Instance inst = make_worst_case_chain(5);
  OneStepPRAutomaton concrete(inst);
  OneStepPRAutomaton abstract(inst);
  LowestIdScheduler scheduler;
  const auto result = check_forward_simulation(
      concrete, abstract, scheduler,
      [](const OneStepPRAutomaton& s, const OneStepPRAutomaton& t) {
        return s.orientation() == t.orientation() || true;  // relation never fails
      },
      [](const OneStepPRAutomaton&, NodeId, const OneStepPRAutomaton&) {
        return std::vector<NodeId>{0};  // destination: never enabled
      });
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("not enabled"), std::string::npos);
}

TEST(CheckerNegativeTest, RelationRPrimeFlagsListMismatch) {
  Instance inst = make_worst_case_chain(4);
  PRAutomaton s(inst);
  OneStepPRAutomaton t(inst);
  ASSERT_TRUE(relation_R_prime(s, t));
  // Apply the same orientation change through both, but make the abstract
  // automaton take an extra full cycle that restores the orientation while
  // perturbing lists: simplest divergence is one unmatched step.
  t.apply(3);
  EXPECT_FALSE(relation_R_prime(s, t));
}

}  // namespace
}  // namespace lr

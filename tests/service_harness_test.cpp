/// Pins the ServiceHarness contract (src/service/service_harness.hpp):
/// byte-identical traces and histograms at every worker count and under
/// both event-scheduler backends, exactly-once request accounting
/// through partition-and-heal fault injection, patch-only (rebuild-free)
/// churn through the incremental CSR path, and sweep integration — the
/// service kernel rides WorkerPoolCache instead of spawning a pool per
/// run, and its records are invariant across sim_threads / scheduler /
/// process sharding.

#include "service/service_harness.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "graph/generators.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/thread_pool.hpp"

namespace lr {
namespace {

Instance chain_instance(std::size_t n) { return make_worst_case_chain(n); }

Instance random_instance(std::size_t n) {
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = n;
  spec.seed = 3;
  return make_instance(spec);
}

ServiceReport run_harness(const Instance& inst, ServiceOptions options) {
  ServiceHarness harness(inst.graph, inst.destination, options);
  return harness.run();
}

// ---------------------------------------------------------------------------
// Determinism battery: 1/2/4/8 workers x heap/wheel
// ---------------------------------------------------------------------------

TEST(ServiceHarnessDeterminism, WorkerCountAndSchedulerNeverChangeTheReport) {
  const Instance inst = random_instance(32);
  ServiceOptions base;
  base.clients = 8;
  base.duration = 192;
  base.churn_interval = 12;
  base.keep_trace = true;

  // Reference: serial, heap.
  const ServiceReport reference = run_harness(inst, base);
  ASSERT_GT(reference.total_issued(), 0u);
  ASSERT_FALSE(reference.trace.empty());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    for (const EventSchedulerKind scheduler :
         {EventSchedulerKind::kHeap, EventSchedulerKind::kWheel}) {
      ServiceOptions options = base;
      options.workers = workers;
      options.scheduler = scheduler;
      const ServiceReport report = run_harness(inst, options);
      SCOPED_TRACE(testing::Message() << "workers=" << workers << " scheduler="
                                      << (scheduler == EventSchedulerKind::kHeap ? "heap"
                                                                                 : "wheel"));
      // Trace: field-by-field identical, in the same issue order.
      ASSERT_EQ(report.trace.size(), reference.trace.size());
      for (std::size_t i = 0; i < report.trace.size(); ++i) {
        EXPECT_EQ(report.trace[i].id, reference.trace[i].id);
        EXPECT_EQ(report.trace[i].kind, reference.trace[i].kind);
        EXPECT_EQ(report.trace[i].source, reference.trace[i].source);
        EXPECT_EQ(report.trace[i].issued, reference.trace[i].issued);
        EXPECT_EQ(report.trace[i].latency, reference.trace[i].latency);
        EXPECT_EQ(report.trace[i].hops, reference.trace[i].hops);
        EXPECT_EQ(report.trace[i].status, reference.trace[i].status);
      }
      // Histograms and counters: structurally equal, same fingerprint.
      for (std::size_t kind = 0; kind < kRequestKinds; ++kind) {
        EXPECT_EQ(report.kinds[kind].histogram, reference.kinds[kind].histogram);
        EXPECT_EQ(report.kinds[kind].issued, reference.kinds[kind].issued);
        EXPECT_EQ(report.kinds[kind].completed, reference.kinds[kind].completed);
        EXPECT_EQ(report.kinds[kind].failed, reference.kinds[kind].failed);
        EXPECT_EQ(report.kinds[kind].hops, reference.kinds[kind].hops);
      }
      EXPECT_EQ(report.churn_events, reference.churn_events);
      EXPECT_EQ(report.reversal_steps, reference.reversal_steps);
      EXPECT_EQ(report.fingerprint(), reference.fingerprint());
    }
  }
}

TEST(ServiceHarnessDeterminism, BorrowedPoolMatchesLocalPool) {
  const Instance inst = random_instance(24);
  ServiceOptions options;
  options.clients = 6;
  options.duration = 96;
  options.workers = 4;
  const std::uint64_t local = run_harness(inst, options).fingerprint();
  ThreadPool pool(4);
  options.pool = &pool;
  EXPECT_EQ(run_harness(inst, options).fingerprint(), local);
}

TEST(ServiceHarnessDeterminism, EveryWorkloadMixIsSchedulerInvariant) {
  const Instance inst = random_instance(20);
  for (const ServiceWorkload workload : {ServiceWorkload::kRoute, ServiceWorkload::kLock,
                                         ServiceWorkload::kLeader, ServiceWorkload::kMixed}) {
    ServiceOptions options;
    options.clients = 5;
    options.duration = 64;
    options.workload = workload;
    const std::uint64_t heap = run_harness(inst, options).fingerprint();
    options.scheduler = EventSchedulerKind::kWheel;
    options.workers = 2;
    EXPECT_EQ(run_harness(inst, options).fingerprint(), heap)
        << service_workload_token(workload);
  }
}

// ---------------------------------------------------------------------------
// Fault injection: partition-and-heal with exactly-once accounting
// ---------------------------------------------------------------------------

TEST(ServiceHarnessFaults, PartitionAndHealAccountsEveryRequestExactlyOnce) {
  // A chain is the cleanest partition: cutting (k, k+1) strands every
  // client at nodes > k from destination 0 until the link heals.
  const Instance inst = chain_instance(12);
  const NodeId cut = 5;
  std::vector<ScriptedLinkEvent> script = {
      {32, {cut, cut + 1, false}},   // partition
      {96, {cut, cut + 1, true}},    // heal
      {128, {cut, cut + 1, false}},  // partition again
      {160, {cut, cut + 1, true}},   // heal again
  };
  ServiceOptions options;
  options.clients = 8;
  options.duration = 224;
  options.churn_script = &script;
  options.keep_trace = true;
  const ServiceReport report = run_harness(inst, options);

  // All four scripted flips applied, and only those.
  EXPECT_EQ(report.churn_events, script.size());

  // Exactly-once: ids are a permutation of 0..issued-1, each with a
  // terminal status; total splits into completed + failed.
  ASSERT_EQ(report.trace.size(), report.total_issued());
  std::vector<bool> seen(report.trace.size(), false);
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  for (const ServiceRequest& request : report.trace) {
    ASSERT_LT(request.id, seen.size());
    EXPECT_FALSE(seen[request.id]) << "duplicate id " << request.id;
    seen[request.id] = true;
    if (request.status == RequestStatus::kOk) {
      ++ok;
      EXPECT_GE(request.latency, 1u);
    } else {
      ++failed;
      // A failure always carries a reason token distinct from "ok".
      EXPECT_STRNE(request_status_token(request.status), "ok");
    }
  }
  EXPECT_EQ(ok, report.total_completed());
  EXPECT_EQ(failed, report.total_failed());
  EXPECT_EQ(ok + failed, report.total_issued());
  // The partition windows must actually strand someone, and the healed
  // windows must actually serve someone.
  EXPECT_GT(failed, 0u);
  EXPECT_GT(ok, 0u);

  // Cross-check: per-kind histograms rebuilt from the trace are
  // byte-identical to the report's.
  LatencyHistogram rebuilt[kRequestKinds];
  for (const ServiceRequest& request : report.trace) {
    if (request.status == RequestStatus::kOk) {
      rebuilt[static_cast<std::size_t>(request.kind)].record(request.latency);
    }
  }
  for (std::size_t kind = 0; kind < kRequestKinds; ++kind) {
    EXPECT_EQ(rebuilt[kind], report.kinds[kind].histogram) << "kind " << kind;
  }
}

TEST(ServiceHarnessFaults, FailuresDuringPartitionAreStampedPartitioned) {
  const Instance inst = chain_instance(8);
  // Cut the destination's only link for the whole run: every route
  // request from a non-destination node must fail partitioned.
  std::vector<ScriptedLinkEvent> script = {{0, {0, 1, false}}};
  ServiceOptions options;
  options.clients = 4;
  options.duration = 64;
  options.workload = ServiceWorkload::kRoute;
  options.churn_script = &script;
  options.keep_trace = true;
  const ServiceReport report = run_harness(inst, options);
  ASSERT_GT(report.total_issued(), 0u);
  for (const ServiceRequest& request : report.trace) {
    if (request.source == inst.destination) {
      EXPECT_EQ(request.status, RequestStatus::kOk);
    } else {
      EXPECT_EQ(request.status, RequestStatus::kPartitioned);
    }
  }
}

TEST(ServiceHarnessFaults, ChurnRidesTheIncrementalPatchPath) {
  // Steady-state churn must flow through add_link/remove_link patches:
  // the only snapshot rebuilds are the three services' construction
  // freezes, no matter how many links flip mid-run.
  const Instance inst = random_instance(24);
  ServiceOptions options;
  options.clients = 6;
  options.duration = 256;
  options.churn_interval = 4;  // aggressive churn
  const ServiceReport report = run_harness(inst, options);
  EXPECT_GT(report.churn_events, 20u);
  EXPECT_EQ(report.snapshot_rebuilds, 3u);
  EXPECT_GT(report.snapshot_patches, 0u);
}

// ---------------------------------------------------------------------------
// Sweep integration: WorkerPoolCache reuse and record invariance
// ---------------------------------------------------------------------------

RunSpec service_spec(std::size_t sim_threads) {
  RunSpec spec;
  spec.topology = TopologyKind::kRandom;
  spec.size = 24;
  spec.algorithm = AlgorithmKind::kService;
  spec.seed = 5;
  spec.sim_threads = sim_threads;
  spec.service_clients = 6;
  spec.service_duration = 96;
  return spec;
}

TEST(ServicePoolCache, SharedCacheSpawnsOnePoolAcrossManyRuns) {
  const RunSpec spec = service_spec(4);
  // Warm-up outside the measured window (first-use lazies).
  (void)execute_run(spec, nullptr, nullptr);

  WorkerPoolCache pools;
  const std::uint64_t before_cached = ThreadPool::total_constructed();
  for (int i = 0; i < 4; ++i) {
    const RunRecord record = execute_run(spec, nullptr, &pools);
    EXPECT_TRUE(record.error.empty()) << record.error;
  }
  const std::uint64_t cached_delta = ThreadPool::total_constructed() - before_cached;
  EXPECT_EQ(cached_delta, 1u) << "4 cached service runs must share one pool";

  const std::uint64_t before_uncached = ThreadPool::total_constructed();
  for (int i = 0; i < 4; ++i) (void)execute_run(spec, nullptr, nullptr);
  const std::uint64_t uncached_delta = ThreadPool::total_constructed() - before_uncached;
  EXPECT_EQ(uncached_delta, 4u) << "uncached service runs spawn one pool each";
}

TEST(ServicePoolCache, CachedAndUncachedRecordsAreIdentical) {
  const RunSpec spec = service_spec(2);
  WorkerPoolCache pools;
  const RunRecord cached = execute_run(spec, nullptr, &pools);
  const RunRecord uncached = execute_run(spec, nullptr, nullptr);
  EXPECT_EQ(cached.work, uncached.work);
  EXPECT_EQ(cached.messages, uncached.messages);
  EXPECT_EQ(cached.rounds, uncached.rounds);
  EXPECT_EQ(cached.edge_reversals, uncached.edge_reversals);
  EXPECT_EQ(cached.abstract_steps, uncached.abstract_steps);
  EXPECT_EQ(cached.dummy_steps, uncached.dummy_steps);
  EXPECT_EQ(cached.converged, uncached.converged);
}

TEST(ServiceRunner, RecordIsInvariantAcrossThreadsAndScheduler) {
  const RunRecord reference = execute_run(service_spec(1));
  ASSERT_TRUE(reference.error.empty()) << reference.error;
  ASSERT_TRUE(reference.converged);
  EXPECT_NE(reference.dummy_steps, 0u) << "dummy_steps must carry the report fingerprint";
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    for (const EventSchedulerKind scheduler :
         {EventSchedulerKind::kHeap, EventSchedulerKind::kWheel}) {
      RunSpec spec = service_spec(threads);
      spec.sim_scheduler = scheduler;
      const RunRecord record = execute_run(spec);
      EXPECT_EQ(record.work, reference.work);
      EXPECT_EQ(record.messages, reference.messages);
      EXPECT_EQ(record.rounds, reference.rounds);
      EXPECT_EQ(record.edge_reversals, reference.edge_reversals);
      EXPECT_EQ(record.abstract_steps, reference.abstract_steps);
      EXPECT_EQ(record.dummy_steps, reference.dummy_steps);
    }
  }
}

TEST(ServiceRunner, SweepShipsServiceScalarsToEveryRecord) {
  SweepSpec sweep;
  sweep.topologies = {TopologyKind::kChain};
  sweep.sizes = {12};
  sweep.algorithms = {AlgorithmKind::kService};
  sweep.schedulers = {SchedulerKind::kLowestId};
  sweep.seeds = {1, 2};
  sweep.service_workload = ServiceWorkload::kLock;
  sweep.service_clients = 3;
  sweep.service_duration = 48;
  const ScenarioRunner runner({.threads = 1});
  const SweepReport report = runner.run(sweep);
  ASSERT_EQ(report.records.size(), 2u);
  for (const RunRecord& record : report.records) {
    EXPECT_EQ(record.spec.service_workload, ServiceWorkload::kLock);
    EXPECT_EQ(record.spec.service_clients, 3u);
    EXPECT_EQ(record.spec.service_duration, 48u);
    EXPECT_TRUE(record.error.empty()) << record.error;
    EXPECT_TRUE(record.converged);
  }
}

}  // namespace
}  // namespace lr

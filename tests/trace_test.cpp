#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(TraceTest, RecordsEveryStep) {
  Instance inst = make_worst_case_chain(6);
  OneStepPRAutomaton pr(inst);
  TraceRecorder recorder;
  LowestIdScheduler scheduler;
  const RunResult result = run_to_quiescence(
      pr, scheduler,
      [&recorder](const OneStepPRAutomaton& a, NodeId u) { recorder.on_step(a, u); });
  EXPECT_EQ(recorder.events().size(), result.steps);
  for (std::size_t i = 0; i < recorder.events().size(); ++i) {
    EXPECT_EQ(recorder.events()[i].step, i);
    EXPECT_EQ(recorder.events()[i].nodes.size(), 1u);
  }
}

TEST(TraceTest, EdgeReversalsPerStepSumToTotal) {
  std::mt19937_64 rng(3);
  Instance inst = make_random_instance(15, 10, rng);
  OneStepPRAutomaton pr(inst);
  TraceRecorder recorder;
  RandomScheduler scheduler(8);
  const RunResult result = run_to_quiescence(
      pr, scheduler,
      [&recorder](const OneStepPRAutomaton& a, NodeId u) { recorder.on_step(a, u); });
  std::uint64_t sum = 0;
  for (const TraceEvent& e : recorder.events()) sum += e.edges_reversed;
  EXPECT_EQ(sum, result.edge_reversals);
}

TEST(TraceTest, NodeScriptReplaysIdentically) {
  std::mt19937_64 rng(4);
  Instance inst = make_random_instance(18, 12, rng);
  OneStepPRAutomaton original(inst);
  TraceRecorder recorder;
  RandomScheduler random(55);
  run_to_quiescence(original, random, [&recorder](const OneStepPRAutomaton& a, NodeId u) {
    recorder.on_step(a, u);
  });

  OneStepPRAutomaton replayed(inst);
  ReplayScheduler replay(recorder.node_script());
  run_to_quiescence(replayed, replay);
  EXPECT_TRUE(original.orientation() == replayed.orientation());
}

TEST(TraceTest, SetStepsRecordedWithAllNodes) {
  Instance inst = make_sink_source_instance(9);
  PRAutomaton pr(inst);
  TraceRecorder recorder;
  MaximalSetScheduler scheduler;
  run_to_quiescence_set(pr, scheduler,
                        [&recorder](const PRAutomaton& a, const std::vector<NodeId>& s) {
                          recorder.on_set_step(a, s);
                        });
  ASSERT_FALSE(recorder.events().empty());
  EXPECT_GT(recorder.events()[0].nodes.size(), 1u);
}

TEST(TraceTest, CsvRoundTrip) {
  Instance inst = make_worst_case_chain(5);
  OneStepPRAutomaton pr(inst);
  TraceRecorder recorder;
  LowestIdScheduler scheduler;
  run_to_quiescence(pr, scheduler, [&recorder](const OneStepPRAutomaton& a, NodeId u) {
    recorder.on_step(a, u);
  });

  std::stringstream buffer;
  recorder.write_csv(buffer);
  const auto events = read_trace_csv(buffer);
  ASSERT_EQ(events.size(), recorder.events().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].step, recorder.events()[i].step);
    EXPECT_EQ(events[i].nodes, recorder.events()[i].nodes);
    EXPECT_EQ(events[i].edges_reversed, recorder.events()[i].edges_reversed);
    EXPECT_EQ(events[i].sinks_after, recorder.events()[i].sinks_after);
  }
}

TEST(TraceTest, CsvRejectsBadHeader) {
  std::stringstream buffer("oops\n1,2,3,4\n");
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceTest, CsvRejectsRowWithoutNodes) {
  std::stringstream buffer("step,nodes,edges_reversed,sinks_after\n0,,1,2\n");
  EXPECT_THROW(read_trace_csv(buffer), std::invalid_argument);
}

TEST(TraceTest, EmptyStreamYieldsNoEvents) {
  std::stringstream buffer;
  EXPECT_TRUE(read_trace_csv(buffer).empty());
}

TEST(TraceTest, ClearResets) {
  Instance inst = make_worst_case_chain(4);
  OneStepPRAutomaton pr(inst);
  TraceRecorder recorder;
  LowestIdScheduler scheduler;
  run_to_quiescence(pr, scheduler, [&recorder](const OneStepPRAutomaton& a, NodeId u) {
    recorder.on_step(a, u);
  });
  EXPECT_FALSE(recorder.events().empty());
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
}

}  // namespace
}  // namespace lr

// Tests for the streaming two-pass CSR construction path
// (graph/csr.hpp, CsrBuilder): byte-identity against the batch converter
// under randomized edge streams, the 32-bit position-space overflow
// guard, and the stream-contract validation (range, self-loops, strict
// canonical ascent, pass-1/pass-2 replay discipline).

#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace lr {
namespace {

/// Streams `edges` (already strictly ascending canonical pairs) through a
/// CsrBuilder with one sense per edge.
CsrGraph build_streamed(std::size_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
                        const std::vector<EdgeSense>& senses) {
  CsrBuilder builder(n);
  for (const auto& [u, v] : edges) builder.count_edge(u, v);
  builder.begin_placement();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    builder.place_edge(edges[e].first, edges[e].second, senses[e]);
  }
  return builder.finish();
}

/// A random connected-ish canonical edge list: a deterministic spanning
/// chain (so every node appears) plus random distinct extra pairs, sorted
/// into the builder's stream order.  Edge ids are positions in the sorted
/// list, so batch and streaming construction see identical inputs.
std::vector<std::pair<NodeId, NodeId>> random_canonical_edges(std::size_t n, std::size_t extra,
                                                              std::mt19937_64& rng) {
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u + 1 < n; ++u) edges.emplace(u, u + 1);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
  for (std::size_t i = 0; i < extra; ++i) {
    const NodeId a = pick(rng);
    const NodeId b = pick(rng);
    if (a != b) edges.emplace(std::min(a, b), std::max(a, b));
  }
  return {edges.begin(), edges.end()};  // std::set iterates in ascending order
}

TEST(CsrBuilder, StreamedTorusMatchesBatchConversion) {
  for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{3, 3}, {3, 5}, {8, 13}}) {
    const Graph g = make_torus_graph(rows, cols);
    const CsrGraph batch(g);

    CsrBuilder builder(g.num_nodes());
    stream_torus_edges(rows, cols, [&](NodeId u, NodeId v) { builder.count_edge(u, v); });
    builder.begin_placement();
    stream_torus_edges(rows, cols, [&](NodeId u, NodeId v) { builder.place_edge(u, v); });
    const CsrGraph streamed = builder.finish();

    EXPECT_EQ(streamed.num_nodes(), batch.num_nodes()) << rows << "x" << cols;
    EXPECT_EQ(streamed.num_edges(), batch.num_edges()) << rows << "x" << cols;
    EXPECT_EQ(streamed.fingerprint(), batch.fingerprint()) << rows << "x" << cols;
  }
}

TEST(CsrBuilder, RandomizedStreamsMatchBatchByteForByte) {
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng() % 120);
    const std::size_t extra = static_cast<std::size_t>(rng() % (3 * n));
    const std::vector<std::pair<NodeId, NodeId>> edges = random_canonical_edges(n, extra, rng);
    std::vector<EdgeSense> senses(edges.size());
    for (EdgeSense& s : senses) {
      s = (rng() & 1) != 0 ? EdgeSense::kForward : EdgeSense::kBackward;
    }

    const Graph g(n, edges);  // input order is canonical-sorted, so ids agree
    const CsrGraph batch(g, senses);
    const CsrGraph streamed = build_streamed(n, edges, senses);

    ASSERT_EQ(streamed.fingerprint(), batch.fingerprint())
        << "trial " << trial << ": n=" << n << " m=" << edges.size();
  }
}

TEST(CsrBuilder, WideRandomGeneratorStreamsByteIdentically) {
  // make_wide_random_graph documents a canonically sorted edge list, so
  // its edges() vector is directly streamable.
  std::mt19937_64 rng(99);
  const Graph g = make_wide_random_graph(500, 6.0, rng);
  const std::vector<EdgeSense> senses(g.num_edges(), EdgeSense::kForward);
  const CsrGraph batch(g);
  const CsrGraph streamed = build_streamed(g.num_nodes(), g.edges(), senses);
  EXPECT_EQ(streamed.fingerprint(), batch.fingerprint());
}

TEST(CsrBuilder, StreamedSnapshotIsPatchableFromBirth) {
  // Edge ids are stream ranks (canonical ranks), so the insert/remove
  // patch path must work on a streamed snapshot without any rebuild.
  const Graph g = make_torus_graph(4, 5);
  CsrBuilder builder(g.num_nodes());
  for (const auto& [u, v] : g.edges()) builder.count_edge(u, v);
  builder.begin_placement();
  for (const auto& [u, v] : g.edges()) builder.place_edge(u, v);
  CsrGraph csr = builder.finish();

  const std::uint64_t initial = csr.fingerprint();
  const auto [u, v] = g.edges()[g.num_edges() / 2];
  csr.remove_link(u, v);
  EXPECT_NE(csr.fingerprint(), initial);
  csr.insert_link(u, v);
  EXPECT_EQ(csr.fingerprint(), initial);
}

TEST(CsrBuilder, OverflowGuardRejectsPositionSpaceExhaustion) {
  // position_limit stands in for 2^32: four edges need eight adjacency
  // positions, which must be rejected at begin_placement (2*E >= limit)
  // before any position array is allocated.
  CsrBuilder rejected(6, /*position_limit=*/8);
  rejected.count_edge(0, 1);
  rejected.count_edge(0, 2);
  rejected.count_edge(0, 3);
  rejected.count_edge(0, 4);
  EXPECT_THROW(rejected.begin_placement(), std::overflow_error);

  // One more unit of headroom and the identical stream builds fine.
  CsrBuilder fits(6, /*position_limit=*/9);
  fits.count_edge(0, 1);
  fits.count_edge(0, 2);
  fits.count_edge(0, 3);
  fits.count_edge(0, 4);
  fits.begin_placement();
  fits.place_edge(0, 1);
  fits.place_edge(0, 2);
  fits.place_edge(0, 3);
  fits.place_edge(0, 4);
  const CsrGraph csr = fits.finish();
  EXPECT_EQ(csr.num_edges(), 4u);
  const Graph star(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(csr.fingerprint(), CsrGraph(star).fingerprint());
}

TEST(CsrBuilder, StreamContractViolationsThrow) {
  {
    CsrBuilder b(3);
    EXPECT_THROW(b.count_edge(0, 3), std::invalid_argument);  // endpoint out of range
  }
  {
    CsrBuilder b(3);
    EXPECT_THROW(b.count_edge(2, 2), std::invalid_argument);  // self loop
  }
  {
    CsrBuilder b(4);
    b.count_edge(0, 1);
    EXPECT_THROW(b.count_edge(0, 1), std::invalid_argument);  // duplicate (not ascending)
  }
  {
    CsrBuilder b(4);
    b.count_edge(0, 2);
    EXPECT_THROW(b.count_edge(0, 1), std::invalid_argument);  // canonical order regression
  }
  {
    // Non-canonical endpoint order is fine — (1, 0) canonicalizes to (0, 1).
    CsrBuilder b(4);
    b.count_edge(1, 0);
    b.count_edge(0, 2);
    b.begin_placement();
    b.place_edge(1, 0);
    b.place_edge(0, 2);
    EXPECT_EQ(b.finish().num_edges(), 2u);
  }
}

TEST(CsrBuilder, PassTwoMustReplayPassOne) {
  {
    // Fewer edges in pass 2: caught at finish().
    CsrBuilder b(4);
    b.count_edge(0, 1);
    b.count_edge(0, 2);
    b.begin_placement();
    b.place_edge(0, 1);
    EXPECT_THROW(b.finish(), std::invalid_argument);
  }
  {
    // More edges in pass 2: caught at place_edge.
    CsrBuilder b(4);
    b.count_edge(0, 1);
    b.begin_placement();
    b.place_edge(0, 1);
    EXPECT_THROW(b.place_edge(0, 2), std::invalid_argument);
  }
  {
    // Pass 2 must also ascend strictly.
    CsrBuilder b(4);
    b.count_edge(0, 1);
    b.count_edge(0, 2);
    b.begin_placement();
    b.place_edge(0, 2);
    EXPECT_THROW(b.place_edge(0, 1), std::invalid_argument);
  }
  {
    // Phase discipline: no counting after placement starts, no placement
    // or finish before it.
    CsrBuilder b(4);
    EXPECT_THROW(b.place_edge(0, 1), std::logic_error);
    EXPECT_THROW(b.finish(), std::logic_error);
    b.count_edge(0, 1);
    b.begin_placement();
    EXPECT_THROW(b.count_edge(0, 2), std::logic_error);
    EXPECT_THROW(b.begin_placement(), std::logic_error);
  }
}

TEST(CsrBuilder, WaypointChurnReplayRestoresInitialFingerprint) {
  // The random-waypoint schedule's healing suffix guarantees full replay
  // returns to the initial link set; with the all-forward initial
  // orientation the patched snapshot must be byte-identical again.
  std::mt19937_64 rng(4242);
  const ChurnInstance churned = make_waypoint_churn_instance(200, 0.18, 400, rng);
  ASSERT_GE(churned.churn.size(), 400u);

  CsrGraph csr(churned.instance.graph, churned.instance.senses);
  const std::uint64_t initial = csr.fingerprint();
  bool diverged = false;
  for (const LinkEvent& event : churned.churn) {
    if (event.up) {
      csr.insert_link(event.u, event.v);
    } else {
      csr.remove_link(event.u, event.v);
    }
    diverged = diverged || csr.fingerprint() != initial;
  }
  EXPECT_TRUE(diverged) << "schedule never changed the topology";
  EXPECT_EQ(csr.fingerprint(), initial);
}

}  // namespace
}  // namespace lr

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "analysis/game.hpp"
#include "analysis/stats.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/pr.hpp"
#include "graph/generators.hpp"

namespace lr {
namespace {

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(StatsTest, RecordStepAccumulates) {
  WorkStats stats;
  stats.record_step(3);
  stats.record_step(3);
  stats.record_step(1);
  EXPECT_EQ(stats.total_steps, 3u);
  EXPECT_EQ(stats.steps_per_node[3], 2u);
  EXPECT_EQ(stats.steps_per_node[1], 1u);
  EXPECT_EQ(stats.max_steps_per_node(), 2u);
}

TEST(StatsTest, WorkRecorderAsObserver) {
  Instance inst = make_worst_case_chain(6);
  OneStepPRAutomaton pr(inst);
  WorkRecorder recorder(inst.graph.num_nodes());
  LowestIdScheduler scheduler;
  run_to_quiescence(pr, scheduler, [&recorder](const OneStepPRAutomaton& a, NodeId u) {
    recorder.on_step(a, u);
  });
  EXPECT_EQ(recorder.stats().total_steps, 5u);  // n_b = 5, linear on chain
  for (NodeId u = 1; u < 6; ++u) EXPECT_EQ(recorder.stats().steps_per_node[u], 1u);
}

TEST(StatsTest, SummaryMentionsTotals) {
  WorkStats stats;
  stats.record_step(0);
  EXPECT_NE(stats.summary().find("total=1"), std::string::npos);
}

TEST(StatsTest, AggregateMeanVarianceMinMax) {
  Aggregate agg;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) agg.add(x);
  EXPECT_DOUBLE_EQ(agg.mean(), 5.0);
  EXPECT_NEAR(agg.stddev(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(agg.min, 2.0);
  EXPECT_DOUBLE_EQ(agg.max, 9.0);
}

TEST(StatsTest, AggregateEmptyIsZero) {
  Aggregate agg;
  EXPECT_EQ(agg.mean(), 0.0);
  EXPECT_EQ(agg.stddev(), 0.0);
}

// ---------------------------------------------------------------------------
// bounds
// ---------------------------------------------------------------------------

TEST(BoundsTest, CountBadNodesOnWorstChain) {
  EXPECT_EQ(count_bad_nodes(make_worst_case_chain(10)), 9u);
}

TEST(BoundsTest, ClosedFormsMatchMeasuredChainWork) {
  for (const std::size_t n : {4u, 9u, 17u}) {
    const Instance inst = make_worst_case_chain(n);
    const std::uint64_t nb = n - 1;

    const CostProfile fr = measure_cost(inst, Strategy::kFullReversal,
                                        SchedulerKind::kLowestId, 1);
    EXPECT_EQ(fr.social_cost, fr_chain_work(nb)) << "FR closed form, n=" << n;

    const CostProfile pr = measure_cost(inst, Strategy::kPartialReversal,
                                        SchedulerKind::kLowestId, 1);
    EXPECT_EQ(pr.social_cost, pr_chain_work(nb)) << "PR closed form, n=" << n;

    EXPECT_LE(fr.social_cost, quadratic_work_ceiling(nb));
    EXPECT_LE(pr.social_cost, quadratic_work_ceiling(nb));
  }
}

TEST(BoundsTest, GrowthExponentFitsQuadraticAndLinear) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> quadratic, linear;
  for (std::uint64_t nb = 4; nb <= 256; nb *= 2) {
    quadratic.emplace_back(nb, fr_chain_work(nb));
    linear.emplace_back(nb, pr_chain_work(nb));
  }
  EXPECT_NEAR(fit_growth_exponent(quadratic), 2.0, 0.15);
  EXPECT_NEAR(fit_growth_exponent(linear), 1.0, 0.05);
}

TEST(BoundsTest, GrowthExponentDegenerateInputs) {
  EXPECT_EQ(fit_growth_exponent({}), 0.0);
  EXPECT_EQ(fit_growth_exponent({{4, 16}}), 0.0);
  EXPECT_EQ(fit_growth_exponent({{0, 5}, {4, 16}}), 0.0);  // zero sample skipped
}

// ---------------------------------------------------------------------------
// game
// ---------------------------------------------------------------------------

TEST(GameTest, MeasureCostConvergesForAllStrategies) {
  std::mt19937_64 rng(31);
  const Instance inst = make_random_instance(20, 14, rng);
  for (const Strategy s :
       {Strategy::kFullReversal, Strategy::kPartialReversal, Strategy::kNewPR}) {
    const CostProfile profile = measure_cost(inst, s, SchedulerKind::kRandom, 7);
    EXPECT_TRUE(profile.converged) << strategy_name(s);
    EXPECT_GT(profile.social_cost, 0u);
    std::uint64_t sum = 0;
    for (const auto c : profile.node_cost) sum += c;
    EXPECT_EQ(sum, profile.social_cost);
  }
}

TEST(GameTest, PRBeatsFRInAggregateOnRandomGraphs) {
  // Charron-Bost et al.'s point is about equilibria and aggregates, not
  // per-instance dominance: PR can occasionally do *more* work than FR on a
  // specific DAG (our sweeps reproduce such instances), but across random
  // instances its total cost is lower and it wins far more often than it
  // loses.  E3 reports the full distribution.
  std::mt19937_64 rng(32);
  std::uint64_t fr_total = 0;
  std::uint64_t pr_total = 0;
  int pr_wins = 0;
  int fr_wins = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Instance inst = make_random_instance(24, 16, rng);
    const CostProfile fr = measure_cost(inst, Strategy::kFullReversal,
                                        SchedulerKind::kLowestId, 1);
    const CostProfile pr = measure_cost(inst, Strategy::kPartialReversal,
                                        SchedulerKind::kLowestId, 1);
    fr_total += fr.social_cost;
    pr_total += pr.social_cost;
    if (pr.social_cost < fr.social_cost) ++pr_wins;
    if (fr.social_cost < pr.social_cost) ++fr_wins;
  }
  EXPECT_LT(pr_total, fr_total);
  EXPECT_GT(pr_wins, fr_wins);
}

TEST(GameTest, PRNeverCostsMoreThanFROnChains) {
  // On away-oriented chains the per-instance dominance *is* strict:
  // n_b vs n_b(n_b+1)/2.
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    const Instance inst = make_worst_case_chain(n);
    const CostProfile fr = measure_cost(inst, Strategy::kFullReversal,
                                        SchedulerKind::kLowestId, 1);
    const CostProfile pr = measure_cost(inst, Strategy::kPartialReversal,
                                        SchedulerKind::kLowestId, 1);
    EXPECT_LT(pr.social_cost, fr.social_cost) << inst.name;
    EXPECT_TRUE(pareto_dominates(pr, fr)) << inst.name;
  }
}

TEST(GameTest, NewPRCostIsPRPlusDummies) {
  const Instance inst = make_sink_source_instance(11);
  const CostProfile pr = measure_cost(inst, Strategy::kPartialReversal,
                                      SchedulerKind::kLowestId, 1);
  const CostProfile newpr = measure_cost(inst, Strategy::kNewPR, SchedulerKind::kLowestId, 1);
  EXPECT_EQ(newpr.social_cost, pr.social_cost + newpr.dummy_steps);
}

TEST(GameTest, ParetoDominanceBasics) {
  CostProfile a, b;
  a.node_cost = {1, 2, 3};
  b.node_cost = {1, 3, 3};
  EXPECT_TRUE(pareto_dominates(a, b));
  EXPECT_FALSE(pareto_dominates(b, a));
  CostProfile c;
  c.node_cost = {1, 2};
  EXPECT_FALSE(pareto_dominates(a, c)) << "size mismatch is never dominance";
}

TEST(GameTest, CompareLineContainsAllStrategies) {
  const Instance inst = make_worst_case_chain(5);
  const auto fr = measure_cost(inst, Strategy::kFullReversal, SchedulerKind::kLowestId, 1);
  const auto pr = measure_cost(inst, Strategy::kPartialReversal, SchedulerKind::kLowestId, 1);
  const auto np = measure_cost(inst, Strategy::kNewPR, SchedulerKind::kLowestId, 1);
  const std::string line = compare_line(inst, fr, pr, np);
  EXPECT_NE(line.find("FR=10"), std::string::npos);  // 4*5/2
  EXPECT_NE(line.find("PR=4"), std::string::npos);
}

TEST(GameTest, StrategyAndSchedulerNames) {
  EXPECT_STREQ(strategy_name(Strategy::kFullReversal), "FR");
  EXPECT_STREQ(strategy_name(Strategy::kNewPR), "NewPR");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kRoundRobin), "round-robin");
}

}  // namespace
}  // namespace lr

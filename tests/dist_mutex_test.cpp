#include "sim/dist_mutex.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lr {
namespace {

TEST(DistMutexTest, InitialHolderMayEnter) {
  const Graph g = make_ring_graph(6);
  Network net(g, {.min_delay = 1, .max_delay = 4, .seed = 1});
  DistMutex mutex(g, 2, net);
  EXPECT_EQ(mutex.holder(), std::optional<NodeId>{2});
  EXPECT_TRUE(mutex.may_enter(2));
  EXPECT_FALSE(mutex.may_enter(3));
}

TEST(DistMutexTest, SingleRequestGranted) {
  const Graph g = make_chain_graph(6);
  Network net(g, {.min_delay = 1, .max_delay = 4, .seed = 2});
  DistMutex mutex(g, 0, net);
  mutex.request(5);
  net.run_until_idle();
  ASSERT_EQ(mutex.queued_requests(), 1u);
  mutex.release();
  net.run_until_idle();
  EXPECT_EQ(mutex.holder(), std::optional<NodeId>{5});
  EXPECT_EQ(mutex.grants(), 1u);
}

TEST(DistMutexTest, FifoGrantOrderAcrossNodes) {
  const Graph g = make_complete_graph(6);
  Network net(g, {.min_delay = 1, .max_delay = 1, .seed = 3});
  DistMutex mutex(g, 0, net);
  // With unit delays on a complete graph, requests arrive in injection
  // order (FIFO tie-break in the event queue).
  mutex.request(3);
  net.run_until_idle();
  mutex.request(1);
  net.run_until_idle();
  mutex.request(5);
  net.run_until_idle();
  ASSERT_EQ(mutex.queued_requests(), 3u);

  mutex.release();
  net.run_until_idle();
  EXPECT_EQ(mutex.holder(), std::optional<NodeId>{3});
}

TEST(DistMutexTest, ShardedLanesMatchSerialTokenPassing) {
  // The same scripted request/release schedule replayed on the sharded
  // per-node event lanes must grant in the same order with the same
  // counters at every worker count, including across repeated idle
  // points (each run_until_idle re-enters the sharded loop).
  std::mt19937_64 rng(21);
  const Graph g = make_random_connected_graph(24, 20, rng);
  const NetworkConfig base{.min_delay = 1, .max_delay = 5, .seed = 17};

  const auto run_script = [&g](NetworkConfig config, std::vector<std::optional<NodeId>>& holders,
                               std::uint64_t& grants, std::uint64_t& steps, SimTime& now) {
    Network net(g, config);
    DistMutex mutex(g, 0, net);
    for (const NodeId u : {NodeId{7}, NodeId{3}, NodeId{19}, NodeId{11}}) {
      mutex.request(u);
      net.run_until_idle();
    }
    for (int round = 0; round < 4; ++round) {
      mutex.release();
      net.run_until_idle();
      holders.push_back(mutex.holder());
    }
    grants = mutex.grants();
    steps = mutex.reversal_steps();
    now = net.now();
  };

  std::vector<std::optional<NodeId>> serial_holders;
  std::uint64_t serial_grants = 0, serial_steps = 0;
  SimTime serial_now = 0;
  run_script(base, serial_holders, serial_grants, serial_steps, serial_now);

  for (const std::size_t workers : {2u, 4u}) {
    NetworkConfig config = base;
    config.scheduler = EventSchedulerKind::kWheel;
    config.sim_threads = workers;
    std::vector<std::optional<NodeId>> holders;
    std::uint64_t grants = 0, steps = 0;
    SimTime now = 0;
    run_script(config, holders, grants, steps, now);
    EXPECT_EQ(holders, serial_holders);
    EXPECT_EQ(grants, serial_grants);
    EXPECT_EQ(steps, serial_steps);
    EXPECT_EQ(now, serial_now);
  }
}

TEST(DistMutexTest, AtMostOneHolderAtAllTimes) {
  std::mt19937_64 rng(4);
  const Graph g = make_random_connected_graph(12, 10, rng);
  Network net(g, {.min_delay = 1, .max_delay = 6, .seed = 5});
  DistMutex mutex(g, 0, net);

  std::uniform_int_distribution<NodeId> pick(0, 11);
  for (int round = 0; round < 20; ++round) {
    mutex.request(pick(rng));
    mutex.request(pick(rng));
    net.run_until_idle();
    mutex.release();
    // Drain step by step, checking the exclusivity invariant throughout.
    while (net.queue().run_one()) {
      std::size_t holders = 0;
      for (NodeId u = 0; u < 12; ++u) {
        if (mutex.may_enter(u)) ++holders;
      }
      ASSERT_LE(holders, 1u);
    }
  }
}

TEST(DistMutexTest, EveryRequestEventuallyGranted) {
  std::mt19937_64 rng(6);
  const Graph g = make_random_connected_graph(10, 8, rng);
  Network net(g, {.min_delay = 1, .max_delay = 5, .seed = 7});
  DistMutex mutex(g, 0, net);

  // All other nodes request; serve until the queue drains.
  for (NodeId u = 1; u < 10; ++u) mutex.request(u);
  net.run_until_idle();

  std::size_t grants = 0;
  for (int safety = 0; safety < 100 && grants < 9; ++safety) {
    mutex.release();
    net.run_until_idle();
    grants = mutex.grants();
  }
  EXPECT_EQ(grants, 9u);
}

TEST(DistMutexTest, TokenReturnsOnRepeatRequests) {
  const Graph g = make_ring_graph(5);
  Network net(g, {.min_delay = 1, .max_delay = 3, .seed = 8});
  DistMutex mutex(g, 0, net);

  for (int cycle = 0; cycle < 5; ++cycle) {
    const NodeId requester = static_cast<NodeId>((cycle + 1) % 5);
    if (requester == mutex.holder()) continue;
    mutex.request(requester);
    net.run_until_idle();
    mutex.release();
    net.run_until_idle();
    EXPECT_EQ(mutex.holder(), std::optional<NodeId>{requester}) << "cycle " << cycle;
  }
}

TEST(DistMutexTest, DuplicateRequestIgnored) {
  const Graph g = make_chain_graph(4);
  Network net(g, {.min_delay = 1, .max_delay = 2, .seed = 9});
  DistMutex mutex(g, 0, net);
  mutex.request(3);
  mutex.request(3);
  net.run_until_idle();
  EXPECT_EQ(mutex.queued_requests(), 1u);
}

TEST(DistMutexTest, ReleaseWithEmptyQueueKeepsToken) {
  const Graph g = make_ring_graph(4);
  Network net(g, {.min_delay = 1, .max_delay = 2, .seed = 10});
  DistMutex mutex(g, 1, net);
  mutex.release();
  net.run_until_idle();
  EXPECT_EQ(mutex.holder(), std::optional<NodeId>{1});
  EXPECT_EQ(mutex.grants(), 0u);
}

TEST(DistMutexTest, RequestDrivenReversalsHappenOnStuckPaths) {
  // After the token moves, later requests can strand at the old holder (a
  // stale local minimum) and must trigger request-driven reversal steps.
  const Graph g = make_chain_graph(8);
  Network net(g, {.min_delay = 1, .max_delay = 4, .seed = 11});
  DistMutex mutex(g, 0, net);

  mutex.request(7);
  net.run_until_idle();
  mutex.release();
  net.run_until_idle();
  ASSERT_EQ(mutex.holder(), std::optional<NodeId>{7});

  // Now node 1 requests: the path must re-orient towards 7.
  mutex.request(1);
  net.run_until_idle();
  mutex.release();
  net.run_until_idle();
  EXPECT_EQ(mutex.holder(), std::optional<NodeId>{1});
  EXPECT_GT(mutex.reversal_steps(), 0u);
}

TEST(DistMutexTest, HeavyContentionOnUnitDisk) {
  std::mt19937_64 rng(12);
  const Graph g = make_unit_disk_graph(16, 0.4, rng);
  Network net(g, {.min_delay = 1, .max_delay = 6, .seed = 13});
  DistMutex mutex(g, 0, net);

  std::uniform_int_distribution<NodeId> pick(0, 15);
  std::size_t expected_grants = 0;
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 4; ++i) mutex.request(pick(rng));
    net.run_until_idle();
    while (mutex.queued_requests() > 0) {
      const auto before = mutex.grants();
      mutex.release();
      net.run_until_idle();
      ASSERT_GT(mutex.grants(), before) << "release must make progress";
      ++expected_grants;
    }
  }
  EXPECT_EQ(mutex.grants(), expected_grants);
  EXPECT_TRUE(mutex.holder().has_value());
}

}  // namespace
}  // namespace lr

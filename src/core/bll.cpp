#include "core/bll.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "graph/digraph_algos.hpp"

namespace lr {

BLLAutomaton::BLLAutomaton(const Graph& g, Orientation initial, NodeId destination,
                           std::vector<std::uint8_t> initial_marks)
    : LinkReversalBase(g, std::move(initial), destination), marked_(std::move(initial_marks)) {
  const std::size_t n = graph().num_nodes();
  offsets_.resize(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) offsets_[u + 1] = offsets_[u] + graph().degree(u);
  if (marked_.size() != offsets_[n]) {
    throw std::invalid_argument("BLLAutomaton: one initial mark per (node, incidence) required");
  }
  marked_count_.assign(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = 0; i < graph().degree(u); ++i) {
      if (marked_[slot(u, i)]) ++marked_count_[u];
    }
  }
}

BLLAutomaton BLLAutomaton::pr_labeling(const Graph& g, Orientation initial, NodeId destination) {
  std::vector<std::uint8_t> marks(2 * g.num_edges(), 0);
  return BLLAutomaton(g, std::move(initial), destination, std::move(marks));
}

BLLAutomaton BLLAutomaton::pr_labeling(const Instance& instance) {
  return pr_labeling(instance.graph, instance.make_orientation(), instance.destination);
}

BLLAutomaton BLLAutomaton::all_marked_labeling(const Graph& g, Orientation initial,
                                               NodeId destination) {
  std::vector<std::uint8_t> marks(2 * g.num_edges(), 1);
  return BLLAutomaton(g, std::move(initial), destination, std::move(marks));
}

std::size_t BLLAutomaton::incidence_index_of(NodeId u, NodeId v) const {
  const auto nbrs = graph().neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v,
                                   [](const Incidence& inc, NodeId target) {
                                     return inc.neighbor < target;
                                   });
  assert(it != nbrs.end() && it->neighbor == v);
  return static_cast<std::size_t>(it - nbrs.begin());
}

std::vector<NodeId> BLLAutomaton::marked_neighbors(NodeId u) const {
  std::vector<NodeId> result;
  const auto nbrs = graph().neighbors(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (marked_[slot(u, i)]) result.push_back(nbrs[i].neighbor);
  }
  return result;
}

void BLLAutomaton::apply(NodeId u) {
  if (!sink_enabled(u)) {
    throw std::logic_error("BLLAutomaton::apply: precondition violated (not a sink)");
  }
  const auto nbrs = graph().neighbors(u);
  const bool reverse_all = marked_count_[u] == nbrs.size();
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (!reverse_all && marked_[slot(u, i)]) continue;
    const Incidence inc = nbrs[i];
    orientation_.reverse_edge(inc.edge);
    const std::size_t vslot = slot(inc.neighbor, incidence_index_of(inc.neighbor, u));
    if (!marked_[vslot]) {
      marked_[vslot] = 1;
      ++marked_count_[inc.neighbor];
    }
  }
  for (std::size_t i = 0; i < nbrs.size(); ++i) marked_[slot(u, i)] = 0;
  marked_count_[u] = 0;
}

bool initial_labeling_preserves_acyclicity(const Graph& g, const std::vector<EdgeSense>& senses,
                                           NodeId destination,
                                           const std::vector<std::uint8_t>& initial_marks,
                                           std::size_t max_states) {
  // Exhaustive DFS over reachable (orientation, marks) states, keyed by the
  // automaton's state fingerprint.
  std::set<std::vector<std::uint8_t>> visited;
  std::vector<BLLAutomaton> stack;
  stack.emplace_back(g, Orientation(g, senses), destination, initial_marks);
  visited.insert(stack.back().state_fingerprint());

  while (!stack.empty()) {
    if (visited.size() > max_states) {
      throw std::runtime_error(
          "initial_labeling_preserves_acyclicity: state-space budget exceeded");
    }
    BLLAutomaton state = std::move(stack.back());
    stack.pop_back();
    if (!is_acyclic(state.orientation())) return false;
    for (const NodeId u : state.enabled_sinks()) {
      BLLAutomaton next = state;
      next.apply(u);
      if (visited.insert(next.state_fingerprint()).second) {
        stack.push_back(std::move(next));
      }
    }
  }
  return true;
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "runner/thread_pool.hpp"

/// \file reversal_engine.hpp
/// The batched CSR execution engine: FR / OneStepPR / NewPR run to
/// quiescence as flat-array kernels.
///
/// The automaton classes in this layer (`full_reversal.hpp`, `pr.hpp`,
/// `newpr.hpp`) are the paper's I/O automata stated as faithfully as
/// possible — one object per algorithm, per-step preconditions, orientation
/// updates routed through `Orientation::reverse_edge` so every invariant
/// checker can watch them.  That fidelity costs time: each step re-derives
/// neighbor sets, binary-searches adjacency lists, and reconsults a sink
/// vector that is re-sorted per scheduler call.
///
/// `ReversalEngine` is the production path.  It executes the *same*
/// algorithms over a `CsrGraph` snapshot with:
///
///  * flat per-edge sense bytes and per-node out-degree counters (the whole
///    mutable state of G'),
///  * a maintained sink *worklist* — nodes are pushed exactly when their
///    out-degree hits zero, so no step ever scans the graph for sinks,
///  * batched per-node kernels that exploit the sink precondition (every
///    incident edge of a firing node points at it, so a "reversal set" is
///    just a slice of positions to flip),
///  * O(1) `list[v]` updates in the PR kernel via CSR mirror positions, and
///  * O(1) dummy-step detection in the NewPR kernel via the precomputed
///    initial in/out partition.
///
/// Equivalence contract: for every (algorithm, policy, seed, step budget),
/// `run()` performs the *identical action sequence* as the corresponding
/// automaton driven by the same scheduler from `automata/scheduler.hpp`,
/// and therefore produces identical work counts, per-node costs, dummy
/// counts, and final orientations.  `tests/reversal_engine_test.cpp` locks
/// this in across algorithms × policies × topologies, which is what makes
/// the scenario runner's legacy/CSR A/B mode byte-identical.

namespace lr {

/// The three run-to-quiescence algorithms the engine implements.
enum class EngineAlgorithm : std::uint8_t {
  kFullReversal,  ///< FR: a firing sink reverses all incident edges
  kOneStepPR,     ///< OneStepPR (Algorithm 3): list-based partial reversal
  kNewPR,         ///< NewPR (Algorithm 2): parity-selected constant sets
};

/// Scheduling policies, mirroring the single-step schedulers the legacy
/// path uses (`automata/scheduler.hpp`); each engine policy reproduces the
/// exact choice sequence of its scheduler counterpart.
enum class EnginePolicy : std::uint8_t {
  kLowestId,       ///< always the smallest-id enabled sink (lazy min-heap)
  kRandom,         ///< uniform over the ascending sink list (same RNG draws)
  kRoundRobin,     ///< cursor scan over node ids (same cursor rule)
  kFarthestFirst,  ///< max (BFS distance to destination, id) (lazy max-heap)
};

/// Execution limits and instrumentation switches for `ReversalEngine::run`.
struct EngineRunOptions {
  /// Hard step budget, matching `RunOptions::max_steps` on the legacy path.
  std::uint64_t max_steps = 10'000'000;

  /// Seed of the scheduling RNG (used by `EnginePolicy::kRandom` only);
  /// pass `RunSpec::scheduler_seed()` to match a swept legacy run.
  std::uint64_t scheduler_seed = 0;

  /// When true, `EngineResult::node_cost` records per-node fire counts
  /// (one extra array increment per step).
  bool record_node_costs = false;
};

/// Everything one engine execution produced; the flat-path counterpart of
/// `RunResult` plus the strategy-game measures.
struct EngineResult {
  std::uint64_t steps = 0;            ///< actions fired (dummy steps included)
  std::uint64_t edge_reversals = 0;   ///< single-edge flips performed
  std::uint64_t dummy_steps = 0;      ///< NewPR steps that flipped nothing
  bool quiescent = false;             ///< no enabled sink remained
  bool destination_oriented = false;  ///< final G' routes every node to D
  std::vector<std::uint64_t> node_cost;  ///< per-node fires; empty unless recorded
};

/// Result of a batched greedy-rounds execution (`run_greedy_rounds`).
struct EngineRoundsResult {
  std::uint64_t rounds = 0;          ///< maximal-set rounds fired
  std::uint64_t node_steps = 0;      ///< total sink fires over all rounds
  std::uint64_t edge_reversals = 0;  ///< total single-edge flips
  bool converged = false;            ///< quiescent within the round budget
};

/// Execution limits and parallelism knobs for `run_greedy_rounds`.
///
/// Why greedy rounds parallelize at all: a round's sinks are pairwise
/// non-adjacent (two adjacent nodes cannot both be sinks — their shared
/// edge points out of one of them), so each edge is flipped by at most one
/// firing node per round and the only cross-shard state is the out-degree
/// (and PR list-size) counters of *non-firing* neighbors, whose updates
/// commute.  The engine never applies those updates concurrently, though:
/// each firing shard records them as delta events bucketed by the
/// *owner* shard of the neighbor (contiguous node ranges), and a second
/// barrier phase has every owner drain the buckets aimed at its range.
/// Every counter keeps a single writer per phase — no atomic RMW, no
/// contended hub cache line — and the merge order (firer-major, firing
/// order within a firer) is fixed, so the execution is deterministic at
/// every pool size; docs/ARCHITECTURE.md §"Parallel execution" spells out
/// the merge invariants.
struct EngineRoundsOptions {
  /// Hard round budget, matching the legacy `run_greedy_rounds` limit.
  std::uint64_t max_rounds = 10'000'000;

  /// Worker pool to shard each round's worklist across; nullptr (or a
  /// single-worker pool) runs the serial kernel.  Results are byte-
  /// identical to the serial engine at every pool size.  The pool is
  /// borrowed, never owned, so one pool can serve a whole sweep or bench
  /// loop (and is the same `ThreadPool` the scenario runner uses).
  ThreadPool* pool = nullptr;

  /// Rounds whose estimated work — round width times the maximum degree
  /// among the firing sinks — falls below this fire serially even when a
  /// pool is supplied.  Width alone misleads on skewed graphs: a round of
  /// 2048 degree-1 leaves (star topologies) is ~2048 counter decrements,
  /// far too cheap to amortize a dispatch, while 2048 degree-2 chain nodes
  /// are worth sharding.  The firing-degree scan is O(width) over CSR
  /// offset pairs, noise next to the round itself.  Purely a performance
  /// knob (results never depend on it); tests lower it to 1 to force the
  /// sharded kernel onto tiny rounds.
  std::size_t min_parallel_work = 4096;
};

/// FNV-1a checksum of an edge-sense vector — the canonical fingerprint of
/// a final orientation (from which any height assignment is derived).
/// Benches use it to make legacy/CSR A/B runs self-verifying.
std::uint64_t senses_checksum(std::span<const EdgeSense> senses);

/// Batched link-reversal executor over a `CsrGraph` snapshot.
///
/// The engine owns all mutable state and can be re-run: every `run` /
/// `run_greedy_rounds` call first resets to the snapshot's initial
/// orientation, so one engine amortizes its allocations across a whole
/// benchmark or sweep loop (zero per-step and per-run allocation after the
/// first call).
class ReversalEngine {
 public:
  /// Creates an engine over `csr` with the given destination.  The CsrGraph
  /// must outlive the engine.  Throws std::invalid_argument if the
  /// destination is out of range.
  ReversalEngine(const CsrGraph& csr, NodeId destination);

  /// Convenience: engine over a fresh snapshot of `instance` (graph +
  /// initial senses + destination).  The snapshot is owned by the engine.
  explicit ReversalEngine(const Instance& instance);

  /// Engines hold an internal pointer to their snapshot; copying or moving
  /// would dangle it for the owning constructor, so both are disabled.
  ReversalEngine(const ReversalEngine&) = delete;
  /// \copydoc ReversalEngine(const ReversalEngine&)
  ReversalEngine& operator=(const ReversalEngine&) = delete;

  /// Runs `algorithm` to quiescence (or budget exhaustion) under `policy`,
  /// resetting to the initial orientation first.
  EngineResult run(EngineAlgorithm algorithm, EnginePolicy policy,
                   const EngineRunOptions& options = {});

  /// Runs the greedy (maximal-set) rounds execution of FR or OneStepPR,
  /// resetting first; the batched counterpart of
  /// `analysis/rounds.hpp::run_greedy_rounds` totals.  NewPR is rejected
  /// with std::invalid_argument, matching the legacy rounds API surface.
  EngineRoundsResult run_greedy_rounds(EngineAlgorithm algorithm, std::uint64_t max_rounds);

  /// Same, with the full option set: supply `options.pool` to shard each
  /// round's worklist across the pool's workers (results byte-identical to
  /// the serial kernel at every pool size; see EngineRoundsOptions).
  EngineRoundsResult run_greedy_rounds(EngineAlgorithm algorithm,
                                       const EngineRoundsOptions& options);

  /// The CSR snapshot this engine executes over.
  const CsrGraph& csr() const noexcept { return *csr_; }

  /// The destination node D.
  NodeId destination() const noexcept { return destination_; }

  /// Edge senses after the most recent run (initial senses before any).
  std::span<const EdgeSense> senses() const noexcept { return sense_; }

  /// Checksum of the current (post-run) orientation; see senses_checksum().
  std::uint64_t state_checksum() const { return senses_checksum(sense_); }

  /// True iff `u` currently has no outgoing edge (degree-0 nodes included,
  /// matching `Orientation::is_sink`).
  bool is_sink(NodeId u) const { return out_degree_[u] == 0; }

 private:
  void attach(const CsrGraph& csr, NodeId destination);
  void reset();
  void ensure_distances();
  bool compute_destination_oriented();

  // The fire kernels are policy-templated: `Ops` supplies the two
  // neighbor-side effects (out-degree decrement on an edge flip, PR
  // list-size increment) plus the zero-flip self-requeue.  Serial paths
  // apply them in place; the sharded rounds kernel *defers* them as
  // per-owner delta events instead — a hub neighbor shared by thousands
  // of firing leaves would otherwise serialize every shard on one
  // contended counter cache line.  See run_greedy_rounds for the
  // two-phase fire/merge that applies the deltas without any atomic RMW.
  template <typename Ops>
  std::uint32_t fire(EngineAlgorithm algorithm, NodeId u, Ops& ops);
  template <typename Ops>
  std::uint32_t fire_full(NodeId u, Ops& ops);
  template <typename Ops>
  std::uint32_t fire_pr(NodeId u, Ops& ops);
  template <typename Ops>
  std::uint32_t fire_newpr(NodeId u, Ops& ops);
  template <typename Ops>
  void flip(CsrPos p, Ops& ops);

  const CsrGraph* csr_ = nullptr;
  std::vector<CsrGraph> owned_csr_;  // non-empty only for the Instance ctor
  NodeId destination_ = 0;

  // Mutable G' state (reset per run).
  std::vector<EdgeSense> sense_;            // current sense per edge
  std::vector<std::uint32_t> out_degree_;   // current out-degree per node
  std::vector<std::uint32_t> initial_out_degree_;

  // PR list state: flag per adjacency position, size per node.
  std::vector<std::uint8_t> in_list_;
  std::vector<std::uint32_t> list_size_;

  // NewPR parity bits.
  std::vector<std::uint8_t> parity_;

  std::uint64_t dummy_steps_ = 0;

  // Scheduling scratch (persistent so repeated runs do not allocate).
  std::vector<NodeId> heap_;            // lowest-id lazy min-heap
  std::vector<std::uint64_t> key_heap_; // farthest-first lazy max-heap
  std::vector<std::uint8_t> queued_;    // one live heap entry per node
  std::vector<NodeId> sink_list_;       // random policy: ascending sinks
  std::vector<NodeId> round_current_;   // greedy rounds: this round's set
  std::vector<NodeId> round_next_;      // greedy rounds: next round's set
  std::vector<std::vector<NodeId>> shard_next_;   // per-shard next-round buffers
  std::vector<std::uint64_t> shard_reversals_;    // per-shard flip counters
  // Sharded-round delta buckets, indexed [firing shard * shards + owner
  // shard]; each holds the neighbor ids whose counter the firer would have
  // touched, drained by the owner in the merge phase (capacity persists
  // across rounds).
  std::vector<std::vector<NodeId>> degree_events_;  // out-degree decrements
  std::vector<std::vector<NodeId>> list_events_;    // PR list-size increments
  std::vector<std::uint32_t> distance_; // undirected BFS distance to D
  std::vector<std::uint8_t> visited_;   // destination-oriented BFS scratch
  std::vector<NodeId> bfs_queue_;       // BFS scratch
};

}  // namespace lr

#include "core/pr.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lr {

PartialReversalState::PartialReversalState(const Graph& g, Orientation initial,
                                           NodeId destination)
    : LinkReversalBase(g, std::move(initial), destination) {
  const std::size_t n = graph().num_nodes();
  offsets_.resize(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) offsets_[u + 1] = offsets_[u] + graph().degree(u);
  in_list_.assign(offsets_[n], 0);  // "initially empty"
  list_size_.assign(n, 0);
}

PartialReversalState::PartialReversalState(const Instance& instance)
    : PartialReversalState(instance.graph, instance.make_orientation(), instance.destination) {}

std::size_t PartialReversalState::incidence_index_of(NodeId u, NodeId v) const {
  const auto nbrs = graph().neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v,
                                   [](const Incidence& inc, NodeId target) {
                                     return inc.neighbor < target;
                                   });
  assert(it != nbrs.end() && it->neighbor == v);
  return static_cast<std::size_t>(it - nbrs.begin());
}

std::vector<NodeId> PartialReversalState::list(NodeId u) const {
  std::vector<NodeId> result;
  const auto nbrs = graph().neighbors(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (in_list_[slot(u, i)]) result.push_back(nbrs[i].neighbor);
  }
  return result;  // ascending because adjacency is sorted
}

bool PartialReversalState::list_contains(NodeId u, NodeId v) const {
  return in_list_[slot(u, incidence_index_of(u, v))] != 0;
}

void PartialReversalState::node_step_full(NodeId u) {
  if (!sink_enabled(u)) {
    throw std::logic_error(
        "PartialReversalState::node_step_full: precondition violated (not a sink)");
  }
  const auto nbrs = graph().neighbors(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const Incidence inc = nbrs[i];
    orientation_.reverse_edge(inc.edge);
    const std::size_t vslot = slot(inc.neighbor, incidence_index_of(inc.neighbor, u));
    if (!in_list_[vslot]) {
      in_list_[vslot] = 1;
      ++list_size_[inc.neighbor];
    }
  }
  for (std::size_t i = 0; i < nbrs.size(); ++i) in_list_[slot(u, i)] = 0;
  list_size_[u] = 0;
  ++total_node_steps_;
}

void PartialReversalState::node_step(NodeId u) {
  if (!sink_enabled(u)) {
    throw std::logic_error("PartialReversalState::node_step: precondition violated (not a sink)");
  }
  const auto nbrs = graph().neighbors(u);
  const bool reverse_all = list_full(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (!reverse_all && in_list_[slot(u, i)]) continue;  // v ∈ list[u]: keep
    const Incidence inc = nbrs[i];
    // Effect: dir[u, v] := out; dir[v, u] := in; list[v] := list[v] ∪ {u}.
    orientation_.reverse_edge(inc.edge);
    const std::size_t vslot = slot(inc.neighbor, incidence_index_of(inc.neighbor, u));
    if (!in_list_[vslot]) {
      in_list_[vslot] = 1;
      ++list_size_[inc.neighbor];
    }
  }
  // list[u] := ∅
  for (std::size_t i = 0; i < nbrs.size(); ++i) in_list_[slot(u, i)] = 0;
  list_size_[u] = 0;
  ++total_node_steps_;
}

}  // namespace lr

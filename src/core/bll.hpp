#pragma once

#include <cstdint>
#include <vector>

#include "core/lr_base.hpp"

/// \file bll.hpp
/// Binary Link Labels (BLL) — the Welch–Walter generalization of Partial
/// Reversal that the paper cites as the *other* existing acyclicity proof
/// route ("The BLL algorithm assumes that each edge in the graph is
/// labeled, and reverses edges based on these labels").
///
/// Mechanism implemented here: every node u holds one binary label per
/// incident edge ("marked"/"unmarked" from u's side).  When sink u fires:
///
///   * if at least one incident edge is unmarked at u: reverse exactly the
///     unmarked edges,
///   * otherwise (all marked): reverse all incident edges;
///
/// every neighbor v whose edge was reversed marks that edge on its own
/// side, and u finally clears all of its marks.
///
/// Partial Reversal is the special case in which all labels start
/// unmarked: u's marked set is then always exactly the paper's list[u]
/// (the neighbors that reversed towards u since u's last step), so PR and
/// BLL(all-unmarked) produce identical executions — asserted by tests and
/// experiment E8.  Arbitrary initial labelings interpolate between PR-like
/// behaviours; Welch–Walter's global acyclicity condition on the initial
/// labeling is *not* reproduced as a closed-form predicate (their text is
/// not freely available), but `initial_labeling_preserves_acyclicity`
/// model-checks it exhaustively on small graphs.

namespace lr {

/// The Welch–Walter binary-link-labels automaton over the shared
/// link-reversal state.
class BLLAutomaton : public LinkReversalBase {
 public:
  /// Actions are single nodes: reverse(u).
  using Action = NodeId;

  /// `initial_marks[slot]` uses the same CSR layout as the adjacency: one
  /// flag per (node, incidence index).  Use the factories below for the
  /// common labelings.
  BLLAutomaton(const Graph& g, Orientation initial, NodeId destination,
               std::vector<std::uint8_t> initial_marks);

  /// The PR special case: all labels unmarked.
  static BLLAutomaton pr_labeling(const Graph& g, Orientation initial, NodeId destination);
  /// \copydoc pr_labeling(const Graph&, Orientation, NodeId)
  static BLLAutomaton pr_labeling(const Instance& instance);

  /// All labels marked: every node's *first* step reverses all edges.
  static BLLAutomaton all_marked_labeling(const Graph& g, Orientation initial,
                                          NodeId destination);

  /// The marked neighbor set of u (sorted) — plays the role of list[u].
  std::vector<NodeId> marked_neighbors(NodeId u) const;

  /// |marked_neighbors(u)| in O(1).
  std::size_t marked_count(NodeId u) const { return marked_count_[u]; }

  /// Precondition of reverse(u): u is a non-destination sink.
  bool enabled(NodeId u) const { return sink_enabled(u); }
  /// Effect of reverse(u): flip the labeled edge subset, update marks.
  void apply(NodeId u);

  /// Unique encoding of (G', all marks) for the exhaustive model checker.
  std::vector<std::uint8_t> state_fingerprint() const {
    std::vector<std::uint8_t> fp;
    fp.reserve(graph().num_edges() + marked_.size());
    append_orientation_fingerprint(fp);
    fp.insert(fp.end(), marked_.begin(), marked_.end());
    return fp;
  }

 private:
  std::size_t slot(NodeId u, std::size_t incidence_index) const {
    return offsets_[u] + incidence_index;
  }
  std::size_t incidence_index_of(NodeId u, NodeId v) const;

  std::vector<std::size_t> offsets_;
  std::vector<std::uint8_t> marked_;
  std::vector<std::uint32_t> marked_count_;
};

/// Exhaustively model-checks (DFS over the full reachable state space)
/// whether BLL with the given initial labeling keeps the orientation
/// acyclic in every reachable state.  Exponential; intended for graphs
/// with at most ~10 edges.  `max_states` bounds the exploration.
bool initial_labeling_preserves_acyclicity(const Graph& g, const std::vector<EdgeSense>& senses,
                                           NodeId destination,
                                           const std::vector<std::uint8_t>& initial_marks,
                                           std::size_t max_states = 200'000);

}  // namespace lr

#pragma once

#include <string>

#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "graph/embedding.hpp"

/// \file invariants.hpp
/// Executable counterparts of every formal claim in the paper.  Each
/// checker returns an InvariantResult whose `detail` pinpoints the first
/// violating node/edge, so a failing property test is immediately
/// actionable.
///
///  * Invariant 3.1  — two-sided dir consistency.
///  * Invariant 3.2  — the list[u] dichotomy for PR-style state.
///  * Corollary 3.3  — list[u] ⊆ in-nbrs_u or list[u] ⊆ out-nbrs_u.
///  * Corollary 3.4  — at a sink, list[u] equals in-nbrs_u or out-nbrs_u.
///  * Invariant 4.1  — equal parity fixes the left/right direction.
///  * Invariant 4.2  — step-count relations between neighbors.
///  * Theorem 4.3 / 5.5 — acyclicity (is_acyclic on the orientation).
///  * Quiescence     — no enabled sink iff destination-oriented (the
///                     liveness-goal sanity check).

namespace lr {

/// Outcome of one executable invariant check.
struct InvariantResult {
  bool ok = true;         ///< true iff the invariant held
  std::string detail;     ///< empty when ok; first violation otherwise

  /// Truthiness shortcut: `if (check_...(s))`.
  explicit operator bool() const noexcept { return ok; }
};

/// Invariant 3.1: for each edge {u, v}, dir[u, v] = in iff dir[v, u] = out.
/// Checked through the two-sided dir() API (our single-sense storage makes
/// it hold by construction; the checker guards against regressions in that
/// encoding).
InvariantResult check_invariant_3_1(const Orientation& o);

/// Invariant 3.2: for every node u exactly one of the two cases holds:
///  1. every w ∈ out-nbrs_u has dir[u,w] = in, and
///     list[u] = { v ∈ in-nbrs_u : dir[u,v] = in };
///  2. every w ∈ in-nbrs_u has dir[u,w] = in, and
///     list[u] = { v ∈ out-nbrs_u : dir[u,v] = in }.
InvariantResult check_invariant_3_2(const PartialReversalState& pr);

/// Corollary 3.3: list[u] ⊆ in-nbrs_u or list[u] ⊆ out-nbrs_u.
InvariantResult check_corollary_3_3(const PartialReversalState& pr);

/// Corollary 3.4: if u is a sink then list[u] = in-nbrs_u or out-nbrs_u.
InvariantResult check_corollary_3_4(const PartialReversalState& pr);

/// Invariant 4.1: for neighbors u, v with equal parity — both even: the
/// edge is directed left-to-right; both odd: right-to-left (relative to the
/// initial-DAG embedding).
InvariantResult check_invariant_4_1(const NewPRAutomaton& newpr, const LeftRightEmbedding& emb);

/// Invariant 4.2: for neighbors u, v:
///  (a) |count[u] - count[v]| <= 1;
///  (b) count[u] odd  and v right of u  => count[v] = count[u];
///  (c) count[u] even and v left of u   => count[v] = count[u];
///  (d) count[u] > count[v]             => the edge points from u to v.
InvariantResult check_invariant_4_2(const NewPRAutomaton& newpr, const LeftRightEmbedding& emb);

/// Theorem 4.3 / 5.5: the directed graph G' is acyclic.  On failure the
/// detail lists a concrete directed cycle.
InvariantResult check_acyclic(const Orientation& o);

/// Goal-state sanity: quiescent (no non-destination sink) iff the graph is
/// destination oriented.  (Quiescent => oriented is the interesting half:
/// in a connected DAG every node's maximal path must end at the only sink,
/// the destination.)
InvariantResult check_quiescence_consistency(const Orientation& o, NodeId destination);

}  // namespace lr

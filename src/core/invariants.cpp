#include "core/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "graph/digraph_algos.hpp"

namespace lr {

namespace {

InvariantResult fail(std::string detail) { return InvariantResult{false, std::move(detail)}; }

bool is_subset(const std::vector<NodeId>& sub, const std::vector<NodeId>& super) {
  // Both vectors are sorted ascending.
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

InvariantResult check_invariant_3_1(const Orientation& o) {
  const Graph& g = o.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = g.edge_u(e);
    const NodeId v = g.edge_v(e);
    const Dir from_u = o.dir(u, v);
    const Dir from_v = o.dir(v, u);
    if (from_u != opposite(from_v)) {
      std::ostringstream oss;
      oss << "Invariant 3.1 violated on edge {" << u << ", " << v << "}: both sides report "
          << (from_u == Dir::kIn ? "in" : "out");
      return fail(oss.str());
    }
  }
  return {};
}

InvariantResult check_invariant_3_2(const PartialReversalState& pr) {
  const Graph& g = pr.graph();
  const Orientation& o = pr.orientation();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto in_nbrs = pr.initial_in_neighbors(u);
    const auto out_nbrs = pr.initial_out_neighbors(u);
    const auto list = pr.list(u);

    // Case 1: all initial out-neighbors point at u, and list[u] is exactly
    // the initial in-neighbors whose edges point at u.
    const auto incoming_subset = [&](const std::vector<NodeId>& candidates) {
      std::vector<NodeId> result;
      for (const NodeId v : candidates) {
        if (o.dir(u, v) == Dir::kIn) result.push_back(v);
      }
      return result;
    };
    const bool out_all_in = std::all_of(out_nbrs.begin(), out_nbrs.end(), [&](NodeId w) {
      return o.dir(u, w) == Dir::kIn;
    });
    const bool in_all_in = std::all_of(in_nbrs.begin(), in_nbrs.end(), [&](NodeId w) {
      return o.dir(u, w) == Dir::kIn;
    });
    const bool part1 = out_all_in && list == incoming_subset(in_nbrs);
    const bool part2 = in_all_in && list == incoming_subset(out_nbrs);
    if (part1 == part2) {
      std::ostringstream oss;
      oss << "Invariant 3.2 violated at node " << u << ": " << (part1 ? "both" : "neither")
          << " of the two cases hold (|list|=" << list.size() << ")";
      return fail(oss.str());
    }
  }
  return {};
}

InvariantResult check_corollary_3_3(const PartialReversalState& pr) {
  const Graph& g = pr.graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto list = pr.list(u);
    if (list.empty()) continue;
    if (!is_subset(list, pr.initial_in_neighbors(u)) &&
        !is_subset(list, pr.initial_out_neighbors(u))) {
      std::ostringstream oss;
      oss << "Corollary 3.3 violated at node " << u
          << ": list[u] is contained in neither in-nbrs nor out-nbrs";
      return fail(oss.str());
    }
  }
  return {};
}

InvariantResult check_corollary_3_4(const PartialReversalState& pr) {
  const Graph& g = pr.graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == pr.destination() || !pr.orientation().is_sink(u)) continue;
    const auto list = pr.list(u);
    if (list != pr.initial_in_neighbors(u) && list != pr.initial_out_neighbors(u)) {
      std::ostringstream oss;
      oss << "Corollary 3.4 violated at sink " << u
          << ": list[u] equals neither in-nbrs nor out-nbrs";
      return fail(oss.str());
    }
  }
  return {};
}

InvariantResult check_invariant_4_1(const NewPRAutomaton& newpr, const LeftRightEmbedding& emb) {
  const Graph& g = newpr.graph();
  const Orientation& o = newpr.orientation();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = g.edge_u(e);
    const NodeId v = g.edge_v(e);
    if (newpr.parity(u) != newpr.parity(v)) continue;
    const bool left_to_right = emb.directed_left_to_right(o, e);
    if (newpr.parity(u) == Parity::kEven && !left_to_right) {
      std::ostringstream oss;
      oss << "Invariant 4.1(a) violated on edge {" << u << ", " << v
          << "}: both parities even but edge directed right-to-left";
      return fail(oss.str());
    }
    if (newpr.parity(u) == Parity::kOdd && left_to_right) {
      std::ostringstream oss;
      oss << "Invariant 4.1(b) violated on edge {" << u << ", " << v
          << "}: both parities odd but edge directed left-to-right";
      return fail(oss.str());
    }
  }
  return {};
}

InvariantResult check_invariant_4_2(const NewPRAutomaton& newpr, const LeftRightEmbedding& emb) {
  const Graph& g = newpr.graph();
  const Orientation& o = newpr.orientation();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const bool swap : {false, true}) {
      const NodeId u = swap ? g.edge_v(e) : g.edge_u(e);
      const NodeId v = swap ? g.edge_u(e) : g.edge_v(e);
      const std::uint64_t cu = newpr.count(u);
      const std::uint64_t cv = newpr.count(v);

      // (a) counts of neighbors differ by at most one.
      if (cu > cv + 1 || cv > cu + 1) {
        std::ostringstream oss;
        oss << "Invariant 4.2(a) violated on {" << u << ", " << v << "}: count[" << u
            << "]=" << cu << ", count[" << v << "]=" << cv;
        return fail(oss.str());
      }
      // (b) odd count and right neighbor: counts equal.
      if (cu % 2 == 1 && emb.left_of(u, v) && cv != cu) {
        std::ostringstream oss;
        oss << "Invariant 4.2(b) violated on {" << u << ", " << v << "}: count[" << u
            << "]=" << cu << " odd, v right of u, count[" << v << "]=" << cv;
        return fail(oss.str());
      }
      // (c) even count and left neighbor: counts equal.
      if (cu % 2 == 0 && emb.left_of(v, u) && cv != cu) {
        std::ostringstream oss;
        oss << "Invariant 4.2(c) violated on {" << u << ", " << v << "}: count[" << u
            << "]=" << cu << " even, v left of u, count[" << v << "]=" << cv;
        return fail(oss.str());
      }
      // (d) strictly larger count: edge directed from u to v.
      if (cu > cv && o.tail(e) != u) {
        std::ostringstream oss;
        oss << "Invariant 4.2(d) violated on {" << u << ", " << v << "}: count[" << u
            << "]=" << cu << " > count[" << v << "]=" << cv << " but edge points at " << u;
        return fail(oss.str());
      }
    }
  }
  return {};
}

InvariantResult check_acyclic(const Orientation& o) {
  const auto cycle = find_cycle(o);
  if (!cycle) return {};
  std::ostringstream oss;
  oss << "acyclicity violated; directed cycle:";
  for (const NodeId u : *cycle) oss << ' ' << u;
  return fail(oss.str());
}

InvariantResult check_quiescence_consistency(const Orientation& o, NodeId destination) {
  const bool quiescent = sinks_excluding(o, destination).empty();
  const bool oriented = is_destination_oriented(o, destination);
  if (quiescent && !oriented) {
    return fail("quiescent state is not destination-oriented");
  }
  if (oriented && !quiescent) {
    return fail("destination-oriented state still has a non-destination sink");
  }
  return {};
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/lr_base.hpp"

/// \file gb_heights.hpp
/// The original Gafni–Bertsekas *height* formulations of link reversal [GB81],
/// which the paper's acyclicity proof deliberately avoids.
///
/// GB assign each node an unbounded label ("height") drawn from a totally
/// ordered set; every edge points from the higher endpoint to the lower
/// one, so acyclicity is immediate from the total order.  Two instances:
///
///  * **Pair heights** (a, id) — Full Reversal: a sink sets
///      a_u := 1 + max{ a_v : v ∈ nbrs_u },
///    rising above every neighbor, i.e. reversing all incident edges.
///
///  * **Triple heights** (a, b, id) — Partial Reversal: a sink sets
///      a_u := 1 + min{ a_v : v ∈ nbrs_u };
///      if some neighbor v has a_v = a_u (new), then
///        b_u := min{ b_v : a_v = a_u } − 1, else b_u is unchanged.
///    This rises above exactly the minimum-a neighbors — the neighbors that
///    have *not* reversed towards u since u's last step — which is the PR
///    reversal set.  Experiment E8 and the test suite drive identical
///    schedules through GBTripleHeights and the list-based PR automaton and
///    assert the resulting orientations coincide step-by-step.
///
/// The initial heights are derived from a topological order of the initial
/// DAG so that every edge starts pointing from higher to lower height,
/// matching G'_init exactly.

namespace lr {

/// Full Reversal via pair heights (a, id).
class GBPairHeightsAutomaton : public LinkReversalBase {
 public:
  /// Actions are single nodes: reverse(u).
  using Action = NodeId;
  /// The label type: (a, id), compared lexicographically.
  using Height = std::pair<std::int64_t, NodeId>;

  /// Builds GB pair-height state; initial heights derive from a
  /// topological order of the initial DAG.
  GBPairHeightsAutomaton(const Graph& g, Orientation initial, NodeId destination);
  /// Convenience constructor from a generator Instance.
  explicit GBPairHeightsAutomaton(const Instance& instance);

  /// Current height of `u`.
  Height height(NodeId u) const { return {a_[u], u}; }

  /// Precondition of reverse(u): u is a non-destination sink.
  bool enabled(NodeId u) const { return sink_enabled(u); }
  /// Effect of reverse(u): a_u := 1 + max over neighbors.
  void apply(NodeId u);

  /// True iff every edge points from its lexicographically higher endpoint
  /// to its lower one — the GB consistency property; tests assert it after
  /// every step.
  bool heights_consistent() const;

 private:
  std::vector<std::int64_t> a_;
};

/// Partial Reversal via triple heights (a, b, id).
class GBTripleHeightsAutomaton : public LinkReversalBase {
 public:
  /// Actions are single nodes: reverse(u).
  using Action = NodeId;
  /// The label type: (a, b, id), compared lexicographically.
  using Height = std::tuple<std::int64_t, std::int64_t, NodeId>;

  /// Builds GB triple-height state; initial heights derive from a
  /// topological order of the initial DAG.
  GBTripleHeightsAutomaton(const Graph& g, Orientation initial, NodeId destination);
  /// Convenience constructor from a generator Instance.
  explicit GBTripleHeightsAutomaton(const Instance& instance);

  /// Current height of `u`.
  Height height(NodeId u) const { return {a_[u], b_[u], u}; }

  /// Precondition of reverse(u): u is a non-destination sink.
  bool enabled(NodeId u) const { return sink_enabled(u); }
  /// Effect of reverse(u): the GB partial-reversal height update.
  void apply(NodeId u);

  /// True iff every edge points from its higher endpoint to its lower one
  /// (the GB consistency property; asserted after every step in tests).
  bool heights_consistent() const;

 private:
  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <vector>

#include "core/lr_base.hpp"

/// \file full_reversal.hpp
/// Full Reversal (FR), the Gafni–Bertsekas baseline the paper contrasts
/// with: "In FR when a node is a sink it reverses all of its incident
/// edges."  FR's acyclicity argument is the easy one sketched in the
/// paper's introduction (the last node to fire has only outgoing edges);
/// the test suite checks it the same way it checks PR, and the work
/// experiments (E2, E3) use FR as the baseline strategy.

namespace lr {

/// One-step FR: action reverse(u) flips every incident edge of sink u.
class FullReversalAutomaton : public LinkReversalBase {
 public:
  /// Actions are single nodes: reverse(u).
  using Action = NodeId;

  /// Builds FR state over an externally owned graph (see LinkReversalBase).
  FullReversalAutomaton(const Graph& g, Orientation initial, NodeId destination)
      : LinkReversalBase(g, std::move(initial), destination),
        count_(graph().num_nodes(), 0) {}

  /// Convenience constructor from a generator Instance.
  explicit FullReversalAutomaton(const Instance& instance)
      : FullReversalAutomaton(instance.graph, instance.make_orientation(), instance.destination) {}

  /// Steps u has taken so far (work measure for E2/E3).
  std::uint64_t count(NodeId u) const { return count_[u]; }

  /// Precondition of reverse(u): u is a non-destination sink.
  bool enabled(NodeId u) const { return sink_enabled(u); }

  /// Effect of reverse(u): every incident edge of sink u flips.
  void apply(NodeId u);

  /// Unique encoding of the behavioral state for the exhaustive model
  /// checker.  FR's behavior depends only on the orientation (counts are
  /// bookkeeping), so the fingerprint is just G' — merging count-variant
  /// states keeps the explored space small without losing any orientation
  /// property.
  std::vector<std::uint8_t> state_fingerprint() const {
    std::vector<std::uint8_t> fp;
    fp.reserve(graph().num_edges());
    append_orientation_fingerprint(fp);
    return fp;
  }

 private:
  std::vector<std::uint64_t> count_;
};

/// Set-step FR: all nodes of S (pairwise non-adjacent sinks) fire together,
/// mirroring the paper's PR signature reverse(S).
class FullReversalSetAutomaton : public LinkReversalBase {
 public:
  /// Actions are non-empty sink sets: reverse(S).
  using Action = std::vector<NodeId>;

  /// Builds FR set-step state over an externally owned graph.
  FullReversalSetAutomaton(const Graph& g, Orientation initial, NodeId destination)
      : LinkReversalBase(g, std::move(initial), destination) {}

  /// Convenience constructor from a generator Instance.
  explicit FullReversalSetAutomaton(const Instance& instance)
      : FullReversalSetAutomaton(instance.graph, instance.make_orientation(),
                                 instance.destination) {}

  /// Precondition of reverse(S): S non-empty, every u in S a sink.
  bool enabled(const Action& s) const {
    if (s.empty()) return false;
    for (const NodeId u : s) {
      if (!sink_enabled(u)) return false;
    }
    return true;
  }

  /// Effect of reverse(S): each sink of S flips all its incident edges.
  void apply(const Action& s);
};

}  // namespace lr

#include "core/full_reversal.hpp"

#include <stdexcept>

namespace lr {

void FullReversalAutomaton::apply(NodeId u) {
  if (!sink_enabled(u)) {
    throw std::logic_error("FullReversalAutomaton::apply: precondition violated (not a sink)");
  }
  for (const Incidence& inc : graph().neighbors(u)) {
    orientation_.reverse_edge(inc.edge);
  }
  ++count_[u];
}

void FullReversalSetAutomaton::apply(const Action& s) {
  for (const NodeId u : s) {
    if (!sink_enabled(u)) {
      throw std::logic_error(
          "FullReversalSetAutomaton::apply: precondition violated (not a sink)");
    }
    for (const Incidence& inc : graph().neighbors(u)) {
      orientation_.reverse_edge(inc.edge);
    }
  }
}

}  // namespace lr

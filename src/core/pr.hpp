#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/lr_base.hpp"

/// \file pr.hpp
/// The original Partial Reversal algorithm: the paper's `PR` automaton
/// (Algorithm 1, set steps) and `OneStepPR` automaton (Algorithm 3, single
/// steps).  Both share the same state — `dir` plus one dynamic `list[u]`
/// per node — and the same per-node effect; they differ only in how many
/// sinks fire per action, so both are thin wrappers over
/// PartialReversalState.
///
/// Per-node effect (paper, Section 3.1): when sink u fires,
///   * if list[u] != nbrs_u: reverse the edges to nbrs_u \ list[u],
///   * else: reverse the edges to all of nbrs_u;
/// each neighbor v whose edge was reversed adds u to list[v]; finally
/// list[u] := ∅.

namespace lr {

/// Shared state and per-node step of PR / OneStepPR.
class PartialReversalState : public LinkReversalBase {
 public:
  /// Builds PR state (empty lists) over an externally owned graph.
  PartialReversalState(const Graph& g, Orientation initial, NodeId destination);
  /// Convenience constructor from a generator Instance.
  explicit PartialReversalState(const Instance& instance);

  /// The paper's list[u], as a sorted node vector (for invariant checks and
  /// the simulation relation R').
  std::vector<NodeId> list(NodeId u) const;

  /// |list[u]| in O(1).
  std::size_t list_size(NodeId u) const { return list_size_[u]; }

  /// True iff v ∈ list[u].  Precondition: {u, v} ∈ E.
  bool list_contains(NodeId u, NodeId v) const;

  /// True iff list[u] = nbrs_u (the branch condition of the effect).
  bool list_full(NodeId u) const { return list_size_[u] == graph().degree(u); }

  /// Lists of the two states are identical (part 2 of relation R').
  bool lists_equal(const PartialReversalState& other) const {
    return in_list_ == other.in_list_;
  }

  /// Fires the per-node effect for sink `u`.  Precondition: sink_enabled(u).
  void node_step(NodeId u);

 protected:
  /// Fires the *Full Reversal* effect for sink `u` while keeping PR's list
  /// bookkeeping consistent: all incident edges reverse, every neighbor
  /// adds u to its list, and list[u] is cleared.  Used by the hybrid
  /// strategy game (hybrid.hpp); not part of the paper's PR automaton.
  void node_step_full(NodeId u);

 public:

  /// Number of node steps taken in total (work measure).
  std::uint64_t total_node_steps() const noexcept { return total_node_steps_; }

  /// Unique encoding of (G', all lists) for the exhaustive model checker.
  std::vector<std::uint8_t> state_fingerprint() const {
    std::vector<std::uint8_t> fp;
    fp.reserve(graph().num_edges() + in_list_.size());
    append_orientation_fingerprint(fp);
    fp.insert(fp.end(), in_list_.begin(), in_list_.end());
    return fp;
  }

 private:
  std::size_t slot(NodeId u, std::size_t incidence_index) const {
    return offsets_[u] + incidence_index;
  }
  std::size_t incidence_index_of(NodeId u, NodeId v) const;

  std::vector<std::size_t> offsets_;   // CSR offsets into in_list_, size n+1
  std::vector<std::uint8_t> in_list_;  // flag per (node, incidence): neighbor ∈ list[node]
  std::vector<std::uint32_t> list_size_;
  std::uint64_t total_node_steps_ = 0;
};

/// Algorithm 1: the original PR automaton with set actions reverse(S).
/// Precondition: S non-empty, D ∉ S, every u ∈ S is a sink.  (Nodes of S
/// are automatically pairwise non-adjacent: neighbors cannot both be
/// sinks.)
class PRAutomaton : public PartialReversalState {
 public:
  /// Actions are non-empty sink sets: reverse(S).
  using Action = std::vector<NodeId>;
  using PartialReversalState::PartialReversalState;

  /// Precondition of reverse(S): S non-empty, every u in S a sink.
  bool enabled(const Action& s) const {
    if (s.empty()) return false;
    for (const NodeId u : s) {
      if (!sink_enabled(u)) return false;
    }
    return true;
  }

  /// Effect of reverse(S): the per-node PR effect for every u in S.
  void apply(const Action& s) {
    // The nodes of S are pairwise non-adjacent, so the per-node effects are
    // independent and any application order yields the paper's simultaneous
    // effect.
    for (const NodeId u : s) node_step(u);
  }
};

/// Algorithm 3: OneStepPR — identical state, one sink per action.
class OneStepPRAutomaton : public PartialReversalState {
 public:
  /// Actions are single nodes: reverse(u).
  using Action = NodeId;
  using PartialReversalState::PartialReversalState;

  /// Precondition of reverse(u): u is a non-destination sink.
  bool enabled(NodeId u) const { return sink_enabled(u); }
  /// Effect of reverse(u): the per-node PR effect.
  void apply(NodeId u) { node_step(u); }
};

}  // namespace lr

#pragma once

#include <algorithm>
#include <vector>

#include "core/newpr.hpp"
#include "core/pr.hpp"

/// \file relations.hpp
/// The binary relations of Section 5, as executable predicates, plus the
/// step correspondences their proofs construct.  Together with
/// automata/simulation.hpp these let the test suite mechanically re-play
/// Lemmas 5.1 and 5.3 along arbitrary executions:
///
///  * R' ⊆ states(PR) × states(OneStepPR):   same G', same lists.
///    One PR step reverse(S) corresponds to |S| OneStepPR steps.
///  * R  ⊆ states(OneStepPR) × states(NewPR): same G'; parity[u] even =>
///    list[u] ⊆ out-nbrs_u; parity[u] odd => list[u] ⊆ in-nbrs_u.
///    One OneStepPR step corresponds to one NewPR step, or two when
///    list[w] = nbrs_w (the dummy step followed by the real reversal).
///
/// We additionally implement the *reverse-direction* relation the paper's
/// conclusion proposes as future work ("showing a binary relation in the
/// reverse direction too"): NewPR -> OneStepPR.  A dummy NewPR step maps to
/// the empty OneStepPR sequence, which temporarily leaves the pair in a
/// "post-dummy" state the forward relation R does not cover; R_rev extends
/// R with exactly those two post-dummy cases (see reverse_relation_R).

namespace lr {

// ---------------------------------------------------------------------------
// R' : PR -> OneStepPR (Section 5.2)
// ---------------------------------------------------------------------------

/// (s, t) ∈ R'  iff  s.G' = t.G' and s.list[u] = t.list[u] for all u.
inline bool relation_R_prime(const PartialReversalState& s, const PartialReversalState& t) {
  return s.orientation() == t.orientation() && s.lists_equal(t);
}

/// Lemma 5.1's step mapping: reverse(S) with S = {u1, ..., un} corresponds
/// to the OneStepPR sequence reverse(u1), ..., reverse(un) (any order; we
/// keep S's order).
inline std::vector<NodeId> correspondence_R_prime(const PRAutomaton& /*s*/,
                                                  const std::vector<NodeId>& action,
                                                  const OneStepPRAutomaton& /*t*/) {
  return action;
}

// ---------------------------------------------------------------------------
// R : OneStepPR -> NewPR (Section 5.3)
// ---------------------------------------------------------------------------

/// (s, t) ∈ R iff s.G' = t.G', and for each node u:
///   parity[u] = even  =>  s.list[u] ⊆ out-nbrs_u,
///   parity[u] = odd   =>  s.list[u] ⊆ in-nbrs_u.
bool relation_R(const PartialReversalState& s, const NewPRAutomaton& t);

/// Lemma 5.3's step mapping: one reverse(w), except two consecutive
/// reverse(w) when s.list[w] = nbrs_w (NewPR needs a dummy step first).
inline std::vector<NodeId> correspondence_R(const OneStepPRAutomaton& s, NodeId action,
                                            const NewPRAutomaton& /*t*/) {
  if (s.list_full(action)) return {action, action};
  return {action};
}

// ---------------------------------------------------------------------------
// Reverse direction: NewPR -> OneStepPR (the paper's proposed extension)
// ---------------------------------------------------------------------------

/// R_rev extends R (with the roles of the automata swapped) by the two
/// "post-dummy" states that arise because a dummy NewPR step maps to *zero*
/// OneStepPR steps.  (t, s) ∈ R_rev iff t.G' = s.G' and for each node u one
/// of:
///   (1) parity[u] even and s.list[u] ⊆ out-nbrs_u            (as in R)
///   (2) parity[u] odd  and s.list[u] ⊆ in-nbrs_u             (as in R)
///   (3) parity[u] even, out-nbrs_u = ∅, s.list[u] = nbrs_u   (initial sink,
///       dummy already taken, real reversal of in-nbrs pending)
///   (4) parity[u] odd,  in-nbrs_u = ∅,  s.list[u] = nbrs_u   (initial
///       source, dummy already taken, real reversal of out-nbrs pending)
bool reverse_relation_R(const NewPRAutomaton& t, const PartialReversalState& s);

/// Step mapping for the reverse direction: a dummy step corresponds to the
/// empty OneStepPR sequence; a real step corresponds to reverse(u).
inline std::vector<NodeId> correspondence_R_reverse(const NewPRAutomaton& t, NodeId action,
                                                    const OneStepPRAutomaton& /*s*/) {
  if (t.would_be_dummy_step(action)) return {};
  return {action};
}

// ---------------------------------------------------------------------------
// OneStepPR -> PR (completes the cycle of relations; trivial direction)
// ---------------------------------------------------------------------------

/// A OneStepPR step reverse(u) is the PR set step reverse({u}).
inline std::vector<std::vector<NodeId>> correspondence_one_step_to_set(
    const OneStepPRAutomaton& /*s*/, NodeId action, const PRAutomaton& /*t*/) {
  return {{action}};
}

}  // namespace lr

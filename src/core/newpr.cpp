#include "core/newpr.hpp"

#include <stdexcept>

namespace lr {

void NewPRAutomaton::apply(NodeId u) {
  if (!sink_enabled(u)) {
    throw std::logic_error("NewPRAutomaton::apply: precondition violated (not a sink)");
  }
  const Dir selected = parity(u) == Parity::kEven ? Dir::kIn : Dir::kOut;
  bool reversed_any = false;
  for (const Incidence& inc : graph().neighbors(u)) {
    if (initial_dir(u, inc.edge) == selected) {
      // dir[u, v] := out; dir[v, u] := in.  u is a sink, so every incident
      // edge currently points at u and this is a genuine reversal.
      orientation_.reverse_edge(inc.edge);
      reversed_any = true;
    }
  }
  if (!reversed_any) ++dummy_steps_;
  ++count_[u];
  ++total_steps_;
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <vector>

#include "core/lr_base.hpp"

/// \file newpr.hpp
/// The paper's new algorithm (Algorithm 2, `NewPR`).
///
/// NewPR is the static reformulation of Partial Reversal at the heart of
/// the paper's label-free acyclicity proof.  Each node keeps only a step
/// counter `count[u]`; the derived `parity[u]` selects which of the two
/// *constant* sets is reversed when u fires as a sink:
///
///   * parity even  -> reverse the edges to in-nbrs_u  (initial in-set),
///   * parity odd   -> reverse the edges to out-nbrs_u (initial out-set).
///
/// If the selected set is empty (u was an initial source or sink) the
/// action is a "dummy" step: no edge moves, only the counter increments.
/// Dummy steps are what let the proof treat all nodes uniformly, and their
/// cost is quantified by experiment E4.

namespace lr {

/// The derived variable parity[u] = count[u] mod 2.
enum class Parity : std::uint8_t {
  kEven,  ///< next firing reverses the initial in-set
  kOdd,   ///< next firing reverses the initial out-set
};

/// The paper's NewPR automaton (Algorithm 2).
class NewPRAutomaton : public LinkReversalBase {
 public:
  /// Actions are single nodes: reverse(u).
  using Action = NodeId;

  /// Builds NewPR state over an externally owned graph.
  NewPRAutomaton(const Graph& g, Orientation initial, NodeId destination)
      : LinkReversalBase(g, std::move(initial), destination),
        count_(graph().num_nodes(), 0) {}

  /// Convenience constructor from a generator Instance.
  explicit NewPRAutomaton(const Instance& instance)
      : NewPRAutomaton(instance.graph, instance.make_orientation(), instance.destination) {}

  /// The history variable count[u]: steps u has taken so far.
  std::uint64_t count(NodeId u) const { return count_[u]; }

  /// The derived variable parity[u].
  Parity parity(NodeId u) const {
    return count_[u] % 2 == 0 ? Parity::kEven : Parity::kOdd;
  }

  /// Precondition of reverse(u): u is a non-destination sink.
  bool enabled(NodeId u) const { return sink_enabled(u); }

  /// True iff firing u *now* would reverse no edges (the selected constant
  /// set is empty).  Meaningful only while u is a sink.
  bool would_be_dummy_step(NodeId u) const {
    return selected_set_size(u) == 0;
  }

  /// Total dummy steps taken so far (the overhead NewPR pays over
  /// OneStepPR; see Section 4.1's discussion and experiment E4).
  std::uint64_t dummy_steps() const noexcept { return dummy_steps_; }

  /// Total steps taken (dummy + real).
  std::uint64_t total_steps() const noexcept { return total_steps_; }

  /// Effect of reverse(u).
  void apply(NodeId u);

  /// Unique encoding of (G', all counts) for the exhaustive model checker.
  /// Counts are included in full (not just parities) because Invariant 4.2
  /// constrains their values.
  std::vector<std::uint8_t> state_fingerprint() const {
    std::vector<std::uint8_t> fp;
    fp.reserve(graph().num_edges() + 8 * count_.size());
    append_orientation_fingerprint(fp);
    for (const std::uint64_t c : count_) {
      for (int shift = 0; shift < 64; shift += 8) {
        fp.push_back(static_cast<std::uint8_t>(c >> shift));
      }
    }
    return fp;
  }

 private:
  std::size_t selected_set_size(NodeId u) const {
    // Count of initial in-nbrs (even parity) or out-nbrs (odd parity).
    std::size_t in_count = 0;
    for (const Incidence& inc : graph().neighbors(u)) {
      if (initial_dir(u, inc.edge) == Dir::kIn) ++in_count;
    }
    return parity(u) == Parity::kEven ? in_count : graph().degree(u) - in_count;
  }

  std::vector<std::uint64_t> count_;
  std::uint64_t dummy_steps_ = 0;
  std::uint64_t total_steps_ = 0;
};

}  // namespace lr

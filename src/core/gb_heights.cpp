#include "core/gb_heights.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/digraph_algos.hpp"

namespace lr {

namespace {

/// Heights decreasing along initial edges: node at topological position p
/// (edges go from earlier to later positions) gets value n-1-p, so every
/// initial edge points from the larger value to the smaller one.
std::vector<std::int64_t> initial_levels(const Orientation& o) {
  const auto order = topological_order(o);
  if (!order) {
    throw std::invalid_argument("GB heights: initial orientation must be acyclic");
  }
  std::vector<std::int64_t> level(order->size());
  const std::int64_t n = static_cast<std::int64_t>(order->size());
  for (std::int64_t pos = 0; pos < n; ++pos) {
    level[(*order)[static_cast<std::size_t>(pos)]] = n - 1 - pos;
  }
  return level;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pair heights (Full Reversal)
// ---------------------------------------------------------------------------

GBPairHeightsAutomaton::GBPairHeightsAutomaton(const Graph& g, Orientation initial,
                                               NodeId destination)
    : LinkReversalBase(g, std::move(initial), destination), a_(initial_levels(orientation_)) {}

GBPairHeightsAutomaton::GBPairHeightsAutomaton(const Instance& instance)
    : GBPairHeightsAutomaton(instance.graph, instance.make_orientation(), instance.destination) {}

void GBPairHeightsAutomaton::apply(NodeId u) {
  if (!sink_enabled(u)) {
    throw std::logic_error("GBPairHeightsAutomaton::apply: precondition violated (not a sink)");
  }
  std::int64_t max_a = std::numeric_limits<std::int64_t>::min();
  for (const Incidence& inc : graph().neighbors(u)) {
    max_a = std::max(max_a, a_[inc.neighbor]);
  }
  a_[u] = max_a + 1;
  // Re-derive directions of u's incident edges from the new heights: u now
  // exceeds every neighbor, so all edges flip outward.
  for (const Incidence& inc : graph().neighbors(u)) {
    if (height(u) > height(inc.neighbor)) {
      orientation_.point_away_from(u, inc.edge);
    }
  }
}

bool GBPairHeightsAutomaton::heights_consistent() const {
  for (EdgeId e = 0; e < graph().num_edges(); ++e) {
    if (height(orientation_.tail(e)) <= height(orientation_.head(e))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Triple heights (Partial Reversal)
// ---------------------------------------------------------------------------

GBTripleHeightsAutomaton::GBTripleHeightsAutomaton(const Graph& g, Orientation initial,
                                                   NodeId destination)
    : LinkReversalBase(g, std::move(initial), destination),
      a_(graph().num_nodes(), 0),
      b_(initial_levels(orientation_)) {}

GBTripleHeightsAutomaton::GBTripleHeightsAutomaton(const Instance& instance)
    : GBTripleHeightsAutomaton(instance.graph, instance.make_orientation(),
                               instance.destination) {}

void GBTripleHeightsAutomaton::apply(NodeId u) {
  if (!sink_enabled(u)) {
    throw std::logic_error("GBTripleHeightsAutomaton::apply: precondition violated (not a sink)");
  }
  std::int64_t min_a = std::numeric_limits<std::int64_t>::max();
  for (const Incidence& inc : graph().neighbors(u)) {
    min_a = std::min(min_a, a_[inc.neighbor]);
  }
  const std::int64_t new_a = min_a + 1;
  std::int64_t min_b_at_new_a = std::numeric_limits<std::int64_t>::max();
  bool tie = false;
  for (const Incidence& inc : graph().neighbors(u)) {
    if (a_[inc.neighbor] == new_a) {
      tie = true;
      min_b_at_new_a = std::min(min_b_at_new_a, b_[inc.neighbor]);
    }
  }
  a_[u] = new_a;
  if (tie) b_[u] = min_b_at_new_a - 1;

  // Re-derive directions of u's incident edges from the updated heights.
  for (const Incidence& inc : graph().neighbors(u)) {
    const NodeId v = inc.neighbor;
    if (height(u) > height(v)) {
      orientation_.point_away_from(u, inc.edge);
    } else {
      orientation_.point_away_from(v, inc.edge);
    }
  }
}

bool GBTripleHeightsAutomaton::heights_consistent() const {
  for (EdgeId e = 0; e < graph().num_edges(); ++e) {
    if (height(orientation_.tail(e)) <= height(orientation_.head(e))) return false;
  }
  return true;
}

}  // namespace lr

#include "core/hybrid.hpp"

#include <stdexcept>

namespace lr {

HybridStrategyAutomaton::HybridStrategyAutomaton(const Graph& g, Orientation initial,
                                                 NodeId destination,
                                                 std::vector<NodeStrategy> strategies)
    : PartialReversalState(g, std::move(initial), destination),
      strategies_(std::move(strategies)) {
  if (strategies_.size() != graph().num_nodes()) {
    throw std::invalid_argument("HybridStrategyAutomaton: one strategy per node required");
  }
}

void HybridStrategyAutomaton::apply(NodeId u) {
  if (strategies_[u] == NodeStrategy::kFullReversal) {
    node_step_full(u);
  } else {
    node_step(u);
  }
}

}  // namespace lr

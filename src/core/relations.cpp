#include "core/relations.hpp"

namespace lr {

namespace {

bool is_subset(const std::vector<NodeId>& sub, const std::vector<NodeId>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

bool relation_R(const PartialReversalState& s, const NewPRAutomaton& t) {
  if (!(s.orientation() == t.orientation())) return false;
  const Graph& g = s.graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto list = s.list(u);
    if (list.empty()) continue;
    if (t.parity(u) == Parity::kEven) {
      if (!is_subset(list, s.initial_out_neighbors(u))) return false;
    } else {
      if (!is_subset(list, s.initial_in_neighbors(u))) return false;
    }
  }
  return true;
}

bool reverse_relation_R(const NewPRAutomaton& t, const PartialReversalState& s) {
  if (!(t.orientation() == s.orientation())) return false;
  const Graph& g = t.graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto list = s.list(u);
    const auto in_nbrs = s.initial_in_neighbors(u);
    const auto out_nbrs = s.initial_out_neighbors(u);
    const bool even = t.parity(u) == Parity::kEven;

    const bool case_regular = even ? is_subset(list, out_nbrs) : is_subset(list, in_nbrs);
    const bool case_post_dummy_sink = even && out_nbrs.empty() && list.size() == g.degree(u);
    const bool case_post_dummy_source = !even && in_nbrs.empty() && list.size() == g.degree(u);
    if (!case_regular && !case_post_dummy_sink && !case_post_dummy_source) return false;
  }
  return true;
}

}  // namespace lr

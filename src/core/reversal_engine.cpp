#include "core/reversal_engine.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <random>
#include <stdexcept>

namespace lr {

std::uint64_t senses_checksum(std::span<const EdgeSense> senses) {
  // FNV-1a over one byte per edge, the same encoding the automata use in
  // their state fingerprints (1 = forward, 0 = backward).
  std::uint64_t hash = 14695981039346656037ULL;
  for (const EdgeSense sense : senses) {
    hash ^= sense == EdgeSense::kForward ? 1u : 0u;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void ReversalEngine::attach(const CsrGraph& csr, NodeId destination) {
  csr_ = &csr;
  destination_ = destination;
  if (destination_ >= csr.num_nodes()) {
    throw std::invalid_argument("ReversalEngine: destination out of range");
  }
  const std::size_t n = csr.num_nodes();
  initial_out_degree_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    initial_out_degree_[u] = static_cast<std::uint32_t>(csr.initial_out_degree(u));
  }
  reset();
}

ReversalEngine::ReversalEngine(const CsrGraph& csr, NodeId destination) {
  attach(csr, destination);
}

ReversalEngine::ReversalEngine(const Instance& instance) {
  owned_csr_.emplace_back(instance.graph, instance.senses);
  attach(owned_csr_.back(), instance.destination);
}

void ReversalEngine::reset() {
  const std::size_t n = csr_->num_nodes();
  sense_.assign(csr_->initial_senses().begin(), csr_->initial_senses().end());
  out_degree_.assign(initial_out_degree_.begin(), initial_out_degree_.end());
  in_list_.assign(2 * csr_->num_edges(), 0);
  list_size_.assign(n, 0);
  parity_.assign(n, 0);
  dummy_steps_ = 0;
}

void ReversalEngine::ensure_distances() {
  const std::size_t n = csr_->num_nodes();
  if (!distance_.empty()) return;  // the snapshot is immutable: compute once
  distance_.assign(n, std::numeric_limits<std::uint32_t>::max());
  bfs_queue_.clear();
  distance_[destination_] = 0;
  bfs_queue_.push_back(destination_);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const NodeId x = bfs_queue_[head];
    for (const NodeId v : csr_->neighbors(x)) {
      if (distance_[v] == std::numeric_limits<std::uint32_t>::max()) {
        distance_[v] = distance_[x] + 1;
        bfs_queue_.push_back(v);
      }
    }
  }
}

bool ReversalEngine::compute_destination_oriented() {
  const std::size_t n = csr_->num_nodes();
  visited_.assign(n, 0);
  bfs_queue_.clear();
  visited_[destination_] = 1;
  bfs_queue_.push_back(destination_);
  std::size_t reached = 1;
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const NodeId x = bfs_queue_[head];
    const CsrPos end = csr_->adjacency_end(x);
    for (CsrPos p = csr_->adjacency_begin(x); p < end; ++p) {
      // Traverse edges *into* x: their tails route to D through x.
      if (csr_->points_out_of(p, x, sense_)) continue;
      const NodeId v = csr_->neighbor_at(p);
      if (!visited_[v]) {
        visited_[v] = 1;
        bfs_queue_.push_back(v);
        ++reached;
      }
    }
  }
  return reached == n;
}

template <bool Atomic, typename PushSink>
void ReversalEngine::flip(CsrPos p, PushSink&& push) {
  const EdgeId e = csr_->edge_at(p);
  sense_[e] = sense_[e] == EdgeSense::kForward ? EdgeSense::kBackward : EdgeSense::kForward;
  const NodeId v = csr_->neighbor_at(p);
  if constexpr (Atomic) {
    // v may neighbor several concurrently firing shards; the RMW both
    // keeps the count exact and elects exactly one pusher (the thread
    // whose decrement lands on zero).  Relaxed suffices: the counts
    // commute and the round barrier publishes everything else.
    if (std::atomic_ref<std::uint32_t>(out_degree_[v]).fetch_sub(1, std::memory_order_relaxed) ==
        1) {
      push(v);
    }
  } else {
    if (--out_degree_[v] == 0) push(v);
  }
}

template <bool Atomic, typename PushSink>
std::uint32_t ReversalEngine::fire_full(NodeId u, PushSink&& push) {
  const CsrPos begin = csr_->adjacency_begin(u);
  const CsrPos end = csr_->adjacency_end(u);
  for (CsrPos p = begin; p < end; ++p) flip<Atomic>(p, push);
  const std::uint32_t flips = end - begin;
  // Plain store even in the Atomic kernel: u's round peers are pairwise
  // non-adjacent to it, so no other shard touches out_degree_[u].
  out_degree_[u] = flips;
  if (flips == 0) push(u);  // a degree-0 node stays a (vacuous) sink
  return flips;
}

template <bool Atomic, typename PushSink>
std::uint32_t ReversalEngine::fire_pr(NodeId u, PushSink&& push) {
  const CsrPos begin = csr_->adjacency_begin(u);
  const CsrPos end = csr_->adjacency_end(u);
  const bool reverse_all = list_size_[u] == end - begin;
  std::uint32_t flips = 0;
  for (CsrPos p = begin; p < end; ++p) {
    if (!reverse_all && in_list_[p]) continue;  // v ∈ list[u]: keep the edge
    flip<Atomic>(p, push);
    ++flips;
    // list[v] := list[v] ∪ {u}, addressed through the mirror position.
    // The mirror slot is written by at most one shard per round (it names
    // the {u, v} edge from v's side and u is the only firing endpoint),
    // but v's list-size counter is shared with u's round peers.
    const CsrPos mp = csr_->mirror(p);
    if (!in_list_[mp]) {
      in_list_[mp] = 1;
      if constexpr (Atomic) {
        std::atomic_ref<std::uint32_t>(list_size_[csr_->neighbor_at(p)])
            .fetch_add(1, std::memory_order_relaxed);
      } else {
        ++list_size_[csr_->neighbor_at(p)];
      }
    }
  }
  for (CsrPos p = begin; p < end; ++p) in_list_[p] = 0;  // list[u] := ∅
  list_size_[u] = 0;
  out_degree_[u] = flips;
  if (flips == 0) push(u);
  return flips;
}

template <typename PushSink>
std::uint32_t ReversalEngine::fire_newpr(NodeId u, PushSink&& push) {
  const std::span<const CsrPos> selected =
      parity_[u] ? csr_->initial_out_positions(u) : csr_->initial_in_positions(u);
  for (const CsrPos p : selected) flip<false>(p, push);
  const std::uint32_t flips = static_cast<std::uint32_t>(selected.size());
  out_degree_[u] = flips;
  if (flips == 0) {
    ++dummy_steps_;  // the selected constant set is empty: a dummy step
    push(u);
  }
  parity_[u] ^= 1;
  return flips;
}

template <bool Atomic, typename PushSink>
std::uint32_t ReversalEngine::fire(EngineAlgorithm algorithm, NodeId u, PushSink&& push) {
  switch (algorithm) {
    case EngineAlgorithm::kFullReversal:
      return fire_full<Atomic>(u, push);
    case EngineAlgorithm::kOneStepPR:
      return fire_pr<Atomic>(u, push);
    case EngineAlgorithm::kNewPR:
      return fire_newpr(u, push);  // single-step only: rounds reject NewPR
  }
  throw std::invalid_argument("ReversalEngine: unknown algorithm");
}

EngineResult ReversalEngine::run(EngineAlgorithm algorithm, EnginePolicy policy,
                                 const EngineRunOptions& options) {
  reset();
  const std::size_t n = csr_->num_nodes();
  EngineResult result;
  if (options.record_node_costs) result.node_cost.assign(n, 0);

  const auto account = [&result](NodeId u, std::uint32_t flips) {
    result.edge_reversals += flips;
    ++result.steps;
    if (!result.node_cost.empty()) ++result.node_cost[u];
  };

  switch (policy) {
    case EnginePolicy::kLowestId: {
      // Lazy min-heap worklist: every node is pushed when its out-degree
      // hits zero; stale entries are discarded at pop.  The first valid pop
      // is the minimum current sink, exactly LowestIdScheduler's choice.
      heap_.clear();
      queued_.assign(n, 0);
      for (NodeId u = 0; u < n; ++u) {
        if (out_degree_[u] == 0) {
          heap_.push_back(u);
          queued_[u] = 1;
        }
      }
      std::make_heap(heap_.begin(), heap_.end(), std::greater<NodeId>{});
      const auto push = [this](NodeId v) {
        if (!queued_[v]) {
          queued_[v] = 1;
          heap_.push_back(v);
          std::push_heap(heap_.begin(), heap_.end(), std::greater<NodeId>{});
        }
      };
      while (result.steps < options.max_steps) {
        NodeId u = kNoNode;
        while (!heap_.empty()) {
          std::pop_heap(heap_.begin(), heap_.end(), std::greater<NodeId>{});
          const NodeId top = heap_.back();
          heap_.pop_back();
          queued_[top] = 0;
          if (top != destination_ && out_degree_[top] == 0) {
            u = top;
            break;
          }
        }
        if (u == kNoNode) {
          result.quiescent = true;
          break;
        }
        account(u, fire<false>(algorithm, u, push));
      }
      break;
    }
    case EnginePolicy::kRandom: {
      // Reproduces RandomScheduler exactly: an ascending sink list and a
      // uniform index draw per step from the same mt19937_64 stream.
      std::mt19937_64 rng(options.scheduler_seed);
      const auto no_push = [](NodeId) {};
      while (result.steps < options.max_steps) {
        sink_list_.clear();
        for (NodeId u = 0; u < n; ++u) {
          if (u != destination_ && out_degree_[u] == 0) sink_list_.push_back(u);
        }
        if (sink_list_.empty()) {
          result.quiescent = true;
          break;
        }
        std::uniform_int_distribution<std::size_t> pick(0, sink_list_.size() - 1);
        const NodeId u = sink_list_[pick(rng)];
        account(u, fire<false>(algorithm, u, no_push));
      }
      break;
    }
    case EnginePolicy::kRoundRobin: {
      // Reproduces RoundRobinScheduler's cursor rule over the flat
      // out-degree array.
      std::size_t cursor = 0;
      const auto no_push = [](NodeId) {};
      while (result.steps < options.max_steps) {
        NodeId u = kNoNode;
        for (std::size_t i = 0; i < n; ++i) {
          const NodeId candidate = static_cast<NodeId>((cursor + i) % n);
          if (candidate != destination_ && out_degree_[candidate] == 0) {
            u = candidate;
            cursor = (candidate + 1) % n;
            break;
          }
        }
        if (u == kNoNode) {
          result.quiescent = true;
          break;
        }
        account(u, fire<false>(algorithm, u, no_push));
      }
      break;
    }
    case EnginePolicy::kFarthestFirst: {
      // Lazy max-heap keyed (BFS distance to D, id), matching
      // FarthestFirstScheduler's max_element over (distance, id) pairs.
      ensure_distances();
      const auto key_of = [this](NodeId u) {
        return (static_cast<std::uint64_t>(distance_[u]) << 32) | u;
      };
      key_heap_.clear();
      queued_.assign(n, 0);
      for (NodeId u = 0; u < n; ++u) {
        if (out_degree_[u] == 0) {
          key_heap_.push_back(key_of(u));
          queued_[u] = 1;
        }
      }
      std::make_heap(key_heap_.begin(), key_heap_.end());
      const auto push = [this, &key_of](NodeId v) {
        if (!queued_[v]) {
          queued_[v] = 1;
          key_heap_.push_back(key_of(v));
          std::push_heap(key_heap_.begin(), key_heap_.end());
        }
      };
      while (result.steps < options.max_steps) {
        NodeId u = kNoNode;
        while (!key_heap_.empty()) {
          std::pop_heap(key_heap_.begin(), key_heap_.end());
          const NodeId top = static_cast<NodeId>(key_heap_.back() & 0xffffffffu);
          key_heap_.pop_back();
          queued_[top] = 0;
          if (top != destination_ && out_degree_[top] == 0) {
            u = top;
            break;
          }
        }
        if (u == kNoNode) {
          result.quiescent = true;
          break;
        }
        account(u, fire<false>(algorithm, u, push));
      }
      break;
    }
  }

  result.dummy_steps = dummy_steps_;
  result.destination_oriented = compute_destination_oriented();
  return result;
}

EngineRoundsResult ReversalEngine::run_greedy_rounds(EngineAlgorithm algorithm,
                                                     std::uint64_t max_rounds) {
  return run_greedy_rounds(algorithm, EngineRoundsOptions{.max_rounds = max_rounds});
}

EngineRoundsResult ReversalEngine::run_greedy_rounds(EngineAlgorithm algorithm,
                                                     const EngineRoundsOptions& options) {
  if (algorithm == EngineAlgorithm::kNewPR) {
    throw std::invalid_argument(
        "ReversalEngine::run_greedy_rounds: greedy rounds are defined for FR and "
        "OneStepPR only (matching analysis/rounds.hpp)");
  }
  reset();
  const std::size_t n = csr_->num_nodes();
  EngineRoundsResult result;

  round_current_.clear();
  for (NodeId u = 0; u < n; ++u) {
    if (u != destination_ && out_degree_[u] == 0) round_current_.push_back(u);
  }
  // Within a round, a non-firing node's out-degree only decreases and a
  // firing node's is rewritten once, so every node reaches zero at most
  // once per round: the next-round list needs no deduplication.  Firing
  // order within a round is immaterial — round sinks are pairwise
  // non-adjacent, and PR list additions only flow from firing nodes to
  // their (non-firing) neighbors — so the list also needs no sorting.
  const auto push = [this](NodeId v) {
    if (v != destination_) round_next_.push_back(v);
  };
  const std::size_t shards = options.pool != nullptr ? options.pool->size() : 1;
  std::size_t width = 0;
  std::function<void(std::size_t)> shard_job;
  if (shards > 1) {
    shard_next_.resize(shards);
    shard_reversals_.assign(shards, 0);
    // Built once per execution (not per round): the job reads the current
    // round's size through `width`.
    shard_job = [this, algorithm, &width, shards](std::size_t shard) {
      const std::size_t begin = width * shard / shards;
      const std::size_t end = width * (shard + 1) / shards;
      std::vector<NodeId>& next = shard_next_[shard];
      const auto shard_push = [this, &next](NodeId v) {
        if (v != destination_) next.push_back(v);
      };
      std::uint64_t reversals = 0;
      for (std::size_t i = begin; i < end; ++i) {
        reversals += fire<true>(algorithm, round_current_[i], shard_push);
      }
      shard_reversals_[shard] = reversals;
    };
  }
  while (!round_current_.empty() && result.rounds < options.max_rounds) {
    ++result.rounds;
    result.node_steps += round_current_.size();
    width = round_current_.size();
    // Work estimate: width x the widest firing sink's adjacency span.  The
    // scan is two offset loads per sink; it keeps star-like rounds (many
    // degree-1 leaves, almost no per-node work) on the inline path where
    // they are fastest.
    std::size_t work = 0;
    if (shards > 1) {
      std::size_t max_degree = 0;
      for (const NodeId u : round_current_) {
        max_degree = std::max(max_degree,
                              static_cast<std::size_t>(csr_->adjacency_end(u) -
                                                       csr_->adjacency_begin(u)));
      }
      work = width * max_degree;
    }
    // width > 1: a single sink cannot be split across shards, however
    // heavy (star hubs hit exactly this — one firing node of huge degree).
    if (shards > 1 && width > 1 && work >= options.min_parallel_work) {
      // Sharded round: contiguous worklist slices, one per worker.  Edge
      // flips are disjoint across shards (round sinks are pairwise
      // non-adjacent), shared neighbor counters are relaxed atomics inside
      // fire<true>, and each shard collects the sinks *it* zeroed into its
      // own buffer — the atomic decrement elects exactly one collector per
      // new sink, so the merged buffers hold each node once.
      for (std::vector<NodeId>& buffer : shard_next_) buffer.clear();
      options.pool->run(shard_job);
      round_current_.clear();
      for (std::size_t shard = 0; shard < shards; ++shard) {
        result.edge_reversals += shard_reversals_[shard];
        round_current_.insert(round_current_.end(), shard_next_[shard].begin(),
                              shard_next_[shard].end());
      }
      // Which shard zeroed a node (and thus the merged order) is a race,
      // but the merged *membership* is not: the atomic decrement elects
      // exactly one collector per new sink.  Order within a round is
      // unobservable — round sinks are pairwise non-adjacent, so every
      // counter update and edge flip commutes — which is why the merge
      // needs no sort and results stay byte-identical anyway
      // (tests/reversal_engine_test.cpp pins this at every pool size).
    } else {
      round_next_.clear();
      for (const NodeId u : round_current_) {
        result.edge_reversals += fire<false>(algorithm, u, push);
      }
      round_current_.swap(round_next_);
    }
  }
  result.converged = round_current_.empty();
  return result;
}

}  // namespace lr

#include "core/reversal_engine.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <random>
#include <stdexcept>

namespace lr {

namespace {

/// In-place neighbor updates for every serial execution path (single-step
/// runs and un-sharded rounds): a decrement lands immediately and a node
/// is requeued the instant its out-degree hits zero.
template <typename PushSink>
struct SerialOps {
  std::uint32_t* out_degree;
  std::uint32_t* list_size;
  PushSink& push;

  void flipped(NodeId v) {
    if (--out_degree[v] == 0) push(v);
  }
  void listed(NodeId v) { ++list_size[v]; }
  void self_sink(NodeId u) { push(u); }
};

/// Deferred neighbor updates for the sharded rounds kernel.  Touching a
/// neighbor's counter directly would need an atomic RMW (a non-firing hub
/// can neighbor every concurrently firing shard), and on hub topologies
/// those RMWs all land on one cache line — star-4097's first round is
/// 4096 leaves decrementing the same hub counter, which serializes the
/// whole "parallel" round.  Instead the firing phase appends the neighbor
/// id to a bucket addressed by the neighbor's *owner* shard; the merge
/// phase has each owner drain the buckets aimed at its contiguous node
/// range, so every counter keeps exactly one writer and no RMW is atomic.
struct DeltaOps {
  std::vector<NodeId>* degree_bucket;  // this firer's row: one bucket per owner
  std::vector<NodeId>* list_bucket;
  std::vector<NodeId>* next;  // this shard's next-round buffer (zero-flip requeues)
  std::size_t shards;
  std::size_t nodes;

  std::size_t owner(NodeId v) const {
    return static_cast<std::size_t>(v) * shards / nodes;
  }
  void flipped(NodeId v) { degree_bucket[owner(v)].push_back(v); }
  void listed(NodeId v) { list_bucket[owner(v)].push_back(v); }
  // The destination never fires, so a zero-flip self-requeue needs no
  // destination filter here (the merge phase filters its own pushes).
  void self_sink(NodeId u) { next->push_back(u); }
};

}  // namespace

std::uint64_t senses_checksum(std::span<const EdgeSense> senses) {
  // FNV-1a over one byte per edge, the same encoding the automata use in
  // their state fingerprints (1 = forward, 0 = backward).
  std::uint64_t hash = 14695981039346656037ULL;
  for (const EdgeSense sense : senses) {
    hash ^= sense == EdgeSense::kForward ? 1u : 0u;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void ReversalEngine::attach(const CsrGraph& csr, NodeId destination) {
  csr_ = &csr;
  destination_ = destination;
  if (destination_ >= csr.num_nodes()) {
    throw std::invalid_argument("ReversalEngine: destination out of range");
  }
  const std::size_t n = csr.num_nodes();
  initial_out_degree_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    initial_out_degree_[u] = static_cast<std::uint32_t>(csr.initial_out_degree(u));
  }
  reset();
}

ReversalEngine::ReversalEngine(const CsrGraph& csr, NodeId destination) {
  attach(csr, destination);
}

ReversalEngine::ReversalEngine(const Instance& instance) {
  owned_csr_.emplace_back(instance.graph, instance.senses);
  attach(owned_csr_.back(), instance.destination);
}

void ReversalEngine::reset() {
  const std::size_t n = csr_->num_nodes();
  sense_.assign(csr_->initial_senses().begin(), csr_->initial_senses().end());
  out_degree_.assign(initial_out_degree_.begin(), initial_out_degree_.end());
  in_list_.assign(2 * csr_->num_edges(), 0);
  list_size_.assign(n, 0);
  parity_.assign(n, 0);
  dummy_steps_ = 0;
}

void ReversalEngine::ensure_distances() {
  const std::size_t n = csr_->num_nodes();
  if (!distance_.empty()) return;  // the snapshot is immutable: compute once
  distance_.assign(n, std::numeric_limits<std::uint32_t>::max());
  bfs_queue_.clear();
  distance_[destination_] = 0;
  bfs_queue_.push_back(destination_);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const NodeId x = bfs_queue_[head];
    for (const NodeId v : csr_->neighbors(x)) {
      if (distance_[v] == std::numeric_limits<std::uint32_t>::max()) {
        distance_[v] = distance_[x] + 1;
        bfs_queue_.push_back(v);
      }
    }
  }
}

bool ReversalEngine::compute_destination_oriented() {
  const std::size_t n = csr_->num_nodes();
  visited_.assign(n, 0);
  bfs_queue_.clear();
  visited_[destination_] = 1;
  bfs_queue_.push_back(destination_);
  std::size_t reached = 1;
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const NodeId x = bfs_queue_[head];
    const CsrPos end = csr_->adjacency_end(x);
    for (CsrPos p = csr_->adjacency_begin(x); p < end; ++p) {
      // Traverse edges *into* x: their tails route to D through x.
      if (csr_->points_out_of(p, x, sense_)) continue;
      const NodeId v = csr_->neighbor_at(p);
      if (!visited_[v]) {
        visited_[v] = 1;
        bfs_queue_.push_back(v);
        ++reached;
      }
    }
  }
  return reached == n;
}

template <typename Ops>
void ReversalEngine::flip(CsrPos p, Ops& ops) {
  const EdgeId e = csr_->edge_at(p);
  sense_[e] = sense_[e] == EdgeSense::kForward ? EdgeSense::kBackward : EdgeSense::kForward;
  ops.flipped(csr_->neighbor_at(p));
}

template <typename Ops>
std::uint32_t ReversalEngine::fire_full(NodeId u, Ops& ops) {
  const CsrPos begin = csr_->adjacency_begin(u);
  const CsrPos end = csr_->adjacency_end(u);
  for (CsrPos p = begin; p < end; ++p) flip(p, ops);
  const std::uint32_t flips = end - begin;
  // Plain store in the sharded kernel too: u's round peers are pairwise
  // non-adjacent to it and delta events only target non-firing nodes, so
  // no other shard touches out_degree_[u] this round.
  out_degree_[u] = flips;
  if (flips == 0) ops.self_sink(u);  // a degree-0 node stays a (vacuous) sink
  return flips;
}

template <typename Ops>
std::uint32_t ReversalEngine::fire_pr(NodeId u, Ops& ops) {
  const CsrPos begin = csr_->adjacency_begin(u);
  const CsrPos end = csr_->adjacency_end(u);
  const bool reverse_all = list_size_[u] == end - begin;
  std::uint32_t flips = 0;
  for (CsrPos p = begin; p < end; ++p) {
    if (!reverse_all && in_list_[p]) continue;  // v ∈ list[u]: keep the edge
    flip(p, ops);
    ++flips;
    // list[v] := list[v] ∪ {u}, addressed through the mirror position.
    // The mirror slot is written by at most one shard per round (it names
    // the {u, v} edge from v's side and u is the only firing endpoint);
    // v's list-size counter is shared with u's round peers, which is why
    // the increment goes through ops (deferred to v's owner when sharded).
    const CsrPos mp = csr_->mirror(p);
    if (!in_list_[mp]) {
      in_list_[mp] = 1;
      ops.listed(csr_->neighbor_at(p));
    }
  }
  for (CsrPos p = begin; p < end; ++p) in_list_[p] = 0;  // list[u] := ∅
  list_size_[u] = 0;
  out_degree_[u] = flips;
  if (flips == 0) ops.self_sink(u);
  return flips;
}

template <typename Ops>
std::uint32_t ReversalEngine::fire_newpr(NodeId u, Ops& ops) {
  const std::span<const CsrPos> selected =
      parity_[u] ? csr_->initial_out_positions(u) : csr_->initial_in_positions(u);
  for (const CsrPos p : selected) flip(p, ops);
  const std::uint32_t flips = static_cast<std::uint32_t>(selected.size());
  out_degree_[u] = flips;
  if (flips == 0) {
    ++dummy_steps_;  // the selected constant set is empty: a dummy step
    ops.self_sink(u);
  }
  parity_[u] ^= 1;
  return flips;
}

template <typename Ops>
std::uint32_t ReversalEngine::fire(EngineAlgorithm algorithm, NodeId u, Ops& ops) {
  switch (algorithm) {
    case EngineAlgorithm::kFullReversal:
      return fire_full(u, ops);
    case EngineAlgorithm::kOneStepPR:
      return fire_pr(u, ops);
    case EngineAlgorithm::kNewPR:
      return fire_newpr(u, ops);  // single-step only: rounds reject NewPR
  }
  throw std::invalid_argument("ReversalEngine: unknown algorithm");
}

EngineResult ReversalEngine::run(EngineAlgorithm algorithm, EnginePolicy policy,
                                 const EngineRunOptions& options) {
  reset();
  const std::size_t n = csr_->num_nodes();
  EngineResult result;
  if (options.record_node_costs) result.node_cost.assign(n, 0);

  const auto account = [&result](NodeId u, std::uint32_t flips) {
    result.edge_reversals += flips;
    ++result.steps;
    if (!result.node_cost.empty()) ++result.node_cost[u];
  };

  switch (policy) {
    case EnginePolicy::kLowestId: {
      // Lazy min-heap worklist: every node is pushed when its out-degree
      // hits zero; stale entries are discarded at pop.  The first valid pop
      // is the minimum current sink, exactly LowestIdScheduler's choice.
      heap_.clear();
      queued_.assign(n, 0);
      for (NodeId u = 0; u < n; ++u) {
        if (out_degree_[u] == 0) {
          heap_.push_back(u);
          queued_[u] = 1;
        }
      }
      std::make_heap(heap_.begin(), heap_.end(), std::greater<NodeId>{});
      const auto push = [this](NodeId v) {
        if (!queued_[v]) {
          queued_[v] = 1;
          heap_.push_back(v);
          std::push_heap(heap_.begin(), heap_.end(), std::greater<NodeId>{});
        }
      };
      SerialOps ops{out_degree_.data(), list_size_.data(), push};
      while (result.steps < options.max_steps) {
        NodeId u = kNoNode;
        while (!heap_.empty()) {
          std::pop_heap(heap_.begin(), heap_.end(), std::greater<NodeId>{});
          const NodeId top = heap_.back();
          heap_.pop_back();
          queued_[top] = 0;
          if (top != destination_ && out_degree_[top] == 0) {
            u = top;
            break;
          }
        }
        if (u == kNoNode) {
          result.quiescent = true;
          break;
        }
        account(u, fire(algorithm, u, ops));
      }
      break;
    }
    case EnginePolicy::kRandom: {
      // Reproduces RandomScheduler exactly: an ascending sink list and a
      // uniform index draw per step from the same mt19937_64 stream.
      std::mt19937_64 rng(options.scheduler_seed);
      const auto no_push = [](NodeId) {};
      SerialOps ops{out_degree_.data(), list_size_.data(), no_push};
      while (result.steps < options.max_steps) {
        sink_list_.clear();
        for (NodeId u = 0; u < n; ++u) {
          if (u != destination_ && out_degree_[u] == 0) sink_list_.push_back(u);
        }
        if (sink_list_.empty()) {
          result.quiescent = true;
          break;
        }
        std::uniform_int_distribution<std::size_t> pick(0, sink_list_.size() - 1);
        const NodeId u = sink_list_[pick(rng)];
        account(u, fire(algorithm, u, ops));
      }
      break;
    }
    case EnginePolicy::kRoundRobin: {
      // Reproduces RoundRobinScheduler's cursor rule over the flat
      // out-degree array.
      std::size_t cursor = 0;
      const auto no_push = [](NodeId) {};
      SerialOps ops{out_degree_.data(), list_size_.data(), no_push};
      while (result.steps < options.max_steps) {
        NodeId u = kNoNode;
        for (std::size_t i = 0; i < n; ++i) {
          const NodeId candidate = static_cast<NodeId>((cursor + i) % n);
          if (candidate != destination_ && out_degree_[candidate] == 0) {
            u = candidate;
            cursor = (candidate + 1) % n;
            break;
          }
        }
        if (u == kNoNode) {
          result.quiescent = true;
          break;
        }
        account(u, fire(algorithm, u, ops));
      }
      break;
    }
    case EnginePolicy::kFarthestFirst: {
      // Lazy max-heap keyed (BFS distance to D, id), matching
      // FarthestFirstScheduler's max_element over (distance, id) pairs.
      ensure_distances();
      const auto key_of = [this](NodeId u) {
        return (static_cast<std::uint64_t>(distance_[u]) << 32) | u;
      };
      key_heap_.clear();
      queued_.assign(n, 0);
      for (NodeId u = 0; u < n; ++u) {
        if (out_degree_[u] == 0) {
          key_heap_.push_back(key_of(u));
          queued_[u] = 1;
        }
      }
      std::make_heap(key_heap_.begin(), key_heap_.end());
      const auto push = [this, &key_of](NodeId v) {
        if (!queued_[v]) {
          queued_[v] = 1;
          key_heap_.push_back(key_of(v));
          std::push_heap(key_heap_.begin(), key_heap_.end());
        }
      };
      SerialOps ops{out_degree_.data(), list_size_.data(), push};
      while (result.steps < options.max_steps) {
        NodeId u = kNoNode;
        while (!key_heap_.empty()) {
          std::pop_heap(key_heap_.begin(), key_heap_.end());
          const NodeId top = static_cast<NodeId>(key_heap_.back() & 0xffffffffu);
          key_heap_.pop_back();
          queued_[top] = 0;
          if (top != destination_ && out_degree_[top] == 0) {
            u = top;
            break;
          }
        }
        if (u == kNoNode) {
          result.quiescent = true;
          break;
        }
        account(u, fire(algorithm, u, ops));
      }
      break;
    }
  }

  result.dummy_steps = dummy_steps_;
  result.destination_oriented = compute_destination_oriented();
  return result;
}

EngineRoundsResult ReversalEngine::run_greedy_rounds(EngineAlgorithm algorithm,
                                                     std::uint64_t max_rounds) {
  return run_greedy_rounds(algorithm, EngineRoundsOptions{.max_rounds = max_rounds});
}

EngineRoundsResult ReversalEngine::run_greedy_rounds(EngineAlgorithm algorithm,
                                                     const EngineRoundsOptions& options) {
  if (algorithm == EngineAlgorithm::kNewPR) {
    throw std::invalid_argument(
        "ReversalEngine::run_greedy_rounds: greedy rounds are defined for FR and "
        "OneStepPR only (matching analysis/rounds.hpp)");
  }
  reset();
  const std::size_t n = csr_->num_nodes();
  EngineRoundsResult result;

  round_current_.clear();
  for (NodeId u = 0; u < n; ++u) {
    if (u != destination_ && out_degree_[u] == 0) round_current_.push_back(u);
  }
  // Within a round, a non-firing node's out-degree only decreases and a
  // firing node's is rewritten once, so every node reaches zero at most
  // once per round: the next-round list needs no deduplication.  Firing
  // order within a round is immaterial — round sinks are pairwise
  // non-adjacent, and PR list additions only flow from firing nodes to
  // their (non-firing) neighbors — so the list also needs no sorting.
  const auto push = [this](NodeId v) {
    if (v != destination_) round_next_.push_back(v);
  };
  SerialOps serial_ops{out_degree_.data(), list_size_.data(), push};
  const std::size_t shards = options.pool != nullptr ? options.pool->size() : 1;
  std::size_t width = 0;
  std::function<void(std::size_t)> fire_job;
  std::function<void(std::size_t)> merge_job;
  if (shards > 1) {
    shard_next_.resize(shards);
    shard_reversals_.assign(shards, 0);
    degree_events_.resize(shards * shards);
    list_events_.resize(shards * shards);
    // Both jobs are built once per execution (not per round): the fire job
    // reads the current round's size through `width`.
    fire_job = [this, algorithm, &width, shards](std::size_t shard) {
      const std::size_t begin = width * shard / shards;
      const std::size_t end = width * (shard + 1) / shards;
      DeltaOps ops{degree_events_.data() + shard * shards,
                   list_events_.data() + shard * shards,
                   &shard_next_[shard],
                   shards,
                   csr_->num_nodes()};
      std::uint64_t reversals = 0;
      for (std::size_t i = begin; i < end; ++i) {
        reversals += fire(algorithm, round_current_[i], ops);
      }
      shard_reversals_[shard] = reversals;
    };
    merge_job = [this, shards](std::size_t owner) {
      // Drain every firer's buckets aimed at this owner's node range, in
      // firer order.  Each counter in the range has this job as its only
      // writer, so no decrement is atomic, and the decrement that lands on
      // zero — hence the requeue — is the same at every pool size.
      std::vector<NodeId>& next = shard_next_[owner];
      for (std::size_t firer = 0; firer < shards; ++firer) {
        std::vector<NodeId>& degree = degree_events_[firer * shards + owner];
        for (const NodeId v : degree) {
          if (--out_degree_[v] == 0 && v != destination_) next.push_back(v);
        }
        degree.clear();
        std::vector<NodeId>& list = list_events_[firer * shards + owner];
        for (const NodeId v : list) ++list_size_[v];
        list.clear();
      }
    };
  }
  while (!round_current_.empty() && result.rounds < options.max_rounds) {
    ++result.rounds;
    result.node_steps += round_current_.size();
    width = round_current_.size();
    // Work estimate: width x the widest firing sink's adjacency span.  The
    // scan is two offset loads per sink; it keeps star-like rounds (many
    // degree-1 leaves, almost no per-node work) on the inline path where
    // they are fastest.
    std::size_t work = 0;
    if (shards > 1) {
      std::size_t max_degree = 0;
      for (const NodeId u : round_current_) {
        max_degree = std::max(max_degree,
                              static_cast<std::size_t>(csr_->adjacency_end(u) -
                                                       csr_->adjacency_begin(u)));
      }
      work = width * max_degree;
    }
    // width > 1: a single sink cannot be split across shards, however
    // heavy (star hubs hit exactly this — one firing node of huge degree).
    if (shards > 1 && width > 1 && work >= options.min_parallel_work) {
      // Sharded round, two barrier phases over contiguous worklist slices.
      // Phase 1 (fire): edge flips are disjoint across shards (round sinks
      // are pairwise non-adjacent), and every neighbor-counter update is
      // deferred as a delta event bucketed by the neighbor's owner shard —
      // nothing shared is written, so hub neighbors cost each firer an
      // append into its private bucket instead of a contended RMW.
      // Phase 2 (merge): each owner drains the buckets aimed at its node
      // range and requeues the sinks it zeroes into its own buffer.
      for (std::vector<NodeId>& buffer : shard_next_) buffer.clear();
      options.pool->run(fire_job);
      options.pool->run(merge_job);
      round_current_.clear();
      for (std::size_t shard = 0; shard < shards; ++shard) {
        result.edge_reversals += shard_reversals_[shard];
        round_current_.insert(round_current_.end(), shard_next_[shard].begin(),
                              shard_next_[shard].end());
      }
      // The merged list is fully deterministic: bucket membership follows
      // from the fixed slice boundaries, and each owner drains its buckets
      // in firer order.  Order within a round is unobservable anyway —
      // round sinks are pairwise non-adjacent, so every counter update and
      // edge flip commutes — which is why the merge needs no sort and
      // results stay byte-identical at every pool size
      // (tests/reversal_engine_test.cpp pins this).
    } else {
      round_next_.clear();
      for (const NodeId u : round_current_) {
        result.edge_reversals += fire(algorithm, u, serial_ops);
      }
      round_current_.swap(round_next_);
    }
  }
  result.converged = round_current_.empty();
  return result;
}

}  // namespace lr

#pragma once

#include <stdexcept>
#include <vector>

#include "graph/digraph_algos.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"

/// \file lr_base.hpp
/// State shared by every link-reversal automaton in the paper.
///
/// All four automata (PR, OneStepPR, NewPR, and the FR baseline) operate on
/// the same substrate: the fixed undirected graph G, the mutable directed
/// version G', the destination D, and the *initial* in-/out-neighbor sets
/// (`in-nbrs_u`, `out-nbrs_u`), which the paper defines once with respect
/// to G'_init and never changes.

namespace lr {

/// State shared by every link-reversal automaton: the orientation G', the
/// destination D, and the frozen initial in/out-neighbor sets.
class LinkReversalBase {
 public:
  /// Builds the automaton state over an externally owned graph with the
  /// given initial orientation.  The graph must outlive the automaton.
  LinkReversalBase(const Graph& g, Orientation initial, NodeId destination)
      : orientation_(std::move(initial)),
        destination_(destination),
        initial_senses_(orientation_.senses()) {
    if (&orientation_.graph() != &g) {
      throw std::invalid_argument("LinkReversalBase: orientation must reference the given graph");
    }
    if (destination_ >= g.num_nodes()) {
      throw std::invalid_argument("LinkReversalBase: destination out of range");
    }
  }

  /// Convenience constructor from a generator Instance (which owns the
  /// graph; the Instance must outlive the automaton).
  explicit LinkReversalBase(const Instance& instance)
      : LinkReversalBase(instance.graph, instance.make_orientation(), instance.destination) {}

  /// The fixed undirected graph G.
  const Graph& graph() const noexcept { return orientation_.graph(); }
  /// The current directed version G'.
  const Orientation& orientation() const noexcept { return orientation_; }
  /// The destination node D.
  NodeId destination() const noexcept { return destination_; }

  /// The paper's `dir[u, v]` addressed by edge, *initial* value (w.r.t.
  /// G'_init): kIn iff the other endpoint is in `in-nbrs_u`.
  Dir initial_dir(NodeId u, EdgeId e) const {
    const bool forward = initial_senses_[e] == EdgeSense::kForward;
    const bool u_is_smaller = graph().edge_u(e) == u;
    // Forward means smaller -> larger; the edge is *out* of u iff u is on
    // the tail side.
    return (forward == u_is_smaller) ? Dir::kOut : Dir::kIn;
  }

  /// True iff v was an initial in-neighbor of u (v ∈ in-nbrs_u).
  bool is_initial_in_neighbor(NodeId u, NodeId v) const {
    return initial_dir(u, graph().edge_between(u, v)) == Dir::kIn;
  }

  /// The paper's in-nbrs_u (ascending order).
  std::vector<NodeId> initial_in_neighbors(NodeId u) const {
    std::vector<NodeId> result;
    for (const Incidence& inc : graph().neighbors(u)) {
      if (initial_dir(u, inc.edge) == Dir::kIn) result.push_back(inc.neighbor);
    }
    return result;
  }

  /// The paper's out-nbrs_u (ascending order).
  std::vector<NodeId> initial_out_neighbors(NodeId u) const {
    std::vector<NodeId> result;
    for (const Incidence& inc : graph().neighbors(u)) {
      if (initial_dir(u, inc.edge) == Dir::kOut) result.push_back(inc.neighbor);
    }
    return result;
  }

  /// Sinks other than the destination — the nodes with an enabled reverse
  /// action in every automaton.  Ascending order for determinism.
  std::vector<NodeId> enabled_sinks() const { return sinks_excluding(orientation_, destination_); }

  /// True iff no reverse action is enabled.
  bool quiescent() const {
    for (const NodeId u : orientation_.sinks()) {
      if (u != destination_) return false;
    }
    return true;
  }

  /// True iff `u` is a non-destination sink (the common precondition).
  bool sink_enabled(NodeId u) const {
    return u < graph().num_nodes() && u != destination_ && orientation_.is_sink(u);
  }

 protected:
  /// Appends one byte per edge (the current sense) to `out` — the shared
  /// part of every automaton's state_fingerprint().
  void append_orientation_fingerprint(std::vector<std::uint8_t>& out) const {
    for (EdgeId e = 0; e < graph().num_edges(); ++e) {
      out.push_back(orientation_.sense(e) == EdgeSense::kForward ? 1 : 0);
    }
  }

 public:

 protected:
  Orientation orientation_;                ///< the mutable directed version G'
  NodeId destination_;                     ///< the destination D
  std::vector<EdgeSense> initial_senses_;  ///< G'_init, for the constant sets
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <vector>

#include "core/pr.hpp"

/// \file hybrid.hpp
/// Per-node strategy mixing: the game of Charron-Bost, Welch & Widder
/// ("Link reversal: how to play better to work less"), which the paper
/// cites to explain PR's practical advantage.
///
/// In the game, each node independently picks how much to reverse when it
/// fires as a sink: everything (the FR strategy) or only the edges not in
/// its list (the PR strategy).  A *profile* assigns one strategy per node;
/// all-FR and all-PR are the two uniform profiles.  A node's *cost* is the
/// number of times it fires before quiescence; the cited results are that
/// the all-FR profile is always a Nash equilibrium (no node can lower its
/// own cost by unilaterally switching to PR) yet has the largest social
/// cost among equilibria, while all-PR — when it is an equilibrium —
/// achieves the social optimum.  Experiment E3.4 and hybrid_game_test.cpp
/// verify these properties empirically.
///
/// The list bookkeeping is shared with PR: every reversal of the edge
/// {u, v} by u adds u to list[v], regardless of either node's strategy, so
/// a PR node correctly skips the neighbors that reversed towards it since
/// its last step even in mixed profiles.

namespace lr {

/// A node's per-step reversal strategy in the hybrid game.
enum class NodeStrategy : std::uint8_t {
  kFullReversal,     ///< fire like FR: reverse every incident edge
  kPartialReversal,  ///< fire like PR: reverse the non-listed edges
};

/// Per-node FR/PR strategy profiles over the shared PR list state — the
/// playable version of the cited Charron-Bost–Welch–Widder game.
class HybridStrategyAutomaton : public PartialReversalState {
 public:
  /// Actions are single nodes: reverse(u).
  using Action = NodeId;

  /// Builds the automaton with one strategy per node.
  HybridStrategyAutomaton(const Graph& g, Orientation initial, NodeId destination,
                          std::vector<NodeStrategy> strategies);

  /// Convenience constructor from a generator Instance.
  HybridStrategyAutomaton(const Instance& instance, std::vector<NodeStrategy> strategies)
      : HybridStrategyAutomaton(instance.graph, instance.make_orientation(),
                                instance.destination, std::move(strategies)) {}

  /// Uniform profiles.
  static std::vector<NodeStrategy> all_full(std::size_t n) {
    return std::vector<NodeStrategy>(n, NodeStrategy::kFullReversal);
  }
  /// \copydoc all_full
  static std::vector<NodeStrategy> all_partial(std::size_t n) {
    return std::vector<NodeStrategy>(n, NodeStrategy::kPartialReversal);
  }

  /// The strategy node `u` plays.
  NodeStrategy strategy(NodeId u) const { return strategies_[u]; }

  /// Precondition of reverse(u): u is a non-destination sink.
  bool enabled(NodeId u) const { return sink_enabled(u); }

  /// Fires sink `u` according to its own strategy.
  void apply(NodeId u);

 private:
  std::vector<NodeStrategy> strategies_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "automata/concepts.hpp"

/// \file model_check.hpp
/// Exhaustive state-space exploration for link-reversal automata.
///
/// The schedulers in scheduler.hpp sample *one* execution at a time; the
/// paper's safety claims quantify over **all** executions.  On small graphs
/// the reachable state space is finite and small enough to enumerate, so
/// this checker performs a DFS over every reachable state (following every
/// enabled action from every state) and verifies a user property in each.
/// A failure comes back with the exact action schedule that reaches the
/// violating state, so tests produce replayable counterexamples.
///
/// Requirements on the automaton: copyable, and it must expose a
/// `state_fingerprint()` returning a byte vector that uniquely identifies
/// its state (orientation + algorithm-specific variables).

namespace lr {

template <typename A>
concept Fingerprintable = requires(const A a) {
  { a.state_fingerprint() } -> std::convertible_to<std::vector<std::uint8_t>>;
};

struct ModelCheckResult {
  bool ok = true;
  std::size_t states_explored = 0;
  std::size_t transitions_explored = 0;
  std::string failure;                      ///< property's message at the violation
  std::vector<NodeId> counterexample;       ///< schedule reaching the violating state

  explicit operator bool() const noexcept { return ok; }
};

/// Explores every reachable state of `initial` (single-step automata).
///
/// \param property callable (const A&) -> std::string; empty string means
///        the property holds, non-empty is the violation message.
/// \param max_states exploration budget; exceeding it throws
///        std::runtime_error (the graph was too large to model-check).
template <SingleStepAutomaton A, typename Property>
  requires Fingerprintable<A>
ModelCheckResult model_check(const A& initial, Property&& property,
                             std::size_t max_states = 1'000'000) {
  ModelCheckResult result;

  struct Frame {
    A state;
    std::vector<NodeId> schedule;
  };

  std::set<std::vector<std::uint8_t>> visited;
  std::vector<Frame> stack;
  visited.insert(initial.state_fingerprint());
  stack.push_back(Frame{initial, {}});

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    ++result.states_explored;

    const std::string violation = property(frame.state);
    if (!violation.empty()) {
      result.ok = false;
      result.failure = violation;
      result.counterexample = frame.schedule;
      return result;
    }

    for (const NodeId u : frame.state.enabled_sinks()) {
      A next = frame.state;
      next.apply(u);
      ++result.transitions_explored;
      auto fingerprint = next.state_fingerprint();
      if (visited.insert(std::move(fingerprint)).second) {
        if (visited.size() > max_states) {
          throw std::runtime_error("model_check: state budget exceeded");
        }
        std::vector<NodeId> schedule = frame.schedule;
        schedule.push_back(u);
        stack.push_back(Frame{std::move(next), std::move(schedule)});
      }
    }
  }
  return result;
}

/// Convenience property combinator: all of the given properties.
template <typename... Properties>
auto all_properties(Properties&&... properties) {
  return [... props = std::forward<Properties>(properties)](const auto& state) -> std::string {
    std::string message;
    (void)((message = props(state), message.empty()) && ...);
    return message;
  };
}

}  // namespace lr

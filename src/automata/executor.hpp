#pragma once

#include <cstdint>
#include <stdexcept>

#include "automata/concepts.hpp"
#include "core/reversal_engine.hpp"
#include "graph/digraph_algos.hpp"

/// \file executor.hpp
/// Drives an automaton with a scheduler until quiescence (no enabled
/// action) or a step budget is exhausted.
///
/// Termination with a destination-oriented graph is the *goal* of link
/// reversal; the executor reports whether it was reached so tests can
/// assert it and benches can measure steps/reversals to get there.
///
/// Two execution paths share this entry point: the templated
/// automaton+scheduler drivers below (the paper-shaped legacy path, one
/// action per scheduler call), and an overload that hands the whole run to
/// the batched CSR engine (core/reversal_engine.hpp) — the production
/// path the scenario runner and benches default to.

namespace lr {

struct RunOptions {
  /// Hard step budget; a safety net against schedulers that livelock.
  std::uint64_t max_steps = 10'000'000;
};

struct RunResult {
  std::uint64_t steps = 0;             ///< actions fired (a set step counts as 1)
  std::uint64_t node_steps = 0;        ///< node-level reversal steps (|S| per set step)
  std::uint64_t edge_reversals = 0;    ///< single-edge reversals performed
  bool quiescent = false;              ///< scheduler found no enabled action
  bool destination_oriented = false;   ///< final graph is destination-oriented
};

/// Runs a single-step automaton to quiescence.  `observer(automaton, node)`
/// is invoked after every applied action; pass a lambda to check invariants
/// step-by-step or to record traces.
template <SingleStepAutomaton A, typename Scheduler, typename Observer>
  requires std::invocable<Observer&, const A&, NodeId>
RunResult run_to_quiescence(A& automaton, Scheduler& scheduler, Observer&& observer,
                            const RunOptions& options = {}) {
  RunResult result;
  const std::uint64_t reversals_before = automaton.orientation().reversal_count();
  while (result.steps < options.max_steps) {
    const auto action = scheduler.choose(automaton);
    if (!action) {
      result.quiescent = true;
      break;
    }
    automaton.apply(*action);
    ++result.steps;
    ++result.node_steps;
    observer(automaton, *action);
  }
  result.edge_reversals = automaton.orientation().reversal_count() - reversals_before;
  result.destination_oriented =
      is_destination_oriented(automaton.orientation(), automaton.destination());
  return result;
}

template <SingleStepAutomaton A, typename Scheduler>
RunResult run_to_quiescence(A& automaton, Scheduler& scheduler, const RunOptions& options = {}) {
  return run_to_quiescence(
      automaton, scheduler, [](const A&, NodeId) {}, options);
}

/// Runs a set-step automaton to quiescence (PR's reverse(S) signature).
template <SetStepAutomaton A, typename Scheduler, typename Observer>
  requires std::invocable<Observer&, const A&, const std::vector<NodeId>&>
RunResult run_to_quiescence_set(A& automaton, Scheduler& scheduler, Observer&& observer,
                                const RunOptions& options = {}) {
  RunResult result;
  const std::uint64_t reversals_before = automaton.orientation().reversal_count();
  while (result.steps < options.max_steps) {
    const auto action = scheduler.choose(automaton);
    if (!action) {
      result.quiescent = true;
      break;
    }
    automaton.apply(*action);
    ++result.steps;
    result.node_steps += action->size();
    observer(automaton, *action);
  }
  result.edge_reversals = automaton.orientation().reversal_count() - reversals_before;
  result.destination_oriented =
      is_destination_oriented(automaton.orientation(), automaton.destination());
  return result;
}

template <SetStepAutomaton A, typename Scheduler>
RunResult run_to_quiescence_set(A& automaton, Scheduler& scheduler,
                                const RunOptions& options = {}) {
  return run_to_quiescence_set(
      automaton, scheduler, [](const A&, const std::vector<NodeId>&) {}, options);
}

/// Batched CSR path: executes `algorithm` under `policy` on the engine and
/// reports the familiar RunResult.  Performs the identical action sequence
/// as the corresponding automaton + scheduler pair above (the engine's
/// equivalence contract), just without per-step dispatch.
/// `scheduler_seed` feeds EnginePolicy::kRandom and is ignored otherwise.
inline RunResult run_to_quiescence(ReversalEngine& engine, EngineAlgorithm algorithm,
                                   EnginePolicy policy, const RunOptions& options = {},
                                   std::uint64_t scheduler_seed = 0) {
  const EngineResult result = engine.run(
      algorithm, policy, {.max_steps = options.max_steps, .scheduler_seed = scheduler_seed});
  RunResult out;
  out.steps = result.steps;
  out.node_steps = result.steps;  // single-step actions: one node per step
  out.edge_reversals = result.edge_reversals;
  out.quiescent = result.quiescent;
  out.destination_oriented = result.destination_oriented;
  return out;
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "automata/concepts.hpp"

/// \file simulation.hpp
/// Mechanical checking of forward simulation relations (Section 5).
///
/// A forward simulation from concrete automaton C to abstract automaton B
/// consists of a relation R over (state of C, state of B) such that
///  (a) related initial states exist, and
///  (b) for every concrete step from an R-related pair there is a finite
///      abstract step sequence re-establishing R (Lemmas 5.1 / 5.3).
///
/// The checker below validates (b) *along an execution*: it drives the
/// concrete automaton with a scheduler, asks a step-correspondence function
/// for the matching abstract action sequence, applies both, and verifies R
/// after every matched pair.  This does not constitute a proof (the paper
/// supplies that); it is the executable counterpart that catches any
/// implementation divergence from the paper's argument.

namespace lr {

struct SimulationCheckResult {
  bool ok = true;
  std::uint64_t concrete_steps = 0;   ///< concrete actions fired
  std::uint64_t abstract_steps = 0;   ///< abstract actions fired in response
  std::string failure;                ///< human-readable diagnosis when !ok

  explicit operator bool() const noexcept { return ok; }
};

/// Checks a forward simulation along one execution.
///
/// \param concrete   the low-level automaton (e.g. PR)
/// \param abstract   the high-level automaton (e.g. OneStepPR)
/// \param scheduler  drives the concrete automaton; any scheduler type whose
///                   choose(concrete) yields std::optional<C::Action>
/// \param relation   callable (const C&, const B&) -> bool, the relation R
/// \param correspond callable (const C&, const C::Action&, const B&)
///                   -> std::vector<B::Action>, Lemma 5.x's step mapping,
///                   evaluated *before* the concrete step fires
/// \param max_steps  execution length bound
template <typename C, typename B, typename Scheduler, typename Relation, typename Correspondence>
SimulationCheckResult check_forward_simulation(C& concrete, B& abstract, Scheduler& scheduler,
                                               Relation&& relation, Correspondence&& correspond,
                                               std::uint64_t max_steps = 1'000'000) {
  SimulationCheckResult result;
  if (!relation(concrete, abstract)) {
    result.ok = false;
    result.failure = "relation does not hold between the initial states";
    return result;
  }
  while (result.concrete_steps < max_steps) {
    const auto action = scheduler.choose(concrete);
    if (!action) break;  // concrete automaton quiescent under this scheduler

    const auto abstract_actions = correspond(concrete, *action, abstract);

    concrete.apply(*action);
    ++result.concrete_steps;

    for (const auto& abstract_action : abstract_actions) {
      if (!abstract.enabled(abstract_action)) {
        result.ok = false;
        std::ostringstream oss;
        oss << "abstract action not enabled at concrete step " << result.concrete_steps;
        result.failure = oss.str();
        return result;
      }
      abstract.apply(abstract_action);
      ++result.abstract_steps;
    }

    if (!relation(concrete, abstract)) {
      result.ok = false;
      std::ostringstream oss;
      oss << "relation violated after concrete step " << result.concrete_steps << " ("
          << abstract_actions.size() << " abstract steps applied)";
      result.failure = oss.str();
      return result;
    }
  }
  return result;
}

}  // namespace lr

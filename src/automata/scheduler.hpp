#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <random>
#include <vector>

#include "automata/concepts.hpp"
#include "graph/digraph_algos.hpp"

/// \file scheduler.hpp
/// Schedulers resolve the nondeterminism of the I/O-automaton model: at
/// each point they choose which enabled action fires next.  The paper's
/// safety results (acyclicity, the invariants, the simulation relations)
/// must hold under *every* scheduler, so the test suite sweeps all of the
/// strategies below; the work/convergence experiments (E2, E3, E6) compare
/// them quantitatively.
///
/// A single-step scheduler's `choose(automaton)` returns the next node to
/// fire, or nullopt when the automaton is quiescent.  A set scheduler
/// returns a non-empty set of sinks (pairwise non-adjacent automatically:
/// no two neighbors can both be sinks).
///
/// These schedulers are the *reference* path: one observable action per
/// choose() call, so invariant checkers, traces, and the model checker can
/// watch every intermediate state.  Production sweeps and benches run the
/// batched CSR engine instead (core/reversal_engine.hpp), whose
/// EnginePolicy values reproduce the exact choice sequences of
/// LowestIdScheduler / RandomScheduler / RoundRobinScheduler /
/// FarthestFirstScheduler over a flat sink worklist — the two paths are
/// interchangeable by construction and tests/reversal_engine_test.cpp
/// keeps them that way.

namespace lr {

/// Picks uniformly at random among enabled sinks.
class RandomScheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  template <SingleStepAutomaton A>
  std::optional<NodeId> choose(const A& automaton) {
    const auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    std::uniform_int_distribution<std::size_t> pick(0, sinks.size() - 1);
    return sinks[pick(rng_)];
  }

 private:
  std::mt19937_64 rng_;
};

/// Deterministic: always fires the smallest-id enabled sink.
class LowestIdScheduler {
 public:
  template <SingleStepAutomaton A>
  std::optional<NodeId> choose(const A& automaton) const {
    const auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    return *std::min_element(sinks.begin(), sinks.end());
  }
};

/// Round-robin: cycles through node ids, firing the next enabled sink at
/// or after the cursor.  Models a fair scheduler.
class RoundRobinScheduler {
 public:
  template <SingleStepAutomaton A>
  std::optional<NodeId> choose(const A& automaton) {
    const std::size_t n = automaton.graph().num_nodes();
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId candidate = static_cast<NodeId>((cursor_ + i) % n);
      if (candidate != automaton.destination() && automaton.enabled(candidate)) {
        cursor_ = (candidate + 1) % n;
        return candidate;
      }
    }
    return std::nullopt;
  }

 private:
  std::size_t cursor_ = 0;
};

/// Adversarial heuristic: fires the enabled sink whose undirected distance
/// to the destination is largest (ties by id).  Reversal work tends to grow
/// with how far disorder is from the destination, so this approximates a
/// work-maximizing adversary for experiment E2/E6.
class FarthestFirstScheduler {
 public:
  template <SingleStepAutomaton A>
  std::optional<NodeId> choose(const A& automaton) {
    if (distance_.empty()) compute_distances(automaton.graph(), automaton.destination());
    const auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    return *std::max_element(sinks.begin(), sinks.end(), [this](NodeId a, NodeId b) {
      return std::pair(distance_[a], a) < std::pair(distance_[b], b);
    });
  }

 private:
  void compute_distances(const Graph& g, NodeId destination) {
    distance_.assign(g.num_nodes(), std::numeric_limits<std::size_t>::max());
    std::queue<NodeId> frontier;
    distance_[destination] = 0;
    frontier.push(destination);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const Incidence& inc : g.neighbors(u)) {
        if (distance_[inc.neighbor] == std::numeric_limits<std::size_t>::max()) {
          distance_[inc.neighbor] = distance_[u] + 1;
          frontier.push(inc.neighbor);
        }
      }
    }
  }

  std::vector<std::size_t> distance_;
};

/// Replays a fixed node sequence; `choose` fails (returns nullopt) past the
/// end or if the scripted node is not enabled.  Used by trace replay and by
/// the simulation-relation checker to drive two automata identically.
class ReplayScheduler {
 public:
  explicit ReplayScheduler(std::vector<NodeId> script) : script_(std::move(script)) {}

  template <SingleStepAutomaton A>
  std::optional<NodeId> choose(const A& automaton) {
    if (next_ >= script_.size()) return std::nullopt;
    const NodeId u = script_[next_];
    if (!automaton.enabled(u)) return std::nullopt;
    ++next_;
    return u;
  }

  std::size_t consumed() const noexcept { return next_; }

 private:
  std::vector<NodeId> script_;
  std::size_t next_ = 0;
};

/// Fairness-maximizing: fires the enabled sink that has waited longest
/// since it last fired (never-fired nodes first, by id).  Models the
/// "oldest request first" policies common in real schedulers.
class LeastRecentlyFiredScheduler {
 public:
  template <SingleStepAutomaton A>
  std::optional<NodeId> choose(const A& automaton) {
    const auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    if (last_fired_.size() < automaton.graph().num_nodes()) {
      last_fired_.assign(automaton.graph().num_nodes(), 0);
    }
    const NodeId pick = *std::min_element(
        sinks.begin(), sinks.end(), [this](NodeId a, NodeId b) {
          return std::pair(last_fired_[a], a) < std::pair(last_fired_[b], b);
        });
    last_fired_[pick] = ++clock_;
    return pick;
  }

 private:
  std::vector<std::uint64_t> last_fired_;
  std::uint64_t clock_ = 0;
};

/// Degree-greedy: fires the enabled sink with the most incident edges
/// (ties by id).  Maximizes the number of edges flipped per PR/FR step; a
/// useful contrast scheduler for the convergence experiments.
class MaxDegreeScheduler {
 public:
  template <SingleStepAutomaton A>
  std::optional<NodeId> choose(const A& automaton) const {
    const auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    const Graph& g = automaton.graph();
    return *std::max_element(sinks.begin(), sinks.end(), [&g](NodeId a, NodeId b) {
      return std::pair(g.degree(a), a) < std::pair(g.degree(b), b);
    });
  }
};

// ---------------------------------------------------------------------------
// Set schedulers (for the paper's PR automaton, Algorithm 1)
// ---------------------------------------------------------------------------

/// Fires *all* current sinks together — the maximal concurrent step.  This
/// is the "greedy" execution studied in the link-reversal literature, where
/// executions proceed in rounds.
class MaximalSetScheduler {
 public:
  template <SetStepAutomaton A>
  std::optional<std::vector<NodeId>> choose(const A& automaton) const {
    auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    return sinks;
  }
};

/// Fires a uniformly random non-empty subset of the current sinks.
class RandomSetScheduler {
 public:
  explicit RandomSetScheduler(std::uint64_t seed) : rng_(seed) {}

  template <SetStepAutomaton A>
  std::optional<std::vector<NodeId>> choose(const A& automaton) {
    const auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    std::vector<NodeId> subset;
    std::bernoulli_distribution flip(0.5);
    for (const NodeId u : sinks) {
      if (flip(rng_)) subset.push_back(u);
    }
    if (subset.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, sinks.size() - 1);
      subset.push_back(sinks[pick(rng_)]);
    }
    return subset;
  }

 private:
  std::mt19937_64 rng_;
};

/// Fires one random sink at a time through the set interface (singleton
/// sets); the set-automaton analogue of RandomScheduler.
class SingletonSetScheduler {
 public:
  explicit SingletonSetScheduler(std::uint64_t seed) : rng_(seed) {}

  template <SetStepAutomaton A>
  std::optional<std::vector<NodeId>> choose(const A& automaton) {
    const auto sinks = automaton.enabled_sinks();
    if (sinks.empty()) return std::nullopt;
    std::uniform_int_distribution<std::size_t> pick(0, sinks.size() - 1);
    return std::vector<NodeId>{sinks[pick(rng_)]};
  }

 private:
  std::mt19937_64 rng_;
};

}  // namespace lr

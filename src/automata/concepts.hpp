#pragma once

#include <concepts>
#include <vector>

#include "graph/graph.hpp"
#include "graph/orientation.hpp"

/// \file concepts.hpp
/// Compile-time interface for link-reversal I/O automata.
///
/// The paper models each algorithm (PR, OneStepPR, NewPR) as a single I/O
/// automaton in the style of Lynch's *Distributed Algorithms*: a state, a
/// set of actions, a precondition per action, and an effect per action.
/// Our automata expose exactly that shape:
///
///  * `Action`           — the action type (a node for one-step automata, a
///                          node set for PR's `reverse(S)`),
///  * `enabled(a)`        — the precondition,
///  * `apply(a)`          — the effect (precondition must hold),
///  * `enabled_sinks()`   — the sinks other than the destination, from
///                          which schedulers assemble actions,
///  * `quiescent()`       — no action is enabled.
///
/// Automata are regular values: copyable so that invariant checkers and the
/// simulation-relation framework can snapshot states.

namespace lr {

/// One-step automata: an action is a single node performing reverse(u).
template <typename A>
concept SingleStepAutomaton = requires(A a, const A ca, NodeId u) {
  requires std::same_as<typename A::Action, NodeId>;
  { ca.graph() } -> std::convertible_to<const Graph&>;
  { ca.orientation() } -> std::convertible_to<const Orientation&>;
  { ca.destination() } -> std::convertible_to<NodeId>;
  { ca.enabled(u) } -> std::convertible_to<bool>;
  { a.apply(u) };
  { ca.enabled_sinks() } -> std::convertible_to<std::vector<NodeId>>;
  { ca.quiescent() } -> std::convertible_to<bool>;
};

/// Set-step automata: an action is a non-empty set of sinks stepping
/// together, as in the paper's PR signature reverse(S).
template <typename A>
concept SetStepAutomaton = requires(A a, const A ca, const std::vector<NodeId>& s) {
  requires std::same_as<typename A::Action, std::vector<NodeId>>;
  { ca.graph() } -> std::convertible_to<const Graph&>;
  { ca.orientation() } -> std::convertible_to<const Orientation&>;
  { ca.destination() } -> std::convertible_to<NodeId>;
  { ca.enabled(s) } -> std::convertible_to<bool>;
  { a.apply(s) };
  { ca.enabled_sinks() } -> std::convertible_to<std::vector<NodeId>>;
  { ca.quiescent() } -> std::convertible_to<bool>;
};

template <typename A>
concept LinkReversalAutomaton = SingleStepAutomaton<A> || SetStepAutomaton<A>;

}  // namespace lr

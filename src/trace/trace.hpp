#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/orientation.hpp"

/// \file trace.hpp
/// Execution tracing: record the action sequence (and per-step edge
/// reversals) of any link-reversal execution, export it as CSV, and replay
/// it deterministically through a ReplayScheduler.  A trace is a finite
/// execution of the paper's Section 2 I/O automata made concrete; replay
/// is what lets the simulation-relation checkers (Section 5) and failing
/// property tests re-drive the exact same schedule.  Arbitrary-schema
/// result tables live next door in report.hpp.

namespace lr {

/// One fired action.
struct TraceEvent {
  std::uint64_t step = 0;              ///< 0-based action index
  std::vector<NodeId> nodes;           ///< fired node(s); singleton unless a set step
  std::uint64_t edges_reversed = 0;    ///< edge flips caused by this action
  std::uint64_t sinks_after = 0;       ///< enabled sinks remaining afterwards
};

/// Records an execution.  Use `single_observer()` / `set_observer()` as the
/// run_to_quiescence observer.
class TraceRecorder {
 public:
  /// Single-step observer: call after every applied action.
  template <typename A>
  void on_step(const A& automaton, NodeId u) {
    record(automaton, std::vector<NodeId>{u});
  }

  /// Set-step observer.
  template <typename A>
  void on_set_step(const A& automaton, const std::vector<NodeId>& s) {
    record(automaton, s);
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Flattened node script (set steps expanded in order) — feed to
  /// ReplayScheduler to reproduce a one-step execution.
  std::vector<NodeId> node_script() const;

  /// Writes "step,nodes,edges_reversed,sinks_after" rows.
  void write_csv(std::ostream& os) const;

  void clear() { events_.clear(); }

 private:
  template <typename A>
  void record(const A& automaton, std::vector<NodeId> nodes) {
    TraceEvent event;
    event.step = events_.size();
    event.nodes = std::move(nodes);
    const std::uint64_t reversals = automaton.orientation().reversal_count();
    event.edges_reversed = reversals - last_reversal_count_;
    last_reversal_count_ = reversals;
    event.sinks_after = automaton.enabled_sinks().size();
    events_.push_back(std::move(event));
  }

  std::vector<TraceEvent> events_;
  std::uint64_t last_reversal_count_ = 0;
};

/// Parses a CSV produced by write_csv back into events (round-trip support
/// for offline analysis).  Throws std::invalid_argument on malformed input.
std::vector<TraceEvent> read_trace_csv(std::istream& is);

}  // namespace lr

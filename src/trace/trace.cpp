#include "trace/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lr {

std::vector<NodeId> TraceRecorder::node_script() const {
  std::vector<NodeId> script;
  for (const TraceEvent& event : events_) {
    script.insert(script.end(), event.nodes.begin(), event.nodes.end());
  }
  return script;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "step,nodes,edges_reversed,sinks_after\n";
  for (const TraceEvent& event : events_) {
    os << event.step << ',';
    for (std::size_t i = 0; i < event.nodes.size(); ++i) {
      if (i > 0) os << ' ';
      os << event.nodes[i];
    }
    os << ',' << event.edges_reversed << ',' << event.sinks_after << '\n';
  }
}

std::vector<TraceEvent> read_trace_csv(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  if (!std::getline(is, line)) return events;  // empty stream: no events
  if (line != "step,nodes,edges_reversed,sinks_after") {
    throw std::invalid_argument("read_trace_csv: missing or malformed header");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string step_str, nodes_str, reversed_str, sinks_str;
    if (!std::getline(fields, step_str, ',') || !std::getline(fields, nodes_str, ',') ||
        !std::getline(fields, reversed_str, ',') || !std::getline(fields, sinks_str)) {
      throw std::invalid_argument("read_trace_csv: malformed row: " + line);
    }
    TraceEvent event;
    event.step = std::stoull(step_str);
    std::istringstream nodes(nodes_str);
    NodeId node = 0;
    while (nodes >> node) event.nodes.push_back(node);
    if (event.nodes.empty()) {
      throw std::invalid_argument("read_trace_csv: row with no nodes: " + line);
    }
    event.edges_reversed = std::stoull(reversed_str);
    event.sinks_after = std::stoull(sinks_str);
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace lr

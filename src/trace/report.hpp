#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file report.hpp
/// Machine-readable result tables: the string-cell `Table` every harness
/// layer aggregates into, with CSV writer/reader (lossless round-trip) and
/// a JSON writer.  This generalizes trace.hpp's fixed-schema CSV to the
/// arbitrary schemas the scenario runner (src/runner) and the experiment
/// harnesses (bench_e1..e8, docs/EXPERIMENTS.md) emit, so single runs and
/// swept runs share one output path.

namespace lr {

/// A rectangular result table: named columns plus string-typed rows.
///
/// Cells are stored as strings so one schema serves every experiment; the
/// writers below apply CSV quoting / JSON typing at the boundary.  Every
/// row must have exactly `columns.size()` cells (the writers throw
/// std::invalid_argument otherwise).
struct Table {
  std::vector<std::string> columns;             ///< header, left to right
  std::vector<std::vector<std::string>> rows;   ///< cells, row-major

  /// Appends one row.  Throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> cells);

  bool operator==(const Table&) const = default;
};

/// Writes the table as RFC-4180-style CSV: header row first; cells
/// containing commas, quotes, or newlines are double-quoted with embedded
/// quotes doubled.  write_table_csv and read_table_csv round-trip exactly.
void write_table_csv(std::ostream& os, const Table& table);

/// Parses CSV produced by write_table_csv (quoting included) back into a
/// Table.  Throws std::invalid_argument on malformed input (unterminated
/// quote, ragged row).
Table read_table_csv(std::istream& is);

/// Writes the table as a JSON array of row objects keyed by column name.
/// Cells that parse fully as decimal integers or simple floats are emitted
/// as JSON numbers; everything else as JSON strings (with escaping).
/// Integers longer than 15 digits stay strings so values above 2^53 (e.g.
/// 64-bit run seeds) are not rounded by double-backed JSON parsers.
void write_table_json(std::ostream& os, const Table& table);

}  // namespace lr

#include "trace/report.hpp"

#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lr {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns.size()) {
    throw std::invalid_argument("Table::add_row: expected " + std::to_string(columns.size()) +
                                " cells, got " + std::to_string(cells.size()));
  }
  rows.push_back(std::move(cells));
}

namespace {

bool needs_csv_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (!needs_csv_quoting(cell)) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    write_csv_cell(os, cells[i]);
  }
  os << '\n';
}

/// Reads one CSV record (handling quoted cells spanning separators);
/// returns false on end of input with no record started.
bool read_csv_row(std::istream& is, std::vector<std::string>& cells) {
  cells.clear();
  int c = is.get();
  if (c == std::istream::traits_type::eof()) return false;
  std::string cell;
  bool in_quotes = false;
  while (true) {
    if (c == std::istream::traits_type::eof()) {
      if (in_quotes) throw std::invalid_argument("read_table_csv: unterminated quoted cell");
      cells.push_back(std::move(cell));
      return true;
    }
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (is.peek() == '"') {
          cell.push_back('"');
          is.get();
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(ch);
      }
    } else if (ch == '"' && cell.empty()) {
      in_quotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch == '\n') {
      cells.push_back(std::move(cell));
      return true;
    } else if (ch != '\r') {
      cell.push_back(ch);
    }
    c = is.get();
  }
}

/// True iff `cell` is a JSON-safe number literal: optional minus, digits,
/// optional fraction; rejects leading zeros oddities conservatively by
/// accepting them (JSON allows 0.5, forbids 01 — we only emit what we can
/// parse back, so forbid a leading zero followed by more digits).
/// Integers longer than 15 digits are emitted as strings instead: they can
/// exceed 2^53, which double-backed JSON parsers would silently round
/// (64-bit run seeds must survive a JSON round trip bit-exactly).
bool is_json_number(const std::string& cell) {
  std::size_t i = 0;
  if (i < cell.size() && cell[i] == '-') ++i;
  const std::size_t int_begin = i;
  while (i < cell.size() && std::isdigit(static_cast<unsigned char>(cell[i]))) ++i;
  if (i == int_begin) return false;
  if (i - int_begin > 1 && cell[int_begin] == '0') return false;
  if (i == cell.size() && i - int_begin > 15) return false;
  if (i < cell.size() && cell[i] == '.') {
    ++i;
    const std::size_t frac_begin = i;
    while (i < cell.size() && std::isdigit(static_cast<unsigned char>(cell[i]))) ++i;
    if (i == frac_begin) return false;
  }
  return i == cell.size();
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void check_rectangular(const Table& table) {
  for (const auto& row : table.rows) {
    if (row.size() != table.columns.size()) {
      throw std::invalid_argument("table row width does not match column count");
    }
  }
}

}  // namespace

void write_table_csv(std::ostream& os, const Table& table) {
  check_rectangular(table);
  write_csv_row(os, table.columns);
  for (const auto& row : table.rows) write_csv_row(os, row);
}

Table read_table_csv(std::istream& is) {
  Table table;
  if (!read_csv_row(is, table.columns)) {
    throw std::invalid_argument("read_table_csv: empty input (no header row)");
  }
  std::vector<std::string> cells;
  while (read_csv_row(is, cells)) {
    if (cells.size() != table.columns.size()) {
      throw std::invalid_argument("read_table_csv: row has " + std::to_string(cells.size()) +
                                  " cells, header has " + std::to_string(table.columns.size()));
    }
    table.rows.push_back(cells);
  }
  return table;
}

void write_table_json(std::ostream& os, const Table& table) {
  check_rectangular(table);
  os << "[\n";
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      if (c != 0) os << ", ";
      write_json_string(os, table.columns[c]);
      os << ": ";
      const std::string& cell = table.rows[r][c];
      if (is_json_number(cell)) {
        os << cell;
      } else {
        write_json_string(os, cell);
      }
    }
    os << (r + 1 == table.rows.size() ? "}\n" : "},\n");
  }
  os << "]\n";
}

}  // namespace lr

#include "runner/process_runner.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/shard_coordinator.hpp"
#include "runner/shard_protocol.hpp"

// The parent-side dataplane (fork/exec, pipes, poll loop, watchdogs,
// retries) lives in runner/shard_transport.cpp (ProcessShardTransport)
// and runner/shard_coordinator.cpp (ShardCoordinator); this file keeps
// the worker side of the pipe contract and the thin ProcessShardRunner
// facade over the shared coordinator.

namespace lr {

namespace {

// ---------------------------------------------------------------------------
// Worker side: fault injection hooks + the sweep-worker entry point
// ---------------------------------------------------------------------------

/// Parsed LR_TEST_WORKER_FAULT: `kind:shard[:attempts]`.
struct FaultSpec {
  enum class Kind { kNone, kExit, kSegv, kTruncate, kStall };
  Kind kind = Kind::kNone;
  bool armed = false;  ///< fires in this worker attempt
};

/// Reads the fault knob; arms it when this worker's shard matches and
/// the attempt is within the knob's count (default 1, so a retried
/// shard succeeds unless the knob says otherwise).
FaultSpec parse_fault_env(std::size_t shard, std::size_t attempt) {
  const char* env = std::getenv("LR_TEST_WORKER_FAULT");
  if (env == nullptr || *env == '\0') return {};
  const std::string text(env);
  const std::size_t first = text.find(':');
  if (first == std::string::npos) {
    std::fprintf(stderr, "error: malformed LR_TEST_WORKER_FAULT '%s' (want kind:shard[:attempts])\n",
                 env);
    ::_exit(2);
  }
  const std::string kind_token = text.substr(0, first);
  std::string rest = text.substr(first + 1);
  std::uint64_t attempts = 1;
  const std::size_t second = rest.find(':');
  if (second != std::string::npos) {
    attempts = std::strtoull(rest.c_str() + second + 1, nullptr, 10);
    rest.resize(second);
  }
  const std::uint64_t target = std::strtoull(rest.c_str(), nullptr, 10);
  FaultSpec fault;
  if (kind_token == "exit") {
    fault.kind = FaultSpec::Kind::kExit;
  } else if (kind_token == "segv") {
    fault.kind = FaultSpec::Kind::kSegv;
  } else if (kind_token == "truncate") {
    fault.kind = FaultSpec::Kind::kTruncate;
  } else if (kind_token == "stall") {
    fault.kind = FaultSpec::Kind::kStall;
  } else {
    std::fprintf(stderr, "error: unknown LR_TEST_WORKER_FAULT kind '%s'\n", kind_token.c_str());
    ::_exit(2);
  }
  fault.armed = target == shard && attempt < attempts;
  return fault;
}

/// Full write to stdout; a dead parent (EPIPE) just ends the worker.
void write_all_stdout(const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(STDOUT_FILENO, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(1);  // parent is gone; nothing useful left to do
    }
    written += static_cast<std::size_t>(n);
  }
}

void write_frame_bytes(const std::vector<std::uint8_t>& bytes) {
  write_all_stdout(bytes.data(), bytes.size());
}

/// Injects the armed fault mid-shard.  Every branch leaves the process.
[[noreturn]] void trigger_fault(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kExit:
      ::_exit(3);
    case FaultSpec::Kind::kSegv:
      ::raise(SIGSEGV);
      ::_exit(3);  // unreachable unless SIGSEGV is blocked
    case FaultSpec::Kind::kTruncate: {
      // A syntactically valid header promising a 64-byte record payload,
      // followed by only 8 payload bytes and EOF: the parent must
      // classify this as a truncated frame, never a clean shard end.
      std::vector<std::uint8_t> bytes;
      for (int byte = 0; byte < 4; ++byte) bytes.push_back((kFrameMagic >> (8 * byte)) & 0xffu);
      bytes.push_back(static_cast<std::uint8_t>(FrameType::kRecord));
      bytes.push_back(64);
      bytes.push_back(0);
      bytes.push_back(0);
      bytes.push_back(0);
      for (int i = 0; i < 8; ++i) bytes.push_back(0xabu);
      write_frame_bytes(bytes);
      ::_exit(0);
    }
    case FaultSpec::Kind::kStall:
      for (;;) ::sleep(1);  // parked until the parent's watchdog kills us
    case FaultSpec::Kind::kNone:
      break;
  }
  ::_exit(3);
}

int worker_argv_error(const std::string& why) {
  std::fprintf(stderr,
               "error: %s\n"
               "sweep-worker is an internal subcommand: ProcessShardRunner spawns it as\n"
               "  <binary> sweep-worker --shard I --range B:E --total R --attempt A"
               " --threads T --cache-cap C [--snapshot-dir D]\n"
               "with the sweep spec on stdin and binary shard frames on stdout.\n"
               "To run a multi-process sweep, use: lr_cli sweep <spec> --processes N\n",
               why.c_str());
  return 2;
}

}  // namespace

int sweep_worker_main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "sweep-worker") != 0) {
    return worker_argv_error("sweep_worker_main invoked without the sweep-worker subcommand");
  }
  if (std::getenv("LR_SWEEP_WORKER") == nullptr) {
    return worker_argv_error(
        "direct invocation rejected: sweep-worker emits binary frames for a parent process");
  }

  std::optional<std::size_t> shard, total, attempt;
  std::optional<ShardRange> range;
  std::size_t threads = 1;
  std::size_t cache_cap = 0;
  std::string snapshot_dir;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return worker_argv_error("flag '" + flag + "' is missing its value");
    const std::string value = argv[++i];
    char* end = nullptr;
    if (flag == "--snapshot-dir") {
      snapshot_dir = value;
      continue;
    }
    if (flag == "--range") {
      const std::size_t begin = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != ':') return worker_argv_error("bad --range '" + value + "'");
      const std::size_t stop = std::strtoull(end + 1, &end, 10);
      if (*end != '\0' || stop < begin) return worker_argv_error("bad --range '" + value + "'");
      range = ShardRange{begin, stop};
      continue;
    }
    const std::size_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0' || value[0] == '-') {
      return worker_argv_error("flag '" + flag + "' needs a non-negative integer, got '" + value +
                               "'");
    }
    if (flag == "--shard") {
      shard = parsed;
    } else if (flag == "--total") {
      total = parsed;
    } else if (flag == "--attempt") {
      attempt = parsed;
    } else if (flag == "--threads") {
      threads = parsed;
    } else if (flag == "--cache-cap") {
      cache_cap = parsed;
    } else {
      return worker_argv_error("unknown flag '" + flag + "'");
    }
  }
  if (!shard || !range || !total || !attempt) {
    return worker_argv_error("missing required flag (--shard, --range, --total, --attempt)");
  }

  const std::string spec_text((std::istreambuf_iterator<char>(std::cin)),
                              std::istreambuf_iterator<char>());
  std::vector<RunSpec> runs;
  try {
    runs = SweepSpec::parse_string(spec_text).expand();
  } catch (const std::exception& error) {
    return worker_argv_error(std::string("cannot parse sweep spec from stdin: ") + error.what());
  }
  // The parent and worker must agree exactly on the expansion before a
  // single run executes — a drifted binary silently computing different
  // run indexes would corrupt the merge.
  if (runs.size() != *total) {
    return worker_argv_error("spec expands to " + std::to_string(runs.size()) +
                             " runs but parent expected " + std::to_string(*total));
  }
  if (range->end > runs.size()) {
    return worker_argv_error("--range end " + std::to_string(range->end) +
                             " exceeds the sweep's " + std::to_string(runs.size()) + " runs");
  }

  HelloFrame hello;
  hello.shard = *shard;
  hello.begin = range->begin;
  hello.end = range->end;
  hello.attempt = *attempt;
  write_frame_bytes(encode_frame(hello));

  const FaultSpec fault = parse_fault_env(*shard, *attempt);
  const std::size_t count = range->size();
  const std::size_t fault_at = count / 2;  // mid-shard, by emitted-record count

  // Shared-nothing execution: this process's own cache and pool, reused
  // across the shard's chunks.  Chunking keeps the parent's inactivity
  // watchdog honest (frames flow long before the shard finishes) while
  // still letting --threads parallelize inside a chunk.
  constexpr std::size_t kChunk = 16;
  const ScenarioRunner runner({.threads = threads == 0 ? 0 : threads,
                               .cache_max_entries = cache_cap});
  SweepCache cache(cache_cap, snapshot_dir);
  std::size_t emitted = 0;
  for (std::size_t offset = range->begin; offset < range->end; offset += kChunk) {
    const std::size_t stop = std::min(offset + kChunk, range->end);
    const std::vector<RunSpec> slice(runs.begin() + static_cast<std::ptrdiff_t>(offset),
                                     runs.begin() + static_cast<std::ptrdiff_t>(stop));
    const std::vector<RunRecord> records = runner.run_all(slice, cache);
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (fault.armed && emitted == fault_at) trigger_fault(fault.kind);
      RecordFrame frame;
      frame.global_index = offset + i;
      frame.record = records[i];
      write_frame_bytes(encode_frame(frame));
      ++emitted;
    }
  }

  ShardDoneFrame done;
  done.records_emitted = emitted;
  done.cache = {cache.entries(), cache.hits(), cache.misses(), cache.evictions()};
  write_frame_bytes(encode_frame(done));
  return 0;
}

// ---------------------------------------------------------------------------
// Parent side: ProcessShardRunner
// ---------------------------------------------------------------------------

ProcessShardRunner::ProcessShardRunner(RunnerOptions options, std::string worker_command)
    : options_(options), worker_command_(std::move(worker_command)) {
  if (options_.process_workers == 0) {
    throw std::invalid_argument(
        "ProcessShardRunner: process_workers must be >= 1 (0 means in-process; use "
        "ScenarioRunner)");
  }
}

std::size_t ProcessShardRunner::resolved_workers(std::size_t runs) const noexcept {
  return std::min(options_.process_workers, runs);
}

SweepReport ProcessShardRunner::run(const SweepSpec& spec) {
  CoordinatorOptions coordinator_options;
  coordinator_options.retry.max_attempts = 1 + options_.worker_retries;
  coordinator_options.timeout_ms = options_.worker_timeout_ms;
  coordinator_options.label = "multi-process sweep";
  coordinator_options.threads = options_.threads;
  coordinator_options.cache_cap = options_.cache_max_entries;
  coordinator_options.snapshot_dir = options_.snapshot_dir;
  ShardCoordinator coordinator(
      std::move(coordinator_options),
      {std::make_shared<ProcessShardTransport>(options_.process_workers, worker_command_)});
  try {
    SweepReport report = coordinator.run(spec);
    diagnostics_ = coordinator.shard_diagnostics();
    return report;
  } catch (...) {
    diagnostics_ = coordinator.shard_diagnostics();
    throw;
  }
}

}  // namespace lr

#include "runner/process_runner.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/shard_protocol.hpp"

namespace lr {

std::vector<ShardRange> shard_ranges(std::size_t runs, std::size_t shards) {
  std::vector<ShardRange> ranges;
  if (runs == 0 || shards == 0) return ranges;
  shards = std::min(shards, runs);
  ranges.reserve(shards);
  const std::size_t base = runs / shards;
  const std::size_t extra = runs % shards;  // first `extra` shards take one more
  std::size_t begin = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const std::size_t size = base + (shard < extra ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Human-readable cause of a child's wait status.
std::string describe_status(int status) {
  if (WIFEXITED(status)) return "exit code " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "killed by signal " + std::to_string(sig) + (name ? std::string(" (") + name + ")" : "");
  }
  return "unknown wait status " + std::to_string(status);
}

/// The running binary's path: the default worker command, so any binary
/// that forwards `sweep-worker` argv to sweep_worker_main() self-hosts
/// its workers.
std::string self_executable_path() {
  char buffer[4096];
  const ssize_t length = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (length <= 0) {
    throw std::runtime_error(
        "ProcessShardRunner: cannot resolve /proc/self/exe; pass worker_command explicitly");
  }
  buffer[length] = '\0';
  return buffer;
}

/// The spec axes and scalars must survive the text round-trip to the
/// worker exactly; every record frame is cross-checked against the
/// parent's own expansion through this.
bool specs_equal(const RunSpec& a, const RunSpec& b) {
  return a.topology == b.topology && a.size == b.size && a.algorithm == b.algorithm &&
         a.scheduler == b.scheduler && a.seed == b.seed && a.max_steps == b.max_steps &&
         a.path == b.path && a.engine_threads == b.engine_threads &&
         a.sim_scheduler == b.sim_scheduler && a.sim_threads == b.sim_threads &&
         a.service_workload == b.service_workload && a.service_clients == b.service_clients &&
         a.service_duration == b.service_duration && a.churn_events == b.churn_events;
}

/// Restores the previous SIGPIPE disposition on scope exit.  The parent
/// ignores SIGPIPE while workers live so a write to a crashed worker's
/// stdin fails with EPIPE (a per-shard failure) instead of killing the
/// whole sweep.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous_);
  }
  ~SigpipeGuard() { ::sigaction(SIGPIPE, &previous_, nullptr); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction previous_ {};
};

/// One live worker process attempt, as the parent tracks it.
struct LiveWorker {
  pid_t pid = -1;
  int fd = -1;                  ///< frame pipe read end (-1 = not running)
  std::size_t next_index = 0;   ///< next global run index the shard owes
  bool hello_seen = false;
  bool done_seen = false;
  FrameParser parser;
  Clock::time_point deadline;   ///< inactivity watchdog expiry
  SweepCacheStats cache;        ///< from the shard-done frame
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Kills (harmless if already dead), reaps, and closes a worker; returns
/// the wait-status description for diagnostics.
std::string kill_and_reap(LiveWorker& worker) {
  close_fd(worker.fd);
  if (worker.pid <= 0) return "not running";
  ::kill(worker.pid, SIGKILL);
  int status = 0;
  ::waitpid(worker.pid, &status, 0);
  worker.pid = -1;
  return describe_status(status);
}

/// Forks and execs one sweep-worker attempt and ships it the spec text.
/// Returns an empty string on success (filling `out`), else a failure
/// description with the worker already reaped.
std::string spawn_worker(const std::string& command, const std::string& spec_text,
                         std::size_t shard, ShardRange range, std::size_t total,
                         std::size_t attempt, const RunnerOptions& options, int timeout_ms,
                         LiveWorker& out) {
  int spec_pipe[2] = {-1, -1};
  int frame_pipe[2] = {-1, -1};
  if (::pipe(spec_pipe) != 0) return std::string("pipe() failed: ") + std::strerror(errno);
  if (::pipe(frame_pipe) != 0) {
    const std::string reason = std::string("pipe() failed: ") + std::strerror(errno);
    close_fd(spec_pipe[0]);
    close_fd(spec_pipe[1]);
    return reason;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const std::string reason = std::string("fork() failed: ") + std::strerror(errno);
    for (int* fd : {&spec_pipe[0], &spec_pipe[1], &frame_pipe[0], &frame_pipe[1]}) close_fd(*fd);
    return reason;
  }
  if (pid == 0) {
    // Child: spec on stdin, frames on stdout, stderr passes through so
    // worker error messages surface in the parent's diagnostics stream.
    ::dup2(spec_pipe[0], STDIN_FILENO);
    ::dup2(frame_pipe[1], STDOUT_FILENO);
    for (const int fd : {spec_pipe[0], spec_pipe[1], frame_pipe[0], frame_pipe[1]}) ::close(fd);
    ::setenv("LR_SWEEP_WORKER", "1", 1);
    const std::string shard_arg = std::to_string(shard);
    const std::string range_arg = std::to_string(range.begin) + ":" + std::to_string(range.end);
    const std::string total_arg = std::to_string(total);
    const std::string attempt_arg = std::to_string(attempt);
    const std::string threads_arg = std::to_string(options.threads);
    const std::string cap_arg = std::to_string(options.cache_max_entries);
    std::vector<const char*> argv = {command.c_str(),     "sweep-worker",
                                     "--shard",           shard_arg.c_str(),
                                     "--range",           range_arg.c_str(),
                                     "--total",           total_arg.c_str(),
                                     "--attempt",         attempt_arg.c_str(),
                                     "--threads",         threads_arg.c_str(),
                                     "--cache-cap",       cap_arg.c_str()};
    if (!options.snapshot_dir.empty()) {
      // Every shard maps the same snapshot files, so the kernel keeps one
      // physical copy of each workload's pages across the worker fleet.
      argv.push_back("--snapshot-dir");
      argv.push_back(options.snapshot_dir.c_str());
    }
    argv.push_back(nullptr);
    ::execv(command.c_str(), const_cast<char**>(argv.data()));
    std::fprintf(stderr, "error: cannot exec sweep worker '%s': %s\n", command.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }

  // Parent.
  close_fd(spec_pipe[0]);
  close_fd(frame_pipe[1]);
  ::fcntl(frame_pipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(spec_pipe[1], F_SETFL, O_NONBLOCK);

  out = LiveWorker{};
  out.pid = pid;
  out.fd = frame_pipe[0];
  out.next_index = range.begin;
  out.deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);

  // Ship the spec text; poll-driven so a worker that dies (or wedges)
  // before reading its stdin becomes a per-shard failure, not a parent
  // hang.  The worker reads stdin to EOF before emitting any frame.
  std::size_t written = 0;
  while (written < spec_text.size()) {
    struct pollfd pfd {
      spec_pipe[1], POLLOUT, 0
    };
    const auto remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  out.deadline - Clock::now())
                                  .count();
    if (remaining_ms <= 0 || ::poll(&pfd, 1, static_cast<int>(remaining_ms)) <= 0) {
      close_fd(spec_pipe[1]);
      return "timed out shipping sweep spec to worker (" + kill_and_reap(out) + ")";
    }
    const ssize_t n =
        ::write(spec_pipe[1], spec_text.data() + written, spec_text.size() - written);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      const std::string cause = std::strerror(errno);
      close_fd(spec_pipe[1]);
      return "worker rejected its sweep spec (write: " + cause + ", " + kill_and_reap(out) + ")";
    }
    written += static_cast<std::size_t>(n);
  }
  close_fd(spec_pipe[1]);
  return {};
}

// ---------------------------------------------------------------------------
// Worker side: fault injection hooks + the sweep-worker entry point
// ---------------------------------------------------------------------------

/// Parsed LR_TEST_WORKER_FAULT: `kind:shard[:attempts]`.
struct FaultSpec {
  enum class Kind { kNone, kExit, kSegv, kTruncate, kStall };
  Kind kind = Kind::kNone;
  bool armed = false;  ///< fires in this worker attempt
};

/// Reads the fault knob; arms it when this worker's shard matches and
/// the attempt is within the knob's count (default 1, so a retried
/// shard succeeds unless the knob says otherwise).
FaultSpec parse_fault_env(std::size_t shard, std::size_t attempt) {
  const char* env = std::getenv("LR_TEST_WORKER_FAULT");
  if (env == nullptr || *env == '\0') return {};
  const std::string text(env);
  const std::size_t first = text.find(':');
  if (first == std::string::npos) {
    std::fprintf(stderr, "error: malformed LR_TEST_WORKER_FAULT '%s' (want kind:shard[:attempts])\n",
                 env);
    ::_exit(2);
  }
  const std::string kind_token = text.substr(0, first);
  std::string rest = text.substr(first + 1);
  std::uint64_t attempts = 1;
  const std::size_t second = rest.find(':');
  if (second != std::string::npos) {
    attempts = std::strtoull(rest.c_str() + second + 1, nullptr, 10);
    rest.resize(second);
  }
  const std::uint64_t target = std::strtoull(rest.c_str(), nullptr, 10);
  FaultSpec fault;
  if (kind_token == "exit") {
    fault.kind = FaultSpec::Kind::kExit;
  } else if (kind_token == "segv") {
    fault.kind = FaultSpec::Kind::kSegv;
  } else if (kind_token == "truncate") {
    fault.kind = FaultSpec::Kind::kTruncate;
  } else if (kind_token == "stall") {
    fault.kind = FaultSpec::Kind::kStall;
  } else {
    std::fprintf(stderr, "error: unknown LR_TEST_WORKER_FAULT kind '%s'\n", kind_token.c_str());
    ::_exit(2);
  }
  fault.armed = target == shard && attempt < attempts;
  return fault;
}

/// Full write to stdout; a dead parent (EPIPE) just ends the worker.
void write_all_stdout(const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(STDOUT_FILENO, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(1);  // parent is gone; nothing useful left to do
    }
    written += static_cast<std::size_t>(n);
  }
}

void write_frame_bytes(const std::vector<std::uint8_t>& bytes) {
  write_all_stdout(bytes.data(), bytes.size());
}

/// Injects the armed fault mid-shard.  Every branch leaves the process.
[[noreturn]] void trigger_fault(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kExit:
      ::_exit(3);
    case FaultSpec::Kind::kSegv:
      ::raise(SIGSEGV);
      ::_exit(3);  // unreachable unless SIGSEGV is blocked
    case FaultSpec::Kind::kTruncate: {
      // A syntactically valid header promising a 64-byte record payload,
      // followed by only 8 payload bytes and EOF: the parent must
      // classify this as a truncated frame, never a clean shard end.
      std::vector<std::uint8_t> bytes;
      for (int byte = 0; byte < 4; ++byte) bytes.push_back((kFrameMagic >> (8 * byte)) & 0xffu);
      bytes.push_back(static_cast<std::uint8_t>(FrameType::kRecord));
      bytes.push_back(64);
      bytes.push_back(0);
      bytes.push_back(0);
      bytes.push_back(0);
      for (int i = 0; i < 8; ++i) bytes.push_back(0xabu);
      write_frame_bytes(bytes);
      ::_exit(0);
    }
    case FaultSpec::Kind::kStall:
      for (;;) ::sleep(1);  // parked until the parent's watchdog kills us
    case FaultSpec::Kind::kNone:
      break;
  }
  ::_exit(3);
}

int worker_argv_error(const std::string& why) {
  std::fprintf(stderr,
               "error: %s\n"
               "sweep-worker is an internal subcommand: ProcessShardRunner spawns it as\n"
               "  <binary> sweep-worker --shard I --range B:E --total R --attempt A"
               " --threads T --cache-cap C [--snapshot-dir D]\n"
               "with the sweep spec on stdin and binary shard frames on stdout.\n"
               "To run a multi-process sweep, use: lr_cli sweep <spec> --processes N\n",
               why.c_str());
  return 2;
}

}  // namespace

int sweep_worker_main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "sweep-worker") != 0) {
    return worker_argv_error("sweep_worker_main invoked without the sweep-worker subcommand");
  }
  if (std::getenv("LR_SWEEP_WORKER") == nullptr) {
    return worker_argv_error(
        "direct invocation rejected: sweep-worker emits binary frames for a parent process");
  }

  std::optional<std::size_t> shard, total, attempt;
  std::optional<ShardRange> range;
  std::size_t threads = 1;
  std::size_t cache_cap = 0;
  std::string snapshot_dir;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return worker_argv_error("flag '" + flag + "' is missing its value");
    const std::string value = argv[++i];
    char* end = nullptr;
    if (flag == "--snapshot-dir") {
      snapshot_dir = value;
      continue;
    }
    if (flag == "--range") {
      const std::size_t begin = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != ':') return worker_argv_error("bad --range '" + value + "'");
      const std::size_t stop = std::strtoull(end + 1, &end, 10);
      if (*end != '\0' || stop < begin) return worker_argv_error("bad --range '" + value + "'");
      range = ShardRange{begin, stop};
      continue;
    }
    const std::size_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0' || value[0] == '-') {
      return worker_argv_error("flag '" + flag + "' needs a non-negative integer, got '" + value +
                               "'");
    }
    if (flag == "--shard") {
      shard = parsed;
    } else if (flag == "--total") {
      total = parsed;
    } else if (flag == "--attempt") {
      attempt = parsed;
    } else if (flag == "--threads") {
      threads = parsed;
    } else if (flag == "--cache-cap") {
      cache_cap = parsed;
    } else {
      return worker_argv_error("unknown flag '" + flag + "'");
    }
  }
  if (!shard || !range || !total || !attempt) {
    return worker_argv_error("missing required flag (--shard, --range, --total, --attempt)");
  }

  const std::string spec_text((std::istreambuf_iterator<char>(std::cin)),
                              std::istreambuf_iterator<char>());
  std::vector<RunSpec> runs;
  try {
    runs = SweepSpec::parse_string(spec_text).expand();
  } catch (const std::exception& error) {
    return worker_argv_error(std::string("cannot parse sweep spec from stdin: ") + error.what());
  }
  // The parent and worker must agree exactly on the expansion before a
  // single run executes — a drifted binary silently computing different
  // run indexes would corrupt the merge.
  if (runs.size() != *total) {
    return worker_argv_error("spec expands to " + std::to_string(runs.size()) +
                             " runs but parent expected " + std::to_string(*total));
  }
  if (range->end > runs.size()) {
    return worker_argv_error("--range end " + std::to_string(range->end) +
                             " exceeds the sweep's " + std::to_string(runs.size()) + " runs");
  }

  HelloFrame hello;
  hello.shard = *shard;
  hello.begin = range->begin;
  hello.end = range->end;
  hello.attempt = *attempt;
  write_frame_bytes(encode_frame(hello));

  const FaultSpec fault = parse_fault_env(*shard, *attempt);
  const std::size_t count = range->size();
  const std::size_t fault_at = count / 2;  // mid-shard, by emitted-record count

  // Shared-nothing execution: this process's own cache and pool, reused
  // across the shard's chunks.  Chunking keeps the parent's inactivity
  // watchdog honest (frames flow long before the shard finishes) while
  // still letting --threads parallelize inside a chunk.
  constexpr std::size_t kChunk = 16;
  const ScenarioRunner runner({.threads = threads == 0 ? 0 : threads,
                               .cache_max_entries = cache_cap});
  SweepCache cache(cache_cap, snapshot_dir);
  std::size_t emitted = 0;
  for (std::size_t offset = range->begin; offset < range->end; offset += kChunk) {
    const std::size_t stop = std::min(offset + kChunk, range->end);
    const std::vector<RunSpec> slice(runs.begin() + static_cast<std::ptrdiff_t>(offset),
                                     runs.begin() + static_cast<std::ptrdiff_t>(stop));
    const std::vector<RunRecord> records = runner.run_all(slice, cache);
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (fault.armed && emitted == fault_at) trigger_fault(fault.kind);
      RecordFrame frame;
      frame.global_index = offset + i;
      frame.record = records[i];
      write_frame_bytes(encode_frame(frame));
      ++emitted;
    }
  }

  ShardDoneFrame done;
  done.records_emitted = emitted;
  done.cache = {cache.entries(), cache.hits(), cache.misses(), cache.evictions()};
  write_frame_bytes(encode_frame(done));
  return 0;
}

// ---------------------------------------------------------------------------
// Parent side: ProcessShardRunner
// ---------------------------------------------------------------------------

ProcessShardRunner::ProcessShardRunner(RunnerOptions options, std::string worker_command)
    : options_(options), worker_command_(std::move(worker_command)) {
  if (options_.process_workers == 0) {
    throw std::invalid_argument(
        "ProcessShardRunner: process_workers must be >= 1 (0 means in-process; use "
        "ScenarioRunner)");
  }
}

std::size_t ProcessShardRunner::resolved_workers(std::size_t runs) const noexcept {
  return std::min(options_.process_workers, runs);
}

SweepReport ProcessShardRunner::run(const SweepSpec& spec) {
  const std::vector<RunSpec> runs = spec.expand();
  const std::size_t total = runs.size();
  diagnostics_.clear();
  SweepReport report;
  report.records.resize(total);
  if (total == 0) return report;

  const std::vector<ShardRange> ranges = shard_ranges(total, options_.process_workers);
  const std::size_t shards = ranges.size();
  diagnostics_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    diagnostics_[s].shard = s;
    diagnostics_[s].range = ranges[s];
  }

  const std::string spec_text = format_sweep_spec(spec);
  const std::string command = worker_command_.empty() ? self_executable_path() : worker_command_;
  int timeout_ms = options_.worker_timeout_ms;
  if (const char* env = std::getenv("LR_TEST_WORKER_TIMEOUT_MS")) {
    timeout_ms = std::max(1, std::atoi(env));
  }
  const std::size_t max_attempts = 1 + options_.worker_retries;

  const SigpipeGuard sigpipe_guard;
  std::vector<LiveWorker> live(shards);
  std::size_t completed = 0;
  std::vector<std::size_t> pending;  // shards awaiting a (re)spawn
  for (std::size_t s = shards; s > 0; --s) pending.push_back(s - 1);
  bool exhausted = false;  // some shard ran out of attempts

  // Appends the attempt's failure line and re-queues the shard, or
  // declares the budget exhausted.  `cause` should already include the
  // wait-status description.
  const auto record_failure = [&](std::size_t s, const std::string& cause) {
    ShardDiagnostics& diag = diagnostics_[s];
    diag.failures.push_back("attempt " + std::to_string(diag.attempts) + ": " + cause);
    if (diag.attempts < max_attempts) {
      pending.push_back(s);
    } else {
      exhausted = true;
    }
  };

  // Validates and applies one decoded frame from shard `s`; returns a
  // failure description, or empty when the frame was in contract.
  const auto apply_frame = [&](std::size_t s, LiveWorker& worker,
                               const Frame& frame) -> std::string {
    const ShardRange& range = ranges[s];
    if (frame.type == FrameType::kHello) {
      if (worker.hello_seen) return "duplicate hello frame";
      const HelloFrame& hello = frame.hello;
      if (hello.version != kShardProtocolVersion) {
        return "protocol version mismatch (worker " + std::to_string(hello.version) +
               ", parent " + std::to_string(kShardProtocolVersion) + ")";
      }
      if (hello.shard != s || hello.begin != range.begin || hello.end != range.end) {
        return "hello frame names the wrong shard";
      }
      worker.hello_seen = true;
      return {};
    }
    if (!worker.hello_seen) return "frame before hello";
    if (worker.done_seen) return "frame after shard-done";
    if (frame.type == FrameType::kRecord) {
      const RecordFrame& record = frame.record;
      if (record.global_index != worker.next_index || record.global_index >= range.end) {
        return "out-of-order record (got run #" + std::to_string(record.global_index) +
               ", expected #" + std::to_string(worker.next_index) + ")";
      }
      if (!specs_equal(record.record.spec, runs[record.global_index])) {
        return "record #" + std::to_string(record.global_index) +
               " carries a spec that differs from the parent's expansion";
      }
      report.records[record.global_index] = record.record;
      ++worker.next_index;
      return {};
    }
    // Shard done: every run must be accounted for, exactly once.
    if (worker.next_index != range.end || frame.done.records_emitted != range.size()) {
      return "shard-done before all records arrived (" +
             std::to_string(worker.next_index - range.begin) + "/" +
             std::to_string(range.size()) + ")";
    }
    worker.done_seen = true;
    worker.cache = frame.done.cache;
    return {};
  };

  while (!exhausted && completed < shards) {
    // (Re)spawn every shard that owes an attempt.
    while (!exhausted && !pending.empty()) {
      const std::size_t s = pending.back();
      pending.pop_back();
      ShardDiagnostics& diag = diagnostics_[s];
      ++diag.attempts;
      const std::string error = spawn_worker(command, spec_text, s, ranges[s], total,
                                             diag.attempts - 1, options_, timeout_ms, live[s]);
      if (!error.empty()) record_failure(s, error);
    }
    if (exhausted || completed == shards) break;

    // Multiplex all live workers; wake at the earliest watchdog deadline.
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_shard;
    Clock::time_point earliest = Clock::time_point::max();
    for (std::size_t s = 0; s < shards; ++s) {
      if (live[s].fd < 0) continue;
      fds.push_back({live[s].fd, POLLIN, 0});
      fd_shard.push_back(s);
      earliest = std::min(earliest, live[s].deadline);
    }
    const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             earliest - Clock::now())
                             .count();
    ::poll(fds.data(), fds.size(), static_cast<int>(std::clamp<long long>(wait_ms, 0, 1000)));
    const Clock::time_point now = Clock::now();

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const std::size_t s = fd_shard[i];
      LiveWorker& worker = live[s];
      if (worker.fd < 0) continue;  // already handled this iteration
      std::string failure;
      bool shard_complete = false;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        // Drain the pipe and the parser until EAGAIN, EOF, or an error.
        while (failure.empty() && !shard_complete) {
          std::uint8_t buffer[65536];
          const ssize_t n = ::read(worker.fd, buffer, sizeof(buffer));
          if (n > 0) {
            worker.deadline = now + std::chrono::milliseconds(timeout_ms);
            worker.parser.feed(buffer, static_cast<std::size_t>(n));
            try {
              while (auto frame = worker.parser.next()) {
                failure = apply_frame(s, worker, *frame);
                if (!failure.empty()) break;
                if (worker.done_seen) {
                  shard_complete = true;
                  break;
                }
              }
            } catch (const ShardProtocolError& error) {
              failure = error.what();
            }
            continue;
          }
          if (n == 0) {
            failure = worker.parser.mid_frame()
                          ? "stream truncated mid-frame"
                          : "worker exited before completing its shard";
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          failure = std::string("read error: ") + std::strerror(errno);
        }
      }
      if (shard_complete) {
        close_fd(worker.fd);
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
        worker.pid = -1;
        diagnostics_[s].completed = true;
        ++completed;
        continue;
      }
      if (failure.empty() && now >= worker.deadline) {
        failure = "stalled: no frame within " + std::to_string(timeout_ms) + " ms";
      }
      if (!failure.empty()) {
        const std::string status = kill_and_reap(worker);
        // Invalidate the attempt's partial merge: the retry re-emits the
        // shard from its beginning (records are pure functions of their
        // spec, so completed slots are simply overwritten identically).
        record_failure(s, failure + " (" + status + ")");
      }
    }
  }

  if (exhausted) {
    for (LiveWorker& worker : live) kill_and_reap(worker);
    std::string message = "multi-process sweep failed: retry budget exhausted (" +
                          std::to_string(max_attempts) + " attempt(s) per shard)";
    for (const ShardDiagnostics& diag : diagnostics_) {
      if (diag.failures.empty()) continue;
      message += "\n  shard " + std::to_string(diag.shard) + " (runs [" +
                 std::to_string(diag.range.begin) + ", " + std::to_string(diag.range.end) +
                 "), " + (diag.completed ? "completed" : "INCOMPLETE") + "):";
      for (const std::string& failure : diag.failures) message += "\n    " + failure;
    }
    throw std::runtime_error(message);
  }

  for (const LiveWorker& worker : live) {
    report.cache.entries += worker.cache.entries;
    report.cache.hits += worker.cache.hits;
    report.cache.misses += worker.cache.misses;
    report.cache.evictions += worker.cache.evictions;
  }
  return report;
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "graph/csr.hpp"
#include "graph/snapshot.hpp"
#include "runner/scenario.hpp"
#include "runner/thread_pool.hpp"
#include "trace/report.hpp"

/// \file runner.hpp
/// The parallel scenario-sweep engine (docs/ARCHITECTURE.md, runner
/// layer): executes the runs a SweepSpec expands to on a fixed-size
/// std::thread pool and aggregates work / rounds / social cost /
/// relation-check verdicts into trace-layer Tables (CSV/JSON).
///
/// Determinism contract: every run derives its RNG streams from its
/// RunSpec alone (scenario.hpp), records land at their expansion index,
/// and aggregation is a serial pass over that vector — so record and
/// aggregate tables are byte-identical across thread counts.  The
/// single-run path (run_one) is the same code the `lr_cli run` subcommand
/// and the retargeted experiment harnesses (bench_e2/e3/e5) execute, so
/// swept and standalone measurements cannot drift apart.

namespace lr {

/// Verdict of the per-run simulation-relation check (sim-* kernels).
enum class RelationVerdict : std::uint8_t {
  kNotChecked,  ///< kernel does not check a relation
  kHolds,       ///< relation held at every matched step pair
  kViolated,    ///< relation (or an abstract precondition) failed
};

/// Record-table token of a verdict ("-", "ok", "violated").
const char* relation_verdict_token(RelationVerdict verdict);

/// Everything one run produced.  Semantics of the generic counters per
/// kernel family are spelled out in docs/EXPERIMENTS.md; in brief:
/// `work` is node reversal steps for automaton kernels (the game's social
/// cost), concrete steps for sim-* kernels, and maintenance reversal steps
/// for tora; `rounds` is greedy rounds for fr/pr and resync rounds for
/// dist-*; `messages` counts network sends for dist-* and delivered
/// packets for tora.
struct RunRecord {
  RunSpec spec;                       ///< the scenario that was run
  std::uint64_t run_seed = 0;         ///< realized instance-stream seed
  std::uint64_t nodes = 0;            ///< realized instance node count
  std::uint64_t bad_nodes = 0;        ///< initial n_b of the instance
  std::uint64_t work = 0;             ///< node reversal / concrete steps
  std::uint64_t edge_reversals = 0;   ///< single-edge flips
  std::uint64_t rounds = 0;           ///< greedy or resync rounds
  std::uint64_t dummy_steps = 0;      ///< NewPR dummy actions
  std::uint64_t abstract_steps = 0;   ///< abstract actions (sim-* kernels)
  std::uint64_t messages = 0;         ///< network messages / packets
  bool converged = false;             ///< reached the kernel's goal state
  RelationVerdict relation = RelationVerdict::kNotChecked;  ///< sim-* verdict
  std::string error;                  ///< non-empty iff the run threw
};

/// A workload generated once and frozen for reuse across every kernel of a
/// sweep: the instance plus the CSR snapshot of its graph and initial
/// orientation (the execution form the engine, the sim layer, and the
/// network all consume).
struct FrozenInstance {
  Instance instance;  ///< the generated workload
  CsrGraph csr;       ///< snapshot of instance.graph + instance.senses
  /// The churn schedule of a waypoint workload with churn_events > 0;
  /// empty otherwise (see RunSpec::churn_events).
  std::vector<LinkEvent> churn;
  /// When the workload was reloaded from a snapshot file, the mmap the
  /// borrowed `csr` views point into; null for generated workloads.
  /// Runs share the FrozenInstance by shared_ptr, so the mapping lives
  /// exactly as long as any run still reads it.
  std::shared_ptr<const Snapshot> backing;
};

/// Thread-safe cache of (topology, size, seed) -> FrozenInstance shared by
/// the runs of one sweep.
///
/// `RunSpec::instance_seed()` is algorithm- and scheduler-independent by
/// design, so every kernel of a sweep measures the same instances; without
/// a cache each run still *regenerates* its instance and re-freezes the
/// CSR snapshot.  A ScenarioRunner gives each sweep a cache so that work
/// happens once per (topology, size, seed) on the CSR path
/// (docs/PERFORMANCE.md measures the effect).  Results are unaffected by
/// construction — generation is deterministic in the key, so a hit returns
/// byte-identical data to a rebuild, and an *evicted* entry is simply
/// regenerated on its next use.
///
/// Memory bound: by default entries live until the cache dies with its
/// sweep, but very large topology×size×seed products can pin every
/// distinct workload at once; construct with `max_entries > 0` to keep an
/// LRU bound instead.  Eviction only drops the cache's own reference —
/// runs still holding the shared_ptr keep their snapshot alive.
class SweepCache {
 public:
  /// Unbounded cache (the historical default).
  SweepCache() = default;

  /// Cache holding at most `max_entries` workloads, evicting the least
  /// recently used beyond that; 0 means unbounded.
  explicit SweepCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// Same, additionally backed by a directory of mmap snapshot files
  /// (graph/snapshot.hpp): an in-memory miss on a churn-free workload
  /// first tries `<snapshot_dir>/<topology>-<size>-s<seed>.lrsnap` — an
  /// O(1) zero-fixup reload whose pages the kernel shares across every
  /// sweep worker process mapping the same file — and falls back to
  /// generating (then persisting) on a missing or invalid file.  Results
  /// are byte-identical either way: the file stores exactly the arrays a
  /// fresh generation would produce, checksum-verified on load.  An empty
  /// dir (the default) disables persistence.  The directory is created if
  /// absent.  Workloads with a churn schedule bypass the files (schedules
  /// are not persisted) but still key on churn_events so they can never
  /// alias a static workload.
  SweepCache(std::size_t max_entries, std::string snapshot_dir);

  /// Returns the frozen workload of `spec`'s (topology, size, seed,
  /// churn_events), generating and freezing it on first use.  Concurrent
  /// misses on the same key may build duplicates; exactly one wins the
  /// map slot and the others are discarded, so callers always share one
  /// snapshot.
  std::shared_ptr<const FrozenInstance> get(const RunSpec& spec);

  /// Number of distinct workloads currently cached.
  std::size_t entries() const;

  /// get() calls served from the cache.
  std::uint64_t hits() const;

  /// get() calls that generated (or raced to generate) the workload.
  std::uint64_t misses() const;

  /// Workloads dropped by the LRU bound (0 for an unbounded cache).
  std::uint64_t evictions() const;

  /// Misses served by mmap-reloading a snapshot file instead of
  /// generating (snapshot_dir mode only).
  std::uint64_t snapshot_loads() const;

  /// Generated workloads persisted as snapshot files (snapshot_dir mode
  /// only; save failures are non-fatal and simply do not count).
  std::uint64_t snapshot_saves() const;

  /// The configured LRU bound (0 = unbounded).
  std::size_t max_entries() const noexcept { return max_entries_; }

  /// The snapshot directory (empty = persistence disabled).
  const std::string& snapshot_dir() const noexcept { return snapshot_dir_; }

 private:
  using Key = std::tuple<TopologyKind, std::size_t, std::uint64_t, std::size_t>;
  struct Entry {
    std::shared_ptr<const FrozenInstance> frozen;  ///< the shared workload
    std::list<Key>::iterator lru_position;         ///< this entry in lru_
  };

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< most recently used first
  std::size_t max_entries_ = 0;
  std::string snapshot_dir_;  ///< empty = no snapshot files
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t snapshot_loads_ = 0;
  std::uint64_t snapshot_saves_ = 0;
};

/// Per-worker cache of the ThreadPools a run's sharded kernels borrow —
/// the engine's greedy rounds (`engine_threads`) and the network's
/// sharded event loop (`sim_threads`).  Historically every such run
/// spawned and joined a short-lived pool; a sweep worker now keeps one
/// pool per requested size alive across all the runs it claims, so the
/// spawn cost is paid once per (worker, size) instead of once per run.
/// Records are byte-identical either way (pools carry no run state).
///
/// NOT thread-safe: each ScenarioRunner worker owns a private cache, and
/// standalone callers may hold a local one next to their execute_run loop.
class WorkerPoolCache {
 public:
  /// The cached pool of `threads` logical workers (0 = hardware
  /// concurrency), spawned on first use.  Borrowed, never owned, by the
  /// run: the pool outlives the call and is reused by the next run that
  /// requests the same size.
  ThreadPool* get(std::size_t threads);

 private:
  std::vector<std::pair<std::size_t, std::unique_ptr<ThreadPool>>> pools_;
};

/// Executes one RunSpec synchronously and returns its record.  Exceptions
/// become RunRecord::error instead of propagating, so one failing scenario
/// cannot take down a sweep.  This is the shared single-run code path.
RunRecord execute_run(const RunSpec& spec);

/// Same, drawing the workload from `cache` when the spec runs on the CSR
/// path (the legacy path regenerates per run, preserving the historical
/// cost model the A/B harness compares against).  `cache` may be null.
/// Records are byte-identical with and without a cache.
RunRecord execute_run(const RunSpec& spec, SweepCache* cache);

/// Same, additionally borrowing sharded-kernel pools from `pools` (may be
/// null: the run then spawns short-lived pools itself when its spec asks
/// for parallelism that looks worth the spawn).  Records are
/// byte-identical with and without a pool cache.
RunRecord execute_run(const RunSpec& spec, SweepCache* cache, WorkerPoolCache* pools);

/// Counters of the SweepCache one sweep ran over, surfaced so callers
/// (e.g. `lr_cli sweep`) can report cache effectiveness next to timing.
struct SweepCacheStats {
  std::size_t entries = 0;       ///< distinct workloads resident at sweep end
  std::uint64_t hits = 0;        ///< get() calls served from the cache
  std::uint64_t misses = 0;      ///< get() calls that generated the workload
  std::uint64_t evictions = 0;   ///< workloads dropped by the LRU bound
  /// Misses served by mmap snapshot reloads / workloads persisted as
  /// snapshot files (snapshot_dir mode; in-process sweeps only — the
  /// multi-process shard protocol reports the four counters above).
  std::uint64_t snapshot_loads = 0;
  std::uint64_t snapshot_saves = 0;
};

/// A finished sweep: per-run records in expansion order plus table views.
struct SweepReport {
  std::vector<RunRecord> records;  ///< one record per expanded RunSpec
  SweepCacheStats cache;           ///< the sweep's shared-cache counters

  /// Per-run table, one row per record in expansion order.  Columns:
  /// topology,size,algorithm,scheduler,seed,run_seed,nodes,bad_nodes,
  /// work,edge_reversals,rounds,dummy_steps,abstract_steps,messages,
  /// converged,relation,status.
  Table records_table() const;

  /// Aggregate table grouped by (topology, size, algorithm, scheduler)
  /// over the seed axis, rows in first-appearance (= expansion) order.
  /// Columns: topology,size,algorithm,scheduler,runs,errors,converged,
  /// work_total,work_mean,work_min,work_max,edge_reversals_mean,
  /// rounds_mean,relation_checked,relation_ok.
  Table aggregate_table() const;
};

/// Configuration of a ScenarioRunner.
struct RunnerOptions {
  /// Worker threads in the pool; 0 means std::thread::hardware_concurrency
  /// (at least 1).  Results are identical for every value by construction.
  std::size_t threads = 0;

  /// LRU bound of the per-sweep SweepCache (0 = unbounded, the default).
  /// Purely a memory knob: records are byte-identical at every value.
  std::size_t cache_max_entries = 0;

  /// Worker *processes* of the multi-process sweep backend
  /// (runner/process_runner.hpp): 0 = in-process execution on this
  /// runner's thread pool (the default), N >= 1 = shard the expanded run
  /// list across N shared-nothing `sweep-worker` child processes (clamped
  /// to the run count).  Like `threads`, a pure deployment knob: the
  /// merged tables are byte-identical at every value by construction.
  std::size_t process_workers = 0;

  /// How many times a crashed / stalled / protocol-violating worker's
  /// shard is retried in a fresh process before the whole sweep fails
  /// loudly (process_workers > 0 only).  Total attempts per shard is
  /// 1 + worker_retries.
  std::size_t worker_retries = 2;

  /// Inactivity watchdog per worker process in milliseconds: a worker
  /// that emits no frame for this long is presumed wedged, killed, and
  /// retried (process_workers > 0 only).  The LR_TEST_WORKER_TIMEOUT_MS
  /// environment variable overrides it (test hook for the stall-fault
  /// battery).
  int worker_timeout_ms = 30'000;

  /// Directory of mmap-backed instance snapshot files shared by the
  /// sweep's caches (see SweepCache's snapshot_dir constructor); empty =
  /// disabled.  With process_workers > 0 the directory is forwarded to
  /// every `sweep-worker` child, so all shards mmap the same files and
  /// the kernel shares one physical copy of each workload's pages across
  /// the whole worker fleet.  Purely a performance knob: tables are
  /// byte-identical with and without it.
  std::string snapshot_dir;
};

/// Executes sweeps on a fixed-size `ThreadPool` (runner/thread_pool.hpp,
/// the pool the reversal engine's sharded greedy rounds share).
///
/// Work distribution is an atomic cursor over the expanded run list, so
/// threads self-balance across runs of very different cost; determinism is
/// unaffected because records are written to their expansion slot and
/// never depend on claim order.
class ScenarioRunner {
 public:
  /// Creates a runner; see RunnerOptions for the thread-count rule.  The
  /// pool is spawned once here and reused by every run()/run_all() call.
  explicit ScenarioRunner(RunnerOptions options = {});

  /// The resolved worker-thread count (>= 1).
  std::size_t threads() const noexcept { return pool_.size(); }

  /// Expands `spec` and executes every run; returns the full report
  /// (records plus the sweep's cache counters).
  SweepReport run(const SweepSpec& spec) const;

  /// Executes an explicit run list (already expanded or hand-built);
  /// records are returned in input order.  The runs share one SweepCache,
  /// so CSR-path kernels over the same (topology, size, seed) reuse one
  /// frozen instance instead of regenerating it per kernel.
  std::vector<RunRecord> run_all(const std::vector<RunSpec>& specs) const;

  /// run_all() over an externally owned cache (reported through `run()`'s
  /// SweepReport::cache); the building block the two calls above share.
  std::vector<RunRecord> run_all(const std::vector<RunSpec>& specs, SweepCache& cache) const;

 private:
  std::size_t cache_max_entries_;
  std::string snapshot_dir_;  ///< forwarded to the caches run()/run_all() build
  /// Serializes dispatches onto the shared pool: a ThreadPool runs one
  /// fork/join job at a time, and the historical spawn-per-call runner was
  /// safe to share across caller threads, so concurrent run()/run_all()
  /// calls on one runner must stay legal — they now queue on this lock
  /// (results are unaffected; only their wall clocks overlap less).
  mutable std::mutex dispatch_mutex_;
  /// The worker pool; mutable because dispatching jobs mutates pool state
  /// while a runner stays logically const (results are state-independent).
  mutable ThreadPool pool_;
  /// One sharded-kernel pool cache per worker (indexed by the pool's
  /// worker id), so runs claimed by the same worker reuse its pools.
  /// Safe without locks: dispatches are serialized by dispatch_mutex_ and
  /// each worker touches only its own slot.
  mutable std::vector<WorkerPoolCache> worker_pools_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "graph/csr.hpp"
#include "runner/scenario.hpp"
#include "trace/report.hpp"

/// \file runner.hpp
/// The parallel scenario-sweep engine (docs/ARCHITECTURE.md, runner
/// layer): executes the runs a SweepSpec expands to on a fixed-size
/// std::thread pool and aggregates work / rounds / social cost /
/// relation-check verdicts into trace-layer Tables (CSV/JSON).
///
/// Determinism contract: every run derives its RNG streams from its
/// RunSpec alone (scenario.hpp), records land at their expansion index,
/// and aggregation is a serial pass over that vector — so record and
/// aggregate tables are byte-identical across thread counts.  The
/// single-run path (run_one) is the same code the `lr_cli run` subcommand
/// and the retargeted experiment harnesses (bench_e2/e3/e5) execute, so
/// swept and standalone measurements cannot drift apart.

namespace lr {

/// Verdict of the per-run simulation-relation check (sim-* kernels).
enum class RelationVerdict : std::uint8_t {
  kNotChecked,  ///< kernel does not check a relation
  kHolds,       ///< relation held at every matched step pair
  kViolated,    ///< relation (or an abstract precondition) failed
};

/// Record-table token of a verdict ("-", "ok", "violated").
const char* relation_verdict_token(RelationVerdict verdict);

/// Everything one run produced.  Semantics of the generic counters per
/// kernel family are spelled out in docs/EXPERIMENTS.md; in brief:
/// `work` is node reversal steps for automaton kernels (the game's social
/// cost), concrete steps for sim-* kernels, and maintenance reversal steps
/// for tora; `rounds` is greedy rounds for fr/pr and resync rounds for
/// dist-*; `messages` counts network sends for dist-* and delivered
/// packets for tora.
struct RunRecord {
  RunSpec spec;                       ///< the scenario that was run
  std::uint64_t run_seed = 0;         ///< realized instance-stream seed
  std::uint64_t nodes = 0;            ///< realized instance node count
  std::uint64_t bad_nodes = 0;        ///< initial n_b of the instance
  std::uint64_t work = 0;             ///< node reversal / concrete steps
  std::uint64_t edge_reversals = 0;   ///< single-edge flips
  std::uint64_t rounds = 0;           ///< greedy or resync rounds
  std::uint64_t dummy_steps = 0;      ///< NewPR dummy actions
  std::uint64_t abstract_steps = 0;   ///< abstract actions (sim-* kernels)
  std::uint64_t messages = 0;         ///< network messages / packets
  bool converged = false;             ///< reached the kernel's goal state
  RelationVerdict relation = RelationVerdict::kNotChecked;  ///< sim-* verdict
  std::string error;                  ///< non-empty iff the run threw
};

/// A workload generated once and frozen for reuse across every kernel of a
/// sweep: the instance plus the CSR snapshot of its graph and initial
/// orientation (the execution form the engine, the sim layer, and the
/// network all consume).
struct FrozenInstance {
  Instance instance;  ///< the generated workload
  CsrGraph csr;       ///< snapshot of instance.graph + instance.senses
};

/// Thread-safe cache of (topology, size, seed) -> FrozenInstance shared by
/// the runs of one sweep.
///
/// `RunSpec::instance_seed()` is algorithm- and scheduler-independent by
/// design, so every kernel of a sweep measures the same instances; without
/// a cache each run still *regenerates* its instance and re-freezes the
/// CSR snapshot.  A ScenarioRunner gives each sweep a cache so that work
/// happens once per (topology, size, seed) on the CSR path
/// (docs/PERFORMANCE.md measures the effect).  Entries live until the
/// cache dies with its sweep; results are unaffected by construction —
/// generation is deterministic in the key, so a hit returns byte-identical
/// data to a rebuild.
class SweepCache {
 public:
  /// Returns the frozen workload of `spec`'s (topology, size, seed),
  /// generating and freezing it on first use.  Concurrent misses on the
  /// same key may build duplicates; exactly one wins the map slot and the
  /// others are discarded, so callers always share one snapshot.
  std::shared_ptr<const FrozenInstance> get(const RunSpec& spec);

  /// Number of distinct workloads currently cached.
  std::size_t entries() const;

  /// get() calls served from the cache.
  std::uint64_t hits() const;

  /// get() calls that generated (or raced to generate) the workload.
  std::uint64_t misses() const;

 private:
  using Key = std::tuple<TopologyKind, std::size_t, std::uint64_t>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const FrozenInstance>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Executes one RunSpec synchronously and returns its record.  Exceptions
/// become RunRecord::error instead of propagating, so one failing scenario
/// cannot take down a sweep.  This is the shared single-run code path.
RunRecord execute_run(const RunSpec& spec);

/// Same, drawing the workload from `cache` when the spec runs on the CSR
/// path (the legacy path regenerates per run, preserving the historical
/// cost model the A/B harness compares against).  `cache` may be null.
/// Records are byte-identical with and without a cache.
RunRecord execute_run(const RunSpec& spec, SweepCache* cache);

/// A finished sweep: per-run records in expansion order plus table views.
struct SweepReport {
  std::vector<RunRecord> records;  ///< one record per expanded RunSpec

  /// Per-run table, one row per record in expansion order.  Columns:
  /// topology,size,algorithm,scheduler,seed,run_seed,nodes,bad_nodes,
  /// work,edge_reversals,rounds,dummy_steps,abstract_steps,messages,
  /// converged,relation,status.
  Table records_table() const;

  /// Aggregate table grouped by (topology, size, algorithm, scheduler)
  /// over the seed axis, rows in first-appearance (= expansion) order.
  /// Columns: topology,size,algorithm,scheduler,runs,errors,converged,
  /// work_total,work_mean,work_min,work_max,edge_reversals_mean,
  /// rounds_mean,relation_checked,relation_ok.
  Table aggregate_table() const;
};

/// Configuration of a ScenarioRunner.
struct RunnerOptions {
  /// Worker threads in the pool; 0 means std::thread::hardware_concurrency
  /// (at least 1).  Results are identical for every value by construction.
  std::size_t threads = 0;
};

/// Executes sweeps on a fixed-size thread pool.
///
/// Work distribution is an atomic cursor over the expanded run list, so
/// threads self-balance across runs of very different cost; determinism is
/// unaffected because records are written to their expansion slot and
/// never depend on claim order.
class ScenarioRunner {
 public:
  /// Creates a runner; see RunnerOptions for the thread-count rule.
  explicit ScenarioRunner(RunnerOptions options = {});

  /// The resolved worker-thread count (>= 1).
  std::size_t threads() const noexcept { return threads_; }

  /// Expands `spec` and executes every run; returns the full report.
  SweepReport run(const SweepSpec& spec) const;

  /// Executes an explicit run list (already expanded or hand-built);
  /// records are returned in input order.  The runs share one SweepCache,
  /// so CSR-path kernels over the same (topology, size, seed) reuse one
  /// frozen instance instead of regenerating it per kernel.
  std::vector<RunRecord> run_all(const std::vector<RunSpec>& specs) const;

 private:
  std::size_t threads_;
};

}  // namespace lr

#include "runner/runner.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "analysis/bounds.hpp"
#include "analysis/rounds.hpp"
#include "analysis/stats.hpp"
#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "automata/simulation.hpp"
#include "core/hybrid.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"
#include "core/relations.hpp"
#include "core/reversal_engine.hpp"
#include "graph/csr.hpp"
#include "graph/digraph_algos.hpp"
#include "routing/dynamic_heights.hpp"
#include "routing/tora.hpp"
#include "service/service_harness.hpp"
#include "sim/dist_lr.hpp"
#include "sim/network.hpp"

namespace lr {

const char* relation_verdict_token(RelationVerdict verdict) {
  switch (verdict) {
    case RelationVerdict::kNotChecked:
      return "-";
    case RelationVerdict::kHolds:
      return "ok";
    case RelationVerdict::kViolated:
      return "violated";
  }
  return "?";
}

namespace {

/// Instantiates the single-step scheduler `kind` names and applies `f` to
/// it (schedulers are stateful templates, so dispatch happens here once).
template <typename F>
decltype(auto) with_single_scheduler(SchedulerKind kind, std::uint64_t seed, F&& f) {
  switch (kind) {
    case SchedulerKind::kLowestId: {
      LowestIdScheduler s;
      return f(s);
    }
    case SchedulerKind::kRandom: {
      RandomScheduler s(seed);
      return f(s);
    }
    case SchedulerKind::kRoundRobin: {
      RoundRobinScheduler s;
      return f(s);
    }
    case SchedulerKind::kFarthestFirst: {
      FarthestFirstScheduler s;
      return f(s);
    }
  }
  throw std::invalid_argument("unknown scheduler kind");
}

void fill_instance_shape(RunRecord& record, const Instance& instance) {
  record.nodes = instance.graph.num_nodes();
  record.bad_nodes = count_bad_nodes(instance);
}

/// Engine-side names of the strategy and scheduler axes (the CSR path).
EngineAlgorithm engine_algorithm(Strategy strategy) {
  switch (strategy) {
    case Strategy::kFullReversal:
      return EngineAlgorithm::kFullReversal;
    case Strategy::kPartialReversal:
      return EngineAlgorithm::kOneStepPR;
    case Strategy::kNewPR:
      return EngineAlgorithm::kNewPR;
  }
  throw std::invalid_argument("unknown strategy");
}

EnginePolicy engine_policy(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kLowestId:
      return EnginePolicy::kLowestId;
    case SchedulerKind::kRandom:
      return EnginePolicy::kRandom;
    case SchedulerKind::kRoundRobin:
      return EnginePolicy::kRoundRobin;
    case SchedulerKind::kFarthestFirst:
      return EnginePolicy::kFarthestFirst;
  }
  throw std::invalid_argument("unknown scheduler kind");
}

/// fr / pr / newpr: run to quiescence under the spec's scheduler, then
/// attach the greedy-round time measure where the strategy has one.
///
/// Two back-ends fill identical records (the equivalence is locked in by
/// tests/reversal_engine_test.cpp): the default CSR path batches the whole
/// execution through core/reversal_engine.hpp — over the sweep cache's
/// frozen snapshot when one is supplied — and the legacy path drives the
/// paper-shaped automata through the analysis layer's measure_cost.  The
/// bench_e2 A/B mode times one against the other.
void run_strategy_kernel(RunRecord& record, const Instance& instance, const CsrGraph* frozen,
                         Strategy strategy, WorkerPoolCache* pools) {
  const RunSpec& spec = record.spec;
  if (spec.path == ExecutionPath::kCsr) {
    const CsrGraph local =
        frozen != nullptr ? CsrGraph() : CsrGraph(instance.graph, instance.senses);
    const CsrGraph& csr = frozen != nullptr ? *frozen : local;
    ReversalEngine engine(csr, instance.destination);
    const EngineResult result =
        engine.run(engine_algorithm(strategy), engine_policy(spec.scheduler),
                   {.max_steps = spec.max_steps, .scheduler_seed = spec.scheduler_seed()});
    record.work = result.steps;
    record.edge_reversals = result.edge_reversals;
    record.dummy_steps = result.dummy_steps;
    record.converged = result.quiescent && result.destination_oriented;
    if (strategy != Strategy::kNewPR) {
      const EngineAlgorithm rounds_algorithm = strategy == Strategy::kFullReversal
                                                   ? EngineAlgorithm::kFullReversal
                                                   : EngineAlgorithm::kOneStepPR;
      // engine_threads != 1 shards the rounds across a worker pool (0 =
      // hardware concurrency).  The record is byte-identical either way;
      // only the wall clock moves (docs/PERFORMANCE.md).  With a
      // WorkerPoolCache the pool is borrowed (spawned once per sweep
      // worker); without one a short-lived local pool is spawned, but only
      // when the instance could plausibly clear the engine's work
      // threshold — 2|E| caps the *total* degree any round's sinks can
      // carry, so instances below it never shard (the cap is a heuristic:
      // width x max-degree can exceed it on skewed graphs, which at worst
      // keeps such a run serial, never changes its record).
      EngineRoundsOptions rounds_options{.max_rounds = spec.max_steps};
      std::optional<ThreadPool> local_pool;
      if (spec.engine_threads != 1) {
        if (pools != nullptr) {
          rounds_options.pool = pools->get(spec.engine_threads);
        } else if (2 * csr.num_edges() >= rounds_options.min_parallel_work) {
          rounds_options.pool = &local_pool.emplace(spec.engine_threads);
        }
      }
      record.rounds = engine.run_greedy_rounds(rounds_algorithm, rounds_options).rounds;
    }
    return;
  }
  const CostProfile profile = measure_cost(instance, strategy, spec.scheduler,
                                           spec.scheduler_seed(), {.max_steps = spec.max_steps});
  record.work = profile.social_cost;
  record.edge_reversals = profile.edge_reversals;
  record.dummy_steps = profile.dummy_steps;
  record.converged = profile.converged;
  if (strategy != Strategy::kNewPR) {
    const RoundStrategy round_strategy = strategy == Strategy::kFullReversal
                                             ? RoundStrategy::kFullReversal
                                             : RoundStrategy::kPartialReversal;
    record.rounds = run_greedy_rounds(instance, round_strategy, spec.max_steps).total_rounds();
  }
}

/// hybrid: a per-node random FR/PR strategy profile (the E3.4 game),
/// drawn from its own seed stream so the profile is sweep-reproducible.
void run_hybrid_kernel(RunRecord& record, const Instance& instance) {
  const RunSpec& spec = record.spec;
  std::mt19937_64 profile_rng(splitmix64(spec.instance_seed() ^ 0x9b1dULL));
  std::bernoulli_distribution flip(0.5);
  std::vector<NodeStrategy> profile(instance.graph.num_nodes());
  for (auto& strategy : profile) {
    strategy = flip(profile_rng) ? NodeStrategy::kFullReversal : NodeStrategy::kPartialReversal;
  }
  HybridStrategyAutomaton automaton(instance, std::move(profile));
  const RunResult result = with_single_scheduler(
      spec.scheduler, spec.scheduler_seed(), [&](auto& scheduler) {
        return run_to_quiescence(automaton, scheduler, {.max_steps = spec.max_steps});
      });
  record.work = result.node_steps;
  record.edge_reversals = result.edge_reversals;
  record.converged = result.quiescent && result.destination_oriented;
}

/// tora: the routing service under link churn; work is maintenance
/// reversals, messages is delivered packets.
///
/// With churn_events > 0 the kernel instead replays the spec's
/// precomputed churn schedule (make_churn_instance; drawn from the cached
/// FrozenInstance when the sweep already generated it) over the
/// dynamic-heights core, stabilizing after every event — the E10
/// steady-state regime.  Record mapping: work = total reversal steps,
/// rounds = events replayed, messages = in-place snapshot patches,
/// abstract_steps = full snapshot rebuilds after warm-up (0 = the
/// rebuild-free steady state docs/EXPERIMENTS.md promises).
void run_tora_kernel(RunRecord& record, const Instance& instance,
                     const std::vector<LinkEvent>* churn) {
  const RunSpec& spec = record.spec;
  if (spec.churn_events > 0) {
    std::vector<LinkEvent> local_churn;
    if (churn == nullptr) {
      local_churn = make_churn_instance(spec).churn;
      churn = &local_churn;
    }
    DynamicHeightsDag dag(instance.graph, instance.destination);
    dag.stabilize();
    const std::uint64_t warm_rebuilds = dag.snapshot_rebuilds();
    for (const LinkEvent& event : *churn) {
      if (event.up) {
        dag.add_link(event.u, event.v);
      } else {
        dag.remove_link(event.u, event.v);
      }
      dag.stabilize();
    }
    record.work = dag.total_reversals();
    record.rounds = churn->size();
    record.messages = dag.snapshot_patches();
    record.abstract_steps = dag.snapshot_rebuilds() - warm_rebuilds;
    record.converged = record.abstract_steps == 0;
    return;
  }
  const ToraStats stats = run_churn_scenario(instance.graph, instance.destination, spec.size, 2,
                                             spec.network_seed());
  record.work = stats.reversals;
  record.messages = stats.packets_delivered;
  record.converged = true;  // the service re-stabilizes after every event
}

/// dist-fr / dist-pr: the message-passing protocol over the simulated
/// asynchronous network, driven to convergence with resync rounds.  On the
/// CSR path with a warm sweep cache, both the network and the protocol
/// borrow the cached frozen snapshot instead of freezing their own; the
/// snapshot's contents are identical either way, so records are too.
void run_dist_kernel(RunRecord& record, const Instance& instance, const CsrGraph* frozen,
                     ReversalRule rule, WorkerPoolCache* pools) {
  const RunSpec& spec = record.spec;
  NetworkConfig config;
  config.seed = spec.network_seed();
  // Event-core knobs: the time-index backend and the sharded event loop's
  // worker count (both byte-identical to the defaults by construction;
  // tests/sim_test.cpp pins it).  With a pool cache the loop borrows the
  // worker's pool instead of spawning its own per run.
  config.scheduler = spec.sim_scheduler;
  config.sim_threads = spec.sim_threads;
  if (spec.sim_threads != 1 && pools != nullptr) {
    config.sim_pool = pools->get(spec.sim_threads);
  }
  std::optional<Network> network;
  std::optional<DistLinkReversal> protocol;
  if (frozen != nullptr) {
    network.emplace(instance.graph, config, *frozen);
    protocol.emplace(instance, rule, *network, *frozen);
  } else {
    network.emplace(instance.graph, config);
    protocol.emplace(instance, rule, *network);
  }
  const auto resync_rounds = protocol->run_with_resync();
  record.work = protocol->total_steps();
  record.messages = network->messages_sent();
  record.rounds = resync_rounds.value_or(0);
  record.converged = resync_rounds.has_value() && protocol->converged();
}

/// service: the request-serving harness (service/service_harness.hpp)
/// under random link churn.  Record mapping (docs/EXPERIMENTS.md):
/// work = requests served, messages = route hops, rounds = churn events,
/// edge_reversals = reversal steps, abstract_steps = failed requests,
/// dummy_steps = the report fingerprint (so cross-process and
/// cross-thread byte-identity checks pin the full latency histograms,
/// not just the scalar counters).  `sim_threads` is the harness's
/// parallel read-phase worker count; with a WorkerPoolCache the pool is
/// borrowed (spawned once per sweep worker), satisfying the pool-reuse
/// contract the pool-construction-counting test pins.
void run_service_kernel(RunRecord& record, const Instance& instance, WorkerPoolCache* pools) {
  const RunSpec& spec = record.spec;
  ServiceOptions options;
  options.clients = spec.service_clients;
  options.duration = spec.service_duration;
  options.workload = spec.service_workload;
  options.seed = spec.network_seed();
  options.scheduler = spec.sim_scheduler;
  options.workers = spec.sim_threads;
  if (spec.sim_threads != 1 && pools != nullptr) {
    options.pool = pools->get(spec.sim_threads);
  }
  ServiceHarness harness(instance.graph, instance.destination, options);
  const ServiceReport report = harness.run();
  record.work = report.total_completed();
  record.messages = 0;
  for (const ServiceKindStats& kind : report.kinds) record.messages += kind.hops;
  record.rounds = report.churn_events;
  record.edge_reversals = report.reversal_steps;
  record.abstract_steps = report.total_failed();
  record.dummy_steps = report.fingerprint();
  record.converged = report.total_issued() == report.total_completed() + report.total_failed();
}

void fill_simulation_result(RunRecord& record, const SimulationCheckResult& result,
                            const Orientation& concrete_orientation, NodeId destination) {
  record.work = result.concrete_steps;
  record.abstract_steps = result.abstract_steps;
  record.relation = result.ok ? RelationVerdict::kHolds : RelationVerdict::kViolated;
  record.edge_reversals = concrete_orientation.reversal_count();
  record.converged = is_destination_oriented(concrete_orientation, destination);
}

/// sim-rprime: Lemma 5.1's forward simulation, PR (set steps) refined by
/// OneStepPR.  The concrete automaton takes set actions, so only the two
/// set schedulers apply: lowest = maximal greedy sets, random = random
/// non-empty sink subsets.
void run_sim_rprime_kernel(RunRecord& record, const Instance& instance) {
  const RunSpec& spec = record.spec;
  PRAutomaton concrete(instance);
  OneStepPRAutomaton abstract(instance);
  const auto relation = [](const PRAutomaton& s, const OneStepPRAutomaton& t) {
    return relation_R_prime(s, t);
  };
  SimulationCheckResult result;
  switch (spec.scheduler) {
    case SchedulerKind::kLowestId: {
      MaximalSetScheduler scheduler;
      result = check_forward_simulation(concrete, abstract, scheduler, relation,
                                        correspondence_R_prime, spec.max_steps);
      break;
    }
    case SchedulerKind::kRandom: {
      RandomSetScheduler scheduler(spec.scheduler_seed());
      result = check_forward_simulation(concrete, abstract, scheduler, relation,
                                        correspondence_R_prime, spec.max_steps);
      break;
    }
    default:
      throw std::invalid_argument(
          "sim-rprime drives the set-step PR automaton; scheduler must be "
          "'lowest' (maximal sets) or 'random' (random sink subsets)");
  }
  fill_simulation_result(record, result, concrete.orientation(), concrete.destination());
}

/// sim-r: Lemma 5.3's forward simulation, OneStepPR refined by NewPR.
void run_sim_r_kernel(RunRecord& record, const Instance& instance) {
  const RunSpec& spec = record.spec;
  OneStepPRAutomaton concrete(instance);
  NewPRAutomaton abstract(instance);
  const SimulationCheckResult result = with_single_scheduler(
      spec.scheduler, spec.scheduler_seed(), [&](auto& scheduler) {
        return check_forward_simulation(
            concrete, abstract, scheduler,
            [](const OneStepPRAutomaton& s, const NewPRAutomaton& t) { return relation_R(s, t); },
            correspondence_R, spec.max_steps);
      });
  fill_simulation_result(record, result, concrete.orientation(), concrete.destination());
}

/// sim-rrev: the conclusion's proposed reverse relation, NewPR refined by
/// OneStepPR (dummy steps map to empty abstract sequences).
void run_sim_rrev_kernel(RunRecord& record, const Instance& instance) {
  const RunSpec& spec = record.spec;
  NewPRAutomaton concrete(instance);
  OneStepPRAutomaton abstract(instance);
  const SimulationCheckResult result = with_single_scheduler(
      spec.scheduler, spec.scheduler_seed(), [&](auto& scheduler) {
        return check_forward_simulation(
            concrete, abstract, scheduler,
            [](const NewPRAutomaton& t, const OneStepPRAutomaton& s) {
              return reverse_relation_R(t, s);
            },
            correspondence_R_reverse, spec.max_steps);
      });
  fill_simulation_result(record, result, concrete.orientation(), concrete.destination());
}

}  // namespace

SweepCache::SweepCache(std::size_t max_entries, std::string snapshot_dir)
    : max_entries_(max_entries), snapshot_dir_(std::move(snapshot_dir)) {
  if (!snapshot_dir_.empty()) {
    ::mkdir(snapshot_dir_.c_str(), 0755);  // EEXIST is the common case
  }
}

std::shared_ptr<const FrozenInstance> SweepCache::get(const RunSpec& spec) {
  const Key key{spec.topology, spec.size, spec.seed, spec.churn_events};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);  // mark most recent
      return it->second.frozen;
    }
  }
  // Build outside the lock so concurrent misses on different keys do not
  // serialize; a race on the same key wastes one duplicate build at most.
  //
  // With a snapshot directory, a churn-free workload tries the mmap file
  // first: an O(1) zero-fixup reload (the borrowed CsrGraph views point
  // straight into the checksum-verified mapping, kept alive by
  // FrozenInstance::backing).  Any load failure — missing file, torn
  // write, version skew — falls back to generating, after which the file
  // is (re)written for the next sweep.  Workloads with churn schedules
  // always generate: the schedule is derived state the file does not
  // carry.
  auto frozen = std::make_shared<FrozenInstance>();
  bool loaded = false;
  bool saved = false;
  std::string snapshot_path;
  if (!snapshot_dir_.empty() && spec.churn_events == 0) {
    snapshot_path = snapshot_dir_ + "/" + topology_token(spec.topology) + "-" +
                    std::to_string(spec.size) + "-s" + std::to_string(spec.seed) + ".lrsnap";
    try {
      auto snap = std::make_shared<Snapshot>(Snapshot::load(snapshot_path));
      frozen->instance = snap->thaw_instance();
      frozen->csr = snap->csr();  // cheap view copy aliasing the mapping
      frozen->backing = std::move(snap);
      loaded = true;
    } catch (const std::exception&) {
      // fall through to generation (and persist below)
    }
  }
  if (!loaded) {
    ChurnInstance churn = make_churn_instance(spec);
    frozen->instance = std::move(churn.instance);
    frozen->churn = std::move(churn.churn);
    frozen->csr = CsrGraph(frozen->instance.graph, frozen->instance.senses);
    if (!snapshot_path.empty()) {
      try {
        save_snapshot(snapshot_path, frozen->instance, frozen->csr);
        saved = true;
      } catch (const std::exception&) {
        // Persistence is best-effort: an unwritable directory degrades to
        // the generate-every-sweep behavior, never fails the run.
      }
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  if (loaded) ++snapshot_loads_;
  if (saved) ++snapshot_saves_;
  const auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);  // lost the build race
    return it->second.frozen;
  }
  it->second.frozen = std::move(frozen);
  lru_.push_front(key);
  it->second.lru_position = lru_.begin();
  if (max_entries_ != 0 && entries_.size() > max_entries_) {
    // Evict the least recently used entry (never the one just inserted:
    // max_entries_ >= 1, so the list has at least two entries here).
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  return it->second.frozen;
}

std::size_t SweepCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t SweepCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SweepCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t SweepCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t SweepCache::snapshot_loads() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_loads_;
}

std::uint64_t SweepCache::snapshot_saves() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_saves_;
}

ThreadPool* WorkerPoolCache::get(std::size_t threads) {
  for (auto& [size, pool] : pools_) {
    if (size == threads) return pool.get();
  }
  pools_.emplace_back(threads, std::make_unique<ThreadPool>(threads));
  return pools_.back().second.get();
}

RunRecord execute_run(const RunSpec& spec) { return execute_run(spec, nullptr, nullptr); }

RunRecord execute_run(const RunSpec& spec, SweepCache* cache) {
  return execute_run(spec, cache, nullptr);
}

RunRecord execute_run(const RunSpec& spec, SweepCache* cache, WorkerPoolCache* pools) {
  RunRecord record;
  record.spec = spec;
  record.run_seed = spec.instance_seed();
  try {
    // The CSR path draws the frozen workload from the sweep cache; the
    // legacy path regenerates per run (the historical cost model the A/B
    // harness compares against).  Generation is deterministic in the axis
    // values, so the two sources yield byte-identical instances.
    std::shared_ptr<const FrozenInstance> shared;
    Instance local;
    const Instance* instance = nullptr;
    const CsrGraph* frozen = nullptr;
    const std::vector<LinkEvent>* churn = nullptr;
    if (cache != nullptr && spec.path == ExecutionPath::kCsr) {
      shared = cache->get(spec);
      instance = &shared->instance;
      frozen = &shared->csr;
      // A snapshot-file reload carries no schedule; leave churn null so
      // the tora kernel derives it from the spec (same bytes either way).
      if (!shared->churn.empty() || spec.churn_events == 0) churn = &shared->churn;
    } else {
      local = make_instance(spec);
      instance = &local;
    }
    fill_instance_shape(record, *instance);
    switch (spec.algorithm) {
      case AlgorithmKind::kFullReversal:
        run_strategy_kernel(record, *instance, frozen, Strategy::kFullReversal, pools);
        break;
      case AlgorithmKind::kOneStepPR:
        run_strategy_kernel(record, *instance, frozen, Strategy::kPartialReversal, pools);
        break;
      case AlgorithmKind::kNewPR:
        run_strategy_kernel(record, *instance, frozen, Strategy::kNewPR, pools);
        break;
      case AlgorithmKind::kHybrid:
        run_hybrid_kernel(record, *instance);
        break;
      case AlgorithmKind::kTora:
        run_tora_kernel(record, *instance, churn);
        break;
      case AlgorithmKind::kDistFR:
        run_dist_kernel(record, *instance, frozen, ReversalRule::kFull, pools);
        break;
      case AlgorithmKind::kDistPR:
        run_dist_kernel(record, *instance, frozen, ReversalRule::kPartial, pools);
        break;
      case AlgorithmKind::kSimRPrime:
        run_sim_rprime_kernel(record, *instance);
        break;
      case AlgorithmKind::kSimR:
        run_sim_r_kernel(record, *instance);
        break;
      case AlgorithmKind::kSimRRev:
        run_sim_rrev_kernel(record, *instance);
        break;
      case AlgorithmKind::kService:
        run_service_kernel(record, *instance, pools);
        break;
    }
  } catch (const std::exception& error) {
    record.error = error.what();
    record.converged = false;
  }
  return record;
}

namespace {

std::string fmt_mean(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string u64(std::uint64_t value) { return std::to_string(value); }

}  // namespace

Table SweepReport::records_table() const {
  Table table;
  table.columns = {"topology",    "size",        "algorithm",      "scheduler",
                   "seed",        "run_seed",    "nodes",          "bad_nodes",
                   "work",        "edge_reversals", "rounds",      "dummy_steps",
                   "abstract_steps", "messages", "converged",      "relation",
                   "status"};
  for (const RunRecord& record : records) {
    table.add_row({topology_token(record.spec.topology), u64(record.spec.size),
                   algorithm_token(record.spec.algorithm), scheduler_token(record.spec.scheduler),
                   u64(record.spec.seed), u64(record.run_seed), u64(record.nodes),
                   u64(record.bad_nodes), u64(record.work), u64(record.edge_reversals),
                   u64(record.rounds), u64(record.dummy_steps), u64(record.abstract_steps),
                   u64(record.messages), record.converged ? "yes" : "no",
                   relation_verdict_token(record.relation),
                   record.error.empty() ? "ok" : "error: " + record.error});
  }
  return table;
}

Table SweepReport::aggregate_table() const {
  struct Group {
    const RunRecord* first = nullptr;
    std::uint64_t runs = 0;
    std::uint64_t errors = 0;
    std::uint64_t converged = 0;
    std::uint64_t relation_checked = 0;
    std::uint64_t relation_ok = 0;
    Aggregate work;
    Aggregate edge_reversals;
    Aggregate rounds;
  };
  std::vector<Group> groups;
  std::map<std::tuple<TopologyKind, std::size_t, AlgorithmKind, SchedulerKind>, std::size_t>
      group_index;
  for (const RunRecord& record : records) {
    const auto key = std::tuple(record.spec.topology, record.spec.size, record.spec.algorithm,
                                record.spec.scheduler);
    const auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().first = &record;
    }
    Group& group = groups[it->second];
    ++group.runs;
    if (!record.error.empty()) {
      ++group.errors;
      continue;  // error runs carry no measurements
    }
    if (record.converged) ++group.converged;
    if (record.relation != RelationVerdict::kNotChecked) {
      ++group.relation_checked;
      if (record.relation == RelationVerdict::kHolds) ++group.relation_ok;
    }
    group.work.add(static_cast<double>(record.work));
    group.edge_reversals.add(static_cast<double>(record.edge_reversals));
    group.rounds.add(static_cast<double>(record.rounds));
  }

  Table table;
  table.columns = {"topology",   "size",      "algorithm",  "scheduler",
                   "runs",       "errors",    "converged",  "work_total",
                   "work_mean",  "work_min",  "work_max",   "edge_reversals_mean",
                   "rounds_mean", "relation_checked", "relation_ok"};
  for (const Group& group : groups) {
    const RunSpec& spec = group.first->spec;
    table.add_row({topology_token(spec.topology), u64(spec.size), algorithm_token(spec.algorithm),
                   scheduler_token(spec.scheduler), u64(group.runs), u64(group.errors),
                   u64(group.converged), u64(static_cast<std::uint64_t>(group.work.sum)),
                   fmt_mean(group.work.mean()), u64(static_cast<std::uint64_t>(group.work.min)),
                   u64(static_cast<std::uint64_t>(group.work.max)),
                   fmt_mean(group.edge_reversals.mean()), fmt_mean(group.rounds.mean()),
                   u64(group.relation_checked), u64(group.relation_ok)});
  }
  return table;
}

ScenarioRunner::ScenarioRunner(RunnerOptions options)
    : cache_max_entries_(options.cache_max_entries),
      snapshot_dir_(std::move(options.snapshot_dir)),
      pool_(options.threads) {
  worker_pools_.resize(pool_.size());
}

SweepReport ScenarioRunner::run(const SweepSpec& spec) const {
  SweepCache cache(cache_max_entries_, snapshot_dir_);  // dies with the sweep
  SweepReport report{run_all(spec.expand(), cache), {}};
  report.cache = {cache.entries(),       cache.hits(),           cache.misses(),
                  cache.evictions(),     cache.snapshot_loads(), cache.snapshot_saves()};
  return report;
}

std::vector<RunRecord> ScenarioRunner::run_all(const std::vector<RunSpec>& specs) const {
  SweepCache cache(cache_max_entries_, snapshot_dir_);
  return run_all(specs, cache);
}

std::vector<RunRecord> ScenarioRunner::run_all(const std::vector<RunSpec>& specs,
                                               SweepCache& cache) const {
  std::vector<RunRecord> records(specs.size());
  if (specs.empty()) return records;
  std::atomic<std::size_t> cursor{0};
  const std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
  pool_.run([this, &specs, &records, &cursor, &cache](std::size_t worker) {
    WorkerPoolCache& pools = worker_pools_[worker];
    while (true) {
      const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= specs.size()) return;
      records[index] = execute_run(specs[index], &cache, &pools);
    }
  });
  return records;
}

}  // namespace lr

#include "runner/shard_protocol.hpp"

#include <algorithm>
#include <cstring>

namespace lr {

namespace {

// ---------------------------------------------------------------------------
// Primitive little-endian encoding
// ---------------------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) { out.push_back(value); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int byte = 0; byte < 4; ++byte) out.push_back((value >> (8 * byte)) & 0xffu);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) out.push_back((value >> (8 * byte)) & 0xffu);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

std::uint64_t fnv1a(FrameType type, const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  };
  mix(static_cast<std::uint8_t>(type));
  for (std::size_t i = 0; i < size; ++i) mix(data[i]);
  return hash;
}

/// Bounds-checked little-endian decoding cursor over one frame payload.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int byte = 0; byte < 4; ++byte) value |= std::uint32_t{data_[pos_++]} << (8 * byte);
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int byte = 0; byte < 8; ++byte) value |= std::uint64_t{data_[pos_++]} << (8 * byte);
    return value;
  }

  std::string string() {
    const std::uint32_t length = u32();
    need(length);
    std::string value(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return value;
  }

  /// Every payload decoder ends with this: leftover bytes mean the
  /// sender and receiver disagree about the schema.
  void expect_exhausted() const {
    if (pos_ != size_) throw ShardProtocolError("shard frame payload has trailing bytes");
  }

 private:
  void need(std::size_t bytes) const {
    if (size_ - pos_ < bytes) throw ShardProtocolError("shard frame payload truncated");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Decodes an enum byte, rejecting values outside the known range so a
/// corrupted record can never smuggle an out-of-range discriminator into
/// the merged report.
template <typename Enum>
Enum checked_enum(std::uint8_t raw, Enum max, const char* what) {
  if (raw > static_cast<std::uint8_t>(max)) {
    throw ShardProtocolError(std::string("shard frame: bad ") + what + " value " +
                             std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

// ---------------------------------------------------------------------------
// Payload encoders / decoders per frame type
// ---------------------------------------------------------------------------

void encode_payload(std::vector<std::uint8_t>& out, const HelloFrame& hello) {
  put_u32(out, hello.version);
  put_u64(out, hello.shard);
  put_u64(out, hello.begin);
  put_u64(out, hello.end);
  put_u64(out, hello.attempt);
}

HelloFrame decode_hello(Cursor& cursor) {
  HelloFrame hello;
  hello.version = cursor.u32();
  hello.shard = cursor.u64();
  hello.begin = cursor.u64();
  hello.end = cursor.u64();
  hello.attempt = cursor.u64();
  cursor.expect_exhausted();
  return hello;
}

void encode_payload(std::vector<std::uint8_t>& out, const RecordFrame& frame) {
  put_u64(out, frame.global_index);
  const RunSpec& spec = frame.record.spec;
  put_u8(out, static_cast<std::uint8_t>(spec.topology));
  put_u64(out, spec.size);
  put_u8(out, static_cast<std::uint8_t>(spec.algorithm));
  put_u8(out, static_cast<std::uint8_t>(spec.scheduler));
  put_u64(out, spec.seed);
  put_u64(out, spec.max_steps);
  put_u8(out, static_cast<std::uint8_t>(spec.path));
  put_u64(out, spec.engine_threads);
  put_u8(out, static_cast<std::uint8_t>(spec.sim_scheduler));
  put_u64(out, spec.sim_threads);
  put_u8(out, static_cast<std::uint8_t>(spec.service_workload));
  put_u64(out, spec.service_clients);
  put_u64(out, spec.service_duration);
  put_u64(out, spec.churn_events);
  const RunRecord& record = frame.record;
  put_u64(out, record.run_seed);
  put_u64(out, record.nodes);
  put_u64(out, record.bad_nodes);
  put_u64(out, record.work);
  put_u64(out, record.edge_reversals);
  put_u64(out, record.rounds);
  put_u64(out, record.dummy_steps);
  put_u64(out, record.abstract_steps);
  put_u64(out, record.messages);
  put_u8(out, record.converged ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(record.relation));
  put_string(out, record.error);
}

RecordFrame decode_record(Cursor& cursor) {
  RecordFrame frame;
  frame.global_index = cursor.u64();
  RunSpec& spec = frame.record.spec;
  spec.topology = checked_enum(cursor.u8(), TopologyKind::kWaypoint, "topology");
  spec.size = static_cast<std::size_t>(cursor.u64());
  spec.algorithm = checked_enum(cursor.u8(), AlgorithmKind::kService, "algorithm");
  spec.scheduler = checked_enum(cursor.u8(), SchedulerKind::kFarthestFirst, "scheduler");
  spec.seed = cursor.u64();
  spec.max_steps = cursor.u64();
  spec.path = checked_enum(cursor.u8(), ExecutionPath::kLegacy, "path");
  spec.engine_threads = static_cast<std::size_t>(cursor.u64());
  spec.sim_scheduler = checked_enum(cursor.u8(), EventSchedulerKind::kWheel, "sim_scheduler");
  spec.sim_threads = static_cast<std::size_t>(cursor.u64());
  spec.service_workload = checked_enum(cursor.u8(), ServiceWorkload::kMixed, "service_workload");
  spec.service_clients = static_cast<std::size_t>(cursor.u64());
  spec.service_duration = cursor.u64();
  spec.churn_events = static_cast<std::size_t>(cursor.u64());
  RunRecord& record = frame.record;
  record.run_seed = cursor.u64();
  record.nodes = cursor.u64();
  record.bad_nodes = cursor.u64();
  record.work = cursor.u64();
  record.edge_reversals = cursor.u64();
  record.rounds = cursor.u64();
  record.dummy_steps = cursor.u64();
  record.abstract_steps = cursor.u64();
  record.messages = cursor.u64();
  const std::uint8_t converged = cursor.u8();
  if (converged > 1) throw ShardProtocolError("shard frame: bad converged flag");
  record.converged = converged == 1;
  record.relation = checked_enum(cursor.u8(), RelationVerdict::kViolated, "relation");
  record.error = cursor.string();
  cursor.expect_exhausted();
  return frame;
}

void encode_payload(std::vector<std::uint8_t>& out, const HeartbeatFrame& heartbeat) {
  put_u8(out, heartbeat.from_coordinator);
  put_u64(out, heartbeat.sequence);
}

HeartbeatFrame decode_heartbeat(Cursor& cursor) {
  HeartbeatFrame heartbeat;
  heartbeat.from_coordinator = cursor.u8();
  if (heartbeat.from_coordinator > 1) {
    throw ShardProtocolError("shard frame: bad heartbeat direction flag");
  }
  heartbeat.sequence = cursor.u64();
  cursor.expect_exhausted();
  return heartbeat;
}

void encode_payload(std::vector<std::uint8_t>& out, const ShardRequestFrame& request) {
  put_u32(out, request.version);
  put_u64(out, request.shard);
  put_u64(out, request.begin);
  put_u64(out, request.end);
  put_u64(out, request.total);
  put_u64(out, request.attempt);
  put_u64(out, request.threads);
  put_u64(out, request.cache_cap);
  put_u32(out, request.heartbeat_ms);
  put_u32(out, request.liveness_timeout_ms);
  put_string(out, request.spec_text);
}

ShardRequestFrame decode_request(Cursor& cursor) {
  ShardRequestFrame request;
  request.version = cursor.u32();
  request.shard = cursor.u64();
  request.begin = cursor.u64();
  request.end = cursor.u64();
  request.total = cursor.u64();
  request.attempt = cursor.u64();
  request.threads = cursor.u64();
  request.cache_cap = cursor.u64();
  request.heartbeat_ms = cursor.u32();
  request.liveness_timeout_ms = cursor.u32();
  request.spec_text = cursor.string();
  cursor.expect_exhausted();
  return request;
}

void encode_payload(std::vector<std::uint8_t>& out, const ShardErrorFrame& error) {
  put_string(out, error.message);
}

ShardErrorFrame decode_error(Cursor& cursor) {
  ShardErrorFrame error;
  error.message = cursor.string();
  cursor.expect_exhausted();
  return error;
}

void encode_payload(std::vector<std::uint8_t>& out, const ShardDoneFrame& done) {
  put_u64(out, done.records_emitted);
  put_u64(out, done.cache.entries);
  put_u64(out, done.cache.hits);
  put_u64(out, done.cache.misses);
  put_u64(out, done.cache.evictions);
}

ShardDoneFrame decode_done(Cursor& cursor) {
  ShardDoneFrame done;
  done.records_emitted = cursor.u64();
  done.cache.entries = static_cast<std::size_t>(cursor.u64());
  done.cache.hits = cursor.u64();
  done.cache.misses = cursor.u64();
  done.cache.evictions = cursor.u64();
  cursor.expect_exhausted();
  return done;
}

template <typename Payload>
std::vector<std::uint8_t> encode(FrameType type, const Payload& payload) {
  std::vector<std::uint8_t> body;
  encode_payload(body, payload);
  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 17);
  put_u32(out, kFrameMagic);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  put_u64(out, fnv1a(type, body.data(), body.size()));
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const HelloFrame& hello) {
  return encode(FrameType::kHello, hello);
}

std::vector<std::uint8_t> encode_frame(const RecordFrame& record) {
  return encode(FrameType::kRecord, record);
}

std::vector<std::uint8_t> encode_frame(const ShardDoneFrame& done) {
  return encode(FrameType::kShardDone, done);
}

std::vector<std::uint8_t> encode_frame(const HeartbeatFrame& heartbeat) {
  return encode(FrameType::kHeartbeat, heartbeat);
}

std::vector<std::uint8_t> encode_frame(const ShardRequestFrame& request) {
  return encode(FrameType::kShardRequest, request);
}

std::vector<std::uint8_t> encode_frame(const ShardErrorFrame& error) {
  return encode(FrameType::kShardError, error);
}

void FrameParser::feed(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: drop fully decoded bytes once they dominate the
  // buffer so a long-lived worker stream stays O(frame), not O(stream).
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameParser::next() {
  constexpr std::size_t kHeaderSize = 4 + 1 + 4;  // magic + type + payload_len
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderSize) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  std::uint32_t magic = 0;
  for (int byte = 0; byte < 4; ++byte) magic |= std::uint32_t{head[byte]} << (8 * byte);
  if (magic != kFrameMagic) throw ShardProtocolError("shard frame: bad magic");
  const std::uint8_t raw_type = head[4];
  if (raw_type < static_cast<std::uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<std::uint8_t>(FrameType::kShardError)) {
    throw ShardProtocolError("shard frame: unknown frame type " + std::to_string(raw_type));
  }
  std::uint32_t payload_len = 0;
  for (int byte = 0; byte < 4; ++byte) payload_len |= std::uint32_t{head[5 + byte]} << (8 * byte);
  if (payload_len > kMaxFramePayload) {
    throw ShardProtocolError("shard frame: oversized payload (" + std::to_string(payload_len) +
                             " bytes)");
  }
  if (available < kHeaderSize + payload_len + 8) return std::nullopt;  // checksum still missing
  const std::uint8_t* payload = head + kHeaderSize;
  const FrameType type = static_cast<FrameType>(raw_type);
  std::uint64_t checksum = 0;
  for (int byte = 0; byte < 8; ++byte) {
    checksum |= std::uint64_t{payload[payload_len + byte]} << (8 * byte);
  }
  if (checksum != fnv1a(type, payload, payload_len)) {
    throw ShardProtocolError("shard frame: checksum mismatch");
  }
  Cursor cursor(payload, payload_len);
  Frame frame;
  frame.type = type;
  switch (type) {
    case FrameType::kHello:
      frame.hello = decode_hello(cursor);
      break;
    case FrameType::kRecord:
      frame.record = decode_record(cursor);
      break;
    case FrameType::kShardDone:
      frame.done = decode_done(cursor);
      break;
    case FrameType::kHeartbeat:
      frame.heartbeat = decode_heartbeat(cursor);
      break;
    case FrameType::kShardRequest:
      frame.request = decode_request(cursor);
      break;
    case FrameType::kShardError:
      frame.error = decode_error(cursor);
      break;
  }
  consumed_ += kHeaderSize + payload_len + 8;
  return frame;
}

}  // namespace lr

#include "runner/shard_coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "runner/shard_protocol.hpp"

namespace lr {

namespace {

using Clock = std::chrono::steady_clock;

/// The spec axes and scalars must survive the text round-trip to the
/// worker exactly; every record frame is cross-checked against the
/// coordinator's own expansion through this.
bool specs_equal(const RunSpec& a, const RunSpec& b) {
  return a.topology == b.topology && a.size == b.size && a.algorithm == b.algorithm &&
         a.scheduler == b.scheduler && a.seed == b.seed && a.max_steps == b.max_steps &&
         a.path == b.path && a.engine_threads == b.engine_threads &&
         a.sim_scheduler == b.sim_scheduler && a.sim_threads == b.sim_threads &&
         a.service_workload == b.service_workload && a.service_clients == b.service_clients &&
         a.service_duration == b.service_duration && a.churn_events == b.churn_events;
}

constexpr std::size_t kNoEndpoint = static_cast<std::size_t>(-1);

/// One endpoint the coordinator can dispatch to, with its liveness score.
struct Endpoint {
  std::shared_ptr<ShardTransport> transport;
  std::size_t consecutive_failures = 0;
  bool dead = false;
};

/// One live shard attempt, as the coordinator tracks it.
struct LiveAttempt {
  std::size_t shard = 0;
  std::size_t endpoint = kNoEndpoint;
  std::unique_ptr<ShardChannel> channel;
  std::size_t next_index = 0;  ///< next global run index the shard owes
  bool hello_seen = false;
  bool done_seen = false;
  FrameParser parser;
  Clock::time_point started;
  Clock::time_point deadline;  ///< inactivity watchdog expiry
  long long backoff_ms = 0;    ///< delay the retry policy imposed before dispatch
  SweepCacheStats cache;       ///< from the shard-done frame
};

/// A shard awaiting (re)dispatch.
struct PendingShard {
  std::size_t shard = 0;
  Clock::time_point not_before;        ///< retry-policy gate
  std::size_t avoid_endpoint = kNoEndpoint;  ///< endpoint of the last failure
  long long backoff_ms = 0;            ///< the gate's delay, for the attempt log
};

long long elapsed_ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
}

}  // namespace

ShardCoordinator::ShardCoordinator(CoordinatorOptions options,
                                   std::vector<std::shared_ptr<ShardTransport>> transports,
                                   std::shared_ptr<ShardTransport> fallback)
    : options_(std::move(options)),
      transports_(std::move(transports)),
      fallback_(std::move(fallback)) {
  if (transports_.empty()) {
    throw std::invalid_argument("ShardCoordinator: at least one transport is required");
  }
  for (const auto& transport : transports_) {
    if (transport == nullptr) {
      throw std::invalid_argument("ShardCoordinator: null transport");
    }
  }
}

std::size_t ShardCoordinator::total_capacity() const noexcept {
  std::size_t capacity = 0;
  for (const auto& transport : transports_) capacity += transport->capacity();
  return capacity;
}

SweepReport ShardCoordinator::run(const SweepSpec& spec) {
  const std::vector<RunSpec> runs = spec.expand();
  const std::size_t total = runs.size();
  diagnostics_.clear();
  fallback_engaged_ = false;
  SweepReport report;
  report.records.resize(total);
  if (total == 0) return report;

  const std::vector<ShardRange> ranges = shard_ranges(total, total_capacity());
  const std::size_t shards = ranges.size();
  diagnostics_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    diagnostics_[s].shard = s;
    diagnostics_[s].range = ranges[s];
  }

  const std::string spec_text = format_sweep_spec(spec);
  int timeout_ms = options_.timeout_ms;
  if (const char* env = std::getenv("LR_TEST_WORKER_TIMEOUT_MS")) {
    timeout_ms = std::max(1, std::atoi(env));
  }
  const int heartbeat_ms =
      options_.heartbeat_ms > 0 ? options_.heartbeat_ms : std::max(10, timeout_ms / 4);
  const std::size_t max_attempts = std::max<std::size_t>(1, options_.retry.max_attempts);

  std::vector<Endpoint> endpoints;
  endpoints.reserve(transports_.size() + 1);
  for (const auto& transport : transports_) endpoints.push_back({transport});

  const SigpipeGuard sigpipe_guard;
  std::vector<SweepCacheStats> shard_cache(shards);
  std::vector<LiveAttempt> live;
  std::vector<PendingShard> pending;
  pending.reserve(shards);
  const Clock::time_point start_now = Clock::now();
  for (std::size_t s = 0; s < shards; ++s) pending.push_back({s, start_now, kNoEndpoint, 0});
  std::size_t completed = 0;
  bool exhausted = false;       // some shard ran out of attempts
  bool nowhere_to_run = false;  // every endpoint dead with work outstanding
  std::uint64_t heartbeat_sequence = 0;
  Clock::time_point next_heartbeat = Clock::now() + std::chrono::milliseconds(heartbeat_ms);

  const auto busy_on = [&](std::size_t endpoint) {
    std::size_t count = 0;
    for (const LiveAttempt& attempt : live) {
      if (attempt.endpoint == endpoint) ++count;
    }
    return count;
  };

  // Appends the attempt's failure line, charges the endpoint's liveness
  // score, and re-queues the shard behind its backoff gate — or declares
  // the budget exhausted.
  const auto record_failure = [&](const LiveAttempt& attempt, const std::string& cause) {
    ShardDiagnostics& diag = diagnostics_[attempt.shard];
    diag.failures.push_back("attempt " + std::to_string(diag.attempts) + ": " + cause);
    diag.attempt_log.push_back({diag.attempts - 1,
                                attempt.endpoint == kNoEndpoint
                                    ? std::string("unassigned")
                                    : endpoints[attempt.endpoint].transport->endpoint(),
                                cause, elapsed_ms_since(attempt.started), attempt.backoff_ms});
    if (attempt.endpoint != kNoEndpoint) {
      Endpoint& endpoint = endpoints[attempt.endpoint];
      if (++endpoint.consecutive_failures >= options_.endpoint_failure_threshold) {
        endpoint.dead = true;
      }
    }
    if (diag.attempts < max_attempts) {
      const auto backoff = options_.retry.delay(attempt.shard, diag.attempts);
      pending.push_back(
          {attempt.shard, Clock::now() + backoff, attempt.endpoint, backoff.count()});
    } else {
      exhausted = true;
    }
  };

  // Validates and applies one decoded frame from a live attempt; returns
  // a failure description, or empty when the frame was in contract.
  const auto apply_frame = [&](LiveAttempt& attempt, const Frame& frame) -> std::string {
    const std::size_t s = attempt.shard;
    const ShardRange& range = ranges[s];
    if (frame.type == FrameType::kHeartbeat) {
      // Liveness only — the read already pushed the watchdog deadline.
      // Direction is still validated: a coordinator beacon echoed back
      // means a confused peer, which must not pass for liveness.
      if (frame.heartbeat.from_coordinator != 0) {
        return "worker echoed a coordinator heartbeat";
      }
      return {};
    }
    if (frame.type == FrameType::kShardRequest) {
      return "worker sent a shard-request frame (coordinator-only frame)";
    }
    if (frame.type == FrameType::kShardError) {
      return "worker refused shard: " + frame.error.message;
    }
    if (frame.type == FrameType::kHello) {
      if (attempt.hello_seen) return "duplicate hello frame";
      const HelloFrame& hello = frame.hello;
      if (hello.version != kShardProtocolVersion) {
        return "protocol version mismatch (worker " + std::to_string(hello.version) +
               ", parent " + std::to_string(kShardProtocolVersion) + ")";
      }
      if (hello.shard != s || hello.begin != range.begin || hello.end != range.end) {
        return "hello frame names the wrong shard";
      }
      attempt.hello_seen = true;
      return {};
    }
    if (!attempt.hello_seen) return "frame before hello";
    if (attempt.done_seen) return "frame after shard-done";
    if (frame.type == FrameType::kRecord) {
      const RecordFrame& record = frame.record;
      if (record.global_index != attempt.next_index || record.global_index >= range.end) {
        return "out-of-order record (got run #" + std::to_string(record.global_index) +
               ", expected #" + std::to_string(attempt.next_index) + ")";
      }
      if (!specs_equal(record.record.spec, runs[record.global_index])) {
        return "record #" + std::to_string(record.global_index) +
               " carries a spec that differs from the parent's expansion";
      }
      report.records[record.global_index] = record.record;
      ++attempt.next_index;
      return {};
    }
    // Shard done: every run must be accounted for, exactly once.
    if (attempt.next_index != range.end || frame.done.records_emitted != range.size()) {
      return "shard-done before all records arrived (" +
             std::to_string(attempt.next_index - range.begin) + "/" +
             std::to_string(range.size()) + ")";
    }
    attempt.done_seen = true;
    attempt.cache = frame.done.cache;
    return {};
  };

  while (!exhausted && !nowhere_to_run && completed < shards) {
    const bool all_dead =
        std::all_of(endpoints.begin(), endpoints.end(), [](const Endpoint& e) { return e.dead; });
    if (all_dead && fallback_ != nullptr && !fallback_engaged_) {
      // Graceful degradation: every remote endpoint is gone, so the held-
      // back local transport joins the endpoint set and inherits the
      // unfinished shards.
      endpoints.push_back({fallback_});
      fallback_engaged_ = true;
    } else if (all_dead && live.empty() && !pending.empty()) {
      nowhere_to_run = true;
      break;
    }

    // Dispatch every pending shard whose backoff gate has passed onto a
    // live endpoint with a free lane, preferring an endpoint other than
    // the one that just failed it (reassignment on host death).
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < pending.size() && !exhausted;) {
      if (pending[i].not_before > now) {
        ++i;
        continue;
      }
      std::size_t chosen = kNoEndpoint;
      std::size_t fallback_choice = kNoEndpoint;
      for (std::size_t e = 0; e < endpoints.size(); ++e) {
        if (endpoints[e].dead) continue;
        if (busy_on(e) >= endpoints[e].transport->capacity()) continue;
        if (e == pending[i].avoid_endpoint) {
          fallback_choice = e;
          continue;
        }
        chosen = e;
        break;
      }
      if (chosen == kNoEndpoint) chosen = fallback_choice;
      if (chosen == kNoEndpoint) {
        ++i;  // no free lane right now; poll below frees one
        continue;
      }
      const PendingShard job = pending[i];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));

      ShardDiagnostics& diag = diagnostics_[job.shard];
      ++diag.attempts;
      ShardAssignment assignment;
      assignment.shard = job.shard;
      assignment.range = ranges[job.shard];
      assignment.total = total;
      assignment.attempt = diag.attempts - 1;
      assignment.spec_text = spec_text;
      assignment.threads = options_.threads;
      assignment.cache_cap = options_.cache_cap;
      assignment.snapshot_dir = options_.snapshot_dir;
      assignment.start_timeout_ms = options_.start_timeout_ms;
      assignment.heartbeat_ms = heartbeat_ms;
      // The worker tolerates a few missed coordinator beacons before
      // declaring the coordinator gone and unwinding its session.
      assignment.liveness_timeout_ms = std::max(2 * timeout_ms, 2'000);

      LiveAttempt attempt;
      attempt.shard = job.shard;
      attempt.endpoint = chosen;
      attempt.started = Clock::now();
      attempt.backoff_ms = job.backoff_ms;
      ShardStart started = endpoints[chosen].transport->start(assignment);
      if (started.channel == nullptr) {
        record_failure(attempt, started.error);
        continue;  // re-scan from the same index (erase shifted the rest)
      }
      attempt.channel = std::move(started.channel);
      attempt.next_index = ranges[job.shard].begin;
      attempt.deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
      live.push_back(std::move(attempt));
    }
    if (exhausted || completed == shards) break;

    // Multiplex all live attempts; wake at the earliest of any watchdog
    // deadline, backoff gate, or the next coordinator beacon.
    std::vector<struct pollfd> fds;
    fds.reserve(live.size());
    const Clock::time_point after_dispatch = Clock::now();
    Clock::time_point earliest = next_heartbeat;
    for (const LiveAttempt& attempt : live) {
      fds.push_back({attempt.channel->poll_fd(), POLLIN, 0});
      earliest = std::min(earliest, attempt.deadline);
    }
    for (const PendingShard& job : pending) {
      // A past-due job still queued is waiting for a lane, not the
      // clock; lanes free via fd events or deadlines, so a passed gate
      // must not clamp this wait to a busy spin.
      if (job.not_before > after_dispatch) earliest = std::min(earliest, job.not_before);
    }
    const auto wait_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(earliest - Clock::now()).count();
    ::poll(fds.data(), fds.size(), static_cast<int>(std::clamp<long long>(wait_ms, 0, 1000)));
    const Clock::time_point after_poll = Clock::now();

    // Coordinator beacons: prove to every live worker that this end is
    // still alive.  A beacon that cannot be written is a dead channel.
    const bool send_beacons = after_poll >= next_heartbeat;
    if (send_beacons) next_heartbeat = after_poll + std::chrono::milliseconds(heartbeat_ms);

    for (std::size_t i = 0; i < live.size();) {
      LiveAttempt& attempt = live[i];
      std::string failure;
      bool shard_complete = false;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        // Drain the channel and the parser until would-block, EOF, or an
        // error.
        while (failure.empty() && !shard_complete) {
          std::uint8_t buffer[65536];
          const ChannelRead read = attempt.channel->read_some(buffer, sizeof(buffer));
          if (read.kind == ChannelRead::Kind::kData) {
            attempt.deadline = after_poll + std::chrono::milliseconds(timeout_ms);
            attempt.parser.feed(buffer, read.bytes);
            try {
              while (auto frame = attempt.parser.next()) {
                failure = apply_frame(attempt, *frame);
                if (!failure.empty()) break;
                if (attempt.done_seen) {
                  shard_complete = true;
                  break;
                }
              }
            } catch (const ShardProtocolError& error) {
              failure = error.what();
            }
            continue;
          }
          if (read.kind == ChannelRead::Kind::kEof) {
            failure = attempt.parser.mid_frame()
                          ? "stream truncated mid-frame"
                          : "worker exited before completing its shard";
            break;
          }
          if (read.kind == ChannelRead::Kind::kError) {
            failure = read.error;
            break;
          }
          break;  // would block; nothing buffered
        }
      }
      if (shard_complete) {
        attempt.channel->complete();
        diagnostics_[attempt.shard].completed = true;
        diagnostics_[attempt.shard].attempt_log.push_back(
            {diagnostics_[attempt.shard].attempts - 1,
             endpoints[attempt.endpoint].transport->endpoint(), "ok",
             elapsed_ms_since(attempt.started), attempt.backoff_ms});
        shard_cache[attempt.shard] = attempt.cache;
        Endpoint& endpoint = endpoints[attempt.endpoint];
        endpoint.consecutive_failures = 0;
        endpoint.dead = false;  // a completing endpoint is alive, whatever we presumed
        ++completed;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (failure.empty() && after_poll >= attempt.deadline) {
        failure = "stalled: no frame within " + std::to_string(timeout_ms) + " ms";
      }
      if (failure.empty() && send_beacons) {
        const std::string beacon_error = attempt.channel->send_heartbeat(heartbeat_sequence++);
        if (!beacon_error.empty()) failure = beacon_error;
      }
      if (!failure.empty()) {
        const std::string status = attempt.channel->abort();
        // Invalidate the attempt's partial merge: the retry re-emits the
        // shard from its beginning (records are pure functions of their
        // spec, so completed slots are simply overwritten identically).
        record_failure(attempt, failure + " (" + status + ")");
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
  }

  if (exhausted || nowhere_to_run) {
    for (LiveAttempt& attempt : live) attempt.channel->abort();
    std::string message =
        nowhere_to_run
            ? options_.label +
                  " failed: every endpoint is dead with shards outstanding (no fallback left)"
            : options_.label + " failed: retry budget exhausted (" +
                  std::to_string(max_attempts) + " attempt(s) per shard)";
    for (const ShardDiagnostics& diag : diagnostics_) {
      if (diag.failures.empty()) continue;
      message += "\n  shard " + std::to_string(diag.shard) + " (runs [" +
                 std::to_string(diag.range.begin) + ", " + std::to_string(diag.range.end) +
                 "), " + (diag.completed ? "completed" : "INCOMPLETE") + "):";
      for (const std::string& failure : diag.failures) message += "\n    " + failure;
    }
    throw std::runtime_error(message);
  }

  for (const SweepCacheStats& cache : shard_cache) {
    report.cache.entries += cache.entries;
    report.cache.hits += cache.hits;
    report.cache.misses += cache.misses;
    report.cache.evictions += cache.evictions;
  }
  return report;
}

namespace {

/// Builds the coordinator a MultiHostShardRunner drives: one TCP
/// transport per host (each wrapped in a FaultyTransport when the
/// LR_TEST_TRANSPORT_FAULT knob is set), plus the optional local
/// process fallback.
ShardCoordinator make_multi_host_coordinator(const RunnerOptions& options,
                                             std::vector<HostSpec> hosts,
                                             std::string fallback_worker_command) {
  if (hosts.empty()) {
    throw std::invalid_argument("MultiHostShardRunner: at least one host is required");
  }
  TransportFault fault;
  if (const char* env = std::getenv("LR_TEST_TRANSPORT_FAULT")) {
    if (*env != '\0') fault = parse_transport_fault(env);
  }
  std::vector<std::shared_ptr<ShardTransport>> transports;
  transports.reserve(hosts.size());
  for (const HostSpec& host : hosts) {
    std::shared_ptr<ShardTransport> transport =
        std::make_shared<TcpShardTransport>(host.host, host.port, host.workers);
    if (fault.kind != TransportFault::Kind::kNone) {
      transport = std::make_shared<FaultyTransport>(std::move(transport), fault);
    }
    transports.push_back(std::move(transport));
  }
  std::shared_ptr<ShardTransport> fallback;
  if (options.process_workers > 0) {
    fallback = std::make_shared<ProcessShardTransport>(options.process_workers,
                                                       std::move(fallback_worker_command));
  }
  CoordinatorOptions coordinator_options;
  coordinator_options.retry.max_attempts = 1 + options.worker_retries;
  coordinator_options.timeout_ms = options.worker_timeout_ms;
  coordinator_options.label = "multi-host sweep";
  coordinator_options.threads = options.threads;
  coordinator_options.cache_cap = options.cache_max_entries;
  // snapshot_dir is deliberately not forwarded: remote hosts do not
  // share this coordinator's filesystem (the CLI rejects the combination
  // outright).
  return ShardCoordinator(std::move(coordinator_options), std::move(transports),
                          std::move(fallback));
}

}  // namespace

MultiHostShardRunner::MultiHostShardRunner(RunnerOptions options, std::vector<HostSpec> hosts,
                                           std::string fallback_worker_command)
    : coordinator_(
          make_multi_host_coordinator(options, std::move(hosts),
                                      std::move(fallback_worker_command))) {}

SweepReport MultiHostShardRunner::run(const SweepSpec& spec) { return coordinator_.run(spec); }

}  // namespace lr

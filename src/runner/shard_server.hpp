#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/// \file shard_server.hpp
/// The worker daemon of the multi-host sweep dataplane: a TCP server
/// that accepts shard-protocol v3 connections from a remote coordinator
/// (runner/shard_coordinator.hpp via TcpShardTransport), executes the
/// requested shard with this process's own ScenarioRunner + SweepCache,
/// and streams hello / record / shard-done frames back — the TCP
/// counterpart of the fork/exec `sweep-worker` child.
///
/// Session contract, per connection: the coordinator opens with one
/// kShardRequest; the server validates it (protocol version, parseable
/// spec, run-count and range cross-checks) and either answers with a
/// single loud kShardError and closes, or replies kHello and executes
/// the shard in chunks, interleaving kHeartbeat beacons so a
/// long-running chunk never looks like a dead worker.  A per-session
/// watchdog reads the coordinator's own beacons; a coordinator silent
/// past the request's liveness timeout — or a closed connection — makes
/// the server abandon the session and reclaim its threads, so an
/// orphaned server never computes for a dead coordinator and never
/// leaks sessions.  Every wait is deadline-bounded: no peer behavior
/// can hang the server.
///
/// The class is embeddable (tests and benches run real TCP sessions
/// in-process, no daemon needed); `shard_server_main` wraps it as the
/// `lr_cli shard-server --listen <port>` subcommand.

namespace lr {

/// Configuration of a ShardServer.
struct ShardServerOptions {
  /// Address to bind; the default serves loopback only (the multi-host
  /// smoke deployments); daemons meant for real remote coordinators
  /// bind 0.0.0.0 explicitly.
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  std::uint16_t port = 0;

  /// Budget for a connected coordinator to deliver its kShardRequest
  /// before the connection is dropped.
  int request_timeout_ms = 10'000;
};

/// A running shard server: binds in the constructor (so the port is
/// known immediately), serves after start(), drains after stop().
class ShardServer {
 public:
  /// Binds and listens; throws std::runtime_error when the address or
  /// port cannot be bound.
  explicit ShardServer(ShardServerOptions options = {});

  /// Stops and joins everything still running.
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// The bound port (the realized one when options asked for 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Starts accepting connections (idempotent).
  void start();

  /// Stops accepting, cancels every in-flight session (their
  /// coordinators observe a dropped connection and retry elsewhere —
  /// this is how tests stage whole-host death), and joins all threads.
  /// Idempotent.
  void stop();

  /// Sessions that ran their shard to completion (served the shard-done
  /// frame) since construction.
  std::uint64_t sessions_completed() const noexcept { return sessions_completed_.load(); }

  /// Sessions that ended any other way: refused requests, protocol
  /// errors, dead coordinators, cancellation by stop().
  std::uint64_t sessions_failed() const noexcept { return sessions_failed_.load(); }

 private:
  struct Session;

  void accept_loop();
  void serve_session(const std::shared_ptr<Session>& session);

  ShardServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;
  std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> sessions_completed_{0};
  std::atomic<std::uint64_t> sessions_failed_{0};
};

/// Entry point of the `shard-server` subcommand: parses
/// `shard-server --listen <port> [--bind <address>]`, prints one
/// "shard-server listening on <address>:<port>" line to stdout (the
/// ready signal deployment scripts wait for), and serves until SIGINT
/// or SIGTERM.  Returns the process exit code (2 with a usage message
/// on bad arguments, matching the CLI's validation convention).
int shard_server_main(int argc, char** argv);

}  // namespace lr

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/game.hpp"
#include "graph/generators.hpp"
#include "service/workload.hpp"
#include "sim/time_index.hpp"

/// \file scenario.hpp
/// Declarative scenario-sweep specifications: the input language of the
/// scenario runner (runner.hpp, docs/EXPERIMENTS.md §"Sweep specs").
///
/// A sweep is the cartesian product of five axes — topology family ×
/// instance size × algorithm kernel × scheduler × seed — expanded in a
/// fixed documented order so that run #k means the same scenario on every
/// machine and at every thread count.  Each expanded RunSpec derives its
/// RNG streams (instance construction, scheduler choices, network delays)
/// from the axis values alone via SplitMix64, never from expansion order
/// or wall clock, which is what makes swept executions reproducible and
/// thread-count-invariant (the acceptance property runner_test.cpp locks
/// in).
///
/// The algorithm axis names *measurement kernels* over the paper's
/// artifacts rather than automata alone: the Section 3 automata (FR /
/// OneStepPR / NewPR), the Charron-Bost-style hybrid strategy game, the
/// TORA routing service, the distributed message-passing protocols, and
/// the Section 5 simulation-relation checkers (Lemmas 5.1 / 5.3 and the
/// conclusion's reverse direction).

namespace lr {

/// Topology families the sweep axis can name.  Construction recipes (how
/// `size` maps to generator arguments) live in make_instance() and are
/// documented in docs/EXPERIMENTS.md.
enum class TopologyKind : std::uint8_t {
  kChain,       ///< away-oriented worst-case chain (E2's gadget)
  kRandom,      ///< connected random graph, random acyclic orientation
  kGrid,        ///< size/8+2 rows x 8 columns, random orientation
  kLayered,     ///< layered all-bad instance (E2's second gadget)
  kStar,        ///< alternating star with initial sinks and sources (E4)
  kUnitDisk,    ///< unit-disk MANET instance (the deployment model)
  kTorus,       ///< ~sqrt(size)-sided torus, degree 4 (million-node E10)
  kWideRandom,  ///< wide random connected graph, avg degree 8 (E10)
  kWaypoint,    ///< unit-disk + random-waypoint churn schedule (E10)
};

/// Measurement kernels the sweep axis can name.
enum class AlgorithmKind : std::uint8_t {
  kFullReversal,  ///< FR run to quiescence (Gafni–Bertsekas baseline)
  kOneStepPR,     ///< OneStepPR (paper Algorithm 3) run to quiescence
  kNewPR,         ///< NewPR (paper Algorithm 2) run to quiescence
  kHybrid,        ///< per-node random FR/PR strategy profile (game, E3.4)
  kTora,          ///< TORA-style routing service under link churn
  kDistFR,        ///< distributed FR over the simulated network (E7)
  kDistPR,        ///< distributed PR over the simulated network (E7)
  kSimRPrime,     ///< relation R' checker: PR -> OneStepPR (Lemma 5.1)
  kSimR,          ///< relation R checker: OneStepPR -> NewPR (Lemma 5.3)
  kSimRRev,       ///< reverse relation checker: NewPR -> OneStepPR
  kService,       ///< request-serving harness with latency SLOs (E9)
};

/// Which execution back-end a run uses.
///
/// For the fr/pr/newpr kernels the CSR path batches the whole execution
/// through core/reversal_engine.hpp while the legacy path drives the
/// paper-shaped automata; for the tora and dist-* kernels the CSR path
/// additionally consumes the sweep's cached frozen Instance + CsrGraph
/// snapshot (runner.hpp, SweepCache) while the legacy path regenerates and
/// re-freezes per run.  In every case both paths execute the identical
/// action sequence and fill identical records
/// (tests/reversal_engine_test.cpp, tests/runner_test.cpp), so this is a
/// performance switch, not a semantics switch: record and aggregate tables
/// are byte-identical across paths by design, which is what makes the
/// bench_e2/e5/e7 A/B comparisons meaningful.  The remaining kernels
/// (hybrid, sim-*) have no batched implementation; for them the switch
/// only selects the instance source, which is itself deterministic.
enum class ExecutionPath : std::uint8_t {
  kCsr,     ///< batched CSR kernels + cached frozen snapshots — default
  kLegacy,  ///< paper-shaped automata; per-run instance regeneration
};

/// Spec-file token of an execution path ("csr", "legacy").
const char* path_token(ExecutionPath path);

/// Parses an execution-path token; throws std::invalid_argument when
/// unknown.
ExecutionPath parse_path(const std::string& token);

/// One fully resolved scenario: a point of the sweep's cartesian product.
struct RunSpec {
  TopologyKind topology = TopologyKind::kChain;  ///< topology family
  std::size_t size = 8;                          ///< nominal instance size
  AlgorithmKind algorithm = AlgorithmKind::kOneStepPR;  ///< kernel to run
  SchedulerKind scheduler = SchedulerKind::kLowestId;   ///< demon resolving nondeterminism
  std::uint64_t seed = 1;      ///< master seed of this run's RNG streams
  std::uint64_t max_steps = 10'000'000;  ///< step/round safety budget
  ExecutionPath path = ExecutionPath::kCsr;  ///< execution back-end (A/B switch)

  /// Worker threads of the reversal engine's sharded greedy-rounds kernel
  /// (CSR path, fr/pr kernels only): 1 = serial (default), 0 = hardware
  /// concurrency, N = a pool of N.  Purely a performance switch — the
  /// parallel engine is deterministic and byte-identical to the serial one
  /// at every value (tests/reversal_engine_test.cpp), so records never
  /// depend on it.  A value > 1 spawns a short-lived ThreadPool per run;
  /// worth it on large topologies, overhead on tiny ones.
  std::size_t engine_threads = 1;

  /// Event-scheduler backend of the simulated network's time index
  /// (dist-fr / dist-pr kernels): the historical binary heap or the
  /// hierarchical timing wheel (sim/time_index.hpp).  Purely a performance
  /// switch — pop order, and hence every record, is byte-identical across
  /// backends (tests/sim_test.cpp pins the equivalence).
  EventSchedulerKind sim_scheduler = EventSchedulerKind::kHeap;

  /// Worker threads of the simulated network's sharded event loop
  /// (dist-fr / dist-pr kernels): 1 = the serial event queue (default),
  /// 0 = hardware concurrency, N = a pool of N per-node event lanes
  /// (sim/sharded_loop.hpp).  Deterministic and byte-identical to the
  /// serial loop at every value, like engine_threads.  The service
  /// kernel reuses this knob as the harness's parallel read-phase
  /// worker count (same contract: reports are byte-identical at every
  /// value).
  std::size_t sim_threads = 1;

  /// Client-request mix of the service kernel
  /// (service/service_harness.hpp); ignored by every other kernel.
  ServiceWorkload service_workload = ServiceWorkload::kMixed;

  /// Closed-loop client count of the service kernel.
  std::size_t service_clients = 8;

  /// Virtual-tick duration of the service kernel's run.
  std::uint64_t service_duration = 256;

  /// Minimum length of the churn schedule attached to a `waypoint`
  /// workload (make_churn_instance); 0 = a static instance with an empty
  /// schedule (the default).  The tora kernel replays the schedule over
  /// the dynamic-heights core when it is non-empty; every other kernel
  /// measures the static pre-churn instance.  Part of the workload
  /// identity: SweepCache keys include it so runs with different churn
  /// schedules can never alias one cached instance.
  std::size_t churn_events = 0;

  /// Seed of the instance-construction RNG stream.  Depends only on
  /// (topology, size, seed) — *not* on algorithm or scheduler — so all
  /// kernels of one sweep measure the same instances, which is what makes
  /// FR-vs-PR comparisons within a sweep meaningful.
  std::uint64_t instance_seed() const;

  /// Seed of the scheduler RNG stream (random scheduler choices).
  std::uint64_t scheduler_seed() const;

  /// Seed of the network RNG stream (message delays, drops, churn).
  std::uint64_t network_seed() const;
};

/// SplitMix64 — the seed-derivation hash behind the per-run RNG streams.
std::uint64_t splitmix64(std::uint64_t x);

/// Builds the workload instance a RunSpec describes.  Deterministic in
/// (topology, size, seed); the recipes are fixed sweep-format contract
/// (docs/EXPERIMENTS.md) shared with `lr_cli gen`.
Instance make_instance(const RunSpec& spec);

/// Builds the workload plus its churn schedule: for the `waypoint`
/// topology the schedule holds at least `spec.churn_events` link events
/// (empty when churn_events == 0); for every other topology the schedule
/// is empty and the instance equals make_instance(spec).  The instance is
/// identical to make_instance(spec) in all cases — churn draws consume
/// the RNG stream strictly after instance construction — so cached
/// snapshots of the static part stay byte-identical across churn lengths.
ChurnInstance make_churn_instance(const RunSpec& spec);

// ---------------------------------------------------------------------------
// Axis token names (the sweep-spec file vocabulary)
// ---------------------------------------------------------------------------

/// Spec-file token of a topology family ("chain", "random", ...).
const char* topology_token(TopologyKind kind);

/// Spec-file token of an algorithm kernel ("fr", "pr", "newpr", "hybrid",
/// "tora", "dist-fr", "dist-pr", "sim-rprime", "sim-r", "sim-rrev",
/// "service").
const char* algorithm_token(AlgorithmKind kind);

/// Spec-file token of a scheduler ("lowest", "random", "rr", "farthest"),
/// matching the `lr_cli run` vocabulary.
const char* scheduler_token(SchedulerKind kind);

/// Parses a topology token; throws std::invalid_argument when unknown.
TopologyKind parse_topology(const std::string& token);

/// Parses an algorithm token; throws std::invalid_argument when unknown.
AlgorithmKind parse_algorithm(const std::string& token);

/// Parses a scheduler token; throws std::invalid_argument when unknown.
SchedulerKind parse_scheduler(const std::string& token);

/// A declarative sweep: the five value lists whose cartesian product is
/// the set of runs, plus the shared step budget.
///
/// Text form (see docs/EXPERIMENTS.md §"Sweep specs"): one `key = values`
/// line per axis, `#` comments, values comma-separated, integer axes also
/// accepting inclusive `lo..hi` ranges:
///
///     topology  = chain, random
///     size      = 16, 32
///     algorithm = fr, pr
///     scheduler = lowest, random
///     seed      = 1..5
///     max_steps = 1000000
///
/// `scheduler` defaults to `lowest` and `seed` to `1` when omitted;
/// `topology`, `size`, and `algorithm` are required.
struct SweepSpec {
  std::vector<TopologyKind> topologies;     ///< `topology =` axis
  std::vector<std::size_t> sizes;           ///< `size =` axis
  std::vector<AlgorithmKind> algorithms;    ///< `algorithm =` axis
  std::vector<SchedulerKind> schedulers;    ///< `scheduler =` axis
  std::vector<std::uint64_t> seeds;         ///< `seed =` axis
  std::uint64_t max_steps = 10'000'000;     ///< per-run safety budget
  /// `path =` scalar option (`csr` default, `legacy` for A/B comparison):
  /// the execution back-end stamped on every expanded run.  A scalar, not
  /// an axis: results are identical on both paths, so sweeping it would
  /// only duplicate rows.
  ExecutionPath path = ExecutionPath::kCsr;
  /// `engine_threads =` scalar option: the engine's greedy-rounds worker
  /// count stamped on every expanded run (see RunSpec::engine_threads).
  /// Also a scalar, for the same reason as `path`: results are identical
  /// at every thread count by construction.
  std::size_t engine_threads = 1;
  /// `sim_scheduler =` scalar option (`heap` default, `wheel` for the
  /// timing-wheel backend): the network time index stamped on every
  /// expanded run (see RunSpec::sim_scheduler).  Scalar because records
  /// are byte-identical across backends.
  EventSchedulerKind sim_scheduler = EventSchedulerKind::kHeap;
  /// `sim_threads =` scalar option: the network's sharded-event-loop
  /// worker count stamped on every expanded run (see RunSpec::sim_threads).
  /// Scalar because records are byte-identical at every value.
  std::size_t sim_threads = 1;
  /// `service_workload =` scalar option (`mixed` default): the service
  /// kernel's request mix stamped on every expanded run.  A scalar like
  /// max_steps: it parameterizes the workload rather than naming an
  /// independent axis (sweep the algorithm axis to compare kernels).
  ServiceWorkload service_workload = ServiceWorkload::kMixed;
  /// `service_clients =` scalar option: the service kernel's closed-loop
  /// client count stamped on every expanded run.
  std::size_t service_clients = 8;
  /// `service_duration =` scalar option: the service kernel's virtual-tick
  /// duration stamped on every expanded run.
  std::uint64_t service_duration = 256;
  /// `churn_events =` scalar option: the waypoint churn-schedule length
  /// stamped on every expanded run (see RunSpec::churn_events).  A scalar
  /// because it parameterizes the workload, like service_duration.
  std::size_t churn_events = 0;

  /// Number of runs the spec expands to (the axes' size product).
  std::size_t run_count() const;

  /// Expands the cartesian product in the canonical order: topology
  /// outermost, then size, algorithm, scheduler, and seed innermost.
  std::vector<RunSpec> expand() const;

  /// Parses the text form.  Throws std::invalid_argument on unknown keys,
  /// unknown tokens, duplicate keys, or a missing required axis.
  static SweepSpec parse(std::istream& is);

  /// Convenience overload of parse() taking the spec text directly.
  static SweepSpec parse_string(const std::string& text);
};

/// Canonical text form of a sweep spec: one `key = values` line per axis
/// plus every scalar option, in a fixed order.  The round-trip contract
/// `SweepSpec::parse_string(format_sweep_spec(s)).expand() == s.expand()`
/// is what lets the multi-process sweep backend ship a spec to its worker
/// processes as text (runner/process_runner.hpp) without the parent and
/// the workers ever disagreeing about what run #k means.
std::string format_sweep_spec(const SweepSpec& spec);

}  // namespace lr

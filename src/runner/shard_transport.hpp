#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// \file shard_transport.hpp
/// The transport abstraction of the sharded sweep dataplane: how a
/// coordinator (runner/shard_coordinator.hpp) reaches the workers that
/// execute its shards.  The shard/merge/retry contracts are
/// transport-agnostic by design — a transport only has to (1) start a
/// shard attempt somewhere and (2) hand back a pollable byte stream
/// speaking the shard protocol (runner/shard_protocol.hpp).  Two
/// implementations ship:
///
///   - ProcessShardTransport: fork/exec of shared-nothing `sweep-worker`
///     child processes over pipes (the PR-6 dataplane, extracted here),
///   - TcpShardTransport: TCP connections to remote `shard-server`
///     daemons (runner/shard_server.hpp), with heartbeat liveness in
///     both directions,
///
/// plus FaultyTransport, a deterministic fault-injection decorator that
/// wraps any transport and corrupts / drops / stalls / delays the byte
/// stream of a chosen shard's first attempts — the network half of the
/// LR_TEST_WORKER_FAULT battery (process_runner.hpp documents the
/// worker-process half).

namespace lr {

/// One contiguous shard of the expanded run list: global indexes
/// [begin, end).
struct ShardRange {
  std::size_t begin = 0;  ///< first global run index of the shard
  std::size_t end = 0;    ///< one past the last global run index

  /// Number of runs in the shard.
  std::size_t size() const noexcept { return end - begin; }

  /// Ranges compare by their bounds.
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// Deterministically partitions `runs` global run indexes into `shards`
/// contiguous, maximally balanced ranges (sizes differ by at most one,
/// larger shards first).  `shards` is clamped to `runs` so no shard is
/// empty; runs = 0 yields no shards.  This is fixed merge contract: run
/// #k lives in the same shard on every machine and every invocation.
std::vector<ShardRange> shard_ranges(std::size_t runs, std::size_t shards);

/// One dispatched attempt of a shard, as the coordinator logs it —
/// surfaced through `lr_cli sweep --shard-log` so operators can see
/// which endpoint served (or killed) each attempt and how long it took.
struct ShardAttemptLog {
  std::size_t attempt = 0;   ///< zero-based attempt number
  std::string endpoint;      ///< transport endpoint that served the attempt
  std::string outcome;       ///< "ok" or the failure description
  long long elapsed_ms = 0;  ///< dispatch to completion / failure
  long long backoff_ms = 0;  ///< retry-policy delay imposed before dispatch
};

/// What happened to one shard across all its attempts — surfaced so a
/// failed sweep can say exactly which shard died how, and a recovered
/// one can report the retries and reassignments it absorbed.
struct ShardDiagnostics {
  std::size_t shard = 0;              ///< shard index
  ShardRange range;                   ///< the shard's run range
  std::size_t attempts = 0;           ///< attempts dispatched for this shard
  bool completed = false;             ///< shard delivered all its records
  std::vector<std::string> failures;  ///< one human-readable line per failed attempt
  std::vector<ShardAttemptLog> attempt_log;  ///< every attempt, incl. the successful one
};

/// Everything a transport needs to start one shard attempt: the
/// assignment itself plus the worker-side execution knobs, mirroring the
/// `sweep-worker` argv/stdin contract and the v3 kShardRequest frame.
struct ShardAssignment {
  std::size_t shard = 0;     ///< shard index being assigned
  ShardRange range;          ///< global run range [begin, end)
  std::size_t total = 0;     ///< full run count of the sweep (cross-check)
  std::size_t attempt = 0;   ///< 0 = first try, +1 per retry
  std::string spec_text;     ///< canonical sweep spec (format_sweep_spec)
  std::size_t threads = 1;   ///< worker-internal thread count
  std::size_t cache_cap = 0;  ///< worker SweepCache LRU bound (0 = unbounded)
  std::string snapshot_dir;  ///< worker snapshot dir (pipe transport only)
  int start_timeout_ms = 5'000;     ///< budget for connect + assignment shipping
  int heartbeat_ms = 1'000;         ///< worker liveness beacon interval
  int liveness_timeout_ms = 30'000;  ///< worker-side coordinator watchdog
};

/// Result of ShardChannel::read_some.
struct ChannelRead {
  /// What the read produced.
  enum class Kind : std::uint8_t {
    kData,        ///< `bytes` bytes were written into the buffer
    kWouldBlock,  ///< nothing available right now; poll again
    kEof,         ///< orderly end of stream
    kError,       ///< transport failure; `error` describes it
  };
  Kind kind = Kind::kWouldBlock;  ///< outcome discriminator
  std::size_t bytes = 0;          ///< bytes read when kind == kData
  std::string error;              ///< description when kind == kError
};

/// One live shard attempt's byte stream, as the coordinator consumes it.
/// The channel owns the underlying resource (pipe + child process, or
/// socket); exactly one of abort() / complete() must be called before
/// destruction ends the attempt implicitly (destructors abort).
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// File descriptor to poll for readability.
  virtual int poll_fd() const noexcept = 0;

  /// Nonblocking read of up to `capacity` bytes into `buffer`.
  virtual ChannelRead read_some(std::uint8_t* buffer, std::size_t capacity) = 0;

  /// Sends a coordinator -> worker liveness beacon.  Returns an empty
  /// string on success, else a failure description (the coordinator
  /// treats a failed heartbeat like any other channel failure).
  /// Transports with implicit liveness (a pipe to our own child) no-op.
  virtual std::string send_heartbeat(std::uint64_t sequence) = 0;

  /// Abandons the attempt — kills / disconnects the worker and releases
  /// the channel.  Returns a status description for diagnostics (e.g.
  /// the child's wait status).  Idempotent.
  virtual std::string abort() = 0;

  /// Releases the channel after a clean shard completion (reaps the
  /// child / closes the socket).  Idempotent.
  virtual void complete() = 0;
};

/// Result of ShardTransport::start.
struct ShardStart {
  std::unique_ptr<ShardChannel> channel;  ///< live channel, or null on failure
  std::string error;  ///< failure description when channel is null
};

/// A place that can execute shard attempts: a factory of ShardChannels.
/// `capacity()` is how many attempts the coordinator may run there
/// concurrently (worker processes for the pipe transport, connections
/// for a TCP host).
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Human-readable endpoint name ("process", "127.0.0.1:7071") used in
  /// diagnostics and the shard log.
  virtual const std::string& endpoint() const noexcept = 0;

  /// Concurrent attempts this transport can serve.
  virtual std::size_t capacity() const noexcept = 0;

  /// Starts one shard attempt; blocks at most
  /// `assignment.start_timeout_ms` establishing it.  A failure (fork
  /// failure, connection refused, timeout shipping the assignment) is
  /// returned, not thrown — the coordinator charges it against the
  /// shard's retry budget and the endpoint's liveness score.
  virtual ShardStart start(const ShardAssignment& assignment) = 0;
};

/// The fork/exec pipe transport (the PR-6 dataplane): every start() is a
/// fresh shared-nothing `sweep-worker` child of this process, its
/// assignment shipped via argv + stdin and its frames read from a
/// nonblocking stdout pipe.  Crash isolation is the process boundary;
/// liveness is implicit (a dead child is an EOF), so send_heartbeat() is
/// a no-op.
class ProcessShardTransport : public ShardTransport {
 public:
  /// `worker_command` is the executable fork/exec'd as
  /// `<worker_command> sweep-worker ...`; empty means this process's own
  /// binary (/proc/self/exe).  `workers` is the concurrent-attempt
  /// capacity.
  explicit ProcessShardTransport(std::size_t workers, std::string worker_command = {});

  const std::string& endpoint() const noexcept override { return endpoint_; }
  std::size_t capacity() const noexcept override { return workers_; }
  ShardStart start(const ShardAssignment& assignment) override;

 private:
  std::size_t workers_;
  std::string worker_command_;  ///< empty = resolve /proc/self/exe lazily
  std::string endpoint_ = "process";
};

/// One remote `shard-server` endpoint (runner/shard_server.hpp): every
/// start() opens a fresh TCP connection, ships a v3 kShardRequest, and
/// returns the socket as the channel.  Heartbeats flow both ways; the
/// coordinator's inactivity watchdog and the server's coordinator
/// watchdog bound every partial-failure mode (drop, partition, stall)
/// to a deadline.
class TcpShardTransport : public ShardTransport {
 public:
  /// Endpoint `host:port` with `workers` concurrent connections.
  TcpShardTransport(std::string host, std::uint16_t port, std::size_t workers);

  const std::string& endpoint() const noexcept override { return endpoint_; }
  std::size_t capacity() const noexcept override { return workers_; }
  ShardStart start(const ShardAssignment& assignment) override;

 private:
  std::string host_;
  std::uint16_t port_;
  std::size_t workers_;
  std::string endpoint_;
};

/// One `host:port[*workers]` entry of `lr_cli sweep --hosts`.
struct HostSpec {
  std::string host;          ///< hostname or dotted-quad address
  std::uint16_t port = 0;    ///< TCP port, 1..65535
  std::size_t workers = 1;   ///< concurrent shard connections to the host

  /// Specs compare field-wise.
  friend bool operator==(const HostSpec&, const HostSpec&) = default;
};

/// Parses a `--hosts` list: comma-separated `host:port[*workers]`
/// entries, e.g. "10.0.0.1:7071*4,10.0.0.2:7071*4".  Throws
/// std::invalid_argument, naming the offending entry, on an empty list,
/// a missing/empty host or port, a port outside 1..65535, a zero or
/// non-numeric worker count, or trailing garbage.
std::vector<HostSpec> parse_host_list(const std::string& text);

/// A deterministic network fault, armed for the first `attempts`
/// attempts of one shard.  Parsed from the LR_TEST_TRANSPORT_FAULT
/// environment knob (`kind:shard[:attempts]`), mirroring
/// LR_TEST_WORKER_FAULT's shape for the worker-process faults.
struct TransportFault {
  /// Network fault classes.
  enum class Kind : std::uint8_t {
    kNone,            ///< no fault
    kConnectRefuse,   ///< `connect`: start() fails as if the host were down
    kDrop,            ///< `drop`: connection closed mid-shard
    kCorrupt,         ///< `corrupt`: one byte of the stream flipped
    kHeartbeatStall,  ///< `hbstall`: stream goes silent mid-shard
    kDelay,           ///< `delay`: bytes trickle through a slowed link
  };
  Kind kind = Kind::kNone;    ///< which fault to inject
  std::size_t shard = 0;      ///< target shard
  std::size_t attempts = 1;   ///< arm on attempts [0, attempts)
  std::size_t at_byte = 200;  ///< stream offset where drop/corrupt/stall triggers
  std::uint32_t delay_ms = 2;  ///< per-read delay of the `delay` fault
};

/// Parses `kind:shard[:attempts]` (kind in connect|drop|corrupt|hbstall|
/// delay); throws std::invalid_argument on malformed input.
TransportFault parse_transport_fault(const std::string& text);

/// Decorator injecting one TransportFault into an inner transport's byte
/// stream, deterministically: attempt k of shard s either is or is not
/// faulted as a pure function of the plan, so every test run exercises
/// the identical failure schedule.  Attempts outside the plan pass
/// through untouched.
class FaultyTransport : public ShardTransport {
 public:
  /// Wraps `inner`, injecting `fault`.
  FaultyTransport(std::shared_ptr<ShardTransport> inner, TransportFault fault);

  const std::string& endpoint() const noexcept override { return inner_->endpoint(); }
  std::size_t capacity() const noexcept override { return inner_->capacity(); }
  ShardStart start(const ShardAssignment& assignment) override;

 private:
  std::shared_ptr<ShardTransport> inner_;
  TransportFault fault_;
};

/// Restores the previous SIGPIPE disposition on scope exit.  A shard
/// coordinator ignores SIGPIPE while attempts live so a write to a dead
/// worker's stdin or socket fails with EPIPE (a per-shard failure)
/// instead of killing the whole sweep.
class SigpipeGuard {
 public:
  SigpipeGuard();
  ~SigpipeGuard();
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  void* previous_;  ///< opaque saved struct sigaction
};

}  // namespace lr

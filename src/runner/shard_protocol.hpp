#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/runner.hpp"

/// \file shard_protocol.hpp
/// The wire protocol between a sweep coordinator and its shard workers —
/// fork/exec'd `sweep-worker` child processes (runner/process_runner.hpp)
/// over pipes, or remote `shard-server` daemons
/// (runner/shard_server.hpp) over TCP: a small length-prefixed binary
/// framing carrying per-run records back to the coordinator as a worker
/// finishes them.
///
/// Frame layout (all integers little-endian):
///
///     u32 magic ("LRSH")  |  u8 type  |  u32 payload_len  |
///     payload_len bytes   |  u64 fnv1a(type || payload)
///
/// Worker -> coordinator, per shard attempt: one kHello (handshake:
/// protocol version, shard index, run range, attempt), then one kRecord
/// per run of the shard in ascending global run-index order — with
/// kHeartbeat frames interleaved at any point after the hello — then one
/// kShardDone (record count + the worker's cache counters).  A worker
/// that cannot even start the shard (bad spec, version skew) may answer
/// with a single kShardError instead of a hello.  Coordinator -> worker
/// (TCP transport only): one kShardRequest opening the attempt, then
/// kHeartbeat frames proving the coordinator is still alive.  The pipe
/// transport ships the same assignment via argv/stdin and needs no
/// frames in that direction.
///
/// Everything else — wrong magic, a payload over kMaxFramePayload, a
/// checksum mismatch, an unknown enum value inside a record, trailing
/// payload bytes, EOF mid-frame — is a protocol error the coordinator
/// treats exactly like a worker crash: kill, reap, retry the shard
/// (tests/shard_protocol_test.cpp pins the rejection behavior, including
/// randomized fuzzes over frame boundaries and single-byte corruption,
/// for the v3 frames too).
///
/// Version skew is rejected loudly in both directions and can never
/// hang: a v3 coordinator rejects a v2 hello by its version field, and a
/// v2 worker's parser rejects a kShardRequest as an unknown frame type,
/// which closes the connection and surfaces as a failed attempt.
///
/// The parser is deliberately incremental (feed() bytes as the pipe
/// yields them, next() yields complete frames) so the coordinator can
/// multiplex many workers over poll() without threads, and so tests can
/// replay a stream at any chunking.

namespace lr {

/// Frame discriminator on the wire.
enum class FrameType : std::uint8_t {
  kHello = 1,         ///< worker handshake, first frame of every attempt
  kRecord = 2,        ///< one finished run, in ascending global-index order
  kShardDone = 3,     ///< shard complete: record count + cache counters
  kHeartbeat = 4,     ///< liveness beacon, either direction (v3)
  kShardRequest = 5,  ///< coordinator -> worker shard assignment (v3, TCP)
  kShardError = 6,    ///< worker -> coordinator loud refusal (v3)
};

/// Wire magic prefixing every frame ("LRSH" little-endian).
inline constexpr std::uint32_t kFrameMagic = 0x4853524cu;

/// Protocol version carried by the hello and shard-request frames;
/// coordinator and worker must match exactly (workers are normally the
/// same binary, so a mismatch means build or deployment skew across
/// hosts — a situation to reject loudly, never to paper over).
/// Version 3 added the heartbeat / shard-request / shard-error frames of
/// the multi-host TCP dataplane.
inline constexpr std::uint32_t kShardProtocolVersion = 3;

/// Upper bound on a frame payload.  Records are a few hundred bytes;
/// anything near this limit is garbage (e.g. random bytes read as a
/// length field) and is rejected without allocating.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// A malformed or out-of-contract byte stream.  The parent maps this to
/// "worker failed, retry the shard", same as a crash.
class ShardProtocolError : public std::runtime_error {
 public:
  explicit ShardProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Handshake payload: which shard this attempt serves.
struct HelloFrame {
  std::uint32_t version = kShardProtocolVersion;  ///< must equal the parent's
  std::uint64_t shard = 0;    ///< shard index the worker was assigned
  std::uint64_t begin = 0;    ///< first global run index of the shard
  std::uint64_t end = 0;      ///< one past the last global run index
  std::uint64_t attempt = 0;  ///< 0 = first try, +1 per retry
};

/// One finished run: the record plus where it lands in the merged table.
struct RecordFrame {
  std::uint64_t global_index = 0;  ///< expansion index in the full sweep
  RunRecord record;                ///< the run's full record
};

/// End-of-shard marker: lets the parent distinguish a complete shard
/// from a worker that died after its last record but before finishing.
struct ShardDoneFrame {
  std::uint64_t records_emitted = 0;  ///< must equal end - begin
  SweepCacheStats cache;              ///< the worker's private cache counters
};

/// Liveness beacon (v3).  Either end sends one whenever it has produced
/// no other frame for a while; receiving *any* frame resets the
/// receiver's inactivity watchdog, so heartbeats only flow when the
/// channel would otherwise look dead (a worker mid-long-run, a
/// coordinator waiting on other shards).
struct HeartbeatFrame {
  std::uint8_t from_coordinator = 0;  ///< 1 = coordinator -> worker
  std::uint64_t sequence = 0;         ///< per-connection beacon counter
};

/// Shard assignment, coordinator -> worker (v3, TCP transport).  Opens
/// every connection: everything a `shard-server` needs to execute global
/// runs [begin, end) of the sweep `spec_text` expands to, mirroring the
/// argv/stdin contract of the pipe transport.
struct ShardRequestFrame {
  std::uint32_t version = kShardProtocolVersion;  ///< must equal the worker's
  std::uint64_t shard = 0;        ///< shard index being assigned
  std::uint64_t begin = 0;        ///< first global run index of the shard
  std::uint64_t end = 0;          ///< one past the last global run index
  std::uint64_t total = 0;        ///< the full sweep's run count (cross-check)
  std::uint64_t attempt = 0;      ///< 0 = first try, +1 per retry
  std::uint64_t threads = 1;      ///< worker-internal thread count
  std::uint64_t cache_cap = 0;    ///< worker SweepCache LRU bound (0 = unbounded)
  std::uint32_t heartbeat_ms = 0;       ///< worker beacon interval (0 = default)
  std::uint32_t liveness_timeout_ms = 0;  ///< worker-side coordinator watchdog
  std::string spec_text;          ///< canonical sweep spec (format_sweep_spec)
};

/// Loud refusal, worker -> coordinator (v3): the worker cannot serve the
/// request (version skew, unparseable spec, run-count mismatch) and says
/// why before closing, so the coordinator's diagnostics name the cause
/// instead of a bare EOF.
struct ShardErrorFrame {
  std::string message;  ///< human-readable reason
};

/// A decoded frame; `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::kHello;  ///< which payload member is live
  HelloFrame hello;                    ///< payload when type == kHello
  RecordFrame record;                  ///< payload when type == kRecord
  ShardDoneFrame done;                 ///< payload when type == kShardDone
  HeartbeatFrame heartbeat;            ///< payload when type == kHeartbeat
  ShardRequestFrame request;           ///< payload when type == kShardRequest
  ShardErrorFrame error;               ///< payload when type == kShardError
};

/// Encodes one frame (header + payload + checksum) to wire bytes.
std::vector<std::uint8_t> encode_frame(const HelloFrame& hello);
/// \copydoc encode_frame(const HelloFrame&)
std::vector<std::uint8_t> encode_frame(const RecordFrame& record);
/// \copydoc encode_frame(const HelloFrame&)
std::vector<std::uint8_t> encode_frame(const ShardDoneFrame& done);
/// \copydoc encode_frame(const HelloFrame&)
std::vector<std::uint8_t> encode_frame(const HeartbeatFrame& heartbeat);
/// \copydoc encode_frame(const HelloFrame&)
std::vector<std::uint8_t> encode_frame(const ShardRequestFrame& request);
/// \copydoc encode_frame(const HelloFrame&)
std::vector<std::uint8_t> encode_frame(const ShardErrorFrame& error);

/// Incremental frame decoder: feed() raw pipe bytes in any chunking,
/// pull complete frames with next().  Throws ShardProtocolError on the
/// first malformed byte; the instance is then unusable (the parent
/// discards it with the worker).
class FrameParser {
 public:
  /// Appends `size` raw bytes to the parse buffer.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Decodes and returns the next complete frame, or nullopt when the
  /// buffered bytes end mid-frame (feed more).  Throws ShardProtocolError
  /// on bad magic, oversized length, checksum mismatch, or an
  /// undecodable payload.
  std::optional<Frame> next();

  /// True when undecoded bytes are buffered — at worker EOF this means
  /// the stream was truncated mid-frame, which the parent must treat as
  /// a failed attempt, never as a clean end.
  bool mid_frame() const noexcept { return consumed_ < buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already decoded
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/runner.hpp"

/// \file shard_protocol.hpp
/// The wire protocol between a multi-process sweep parent and its
/// `sweep-worker` child processes (runner/process_runner.hpp): a small
/// length-prefixed binary framing over a pipe, carrying per-run records
/// back to the parent as the worker finishes them.
///
/// Frame layout (all integers little-endian):
///
///     u32 magic ("LRSH")  |  u8 type  |  u32 payload_len  |
///     payload_len bytes   |  u64 fnv1a(type || payload)
///
/// Three frame types flow, always in this order per worker attempt:
/// one kHello (handshake: protocol version, shard index, run range,
/// attempt), then one kRecord per run of the shard in ascending global
/// run-index order, then one kShardDone (record count + the worker's
/// cache counters) — after which the worker exits 0 and the parent sees
/// EOF.  Everything else — wrong magic, a payload over kMaxFramePayload,
/// a checksum mismatch, an unknown enum value inside a record, trailing
/// payload bytes, EOF mid-frame — is a protocol error the parent treats
/// exactly like a worker crash: kill, reap, retry the shard
/// (tests/shard_protocol_test.cpp pins the rejection behavior, including
/// a randomized fuzz over frame boundaries).
///
/// The parser is deliberately incremental (feed() bytes as the pipe
/// yields them, next() yields complete frames) so the parent can
/// multiplex many workers over poll() without threads, and so tests can
/// replay a stream at any chunking.

namespace lr {

/// Frame discriminator on the wire.
enum class FrameType : std::uint8_t {
  kHello = 1,      ///< worker handshake, first frame of every attempt
  kRecord = 2,     ///< one finished run, in ascending global-index order
  kShardDone = 3,  ///< shard complete: record count + cache counters
};

/// Wire magic prefixing every frame ("LRSH" little-endian).
inline constexpr std::uint32_t kFrameMagic = 0x4853524cu;

/// Protocol version carried by the hello frame; parent and worker must
/// match exactly (the worker is always the same binary, so a mismatch
/// means a build-skew bug, not a compatibility situation to paper over).
inline constexpr std::uint32_t kShardProtocolVersion = 2;

/// Upper bound on a frame payload.  Records are a few hundred bytes;
/// anything near this limit is garbage (e.g. random bytes read as a
/// length field) and is rejected without allocating.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// A malformed or out-of-contract byte stream.  The parent maps this to
/// "worker failed, retry the shard", same as a crash.
class ShardProtocolError : public std::runtime_error {
 public:
  explicit ShardProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Handshake payload: which shard this attempt serves.
struct HelloFrame {
  std::uint32_t version = kShardProtocolVersion;  ///< must equal the parent's
  std::uint64_t shard = 0;    ///< shard index the worker was assigned
  std::uint64_t begin = 0;    ///< first global run index of the shard
  std::uint64_t end = 0;      ///< one past the last global run index
  std::uint64_t attempt = 0;  ///< 0 = first try, +1 per retry
};

/// One finished run: the record plus where it lands in the merged table.
struct RecordFrame {
  std::uint64_t global_index = 0;  ///< expansion index in the full sweep
  RunRecord record;                ///< the run's full record
};

/// End-of-shard marker: lets the parent distinguish a complete shard
/// from a worker that died after its last record but before finishing.
struct ShardDoneFrame {
  std::uint64_t records_emitted = 0;  ///< must equal end - begin
  SweepCacheStats cache;              ///< the worker's private cache counters
};

/// A decoded frame; `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::kHello;  ///< which payload member is live
  HelloFrame hello;                    ///< payload when type == kHello
  RecordFrame record;                  ///< payload when type == kRecord
  ShardDoneFrame done;                 ///< payload when type == kShardDone
};

/// Encodes one frame (header + payload + checksum) to wire bytes.
std::vector<std::uint8_t> encode_frame(const HelloFrame& hello);
/// \copydoc encode_frame(const HelloFrame&)
std::vector<std::uint8_t> encode_frame(const RecordFrame& record);
/// \copydoc encode_frame(const HelloFrame&)
std::vector<std::uint8_t> encode_frame(const ShardDoneFrame& done);

/// Incremental frame decoder: feed() raw pipe bytes in any chunking,
/// pull complete frames with next().  Throws ShardProtocolError on the
/// first malformed byte; the instance is then unusable (the parent
/// discards it with the worker).
class FrameParser {
 public:
  /// Appends `size` raw bytes to the parse buffer.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Decodes and returns the next complete frame, or nullopt when the
  /// buffered bytes end mid-frame (feed more).  Throws ShardProtocolError
  /// on bad magic, oversized length, checksum mismatch, or an
  /// undecodable payload.
  std::optional<Frame> next();

  /// True when undecoded bytes are buffered — at worker EOF this means
  /// the stream was truncated mid-frame, which the parent must treat as
  /// a failed attempt, never as a clean end.
  bool mid_frame() const noexcept { return consumed_ < buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already decoded
};

}  // namespace lr

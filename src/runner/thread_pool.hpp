#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// The fixed-size worker pool shared by the two parallel layers of the
/// library: the scenario runner (one swept run per task,
/// `runner/runner.hpp`) and the reversal engine's sharded greedy rounds
/// (one worklist shard per task, `core/reversal_engine.hpp`).
///
/// This header is a *leaf* utility: it depends on nothing but the standard
/// library, which is what lets `src/core` use it without inverting the
/// layer order (the runner layer proper still sits above core; see
/// docs/ARCHITECTURE.md §"Parallel execution").
///
/// Design: N logical workers, N-1 of them std::threads and one of them the
/// *caller* of run() — so a single-worker pool spawns no threads at all
/// and run() degenerates to a plain call, and a multi-worker pool keeps
/// the calling thread busy instead of blocked.  run() is a fork/join
/// barrier: it returns only after every worker finished the job.
///
/// Latency: the engine dispatches one job per greedy *round*, and a round
/// can be only a few microseconds of work, so dispatch cost is the whole
/// game.  Workers therefore spin briefly on an atomic generation counter
/// before parking on a condition variable (new work normally arrives
/// within the spin window), and the caller spin-yields on the outstanding
/// count instead of sleeping.  The release/acquire pairs on the two
/// counters sequence one job's writes before the next job's reads — the
/// happens-before edge the engine's per-round merges rely on.

namespace lr {

/// Implementation helpers of the pool's spin-wait ladder.
namespace detail {

/// One spin-wait beat: a pause/yield *instruction* (not the syscall — a
/// sched_yield per spin iteration costs microseconds and defeats the whole
/// point of spinning).
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

}  // namespace detail

/// Fixed-size reusable fork/join worker pool; see the file comment.
class ThreadPool {
 public:
  /// Creates a pool of `threads` logical workers (the calling thread
  /// counts as one, so `threads - 1` std::threads are spawned); 0 means
  /// std::thread::hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0) {
    total_constructed_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = threads != 0
                              ? threads
                              : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    size_ = n;
    workers_.reserve(n - 1);
    for (std::size_t index = 1; index < n; ++index) {
      workers_.emplace_back([this, index] { worker_loop(index); });
    }
  }

  /// Joins all workers.  Must not race with an in-flight run() call.
  ~ThreadPool() {
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_seq_cst);
    {
      // Empty critical section: a worker past its spin window re-checks
      // the predicate under this mutex before parking, so the notify
      // cannot fall between its check and its wait.
      const std::lock_guard<std::mutex> lock(mutex_);
    }
    wake_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Pools own their worker threads; copying or moving would dangle the
  /// `this` captured by every worker loop, so both are disabled.
  ThreadPool(const ThreadPool&) = delete;
  /// \copydoc ThreadPool(const ThreadPool&)
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of logical workers (>= 1, caller included).
  std::size_t size() const noexcept { return size_; }

  /// Pools constructed process-wide so far (monotone).  A test hook:
  /// pool-reuse contracts (e.g. WorkerPoolCache covering every sharded
  /// kernel) are pinned by asserting this counter's *delta* across a
  /// batch of runs, so the absolute value — which includes every other
  /// pool the process ever made — never matters.
  static std::uint64_t total_constructed() noexcept {
    return total_constructed_.load(std::memory_order_relaxed);
  }

  /// Runs `job(worker_index)` once per worker, indices `[0, size())`, and
  /// returns after *all* invocations completed (a fork/join barrier).  The
  /// caller executes index 0 itself.  `job` must not throw and must not
  /// re-enter run() on the same pool (workers are all busy: re-entry would
  /// deadlock).  At most one run() may be in flight at a time: callers
  /// sharing a pool across threads must serialize their dispatches (the
  /// scenario runner does, behind its dispatch mutex).
  void run(const std::function<void(std::size_t)>& job) {
    if (size_ == 1) {
      job(0);
      return;
    }
    job_ = &job;
    pending_.store(size_ - 1, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_seq_cst);
    // Wake parked workers only when there are any: in the hot path between
    // two engine rounds every worker is still spinning, and skipping the
    // mutex + notify keeps dispatch syscall-free.  seq_cst on the counter
    // pair closes the race with a worker about to park (see worker_loop).
    if (parked_.load(std::memory_order_seq_cst) != 0) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);  // see ~ThreadPool
      }
      wake_cv_.notify_all();
    }
    job(0);
    // Spin rather than sleep: shards finish within microseconds of each
    // other, and the next round is dispatched immediately after.  Fall
    // back to yielding only when a worker is clearly descheduled (the
    // oversubscribed case), so the wait cannot starve it.
    std::uint32_t spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
      if (++spins > kSpinIterations) {
        std::this_thread::yield();
      } else {
        detail::cpu_pause();
      }
    }
    job_ = nullptr;
  }

 private:
  /// Pause-spin budget before easing off the CPU (~tens of microseconds):
  /// long enough to bridge the serial merge section between two engine
  /// rounds, short enough that an idle pool backs off almost immediately.
  static constexpr std::uint32_t kSpinIterations = 1u << 13;
  /// Yield-spin budget after the pause phase: keeps an oversubscribed pool
  /// (more workers than cores) making progress by ceding the core to
  /// whichever worker actually holds the next shard, before parking.
  static constexpr std::uint32_t kYieldIterations = 64;

  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    while (true) {
      // Wait for the next generation in three escalating phases: pause-spin
      // (the hot path between two rounds of one execution), yield-spin
      // (oversubscribed pools), then park on the condition variable.
      std::uint64_t current = generation_.load(std::memory_order_acquire);
      for (std::uint32_t spin = 0; current == seen && spin < kSpinIterations; ++spin) {
        detail::cpu_pause();
        current = generation_.load(std::memory_order_acquire);
      }
      for (std::uint32_t spin = 0; current == seen && spin < kYieldIterations; ++spin) {
        std::this_thread::yield();
        current = generation_.load(std::memory_order_acquire);
      }
      if (current == seen) {
        std::unique_lock<std::mutex> lock(mutex_);
        // Announce the park *before* re-checking the generation, both
        // seq_cst: either run() sees parked_ != 0 and notifies under the
        // mutex, or this worker sees the new generation and never waits —
        // the Dekker-style pairing that keeps the notify skippable.
        parked_.fetch_add(1, std::memory_order_seq_cst);
        wake_cv_.wait(lock, [this, seen] {
          return generation_.load(std::memory_order_seq_cst) != seen;
        });
        parked_.fetch_sub(1, std::memory_order_seq_cst);
        current = generation_.load(std::memory_order_acquire);
      }
      if (stop_.load(std::memory_order_acquire)) return;
      seen = current;
      (*job_)(index);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  static inline std::atomic<std::uint64_t> total_constructed_{0};

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> parked_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace lr

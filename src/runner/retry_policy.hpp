#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

/// \file retry_policy.hpp
/// The retry/backoff policy shared by every shard dataplane backend
/// (runner/process_runner.hpp, runner/shard_coordinator.hpp): how many
/// attempts a failing shard gets, and how long the coordinator waits
/// before each re-dispatch.
///
/// The delay schedule is capped exponential backoff with *deterministic*
/// seeded jitter: `delay(attempt)` is a pure function of (policy, shard,
/// attempt), so a replayed sweep re-dispatches at the same instants and a
/// fleet of shards failing together de-synchronizes the same way every
/// run — the thundering-herd protection of random jitter without giving
/// up reproducible schedules in tests.

namespace lr {

/// Capped exponential backoff with deterministic per-(shard, attempt)
/// jitter.  `max_attempts` counts total tries (first + retries); the
/// delay before attempt k (k >= 1, zero-based) is
/// `min(initial << (k-1), cap)` scaled by a jitter factor in
/// [1 - jitter, 1] drawn from SplitMix64(seed ^ shard ^ k).
struct RetryPolicy {
  std::size_t max_attempts = 3;   ///< total tries per shard (first + retries)
  std::uint32_t initial_ms = 25;  ///< backoff before the first retry
  std::uint32_t cap_ms = 2'000;   ///< backoff ceiling
  double jitter = 0.5;            ///< jitter band width, in [0, 1]
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< jitter stream seed

  /// Milliseconds to wait before dispatching `attempt` (zero-based) of
  /// `shard`.  Attempt 0 is the first try and never waits.  Pure: the
  /// same (policy, shard, attempt) always yields the same delay.
  std::chrono::milliseconds delay(std::size_t shard, std::size_t attempt) const {
    if (attempt == 0 || initial_ms == 0) return std::chrono::milliseconds{0};
    const std::uint32_t shift = static_cast<std::uint32_t>(std::min<std::size_t>(attempt - 1, 20));
    const std::uint64_t base =
        std::min<std::uint64_t>(std::uint64_t{initial_ms} << shift, cap_ms);
    // SplitMix64 over (seed ^ shard ^ attempt): a cheap, well-mixed pure
    // hash -- the same generator the sweep layer derives RNG streams from.
    std::uint64_t z = seed ^ (std::uint64_t{0x5851f42d4c957f2dULL} * shard) ^
                      (std::uint64_t{0x14057b7ef767814fULL} * attempt);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double band = std::clamp(jitter, 0.0, 1.0);
    const double fraction = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
    const double scaled = static_cast<double>(base) * (1.0 - band * fraction);
    return std::chrono::milliseconds{static_cast<std::int64_t>(scaled)};
  }
};

}  // namespace lr
